package catnap

import (
	"fmt"

	"github.com/catnap-noc/catnap/internal/traffic"
)

// This file implements the ablation studies DESIGN.md calls out: each
// varies one design choice of the Catnap architecture around the paper's
// operating point and measures the low-load power-gating benefit (CSC,
// power) against the latency cost, on uniform random traffic at a light
// and a moderate load. cmd/catnap exposes them via `ablation`;
// ablation_test.go benchmarks them.

// AblationPoint is one (variant, load) measurement.
type AblationPoint struct {
	Study   string
	Variant string
	Offered float64
	Results Results
}

// AblationStudy names a parameter study and enumerates its variants.
type AblationStudy struct {
	Name     string
	Doc      string
	Variants []AblationVariant
}

// AblationVariant labels one configuration mutation.
type AblationVariant struct {
	Label  string
	Mutate func(*Config)
}

// AblationStudies are the design-choice sweeps around the 4NT-128b-PG
// operating point.
var AblationStudies = []AblationStudy{
	{
		Name: "rcs",
		Doc:  "regional vs local-only congestion detection (the 1-bit OR network's value)",
		Variants: []AblationVariant{
			{"regional", func(c *Config) {}},
			{"local-only", func(c *Config) { c.LocalOnly = true }},
		},
	},
	{
		Name: "threshold",
		Doc:  "BFM congestion threshold (flits): spill-early vs pack-tight",
		Variants: []AblationVariant{
			{"thr=3", func(c *Config) { c.MetricThreshold = 3 }},
			{"thr=6", func(c *Config) { c.MetricThreshold = 6 }},
			{"thr=9", func(c *Config) { c.MetricThreshold = 9 }},
			{"thr=12", func(c *Config) { c.MetricThreshold = 12 }},
		},
	},
	{
		Name: "idle-detect",
		Doc:  "buffer-empty cycles before a router may sleep (T-idle-detect)",
		Variants: []AblationVariant{
			{"T=2", func(c *Config) { c.TIdleDetect = 2 }},
			{"T=4", func(c *Config) { c.TIdleDetect = 4 }},
			{"T=8", func(c *Config) { c.TIdleDetect = 8 }},
			{"T=16", func(c *Config) { c.TIdleDetect = 16 }},
		},
	},
	{
		Name: "wakeup",
		Doc:  "router wake-up delay sensitivity (T-wakeup, 3 cycles hidden)",
		Variants: []AblationVariant{
			{"T=5", func(c *Config) { c.TWakeup = 5 }},
			{"T=10", func(c *Config) { c.TWakeup = 10 }},
			{"T=20", func(c *Config) { c.TWakeup = 20 }},
		},
	},
	{
		Name: "region",
		Doc:  "congestion-detection region size (routers per OR network)",
		Variants: []AblationVariant{
			{"2x2", func(c *Config) { c.RegionDim = 2 }},
			{"4x4", func(c *Config) { c.RegionDim = 4 }},
			{"8x8", func(c *Config) { c.RegionDim = 8 }},
		},
	},
	{
		Name: "subnets",
		Doc:  "subnet count at constant aggregate width (power-gating granularity)",
		Variants: []AblationVariant{
			{"2NT-256b", func(c *Config) { c.Subnets = 2; c.LinkWidthBits = 256; c.VoltageV = 0 }},
			{"4NT-128b", func(c *Config) { c.Subnets = 4; c.LinkWidthBits = 128; c.VoltageV = 0 }},
			{"8NT-64b", func(c *Config) { c.Subnets = 8; c.LinkWidthBits = 64; c.VoltageV = 0 }},
		},
	},
}

// AblationLoads are the two operating points each variant is measured at:
// light (deep-sleep regime) and moderate (transition-heavy regime).
var AblationLoads = []float64{0.03, 0.15}

// RunAblation executes the named study and returns one point per
// (variant, load).
func RunAblation(name string, sc Scale) ([]AblationPoint, error) {
	sc = sc.or(DefaultSyntheticScale.Warmup, DefaultSyntheticScale.Measure)
	var study *AblationStudy
	for i := range AblationStudies {
		if AblationStudies[i].Name == name {
			study = &AblationStudies[i]
			break
		}
	}
	if study == nil {
		return nil, fmt.Errorf("catnap: unknown ablation %q (have %v)", name, AblationNames())
	}
	var out []AblationPoint
	for _, v := range study.Variants {
		for _, load := range AblationLoads {
			cfg := mustDesign("4NT-128b-PG")
			v.Mutate(&cfg)
			cfg.ApplyDefaults()
			cfg.Name = "4NT-128b-PG[" + study.Name + "=" + v.Label + "]"
			sim, err := New(cfg)
			if err != nil {
				return nil, err
			}
			res := sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(load), sc.Warmup, sc.Measure)
			out = append(out, AblationPoint{Study: study.Name, Variant: v.Label, Offered: load, Results: res})
		}
	}
	return out, nil
}

// AblationNames lists the available studies.
func AblationNames() []string {
	out := make([]string, len(AblationStudies))
	for i, s := range AblationStudies {
		out[i] = s.Name
	}
	return out
}
