package catnap

// The core stepping benchmark harness: BenchmarkStep times Network.Step
// across the load x subnets x gating matrix, each scenario in both
// stepping modes (the /ref sub-benchmarks run the retained reference
// scan, so `go test -bench Step` + benchstat compares the incremental
// path against the pre-optimization implementation on the same tree).
// TestCoreBenchGuard is the `make bench-core` entry point: it reruns the
// matrix interleaved min-of-N, writes BENCH_core.json, and enforces the
// regression bounds — the sleep-dominated low-load scenario must step at
// least 3x faster than the reference scan, the idle-gated steady state
// must allocate exactly 0 bytes/cycle, the sharded saturation scenario
// must beat sequential stepping 2x when enough cores exist, and idle
// fast-forward must beat stepping the same idle span 100x.
//
// All measurements cover the steady state only: simulator construction
// and warmup run outside the timed (and allocation-counted) window, so
// ns/cycle and bytes/cycle are pure stepping costs.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/catnap-noc/catnap/internal/traffic"
)

// coreScenario is one point of the benchmark matrix. Scenarios span the
// regimes the optimization cares about: a fully idle gated mesh (every
// router asleep — the O(active) best case), the paper's low-load region,
// the Figure 12 burst schedule (sleep/wake churn), saturation (dense
// occupancy, congestion churn — the no-win-available case), an ungated
// single-subnet design (no power phase work at all), and saturation
// under the sharded router phase (the parallel-stepping win case).
type coreScenario struct {
	name   string
	design string
	sched  traffic.Schedule
	// shards > 0 runs the fast arm with that many router-phase shards
	// (Config.ShardedRouters); 0 keeps sequential incremental stepping.
	shards int
	// refSeq selects the ref arm: false = the retained reference scan
	// (pre-optimization baseline), true = sequential incremental
	// stepping (the baseline a sharded fast arm must beat).
	refSeq bool
	// skip arms idle fast-forward on the fast arm. Every other scenario
	// pins NoIdleSkip in BOTH arms: they measure per-cycle stepping cost,
	// and letting the fast arm jump over its idle cycles (the default
	// execution mode) would quietly turn them into skip benchmarks.
	skip bool
}

const (
	coreBenchWarmup  = 500
	coreBenchMeasure = 4500
)

var coreScenarios = []coreScenario{
	{name: "idle-gated", design: "4NT-128b-PG", sched: traffic.Constant(0)},
	{name: "lowload-gated", design: "4NT-128b-PG", sched: traffic.Constant(0.02)},
	{name: "bursty-gated", design: "4NT-128b-PG", sched: traffic.Fig12Bursts()},
	{name: "saturation-gated", design: "4NT-128b-PG", sched: traffic.Constant(0.45)},
	{name: "ungated-1NT", design: "1NT-512b", sched: traffic.Constant(0.10)},
	{name: "saturation-gated-parallel", design: "4NT-128b-PG", sched: traffic.Constant(0.45),
		shards: 8, refSeq: true},
	// idle-skip measures the event-driven fast-forward win itself: the
	// fully idle gated mesh with IdleSkip armed versus sequential
	// incremental stepping of the same idle cycles (the O(active) path
	// the fast-forward replaces; the reference scan would overstate it).
	{name: "idle-skip", design: "4NT-128b-PG", sched: traffic.Constant(0),
		refSeq: true, skip: true},
}

// buildCoreSim constructs one arm's simulator. Both arms of a scenario
// share the design's seed, so paired runs inject the identical packet
// sequence and any fast/ref divergence is a determinism bug, not noise.
func buildCoreSim(sc coreScenario, ref bool) *Simulator {
	cfg := mustDesign(sc.design)
	cfg.NoIdleSkip = ref || !sc.skip
	if !ref && sc.shards > 0 {
		cfg.ShardedRouters = true
		cfg.ShardCount = sc.shards
	}
	sim := mustSim(cfg)
	if ref && !sc.refSeq {
		sim.SetReferenceScan(true)
	}
	return sim
}

// coreRun is one measured steady-state window.
type coreRun struct {
	res     Results
	elapsed time.Duration
	bytes   uint64
}

// runCoreScenario executes one arm: construction and warmup untimed,
// then a timed, allocation-counted measurement window. StartMeasure runs
// before the first ReadMemStats so its own allocations (fresh latency
// histograms) stay out of the bytes/cycle figure.
func runCoreScenario(sc coreScenario, ref bool) coreRun {
	sim := buildCoreSim(sc, ref)
	sim.UseSynthetic(traffic.UniformRandom{}, sc.sched, 0)
	sim.Run(coreBenchWarmup)
	sim.StartMeasure()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	sim.Run(coreBenchMeasure)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return coreRun{res: sim.StopMeasure(), elapsed: elapsed, bytes: ms1.TotalAlloc - ms0.TotalAlloc}
}

// BenchmarkStep times the steady-state stepping window per iteration for
// every scenario; the /ref variants use each scenario's baseline arm.
// Construction and warmup run with the timer (and allocation counter)
// stopped, so b/op reports pure per-window stepping allocations —
// idle-gated must report 0 B/op.
func BenchmarkStep(b *testing.B) {
	for _, sc := range coreScenarios {
		for _, ref := range []bool{false, true} {
			name := sc.name
			if ref {
				name += "/ref"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					sim := buildCoreSim(sc, ref)
					sim.UseSynthetic(traffic.UniformRandom{}, sc.sched, 0)
					sim.Run(coreBenchWarmup)
					b.StartTimer()
					sim.Run(coreBenchMeasure)
				}
				perCycle := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / coreBenchMeasure
				b.ReportMetric(perCycle, "ns/cycle")
			})
		}
	}
}

// coreBenchRow is one scenario's entry in BENCH_core.json. The ref
// columns are that scenario's baseline measured on the same tree and
// machine — the retained reference scan (the original implementation,
// kept verbatim) for the incremental scenarios, sequential incremental
// stepping for the sharded one — so the speedup column is
// machine-independent.
type coreBenchRow struct {
	FastNsPerCycle    float64 `json:"fast_ns_per_cycle"`
	RefNsPerCycle     float64 `json:"ref_ns_per_cycle"`
	Speedup           float64 `json:"speedup"`
	FastBytesPerCycle float64 `json:"fast_bytes_per_cycle"`
	RefBytesPerCycle  float64 `json:"ref_bytes_per_cycle"`
	Shards            int     `json:"shards,omitempty"`
	RefMode           string  `json:"ref_mode"`
}

// TestCoreBenchGuard is the `make bench-core` guard: min-of-N wall clock
// and allocation for every scenario in both arms, interleaved so machine
// noise hits both arms alike, written to BENCH_core.json. It fails if
// the incremental path steps the low-load scenario less than 3x faster
// than the reference scan, if the idle-gated steady state allocates at
// all, or — on machines with at least 8 cores — if 8-shard stepping
// fails to beat sequential stepping 2x at saturation. Gated behind
// CORE_BENCH=1 because wall-clock assertions do not belong in the
// default -race test run.
func TestCoreBenchGuard(t *testing.T) {
	if os.Getenv("CORE_BENCH") == "" {
		t.Skip("set CORE_BENCH=1 (or run `make bench-core`) to run the core stepping benchmark")
	}

	const reps = 5
	type arm struct {
		sc  coreScenario
		ref bool
	}
	var arms []arm
	for _, sc := range coreScenarios {
		arms = append(arms, arm{sc, false}, arm{sc, true})
	}

	bestNs := make([]time.Duration, len(arms))
	bestBytes := make([]uint64, len(arms))
	for i := range arms {
		bestNs[i] = time.Duration(1<<63 - 1)
		bestBytes[i] = 1<<64 - 1
	}
	results := make([]Results, len(arms))
	for r := 0; r < reps; r++ {
		for i, a := range arms {
			run := runCoreScenario(a.sc, a.ref)
			if a.sc.name != "idle-gated" && a.sc.name != "idle-skip" && run.res.AcceptedThroughput <= 0 {
				t.Fatalf("%s produced no traffic", a.sc.name)
			}
			if run.elapsed < bestNs[i] {
				bestNs[i] = run.elapsed
			}
			if run.bytes < bestBytes[i] {
				bestBytes[i] = run.bytes
			}
			results[i] = run.res
		}
	}

	report := struct {
		Cycles     int64                   `json:"measure_cycles_per_run"`
		Warmup     int64                   `json:"warmup_cycles_per_run"`
		Reps       int                     `json:"reps_min_of"`
		GOMAXPROCS int                     `json:"gomaxprocs"`
		Scenarios  map[string]coreBenchRow `json:"scenarios"`
	}{
		Cycles: coreBenchMeasure, Warmup: coreBenchWarmup, Reps: reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Scenarios: map[string]coreBenchRow{},
	}

	perCycle := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / coreBenchMeasure }
	for i := 0; i < len(arms); i += 2 {
		sc := arms[i].sc
		refMode := "reference-scan"
		if sc.refSeq {
			refMode = "sequential-incremental"
		}
		row := coreBenchRow{
			FastNsPerCycle:    perCycle(bestNs[i]),
			RefNsPerCycle:     perCycle(bestNs[i+1]),
			FastBytesPerCycle: float64(bestBytes[i]) / coreBenchMeasure,
			RefBytesPerCycle:  float64(bestBytes[i+1]) / coreBenchMeasure,
			Shards:            sc.shards,
			RefMode:           refMode,
		}
		row.Speedup = row.RefNsPerCycle / row.FastNsPerCycle
		report.Scenarios[sc.name] = row
		t.Logf("%-26s fast %8.1f ns/cycle %7.1f B/cycle  ref %8.1f ns/cycle %7.1f B/cycle  speedup %.2fx",
			sc.name, row.FastNsPerCycle, row.FastBytesPerCycle,
			row.RefNsPerCycle, row.RefBytesPerCycle, row.Speedup)

		// Both arms inject the same seeded packet sequence; the modes are
		// bit-identical by the differential suite, so the measured windows
		// must agree exactly.
		if f, r := results[i], results[i+1]; f.AcceptedThroughput != r.AcceptedThroughput ||
			f.AvgLatency != r.AvgLatency || f.Power.Total != r.Power.Total {
			t.Errorf("%s: fast and ref arms diverged (accepted %.6f vs %.6f, latency %.3f vs %.3f)",
				sc.name, f.AcceptedThroughput, r.AcceptedThroughput, f.AvgLatency, r.AvgLatency)
		}
	}

	out := os.Getenv("BENCH_CORE_OUT")
	if out == "" {
		out = "BENCH_core.json"
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("core stepping benchmark written to %s\n", out)

	if sp := report.Scenarios["lowload-gated"].Speedup; sp < 3.0 {
		t.Errorf("lowload-gated speedup %.2fx below the 3x guard (fast %.1f ns/cycle, ref %.1f ns/cycle)",
			sp, report.Scenarios["lowload-gated"].FastNsPerCycle, report.Scenarios["lowload-gated"].RefNsPerCycle)
	}
	if by := report.Scenarios["idle-gated"].FastBytesPerCycle; by != 0 {
		t.Errorf("idle-gated steady state allocated %.1f bytes/cycle, want exactly 0", by)
	}
	if row := report.Scenarios["idle-skip"]; row.Speedup < 100 {
		t.Errorf("idle-skip speedup %.2fx below the 100x guard (fast %.1f ns/cycle, sequential %.1f ns/cycle)",
			row.Speedup, row.FastNsPerCycle, row.RefNsPerCycle)
	}
	if par := report.Scenarios["saturation-gated-parallel"]; runtime.GOMAXPROCS(0) >= 8 {
		if par.Speedup < 2.0 {
			t.Errorf("saturation-gated-parallel speedup %.2fx below the 2x guard at %d shards (fast %.1f ns/cycle, sequential %.1f ns/cycle)",
				par.Speedup, par.Shards, par.FastNsPerCycle, par.RefNsPerCycle)
		}
	} else {
		t.Logf("saturation-gated-parallel: %.2fx at %d shards recorded; 2x guard skipped (GOMAXPROCS=%d < 8)",
			par.Speedup, par.Shards, runtime.GOMAXPROCS(0))
	}
}
