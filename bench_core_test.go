package catnap

// The core stepping benchmark harness: BenchmarkStep times Network.Step
// across the load x subnets x gating matrix, each scenario in both
// stepping modes (the /ref sub-benchmarks run the retained reference
// scan, so `go test -bench Step` compares the incremental path against
// the pre-optimization implementation on the same tree).
// TestCoreBenchGuard is the `make bench-core` entry point: it reruns the
// matrix interleaved min-of-N, measures every sharded scenario's fast arm
// at GOMAXPROCS 1/2/4/8 so the scaling trajectory is visible across PRs,
// writes BENCH_core.json, and enforces the regression bounds — the
// sleep-dominated low-load scenario must step at least 3x faster than the
// reference scan, the idle-gated steady state must allocate exactly 0
// bytes/cycle, sharded stepping must not allocate more per cycle than
// sequential stepping, the sharded saturation scenario must beat
// sequential stepping 3x at GOMAXPROCS=8 when enough physical cores
// exist, idle fast-forward must beat stepping the same idle span
// 100x, and the explore-cached scenario (a small real campaign rerun
// against a warm result cache versus a cold one) must show at least a
// 20x warm-over-cold win with byte-identical frontiers.
//
// All measurements cover the steady state only: simulator construction
// and warmup run outside the timed (and allocation-counted) window, so
// ns/cycle and bytes/cycle are pure stepping costs.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/catnap-noc/catnap/internal/traffic"
)

// coreScenario is one point of the benchmark matrix. Scenarios span the
// regimes the optimization cares about: a fully idle gated mesh (every
// router asleep — the O(active) best case), the paper's low-load region,
// the Figure 12 burst schedule (sleep/wake churn), saturation (dense
// occupancy, congestion churn — the no-win-available case), an ungated
// single-subnet design (no power phase work at all), and saturation
// under the sharded router phase (the parallel-stepping win case).
type coreScenario struct {
	name   string
	design string
	sched  traffic.Schedule
	// shards > 0 runs the fast arm with that many router-phase shards
	// (Config.ShardedRouters); 0 keeps sequential incremental stepping.
	shards int
	// refSeq selects the ref arm: false = the retained reference scan
	// (pre-optimization baseline), true = sequential incremental
	// stepping (the baseline a sharded fast arm must beat).
	refSeq bool
	// skip arms idle fast-forward on the fast arm. Every other scenario
	// pins NoIdleSkip in BOTH arms: they measure per-cycle stepping cost,
	// and letting the fast arm jump over its idle cycles (the default
	// execution mode) would quietly turn them into skip benchmarks.
	skip bool
}

const (
	coreBenchWarmup  = 500
	coreBenchMeasure = 4500
)

var coreScenarios = []coreScenario{
	{name: "idle-gated", design: "4NT-128b-PG", sched: traffic.Constant(0)},
	{name: "lowload-gated", design: "4NT-128b-PG", sched: traffic.Constant(0.02)},
	{name: "bursty-gated", design: "4NT-128b-PG", sched: traffic.Fig12Bursts()},
	{name: "saturation-gated", design: "4NT-128b-PG", sched: traffic.Constant(0.45)},
	{name: "ungated-1NT", design: "1NT-512b", sched: traffic.Constant(0.10)},
	{name: "saturation-gated-parallel", design: "4NT-128b-PG", sched: traffic.Constant(0.45),
		shards: 8, refSeq: true},
	// idle-skip measures the event-driven fast-forward win itself: the
	// fully idle gated mesh with IdleSkip armed versus sequential
	// incremental stepping of the same idle cycles (the O(active) path
	// the fast-forward replaces; the reference scan would overstate it).
	{name: "idle-skip", design: "4NT-128b-PG", sched: traffic.Constant(0),
		refSeq: true, skip: true},
}

// buildCoreSim constructs one arm's simulator. Both arms of a scenario
// share the design's seed, so paired runs inject the identical packet
// sequence and any fast/ref divergence is a determinism bug, not noise.
func buildCoreSim(sc coreScenario, ref bool) *Simulator {
	cfg := mustDesign(sc.design)
	cfg.NoIdleSkip = ref || !sc.skip
	if !ref && sc.shards > 0 {
		cfg.ShardedRouters = true
		cfg.ShardCount = sc.shards
	}
	sim := mustSim(cfg)
	if ref && !sc.refSeq {
		m := sim.ExecMode()
		m.ReferenceScan = true
		if err := sim.SetExecMode(m); err != nil {
			panic(err)
		}
	}
	return sim
}

// coreRun is one measured steady-state window.
type coreRun struct {
	res     Results
	elapsed time.Duration
	bytes   uint64
}

// runCoreScenario executes one arm: construction and warmup untimed,
// then a timed, allocation-counted measurement window. StartMeasure runs
// before the first ReadMemStats so its own allocations (fresh latency
// histograms) stay out of the bytes/cycle figure.
func runCoreScenario(sc coreScenario, ref bool) coreRun {
	sim := buildCoreSim(sc, ref)
	sim.UseSynthetic(traffic.UniformRandom{}, sc.sched, 0)
	sim.Run(coreBenchWarmup)
	sim.StartMeasure()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	sim.Run(coreBenchMeasure)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return coreRun{res: sim.StopMeasure(), elapsed: elapsed, bytes: ms1.TotalAlloc - ms0.TotalAlloc}
}

// BenchmarkStep times the steady-state stepping window per iteration for
// every scenario; the /ref variants use each scenario's baseline arm.
// Construction and warmup run with the timer (and allocation counter)
// stopped, so b/op reports pure per-window stepping allocations —
// idle-gated must report 0 B/op.
func BenchmarkStep(b *testing.B) {
	for _, sc := range coreScenarios {
		for _, ref := range []bool{false, true} {
			name := sc.name
			if ref {
				name += "/ref"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					sim := buildCoreSim(sc, ref)
					sim.UseSynthetic(traffic.UniformRandom{}, sc.sched, 0)
					sim.Run(coreBenchWarmup)
					b.StartTimer()
					sim.Run(coreBenchMeasure)
				}
				perCycle := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / coreBenchMeasure
				b.ReportMetric(perCycle, "ns/cycle")
			})
		}
	}
}

// exploreBenchOpts is the explore-cached scenario's campaign: a small
// grid of real simulations at the core-bench per-point scale, so the
// cold arm's cost is dominated by simulation exactly like a user
// campaign.
func exploreBenchOpts(cacheDir string) ExperimentOpts {
	return ExperimentOpts{
		Scale: Scale{Warmup: coreBenchWarmup, Measure: coreBenchMeasure},
		Explore: ExploreOpts{
			Space: ExploreSpace{
				Subnets:    []int{1, 4},
				Widths:     []int{128, 512},
				VCDepths:   []int{4},
				TIdles:     []int{4},
				Metrics:    []string{"BFM"},
				Thresholds: []float64{0, 2},
			},
			Grid:     true,
			CacheDir: cacheDir,
		},
	}
}

// runExploreCachedScenario measures the result cache's campaign-rerun
// win: the identical point set evaluated cold (fresh cache directory,
// every point simulated) versus warm (pre-populated directory, every
// point a cache hit), min-of-reps wall clock for both arms. The fronts
// must be byte-identical — the warm arm is only a win if it is also
// exactly right. The row's "cycles" are the campaign's total simulated
// cycles, so ns/cycle stays comparable across report rows; RefMode
// "cold-cache" marks the baseline arm.
func runExploreCachedScenario(t *testing.T, reps int) coreBenchRow {
	t.Helper()
	base := t.TempDir()
	warmDir := filepath.Join(base, "warm")
	totalCycles := float64((coreBenchWarmup + coreBenchMeasure) * 8)

	runOnce := func(dir string) (time.Duration, uint64, *ExploreResult) {
		o := exploreBenchOpts(dir)
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		r, err := RunExplore(context.Background(), o)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			t.Fatalf("explore-cached campaign: %v", err)
		}
		return elapsed, ms1.TotalAlloc - ms0.TotalAlloc, r
	}

	// Prime the warm directory (uncounted) and keep its front as the
	// reference serialization.
	_, _, primed := runOnce(warmDir)
	var want bytes.Buffer
	if err := primed.WriteFront(&want); err != nil {
		t.Fatal(err)
	}

	coldNs, warmNs := time.Duration(1<<63-1), time.Duration(1<<63-1)
	coldBytes, warmBytes := uint64(1<<64-1), uint64(1<<64-1)
	for r := 0; r < reps; r++ {
		coldElapsed, coldAlloc, coldRes := runOnce(filepath.Join(base, fmt.Sprintf("cold-%d", r)))
		if coldRes.Cache.Hits != 0 || coldRes.Cache.Misses != coldRes.Proposed {
			t.Fatalf("cold arm not actually cold: %+v", coldRes.Cache)
		}
		warmElapsed, warmAlloc, warmRes := runOnce(warmDir)
		if warmRes.Cache.Misses != 0 || warmRes.Cache.Hits != warmRes.Proposed {
			t.Fatalf("warm arm not fully cached: %+v", warmRes.Cache)
		}
		var cold, warm bytes.Buffer
		if err := coldRes.WriteFront(&cold); err != nil {
			t.Fatal(err)
		}
		if err := warmRes.WriteFront(&warm); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cold.Bytes(), want.Bytes()) || !bytes.Equal(warm.Bytes(), want.Bytes()) {
			t.Fatal("explore-cached arms produced different frontiers")
		}
		if coldElapsed < coldNs {
			coldNs = coldElapsed
		}
		if warmElapsed < warmNs {
			warmNs = warmElapsed
		}
		if coldAlloc < coldBytes {
			coldBytes = coldAlloc
		}
		if warmAlloc < warmBytes {
			warmBytes = warmAlloc
		}
	}

	row := coreBenchRow{
		FastNsPerCycle:    float64(warmNs.Nanoseconds()) / totalCycles,
		RefNsPerCycle:     float64(coldNs.Nanoseconds()) / totalCycles,
		FastBytesPerCycle: float64(warmBytes) / totalCycles,
		RefBytesPerCycle:  float64(coldBytes) / totalCycles,
		RefMode:           "cold-cache",
	}
	row.Speedup = row.RefNsPerCycle / row.FastNsPerCycle
	t.Logf("%-26s warm %8.1f ns/cycle %7.1f B/cycle  cold %8.1f ns/cycle %7.1f B/cycle  speedup %.2fx",
		"explore-cached", row.FastNsPerCycle, row.FastBytesPerCycle,
		row.RefNsPerCycle, row.RefBytesPerCycle, row.Speedup)
	return row
}

// The sweep-reuse scenario: a Fig6-style designs x loads grid evaluated
// point by point on one worker, reuse-pool arm (one SimPool recycling a
// single simulator via Simulator.Reset) versus fresh-construction arm
// (catnap.New per point — what every sweep did before the reuse pool).
// The per-point windows are deliberately short and the loads sit in the
// paper's near-idle energy-proportional region: the scenario measures
// per-point provisioning overhead, which is what the pool optimizes, not
// stepping cost (campaign-scale points amortize construction; explore
// and quick-mode campaigns with many short points do not). Both arms run
// the same seeded traffic, so their Results must match exactly.
var (
	sweepReuseDesigns = []string{"1NT-512b", "2NT-256b", "4NT-128b", "4NT-128b-PG"}
	sweepReuseLoads   = []float64{0, 0.002, 0.004}
)

const (
	sweepReuseWarmup  = 10
	sweepReuseMeasure = 30
)

// runSweepReuseArm evaluates the whole grid once and returns the wall
// clock, allocated bytes, and every point's Results in grid order.
func runSweepReuseArm(reuse bool) (time.Duration, uint64, []Results, error) {
	var pool *SimPool
	if reuse {
		pool = NewSimPool()
	}
	out := make([]Results, 0, len(sweepReuseDesigns)*len(sweepReuseLoads))
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for _, d := range sweepReuseDesigns {
		cfg := mustDesign(d)
		for _, load := range sweepReuseLoads {
			// A nil pool degrades to plain New — the fresh-construction arm.
			sim, err := pool.Get(cfg)
			if err != nil {
				return 0, 0, nil, err
			}
			out = append(out, sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(load), sweepReuseWarmup, sweepReuseMeasure))
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return elapsed, ms1.TotalAlloc - ms0.TotalAlloc, out, nil
}

// runSweepReuseScenario measures both arms interleaved min-of-reps and
// asserts per-point bit-identity: simulator reuse is only a win if every
// reused point reports exactly what a fresh simulator would.
func runSweepReuseScenario(t *testing.T, reps int) coreBenchRow {
	t.Helper()
	points := len(sweepReuseDesigns) * len(sweepReuseLoads)
	totalCycles := float64(points * (sweepReuseWarmup + sweepReuseMeasure))
	// One untimed pass per arm warms the precompute cache, freelists, and
	// allocator before the measured reps.
	for _, reuse := range []bool{false, true} {
		if _, _, _, err := runSweepReuseArm(reuse); err != nil {
			t.Fatalf("sweep-reuse warmup: %v", err)
		}
	}
	freshNs, reuseNs := time.Duration(1<<63-1), time.Duration(1<<63-1)
	freshBytes, reuseBytes := uint64(1<<64-1), uint64(1<<64-1)
	for r := 0; r < reps; r++ {
		fe, fb, fres, err := runSweepReuseArm(false)
		if err != nil {
			t.Fatalf("sweep-reuse fresh arm: %v", err)
		}
		re, rb, rres, err := runSweepReuseArm(true)
		if err != nil {
			t.Fatalf("sweep-reuse reuse arm: %v", err)
		}
		for i := range fres {
			if !reflect.DeepEqual(fres[i], rres[i]) {
				t.Fatalf("sweep-reuse point %d diverged between fresh and reuse arms", i)
			}
		}
		if fres[len(fres)-1].AcceptedThroughput <= 0 {
			t.Fatal("sweep-reuse produced no traffic on its highest-load point")
		}
		if fe < freshNs {
			freshNs = fe
		}
		if re < reuseNs {
			reuseNs = re
		}
		if fb < freshBytes {
			freshBytes = fb
		}
		if rb < reuseBytes {
			reuseBytes = rb
		}
	}
	row := coreBenchRow{
		FastNsPerCycle:    float64(reuseNs.Nanoseconds()) / totalCycles,
		RefNsPerCycle:     float64(freshNs.Nanoseconds()) / totalCycles,
		FastBytesPerCycle: float64(reuseBytes) / totalCycles,
		RefBytesPerCycle:  float64(freshBytes) / totalCycles,
		FastPointsPerSec:  float64(points) / reuseNs.Seconds(),
		RefPointsPerSec:   float64(points) / freshNs.Seconds(),
		RefMode:           "fresh-construction",
	}
	row.Speedup = row.RefNsPerCycle / row.FastNsPerCycle
	t.Logf("%-26s reuse %8.0f pts/s %8.1f B/cycle  fresh %8.0f pts/s %8.1f B/cycle  speedup %.2fx",
		"sweep-reuse", row.FastPointsPerSec, row.FastBytesPerCycle,
		row.RefPointsPerSec, row.RefBytesPerCycle, row.Speedup)
	return row
}

// TestSweepReuseSmoke runs one rep of the sweep-reuse scenario in the
// default test suite: it asserts the bit-identity of the reuse-pool and
// fresh-construction arms on every grid point (the property the reuse
// plumbing must never lose), not the wall-clock ratio — the ≥2x
// points/sec guard lives in TestCoreBenchGuard behind CORE_BENCH=1 like
// every other wall-clock assertion.
func TestSweepReuseSmoke(t *testing.T) {
	runSweepReuseScenario(t, 1)
}

// gmpPoint is one GOMAXPROCS level of a sharded scenario's fast arm: the
// same workload re-measured with the worker pool capped at that width.
// Speedup is against the scenario's ref arm (sequential incremental
// stepping, which has no parallelism to gain). Points above NumCPU are
// recorded anyway — they show oversubscription honestly rather than
// hiding it — so read the trajectory together with the report's num_cpu.
type gmpPoint struct {
	GOMAXPROCS        int     `json:"gomaxprocs"`
	FastNsPerCycle    float64 `json:"fast_ns_per_cycle"`
	FastBytesPerCycle float64 `json:"fast_bytes_per_cycle"`
	Speedup           float64 `json:"speedup"`
}

// coreBenchRow is one scenario's entry in BENCH_core.json. The ref
// columns are that scenario's baseline measured on the same tree and
// machine — the retained reference scan (the original implementation,
// kept verbatim) for the incremental scenarios, sequential incremental
// stepping for the sharded one — so the speedup column is
// machine-independent. Sharded scenarios additionally carry the
// GOMAXPROCS 1/2/4/8 fast-arm matrix; the top-level fast columns are
// measured at the ambient GOMAXPROCS.
type coreBenchRow struct {
	FastNsPerCycle    float64 `json:"fast_ns_per_cycle"`
	RefNsPerCycle     float64 `json:"ref_ns_per_cycle"`
	Speedup           float64 `json:"speedup"`
	FastBytesPerCycle float64 `json:"fast_bytes_per_cycle"`
	RefBytesPerCycle  float64 `json:"ref_bytes_per_cycle"`
	Shards            int     `json:"shards,omitempty"`
	RefMode           string  `json:"ref_mode"`
	// Points/sec columns, set only by throughput-style scenarios
	// (sweep-reuse): whole sweep points completed per second per arm.
	// For those scenarios ns/cycle spreads per-point provisioning cost
	// over simulated cycles and is not a stepping cost, so readers (and
	// catnap-benchdiff) should prefer these columns when present.
	FastPointsPerSec float64    `json:"fast_points_per_sec,omitempty"`
	RefPointsPerSec  float64    `json:"ref_points_per_sec,omitempty"`
	GOMAXPROCSPoints []gmpPoint `json:"gomaxprocs_points,omitempty"`
}

// benchGOMAXPROCS is the fast-arm scaling matrix recorded for every
// sharded scenario.
var benchGOMAXPROCS = []int{1, 2, 4, 8}

// TestCoreBenchGuard is the `make bench-core` guard: min-of-N wall clock
// and allocation for every scenario in both arms, interleaved so machine
// noise hits both arms alike, plus a GOMAXPROCS 1/2/4/8 fast-arm sweep
// for the sharded scenarios, written to BENCH_core.json. It fails if the
// incremental path steps the low-load scenario less than 3x faster than
// the reference scan, if the idle-gated steady state allocates at all,
// if sharded stepping allocates more per cycle than its sequential ref
// arm (the dispatch path must be alloc-free), or — on machines with at
// least 8 physical cores — if 8-shard stepping fails to beat sequential
// stepping 3x at saturation with GOMAXPROCS=8. Gated behind CORE_BENCH=1
// because wall-clock assertions do not belong in the default -race test
// run.
func TestCoreBenchGuard(t *testing.T) {
	if os.Getenv("CORE_BENCH") == "" {
		t.Skip("set CORE_BENCH=1 (or run `make bench-core`) to run the core stepping benchmark")
	}

	const reps = 5
	type arm struct {
		sc  coreScenario
		ref bool
	}
	var arms []arm
	for _, sc := range coreScenarios {
		arms = append(arms, arm{sc, false}, arm{sc, true})
	}

	bestNs := make([]time.Duration, len(arms))
	bestBytes := make([]uint64, len(arms))
	for i := range arms {
		bestNs[i] = time.Duration(1<<63 - 1)
		bestBytes[i] = 1<<64 - 1
	}
	results := make([]Results, len(arms))
	for r := 0; r < reps; r++ {
		for i, a := range arms {
			run := runCoreScenario(a.sc, a.ref)
			if a.sc.name != "idle-gated" && a.sc.name != "idle-skip" && run.res.AcceptedThroughput <= 0 {
				t.Fatalf("%s produced no traffic", a.sc.name)
			}
			if run.elapsed < bestNs[i] {
				bestNs[i] = run.elapsed
			}
			if run.bytes < bestBytes[i] {
				bestBytes[i] = run.bytes
			}
			results[i] = run.res
		}
	}

	report := struct {
		Cycles     int64                   `json:"measure_cycles_per_run"`
		Warmup     int64                   `json:"warmup_cycles_per_run"`
		Reps       int                     `json:"reps_min_of"`
		GOMAXPROCS int                     `json:"gomaxprocs"`
		NumCPU     int                     `json:"num_cpu"`
		Scenarios  map[string]coreBenchRow `json:"scenarios"`
	}{
		Cycles: coreBenchMeasure, Warmup: coreBenchWarmup, Reps: reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Scenarios: map[string]coreBenchRow{},
	}

	perCycle := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / coreBenchMeasure }
	for i := 0; i < len(arms); i += 2 {
		sc := arms[i].sc
		refMode := "reference-scan"
		if sc.refSeq {
			refMode = "sequential-incremental"
		}
		row := coreBenchRow{
			FastNsPerCycle:    perCycle(bestNs[i]),
			RefNsPerCycle:     perCycle(bestNs[i+1]),
			FastBytesPerCycle: float64(bestBytes[i]) / coreBenchMeasure,
			RefBytesPerCycle:  float64(bestBytes[i+1]) / coreBenchMeasure,
			Shards:            sc.shards,
			RefMode:           refMode,
		}
		row.Speedup = row.RefNsPerCycle / row.FastNsPerCycle

		// GOMAXPROCS sweep: re-measure the sharded fast arm at each pool
		// width. The simulator is rebuilt inside the adjusted GOMAXPROCS so
		// the StepPool sizes itself to the target width; the ref arm is
		// width-independent, so each point reuses the scenario's ref
		// baseline. Every width must also reproduce the ref arm's results
		// exactly — worker count is pure dispatch policy.
		if sc.shards > 0 {
			for _, width := range benchGOMAXPROCS {
				prev := runtime.GOMAXPROCS(width)
				pointNs := time.Duration(1<<63 - 1)
				pointBytes := uint64(1<<64 - 1)
				var pointRes Results
				for r := 0; r < reps; r++ {
					run := runCoreScenario(sc, false)
					if run.elapsed < pointNs {
						pointNs = run.elapsed
					}
					if run.bytes < pointBytes {
						pointBytes = run.bytes
					}
					pointRes = run.res
				}
				runtime.GOMAXPROCS(prev)
				if ref := results[i+1]; pointRes.AcceptedThroughput != ref.AcceptedThroughput ||
					pointRes.AvgLatency != ref.AvgLatency || pointRes.Power.Total != ref.Power.Total {
					t.Errorf("%s: GOMAXPROCS=%d arm diverged from ref (accepted %.6f vs %.6f, latency %.3f vs %.3f)",
						sc.name, width, pointRes.AcceptedThroughput, ref.AcceptedThroughput,
						pointRes.AvgLatency, ref.AvgLatency)
				}
				pt := gmpPoint{
					GOMAXPROCS:        width,
					FastNsPerCycle:    perCycle(pointNs),
					FastBytesPerCycle: float64(pointBytes) / coreBenchMeasure,
				}
				pt.Speedup = row.RefNsPerCycle / pt.FastNsPerCycle
				row.GOMAXPROCSPoints = append(row.GOMAXPROCSPoints, pt)
				t.Logf("%-26s   GOMAXPROCS=%d fast %8.1f ns/cycle %7.1f B/cycle  speedup %.2fx",
					sc.name, width, pt.FastNsPerCycle, pt.FastBytesPerCycle, pt.Speedup)
			}
		}

		report.Scenarios[sc.name] = row
		t.Logf("%-26s fast %8.1f ns/cycle %7.1f B/cycle  ref %8.1f ns/cycle %7.1f B/cycle  speedup %.2fx",
			sc.name, row.FastNsPerCycle, row.FastBytesPerCycle,
			row.RefNsPerCycle, row.RefBytesPerCycle, row.Speedup)

		// Both arms inject the same seeded packet sequence; the modes are
		// bit-identical by the differential suite, so the measured windows
		// must agree exactly.
		if f, r := results[i], results[i+1]; f.AcceptedThroughput != r.AcceptedThroughput ||
			f.AvgLatency != r.AvgLatency || f.Power.Total != r.Power.Total {
			t.Errorf("%s: fast and ref arms diverged (accepted %.6f vs %.6f, latency %.3f vs %.3f)",
				sc.name, f.AcceptedThroughput, r.AcceptedThroughput, f.AvgLatency, r.AvgLatency)
		}
	}

	report.Scenarios["explore-cached"] = runExploreCachedScenario(t, reps)
	report.Scenarios["sweep-reuse"] = runSweepReuseScenario(t, reps)

	out := os.Getenv("BENCH_CORE_OUT")
	if out == "" {
		out = "BENCH_core.json"
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("core stepping benchmark written to %s\n", out)

	if sp := report.Scenarios["lowload-gated"].Speedup; sp < 3.0 {
		t.Errorf("lowload-gated speedup %.2fx below the 3x guard (fast %.1f ns/cycle, ref %.1f ns/cycle)",
			sp, report.Scenarios["lowload-gated"].FastNsPerCycle, report.Scenarios["lowload-gated"].RefNsPerCycle)
	}
	if by := report.Scenarios["idle-gated"].FastBytesPerCycle; by != 0 {
		t.Errorf("idle-gated steady state allocated %.1f bytes/cycle, want exactly 0", by)
	}
	if row := report.Scenarios["idle-skip"]; row.Speedup < 100 {
		t.Errorf("idle-skip speedup %.2fx below the 100x guard (fast %.1f ns/cycle, sequential %.1f ns/cycle)",
			row.Speedup, row.FastNsPerCycle, row.RefNsPerCycle)
	}
	if row := report.Scenarios["explore-cached"]; row.Speedup < 20 {
		t.Errorf("explore-cached speedup %.2fx below the 20x guard (warm %.1f ns/cycle, cold %.1f ns/cycle): the result cache must make campaign reruns nearly free",
			row.Speedup, row.FastNsPerCycle, row.RefNsPerCycle)
	}
	if row := report.Scenarios["sweep-reuse"]; row.Speedup < 2.0 {
		t.Errorf("sweep-reuse %.2fx below the 2x points/sec guard (reuse %.0f pts/s, fresh %.0f pts/s): in-place reset must keep per-point provisioning at least 2x cheaper than fresh construction",
			row.Speedup, row.FastPointsPerSec, row.RefPointsPerSec)
	}
	// Alloc parity: the sharded dispatch path (pool fan-out, steal cursors,
	// batched commit apply) must not allocate beyond what sequential
	// stepping of the same workload allocates. The small absolute tolerance
	// absorbs GC-timing jitter in the TotalAlloc deltas, nothing more.
	par := report.Scenarios["saturation-gated-parallel"]
	const allocParityTolerance = 8.0 // bytes/cycle
	if par.FastBytesPerCycle > par.RefBytesPerCycle+allocParityTolerance {
		t.Errorf("saturation-gated-parallel allocates %.2f B/cycle sharded vs %.2f B/cycle sequential: sharded dispatch must be alloc-free",
			par.FastBytesPerCycle, par.RefBytesPerCycle)
	}
	for _, pt := range par.GOMAXPROCSPoints {
		if pt.FastBytesPerCycle > par.RefBytesPerCycle+allocParityTolerance {
			t.Errorf("saturation-gated-parallel at GOMAXPROCS=%d allocates %.2f B/cycle vs %.2f B/cycle sequential: sharded dispatch must be alloc-free",
				pt.GOMAXPROCS, pt.FastBytesPerCycle, par.RefBytesPerCycle)
		}
	}

	// The wall-clock scaling guard reads the GOMAXPROCS=8 point and only
	// fires when 8 physical cores exist: below that the point measures
	// oversubscription, which the report records honestly but no guard
	// should fail on.
	var at8 *gmpPoint
	for k := range par.GOMAXPROCSPoints {
		if par.GOMAXPROCSPoints[k].GOMAXPROCS == 8 {
			at8 = &par.GOMAXPROCSPoints[k]
		}
	}
	switch {
	case at8 == nil:
		t.Errorf("saturation-gated-parallel is missing its GOMAXPROCS=8 point")
	case runtime.NumCPU() >= 8:
		if at8.Speedup < 3.0 {
			t.Errorf("saturation-gated-parallel speedup %.2fx below the 3x guard at %d shards, GOMAXPROCS=8 (fast %.1f ns/cycle, sequential %.1f ns/cycle)",
				at8.Speedup, par.Shards, at8.FastNsPerCycle, par.RefNsPerCycle)
		}
	default:
		t.Logf("saturation-gated-parallel: %.2fx at %d shards, GOMAXPROCS=8 recorded; 3x guard skipped (NumCPU=%d < 8)",
			at8.Speedup, par.Shards, runtime.NumCPU())
	}
}
