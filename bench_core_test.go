package catnap

// The core stepping benchmark harness: BenchmarkStep times Network.Step
// across the load x subnets x gating matrix, each scenario in both
// stepping modes (the /ref sub-benchmarks run the retained reference
// scan, so `go test -bench Step` + benchstat compares the incremental
// path against the pre-optimization implementation on the same tree).
// TestCoreBenchGuard is the `make bench-core` entry point: it reruns the
// matrix interleaved min-of-N, writes BENCH_core.json, and enforces the
// headline regression bound — the sleep-dominated low-load scenario must
// step at least 3x faster than the reference scan.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/catnap-noc/catnap/internal/traffic"
)

// coreScenario is one point of the benchmark matrix. Scenarios span the
// regimes the optimization cares about: a fully idle gated mesh (every
// router asleep — the O(active) best case), the paper's low-load region,
// the Figure 12 burst schedule (sleep/wake churn), saturation (dense
// occupancy, congestion churn — the no-win-available case), and an
// ungated single-subnet design (no power phase work at all).
type coreScenario struct {
	name   string
	design string
	sched  traffic.Schedule
}

const (
	coreBenchWarmup  = 500
	coreBenchMeasure = 4500
	coreBenchCycles  = coreBenchWarmup + coreBenchMeasure
)

var coreScenarios = []coreScenario{
	{"idle-gated", "4NT-128b-PG", traffic.Constant(0)},
	{"lowload-gated", "4NT-128b-PG", traffic.Constant(0.02)},
	{"bursty-gated", "4NT-128b-PG", traffic.Fig12Bursts()},
	{"saturation-gated", "4NT-128b-PG", traffic.Constant(0.45)},
	{"ungated-1NT", "1NT-512b", traffic.Constant(0.10)},
}

// runCoreScenario executes one fixed-length run and returns its results.
func runCoreScenario(sc coreScenario, ref bool) Results {
	sim := mustSim(mustDesign(sc.design))
	sim.SetReferenceScan(ref)
	return sim.RunSynthetic(traffic.UniformRandom{}, sc.sched, coreBenchWarmup, coreBenchMeasure)
}

// BenchmarkStep times one full fixed-length run per iteration for every
// scenario; the /ref variants use the reference scan. The ns/cycle
// metric is the per-cycle stepping cost (simulator construction
// included, amortized over 5000 cycles).
func BenchmarkStep(b *testing.B) {
	for _, sc := range coreScenarios {
		for _, ref := range []bool{false, true} {
			name := sc.name
			if ref {
				name += "/ref"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runCoreScenario(sc, ref)
				}
				perCycle := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / coreBenchCycles
				b.ReportMetric(perCycle, "ns/cycle")
			})
		}
	}
}

// coreBenchRow is one scenario's entry in BENCH_core.json. The ref
// columns are the pre-optimization baseline measured on the same tree
// and machine (the reference scan is the original implementation, kept
// verbatim), so the speedup column is machine-independent.
type coreBenchRow struct {
	FastNsPerCycle    float64 `json:"fast_ns_per_cycle"`
	RefNsPerCycle     float64 `json:"ref_ns_per_cycle"`
	Speedup           float64 `json:"speedup"`
	FastBytesPerCycle float64 `json:"fast_bytes_per_cycle"`
	RefBytesPerCycle  float64 `json:"ref_bytes_per_cycle"`
}

// TestCoreBenchGuard is the `make bench-core` guard: min-of-N wall clock
// and allocation for every scenario in both modes, interleaved so
// machine noise hits both arms alike, written to BENCH_core.json. It
// fails if the incremental path steps the low-load scenario less than 3x
// faster than the reference scan. Gated behind CORE_BENCH=1 because
// wall-clock assertions do not belong in the default -race test run.
func TestCoreBenchGuard(t *testing.T) {
	if os.Getenv("CORE_BENCH") == "" {
		t.Skip("set CORE_BENCH=1 (or run `make bench-core`) to run the core stepping benchmark")
	}

	const reps = 5
	type arm struct {
		sc  coreScenario
		ref bool
	}
	var arms []arm
	for _, sc := range coreScenarios {
		arms = append(arms, arm{sc, false}, arm{sc, true})
	}

	bestNs := make([]time.Duration, len(arms))
	bestBytes := make([]uint64, len(arms))
	for i := range arms {
		bestNs[i] = time.Duration(1<<63 - 1)
		bestBytes[i] = 1<<64 - 1
	}
	var ms0, ms1 runtime.MemStats
	for r := 0; r < reps; r++ {
		for i, a := range arms {
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			res := runCoreScenario(a.sc, a.ref)
			d := time.Since(start)
			runtime.ReadMemStats(&ms1)
			if a.sc.name != "idle-gated" && res.AcceptedThroughput <= 0 {
				t.Fatalf("%s produced no traffic", a.sc.name)
			}
			if d < bestNs[i] {
				bestNs[i] = d
			}
			if alloc := ms1.TotalAlloc - ms0.TotalAlloc; alloc < bestBytes[i] {
				bestBytes[i] = alloc
			}
		}
	}

	report := struct {
		Cycles    int64                   `json:"cycles_per_run"`
		Reps      int                     `json:"reps_min_of"`
		Scenarios map[string]coreBenchRow `json:"scenarios"`
	}{Cycles: coreBenchCycles, Reps: reps, Scenarios: map[string]coreBenchRow{}}

	perCycle := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / coreBenchCycles }
	for i := 0; i < len(arms); i += 2 {
		sc := arms[i].sc
		row := coreBenchRow{
			FastNsPerCycle:    perCycle(bestNs[i]),
			RefNsPerCycle:     perCycle(bestNs[i+1]),
			FastBytesPerCycle: float64(bestBytes[i]) / coreBenchCycles,
			RefBytesPerCycle:  float64(bestBytes[i+1]) / coreBenchCycles,
		}
		row.Speedup = row.RefNsPerCycle / row.FastNsPerCycle
		report.Scenarios[sc.name] = row
		t.Logf("%-18s fast %8.1f ns/cycle  ref %8.1f ns/cycle  speedup %.2fx",
			sc.name, row.FastNsPerCycle, row.RefNsPerCycle, row.Speedup)
	}

	out := os.Getenv("BENCH_CORE_OUT")
	if out == "" {
		out = "BENCH_core.json"
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("core stepping benchmark written to %s\n", out)

	if sp := report.Scenarios["lowload-gated"].Speedup; sp < 3.0 {
		t.Fatalf("lowload-gated speedup %.2fx below the 3x guard (fast %.1f ns/cycle, ref %.1f ns/cycle)",
			sp, report.Scenarios["lowload-gated"].FastNsPerCycle, report.Scenarios["lowload-gated"].RefNsPerCycle)
	}
}
