// Bursty: watch Catnap adapt network bandwidth to bursty traffic — the
// Figure 12 scenario. The offered load jumps from 0.01 to 0.30
// packets/node/cycle for 500 cycles (burst 1), returns to base, then
// jumps to 0.10 (burst 2). Catnap must open higher-order subnets within a
// couple hundred cycles for burst 1, open only part of the network for
// the smaller burst 2, and put everything back to sleep in between.
package main

import (
	"fmt"
	"strings"

	catnap "github.com/catnap-noc/catnap"
	"github.com/catnap-noc/catnap/internal/traffic"
)

func main() {
	// First, two router power-state snapshots from a live run: mid-burst
	// (every subnet lit) and after the decay (only subnet 0 awake).
	sim, err := catnap.New(mustDesign("4NT-128b-PG"))
	if err != nil {
		panic(err)
	}
	sim.UseSynthetic(traffic.UniformRandom{}, traffic.Fig12Bursts(), 0)
	sim.Run(1400) // mid first burst
	fmt.Println("router power states mid-burst (cycle 1400; # active, ~ waking, . asleep):")
	fmt.Println(sim.Net.PowerStateGrids())
	sim.Run(600) // cycle 2000: decayed
	fmt.Println("after the burst decays (cycle 2000):")
	fmt.Println(sim.Net.PowerStateGrids())

	points := catnap.RunFig12(3000, 50)

	fmt.Println("cycle   offered  accepted  subnet shares (0..3)        active subnets")
	for _, p := range points {
		if p.Cycle%100 != 0 {
			continue // print every other window for readability
		}
		bar := ""
		active := 0
		for _, s := range p.SubnetShare {
			n := int(s*10 + 0.5)
			bar += strings.Repeat("#", n) + strings.Repeat(".", 10-n) + " "
			if s > 0.02 {
				active++
			}
		}
		fmt.Printf("%5d   %.3f    %.3f     %s %d\n", p.Cycle, p.Offered, p.Accepted, bar, active)
	}

	fmt.Println(`
Reading the trace:
  cycles    0-1000: base load 0.01  -> subnet 0 carries everything
  cycles 1000-1500: burst to 0.30   -> congestion spills load across all subnets
  cycles 1500-2000: back to base    -> higher subnets drain and sleep again
  cycles 2000-2500: burst to 0.10   -> only as many subnets open as the load needs
  cycles 2500-3000: base            -> back to subnet 0 alone`)
}

func mustDesign(name string) catnap.Config {
	cfg, err := catnap.Design(name)
	if err != nil {
		panic(err)
	}
	return cfg
}
