// Bursty: watch Catnap adapt network bandwidth to bursty traffic — the
// Figure 12 scenario. The offered load jumps from 0.01 to 0.30
// packets/node/cycle for 500 cycles (burst 1), returns to base, then
// jumps to 0.10 (burst 2). Catnap must open higher-order subnets within a
// couple hundred cycles for burst 1, open only part of the network for
// the smaller burst 2, and put everything back to sleep in between.
//
// The run is instrumented with the cycle-level telemetry subsystem
// (internal/telemetry): a Recorder collects router sleep/wake events
// with their causes and a 50-cycle windowed per-subnet power-state
// series, which this example renders as a sparkline.
package main

import (
	"context"
	"fmt"
	"strings"

	catnap "github.com/catnap-noc/catnap"
	"github.com/catnap-noc/catnap/internal/telemetry"
	"github.com/catnap-noc/catnap/internal/traffic"
)

func main() {
	// First, two router power-state snapshots from a live run: mid-burst
	// (every subnet lit) and after the decay (only subnet 0 awake).
	// A telemetry recorder rides along and sees every transition.
	sim, err := catnap.New(mustDesign("4NT-128b-PG"))
	if err != nil {
		panic(err)
	}
	rec := telemetry.NewRecorder(telemetry.Options{Window: 50})
	sim.EnableTelemetry(rec, "bursty")
	sim.UseSynthetic(traffic.UniformRandom{}, traffic.Fig12Bursts(), 0)
	sim.Run(1400) // mid first burst
	fmt.Println("router power states mid-burst (cycle 1400; # active, ~ waking, . asleep):")
	fmt.Println(sim.Net.PowerStateGrids())
	sim.Run(600) // cycle 2000: decayed
	fmt.Println("after the burst decays (cycle 2000):")
	fmt.Println(sim.Net.PowerStateGrids())

	// What the event log saw: every sleep/wake, attributed to a cause.
	fmt.Printf("telemetry: %d events (%d sleeps; wakes: %d look-ahead, %d ni, %d policy)\n",
		rec.Log().Total(),
		rec.Log().Count(telemetry.EventRouterSleep),
		countWakes(rec, "look-ahead"), countWakes(rec, "ni"), countWakes(rec, "policy"))

	// The windowed asleep-router series per subnet — Figure 12(a)'s raw
	// material. The 8x8 mesh has 64 routers per subnet; each glyph is
	// one 50-cycle window.
	fmt.Println("\nasleep routers per 50-cycle window (darker = more asleep):")
	asleep := map[int][]float64{}
	for _, p := range rec.Metrics() {
		if p.Metric == telemetry.MetricAsleepRouterCycles && p.Cycle >= 0 {
			asleep[p.Subnet] = append(asleep[p.Subnet], p.Value/50) // mean routers asleep
		}
	}
	nodes := float64(sim.Net.Topo().Nodes())
	for s := 0; s < 4; s++ {
		fmt.Printf("  subnet %d  %s\n", s, spark(asleep[s], nodes))
	}

	// The same scenario through the consolidated experiment API; the
	// typed Fig12 points ride in Result.Data.
	res, err := catnap.RunExperiment(context.Background(), "fig12", catnap.ExperimentOpts{})
	if err != nil {
		panic(err)
	}
	points := res.Data.([]catnap.Fig12Point)

	fmt.Println("\ncycle   offered  accepted  subnet shares (0..3)        active subnets")
	for _, p := range points {
		if p.Cycle%100 != 0 {
			continue // print every other window for readability
		}
		bar := ""
		active := 0
		for _, s := range p.SubnetShare {
			n := int(s*10 + 0.5)
			bar += strings.Repeat("#", n) + strings.Repeat(".", 10-n) + " "
			if s > 0.02 {
				active++
			}
		}
		fmt.Printf("%5d   %.3f    %.3f     %s %d\n", p.Cycle, p.Offered, p.Accepted, bar, active)
	}

	fmt.Println(`
Reading the trace:
  cycles    0-1000: base load 0.01  -> subnet 0 carries everything
  cycles 1000-1500: burst to 0.30   -> congestion spills load across all subnets
  cycles 1500-2000: back to base    -> higher subnets drain and sleep again
  cycles 2000-2500: burst to 0.10   -> only as many subnets open as the load needs
  cycles 2500-3000: base            -> back to subnet 0 alone`)
}

// countWakes tallies wake events with the given cause string.
func countWakes(rec *telemetry.Recorder, cause string) int {
	n := 0
	for _, e := range rec.Log().Events() {
		if e.Type == telemetry.EventRouterWake && e.Cause == cause {
			n++
		}
	}
	return n
}

// spark renders values in [0, max] as a one-line density plot.
func spark(vals []float64, max float64) string {
	glyphs := []rune(" .:-=+*#%@")
	var b strings.Builder
	for _, v := range vals {
		i := int(v / max * float64(len(glyphs)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(glyphs) {
			i = len(glyphs) - 1
		}
		b.WriteRune(glyphs[i])
	}
	return b.String()
}

func mustDesign(name string) catnap.Config {
	cfg, err := catnap.Design(name)
	if err != nil {
		panic(err)
	}
	return cfg
}
