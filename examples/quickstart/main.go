// Quickstart: build the paper's Catnap configuration (four 128-bit
// subnets with BFM-based regional congestion detection, strict-priority
// subnet selection and power gating), offer it a modest uniform-random
// load, and print what energy proportionality looks like: most traffic in
// subnet 0, most routers asleep, a fraction of the Single-NoC's power.
package main

import (
	"fmt"
	"log"

	catnap "github.com/catnap-noc/catnap"
	"github.com/catnap-noc/catnap/internal/traffic"
)

func main() {
	// Every configuration the paper evaluates is available by name; the
	// flagship is the four-subnet Catnap design.
	cfg, err := catnap.Design("4NT-128b-PG")
	if err != nil {
		log.Fatal(err)
	}
	sim, err := catnap.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 0.05 packets/node/cycle of uniform random traffic — a light load a
	// single subnet can carry alone. Warm up 3000 cycles, measure 12000.
	res := sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.05), 3000, 12000)

	fmt.Println("Catnap 4NT-128b-PG under light uniform-random load")
	fmt.Printf("  accepted throughput: %.3f packets/node/cycle (offered %.3f)\n",
		res.AcceptedThroughput, res.OfferedThroughput)
	fmt.Printf("  average packet latency: %.1f cycles (p99 %.0f)\n", res.AvgLatency, res.P99Latency)
	fmt.Printf("  subnet flit shares: %.2f %.2f %.2f %.2f  <- strict priority keeps load in subnet 0\n",
		res.SubnetShare[0], res.SubnetShare[1], res.SubnetShare[2], res.SubnetShare[3])
	fmt.Printf("  compensated sleep cycles: %.1f%% of router-cycles\n", res.CSCPercent)
	fmt.Printf("  network power: %.1f W (dynamic %.1f, static %.1f)\n",
		res.Power.Total, res.Power.Dynamic, res.Power.Static)

	// Compare with the bandwidth-equivalent Single-NoC, which cannot gate
	// anything without stranding traffic.
	single, err := catnap.New(mustDesign("1NT-512b"))
	if err != nil {
		log.Fatal(err)
	}
	sres := single.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.05), 3000, 12000)
	fmt.Printf("\nBandwidth-equivalent Single-NoC (1NT-512b): %.1f W at the same load\n", sres.Power.Total)
	fmt.Printf("Catnap saves %.0f%% of network power at this load.\n",
		100*(1-res.Power.Total/sres.Power.Total))
}

func mustDesign(name string) catnap.Config {
	cfg, err := catnap.Design(name)
	if err != nil {
		log.Fatal(err)
	}
	return cfg
}
