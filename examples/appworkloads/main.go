// Appworkloads: run the paper's multiprogrammed Table 3 mixes on the full
// closed-loop 256-core system (cores, caches, MESI directory, memory
// controllers) and compare the Catnap Multi-NoC against the
// bandwidth-equivalent Single-NoC — the Figure 8 story: a large network
// power saving for a small performance cost, growing with how light the
// workload is.
package main

import (
	"flag"
	"fmt"
	"log"

	catnap "github.com/catnap-noc/catnap"
)

var (
	warmup  = flag.Int64("warmup", 5000, "warmup cycles")
	measure = flag.Int64("measure", 15000, "measurement cycles")
	mixes   = flag.String("mixes", "Light,Heavy", "comma-separated Table 3 mixes")
)

func main() {
	flag.Parse()
	sc := catnap.Scale{Warmup: *warmup, Measure: *measure}

	fmt.Printf("%-14s %-14s %9s %9s %9s %7s %7s\n",
		"workload", "design", "dyn (W)", "stat (W)", "total (W)", "CSC%", "perf")
	for _, mix := range splitList(*mixes) {
		rows, err := catnap.RunAppWorkloads(sc, []string{mix}, []string{"1NT-512b", "4NT-128b-PG"})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Printf("%-14s %-14s %9.1f %9.1f %9.1f %7.1f %7.3f\n",
				r.Workload, r.Design,
				r.Results.Power.Dynamic, r.Results.Power.Static, r.Results.Power.Total,
				r.Results.CSCPercent, r.NormalizedPerf)
		}
		saving := 1 - rows[1].Results.Power.Total/rows[0].Results.Power.Total
		fmt.Printf("  -> Catnap saves %.0f%% network power on %s for a %.1f%% performance cost\n\n",
			saving*100, mix, (1-rows[1].NormalizedPerf)*100)
	}
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
