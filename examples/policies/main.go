// Policies: compare the congestion-detection policies of paper §3.4 on
// the adversarial transpose pattern — the Figure 11(b) story. Transpose
// concentrates traffic along the diagonal under X-Y routing, so a policy
// that detects congestion late (IQOcc) or dilutes it (BFA) oversubscribes
// the lower subnets and loses latency/throughput, while regional BFM
// detection reacts in time. Round-robin (RR) avoids congestion by
// spreading load — and thereby destroys every power-gating opportunity.
package main

import (
	"fmt"
	"log"

	catnap "github.com/catnap-noc/catnap"
)

func main() {
	loads := []float64{0.05, 0.10, 0.15, 0.20}
	sc := catnap.Scale{Warmup: 2000, Measure: 8000}

	fmt.Println("Transpose traffic on 4NT-128b with power gating")
	fmt.Printf("%-12s", "policy")
	for _, l := range loads {
		fmt.Printf("  lat@%.2f", l)
	}
	fmt.Printf("  CSC@%.2f\n", loads[0])

	points, err := catnap.RunFig11(sc, "transpose", loads)
	if err != nil {
		log.Fatal(err)
	}

	// Group the sweep by policy for tabular printing.
	byPolicy := map[string][]catnap.Fig11Point{}
	var order []string
	for _, p := range points {
		if _, ok := byPolicy[p.Policy]; !ok {
			order = append(order, p.Policy)
		}
		byPolicy[p.Policy] = append(byPolicy[p.Policy], p)
	}
	for _, name := range order {
		fmt.Printf("%-12s", name)
		for _, p := range byPolicy[name] {
			fmt.Printf("  %8.1f", p.Latency)
		}
		fmt.Printf("  %7.1f%%\n", byPolicy[name][0].CSCPercent)
	}

	fmt.Println(`
What to look for (paper Figure 11):
  - RR keeps latency acceptable only by never gating: its CSC is the lowest.
  - BFM (regional) tracks the best latency at every load AND exposes high CSC.
  - BFM-local trails regional BFM on this non-uniform pattern: back-pressure
    reaches the injecting node too late without the 1-bit OR network.
  - IQOcc-local reacts slowest: injection queues fill only after routers do.`)
}
