package catnap

import "testing"

// Ablation benchmarks: one per design-choice study DESIGN.md calls out.
// Each reports the low-load CSC of the extreme variants so regressions in
// the policy machinery show up as metric swings.

func benchAblation(b *testing.B, study string) {
	for i := 0; i < b.N; i++ {
		pts, err := RunAblation(study, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Offered == AblationLoads[0] {
				b.ReportMetric(p.Results.CSCPercent, p.Variant+"_CSC%")
			}
		}
	}
}

// BenchmarkAblationRCS quantifies the 1-bit OR network's contribution:
// regional vs local-only detection.
func BenchmarkAblationRCS(b *testing.B) { benchAblation(b, "rcs") }

// BenchmarkAblationThreshold sweeps the BFM threshold: spill-early
// (lower CSC, lower latency) vs pack-tight.
func BenchmarkAblationThreshold(b *testing.B) { benchAblation(b, "threshold") }

// BenchmarkAblationIdleDetect sweeps T-idle-detect.
func BenchmarkAblationIdleDetect(b *testing.B) { benchAblation(b, "idle-detect") }

// BenchmarkAblationWakeup sweeps T-wakeup.
func BenchmarkAblationWakeup(b *testing.B) { benchAblation(b, "wakeup") }

// BenchmarkAblationRegion sweeps the OR-network region size.
func BenchmarkAblationRegion(b *testing.B) { benchAblation(b, "region") }

// BenchmarkAblationSubnets sweeps the subnet count at constant aggregate
// width — the gating-granularity argument of §6.6.
func BenchmarkAblationSubnets(b *testing.B) { benchAblation(b, "subnets") }

func TestAblationRegistry(t *testing.T) {
	names := AblationNames()
	if len(names) != 6 {
		t.Fatalf("%d studies, want 6", len(names))
	}
	if _, err := RunAblation("nope", Scale{Warmup: 10, Measure: 10}); err == nil {
		t.Error("unknown study should error")
	}
}

// TestAblationIdleDetectShape: a longer idle-detect window must not gate
// more than a shorter one (it strictly delays sleep).
func TestAblationIdleDetectShape(t *testing.T) {
	pts, err := RunAblation("idle-detect", Scale{Warmup: 1000, Measure: 5000})
	if err != nil {
		t.Fatal(err)
	}
	csc := map[string]float64{}
	for _, p := range pts {
		if p.Offered == AblationLoads[0] {
			csc[p.Variant] = p.Results.CSCPercent
		}
	}
	if csc["T=2"] < csc["T=16"] {
		t.Errorf("longer idle-detect gated more: T=2 %.1f%% vs T=16 %.1f%%", csc["T=2"], csc["T=16"])
	}
	if csc["T=4"] < 40 {
		t.Errorf("paper operating point CSC %.1f%% too low at light load", csc["T=4"])
	}
}

// TestOrderedForwardDelivers: the §2.3 point-to-point ordering option
// must keep the network functional with app traffic classes.
func TestOrderedForwardDelivers(t *testing.T) {
	cfg := mustDesign("4NT-128b-PG")
	cfg.AppTraffic = true
	cfg.OrderedForward = true
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.UseMix("Medium-Light"); err != nil {
		t.Fatal(err)
	}
	sim.Run(3000)
	sim.StartMeasure()
	sim.Run(5000)
	res := sim.StopMeasure()
	if res.PacketsDelivered == 0 || res.SystemIPC <= 0 {
		t.Fatalf("ordered-forward system stalled: %+v", res)
	}
	// Forward packets are pinned to subnet 0, so subnet 0 must carry a
	// solid share even if congestion would otherwise spill everything.
	if res.SubnetShare[0] < 0.3 {
		t.Errorf("subnet 0 share %.2f with ordered forwards pinned to it", res.SubnetShare[0])
	}
}
