# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check check-race build test race lint bench bench-core bench-compare bench-telemetry experiments quick-experiments fmt vet clean

all: check

# check is the default verification path, in dependency order: build
# first (cheap, fails fast on syntax), then the static-analysis gate
# (lint = go vet + catnap-lint, run exactly once here — the race
# targets no longer duplicate vet), then the plain test suite, the
# differential suites under the race detector (check-race), the full
# suite under the race detector, the telemetry zero-overhead guard,
# and the core stepping-cost guard last (slowest).
check: build lint test check-race race bench-telemetry bench-core

# lint is the single static-analysis entry point: go vet plus the
# in-tree catnap-lint suite (nodeterminism, hotpathalloc,
# stagingdiscipline, tracercontract, contractflow, resetcoverage,
# missingdoc — see DESIGN.md "Static analysis"). -time prints the
# per-analyzer wall-time breakdown so a slow check is attributable.
# catnap-lint also fails on malformed or unused //lint:ignore
# directives, so stale suppressions cannot linger.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/catnap-lint -time ./...

# check-race runs the noc + congestion + root differential suites under
# the race detector: the sharded router phase, parallel subnets, mid-run
# flips, drain, the incremental-vs-reference differentials, and the
# reset/reuse differentials (Network.Reset vs fresh construction, SimPool
# recycling across heterogeneous shapes) all exercise the concurrency
# contract documented on SetExecMode (built-in policies, selector,
# detector, and tracers must tolerate calls from worker goroutines).
# TestShardedBuiltinPoliciesRace is the dedicated assertion; the
# TestShardedMulticore* suite raises GOMAXPROCS to 8 so the StepPool
# genuinely fans out; the rest catch staging/commit races against real
# traffic.
check-race:
	$(GO) test -race -count=1 -timeout 60m \
		-run 'Sharded|Parallel|Incremental|Flip|Drain|Detector|Differential|IdleSkip|Reset|SimPool' \
		./internal/noc ./internal/congestion .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-telemetry times a fixed run with telemetry absent / built-but-
# detached / fully attached (min-of-5, interleaved), writes
# BENCH_telemetry.json, and fails if the detached arm costs >2% over
# base — the "free when off" guard.
bench-telemetry:
	TELEMETRY_GUARD=1 $(GO) test -run TestTelemetryOverheadGuard -count=1 .

# bench-core times Network.Step across load/gating scenarios on both the
# incremental path and the reference-scan path (min-of-5, interleaved),
# sweeps the sharded scenarios' fast arm over GOMAXPROCS 1/2/4/8, writes
# BENCH_core.json (ns/cycle, B/cycle, speedup per scenario plus the
# per-GOMAXPROCS point matrix), and fails if the low-load gated speedup
# regresses below 3x, if sharded stepping allocates beyond sequential
# parity, if (on >=8-core machines) 8-shard stepping misses 3x at
# GOMAXPROCS=8, or if the sweep-reuse pool misses 2x points/sec over
# fresh construction — the O(active)-stepping, multicore-scaling, and
# zero-rebuild-sweep guards. See DESIGN.md "Hot path" and §4i.
bench-core:
	CORE_BENCH=1 $(GO) test -run TestCoreBenchGuard -count=1 -timeout 30m .

# bench-compare snapshots the bench-core report and diffs it against the
# previous snapshot with cmd/catnap-benchdiff, which understands the
# BENCH_core.json schema including the per-GOMAXPROCS point matrix (and
# tolerates baselines from before the matrix existed). First run saves
# the baseline; later runs print per-scenario and per-GOMAXPROCS deltas
# and FAIL (exit 1) if any fast arm — scenario headline or individual
# GOMAXPROCS point — slowed down by more than BENCH_FAIL_OVER percent,
# or if baseline coverage was dropped. Override the threshold per run:
# `make bench-compare BENCH_FAIL_OVER=50` (generous default because
# min-of-5 wall-clock numbers on shared machines are noisy).
BENCH_FAIL_OVER ?= 35
bench-compare:
	CORE_BENCH=1 BENCH_CORE_OUT=bench_core_new.json $(GO) test -run TestCoreBenchGuard -count=1 -timeout 30m .
	@if [ -f bench_core_old.json ]; then \
		$(GO) run ./cmd/catnap-benchdiff -fail-over $(BENCH_FAIL_OVER) bench_core_old.json bench_core_new.json; \
	else \
		cp bench_core_new.json bench_core_old.json; \
		echo "bench-compare: saved baseline to bench_core_old.json; rerun after changes to compare."; \
	fi

# Regenerate every table/figure at full scale into results/ (slow: ~1h).
experiments:
	mkdir -p results
	$(GO) build -o /tmp/catnapcli ./cmd/catnap
	for e in fig2 table2 fig6 fig7 fig8 fig9 fig10 fig12 fig13 fig14 headline topology hetero profiles; do \
		/tmp/catnapcli $$e > results/$$e.txt || exit 1; \
	done
	/tmp/catnapcli -pattern uniform-random fig11 > results/fig11-ur.txt
	/tmp/catnapcli -pattern transpose fig11 > results/fig11-transpose.txt
	/tmp/catnapcli -pattern bit-complement fig11 > results/fig11-bitcomp.txt

quick-experiments:
	$(GO) run ./cmd/catnap -quick headline

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f test_output.txt bench_output.txt BENCH_telemetry.json BENCH_core.json \
		bench_old.txt bench_new.txt bench_core_old.json bench_core_new.json
