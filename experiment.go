package catnap

import (
	"context"
	"fmt"
	"strings"

	"github.com/catnap-noc/catnap/internal/runner"
	"github.com/catnap-noc/catnap/internal/telemetry"
	"github.com/catnap-noc/catnap/internal/traffic"
	"github.com/catnap-noc/catnap/internal/workload"
)

// This file is the unified experiment API: a registry of every canned
// experiment (one per table/figure of the paper plus the beyond-paper
// studies), each returning a typed result with a ready-to-render table.
// cmd/catnap is a thin shell over RunExperiment; the RunFigN functions
// remain available for programmatic use of the underlying data.

// ExperimentInfo describes one registered experiment.
type ExperimentInfo struct {
	// Name is the CLI-facing identifier ("fig6", "headline", ...).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Kind classifies the experiment: "figure" and "table" reproduce the
	// paper's evaluation, "summary" derives headline numbers, and
	// "study" goes beyond the paper.
	Kind string
}

// ExperimentOpts parameterizes RunExperiment: one validated options
// struct shared by every experiment, replacing the per-figure parameter
// lists. The zero value selects every experiment's own defaults
// (paper-scale cycle counts, the standard load sweep, uniform-random
// traffic, GOMAXPROCS workers, telemetry off). Experiments ignore the
// fields they have no use for.
type ExperimentOpts struct {
	// Scale overrides the cycle counts; zero fields select the
	// experiment's defaults.
	Scale Scale
	// Loads overrides the offered-load sweep where applicable. Each
	// load is a fraction in (0, 1] packets/node/cycle.
	Loads []float64
	// Pattern selects the traffic pattern for experiments that take one
	// (fig11); empty means uniform-random.
	Pattern string
	// Mixes restricts the application-workload experiments (fig8, fig9)
	// to the named Table 3 mixes; nil means all four.
	Mixes []string
	// Designs restricts the application-workload experiments to the
	// named registered designs; nil means the experiment's own list.
	Designs []string
	// Total is the simulated length of the time-series experiment
	// (fig12) in cycles; 0 means the paper's 3000.
	Total int64
	// Window is the time-series sampling window (fig12) and the
	// telemetry series window, in cycles; 0 means the paper's 50.
	Window int64
	// NoIdleSkip disables event-driven idle fast-forward in every
	// simulation the experiment builds (Config.NoIdleSkip). Results are
	// bit-identical either way; set it to benchmark the per-cycle idle
	// path or to debug the quiescence oracle. cmd/catnap and
	// cmd/catnap-sweep expose it as -no-skip.
	NoIdleSkip bool
	// SimWorkers shards each simulation's router phase into this many
	// row-band shards stepped concurrently (Config.ShardedRouters /
	// ShardCount). 0 leaves sharding off; -1 selects GOMAXPROCS shards.
	// Results are bit-identical at any value — it is purely a wall-clock
	// knob for single large simulations, complementing Sweep.Jobs, which
	// parallelizes across sweep points. The useful regimes differ: many
	// points with Jobs, few big points (fig12-style time series, app
	// workloads) with SimWorkers.
	SimWorkers int
	// Explore parameterizes the "explore" design-space search (space,
	// budget, sampling mode, cache and checkpoint paths); other
	// experiments ignore it.
	Explore ExploreOpts
	// Sweep configures the parallel engine (worker count, per-point
	// timeout, progress reporting).
	Sweep SweepOptions
	// NoReuse disables per-worker simulator reuse. By default
	// RunExperiment gives each sweep worker a SimPool so consecutive
	// points recycle one simulator via Simulator.Reset instead of
	// rebuilding it; results are bit-identical either way (the reset
	// differential suite asserts it). Set NoReuse to benchmark or debug
	// the fresh-construction path. cmd/catnap-sweep and cmd/catnap-explore
	// expose it as -reuse=false.
	NoReuse bool
	// Telemetry, when non-nil, records cycle-level metrics and events
	// from the experiment's simulations (single-simulation experiments
	// attach a collector; sweeps record point lifecycle events).
	Telemetry *telemetry.Recorder
}

// ExperimentOptions is the pre-consolidation name of ExperimentOpts.
//
// Deprecated: use ExperimentOpts.
type ExperimentOptions = ExperimentOpts

// Validate checks every field, naming the offending field and the valid
// range in the error. RunExperiment calls it; direct users of the
// unexported runners get the same check there.
func (o ExperimentOpts) Validate() error {
	if o.Scale.Warmup < 0 {
		return fmt.Errorf("catnap: ExperimentOpts.Scale.Warmup = %d, want >= 0 cycles", o.Scale.Warmup)
	}
	if o.Scale.Measure < 0 {
		return fmt.Errorf("catnap: ExperimentOpts.Scale.Measure = %d, want >= 0 cycles", o.Scale.Measure)
	}
	for i, l := range o.Loads {
		if l <= 0 || l > 1 {
			return fmt.Errorf("catnap: ExperimentOpts.Loads[%d] = %g, want a load in (0, 1] packets/node/cycle", i, l)
		}
	}
	if o.Pattern != "" {
		if _, err := traffic.PatternByName(o.Pattern); err != nil {
			return fmt.Errorf("catnap: ExperimentOpts.Pattern: %w", err)
		}
	}
	for i, m := range o.Mixes {
		if _, err := workload.MixByName(m); err != nil {
			return fmt.Errorf("catnap: ExperimentOpts.Mixes[%d]: %w", i, err)
		}
	}
	for i, d := range o.Designs {
		if _, err := Design(d); err != nil {
			return fmt.Errorf("catnap: ExperimentOpts.Designs[%d]: %w", i, err)
		}
	}
	if o.Total < 0 {
		return fmt.Errorf("catnap: ExperimentOpts.Total = %d, want >= 0 cycles", o.Total)
	}
	if o.Window < 0 {
		return fmt.Errorf("catnap: ExperimentOpts.Window = %d, want >= 0 cycles", o.Window)
	}
	if o.Window > 0 && o.Total > 0 && o.Window > o.Total {
		return fmt.Errorf("catnap: ExperimentOpts.Window = %d, want <= Total (%d cycles)", o.Window, o.Total)
	}
	if err := o.Explore.validate("ExperimentOpts.Explore"); err != nil {
		return err
	}
	if o.SimWorkers < -1 {
		return fmt.Errorf("catnap: ExperimentOpts.SimWorkers = %d, want >= -1 (0 = off, -1 = GOMAXPROCS shards)", o.SimWorkers)
	}
	if o.Sweep.Jobs < 0 {
		return fmt.Errorf("catnap: ExperimentOpts.Sweep.Jobs = %d, want >= 0 workers (0 = GOMAXPROCS)", o.Sweep.Jobs)
	}
	if o.Sweep.Timeout < 0 {
		return fmt.Errorf("catnap: ExperimentOpts.Sweep.Timeout = %v, want >= 0 (0 = no limit)", o.Sweep.Timeout)
	}
	return nil
}

// withTelemetry returns a copy of o whose sweep progress also feeds the
// telemetry recorder's event log.
func (o ExperimentOpts) withTelemetry() ExperimentOpts {
	if o.Telemetry != nil {
		o.Sweep.Progress = runner.Tee(o.Sweep.Progress, o.Telemetry.Progress())
	}
	return o
}

// ExperimentResult is one experiment's outcome: the typed rows plus a
// rendered table.
type ExperimentResult struct {
	// Name echoes the experiment.
	Name string
	// Header and Rows are the rendered table (cmd/catnap prints them as
	// aligned text or CSV).
	Header []string
	Rows   [][]string
	// Note is the paper-comparison footnote, if any.
	Note string
	// Data holds the typed rows the table was rendered from
	// ([]Fig6Point, []AppRow, Headline, ...).
	Data any
}

// experiment pairs the registry metadata with its run function.
type experiment struct {
	info ExperimentInfo
	run  func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error)
}

// experimentList is ordered as the paper presents the evaluation,
// beyond-paper studies last.
var experimentList []experiment

func registerExperiment(info ExperimentInfo, run func(context.Context, ExperimentOptions) (*ExperimentResult, error)) {
	experimentList = append(experimentList, experiment{info: info, run: run})
}

// Experiments lists the registered experiments in presentation order.
func Experiments() []ExperimentInfo {
	out := make([]ExperimentInfo, len(experimentList))
	for i, e := range experimentList {
		out[i] = e.info
	}
	return out
}

// ExperimentNames lists the registered experiment names in order.
func ExperimentNames() []string {
	names := make([]string, len(experimentList))
	for i, e := range experimentList {
		names[i] = e.info.Name
	}
	return names
}

// RunExperiment executes the named experiment. Options are validated up
// front (the error names the offending field); unknown names error with
// the valid choices; cancellation of ctx stops the underlying sweep
// between simulated cycles. When opts.Telemetry is set, sweep lifecycle
// events and (for experiments that instrument a simulation) cycle-level
// metrics land in the recorder.
func RunExperiment(ctx context.Context, name string, opts ExperimentOpts) (*ExperimentResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withTelemetry()
	if !opts.NoReuse && opts.Sweep.WorkerState == nil {
		// Default: each sweep worker owns a SimPool, so consecutive points
		// reset one simulator in place instead of rebuilding it.
		opts.Sweep.WorkerState = func() any { return NewSimPool() }
	}
	for _, e := range experimentList {
		if e.info.Name == name {
			return e.run(ctx, opts)
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (valid: %s)", name, strings.Join(ExperimentNames(), " "))
}

// fcell formats one numeric table cell.
func fcell(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

func init() {
	registerExperiment(ExperimentInfo{"fig2", "performance of 128b vs 512b Single-NoC on Light/Heavy workloads", "figure"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			rows, err := runFig2(opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "fig2",
				Header: []string{"workload", "design", "system IPC", "normalized"},
				Note:   "paper: Heavy loses ~41% on the under-provisioned 128-bit Single-NoC; Light barely changes",
				Data:   rows,
			}
			for _, r := range rows {
				res.Rows = append(res.Rows, []string{r.Workload, r.Design, fcell(r.SystemIPC, 1), fcell(r.Normalized, 3)})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"table2", "router width -> frequency/voltage pairs", "table"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			rows := runTable2()
			res := &ExperimentResult{
				Name:   "table2",
				Header: []string{"design", "router width (bits)", "frequency (GHz)", "voltage (V)"},
				Note:   "paper Table 2: 512b{2.0GHz@0.750V, 1.4GHz@0.625V}  128b{2.9GHz@0.750V, 2.0GHz@0.625V}",
				Data:   rows,
			}
			for _, r := range rows {
				res.Rows = append(res.Rows, []string{r.Design, fmt.Sprint(r.WidthBits), fcell(r.FreqGHz, 1), fcell(r.VoltV, 3)})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"fig6", "throughput & latency of 1/2/4/8-subnet designs (uniform random)", "figure"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			pts, err := runFig6(ctx, opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "fig6",
				Header: []string{"design", "offered", "accepted (pkts/node/cyc)", "avg latency (cyc)"},
				Note:   "paper: >4 subnets loses throughput; latency grows a few cycles per halving of width",
				Data:   pts,
			}
			for _, p := range pts {
				res.Rows = append(res.Rows, []string{p.Design, fcell(p.Offered, 2), fcell(p.Accepted, 3), fcell(p.Latency, 1)})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"fig7", "analytic network power breakdown at near saturation", "figure"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			rows := runFig7()
			res := &ExperimentResult{
				Name:   "fig7",
				Header: []string{"config", "NI", "link", "clock", "control", "crossbar", "buffer", "static", "total (W)"},
				Note:   "paper Fig 7: Single-NoC ~70W; voltage-scaled Multi-NoC substantially lower",
				Data:   rows,
			}
			for _, r := range rows {
				b := r.Breakdown
				res.Rows = append(res.Rows, []string{
					r.Label, fcell(b.NI, 1), fcell(b.Link, 1), fcell(b.Clock, 1), fcell(b.Control, 1),
					fcell(b.Crossbar, 1), fcell(b.Buffer, 1), fcell(b.Static, 1), fcell(b.Total, 1),
				})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"fig8", "network power and normalized performance, app workloads", "figure"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			rows, err := runAppWorkloads(ctx, opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "fig8",
				Header: []string{"workload", "design", "dynamic (W)", "static (W)", "total (W)", "norm. perf"},
				Note:   "paper Fig 8: Multi-NoC-PG ~20W avg vs Single-NoC ~36W; ~5% avg performance cost",
				Data:   rows,
			}
			for _, r := range rows {
				res.Rows = append(res.Rows, []string{
					r.Workload, r.Design,
					fcell(r.Results.Power.Dynamic, 1), fcell(r.Results.Power.Static, 1), fcell(r.Results.Power.Total, 1),
					fcell(r.NormalizedPerf, 3),
				})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"fig9", "compensated sleep cycles, app workloads", "figure"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			rows, err := runAppWorkloads(ctx, opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "fig9",
				Header: []string{"workload", "design", "CSC (%)"},
				Note:   "paper Fig 9: ~70% CSC for Multi-NoC-PG on Light; negligible for Single-NoC-PG",
				Data:   rows,
			}
			for _, r := range rows {
				res.Rows = append(res.Rows, []string{r.Workload, r.Design, fcell(r.Results.CSCPercent, 1)})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"fig10", "power/CSC/throughput/latency vs offered load, with/without PG", "figure"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			pts, err := runFig10(ctx, opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "fig10",
				Header: []string{"design", "offered", "power (W)", "CSC (%)", "accepted", "latency (cyc)"},
				Note:   "paper Fig 10: at 0.03 load Multi-NoC-PG 7.8W/74% CSC vs Single-NoC-PG 24.1W/10% CSC",
				Data:   pts,
			}
			for _, p := range pts {
				res.Rows = append(res.Rows, []string{p.Design, fcell(p.Offered, 2), fcell(p.PowerW, 1), fcell(p.CSCPercent, 1), fcell(p.Accepted, 3), fcell(p.Latency, 1)})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"fig11", "congestion-metric policy comparison (takes a traffic pattern)", "figure"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			pts, err := runFig11(ctx, opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "fig11",
				Header: []string{"policy", "offered", "accepted", "latency (cyc)", "CSC (%)"},
				Note:   "paper Fig 11: BFM and Delay win; RR has much higher latency; BFA/IQOcc lose throughput",
				Data:   pts,
			}
			for _, p := range pts {
				res.Rows = append(res.Rows, []string{p.Policy, fcell(p.Offered, 2), fcell(p.Accepted, 3), fcell(p.Latency, 1), fcell(p.CSCPercent, 1)})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"fig12", "bursty-traffic ramp-up and subnet utilization over time", "figure"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			pts := runFig12(opts)
			res := &ExperimentResult{
				Name:   "fig12",
				Header: []string{"cycle", "offered", "accepted", "subnet0", "subnet1", "subnet2", "subnet3"},
				Note:   "paper Fig 12: accepted catches offered within ~200 cycles; burst1 opens all subnets, burst2 only two",
				Data:   pts,
			}
			for _, p := range pts {
				row := []string{fmt.Sprint(p.Cycle), fcell(p.Offered, 3), fcell(p.Accepted, 3)}
				for _, s := range p.SubnetShare {
					row = append(row, fcell(s, 2))
				}
				res.Rows = append(res.Rows, row)
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"fig13", "injection-rate threshold sweep (uniform random + transpose)", "figure"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			pts, err := runFig13(ctx, opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "fig13",
				Header: []string{"pattern", "IR threshold", "offered", "accepted", "latency (cyc)"},
				Note:   "paper Fig 13: UR tolerates thresholds up to 0.20; transpose needs <=0.08 — no single threshold works",
				Data:   pts,
			}
			for _, p := range pts {
				res.Rows = append(res.Rows, []string{p.Pattern, fcell(p.Threshold, 2), fcell(p.Offered, 2), fcell(p.Accepted, 3), fcell(p.Latency, 1)})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"fig14", "64-core study: CSC and latency", "figure"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			pts, err := runFig14(ctx, opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "fig14",
				Header: []string{"design", "offered", "CSC (%)", "latency (cyc)", "accepted"},
				Note:   "paper Fig 14: 64-core Multi-NoC reaches ~50% CSC at low load vs ~17% for Single-NoC",
				Data:   pts,
			}
			for _, p := range pts {
				res.Rows = append(res.Rows, []string{p.Design, fcell(p.Offered, 2), fcell(p.CSCPercent, 1), fcell(p.Latency, 1), fcell(p.Accepted, 3)})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"headline", "the paper's headline: 44% power saving at ~5% performance cost", "summary"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			h, err := runHeadline(ctx, opts)
			if err != nil {
				return nil, err
			}
			return &ExperimentResult{
				Name:   "headline",
				Header: []string{"quantity", "measured", "paper"},
				Rows: [][]string{
					{"Single-NoC (1NT-512b) average network power (W)", fcell(h.SingleAvgPowerW, 1), "~36"},
					{"Catnap Multi-NoC (4NT-128b-PG) average power (W)", fcell(h.MultiPGAvgPowerW, 1), "~20"},
					{"Network power reduction (%)", fcell(h.PowerReduction*100, 1), "~44"},
					{"Average performance cost (%)", fcell(h.AvgPerfCost*100, 1), "~5"},
					{"Compensated sleep cycles on Light (%)", fcell(h.LightCSCPercent, 1), "~70"},
				},
				Data: h,
			}, nil
		})

	registerExperiment(ExperimentInfo{"profiles", "per-benchmark characterization of all 35 application profiles", "study"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			rows, err := runProfiles(ctx, opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "profiles",
				Header: []string{"benchmark", "suite", "MPKI", "IPC/core", "pkts/node/cyc", "latency"},
				Data:   rows,
			}
			for _, r := range rows {
				res.Rows = append(res.Rows, []string{r.Benchmark, r.Suite, fcell(r.MPKI, 1), fcell(r.IPC, 2), fcell(r.PacketsPerNodeCycle, 3), fcell(r.AvgLatency, 1)})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"hetero", "Heavy-west/Light-east split chip: regional vs local detection", "study"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			rows, err := runHetero(ctx, opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "hetero",
				Header: []string{"detection", "avg latency", "p99", "system IPC", "power (W)", "CSC (%)"},
				Note:   "§3.2.1's motivation: with non-uniform placement, regional detection reacts before local back-pressure does",
				Data:   rows,
			}
			for _, r := range rows {
				res.Rows = append(res.Rows, []string{
					r.Variant, fcell(r.Results.AvgLatency, 1), fcell(r.Results.P99Latency, 0),
					fcell(r.Results.SystemIPC, 1), fcell(r.Results.Power.Total, 1), fcell(r.Results.CSCPercent, 1),
				})
			}
			return res, nil
		})

	registerExperiment(ExperimentInfo{"topology", "Catnap on mesh vs torus vs flattened butterfly (§8 future work)", "study"},
		func(ctx context.Context, opts ExperimentOptions) (*ExperimentResult, error) {
			pts, err := runTopology(ctx, opts)
			if err != nil {
				return nil, err
			}
			res := &ExperimentResult{
				Name:   "topology",
				Header: []string{"design", "offered", "accepted", "latency (cyc)", "power (W)", "CSC (%)"},
				Note:   "§8 future work: the Catnap benefits carry over to the torus and flattened butterfly",
				Data:   pts,
			}
			for _, p := range pts {
				res.Rows = append(res.Rows, []string{p.Design, fcell(p.Offered, 2), fcell(p.Accepted, 3), fcell(p.Latency, 1), fcell(p.PowerW, 1), fcell(p.CSCPercent, 1)})
			}
			return res, nil
		})
}
