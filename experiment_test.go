package catnap

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/catnap-noc/catnap/internal/traffic"
)

// testScale keeps engine tests fast while still exercising warmup +
// measurement windows.
var testScale = Scale{Warmup: 300, Measure: 900}

var testLoads = []float64{0.05, 0.20}

// TestFig6ParallelMatchesSequential is the golden determinism test: the
// parallel engine must produce byte-for-byte the rows the seed's
// sequential loop produced, because every point owns its seeded RNG.
// The expected side replicates the original sequential runner verbatim.
func TestFig6ParallelMatchesSequential(t *testing.T) {
	var want []Fig6Point
	for _, d := range Fig6Designs {
		for _, load := range testLoads {
			sim := mustSim(mustDesign(d))
			res := sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(load), testScale.Warmup, testScale.Measure)
			want = append(want, Fig6Point{Design: d, Offered: load, Accepted: res.AcceptedThroughput, Latency: res.AvgLatency})
		}
	}
	for _, jobs := range []int{1, 4} {
		got, err := RunFig6Ctx(context.Background(), testScale, testLoads, SweepOptions{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("jobs=%d: parallel results diverge from sequential seed path\ngot:  %+v\nwant: %+v", jobs, got, want)
		}
	}
}

// TestAppWorkloadsBaselineNormalization exercises the appended-baseline
// path: when the design list omits 1NT-512b, the engine must still
// normalize against a dedicated baseline run per mix.
func TestAppWorkloadsBaselineNormalization(t *testing.T) {
	sc := Scale{Warmup: 150, Measure: 300}
	rows, err := RunAppWorkloadsCtx(context.Background(), sc, []string{"Light"}, []string{"4NT-128b-PG"}, SweepOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1 (baseline runs must not leak into the matrix)", len(rows))
	}
	r := rows[0]
	if r.Design != "4NT-128b-PG" || r.Workload != "Light" {
		t.Fatalf("row %+v", r)
	}
	if r.NormalizedPerf <= 0 {
		t.Fatalf("NormalizedPerf = %v, want > 0 from the dedicated baseline run", r.NormalizedPerf)
	}
}

// TestRunCtxCancellation: a cancelled context stops the run between
// cycles and surfaces the context error from the Ctx entry points.
func TestRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim := mustSim(mustDesign("4NT-128b-PG"))
	if err := sim.RunCtx(ctx, 100000); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx err = %v, want Canceled", err)
	}
	if _, err := sim.RunSyntheticCtx(ctx, traffic.UniformRandom{}, traffic.Constant(0.05), 1000, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSyntheticCtx err = %v, want Canceled", err)
	}
	if _, err := RunFig6Ctx(ctx, testScale, testLoads, SweepOptions{Jobs: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunFig6Ctx err = %v, want Canceled", err)
	}
}

// TestRunAppCancellation covers the closed-loop entry point.
func TestRunAppCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := mustDesign("4NT-128b-PG")
	cfg.AppTraffic = true
	sim := mustSim(cfg)
	if _, err := sim.RunApp(ctx, "Light", 1000, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunApp err = %v, want Canceled", err)
	}
	// And the mix name stays a clean error, not a panic.
	sim2 := mustSim(mustDesign("4NT-128b-PG"))
	if _, err := sim2.RunApp(context.Background(), "NoSuchMix", 10, 10); err == nil {
		t.Fatal("RunApp accepted an unknown mix")
	}
}

// TestExperimentRegistry checks the registry lists every experiment the
// old hand-rolled CLI switch knew, with metadata, and that unknown
// names produce an error naming the valid choices.
func TestExperimentRegistry(t *testing.T) {
	want := []string{"fig2", "table2", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "headline", "profiles", "hetero", "topology"}
	names := ExperimentNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("registry missing %q", w)
		}
	}
	for _, e := range Experiments() {
		if e.Description == "" || e.Kind == "" {
			t.Errorf("experiment %q lacks metadata: %+v", e.Name, e)
		}
	}
	_, err := RunExperiment(context.Background(), "fig99", ExperimentOptions{})
	if err == nil || !strings.Contains(err.Error(), "fig6") {
		t.Fatalf("unknown-experiment error should list valid choices, got: %v", err)
	}
}

// TestRunExperimentTable2 runs the cheapest registry entry end to end
// and checks the rendered table matches the typed data.
func TestRunExperimentTable2(t *testing.T) {
	res, err := RunExperiment(context.Background(), "table2", ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "table2" || len(res.Rows) == 0 || len(res.Header) == 0 {
		t.Fatalf("result %+v", res)
	}
	for _, row := range res.Rows {
		if len(row) != len(res.Header) {
			t.Fatalf("row width %d != header width %d", len(row), len(res.Header))
		}
	}
	if res.Data == nil {
		t.Fatal("typed data missing")
	}
}

// TestRunExperimentFig6 runs a sweep-backed registry entry at tiny scale
// and checks cancellation propagates through RunExperiment.
func TestRunExperimentFig6(t *testing.T) {
	res, err := RunExperiment(context.Background(), "fig6", ExperimentOptions{
		Scale: testScale, Loads: testLoads, Sweep: SweepOptions{Jobs: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Rows); got != len(Fig6Designs)*len(testLoads) {
		t.Fatalf("got %d rows", got)
	}
	pts, ok := res.Data.([]Fig6Point)
	if !ok || len(pts) != len(res.Rows) {
		t.Fatalf("typed data mismatch: %T", res.Data)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunExperiment(ctx, "fig6", ExperimentOptions{Scale: testScale, Loads: testLoads}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunExperiment err = %v", err)
	}
}

// TestSweepPanicIsReported: a panicking sweep point surfaces as an error
// naming the point instead of killing the sweep goroutines.
func TestSweepPanicIsReported(t *testing.T) {
	old := Fig11Policies
	defer func() { Fig11Policies = old }()
	Fig11Policies = []Fig11Policy{
		{"RR", func() Config { return mustDesign("4NT-128b-PG-RR") }},
		{"broken", func() Config { panic("policy config exploded") }},
	}
	_, err := RunFig11Ctx(context.Background(), Scale{Warmup: 100, Measure: 200}, "uniform-random", []float64{0.05}, SweepOptions{Jobs: 2})
	if err == nil || !strings.Contains(err.Error(), "broken") || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not reported cleanly: %v", err)
	}
}

// TestFig11UnknownPatternError: the user-reachable pattern name errors
// up front, listing the valid choices, instead of panicking.
func TestFig11UnknownPatternError(t *testing.T) {
	_, err := RunFig11(Scale{}, "no-such-pattern", nil)
	if err == nil || !strings.Contains(err.Error(), "transpose") {
		t.Fatalf("want an error listing valid patterns, got: %v", err)
	}
}
