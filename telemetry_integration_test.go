package catnap

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/catnap-noc/catnap/internal/telemetry"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// fig6Golden pins the exact Fig6 rows the pre-telemetry tree produced at
// testScale/testLoads (captured on main before the telemetry subsystem
// landed). With telemetry off the hooks are nil and the cycle loop must
// stay bit-identical — any drift here means the instrumentation leaked
// into the simulation.
var fig6Golden = []Fig6Point{
	{"1NT-512b", 0.05, 0.049652777777777775, 20.12062937062937},
	{"1NT-512b", 0.2, 0.19907986111111112, 20.8896834394349},
	{"2NT-256b", 0.05, 0.049652777777777775, 21.326923076923077},
	{"2NT-256b", 0.2, 0.19928819444444446, 23.090425995295757},
	{"4NT-128b", 0.05, 0.04973958333333333, 23.67085514834206},
	{"4NT-128b", 0.2, 0.19946180555555557, 27.29497780485682},
	{"8NT-64b", 0.05, 0.04977430555555556, 28.484478549005928},
	{"8NT-64b", 0.2, 0.19946180555555557, 36.8688310557925},
}

func TestFig6GoldenBitIdenticalTelemetryOff(t *testing.T) {
	got, err := runFig6(context.Background(), ExperimentOpts{Scale: testScale, Loads: testLoads})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fig6Golden) {
		t.Fatalf("telemetry-off Fig6 rows drifted from the pre-telemetry golden values\ngot:  %+v\nwant: %+v", got, fig6Golden)
	}
}

// telemetrySample runs one fixed synthetic measurement, optionally
// instrumented.
func telemetrySample(rec *telemetry.Recorder) Results {
	sim := mustSim(mustDesign("4NT-128b-PG"))
	if rec != nil {
		sim.EnableTelemetry(rec, "sample")
	}
	return sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.10), 300, 900)
}

// TestTelemetryObservesWithoutPerturbing is the on-vs-off identity
// check: attaching a full recorder must not change a single result
// bit, while still seeing the run's sleep/wake activity.
func TestTelemetryObservesWithoutPerturbing(t *testing.T) {
	off := telemetrySample(nil)
	rec := telemetry.NewRecorder(telemetry.Options{})
	on := telemetrySample(rec)
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("telemetry attach perturbed results\noff: %+v\non:  %+v", off, on)
	}
	if n := rec.Log().Count(telemetry.EventRouterSleep); n == 0 {
		t.Fatal("instrumented run recorded no router.sleep events")
	}
	if n := rec.Log().Count(telemetry.EventRouterWake); n == 0 {
		t.Fatal("instrumented run recorded no router.wake events")
	}
	if len(rec.Metrics()) == 0 {
		t.Fatal("instrumented run exported no metric points")
	}
}

func TestExperimentOptsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts ExperimentOpts
		want string // substring naming the offending field
	}{
		{"negative warmup", ExperimentOpts{Scale: Scale{Warmup: -1}}, "ExperimentOpts.Scale.Warmup"},
		{"negative measure", ExperimentOpts{Scale: Scale{Measure: -5}}, "ExperimentOpts.Scale.Measure"},
		{"load too high", ExperimentOpts{Loads: []float64{0.1, 1.5}}, "ExperimentOpts.Loads[1]"},
		{"load zero", ExperimentOpts{Loads: []float64{0}}, "ExperimentOpts.Loads[0]"},
		{"bad pattern", ExperimentOpts{Pattern: "zigzag"}, "ExperimentOpts.Pattern"},
		{"bad mix", ExperimentOpts{Mixes: []string{"NoSuchMix"}}, "ExperimentOpts.Mixes[0]"},
		{"bad design", ExperimentOpts{Designs: []string{"9NT-1b"}}, "ExperimentOpts.Designs[0]"},
		{"negative total", ExperimentOpts{Total: -1}, "ExperimentOpts.Total"},
		{"window over total", ExperimentOpts{Total: 100, Window: 200}, "ExperimentOpts.Window"},
		{"negative jobs", ExperimentOpts{Sweep: SweepOptions{Jobs: -1}}, "ExperimentOpts.Sweep.Jobs"},
		{"negative timeout", ExperimentOpts{Sweep: SweepOptions{Timeout: -time.Second}}, "ExperimentOpts.Sweep.Timeout"},
		{"explore dup axis", ExperimentOpts{Explore: ExploreOpts{Space: ExploreSpace{Widths: []int{128, 128}}}}, "ExperimentOpts.Explore.Space"},
		{"explore bad metric", ExperimentOpts{Explore: ExploreOpts{Space: ExploreSpace{Metrics: []string{"Vibes"}}}}, "ExperimentOpts.Explore.Space.Metrics"},
		{"explore load too high", ExperimentOpts{Explore: ExploreOpts{Load: 1.5}}, "ExperimentOpts.Explore.Load"},
		{"explore negative batch", ExperimentOpts{Explore: ExploreOpts{Batch: -1}}, "ExperimentOpts.Explore.Batch"},
		{"explore frac out of range", ExperimentOpts{Explore: ExploreOpts{ExploreFrac: 2}}, "ExperimentOpts.Explore.ExploreFrac"},
		{"explore min-accepted out of range", ExperimentOpts{Explore: ExploreOpts{MinAccepted: 1.1}}, "ExperimentOpts.Explore.MinAccepted"},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error naming %s", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name %s", c.name, err, c.want)
		}
	}
	if err := (ExperimentOpts{}).Validate(); err != nil {
		t.Errorf("zero options must validate, got %v", err)
	}
	// RunExperiment rejects before running anything.
	if _, err := RunExperiment(context.Background(), "fig6", ExperimentOpts{Loads: []float64{2}}); err == nil {
		t.Error("RunExperiment accepted invalid options")
	}
}

// TestRunExperimentFig12Telemetry exercises the acceptance path: fig12
// with a recorder must yield a windowed per-subnet power-state series
// and at least one sleep/wake event carrying its cause.
func TestRunExperimentFig12Telemetry(t *testing.T) {
	rec := telemetry.NewRecorder(telemetry.Options{})
	res, err := RunExperiment(context.Background(), "fig12",
		ExperimentOpts{Total: 1500, Window: 50, Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("fig12 produced no rows")
	}

	windows := map[int]int{} // subnet -> power-state series windows seen
	asleep := map[[2]int64]float64{}
	saved := map[[2]int64]float64{}
	for _, p := range rec.Metrics() {
		if p.Cycle < 0 {
			continue
		}
		switch p.Metric {
		case telemetry.MetricActiveRouterCycles:
			windows[p.Subnet]++
		case telemetry.MetricAsleepRouterCycles:
			asleep[[2]int64{int64(p.Subnet), p.Cycle}] = p.Value
		case telemetry.MetricLeakageSavedPJ:
			saved[[2]int64{int64(p.Subnet), p.Cycle}] = p.Value
		}
	}
	for s := 0; s < 4; s++ {
		if windows[s] == 0 {
			t.Errorf("no windowed %s series for subnet %d", telemetry.MetricActiveRouterCycles, s)
		}
	}
	// The derived energy series must cover exactly the asleep windows and
	// scale them by the model's per-router leakage rate.
	if len(saved) != len(asleep) || len(saved) == 0 {
		t.Fatalf("leakage_saved_pj has %d windows, asleep series has %d", len(saved), len(asleep))
	}
	leak := mustSim(mustDesign("4NT-128b-PG")).Model.RouterLeakPJ()
	for k, a := range asleep {
		if got, want := saved[k], a*leak; got != want {
			t.Fatalf("subnet %d cycle %d: leakage_saved_pj = %g, want %g (asleep %g x %g pJ)",
				k[0], k[1], got, want, a, leak)
		}
	}

	var slept, woke bool
	for _, e := range rec.Log().Events() {
		switch e.Type {
		case telemetry.EventRouterSleep:
			if e.Cause == "" {
				t.Fatalf("sleep event without cause: %+v", e)
			}
			slept = true
		case telemetry.EventRouterWake:
			if e.Cause == "" {
				t.Fatalf("wake event without cause: %+v", e)
			}
			woke = true
		}
	}
	if !slept || !woke {
		t.Fatalf("expected sleep and wake events, got slept=%v woke=%v", slept, woke)
	}
}

// TestTelemetryOverheadGuard is the make bench-telemetry guard: it times
// a fixed run in three arms — base (no telemetry anywhere), off (a
// recorder exists but is never attached, the flags-unset path), and on
// (fully instrumented) — interleaved, min-of-5, then writes
// BENCH_telemetry.json and fails if the off arm costs more than 3% over
// base. Gated behind TELEMETRY_GUARD=1 because wall-clock assertions
// do not belong in the default -race test run.
func TestTelemetryOverheadGuard(t *testing.T) {
	if os.Getenv("TELEMETRY_GUARD") == "" {
		t.Skip("set TELEMETRY_GUARD=1 (or run `make bench-telemetry`) to run the overhead guard")
	}

	// O(active) stepping (see DESIGN.md §4e) cut the wall time of this
	// fixed scenario ~2.3x, which pushed the original 3000-cycle runs
	// under the harness noise floor: constant-size perturbations (GC
	// cycles landing just inside vs outside the timed window) exceeded
	// the old 2% relative guard with no code difference between arms.
	// Longer runs restore the signal-to-noise; the GC barrier below
	// makes each arm's collection count depend only on its own
	// allocation; and the threshold is set so its *absolute* bar
	// (3% of ~68us/cycle = ~2.1us/cycle) stays tighter than the one the
	// guard originally enforced (2% of ~155us/cycle = ~3.1us/cycle).
	const warmup, measure = 300, 8700
	const cycles = warmup + measure
	arms := []struct {
		name string
		run  func() Results
	}{
		{"base", func() Results {
			sim := mustSim(mustDesign("4NT-128b-PG"))
			// Structural zero-cost: no tracer, no extra observer beyond
			// the congestion detector the design itself installs.
			if sim.Net.PowerTracer() != nil {
				t.Fatal("PowerTracer set before any telemetry attach")
			}
			if n := sim.Net.Observers(); n != 1 {
				t.Fatalf("base network has %d observers, want 1 (the detector)", n)
			}
			return sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.10), warmup, measure)
		}},
		{"off", func() Results {
			_ = telemetry.NewRecorder(telemetry.Options{}) // built but never attached
			sim := mustSim(mustDesign("4NT-128b-PG"))
			return sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.10), warmup, measure)
		}},
		{"on", func() Results {
			rec := telemetry.NewRecorder(telemetry.Options{})
			sim := mustSim(mustDesign("4NT-128b-PG"))
			sim.EnableTelemetry(rec, "guard")
			return sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.10), warmup, measure)
		}},
	}

	// Min-of-9: on a shared machine, background-load bursts can deny one
	// arm a quiet slot for a whole 5-rep pass; 9 interleaved reps give
	// each arm enough draws that its minimum reflects the code, not the
	// neighbours.
	const reps = 9
	best := make([]time.Duration, len(arms))
	for i := range best {
		best[i] = time.Duration(1<<63 - 1)
	}
	for r := 0; r < reps; r++ {
		for i, arm := range arms {
			// Settle the heap so GC pacing inside the timed region is
			// driven by this run's allocation, not the previous arm's
			// garbage.
			runtime.GC()
			start := time.Now()
			res := arm.run()
			d := time.Since(start)
			if res.AcceptedThroughput <= 0 {
				t.Fatalf("%s arm produced no traffic", arm.name)
			}
			if d < best[i] {
				best[i] = d
			}
		}
	}

	perCycle := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / cycles }
	base, off, on := perCycle(best[0]), perCycle(best[1]), perCycle(best[2])
	offPct := 100 * (off - base) / base
	onPct := 100 * (on - base) / base

	report := map[string]float64{
		"base_ns_per_cycle": base,
		"off_ns_per_cycle":  off,
		"on_ns_per_cycle":   on,
		"off_overhead_pct":  offPct,
		"on_overhead_pct":   onPct,
	}
	out := os.Getenv("BENCH_TELEMETRY_OUT")
	if out == "" {
		out = "BENCH_telemetry.json"
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("base %.1f ns/cycle, off %+.2f%%, on %+.2f%% (%s)", base, offPct, onPct, out)

	if offPct > 3 {
		t.Fatalf("telemetry-off overhead %.2f%% exceeds the 3%% guard (base %.1f, off %.1f ns/cycle)", offPct, base, off)
	}
}
