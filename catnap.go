// Package catnap is a from-scratch reproduction of "Catnap: Energy
// Proportional Multiple Network-on-Chip" (Das, Narayanasamy, Satpathy,
// Dreslinski — ISCA 2013): a cycle-level multi-subnet network-on-chip
// simulator with the Catnap subnet-selection and power-gating policies,
// the baselines the paper compares against, an Orion-2-style power model,
// and a closed-loop 256-core system model for application workloads.
//
// The package is a facade over the internal engine. Typical use:
//
//	cfg, _ := catnap.Design("4NT-128b-PG")
//	sim, _ := catnap.New(cfg)
//	res := sim.RunSynthetic(traffic.UniformRandom{}, traffic.Constant(0.05), 5000, 20000)
//	fmt.Println(res)
//
// Every configuration evaluated in the paper is available by name through
// Design; every table and figure has a runner in experiments.go and a
// corresponding benchmark in bench_test.go.
package catnap

import (
	"fmt"
	"sort"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/power"
)

// SelectorKind chooses the subnet-selection policy.
type SelectorKind int

// Subnet-selection policies.
const (
	// SelectorRR distributes packets round-robin (the naive baseline, and
	// the trivial choice for Single-NoC).
	SelectorRR SelectorKind = iota
	// SelectorRandom picks a uniformly random ready subnet.
	SelectorRandom
	// SelectorCatnap is the paper's strict-priority, congestion-driven
	// policy (requires a congestion metric).
	SelectorCatnap
)

// GatingKind chooses the power-gating policy.
type GatingKind int

// Power-gating policies.
const (
	// GatingOff keeps every router active (the non-PG baselines).
	GatingOff GatingKind = iota
	// GatingBaseline is Matsutani-style gating: sleep on idle buffers,
	// wake reactively via look-ahead/NI signals.
	GatingBaseline
	// GatingCatnap adds the regional-congestion conditions of Figure 5.
	GatingCatnap
)

// Config is the complete experiment configuration. Zero values for the
// microarchitectural fields are filled from the paper's parameters by
// ApplyDefaults; start from Design or BaseConfig rather than a bare
// literal.
type Config struct {
	// Name labels the configuration in reports ("4NT-128b-PG").
	Name string

	// Mesh geometry.
	Rows, Cols   int
	TilesPerNode int
	RegionDim    int

	// Torus closes both mesh dimensions with wraparound links — the
	// paper's §8 future work ("further study is required ... for other
	// topologies"). Torus mode reserves the VC space for dateline
	// deadlock avoidance, so it cannot be combined with AppTraffic's
	// per-class VC masks.
	Torus bool
	// FBfly builds a flattened butterfly (§2.2's high-radix alternative):
	// direct links to every row and column peer, at most two hops per
	// packet, radix rows+cols−1. Mutually exclusive with Torus.
	FBfly bool

	// Network provisioning.
	Subnets       int
	LinkWidthBits int
	// VoltageV is the router supply voltage; 0 selects the minimum
	// voltage at which the router width reaches 2 GHz (Table 2).
	VoltageV float64

	// Router microarchitecture.
	VCs, VCDepth, InjQueueFlits         int
	RouterDelay, LinkDelay, CreditDelay int

	// Power-gating timing (SPICE-derived).
	TWakeup, WakeupHidden, TIdleDetect, TBreakeven int

	// Policies.
	Selector SelectorKind
	Gating   GatingKind
	// Metric is the local congestion metric for Catnap policies.
	Metric congestion.MetricKind
	// MetricThreshold overrides the paper's default threshold when > 0.
	MetricThreshold float64
	// LocalOnly disables the regional OR network (the BFM-local /
	// IQOcc-local variants of Figure 11).
	LocalOnly bool

	// AppTraffic maps the coherence message classes onto disjoint virtual
	// channels for protocol-level deadlock freedom; leave false for
	// synthetic traffic, which may use every VC.
	AppTraffic bool

	// RealCoherence replaces the statistical 4-hop directory model with
	// the stateful MESI directory (per-block state, sharer bitmaps,
	// invalidation fan-out). The paper experiments use the statistical
	// model; this mode supports protocol-level studies.
	RealCoherence bool

	// OrderedForward pins the point-to-point-ordered message class
	// (directory request forwarding) to subnet 0, implementing §2.3's
	// "messages which require point-to-point ordering can be mapped to
	// one specific lower-order subnetwork". Only meaningful with
	// AppTraffic and more than one subnet.
	OrderedForward bool

	// ParallelSubnets runs each subnet's router pipeline on its own
	// goroutine. Results are bit-identical to sequential execution (the
	// subnets share no mutable state mid-cycle); it simply trades cores
	// for wall-clock on multi-subnet configurations.
	ParallelSubnets bool

	// ShardedRouters partitions every subnet's router phase into
	// contiguous row-band shards stepped concurrently, with cross-shard
	// effects staged in commit queues and applied in a fixed order after
	// the barrier — bit-identical to sequential stepping at any shard
	// count (see noc.ExecMode.Shards). Where ParallelSubnets helps only
	// when load spreads across subnets, sharding parallelizes inside the
	// one subnet Catnap's strict-priority selection concentrates traffic
	// on; the two compose.
	ShardedRouters bool
	// ShardCount is the row-band count per subnet when ShardedRouters is
	// set; 0 means GOMAXPROCS.
	ShardCount int
	// NoIdleSkip disables event-driven idle fast-forward (on by default):
	// when the network is fully quiescent, Simulator.Run jumps simulated
	// time directly to the next staged event or traffic arrival instead
	// of stepping empty cycles one by one. Results are bit-identical
	// either way (the differential suites assert it); disable it only to
	// benchmark the per-cycle idle path or to debug with every cycle
	// visible (-no-skip in the CLIs).
	NoIdleSkip bool

	// Seed drives all randomness (policies only; traffic generators and
	// system models take their own seeds).
	Seed uint64

	// PowerParams overrides the calibrated power model constants.
	PowerParams *power.Params
}

// BaseConfig returns the paper's 256-core baseline: an 8×8 concentrated
// mesh (4 tiles/node), 4 VCs × 4-flit buffers, 16-flit injection queues,
// two-stage routers, and the SPICE gating constants. Subnets/width and
// policies are left for the caller (or Design) to choose.
func BaseConfig() Config {
	return Config{
		Rows: 8, Cols: 8, TilesPerNode: 4, RegionDim: 4,
		VCs: 4, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
		TWakeup: 10, WakeupHidden: 3, TIdleDetect: 4, TBreakeven: 12,
		Metric: congestion.BFM,
		Seed:   1,
	}
}

// ApplyDefaults fills zero-valued microarchitectural fields from
// BaseConfig and resolves the operating voltage from Table 2's model.
func (c *Config) ApplyDefaults() {
	b := BaseConfig()
	if c.Rows == 0 {
		c.Rows = b.Rows
	}
	if c.Cols == 0 {
		c.Cols = b.Cols
	}
	if c.TilesPerNode == 0 {
		c.TilesPerNode = b.TilesPerNode
	}
	if c.RegionDim == 0 {
		c.RegionDim = b.RegionDim
		if c.Rows < c.RegionDim || c.Cols < c.RegionDim {
			c.RegionDim = min(c.Rows, c.Cols)
		}
	}
	if c.Subnets == 0 {
		c.Subnets = 1
	}
	if c.LinkWidthBits == 0 {
		c.LinkWidthBits = 512 / c.Subnets
	}
	if c.VCs == 0 {
		c.VCs = b.VCs
	}
	if c.VCDepth == 0 {
		c.VCDepth = b.VCDepth
	}
	if c.InjQueueFlits == 0 {
		c.InjQueueFlits = b.InjQueueFlits
	}
	if c.RouterDelay == 0 {
		c.RouterDelay = b.RouterDelay
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = b.LinkDelay
	}
	if c.CreditDelay == 0 {
		c.CreditDelay = b.CreditDelay
	}
	if c.TWakeup == 0 {
		c.TWakeup = b.TWakeup
	}
	if c.WakeupHidden == 0 {
		c.WakeupHidden = b.WakeupHidden
	}
	if c.TIdleDetect == 0 {
		c.TIdleDetect = b.TIdleDetect
	}
	if c.TBreakeven == 0 {
		c.TBreakeven = b.TBreakeven
	}
	if c.Seed == 0 {
		c.Seed = b.Seed
	}
	if c.VoltageV == 0 {
		p := c.powerParams()
		if v, ok := p.MinVoltageFor(c.LinkWidthBits, 2.0); ok {
			c.VoltageV = v
		} else {
			c.VoltageV = p.Vref
		}
	}
}

func (c *Config) powerParams() power.Params {
	if c.PowerParams != nil {
		return *c.PowerParams
	}
	return power.DefaultParams()
}

// nocConfig lowers the facade configuration to the engine's.
func (c *Config) nocConfig() noc.Config {
	n := noc.Config{
		Rows: c.Rows, Cols: c.Cols, TilesPerNode: c.TilesPerNode, RegionDim: c.RegionDim,
		Torus: c.Torus, FBfly: c.FBfly,
		Subnets: c.Subnets, LinkWidthBits: c.LinkWidthBits,
		VCs: c.VCs, VCDepth: c.VCDepth, InjQueueFlits: c.InjQueueFlits,
		RouterDelay: c.RouterDelay, LinkDelay: c.LinkDelay, CreditDelay: c.CreditDelay,
		TWakeup: c.TWakeup, WakeupHidden: c.WakeupHidden,
		TIdleDetect: c.TIdleDetect, TBreakeven: c.TBreakeven,
	}
	if c.AppTraffic {
		n.ClassVCMask = AppClassVCMasks()
	}
	return n
}

// AppClassVCMasks returns the virtual-channel mapping that gives each
// dependent coherence message class a disjoint VC set (§2.3): requests on
// VC0, forwards on VC1 (the point-to-point-ordered class), responses on
// VC2–3, acks/writebacks on VC3.
func AppClassVCMasks() [noc.NumClasses]uint32 {
	var m [noc.NumClasses]uint32
	m[noc.ClassRequest] = 1 << 0
	m[noc.ClassForward] = 1 << 1
	m[noc.ClassResponse] = 1<<2 | 1<<3
	m[noc.ClassAck] = 1 << 3
	return m
}

// needsDetector reports whether the configuration requires congestion
// detection machinery.
func (c *Config) needsDetector() bool {
	return c.Selector == SelectorCatnap || c.Gating == GatingCatnap
}

// designs is the registry of named paper configurations.
var designs = map[string]func() Config{}

func registerDesign(name string, f func() Config) {
	designs[name] = f
}

func init() {
	mk := func(name string, subnets, width int, sel SelectorKind, gate GatingKind) func() Config {
		return func() Config {
			c := BaseConfig()
			c.Name = name
			c.Subnets = subnets
			c.LinkWidthBits = width
			c.Selector = sel
			c.Gating = gate
			c.ApplyDefaults()
			return c
		}
	}
	// The six 256-core configurations of Figure 8.
	registerDesign("1NT-512b", mk("1NT-512b", 1, 512, SelectorRR, GatingOff))
	registerDesign("1NT-128b", mk("1NT-128b", 1, 128, SelectorRR, GatingOff))
	registerDesign("4NT-128b", mk("4NT-128b", 4, 128, SelectorRR, GatingOff))
	registerDesign("1NT-512b-PG", mk("1NT-512b-PG", 1, 512, SelectorRR, GatingBaseline))
	registerDesign("1NT-128b-PG", mk("1NT-128b-PG", 1, 128, SelectorRR, GatingBaseline))
	registerDesign("4NT-128b-PG", mk("4NT-128b-PG", 4, 128, SelectorCatnap, GatingCatnap))
	// The Multi-NoC round-robin gating baseline of Figure 11 ("RR").
	registerDesign("4NT-128b-PG-RR", mk("4NT-128b-PG-RR", 4, 128, SelectorRR, GatingBaseline))
	// The bandwidth-equivalent alternatives of Figure 6.
	registerDesign("2NT-256b", mk("2NT-256b", 2, 256, SelectorRR, GatingOff))
	registerDesign("8NT-64b", mk("8NT-64b", 8, 64, SelectorRR, GatingOff))
	// The 64-core study of Figure 14 (4×4 mesh, 8 GB/s per core → 256-bit
	// aggregate width).
	mk64 := func(name string, subnets, width int, sel SelectorKind, gate GatingKind) func() Config {
		return func() Config {
			c := BaseConfig()
			c.Name = name
			c.Rows, c.Cols = 4, 4
			c.RegionDim = 2
			c.Subnets = subnets
			c.LinkWidthBits = width
			c.Selector = sel
			c.Gating = gate
			c.ApplyDefaults()
			return c
		}
	}
	registerDesign("64c-1NT-256b-PG", mk64("64c-1NT-256b-PG", 1, 256, SelectorRR, GatingBaseline))
	registerDesign("64c-2NT-128b-PG", mk64("64c-2NT-128b-PG", 2, 128, SelectorCatnap, GatingCatnap))
	// Torus variants (beyond the paper: §8 future work on other
	// topologies).
	registerDesign("4NT-128b-PG-torus", func() Config {
		c := mk("4NT-128b-PG-torus", 4, 128, SelectorCatnap, GatingCatnap)()
		c.Torus = true
		return c
	})
	registerDesign("1NT-512b-torus", func() Config {
		c := mk("1NT-512b-torus", 1, 512, SelectorRR, GatingOff)()
		c.Torus = true
		return c
	})
	// Flattened-butterfly variants (§2.2's high-radix topology; §8
	// conjectures Multi-NoC power gating helps it too).
	registerDesign("4NT-128b-PG-fbfly", func() Config {
		c := mk("4NT-128b-PG-fbfly", 4, 128, SelectorCatnap, GatingCatnap)()
		c.FBfly = true
		return c
	})
	registerDesign("1NT-512b-fbfly", func() Config {
		c := mk("1NT-512b-fbfly", 1, 512, SelectorRR, GatingOff)()
		c.FBfly = true
		return c
	})
}

// Design returns the named paper configuration; see Designs for the list.
func Design(name string) (Config, error) {
	f, ok := designs[name]
	if !ok {
		return Config{}, fmt.Errorf("catnap: unknown design %q (available: %v)", name, Designs())
	}
	return f(), nil
}

// Designs lists the registered configuration names, sorted.
func Designs() []string {
	out := make([]string, 0, len(designs))
	for k := range designs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
