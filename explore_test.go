package catnap

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
)

// tinyExploreOpts is a minutes-not-hours campaign for integration tests:
// 8 real simulations at short scale.
func tinyExploreOpts() ExperimentOpts {
	return ExperimentOpts{
		Scale: Scale{Warmup: 100, Measure: 400},
		Explore: ExploreOpts{
			Space: ExploreSpace{
				Subnets:    []int{1, 4},
				Widths:     []int{128, 512},
				VCDepths:   []int{4},
				TIdles:     []int{4},
				Metrics:    []string{"BFM"},
				Thresholds: []float64{0, 2},
			},
			Grid: true,
		},
	}
}

// TestRunExploreEndToEnd drives the production evaluator over a tiny
// grid: the campaign must evaluate every point, produce a non-empty
// consistent front, and serialize it identically on a warm-cache rerun.
func TestRunExploreEndToEnd(t *testing.T) {
	opts := tinyExploreOpts()
	opts.Explore.CacheDir = filepath.Join(t.TempDir(), "cache")
	r, err := RunExplore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpaceSize != 8 || r.Proposed != 8 {
		t.Fatalf("campaign covered %d/%d points", r.Proposed, r.SpaceSize)
	}
	if r.Failures != 0 {
		t.Fatalf("%d evaluation failures", r.Failures)
	}
	if r.Front.Len() == 0 {
		t.Fatal("empty front")
	}
	if err := r.Front.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Front.Points() {
		if p.PowerW <= 0 || p.Latency <= 0 {
			t.Fatalf("front member with non-physical objectives: %+v", p)
		}
	}

	var cold bytes.Buffer
	if err := r.WriteFront(&cold); err != nil {
		t.Fatal(err)
	}
	warm, err := RunExplore(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Misses != 0 || warm.Cache.Hits != 8 {
		t.Fatalf("warm rerun not fully cached: %+v", warm.Cache)
	}
	var warmBuf bytes.Buffer
	if err := warm.WriteFront(&warmBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Bytes(), warmBuf.Bytes()) {
		t.Fatal("warm-cache frontier differs from cold frontier")
	}
}

// TestExploreExperimentRegistered exercises the registry path: the
// "explore" experiment renders one table row per front member.
func TestExploreExperimentRegistered(t *testing.T) {
	res, err := RunExperiment(context.Background(), "explore", tinyExploreOpts())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := res.Data.(*ExploreResult)
	if !ok {
		t.Fatalf("Data is %T, want *ExploreResult", res.Data)
	}
	if len(res.Rows) != r.Front.Len() {
		t.Fatalf("%d table rows for a %d-member front", len(res.Rows), r.Front.Len())
	}
	if len(res.Header) != len(res.Rows[0]) {
		t.Fatalf("header has %d columns, rows have %d", len(res.Header), len(res.Rows[0]))
	}
	found := false
	for _, e := range Experiments() {
		if e.Name == "explore" && e.Kind == "study" {
			found = true
		}
	}
	if !found {
		t.Fatal("explore missing from the experiment registry")
	}
}
