package cpusim_test

// Behavioural tests of the system model's throttling mechanisms: memory
// bandwidth, instruction windows, and MSHRs are what make performance a
// *measured* closed-loop output rather than an assumption.

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/cpusim"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/workload"
)

// runWithConfig runs a mix on a 4x4/64-core system with a custom cpusim
// config and returns the system IPC.
func runWithConfig(t *testing.T, mixName string, mutate func(*cpusim.Config)) float64 {
	t.Helper()
	ncfg := netConfig(4, 4, 1, 512)
	net, err := noc.New(ncfg, core.NewRRSelector(ncfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	mix, err := workload.MixByName(mixName)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cpusim.DefaultConfig()
	mutate(&scfg)
	sys, err := cpusim.New(net, scfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	net.Run(15000)
	return sys.SystemIPC()
}

// TestWindowSizeThrottles: a smaller instruction window tolerates less
// miss latency, so IPC must drop on a memory-bound mix.
func TestWindowSizeThrottles(t *testing.T) {
	big := runWithConfig(t, "Heavy", func(c *cpusim.Config) { c.WindowSize = 64 })
	small := runWithConfig(t, "Heavy", func(c *cpusim.Config) { c.WindowSize = 8 })
	if small >= big {
		t.Errorf("window 8 IPC %.1f should trail window 64 IPC %.1f", small, big)
	}
	if small < big*0.2 {
		t.Errorf("window 8 IPC %.1f implausibly low vs %.1f", small, big)
	}
}

// TestMSHRsThrottle: one MSHR serializes misses; IPC must collapse
// relative to 32 MSHRs on a memory-bound mix.
func TestMSHRsThrottle(t *testing.T) {
	many := runWithConfig(t, "Heavy", func(c *cpusim.Config) { c.MSHRs = 32 })
	one := runWithConfig(t, "Heavy", func(c *cpusim.Config) { c.MSHRs = 1 })
	if one >= many {
		t.Errorf("1 MSHR IPC %.1f should trail 32 MSHRs IPC %.1f", one, many)
	}
}

// TestDRAMLatencyHurts: tripling DRAM latency must cost IPC on a
// heavy mix (the memory path is live).
func TestDRAMLatencyHurts(t *testing.T) {
	fast := runWithConfig(t, "Heavy", func(c *cpusim.Config) { c.DRAMLatency = 80 })
	slow := runWithConfig(t, "Heavy", func(c *cpusim.Config) { c.DRAMLatency = 400 })
	if slow >= fast {
		t.Errorf("400-cycle DRAM IPC %.1f should trail 80-cycle IPC %.1f", slow, fast)
	}
}

// TestMCConcurrencyBounds: strangling memory-controller parallelism must
// cost IPC (bandwidth wall), and generous parallelism must not hurt.
func TestMCConcurrencyBounds(t *testing.T) {
	normal := runWithConfig(t, "Heavy", func(c *cpusim.Config) { c.MCConcurrency = 16 })
	strangled := runWithConfig(t, "Heavy", func(c *cpusim.Config) { c.MCConcurrency = 1 })
	if strangled >= normal {
		t.Errorf("1-deep MCs IPC %.1f should trail 16-deep IPC %.1f", strangled, normal)
	}
}

// TestLightInsensitiveToMemory: the Light mix barely touches DRAM, so
// the same DRAM slowdown must cost it far less than Heavy.
func TestLightInsensitiveToMemory(t *testing.T) {
	fast := runWithConfig(t, "Light", func(c *cpusim.Config) { c.DRAMLatency = 80 })
	slow := runWithConfig(t, "Light", func(c *cpusim.Config) { c.DRAMLatency = 400 })
	lightLoss := 1 - slow/fast
	hFast := runWithConfig(t, "Heavy", func(c *cpusim.Config) { c.DRAMLatency = 80 })
	hSlow := runWithConfig(t, "Heavy", func(c *cpusim.Config) { c.DRAMLatency = 400 })
	heavyLoss := 1 - hSlow/hFast
	if lightLoss > heavyLoss {
		t.Errorf("Light DRAM sensitivity %.2f exceeds Heavy's %.2f", lightLoss, heavyLoss)
	}
}

func TestInvalidSystemConfigs(t *testing.T) {
	ncfg := netConfig(4, 4, 1, 512)
	net, err := noc.New(ncfg, core.NewRRSelector(ncfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	mix, _ := workload.MixByName("Light")
	bad := cpusim.DefaultConfig()
	bad.WindowSize = 0
	if _, err := cpusim.New(net, bad, mix); err == nil {
		t.Error("zero window accepted")
	}
	// Wrong-sized explicit assignment.
	if _, err := cpusim.NewWithAssignment(net, cpusim.DefaultConfig(), nil); err == nil {
		t.Error("nil assignment accepted")
	}
}
