package cpusim

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/sim"
	"github.com/catnap-noc/catnap/internal/workload"
)

// fakeSys builds the minimal System a Core needs: launched misses are
// recorded and can be completed manually.
type fakeMiss struct {
	core *Core
	idx  int
}

func coreFixture(t *testing.T, prof *workload.Profile) (*Core, *System, *[]fakeMiss) {
	t.Helper()
	cfg := noc.Config{
		Rows: 2, Cols: 2, TilesPerNode: 4, RegionDim: 2,
		Subnets: 1, LinkWidthBits: 512,
		VCs: 4, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
		TWakeup: 10, WakeupHidden: 3, TIdleDetect: 4, TBreakeven: 12,
	}
	net, err := noc.New(cfg, rrStub{})
	if err != nil {
		t.Fatal(err)
	}
	scfg := DefaultConfig()
	assign := make([]*workload.Profile, net.Topo().Tiles())
	for i := range assign {
		assign[i] = prof
	}
	sys, err := NewWithAssignment(net, scfg, assign)
	if err != nil {
		t.Fatal(err)
	}
	var launched []fakeMiss
	return sys.cores[0], sys, &launched
}

type rrStub struct{}

func (rrStub) Select(now int64, node int, pkt *noc.Packet, ready []bool) int {
	for s, ok := range ready {
		if ok {
			return s
		}
	}
	return -1
}

func TestCoreNoMissesRunsAtPeak(t *testing.T) {
	prof := &workload.Profile{Name: "compute", PeakIPC: 2, BurstRatio: 1, BurstFrac: 0}
	c, _, _ := coreFixture(t, prof)
	for cyc := int64(0); cyc < 1000; cyc++ {
		c.step(cyc)
	}
	if got := c.Retired(); got != 2000 {
		t.Fatalf("retired %d instructions, want 2000 (peak IPC 2)", got)
	}
}

func TestCoreFractionalIPC(t *testing.T) {
	prof := &workload.Profile{Name: "slow", PeakIPC: 0.5, BurstRatio: 1}
	c, _, _ := coreFixture(t, prof)
	for cyc := int64(0); cyc < 1000; cyc++ {
		c.step(cyc)
	}
	if got := c.Retired(); got < 480 || got > 520 {
		t.Fatalf("retired %d, want ~500 at IPC 0.5", got)
	}
}

// TestCoreWindowStall: with misses never completing, the core must stall
// once the oldest miss slips out of the 64-entry window, having issued at
// most window+epsilon instructions past it.
func TestCoreWindowStall(t *testing.T) {
	prof, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	c, sys, _ := coreFixture(t, prof)
	// Run the core alone without ever stepping the network: no responses.
	for cyc := int64(0); cyc < 5000; cyc++ {
		c.step(cyc)
	}
	issued, completed := sys.MissStats()
	if completed != 0 {
		t.Fatalf("completed %d misses with no network", completed)
	}
	if issued == 0 {
		t.Fatal("no misses issued")
	}
	oldest, ok := c.oldestMiss()
	if !ok {
		t.Fatal("no outstanding miss")
	}
	if c.Retired()-oldest > int64(sys.cfg.WindowSize) {
		t.Fatalf("retired %d past oldest miss at %d: window (%d) not enforced",
			c.Retired()-oldest, oldest, sys.cfg.WindowSize)
	}
}

// TestCoreMSHRLimit: outstanding misses never exceed the MSHR count.
func TestCoreMSHRLimit(t *testing.T) {
	prof := &workload.Profile{Name: "hammer", L1MPKI: 500, L2MPKI: 0, PeakIPC: 2, BurstRatio: 1}
	c, _, _ := coreFixture(t, prof)
	for cyc := int64(0); cyc < 2000; cyc++ {
		c.step(cyc)
		if c.missCount > len(c.misses) {
			t.Fatalf("missCount %d exceeds MSHRs %d", c.missCount, len(c.misses))
		}
	}
}

// TestPhaseModulation: a bursty profile's phase machinery must preserve
// the average MPKI over long runs.
func TestPhaseModulation(t *testing.T) {
	prof := &workload.Profile{
		Name: "bursty", L1MPKI: 20, L2MPKI: 0, PeakIPC: 1,
		BurstRatio: 5, BurstFrac: 0.25,
	}
	rng := sim.NewRNG(3)
	cfg := noc.Config{
		Rows: 2, Cols: 2, TilesPerNode: 4, RegionDim: 2,
		Subnets: 1, LinkWidthBits: 512,
		VCs: 4, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
	}
	net, err := noc.New(cfg, rrStub{})
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]*workload.Profile, net.Topo().Tiles())
	for i := range assign {
		assign[i] = prof
	}
	sys, err := NewWithAssignment(net, DefaultConfig(), assign)
	if err != nil {
		t.Fatal(err)
	}
	_ = rng
	// Run the full closed loop long enough to average over many phases.
	net.Run(200000)
	issued, _ := sys.MissStats()
	var retired int64
	for _, c := range sys.cores {
		retired += c.Retired()
	}
	mpki := float64(issued) / float64(retired) * 1000
	if mpki < 15 || mpki > 25 {
		t.Errorf("realized MPKI %.1f, want ~20 (phase modulation must preserve the mean)", mpki)
	}
}

// TestMCService: channel-level parallelism and queueing.
func TestMCService(t *testing.T) {
	m := &mc{node: 0, busyUntil: make([]int64, 2)}
	// Two concurrent requests at t=0 both finish at 80.
	if d := m.service(0, 80); d != 80 {
		t.Fatalf("first request done at %d", d)
	}
	if d := m.service(0, 80); d != 80 {
		t.Fatalf("second request done at %d", d)
	}
	// The third queues behind the earliest channel.
	if d := m.service(0, 80); d != 160 {
		t.Fatalf("third request done at %d, want 160", d)
	}
	// A late request after the channels idle starts immediately.
	if d := m.service(300, 80); d != 380 {
		t.Fatalf("late request done at %d, want 380", d)
	}
	if m.requests != 4 {
		t.Fatalf("request count %d", m.requests)
	}
}

// TestCoherenceMessageClasses: a running mix must exercise all four
// protocol classes (request, forward, response, ack/writeback).
func TestCoherenceMessageClasses(t *testing.T) {
	cfg := noc.Config{
		Rows: 4, Cols: 4, TilesPerNode: 4, RegionDim: 2,
		Subnets: 1, LinkWidthBits: 512,
		VCs: 4, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
	}
	net, err := noc.New(cfg, rrStub{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[noc.MsgClass]int{}
	net.AddSink(func(now int64, p *noc.Packet) { seen[p.Class]++ })
	mix, err := workload.MixByName("Heavy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(net, DefaultConfig(), mix); err != nil {
		t.Fatal(err)
	}
	net.Run(20000)
	for _, class := range []noc.MsgClass{noc.ClassRequest, noc.ClassForward, noc.ClassResponse, noc.ClassAck} {
		if seen[class] == 0 {
			t.Errorf("message class %v never delivered", class)
		}
	}
	// Control packets dominate in count (~60% in the paper).
	ctrl := seen[noc.ClassRequest] + seen[noc.ClassForward] + seen[noc.ClassAck]
	total := ctrl + seen[noc.ClassResponse]
	if frac := float64(ctrl) / float64(total); frac < 0.4 || frac > 0.8 {
		t.Errorf("control packet fraction %.2f, want ~0.6", frac)
	}
}
