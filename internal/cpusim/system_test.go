package cpusim_test

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/cpusim"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/workload"
)

func netConfig(rows, cols, subnets, width int) noc.Config {
	return noc.Config{
		Rows: rows, Cols: cols, TilesPerNode: 4, RegionDim: rows / 2,
		Subnets: subnets, LinkWidthBits: width,
		VCs: 4, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
		TWakeup: 10, WakeupHidden: 3, TIdleDetect: 4, TBreakeven: 12,
		ClassVCMask: appClassMasks(),
	}
}

// appClassMasks maps dependent message classes to disjoint VCs for
// protocol-level deadlock freedom.
func appClassMasks() [noc.NumClasses]uint32 {
	var m [noc.NumClasses]uint32
	m[noc.ClassRequest] = 1 << 0
	m[noc.ClassForward] = 1 << 1
	m[noc.ClassResponse] = 1<<2 | 1<<3
	m[noc.ClassAck] = 1 << 3
	return m
}

func buildSystem(t *testing.T, ncfg noc.Config, mixName string) (*noc.Network, *cpusim.System) {
	t.Helper()
	net, err := noc.New(ncfg, core.NewRRSelector(ncfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	mix, err := workload.MixByName(mixName)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cpusim.New(net, cpusim.DefaultConfig(), mix)
	if err != nil {
		t.Fatal(err)
	}
	return net, sys
}

func TestSystemClosedLoop(t *testing.T) {
	net, sys := buildSystem(t, netConfig(4, 4, 1, 512), "Medium-Light")
	net.Run(20000)
	issued, completed := sys.MissStats()
	if issued == 0 {
		t.Fatal("no misses issued")
	}
	// The vast majority of misses must complete (closed loop, no leaks);
	// only the last in-flight window may be pending.
	if float64(completed) < 0.95*float64(issued) {
		t.Fatalf("completed %d of %d misses", completed, issued)
	}
	if sys.Pending() != issued-completed {
		t.Fatalf("pending accounting: %d != %d-%d", sys.Pending(), issued, completed)
	}
	if ipc := sys.SystemIPC(); ipc <= 0 {
		t.Fatalf("system IPC = %v", ipc)
	}
}

func TestIPCSensitivityToMPKI(t *testing.T) {
	// On identical networks, a Heavy mix must retire fewer instructions
	// per cycle than a Light mix: misses stall windows.
	netL, sysL := buildSystem(t, netConfig(4, 4, 1, 512), "Light")
	netH, sysH := buildSystem(t, netConfig(4, 4, 1, 512), "Heavy")
	netL.Run(20000)
	netH.Run(20000)
	if sysL.SystemIPC() <= sysH.SystemIPC() {
		t.Fatalf("Light IPC %.2f should exceed Heavy IPC %.2f", sysL.SystemIPC(), sysH.SystemIPC())
	}
}

// TestFig2Shape reproduces Figure 2's core finding at test scale: an
// under-provisioned network hurts Heavy far more than Light.
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run system simulation")
	}
	run := func(mix string, width int) float64 {
		net, sys := buildSystem(t, netConfig(8, 8, 1, width), mix)
		net.Run(5000) // warmup
		sys.StartMeasurement()
		net.Run(15000)
		return sys.SystemIPC()
	}
	lightWide := run("Light", 512)
	lightNarrow := run("Light", 128)
	heavyWide := run("Heavy", 512)
	heavyNarrow := run("Heavy", 128)

	lightLoss := 1 - lightNarrow/lightWide
	heavyLoss := 1 - heavyNarrow/heavyWide
	t.Logf("light loss %.1f%%, heavy loss %.1f%%", lightLoss*100, heavyLoss*100)
	if heavyLoss < lightLoss+0.05 {
		t.Errorf("narrow NoC should hurt Heavy (%.1f%%) much more than Light (%.1f%%)", heavyLoss*100, lightLoss*100)
	}
	if heavyLoss < 0.15 {
		t.Errorf("Heavy loss %.1f%% too small; paper reports ~41%%", heavyLoss*100)
	}
	if lightLoss > 0.15 {
		t.Errorf("Light loss %.1f%% too large; Light fits in a 128-bit NoC", lightLoss*100)
	}
}

func TestDefaultMCNodes(t *testing.T) {
	nodes := cpusim.DefaultMCNodes(8, 8)
	if len(nodes) != 8 {
		t.Fatalf("got %d MC nodes, want 8", len(nodes))
	}
	seen := map[int]bool{}
	for _, n := range nodes {
		if n < 0 || n >= 64 {
			t.Errorf("MC node %d out of range", n)
		}
		if seen[n] {
			t.Errorf("duplicate MC node %d", n)
		}
		seen[n] = true
		if n%8 != 0 && n%8 != 7 {
			t.Errorf("MC node %d not on an east/west edge", n)
		}
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		net, sys := buildSystem(t, netConfig(4, 4, 2, 256), "Medium-Heavy")
		net.Run(10000)
		i, _ := sys.MissStats()
		return sys.SystemIPC(), i
	}
	ipc1, m1 := run()
	ipc2, m2 := run()
	if ipc1 != ipc2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", ipc1, m1, ipc2, m2)
	}
}
