// Package cpusim is the closed-loop 256-core system model of Table 1: 2-wide
// cores with 64-entry instruction windows and 32 MSHRs, private L1s, a
// shared distributed L2 with a 4-hop MESI directory protocol, and eight
// DRAM memory controllers. It generates the application-workload network
// traffic (request/forward/response/ack/writeback packets with the paper's
// 1-flit-control / 64B+72b-data sizing) and feeds network response latency
// back into core progress, so "normalized system performance" (Figures 2
// and 8) is measured, not assumed.
//
// Cores replay statistical benchmark profiles (internal/workload) instead
// of proprietary Pin traces — the substitution is documented in DESIGN.md.
package cpusim

import (
	"github.com/catnap-noc/catnap/internal/sim"
	"github.com/catnap-noc/catnap/internal/workload"
)

// missRecord tracks one outstanding L1 miss in a core's window.
type missRecord struct {
	instrNo int64 // instruction count at issue
	done    bool
}

// Core models one 2-wide out-of-order core at the fidelity the network
// study needs: it issues instructions at the profile's peak rate, takes
// L1 misses at the profile's (phase-modulated) MPKI, overlaps misses up
// to the MSHR limit, and stalls when the oldest outstanding miss slips
// beyond the 64-entry instruction window — so network latency directly
// throttles instruction throughput.
type Core struct {
	id      int
	node    int
	prof    *workload.Profile
	rng     *sim.RNG
	sys     *System
	enabled bool

	// Instruction accounting.
	retired     int64
	issueCredit float64 // fractional issue accumulator (PeakIPC may be <1/cycle-granular)

	// Outstanding misses, in issue order (ring buffer of MSHR size).
	misses     []missRecord
	missHead   int
	missCount  int
	nextMissID int

	// instrToMiss counts instructions until the next L1 miss.
	instrToMiss int64

	// Phase state (bursty MPKI).
	inBurst    bool
	phaseEnds  int64
	mpkiLo     float64
	mpkiHi     float64
	activeMPKI float64
}

// newCore builds a core running prof at node.
func newCore(sys *System, id, node int, prof *workload.Profile, rng *sim.RNG) *Core {
	c := &Core{id: id, node: node, prof: prof, rng: rng, sys: sys, enabled: true}
	c.misses = make([]missRecord, sys.cfg.MSHRs)

	// Split the profile's average MPKI into low/high phase values that
	// preserve the average given the burst ratio and duty cycle.
	avg := prof.MPKI()
	r := prof.BurstRatio
	if r < 1 {
		r = 1
	}
	h := prof.BurstFrac
	c.mpkiLo = avg / (h*r + (1 - h))
	c.mpkiHi = c.mpkiLo * r
	c.inBurst = false
	c.activeMPKI = c.mpkiLo
	c.phaseEnds = c.drawPhaseLen()
	c.drawNextMiss()
	return c
}

// drawPhaseLen samples the current phase's remaining length in cycles.
func (c *Core) drawPhaseLen() int64 {
	mean := c.sys.cfg.LowPhaseCycles
	if c.inBurst {
		mean = c.sys.cfg.BurstPhaseCycles
	}
	// Geometric approximation of an exponential phase length.
	return int64(c.rng.Geometric(1/float64(mean))) + 1
}

// drawNextMiss samples the instruction distance to the next L1 miss from
// the active phase's MPKI.
func (c *Core) drawNextMiss() {
	p := c.activeMPKI / 1000
	if p <= 0 {
		c.instrToMiss = 1 << 60
		return
	}
	if p > 1 {
		p = 1
	}
	c.instrToMiss = int64(c.rng.Geometric(p)) + 1
}

// oldestMiss returns the instruction number of the oldest incomplete miss
// and whether one exists.
func (c *Core) oldestMiss() (int64, bool) {
	for c.missCount > 0 && c.misses[c.missHead].done {
		c.missHead = (c.missHead + 1) % len(c.misses)
		c.missCount--
	}
	if c.missCount == 0 {
		return 0, false
	}
	return c.misses[c.missHead].instrNo, true
}

// step advances the core by one cycle at time now.
func (c *Core) step(now int64) {
	if !c.enabled {
		return
	}
	// Phase transitions.
	if now >= c.phaseEnds {
		c.inBurst = !c.inBurst
		if c.inBurst {
			c.activeMPKI = c.mpkiHi
		} else {
			c.activeMPKI = c.mpkiLo
		}
		c.phaseEnds = now + c.drawPhaseLen()
	}

	c.issueCredit += c.prof.PeakIPC
	for c.issueCredit >= 1 {
		// Window stall: the oldest outstanding miss blocks retirement once
		// the window fills behind it.
		if oldest, ok := c.oldestMiss(); ok {
			if c.retired-oldest >= int64(c.sys.cfg.WindowSize) {
				// Cap the credit so a long stall doesn't bank issue slots.
				if c.issueCredit > c.prof.PeakIPC {
					c.issueCredit = c.prof.PeakIPC
				}
				return
			}
		}
		c.issueCredit--
		c.retired++
		c.instrToMiss--
		if c.instrToMiss <= 0 {
			c.drawNextMiss()
			if c.missCount == len(c.misses) {
				// MSHRs full: the miss (and the core) waits; model as a
				// stall by pushing the miss to the next cycle.
				c.retired--
				c.issueCredit++
				c.instrToMiss = 1
				return
			}
			c.issueMiss(now)
		}
	}
}

// issueMiss records the miss in the window and asks the system to launch
// its coherence transaction.
func (c *Core) issueMiss(now int64) {
	idx := (c.missHead + c.missCount) % len(c.misses)
	c.misses[idx] = missRecord{instrNo: c.retired}
	c.missCount++
	c.sys.launchMiss(now, c, idx)
}

// completeMiss marks the outstanding miss at ring index idx done.
func (c *Core) completeMiss(idx int) {
	c.misses[idx].done = true
}

// Retired returns the core's retired instruction count.
func (c *Core) Retired() int64 { return c.retired }

// Node returns the network node the core's tile is attached to.
func (c *Core) Node() int { return c.node }

// Profile returns the benchmark profile the core is replaying.
func (c *Core) Profile() *workload.Profile { return c.prof }
