package cpusim

import (
	"container/heap"
	"fmt"

	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/sim"
	"github.com/catnap-noc/catnap/internal/workload"
)

// Config carries the Table 1 system parameters.
type Config struct {
	// WindowSize is the per-core instruction window (64).
	WindowSize int
	// MSHRs bounds outstanding misses per core (32).
	MSHRs int
	// L1FillLatency is the latency from response arrival to miss
	// completion (2-cycle L1).
	L1FillLatency int
	// L2BankLatency is the shared L2 bank access latency (6).
	L2BankLatency int
	// DRAMLatency is the DRAM access latency (80).
	DRAMLatency int
	// MCConcurrency is the number of concurrent accesses each memory
	// controller sustains (channel-level parallelism).
	MCConcurrency int
	// MCNodes places the eight memory controllers; nil derives the
	// paper's edge placement from the mesh.
	MCNodes []int

	// BurstPhaseCycles and LowPhaseCycles are the mean lengths of the
	// high- and low-MPKI application phases.
	BurstPhaseCycles int
	LowPhaseCycles   int

	// ControlBits and DataBits size the two packet kinds (72-bit header;
	// 64-byte block + header).
	ControlBits int
	DataBits    int

	// Seed feeds every core's (and the directory's) RNG.
	Seed uint64

	// RealCoherence replaces the probabilistic 4-hop directory with the
	// stateful MESI directory (coherence.go): per-block state, sharer
	// bitmaps, invalidation/ack fan-out, serialized per-block
	// transactions. The paper experiments use the probabilistic model;
	// this mode exists for protocol-level studies and is invariant-tested.
	RealCoherence bool
	// Coherence parameterizes the stateful mode's address-stream model;
	// zero value selects DefaultCoherenceConfig.
	Coherence CoherenceConfig
}

// DefaultConfig returns the Table 1 parameters.
func DefaultConfig() Config {
	return Config{
		WindowSize:       64,
		MSHRs:            32,
		L1FillLatency:    2,
		L2BankLatency:    6,
		DRAMLatency:      80,
		MCConcurrency:    16,
		BurstPhaseCycles: 2000,
		LowPhaseCycles:   8000,
		ControlBits:      72,
		DataBits:         512 + 72,
		Seed:             1,
	}
}

// txnStage is the position of a coherence transaction in the 4-hop MESI
// protocol flow.
type txnStage uint8

const (
	stageReqToHome  txnStage = iota // L1 miss request travelling to the L2 home/directory
	stageFwdToOwner                 // directory forward travelling to the owning L1
	stageReqToMem                   // L2 miss travelling to the memory controller
	stageDataToReq                  // data response travelling to the requester
	stageAckToHome                  // completion ack travelling to the directory
	stageWriteback                  // evicted dirty block travelling to its home
)

// txn is one in-flight miss transaction.
type txn struct {
	core    int
	missIdx int
	home    int
	stage   txnStage
}

// event is a scheduled simulator action (directory lookups completing,
// DRAM accesses finishing, L1 fills).
type event struct {
	at   int64
	seq  int64 // tie-break for determinism
	kind eventKind
	t    *txn
	// t2 carries the stateful-protocol message for evSendCoher.
	t2 *coherMsg
	// packet send parameters for evSend.
	src, dst int
	class    noc.MsgClass
	bits     int
}

type eventKind uint8

const (
	evSend eventKind = iota
	evComplete
	evSendCoher
)

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// mc is one memory controller with channel-level parallelism.
type mc struct {
	node      int
	busyUntil []int64
	requests  int64
}

// service returns the completion time of a request arriving at now,
// claiming the earliest-free channel.
func (m *mc) service(now int64, dram int64) int64 {
	best := 0
	for i := 1; i < len(m.busyUntil); i++ {
		if m.busyUntil[i] < m.busyUntil[best] {
			best = i
		}
	}
	start := now
	if m.busyUntil[best] > start {
		start = m.busyUntil[best]
	}
	done := start + dram
	m.busyUntil[best] = done
	m.requests++
	return done
}

// System ties cores, directories, and memory controllers to a network. It
// registers as the network's sink and as a cycle observer; the owner just
// steps the network.
type System struct {
	cfg   Config
	net   *noc.Network
	cores []*Core
	mcs   []*mc
	mcOf  map[int]*mc
	rng   *sim.RNG

	events  eventHeap
	evSeq   int64
	pending int64

	// dir is non-nil in stateful-coherence mode.
	dir *directory

	// Measurement baselines (set by StartMeasurement).
	baseRetired []int64
	baseCycle   int64

	// Transaction statistics.
	missesIssued    int64
	missesCompleted int64
	missLatencySum  int64
}

// New builds a system over net running the given Table 3 mix. The
// network's sink and observer slots are claimed by the system.
func New(net *noc.Network, cfg Config, mix *workload.Mix) (*System, error) {
	mesh := net.Topo()
	cores := mesh.Tiles()
	assign, err := mix.CoreAssignment(cores)
	if err != nil {
		return nil, err
	}
	return newSystem(net, cfg, assign)
}

// NewWithAssignment builds a system with an explicit per-core profile
// assignment (len must equal the mesh's tile count).
func NewWithAssignment(net *noc.Network, cfg Config, assign []*workload.Profile) (*System, error) {
	if len(assign) != net.Topo().Tiles() {
		return nil, fmt.Errorf("cpusim: %d profiles for %d tiles", len(assign), net.Topo().Tiles())
	}
	return newSystem(net, cfg, assign)
}

func newSystem(net *noc.Network, cfg Config, assign []*workload.Profile) (*System, error) {
	if cfg.WindowSize <= 0 || cfg.MSHRs <= 0 {
		return nil, fmt.Errorf("cpusim: invalid window/MSHR config")
	}
	mesh := net.Topo()
	s := &System{cfg: cfg, net: net, rng: sim.NewRNG(cfg.Seed), mcOf: map[int]*mc{}}

	mcNodes := cfg.MCNodes
	if mcNodes == nil {
		mcNodes = DefaultMCNodes(mesh.Rows(), mesh.Cols())
	}
	for _, n := range mcNodes {
		m := &mc{node: n, busyUntil: make([]int64, cfg.MCConcurrency)}
		s.mcs = append(s.mcs, m)
		s.mcOf[n] = m
	}

	if cfg.RealCoherence {
		ccfg := cfg.Coherence
		if ccfg.HotBlocks == 0 {
			ccfg = DefaultCoherenceConfig()
		}
		s.dir = newDirectory(s, ccfg)
	}

	s.cores = make([]*Core, len(assign))
	root := sim.NewRNG(cfg.Seed)
	for i, prof := range assign {
		s.cores[i] = newCore(s, i, mesh.NodeOfTile(i), prof, root.SplitN(i))
	}
	s.baseRetired = make([]int64, len(assign))

	net.AddSink(s.onPacket)
	net.AddObserver(s)
	return s, nil
}

// DefaultMCNodes returns the paper's edge placement: half the controllers
// down the west edge, half down the east edge, evenly spaced.
func DefaultMCNodes(rows, cols int) []int {
	nodes := make([]int, 0, 8)
	step := rows / 4
	if step == 0 {
		step = 1
	}
	for y := 0; y < rows && len(nodes) < 4; y += step {
		nodes = append(nodes, y*cols) // west edge
	}
	for y := step / 2; y < rows && len(nodes) < 8; y += step {
		nodes = append(nodes, y*cols+cols-1) // east edge
	}
	return nodes
}

// schedule pushes an event.
func (s *System) schedule(e event) {
	e.seq = s.evSeq
	s.evSeq++
	heap.Push(&s.events, e)
}

// launchMiss starts the coherence transaction for core c's miss.
func (s *System) launchMiss(now int64, c *Core, missIdx int) {
	s.missesIssued++
	s.pending++
	if s.dir != nil {
		s.dir.launch(now, c, missIdx)
		return
	}
	home := s.rng.Intn(s.net.Topo().Nodes())
	t := &txn{core: c.id, missIdx: missIdx, home: home, stage: stageReqToHome}
	// The request leaves the core immediately (L1 miss detection folded
	// into the L1 latency already modelled at fill).
	p := s.net.NewPacket(c.node, home, noc.ClassRequest, s.cfg.ControlBits)
	p.Payload = t
}

// onPacket advances a transaction when one of its packets is delivered.
func (s *System) onPacket(now int64, p *noc.Packet) {
	if m, ok := p.Payload.(coherMsg); ok {
		s.dir.handle(now, p, m)
		return
	}
	t, ok := p.Payload.(*txn)
	if !ok {
		return // foreign traffic (mixed workloads) — not ours
	}
	c := s.cores[t.core]
	switch t.stage {
	case stageReqToHome:
		// Directory + L2 tag lookup at the home node.
		prof := c.prof
		ready := now + int64(s.cfg.L2BankLatency)
		switch {
		case s.rng.Bernoulli(prof.SharedFrac):
			// 4-hop path: forward to the owning L1.
			t.stage = stageFwdToOwner
			owner := s.rng.Intn(s.net.Topo().Nodes())
			s.schedule(event{at: ready, kind: evSend, t: t, src: t.home, dst: owner, class: noc.ClassForward, bits: s.cfg.ControlBits})
		case s.rng.Bernoulli(s.l2MissRatio(prof)):
			// L2 miss: to memory.
			t.stage = stageReqToMem
			mcNode := s.mcs[s.rng.Intn(len(s.mcs))].node
			s.schedule(event{at: ready, kind: evSend, t: t, src: t.home, dst: mcNode, class: noc.ClassRequest, bits: s.cfg.ControlBits})
		default:
			// L2 hit: data straight back.
			t.stage = stageDataToReq
			s.schedule(event{at: ready, kind: evSend, t: t, src: t.home, dst: c.node, class: noc.ClassResponse, bits: s.cfg.DataBits})
		}

	case stageFwdToOwner:
		// Owner's L1 supplies the block: data to requester, ack to home.
		ready := now + int64(s.cfg.L1FillLatency)
		ack := &txn{core: t.core, missIdx: -1, home: t.home, stage: stageAckToHome}
		s.schedule(event{at: ready, kind: evSend, t: ack, src: p.Dst, dst: t.home, class: noc.ClassAck, bits: s.cfg.ControlBits})
		t.stage = stageDataToReq
		s.schedule(event{at: ready, kind: evSend, t: t, src: p.Dst, dst: c.node, class: noc.ClassResponse, bits: s.cfg.DataBits})

	case stageReqToMem:
		m := s.mcOf[p.Dst]
		if m == nil {
			panic("cpusim: memory request at a node without a controller")
		}
		done := m.service(now, int64(s.cfg.DRAMLatency))
		t.stage = stageDataToReq
		s.schedule(event{at: done, kind: evSend, t: t, src: p.Dst, dst: c.node, class: noc.ClassResponse, bits: s.cfg.DataBits})

	case stageDataToReq:
		// Fill the L1 and complete the miss shortly after.
		s.schedule(event{at: now + int64(s.cfg.L1FillLatency), kind: evComplete, t: t})
		// Dirty evictions write back to the victim block's home.
		if s.rng.Bernoulli(c.prof.WriteFrac * 0.5) {
			wb := &txn{core: t.core, missIdx: -1, home: -1, stage: stageWriteback}
			victim := s.rng.Intn(s.net.Topo().Nodes())
			q := s.net.NewPacket(c.node, victim, noc.ClassAck, s.cfg.DataBits)
			q.Payload = wb
		}

	case stageAckToHome, stageWriteback:
		// Terminal fire-and-forget messages.
	}
}

// l2MissRatio is the fraction of L1 misses that also miss the L2.
func (s *System) l2MissRatio(p *workload.Profile) float64 {
	if p.L1MPKI <= 0 {
		return 0
	}
	return p.L2MPKI / p.L1MPKI
}

// NextIdleEvent implements noc.IdleSkipper by vetoing idle fast-forward
// outright: cores accrue fractional issue credit and advance phase
// machines every cycle, so a closed-loop system never has a summarizable
// idle span — the network must step cycle by cycle while one is attached.
func (s *System) NextIdleEvent(now int64) (int64, bool) { return 0, false }

// SkipIdle implements noc.IdleSkipper; unreachable because NextIdleEvent
// always vetoes.
func (s *System) SkipIdle(from, to int64) {}

// AfterCycle implements noc.CycleObserver: fire due events, then step the
// cores so their new packets enter NIs next cycle.
func (s *System) AfterCycle(now int64) {
	for {
		e, ok := s.events.Peek()
		if !ok || e.at > now {
			break
		}
		heap.Pop(&s.events)
		switch e.kind {
		case evSend:
			p := s.net.NewPacket(e.src, e.dst, e.class, e.bits)
			p.Payload = e.t
		case evComplete:
			c := s.cores[e.t.core]
			c.completeMiss(e.t.missIdx)
			s.missesCompleted++
			s.pending--
		case evSendCoher:
			p := s.net.NewPacket(e.src, e.dst, e.class, e.bits)
			p.Payload = *e.t2
		}
	}
	for _, c := range s.cores {
		c.step(now)
	}
}

// StartMeasurement snapshots per-core retired counts; IPC reports cover
// the interval since the last call.
func (s *System) StartMeasurement() {
	for i, c := range s.cores {
		s.baseRetired[i] = c.retired
	}
	s.baseCycle = s.net.Now()
}

// SystemIPC returns the sum over cores of instructions per cycle since
// StartMeasurement — the quantity Figures 2 and 8 normalize.
func (s *System) SystemIPC() float64 {
	cycles := s.net.Now() - s.baseCycle
	if cycles <= 0 {
		return 0
	}
	var instr int64
	for i, c := range s.cores {
		instr += c.retired - s.baseRetired[i]
	}
	return float64(instr) / float64(cycles)
}

// CoreIPC returns core i's IPC since StartMeasurement.
func (s *System) CoreIPC(i int) float64 {
	cycles := s.net.Now() - s.baseCycle
	if cycles <= 0 {
		return 0
	}
	return float64(s.cores[i].retired-s.baseRetired[i]) / float64(cycles)
}

// Cores returns the core models.
func (s *System) Cores() []*Core { return s.cores }

// MissStats returns issued and completed miss transaction counts.
func (s *System) MissStats() (issued, completed int64) {
	return s.missesIssued, s.missesCompleted
}

// Pending returns in-flight miss transactions.
func (s *System) Pending() int64 { return s.pending }

// L1Stats returns aggregate L1 tag-array statistics in stateful-coherence
// mode: total resident lines, LRU evictions, and coherence invalidations.
// All zeros in probabilistic mode.
func (s *System) L1Stats() (occupancy int, evictions, invalidations uint64) {
	if s.dir == nil {
		return
	}
	return s.dir.l1Totals()
}

// coresAt returns the core ids whose tile sits at the given node.
func (s *System) coresAt(node int) []int {
	per := s.net.Topo().TilesPerNode()
	out := make([]int, 0, per)
	for c := node * per; c < (node+1)*per && c < len(s.cores); c++ {
		out = append(out, c)
	}
	return out
}

// CheckCoherence verifies the stateful directory's invariants (no-op in
// probabilistic mode). With requireQuiesced, per-block transaction queues
// must also be empty.
func (s *System) CheckCoherence(requireQuiesced bool) error {
	if s.dir == nil {
		return nil
	}
	return s.dir.CheckInvariants(requireQuiesced)
}

// CoherenceStats returns the stateful directory's protocol message
// counts; all zeros in probabilistic mode.
func (s *System) CoherenceStats() (getS, getM, invs, acks, fwds, wbs, mem int64) {
	if s.dir == nil {
		return
	}
	return s.dir.Stats()
}
