package cpusim

// This file implements the optional *stateful* MESI directory protocol.
// The default system model (system.go) generates the paper's 4-hop
// message sequences probabilistically from each benchmark's profile —
// statistically faithful, cheap, and what every paper experiment uses.
// RealCoherence mode replaces the probabilistic directory with an actual
// one: per-block state (Invalid/Shared/Modified), sharer bitmaps,
// forwarded requests, invalidation/ack fan-out, and writebacks, driven by
// per-core synthetic address streams with working-set locality. The
// protocol invariants (single owner, serialized per-block transactions,
// ack conservation) are property-tested in coherence_test.go.

import (
	"fmt"

	"github.com/catnap-noc/catnap/internal/cache"
	"github.com/catnap-noc/catnap/internal/noc"
)

// CoherenceConfig parameterizes the stateful directory mode.
type CoherenceConfig struct {
	// HotBlocks is each core's private working-set size in cache blocks;
	// hot blocks absorb HotFrac of its misses.
	HotBlocks int
	// HotFrac is the fraction of misses hitting the private working set.
	HotFrac float64
	// SharedBlocks is the size of the globally shared region; a miss is
	// directed there with the profile's SharedFrac probability, which is
	// what creates multi-sharer blocks and invalidation traffic.
	SharedBlocks int
	// ColdSpace is the size of the cold (streaming) address space.
	ColdSpace int
	// L1Sets and L1Ways give each core's L1 tag-array geometry (the
	// Table 1 cache: 32 KB / 64 B blocks, 4-way → 128 sets × 4 ways).
	L1Sets, L1Ways int
}

// DefaultCoherenceConfig sizes the address spaces so that shared blocks
// develop real sharer lists within a short simulation.
func DefaultCoherenceConfig() CoherenceConfig {
	return CoherenceConfig{
		HotBlocks:    512,
		HotFrac:      0.85,
		SharedBlocks: 4096,
		ColdSpace:    1 << 20,
		L1Sets:       128,
		L1Ways:       4,
	}
}

// coherState is a directory entry's stable state.
type coherState uint8

const (
	stateInvalid coherState = iota
	stateShared
	stateModified
)

func (s coherState) String() string {
	switch s {
	case stateInvalid:
		return "I"
	case stateShared:
		return "S"
	case stateModified:
		return "M"
	default:
		return "?"
	}
}

// sharerSet is a bitmap over core ids (up to 256).
type sharerSet [4]uint64

func (s *sharerSet) add(core int)      { s[core>>6] |= 1 << uint(core&63) }
func (s *sharerSet) remove(core int)   { s[core>>6] &^= 1 << uint(core&63) }
func (s *sharerSet) has(core int) bool { return s[core>>6]&(1<<uint(core&63)) != 0 }
func (s *sharerSet) clear()            { *s = sharerSet{} }

func (s *sharerSet) count() int {
	n := 0
	for _, w := range s {
		n += popcount(w)
	}
	return n
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// forEach calls fn for every set core id.
func (s *sharerSet) forEach(fn func(core int)) {
	for i, w := range s {
		for w != 0 {
			bit := w & (-w)
			core := i<<6 + trailingZeros(bit)
			fn(core)
			w &^= bit
		}
	}
}

func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// dirEntry is one tracked block at its home directory.
type dirEntry struct {
	state   coherState
	owner   int
	sharers sharerSet
	// busy serializes transactions: while a transaction is in flight for
	// this block, later requests queue here (the home MSHR).
	busy    bool
	pending []*coherTxn
}

// coherTxn is one in-flight stateful-protocol transaction.
type coherTxn struct {
	core    int
	missIdx int
	addr    uint64
	home    int
	write   bool // GetM vs GetS
	// acksWanted counts invalidation acks the requester still needs.
	acksWanted int
	dataSeen   bool
}

// directory is the distributed stateful directory (all homes share one
// map keyed by block address; the home node is derived from the address).
type directory struct {
	sys     *System
	cfg     CoherenceConfig
	entries map[uint64]*dirEntry
	// l1 is each core's tag array: real LRU victims for writebacks, real
	// line removal on invalidations.
	l1 []*cache.SetAssoc

	// protocol statistics
	getS, getM, invalidations, acks, fwds, writebacks, memFetches int64
	queued                                                        int64
}

func newDirectory(sys *System, cfg CoherenceConfig) *directory {
	d := &directory{sys: sys, cfg: cfg, entries: map[uint64]*dirEntry{}}
	d.l1 = make([]*cache.SetAssoc, sys.net.Topo().Tiles())
	for i := range d.l1 {
		d.l1[i] = cache.MustNew(cfg.L1Sets, cfg.L1Ways)
	}
	return d
}

// homeOf maps a block address to its home node (address-interleaved L2).
func (d *directory) homeOf(addr uint64) int {
	// splitmix-style scramble so strided streams spread across homes.
	z := addr * 0x9e3779b97f4a7c15
	z ^= z >> 29
	return int(z % uint64(d.sys.net.Topo().Nodes()))
}

// entry returns (creating if needed) the directory entry for addr.
func (d *directory) entry(addr uint64) *dirEntry {
	e, ok := d.entries[addr]
	if !ok {
		e = &dirEntry{state: stateInvalid, owner: -1}
		d.entries[addr] = e
	}
	return e
}

// address draws a block address for a miss by core, from the working-set
// model.
func (d *directory) address(c *Core) uint64 {
	const (
		privBase   = 0
		sharedBase = 1 << 40
		coldBase   = 1 << 41
	)
	rng := c.rng
	if rng.Bernoulli(c.prof.SharedFrac) {
		return sharedBase + uint64(rng.Intn(d.cfg.SharedBlocks))
	}
	if rng.Bernoulli(d.cfg.HotFrac) {
		return privBase + uint64(c.id)<<22 + uint64(rng.Intn(d.cfg.HotBlocks))
	}
	return coldBase + uint64(rng.Intn(d.cfg.ColdSpace))
}

// launch starts the protocol transaction for a miss (called instead of
// the probabilistic launchMiss). Evictions happen at fill time, when the
// L1 tag array yields a real LRU victim.
func (d *directory) launch(now int64, c *Core, missIdx int) {
	addr := d.address(c)
	t := &coherTxn{
		core: c.id, missIdx: missIdx, addr: addr,
		home:  d.homeOf(addr),
		write: c.rng.Bernoulli(c.prof.WriteFrac),
	}
	p := d.sys.net.NewPacket(c.node, t.home, noc.ClassRequest, d.sys.cfg.ControlBits)
	p.Payload = coherMsg{kind: msgRequest, t: t}
}

// evict handles an L1 fill's LRU victim: dirty blocks the directory
// still records this core as owning are written back (PutM, directory
// transitions eagerly at the serialization point); clean or shared
// victims leave silently — the stale sharer bit is tolerated because
// invalidations to non-resident lines are acknowledged anyway.
func (d *directory) evict(c *Core, v cache.Victim) {
	e, ok := d.entries[v.Addr]
	if !ok || e.busy {
		return
	}
	if v.Dirty && e.state == stateModified && e.owner == c.id {
		e.state = stateInvalid
		e.owner = -1
		home := d.homeOf(v.Addr)
		wb := &coherTxn{addr: v.Addr, home: home}
		p := d.sys.net.NewPacket(c.node, home, noc.ClassAck, d.sys.cfg.DataBits)
		p.Payload = coherMsg{kind: msgPutM, t: wb}
	} else if e.state == stateShared {
		e.sharers.remove(c.id)
		if e.sharers.count() == 0 {
			e.state = stateInvalid
		}
	}
}

// coherMsg tags a packet with its protocol role.
type msgKind uint8

const (
	msgRequest msgKind = iota // core -> home (GetS/GetM)
	msgFwd                    // home -> owner (Fwd-GetS/Fwd-GetM)
	msgInv                    // home -> sharer (invalidate)
	msgData                   // data -> requester
	msgInvAck                 // sharer -> requester
	msgOwnerWB                // owner -> home (downgrade data on Fwd-GetS)
	msgPutM                   // owner -> home (eviction writeback)
)

type coherMsg struct {
	kind msgKind
	t    *coherTxn
}

// handle advances the protocol when one of its packets arrives.
func (d *directory) handle(now int64, p *noc.Packet, m coherMsg) {
	s := d.sys
	t := m.t
	switch m.kind {
	case msgRequest:
		e := d.entry(t.addr)
		if e.busy {
			// Home-side serialization: queue behind the in-flight
			// transaction.
			e.pending = append(e.pending, t)
			d.queued++
			return
		}
		d.startTxn(now, e, t)

	case msgFwd:
		// The previous owner supplies data straight to the requester and,
		// on a read, a copy back to the home. Its own line is invalidated
		// (Fwd-GetM) or downgraded to clean (Fwd-GetS).
		c := s.cores[t.core]
		if owner := d.ownerAt(p.Dst, t); owner >= 0 {
			if t.write {
				d.l1[owner].Invalidate(t.addr)
			}
		}
		ready := now + int64(s.cfg.L1FillLatency)
		s.schedule(event{at: ready, kind: evSendCoher, t2: &coherMsg{kind: msgData, t: t}, src: p.Dst, dst: c.node, class: noc.ClassResponse, bits: s.cfg.DataBits})
		if !t.write {
			wb := &coherTxn{addr: t.addr, home: t.home}
			s.schedule(event{at: ready, kind: evSendCoher, t2: &coherMsg{kind: msgOwnerWB, t: wb}, src: p.Dst, dst: t.home, class: noc.ClassAck, bits: s.cfg.ControlBits})
		}
		d.fwds++

	case msgInv:
		// The sharer drops its line (if still resident) and acknowledges
		// to the requester.
		for _, core := range s.coresAt(p.Dst) {
			d.l1[core].Invalidate(t.addr)
		}
		c := s.cores[t.core]
		s.schedule(event{at: now + 1, kind: evSendCoher, t2: &coherMsg{kind: msgInvAck, t: t}, src: p.Dst, dst: c.node, class: noc.ClassAck, bits: s.cfg.ControlBits})
		d.invalidations++

	case msgInvAck:
		d.acks++
		t.acksWanted--
		d.maybeComplete(now, t)

	case msgData:
		t.dataSeen = true
		d.maybeComplete(now, t)

	case msgOwnerWB, msgPutM:
		d.writebacks++
		// Data merged at home; nothing further.
	}
}

// startTxn runs the directory's state machine for a request on a
// non-busy entry.
func (d *directory) startTxn(now int64, e *dirEntry, t *coherTxn) {
	s := d.sys
	c := s.cores[t.core]
	e.busy = true
	ready := now + int64(s.cfg.L2BankLatency)

	if t.write {
		d.getM++
		switch e.state {
		case stateModified:
			// Fwd-GetM to the owner; ownership moves.
			s.schedule(event{at: ready, kind: evSendCoher, t2: &coherMsg{kind: msgFwd, t: t}, src: t.home, dst: s.cores[e.owner].node, class: noc.ClassForward, bits: s.cfg.ControlBits})
		case stateShared:
			// Invalidate every sharer (except the requester); data comes
			// from the home; the requester collects the acks.
			n := 0
			e.sharers.forEach(func(core int) {
				if core == t.core {
					return
				}
				n++
				s.schedule(event{at: ready, kind: evSendCoher, t2: &coherMsg{kind: msgInv, t: t}, src: t.home, dst: s.cores[core].node, class: noc.ClassForward, bits: s.cfg.ControlBits})
			})
			t.acksWanted = n
			s.schedule(event{at: ready, kind: evSendCoher, t2: &coherMsg{kind: msgData, t: t}, src: t.home, dst: c.node, class: noc.ClassResponse, bits: s.cfg.DataBits})
		default: // Invalid: fetch from memory
			d.memData(now, t)
		}
		e.state = stateModified
		e.sharers.clear()
		e.owner = t.core
	} else {
		d.getS++
		switch e.state {
		case stateModified:
			// Fwd-GetS: owner supplies data and downgrades; home gets a
			// copy back.
			s.schedule(event{at: ready, kind: evSendCoher, t2: &coherMsg{kind: msgFwd, t: t}, src: t.home, dst: s.cores[e.owner].node, class: noc.ClassForward, bits: s.cfg.ControlBits})
			e.sharers.add(e.owner)
			e.owner = -1
			e.state = stateShared
			e.sharers.add(t.core)
		case stateShared:
			s.schedule(event{at: ready, kind: evSendCoher, t2: &coherMsg{kind: msgData, t: t}, src: t.home, dst: c.node, class: noc.ClassResponse, bits: s.cfg.DataBits})
			e.sharers.add(t.core)
		default:
			d.memData(now, t)
			e.state = stateShared
			e.sharers.add(t.core)
		}
	}
}

// memData fetches the block from the memory controller and sends it to
// the requester (home -> MC -> requester, as in the probabilistic model).
func (d *directory) memData(now int64, t *coherTxn) {
	s := d.sys
	d.memFetches++
	mcNode := s.mcs[int(t.addr)%len(s.mcs)].node
	// Control hop home -> MC is folded into the MC service start (the
	// dominant term is the 80-cycle DRAM access); data returns over the
	// network as a real packet.
	done := s.mcOf[mcNode].service(now+int64(s.cfg.L2BankLatency), int64(s.cfg.DRAMLatency))
	s.schedule(event{at: done, kind: evSendCoher, t2: &coherMsg{kind: msgData, t: t}, src: mcNode, dst: s.cores[t.core].node, class: noc.ClassResponse, bits: s.cfg.DataBits})
}

// maybeComplete finishes the transaction when data has arrived and every
// invalidation ack is in, then unblocks the entry and starts the next
// queued request.
func (d *directory) maybeComplete(now int64, t *coherTxn) {
	if !t.dataSeen || t.acksWanted > 0 {
		return
	}
	s := d.sys
	s.schedule(event{at: now + int64(s.cfg.L1FillLatency), kind: evComplete, t: &txn{core: t.core, missIdx: t.missIdx}})

	// Fill the requester's L1; a full set yields a real LRU victim.
	if v, evicted := d.l1[t.core].Insert(t.addr, t.write); evicted {
		d.evict(s.cores[t.core], v)
	}

	// Unblock the home entry; serve the next queued request.
	e := d.entry(t.addr)
	e.busy = false
	if len(e.pending) > 0 {
		next := e.pending[0]
		e.pending = e.pending[1:]
		d.startTxn(now, e, next)
	}
}

// CheckInvariants verifies the directory's stable-state invariants:
// Modified entries have exactly one owner and no sharers; Shared entries
// have at least one sharer and no owner; Invalid entries have neither.
// Pending queues must be empty when quiesced (pendingOK).
func (d *directory) CheckInvariants(requireQuiesced bool) error {
	for addr, e := range d.entries {
		switch e.state {
		case stateModified:
			if e.owner < 0 || e.sharers.count() != 0 {
				return fmt.Errorf("coherence: block %#x M with owner=%d sharers=%d", addr, e.owner, e.sharers.count())
			}
		case stateShared:
			if e.owner != -1 || e.sharers.count() == 0 {
				return fmt.Errorf("coherence: block %#x S with owner=%d sharers=%d", addr, e.owner, e.sharers.count())
			}
		case stateInvalid:
			if e.owner != -1 && e.owner != 0 { // owner -1 is canonical; fresh entries use -1
				return fmt.Errorf("coherence: block %#x I with owner=%d", addr, e.owner)
			}
		}
		if requireQuiesced && (e.busy || len(e.pending) > 0) {
			return fmt.Errorf("coherence: block %#x busy=%v pending=%d after quiesce", addr, e.busy, len(e.pending))
		}
	}
	return nil
}

// ownerAt resolves which core at a node the forward addresses: the
// directory recorded the owner core before forwarding, so search the
// node's cores for one whose L1 holds the block; −1 if none (already
// evicted).
func (d *directory) ownerAt(node int, t *coherTxn) int {
	for _, core := range d.sys.coresAt(node) {
		if d.l1[core].Contains(t.addr) {
			return core
		}
	}
	return -1
}

// Stats returns protocol message counts.
func (d *directory) Stats() (getS, getM, invs, acks, fwds, wbs, mem int64) {
	return d.getS, d.getM, d.invalidations, d.acks, d.fwds, d.writebacks, d.memFetches
}

// l1Totals aggregates every core's tag-array statistics.
func (d *directory) l1Totals() (occupancy int, evictions, invalidations uint64) {
	for _, c := range d.l1 {
		occupancy += c.Occupancy()
		_, _, ev, inv := c.Stats()
		evictions += ev
		invalidations += inv
	}
	return
}
