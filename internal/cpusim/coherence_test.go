package cpusim_test

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/cpusim"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/workload"
)

func buildRealCoherence(t *testing.T, mixName string, seed uint64) (*noc.Network, *cpusim.System) {
	t.Helper()
	ncfg := netConfig(4, 4, 1, 512)
	net, err := noc.New(ncfg, core.NewRRSelector(ncfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	mix, err := workload.MixByName(mixName)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cpusim.DefaultConfig()
	scfg.RealCoherence = true
	scfg.Seed = seed
	sys, err := cpusim.New(net, scfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	return net, sys
}

// TestRealCoherenceRuns: the stateful protocol must sustain the closed
// loop — misses complete and cores make progress.
func TestRealCoherenceRuns(t *testing.T) {
	net, sys := buildRealCoherence(t, "Medium-Heavy", 1)
	net.Run(20000)
	issued, completed := sys.MissStats()
	if issued == 0 {
		t.Fatal("no misses issued")
	}
	if float64(completed) < 0.9*float64(issued) {
		t.Fatalf("completed %d of %d misses", completed, issued)
	}
	if sys.SystemIPC() <= 0 {
		t.Fatal("no instruction progress")
	}
}

// TestCoherenceInvariants: after any run, every directory entry must be
// in a legal stable state (single owner in M, no owner in S/I).
func TestCoherenceInvariants(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		net, sys := buildRealCoherence(t, "Heavy", seed)
		net.Run(15000)
		if err := sys.CheckCoherence(false); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestCoherenceProtocolTraffic: the protocol must produce all message
// kinds — reads, writes, forwards, invalidations with matching acks,
// writebacks, memory fetches.
func TestCoherenceProtocolTraffic(t *testing.T) {
	net, sys := buildRealCoherence(t, "Heavy", 7)
	net.Run(30000)
	getS, getM, invs, acks, fwds, wbs, mem := sys.CoherenceStats()
	if getS == 0 || getM == 0 {
		t.Fatalf("reads %d writes %d", getS, getM)
	}
	if fwds == 0 {
		t.Error("no forwarded requests (M-state interventions)")
	}
	if invs == 0 {
		t.Error("no invalidations (shared blocks never written?)")
	}
	if wbs == 0 {
		t.Error("no writebacks")
	}
	if mem == 0 {
		t.Error("no memory fetches")
	}
	// Ack conservation: in-flight transactions aside, acks track
	// invalidations.
	if acks > invs {
		t.Errorf("more acks (%d) than invalidations (%d)", acks, invs)
	}
	if invs > 0 && float64(acks) < 0.9*float64(invs) {
		t.Errorf("acks %d lag invalidations %d by more than in-flight slack", acks, invs)
	}
}

// TestCoherenceQuiesce: stopping the cores and draining must leave no
// busy entries or queued transactions.
func TestCoherenceQuiesce(t *testing.T) {
	net, sys := buildRealCoherence(t, "Medium-Light", 5)
	net.Run(10000)
	// Let in-flight work finish: keep stepping (cores keep issuing, so
	// instead verify pending drains relative to issue rate by checking
	// the invariant with quiesce=false, then drain the network fully).
	for i := 0; i < 3000 && sys.Pending() > 0; i++ {
		net.Step()
	}
	if err := sys.CheckCoherence(false); err != nil {
		t.Fatal(err)
	}
}

// TestCoherenceCacheIntegration: the L1 tag arrays must fill up, produce
// real LRU evictions, and lose lines to coherence invalidations.
func TestCoherenceCacheIntegration(t *testing.T) {
	net, sys := buildRealCoherence(t, "Heavy", 3)
	net.Run(30000)
	occ, evictions, invalidations := sys.L1Stats()
	cores := net.Topo().Tiles()
	capacity := cores * 128 * 4
	if occ == 0 || occ > capacity {
		t.Fatalf("L1 occupancy %d of %d", occ, capacity)
	}
	// Heavy mixes hammer far more blocks than fit: evictions must flow.
	if evictions == 0 {
		t.Error("no LRU evictions under Heavy")
	}
	// Shared-block writes must have invalidated someone's real line.
	if invalidations == 0 {
		t.Error("no coherence invalidations reached an L1")
	}
	// Occupancy should be a solid fraction of capacity at steady state.
	if occ < capacity/10 {
		t.Errorf("L1s nearly empty: %d of %d", occ, capacity)
	}
	if err := sys.CheckCoherence(false); err != nil {
		t.Fatal(err)
	}
}

// TestCoherenceDeterminism: the stateful mode stays deterministic.
func TestCoherenceDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		net, sys := buildRealCoherence(t, "Light", 11)
		net.Run(8000)
		i, _ := sys.MissStats()
		return i, sys.SystemIPC()
	}
	i1, ipc1 := run()
	i2, ipc2 := run()
	if i1 != i2 || ipc1 != ipc2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", i1, ipc1, i2, ipc2)
	}
}

// TestRealVsProbabilisticComparable: both modes should produce the same
// order of magnitude of network load for the same mix (the statistical
// model is calibrated against the paper; the stateful model must not be
// wildly different, or the substitution argument breaks).
func TestRealVsProbabilisticComparable(t *testing.T) {
	netP, sysP := buildSystem(t, netConfig(4, 4, 1, 512), "Medium-Heavy")
	netR, sysR := buildRealCoherence(t, "Medium-Heavy", 1)
	netP.Run(15000)
	netR.Run(15000)
	_, _, ejP := netP.Counts()
	_, _, ejR := netR.Counts()
	if ejP == 0 || ejR == 0 {
		t.Fatal("no traffic")
	}
	ratio := float64(ejR) / float64(ejP)
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("stateful/probabilistic packet ratio %.2f (%d vs %d): models diverge", ratio, ejR, ejP)
	}
	if sysR.SystemIPC() <= 0 || sysP.SystemIPC() <= 0 {
		t.Fatal("no progress")
	}
}
