// Package congestion implements the congestion-detection machinery of
// paper §3.2.1 and §3.4: the five local congestion metrics (BFM, BFA, IR,
// IQOcc, Delay), set/clear hysteresis for the local congestion status
// (LCS), and the regional congestion status (RCS) — a 1-bit OR network per
// subnet per 4×4 region, latched every 6 cycles to model the SPICE-derived
// H-tree propagation delay.
package congestion

import (
	"fmt"
	"math/bits"
	"strings"

	"github.com/catnap-noc/catnap/internal/noc"
)

// MetricKind enumerates the local congestion metrics evaluated in §3.4.
type MetricKind int

// The local congestion metrics the paper compares. BFM is Catnap's final
// choice; the others are the alternatives §3.4 explains the failures of.
const (
	// BFM is the maximum buffer occupancy over a local router's input
	// ports, in flits. Its key property: the congestion threshold is
	// independent of the traffic pattern.
	BFM MetricKind = iota
	// BFA is the average buffer occupancy over the input ports. It under-
	// reports congestion concentrated on a few paths.
	BFA
	// IR is the node's packet injection rate over a sampling window. Its
	// usable threshold varies wildly with traffic pattern (Figure 13).
	IR
	// IQOcc is the NI injection-queue occupancy in flits. It reacts too
	// slowly: injection queues fill only after router buffers fill.
	IQOcc
	// Delay is the sampled average blocking delay per flit at the local
	// router. Performs like BFM but is costlier to implement in hardware.
	Delay
)

// ValidKind reports whether k names a known metric.
func ValidKind(k MetricKind) bool { return k >= BFM && k <= Delay }

// KindByName resolves a metric by its paper name ("BFM", "BFA", "IR",
// "IQOcc", "Delay"); the error lists the valid names.
func KindByName(name string) (MetricKind, error) {
	for k := BFM; k <= Delay; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("congestion: unknown metric %q (valid: %s)", name, KindNames())
}

// KindNames returns the space-separated list of metric names in kind
// order, for error messages and CLI usage text.
func KindNames() string {
	names := make([]string, 0, int(Delay)+1)
	for k := BFM; k <= Delay; k++ {
		names = append(names, k.String())
	}
	return strings.Join(names, " ")
}

// String returns the paper's name for the metric.
func (k MetricKind) String() string {
	switch k {
	case BFM:
		return "BFM"
	case BFA:
		return "BFA"
	case IR:
		return "IR"
	case IQOcc:
		return "IQOcc"
	case Delay:
		return "Delay"
	default:
		return fmt.Sprintf("MetricKind(%d)", int(k))
	}
}

// Thresholds. The paper tuned each metric's threshold empirically for its
// router ("we extensively experimented with many different thresholds")
// and reports BFM 9, BFA 2, Delay 1.5, IQOcc 4 for 16-flit input ports.
// The same tuning pass against this simulator's router (whose buffers
// fill later for the same offered load, because of its credit round-trip
// and pipeline timing) lands the BFM operating point at 6 flits: that
// value reproduces the paper's Light/Heavy CSC, power, and performance
// numbers simultaneously, where 9 over-packs the lower subnets. The
// paper's value is kept available as PaperBFMThreshold.
const (
	// DefaultBFMThreshold is the BFM set-threshold tuned for this router
	// model (see the comment above).
	DefaultBFMThreshold = 6
	// PaperBFMThreshold is the value the paper reports for its router.
	PaperBFMThreshold = 9
	// DefaultDelayThreshold is the blocking-delay threshold (cycles)
	// tuned for this router model: at the paper's 1.5 the windowed metric
	// reacts too late here and oversubscribes lower subnets at moderate
	// load; 1.0 restores the paper's "Delay performs like BFM".
	DefaultDelayThreshold = 1.0
	// PaperDelayThreshold is the value the paper reports.
	PaperDelayThreshold = 1.5
)

// Config parameterizes a Detector. Thresholds default (via Default) to the
// best-performing values for this router model: BFM 6 flits (the paper's
// 9 re-tuned, see above), BFA 2 flits, Delay 1.5 cycles, IQOcc 4 flits;
// IR has no single good threshold, which is the point of Figure 13 — set
// the threshold explicitly when using IR.
type Config struct {
	// Metric selects the local congestion metric.
	Metric MetricKind
	// Threshold is the set-threshold in the metric's native unit (flits,
	// packets/node/cycle, or cycles).
	Threshold float64
	// ClearThreshold is the value the metric must drop below to clear the
	// LCS; defaults to Threshold when zero or negative. A gap between the
	// two adds hysteresis.
	ClearThreshold float64
	// HoldCycles keeps the LCS set for at least this long after the last
	// cycle the metric exceeded the threshold ("once a subnet is declared
	// congested, it remains in that status for a few cycles").
	HoldCycles int64
	// WindowCycles is the sampling window of the rate-based metrics (IR,
	// Delay).
	WindowCycles int64
	// RCSPeriod is the OR-network latch period in cycles (6 from SPICE).
	RCSPeriod int64
	// UseRCS enables regional detection. False models the BFM-local /
	// IQOcc-local variants of Figure 11, where a node sees only its own
	// router's status.
	UseRCS bool
}

// Default returns the paper's configuration for the given metric.
func Default(kind MetricKind) Config {
	c := Config{
		Metric:       kind,
		HoldCycles:   8,
		WindowCycles: 64,
		RCSPeriod:    6,
		UseRCS:       true,
	}
	switch kind {
	case BFM:
		c.Threshold = DefaultBFMThreshold
	case BFA:
		c.Threshold = 2
	case IQOcc:
		c.Threshold = 4
	case Delay:
		c.Threshold = DefaultDelayThreshold
	case IR:
		c.Threshold = 0.12 // middle of the Figure 13 sweep; override per run
	}
	return c
}

// Detector computes per-(subnet, node) local congestion status and
// per-(subnet, region) regional congestion status every cycle. Register it
// as a noc.CycleObserver; policies then query Congested/LCS/RCS.
// Tracer observes congestion-status transitions as the detector latches
// them. The hooks fire only when a status actually changes — never per
// cycle — and every call is guarded behind a nil check, so an unset
// tracer is free. The callbacks run inside the detector's AfterCycle,
// which makes the stream independent of where any other observer sits in
// the network's observer list.
type Tracer interface {
	// LCSChanged fires when (subnet, node)'s local congestion status
	// flips to on.
	LCSChanged(now int64, subnet, node int, on bool)
	// RCSChanged fires when (subnet, region)'s latched regional status
	// toggles.
	RCSChanged(now int64, subnet, region int, on bool)
}

type Detector struct {
	cfg    Config
	net    *noc.Network
	rcsE   *RCSEnergy
	tracer Tracer

	subnets int
	nodes   int
	regions int

	lcs     []bool  // [subnet*nodes + node]
	lastHot []int64 // last cycle the raw metric exceeded Threshold
	rcs     []bool  // [subnet*regions + region], latched every RCSPeriod

	// refScan selects the retained full-mesh scan in AfterCycle; the
	// default fast path visits only candidate nodes (nonzero raw metric
	// or LCS currently set), which is exact because a zero sample can
	// neither set an LCS (Threshold >= 0) nor clear one that is not set.
	refScan bool
	// lcsBits[s] mirrors lcs as a bitmap over node ids, maintained in
	// both modes.
	lcsBits [][]uint64
	// hotBits[s] marks nodes whose windowed rate (IR, Delay) currently
	// exceeds Threshold; rebuilt at each window close, constant between.
	hotBits [][]uint64
	// epoch counts LCS/RCS changes; gating policies expose it as their
	// decision epoch so the power phase can skip steady-state routers.
	epoch uint64

	// Window state for IR and Delay.
	winStart     int64
	prevInjected []int64 // per node (IR), packets
	prevBlocked  []int64 // per (subnet,node) (Delay)
	prevGranted  []int64
	rate         []float64 // latest windowed value per (subnet,node)

	// nodeRegion caches the region of each node.
	nodeRegion []int
	orScratch  []bool
}

// RCSEnergy counts OR-network activity for the power model: latch
// operations and output toggles (each toggle costs the SPICE-measured
// switching energy, 8.7 pJ in the paper).
type RCSEnergy struct {
	Latches int64
	Toggles int64
}

// NewDetector builds a detector over net with cfg. Zero-valued cfg fields
// fall back to Default(cfg.Metric) semantics. Like noc.New, it is a thin
// shell over Reset, so a reset detector and a fresh one run identical
// construction code.
//
//catnap:reset-covered every per-run structure is built by Reset itself
func NewDetector(net *noc.Network, cfg Config) *Detector {
	d := &Detector{rcsE: &RCSEnergy{}}
	d.Reset(net, cfg)
	return d
}

// Reset rewinds the detector in place to the state NewDetector(net, cfg)
// would produce, reusing every shape-compatible slab. The installed
// tracer is cleared (callers re-install hooks after a reset, exactly as
// after construction); the RCSEnergy counter struct is retained with its
// counts zeroed. net may be the same network after its own Reset, or a
// different one.
func (d *Detector) Reset(net *noc.Network, cfg Config) {
	def := Default(cfg.Metric)
	if cfg.Threshold == 0 {
		cfg.Threshold = def.Threshold
	}
	if cfg.ClearThreshold <= 0 {
		cfg.ClearThreshold = cfg.Threshold
	}
	if cfg.HoldCycles <= 0 {
		cfg.HoldCycles = def.HoldCycles
	}
	if cfg.WindowCycles <= 0 {
		cfg.WindowCycles = def.WindowCycles
	}
	if cfg.RCSPeriod <= 0 {
		cfg.RCSPeriod = def.RCSPeriod
	}

	mesh := net.Topo()
	d.cfg = cfg
	d.net = net
	*d.rcsE = RCSEnergy{}
	d.tracer = nil
	d.subnets = net.Subnets()
	d.nodes = mesh.Nodes()
	d.regions = mesh.Regions()

	d.lcs = resetSlice(d.lcs, d.subnets*d.nodes)
	d.lastHot = resetSlice(d.lastHot, d.subnets*d.nodes)
	for i := range d.lastHot {
		d.lastHot[i] = -1 << 62
	}
	d.rcs = resetSlice(d.rcs, d.subnets*d.regions)
	d.refScan = false
	d.epoch = 0
	d.winStart = 0
	d.prevInjected = resetSlice(d.prevInjected, d.nodes)
	d.prevBlocked = resetSlice(d.prevBlocked, d.subnets*d.nodes)
	d.prevGranted = resetSlice(d.prevGranted, d.subnets*d.nodes)
	d.rate = resetSlice(d.rate, d.subnets*d.nodes)
	d.nodeRegion = resetSlice(d.nodeRegion, d.nodes)
	for n := 0; n < d.nodes; n++ {
		d.nodeRegion[n] = mesh.Region(n)
	}
	words := (d.nodes + 63) / 64
	if cap(d.lcsBits) >= d.subnets {
		d.lcsBits = d.lcsBits[:d.subnets]
		d.hotBits = d.hotBits[:d.subnets]
	} else {
		grownL := make([][]uint64, d.subnets)
		copy(grownL, d.lcsBits)
		d.lcsBits = grownL
		grownH := make([][]uint64, d.subnets)
		copy(grownH, d.hotBits)
		d.hotBits = grownH
	}
	for s := range d.lcsBits {
		d.lcsBits[s] = resetSlice(d.lcsBits[s], words)
		d.hotBits[s] = resetSlice(d.hotBits[s], words)
	}
	d.orScratch = resetSlice(d.orScratch, d.regions)
}

// resetSlice returns s resized to n elements with every element zeroed,
// reusing the backing array when it is large enough (the congestion-side
// twin of the noc package's helper).
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s) // bulk typed memclr: one barrier sweep, not one per element
	return s
}

// SetReferenceScan switches the detector between the incremental
// candidate-driven sampling path (default) and the retained full-mesh
// scan. Both latch identical LCS/RCS sequences; the scan exists for
// differential tests and honest benchmark baselines.
func (d *Detector) SetReferenceScan(on bool) { d.refScan = on }

// Epoch returns a counter that changes on every LCS or RCS transition.
// Gating policies that are pure functions of detector state expose it via
// noc.EpochedPolicy.
func (d *Detector) Epoch() uint64 { return d.epoch }

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// SetTracer installs (or, with nil, removes) the congestion-transition
// tracer.
func (d *Detector) SetTracer(t Tracer) { d.tracer = t }

// Energy returns the OR-network activity counters.
func (d *Detector) Energy() *RCSEnergy { return d.rcsE }

// LCS returns the local congestion status of (subnet, node).
func (d *Detector) LCS(subnet, node int) bool {
	return d.lcs[subnet*d.nodes+node]
}

// RCS returns the latched regional congestion status of (subnet, region).
func (d *Detector) RCS(subnet, region int) bool {
	return d.rcs[subnet*d.regions+region]
}

// RCSAtNode returns the latched regional status of the region containing
// node. With UseRCS disabled it falls back to the node's own LCS, which is
// exactly the BFM-local / IQOcc-local behaviour of Figure 11.
func (d *Detector) RCSAtNode(subnet, node int) bool {
	if !d.cfg.UseRCS {
		return d.LCS(subnet, node)
	}
	return d.RCS(subnet, d.nodeRegion[node])
}

// Congested reports whether node's NI should treat subnet as congested:
// its own LCS is set, or (with regional detection) the region's RCS is.
func (d *Detector) Congested(subnet, node int) bool {
	if d.lcs[subnet*d.nodes+node] {
		return true
	}
	if d.cfg.UseRCS {
		return d.rcs[subnet*d.regions+d.nodeRegion[node]]
	}
	return false
}

// AfterCycle implements noc.CycleObserver: it refreshes every LCS from the
// configured metric and latches the OR network on its period. The fast
// path visits only candidate nodes — those whose raw metric can be
// nonzero this cycle (occupied routers, nonempty NI queues, or a hot
// windowed rate) plus those whose LCS is set and may need clearing. Every
// skipped node would have sampled zero against a non-negative threshold
// with its LCS already clear: a no-op in the reference scan too, so the
// latched sequences are identical.
//
//catnap:hotpath runs in the observer phase every cycle
func (d *Detector) AfterCycle(now int64) {
	windowEnd := now-d.winStart >= d.cfg.WindowCycles
	if windowEnd {
		d.closeWindow(now)
		d.winStart = now
	}

	if d.refScan || d.cfg.Threshold < 0 {
		for s := 0; s < d.subnets; s++ {
			for n := 0; n < d.nodes; n++ {
				d.updateLCS(now, s, n, d.sampleScan(s, n))
			}
		}
	} else {
		for s := 0; s < d.subnets; s++ {
			var cand []uint64
			switch d.cfg.Metric {
			case BFM, BFA:
				cand = d.net.Subnet(s).OccupiedBits()
			case IQOcc:
				cand = d.net.NIQueuedBits()
			case IR, Delay:
				cand = d.hotBits[s]
			default:
				panic("congestion: unknown metric")
			}
			lb := d.lcsBits[s]
			for i := range lb {
				w := cand[i] | lb[i]
				for w != 0 {
					n := i<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					d.updateLCS(now, s, n, d.sample(s, n))
				}
			}
		}
	}

	if d.cfg.UseRCS && now%d.cfg.RCSPeriod == 0 {
		d.latchRCS(now)
	}
}

// NextIdleEvent implements noc.IdleSkipper. The detector can summarize a
// skipped span only when its per-cycle work is provably a no-op repeated:
// every LCS, RCS, and hot-rate bit clear (a set status can transition on
// any upcoming cycle via hysteresis or latching — no skip until it
// clears), and, for the windowed metrics, no counter movement pending
// against the previous window snapshots (a pending delta makes the next
// window close compute nonzero rates, so the skip is bounded to end at
// that close). The full-scan modes veto outright: they do real work every
// cycle by design.
func (d *Detector) NextIdleEvent(now int64) (int64, bool) {
	if d.refScan || d.cfg.Threshold < 0 {
		return 0, false
	}
	for s := 0; s < d.subnets; s++ {
		for _, w := range d.lcsBits[s] {
			if w != 0 {
				return now, true
			}
		}
		for _, w := range d.hotBits[s] {
			if w != 0 {
				return now, true
			}
		}
	}
	for _, on := range d.rcs {
		if on {
			return now, true
		}
	}
	if (d.cfg.Metric == IR || d.cfg.Metric == Delay) && !d.windowDeltasZero() {
		return d.winStart + d.cfg.WindowCycles, true
	}
	return noc.SkipHorizon, true
}

// windowDeltasZero reports whether the windowed metrics' source counters
// sit exactly at the previous window snapshots, i.e. the next window close
// would compute all-zero rates.
func (d *Detector) windowDeltasZero() bool {
	switch d.cfg.Metric {
	case IR:
		for n := 0; n < d.nodes; n++ {
			if d.net.NI(n).PacketsInjected != d.prevInjected[n] {
				return false
			}
		}
	case Delay:
		for s := 0; s < d.subnets; s++ {
			for n := 0; n < d.nodes; n++ {
				idx := s*d.nodes + n
				blocked, granted := d.net.Subnet(s).Router(n).BlockingCounters()
				if blocked != d.prevBlocked[idx] || granted != d.prevGranted[idx] {
					return false
				}
			}
		}
	}
	return true
}

// SkipIdle implements noc.IdleSkipper: it accounts for the AfterCycle
// calls the span [from, to) would have made under the idle conditions
// NextIdleEvent verified. Window closes inside the span saw all-zero
// deltas (rates become 0, hot bits stay empty, snapshots stay put), so
// only the window clock, the rates, and the unconditional RCS latch count
// need patching; no LCS/RCS/epoch movement was possible.
func (d *Detector) SkipIdle(from, to int64) {
	if closes := (to - 1 - d.winStart) / d.cfg.WindowCycles; closes > 0 {
		d.winStart += closes * d.cfg.WindowCycles
		if d.cfg.Metric == IR || d.cfg.Metric == Delay {
			for i := range d.rate {
				d.rate[i] = 0
			}
		}
	}
	if d.cfg.UseRCS {
		// Latches fire at every multiple of RCSPeriod regardless of state;
		// count the multiples inside [from, to).
		p := d.cfg.RCSPeriod
		d.rcsE.Latches += (to+p-1)/p - (from+p-1)/p
	}
}

// updateLCS applies one node's set/clear-with-hysteresis step given its
// raw metric sample — the shared per-node body of both sampling paths.
//
//catnap:hotpath
//catnap:worker-safe observer phase runs on Step's caller, but the Tracer contract admits worker delivery
func (d *Detector) updateLCS(now int64, s, n int, raw float64) {
	idx := s*d.nodes + n
	if raw > d.cfg.Threshold {
		if !d.lcs[idx] {
			if d.tracer != nil {
				d.tracer.LCSChanged(now, s, n, true)
			}
			d.lcsBits[s][n>>6] |= 1 << (uint(n) & 63)
			d.epoch++
		}
		d.lcs[idx] = true
		d.lastHot[idx] = now
	} else if d.lcs[idx] && raw < d.cfg.ClearThreshold && now-d.lastHot[idx] >= d.cfg.HoldCycles {
		d.lcs[idx] = false
		d.lcsBits[s][n>>6] &^= 1 << (uint(n) & 63)
		d.epoch++
		if d.tracer != nil {
			d.tracer.LCSChanged(now, s, n, false)
		}
	}
}

// sample returns the raw metric value for (subnet, node) this cycle.
//
//catnap:hotpath
func (d *Detector) sample(subnet, node int) float64 {
	switch d.cfg.Metric {
	case BFM:
		return float64(d.net.Subnet(subnet).Router(node).MaxPortOccupancy())
	case BFA:
		r := d.net.Subnet(subnet).Router(node)
		return float64(r.TotalOccupancy()) / 5
	case IQOcc:
		return float64(d.net.NI(node).QueueOccupancyFlits())
	case IR, Delay:
		return d.rate[subnet*d.nodes+node]
	default:
		panic("congestion: unknown metric")
	}
}

// sampleScan is sample for the reference path: the occupancy metrics
// rescan the router's ports instead of reading the maintained counters.
//
//catnap:hotpath
func (d *Detector) sampleScan(subnet, node int) float64 {
	switch d.cfg.Metric {
	case BFM:
		return float64(d.net.Subnet(subnet).Router(node).MaxPortOccupancyScan())
	case BFA:
		r := d.net.Subnet(subnet).Router(node)
		return float64(r.TotalOccupancyScan()) / 5
	default:
		return d.sample(subnet, node)
	}
}

// closeWindow recomputes the windowed metrics (IR, Delay) from counter
// deltas over the window just ended.
//
//catnap:hotpath once per WindowCycles
func (d *Detector) closeWindow(now int64) {
	w := float64(now - d.winStart)
	if w <= 0 {
		return
	}
	switch d.cfg.Metric {
	case IR:
		for n := 0; n < d.nodes; n++ {
			cur := d.net.NI(n).PacketsInjected
			r := float64(cur-d.prevInjected[n]) / w
			d.prevInjected[n] = cur
			for s := 0; s < d.subnets; s++ {
				d.rate[s*d.nodes+n] = r
			}
		}
	case Delay:
		for s := 0; s < d.subnets; s++ {
			for n := 0; n < d.nodes; n++ {
				idx := s*d.nodes + n
				blocked, granted := d.net.Subnet(s).Router(n).BlockingCounters()
				db := blocked - d.prevBlocked[idx]
				dg := granted - d.prevGranted[idx]
				d.prevBlocked[idx] = blocked
				d.prevGranted[idx] = granted
				if dg > 0 {
					d.rate[idx] = float64(db) / float64(dg)
				} else if db > 0 {
					// Flits blocked all window with none granted: fully
					// congested.
					d.rate[idx] = d.cfg.Threshold + 1
				} else {
					d.rate[idx] = 0
				}
			}
		}
	default:
		return // occupancy metrics have no window state
	}
	// Refresh the hot-node candidate bitmaps; the rates just computed stay
	// constant until the next window close.
	for s := 0; s < d.subnets; s++ {
		hb := d.hotBits[s]
		for i := range hb {
			hb[i] = 0
		}
		for n := 0; n < d.nodes; n++ {
			if d.rate[s*d.nodes+n] > d.cfg.Threshold {
				hb[n>>6] |= 1 << (uint(n) & 63)
			}
		}
	}
}

// latchRCS recomputes every region's OR output from current LCS values.
// The fast path ORs over the set-LCS bitmap instead of scanning every
// node; the result is the same OR.
//
//catnap:hotpath once per RCSPeriod
//catnap:worker-safe see updateLCS: RCSChanged follows the same Tracer delivery contract
func (d *Detector) latchRCS(now int64) {
	d.rcsE.Latches++
	if d.orScratch == nil {
		//lint:ignore hotpathalloc lazy one-time scratch allocation; every later latch reuses it
		d.orScratch = make([]bool, d.regions)
	}
	for s := 0; s < d.subnets; s++ {
		regionOr := d.orScratch
		for i := range regionOr {
			regionOr[i] = false
		}
		if d.refScan {
			for n := 0; n < d.nodes; n++ {
				if d.lcs[s*d.nodes+n] {
					regionOr[d.nodeRegion[n]] = true
				}
			}
		} else {
			for i, w := range d.lcsBits[s] {
				for w != 0 {
					n := i<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					regionOr[d.nodeRegion[n]] = true
				}
			}
		}
		for rg := 0; rg < d.regions; rg++ {
			idx := s*d.regions + rg
			if d.rcs[idx] != regionOr[rg] {
				d.rcsE.Toggles++
				d.rcs[idx] = regionOr[rg]
				d.epoch++
				if d.tracer != nil {
					d.tracer.RCSChanged(now, s, rg, regionOr[rg])
				}
			}
		}
	}
}
