package congestion_test

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/traffic"
)

func newNet(t *testing.T, subnets int) *noc.Network {
	t.Helper()
	cfg := noc.Config{
		Rows: 8, Cols: 8, TilesPerNode: 4, RegionDim: 4,
		Subnets: subnets, LinkWidthBits: 512 / subnets,
		VCs: 4, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
		TWakeup: 10, WakeupHidden: 3, TIdleDetect: 4, TBreakeven: 12,
	}
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestDefaults(t *testing.T) {
	for _, k := range []congestion.MetricKind{congestion.BFM, congestion.BFA, congestion.IR, congestion.IQOcc, congestion.Delay} {
		c := congestion.Default(k)
		if c.Threshold <= 0 {
			t.Errorf("%v: non-positive default threshold", k)
		}
		if c.RCSPeriod != 6 {
			t.Errorf("%v: RCS period %d, want 6 (SPICE H-tree delay)", k, c.RCSPeriod)
		}
		if !c.UseRCS {
			t.Errorf("%v: RCS should default on", k)
		}
	}
	if congestion.Default(congestion.BFM).Threshold != congestion.DefaultBFMThreshold {
		t.Error("BFM default threshold mismatch")
	}
}

func TestMetricNames(t *testing.T) {
	want := map[congestion.MetricKind]string{
		congestion.BFM: "BFM", congestion.BFA: "BFA", congestion.IR: "IR",
		congestion.IQOcc: "IQOcc", congestion.Delay: "Delay",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestIdleNetworkNeverCongested: with no traffic, no LCS or RCS may set.
func TestIdleNetworkNeverCongested(t *testing.T) {
	net := newNet(t, 4)
	det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
	net.AddObserver(det)
	net.Run(500)
	for s := 0; s < 4; s++ {
		for n := 0; n < 64; n++ {
			if det.LCS(s, n) || det.Congested(s, n) {
				t.Fatalf("idle network congested at subnet %d node %d", s, n)
			}
		}
	}
}

// TestSaturationTripsBFM: hammering a single subnet beyond capacity must
// set LCS and propagate to the region's RCS within the latch period.
func TestSaturationTripsBFM(t *testing.T) {
	net := newNet(t, 1)
	det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
	net.AddObserver(det)
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.8), 3)
	for i := 0; i < 2000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	lcs := 0
	for n := 0; n < 64; n++ {
		if det.LCS(0, n) {
			lcs++
		}
	}
	if lcs < 16 {
		t.Errorf("only %d/64 LCS set at saturation", lcs)
	}
	rcs := 0
	for r := 0; r < 4; r++ {
		if det.RCS(0, r) {
			rcs++
		}
	}
	if rcs == 0 {
		t.Error("no RCS set at saturation")
	}
	if det.Energy().Latches == 0 || det.Energy().Toggles == 0 {
		t.Error("OR network activity not accounted")
	}
}

// TestRCSLatchPeriod: RCS must only change on latch boundaries (every 6
// cycles), modelling the H-tree propagation delay.
func TestRCSLatchPeriod(t *testing.T) {
	net := newNet(t, 1)
	cfg := congestion.Default(congestion.BFM)
	det := congestion.NewDetector(net, cfg)
	net.AddObserver(det)
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.8), 7)

	prev := make([]bool, 4)
	for i := 0; i < 600; i++ {
		gen.Tick(net.Now())
		net.Step()
		now := net.Now() - 1 // the cycle just executed
		for r := 0; r < 4; r++ {
			cur := det.RCS(0, r)
			if cur != prev[r] && now%cfg.RCSPeriod != 0 {
				t.Fatalf("RCS changed off-latch at cycle %d", now)
			}
			prev[r] = cur
		}
	}
}

// TestLocalOnlyMode: with UseRCS disabled, Congested must reflect only
// the node's own LCS (the BFM-local ablation).
func TestLocalOnlyMode(t *testing.T) {
	net := newNet(t, 1)
	cfg := congestion.Default(congestion.BFM)
	cfg.UseRCS = false
	det := congestion.NewDetector(net, cfg)
	net.AddObserver(det)
	gen := traffic.NewGenerator(net, traffic.Transpose{}, traffic.Constant(0.6), 9)
	for i := 0; i < 1500; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	for n := 0; n < 64; n++ {
		if det.Congested(0, n) != det.LCS(0, n) {
			t.Fatalf("local-only mode consulted regional state at node %d", n)
		}
		if det.RCSAtNode(0, n) != det.LCS(0, n) {
			t.Fatalf("RCSAtNode in local-only mode should equal LCS at node %d", n)
		}
	}
}

// TestHysteresis: once set, LCS must persist for HoldCycles after the
// metric drops ("remains in that status for a few cycles").
func TestHysteresis(t *testing.T) {
	net := newNet(t, 1)
	cfg := congestion.Default(congestion.BFM)
	cfg.HoldCycles = 50
	det := congestion.NewDetector(net, cfg)
	net.AddObserver(det)

	// Saturate briefly, then stop offering traffic entirely.
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.8), 11)
	for i := 0; i < 800; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	anyHot := false
	for n := 0; n < 64 && !anyHot; n++ {
		anyHot = det.LCS(0, n)
	}
	if !anyHot {
		t.Skip("saturation did not trip LCS; covered by TestSaturationTripsBFM")
	}
	// One cycle after load stops, status must still be set somewhere
	// (buffers can't drain instantly, and hold keeps it).
	net.Step()
	stillHot := false
	for n := 0; n < 64 && !stillHot; n++ {
		stillHot = det.LCS(0, n)
	}
	if !stillHot {
		t.Error("LCS cleared instantly despite hold")
	}
	// After the network drains and the hold expires, all clear.
	net.Drain(100000)
	net.Run(200)
	for n := 0; n < 64; n++ {
		if det.LCS(0, n) {
			t.Fatalf("LCS stuck at node %d after drain", n)
		}
	}
}

// TestClearThresholdGap: with a clear threshold below the set threshold,
// the status must persist while the metric sits between the two.
func TestClearThresholdGap(t *testing.T) {
	net := newNet(t, 1)
	cfg := congestion.Default(congestion.BFM)
	cfg.Threshold = 6
	cfg.ClearThreshold = 2
	cfg.HoldCycles = 1
	det := congestion.NewDetector(net, cfg)
	net.AddObserver(det)

	// Saturate to trip LCS, then let the load fall to a level that keeps
	// buffers in the hysteresis band.
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.8), 21)
	for i := 0; i < 1000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	hotBefore := 0
	for n := 0; n < 64; n++ {
		if det.LCS(0, n) {
			hotBefore++
		}
	}
	if hotBefore == 0 {
		t.Skip("saturation did not trip LCS at this seed")
	}
	// Drain completely: everything must clear once below ClearThreshold.
	net.Drain(200000)
	net.Run(50)
	for n := 0; n < 64; n++ {
		if det.LCS(0, n) {
			t.Fatalf("LCS stuck at node %d after full drain", n)
		}
	}
}

// TestValidKind covers the metric-kind guard the facade uses.
func TestValidKind(t *testing.T) {
	for k := congestion.BFM; k <= congestion.Delay; k++ {
		if !congestion.ValidKind(k) {
			t.Errorf("%v invalid", k)
		}
	}
	if congestion.ValidKind(congestion.MetricKind(99)) || congestion.ValidKind(congestion.MetricKind(-1)) {
		t.Error("out-of-range kind accepted")
	}
}

// TestIQOccMetric: the IQOcc metric must reflect NI queue occupancy, and
// trips when injection backs up.
func TestIQOccMetric(t *testing.T) {
	net := newNet(t, 1)
	cfg := congestion.Default(congestion.IQOcc)
	det := congestion.NewDetector(net, cfg)
	net.AddObserver(det)
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.9), 13)
	for i := 0; i < 1500; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	hot := 0
	for n := 0; n < 64; n++ {
		if det.LCS(0, n) {
			hot++
		}
	}
	if hot == 0 {
		t.Error("IQOcc never tripped at saturation")
	}
}

// TestIRWindow: the IR metric must reflect realized injection rate after
// a window closes, and a high threshold must not trip at low load.
func TestIRWindow(t *testing.T) {
	net := newNet(t, 1)
	cfg := congestion.Default(congestion.IR)
	cfg.Threshold = 0.24
	det := congestion.NewDetector(net, cfg)
	net.AddObserver(det)
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.05), 17)
	for i := 0; i < 2000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	for n := 0; n < 64; n++ {
		if det.LCS(0, n) {
			t.Fatalf("IR threshold 0.24 tripped at load 0.05 (node %d)", n)
		}
	}
}

// TestDelayMetricTripsUnderContention: the blocking-delay metric must set
// LCS when the network saturates.
func TestDelayMetricTripsUnderContention(t *testing.T) {
	net := newNet(t, 1)
	det := congestion.NewDetector(net, congestion.Default(congestion.Delay))
	net.AddObserver(det)
	gen := traffic.NewGenerator(net, traffic.Transpose{}, traffic.Constant(0.8), 19)
	for i := 0; i < 2500; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	hot := 0
	for n := 0; n < 64; n++ {
		if det.LCS(0, n) {
			hot++
		}
	}
	if hot == 0 {
		t.Error("Delay metric never tripped under heavy contention")
	}
}
