package congestion_test

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// transition is one LCS or RCS change as reported to the tracer.
type transition struct {
	cycle  int64
	rcs    bool
	subnet int
	node   int // region index for RCS
	on     bool
}

// recordingTracer captures the full transition sequence. Runs here are
// sequential, so no locking is needed.
type recordingTracer struct{ seq []transition }

func (r *recordingTracer) LCSChanged(now int64, subnet, node int, on bool) {
	r.seq = append(r.seq, transition{cycle: now, subnet: subnet, node: node, on: on})
}

func (r *recordingTracer) RCSChanged(now int64, subnet, region int, on bool) {
	r.seq = append(r.seq, transition{cycle: now, rcs: true, subnet: subnet, node: region, on: on})
}

// runDetector drives a Catnap stack built around a detector of the given
// kind for cycles, in either stepping mode, and returns the transition
// sequence plus the final per-node congestion picture.
func runDetector(t *testing.T, kind congestion.MetricKind, ref bool, cycles int, load float64) ([]transition, []bool, congestion.RCSEnergy) {
	t.Helper()
	net := newNet(t, 4)
	det := congestion.NewDetector(net, congestion.Default(kind))
	tr := &recordingTracer{}
	det.SetTracer(tr)
	net.AddObserver(det)
	net.SetSelector(core.NewCatnapSelector(det, net.Config().Nodes()))
	net.SetGatingPolicy(core.NewCatnapGating(det))
	if err := net.SetExecMode(noc.ExecMode{ReferenceScan: ref}); err != nil {
		t.Fatal(err)
	}
	det.SetReferenceScan(ref)

	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(load), 41)
	for i := 0; i < cycles; i++ {
		gen.Tick(net.Now())
		net.Step()
	}

	final := make([]bool, 0, net.Subnets()*net.Config().Nodes())
	for s := 0; s < net.Subnets(); s++ {
		for n := 0; n < net.Config().Nodes(); n++ {
			final = append(final, det.LCS(s, n), det.Congested(s, n))
		}
	}
	return tr.seq, final, *det.Energy()
}

// TestDetectorIncrementalMatchesScan checks, for every metric kind, that
// the candidate-bitmap sampling path produces the exact LCS/RCS
// transition sequence and final congestion state of the full-scan
// reference — including the rate metrics (IR, Delay) whose candidate
// sets are rebuilt from window rates, and the occupancy metrics driven
// by the incremental occupancy bitmaps.
func TestDetectorIncrementalMatchesScan(t *testing.T) {
	kinds := []congestion.MetricKind{
		congestion.BFM, congestion.BFA, congestion.IR, congestion.IQOcc, congestion.Delay,
	}
	for _, kind := range kinds {
		for _, load := range []float64{0.05, 0.30} {
			refSeq, refFinal, refStats := runDetector(t, kind, true, 2200, load)
			fastSeq, fastFinal, fastStats := runDetector(t, kind, false, 2200, load)
			if len(refSeq) != len(fastSeq) {
				t.Fatalf("%v load %.2f: transition counts differ: ref %d vs fast %d", kind, load, len(refSeq), len(fastSeq))
			}
			for i := range refSeq {
				if refSeq[i] != fastSeq[i] {
					t.Fatalf("%v load %.2f: transition %d diverges: ref %+v vs fast %+v", kind, load, i, refSeq[i], fastSeq[i])
				}
			}
			for i := range refFinal {
				if refFinal[i] != fastFinal[i] {
					t.Fatalf("%v load %.2f: final congestion state diverges at index %d", kind, load, i)
				}
			}
			if refStats != fastStats {
				t.Fatalf("%v load %.2f: counters diverge: ref %+v vs fast %+v", kind, load, refStats, fastStats)
			}
		}
	}
}

// TestDetectorTransitionsOccur guards the differential against vacuity:
// at the saturating load at least one metric transition must have fired
// for every kind, otherwise the comparison above proves nothing.
func TestDetectorTransitionsOccur(t *testing.T) {
	kinds := []congestion.MetricKind{
		congestion.BFM, congestion.BFA, congestion.IR, congestion.IQOcc, congestion.Delay,
	}
	for _, kind := range kinds {
		seq, _, _ := runDetector(t, kind, false, 2200, 0.30)
		if len(seq) == 0 {
			t.Errorf("%v: no LCS/RCS transitions at saturating load; differential test is vacuous", kind)
		}
	}
}
