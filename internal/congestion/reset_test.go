package congestion_test

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// runDetectorReused mirrors runDetector but on a recycled stack: the
// network and detector first simulate a dirtying run under a different
// metric kind and load, then both are Reset in place, and the scenario
// replays exactly as runDetector's fresh build would. Every window,
// candidate bitmap, hysteresis latch, and RCS energy counter must have
// been rewound for the transition sequences to match.
func runDetectorReused(t *testing.T, kind congestion.MetricKind, cycles int, load float64) ([]transition, []bool, congestion.RCSEnergy) {
	t.Helper()
	net := newNet(t, 4)
	dirtyKind := congestion.Delay
	if kind == congestion.Delay {
		dirtyKind = congestion.BFM
	}
	det := congestion.NewDetector(net, congestion.Default(dirtyKind))
	net.AddObserver(det)
	net.SetSelector(core.NewCatnapSelector(det, net.Config().Nodes()))
	net.SetGatingPolicy(core.NewCatnapGating(det))
	dirty := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.25), 17)
	for i := 0; i < 800; i++ {
		dirty.Tick(net.Now())
		net.Step()
	}

	cfg := *net.Config()
	if err := net.Reset(cfg, core.NewRRSelector(cfg.Nodes())); err != nil {
		t.Fatal(err)
	}
	det.Reset(net, congestion.Default(kind))
	tr := &recordingTracer{}
	det.SetTracer(tr)
	net.AddObserver(det)
	net.SetSelector(core.NewCatnapSelector(det, cfg.Nodes()))
	net.SetGatingPolicy(core.NewCatnapGating(det))

	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(load), 41)
	for i := 0; i < cycles; i++ {
		gen.Tick(net.Now())
		net.Step()
	}

	final := make([]bool, 0, net.Subnets()*net.Config().Nodes())
	for s := 0; s < net.Subnets(); s++ {
		for n := 0; n < net.Config().Nodes(); n++ {
			final = append(final, det.LCS(s, n), det.Congested(s, n))
		}
	}
	return tr.seq, final, *det.Energy()
}

// TestDetectorResetMatchesFresh is the congestion half of the reset
// differential: for every metric kind, a dirtied-then-Reset detector on a
// dirtied-then-Reset network must reproduce the fresh stack's exact
// LCS/RCS transition sequence, final congestion picture, and RCS energy
// counters.
func TestDetectorResetMatchesFresh(t *testing.T) {
	kinds := []congestion.MetricKind{
		congestion.BFM, congestion.BFA, congestion.IR, congestion.IQOcc, congestion.Delay,
	}
	for _, kind := range kinds {
		refSeq, refFinal, refStats := runDetector(t, kind, false, 1800, 0.30)
		gotSeq, gotFinal, gotStats := runDetectorReused(t, kind, 1800, 0.30)
		if len(refSeq) == 0 {
			t.Fatalf("%v: no transitions in the fresh run; reset differential is vacuous", kind)
		}
		if len(refSeq) != len(gotSeq) {
			t.Fatalf("%v: transition counts differ: fresh %d vs reset %d", kind, len(refSeq), len(gotSeq))
		}
		for i := range refSeq {
			if refSeq[i] != gotSeq[i] {
				t.Fatalf("%v: transition %d diverges: fresh %+v vs reset %+v", kind, i, refSeq[i], gotSeq[i])
			}
		}
		for i := range refFinal {
			if refFinal[i] != gotFinal[i] {
				t.Fatalf("%v: final congestion state diverges at index %d", kind, i)
			}
		}
		if refStats != gotStats {
			t.Fatalf("%v: RCS energy counters diverge: fresh %+v vs reset %+v", kind, refStats, gotStats)
		}
	}
}
