// Package core implements the paper's primary contribution: the Catnap
// subnet-selection policy (§3.2), the Catnap power-gating policy (§3.3,
// Figure 5), and the baseline policies the evaluation compares against —
// round-robin and random subnet selection, the injection-rate-threshold
// selector of Figure 13, and Matsutani-style power gating without regional
// congestion status.
package core

import (
	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/sim"
)

// CatnapSelector implements Catnap's strict-priority subnet selection: a
// packet is injected into the lowest-order subnet that is not (regionally)
// congested; when every subnet is congested, the NI round-robins across
// them to spread the saturated load. If the preferred subnet's injection
// channel is busy serializing another packet, the packet waits — strict
// priority means traffic must not leak upward just because the low subnet
// is momentarily mid-packet.
type CatnapSelector struct {
	det *congestion.Detector
	rr  []int // per-node round-robin pointer for the all-congested case
}

// NewCatnapSelector returns a selector reading congestion state from det.
func NewCatnapSelector(det *congestion.Detector, nodes int) *CatnapSelector {
	return &CatnapSelector{det: det, rr: make([]int, nodes)}
}

// Select implements noc.SubnetSelector.
func (c *CatnapSelector) Select(now int64, node int, pkt *noc.Packet, ready []bool) int {
	subnets := len(ready)
	for s := 0; s < subnets; s++ {
		if !c.det.Congested(s, node) {
			if ready[s] {
				return s
			}
			return -1 // preferred subnet busy this cycle: hold
		}
	}
	// All subnets congested: round-robin over the ready ones.
	start := c.rr[node]
	for k := 0; k < subnets; k++ {
		s := (start + k) % subnets
		if ready[s] {
			c.rr[node] = (s + 1) % subnets
			return s
		}
	}
	return -1
}

// RRSelector distributes packets round-robin across subnets — the naive
// baseline whose uniform spreading defeats power gating (§3.2). It is also
// the trivial selector for Single-NoC (one subnet).
type RRSelector struct {
	rr []int
}

// NewRRSelector returns a round-robin selector for a network with the
// given node count.
func NewRRSelector(nodes int) *RRSelector {
	return &RRSelector{rr: make([]int, nodes)}
}

// Select implements noc.SubnetSelector.
func (r *RRSelector) Select(now int64, node int, pkt *noc.Packet, ready []bool) int {
	subnets := len(ready)
	start := r.rr[node]
	for k := 0; k < subnets; k++ {
		s := (start + k) % subnets
		if ready[s] {
			r.rr[node] = (s + 1) % subnets
			return s
		}
	}
	return -1
}

// RandomSelector picks uniformly among ready subnets — the other naive
// load-balancing baseline mentioned in §1.
type RandomSelector struct {
	rng *sim.RNG
}

// NewRandomSelector returns a selector drawing from rng.
func NewRandomSelector(rng *sim.RNG) *RandomSelector {
	return &RandomSelector{rng: rng}
}

// Select implements noc.SubnetSelector.
func (r *RandomSelector) Select(now int64, node int, pkt *noc.Packet, ready []bool) int {
	n := 0
	for _, ok := range ready {
		if ok {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	k := r.rng.Intn(n)
	for s, ok := range ready {
		if !ok {
			continue
		}
		if k == 0 {
			return s
		}
		k--
	}
	return -1
}

// OrderedSelector pins a message class to a fixed subnet and routes
// everything else through a fallback selector. The paper (§2.3) maps the
// point-to-point-ordered message class (directory request forwarding) to
// one specific lower-order subnet; OrderedSelector implements that
// mapping.
type OrderedSelector struct {
	// Class is the message class requiring point-to-point ordering.
	Class noc.MsgClass
	// Subnet is the fixed subnet for that class.
	Subnet int
	// Fallback selects for every other class.
	Fallback noc.SubnetSelector
}

// Select implements noc.SubnetSelector.
func (o *OrderedSelector) Select(now int64, node int, pkt *noc.Packet, ready []bool) int {
	if pkt.Class == o.Class {
		if ready[o.Subnet] {
			return o.Subnet
		}
		return -1
	}
	return o.Fallback.Select(now, node, pkt, ready)
}
