package core

import (
	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/noc"
)

// CatnapGating implements the power-gating policy of paper §3.3 and
// Figure 5, layered on the regional congestion detector:
//
//   - A router in subnet h > 0 may sleep when its buffers have been empty
//     for T-idle-detect cycles (enforced by the substrate) AND the regional
//     congestion status of the immediately lower-order subnet h−1 is off —
//     if subnet h−1 isn't congested, the selection policy won't send subnet
//     h any traffic, so the idle period will last.
//   - A sleeping router in subnet h wakes proactively the moment subnet
//     h−1's RCS turns on, so the subnet is powered before the spill-over
//     traffic arrives. (Look-ahead wake-up signals and NI wake-ups are
//     substrate mechanics that back this policy up when it fires late.)
//   - Subnet 0 never sleeps: it guarantees connectivity at any load.
type CatnapGating struct {
	det *congestion.Detector
}

// NewCatnapGating returns the Catnap gating policy reading det.
func NewCatnapGating(det *congestion.Detector) *CatnapGating {
	return &CatnapGating{det: det}
}

// AllowSleep implements noc.GatingPolicy.
func (g *CatnapGating) AllowSleep(now int64, subnet, node int, idleCycles int64) bool {
	if subnet == 0 {
		return false
	}
	return !g.det.RCSAtNode(subnet-1, node)
}

// WantWake implements noc.GatingPolicy.
func (g *CatnapGating) WantWake(now int64, subnet, node int) bool {
	if subnet == 0 {
		return true
	}
	return g.det.RCSAtNode(subnet-1, node)
}

// PolicyEpoch implements noc.EpochedPolicy: both answers are pure
// functions of the detector's congestion state, so the detector's
// change counter is the policy's decision epoch. The power phase then
// re-evaluates sleeping/blocked routers only when an LCS or RCS moved.
func (g *CatnapGating) PolicyEpoch() uint64 { return g.det.Epoch() }

var _ noc.GatingPolicy = (*CatnapGating)(nil)
var _ noc.EpochedPolicy = (*CatnapGating)(nil)

// BaselineGating is the Matsutani-style power-gating policy used for the
// Single-NoC-PG and Multi-NoC round-robin baselines (§6.1): a router
// sleeps whenever its buffers have been empty for T-idle-detect cycles —
// no congestion awareness — and wakes only reactively, on look-ahead
// wake-up signals from upstream routers or on pending NI injections (both
// are substrate mechanics).
type BaselineGating struct{}

// AllowSleep implements noc.GatingPolicy; the substrate has already
// enforced the idle-detect window.
func (BaselineGating) AllowSleep(now int64, subnet, node int, idleCycles int64) bool {
	return true
}

// WantWake implements noc.GatingPolicy: baseline gating never wakes a
// router proactively.
func (BaselineGating) WantWake(now int64, subnet, node int) bool { return false }

// PolicyEpoch implements noc.EpochedPolicy: baseline answers never
// change, so the epoch is constant and sleeping routers are never
// re-polled.
func (BaselineGating) PolicyEpoch() uint64 { return 0 }

var _ noc.GatingPolicy = BaselineGating{}
var _ noc.EpochedPolicy = BaselineGating{}
