package core_test

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/sim"
	"github.com/catnap-noc/catnap/internal/traffic"
)

func netCfg(subnets int) noc.Config {
	return noc.Config{
		Rows: 8, Cols: 8, TilesPerNode: 4, RegionDim: 4,
		Subnets: subnets, LinkWidthBits: 512 / subnets,
		VCs: 4, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
		TWakeup: 10, WakeupHidden: 3, TIdleDetect: 4, TBreakeven: 12,
	}
}

func TestRRSelectorCycles(t *testing.T) {
	sel := core.NewRRSelector(1)
	ready := []bool{true, true, true, true}
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, sel.Select(0, 0, nil, ready))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RR sequence %v, want %v", got, want)
		}
	}
}

func TestRRSelectorSkipsBusy(t *testing.T) {
	sel := core.NewRRSelector(1)
	ready := []bool{false, true, false, true}
	if s := sel.Select(0, 0, nil, ready); s != 1 {
		t.Fatalf("got %d, want 1", s)
	}
	if s := sel.Select(0, 0, nil, ready); s != 3 {
		t.Fatalf("got %d, want 3", s)
	}
	none := []bool{false, false, false, false}
	if s := sel.Select(0, 0, nil, none); s != -1 {
		t.Fatalf("got %d with no ready subnet, want -1", s)
	}
}

func TestRandomSelectorOnlyReady(t *testing.T) {
	sel := core.NewRandomSelector(sim.NewRNG(1))
	ready := []bool{false, true, false, true}
	for i := 0; i < 100; i++ {
		s := sel.Select(0, 0, nil, ready)
		if s != 1 && s != 3 {
			t.Fatalf("random selector chose unavailable subnet %d", s)
		}
	}
	if s := sel.Select(0, 0, nil, []bool{false, false}); s != -1 {
		t.Fatalf("got %d with no ready subnet", s)
	}
}

// catnapFixture builds a network + detector + Catnap policies.
func catnapFixture(t *testing.T) (*noc.Network, *congestion.Detector, *core.CatnapSelector) {
	t.Helper()
	cfg := netCfg(4)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
	net.AddObserver(det)
	sel := core.NewCatnapSelector(det, cfg.Nodes())
	net.SetSelector(sel)
	return net, det, sel
}

func TestCatnapSelectorPrefersLowest(t *testing.T) {
	_, _, sel := catnapFixture(t)
	ready := []bool{true, true, true, true}
	// No congestion anywhere: always subnet 0.
	for i := 0; i < 10; i++ {
		if s := sel.Select(0, 0, nil, ready); s != 0 {
			t.Fatalf("uncongested selection = %d, want 0", s)
		}
	}
}

func TestCatnapSelectorHoldsWhenPreferredBusy(t *testing.T) {
	_, _, sel := catnapFixture(t)
	// Subnet 0 uncongested but busy: strict priority must hold the packet
	// rather than leak it upward.
	ready := []bool{false, true, true, true}
	if s := sel.Select(0, 0, nil, ready); s != -1 {
		t.Fatalf("got %d, want -1 (hold for the preferred subnet)", s)
	}
}

// TestCatnapSelectorSpillsUnderCongestion drives real congestion through
// the network and checks the spill to subnet 1.
func TestCatnapSelectorSpillsUnderCongestion(t *testing.T) {
	net, _, _ := catnapFixture(t)
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.4), 3)
	for i := 0; i < 3000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	share := net.SubnetFlitShare()
	if share[1] < 0.1 {
		t.Errorf("no spill to subnet 1 at saturating load: shares %v", share)
	}
	if share[0] < share[3] {
		t.Errorf("priority inverted: shares %v", share)
	}
}

func TestOrderedSelectorPinsClass(t *testing.T) {
	fallback := core.NewRRSelector(1)
	sel := &core.OrderedSelector{Class: noc.ClassForward, Subnet: 0, Fallback: fallback}
	fwd := &noc.Packet{Class: noc.ClassForward}
	other := &noc.Packet{Class: noc.ClassResponse}
	ready := []bool{true, true}
	for i := 0; i < 5; i++ {
		if s := sel.Select(0, 0, fwd, ready); s != 0 {
			t.Fatalf("ordered class routed to subnet %d", s)
		}
	}
	// Ordered class waits when its subnet is busy — that is the point-to-
	// point ordering guarantee.
	if s := sel.Select(0, 0, fwd, []bool{false, true}); s != -1 {
		t.Fatalf("ordered class leaked to subnet %d", s)
	}
	// Other classes flow through the fallback.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[sel.Select(0, 0, other, ready)] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("fallback did not rotate: %v", seen)
	}
}

func TestBaselineGating(t *testing.T) {
	g := core.BaselineGating{}
	if !g.AllowSleep(0, 0, 0, 100) {
		t.Error("baseline gating must allow sleep on any subnet")
	}
	if g.WantWake(0, 0, 0) {
		t.Error("baseline gating never wakes proactively")
	}
}

func TestCatnapGatingSubnetZeroNeverSleeps(t *testing.T) {
	net, det, _ := catnapFixture(t)
	_ = net
	g := core.NewCatnapGating(det)
	if g.AllowSleep(0, 0, 5, 100) {
		t.Error("subnet 0 must never sleep")
	}
	// Higher subnets may sleep while the lower subnet is uncongested.
	if !g.AllowSleep(0, 1, 5, 100) {
		t.Error("subnet 1 should sleep when subnet 0 is uncongested")
	}
	if g.WantWake(0, 1, 5) {
		t.Error("subnet 1 should not wake while subnet 0 is uncongested")
	}
}

// TestCatnapGatingFollowsRCS drives congestion into subnet 0 and checks
// that subnet 1 routers in the congested region are woken proactively.
func TestCatnapGatingFollowsRCS(t *testing.T) {
	net, det, _ := catnapFixture(t)
	net.SetGatingPolicy(core.NewCatnapGating(det))
	net.Run(100) // subnets 1..3 sleep
	for n := 0; n < 64; n++ {
		if net.Subnet(1).Router(n).State() != noc.PowerAsleep {
			t.Fatalf("subnet 1 router %d awake in idle network", n)
		}
	}
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.4), 5)
	for i := 0; i < 2000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	active := net.Subnet(1).ActiveRouters()
	if active == 0 {
		t.Error("RCS-driven wake never fired under saturating load")
	}
}
