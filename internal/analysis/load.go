package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// goList runs `go list -e -export -deps -json` in dir over patterns and
// returns the decoded package stream. -export materialises gc export data
// for every listed package in the build cache, which is what lets the
// loader type-check against compiled dependencies without any module
// downloads (the toolchain resolves everything locally).
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup adapts a path→export-file map to go/importer's lookup
// hook.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// typeCheck parses and type-checks one package's files against the given
// export-data universe.
func typeCheck(path, dir string, goFiles []string, fset *token.FileSet, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", exportLookup(exports))}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load lists patterns in dir (a module directory) and returns every
// matched package parsed and type-checked, ready for Run. Only non-test
// files are loaded; see the package comment.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(p.ImportPath, p.Dir, p.GoFiles, fset, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir,
// assigning it import path `path` (which need not exist in any module —
// the analysistest harness uses this to give testdata packages the
// "internal/noc"-style paths the analyzers gate on). Imports are resolved
// against the toolchain: the referenced packages are listed with -export
// from ctxDir, so testdata may import the standard library freely.
func LoadDir(path, dir, ctxDir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	importSet := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p := imp.Path.Value
			importSet[p[1:len(p)-1]] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		listed, err := goList(ctxDir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", exportLookup(exports))}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
