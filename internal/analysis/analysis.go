// Package analysis is a minimal, dependency-free reimplementation of the
// core of golang.org/x/tools/go/analysis: just enough driver, loader and
// test harness to run catnap's custom static checks (see the analyzer
// subpackages and cmd/catnap-lint) from the standard toolchain alone.
//
// The repository builds hermetically — no module downloads — so the real
// x/tools framework cannot be vendored; the API here mirrors its shape
// (Analyzer, Pass, Diagnostic, analysistest-style golden tests) so the
// analyzers port to the upstream framework mechanically if the dependency
// ever becomes available. Type information comes from the gc export data
// that `go list -export` materialises in the build cache, read through
// go/importer's lookup hook; syntax comes from go/parser. Only non-test
// files are analyzed: the contracts checked here (determinism, zero-alloc
// stepping, commit-queue staging, tracer concurrency) bind the simulator
// proper, not its tests.
//
// Suppression: a finding on line N is silenced by a comment
//
//	//lint:ignore <analyzer> <reason>
//
// placed at the end of line N or alone on line N-1. The reason is
// mandatory; catnap-lint reports malformed ignore directives instead of
// honouring them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors the x/tools type of the
// same name: Run inspects a single package via the Pass and reports
// findings through pass.Report / pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph help text shown by catnap-lint -help.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package: syntax, type
// information, and the Report sink. A Pass is valid only for the duration
// of the Analyzer.Run call it is passed to.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver installs it.
	Report func(Diagnostic)

	funcDecls map[*types.Func]*ast.FuncDecl
}

// Reportf reports a finding at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. Analyzer is filled
// in by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FuncDeclOf resolves a function or method object back to its declaration
// in this package, or nil for objects declared elsewhere (or synthesized).
// Analyzers use it to read annotations off a callee's doc comment.
func (p *Pass) FuncDeclOf(fn *types.Func) *ast.FuncDecl {
	if p.funcDecls == nil {
		p.funcDecls = make(map[*types.Func]*ast.FuncDecl)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					p.funcDecls[obj] = fd
				}
			}
		}
	}
	return p.funcDecls[fn]
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics (after //lint:ignore filtering) sorted by position. The
// error aggregates malformed ignore directives and directives that
// suppressed nothing (a stale ignore is a lie about the code and must be
// deleted); diagnostics are returned even when it is non-nil.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var all []Diagnostic
	var errs []string
	for _, pkg := range pkgs {
		ignores, ierrs := collectIgnores(pkg)
		errs = append(errs, ierrs...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				if ignores.suppresses(pkg.Fset, d) {
					return
				}
				all = append(all, d)
			}
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Sprintf("%s: %s: %v", pkg.Path, a.Name, err))
			}
		}
		errs = append(errs, ignores.unused(ran)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos != all[j].Pos {
			return all[i].Pos < all[j].Pos
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	if len(errs) > 0 {
		return all, fmt.Errorf("%s", strings.Join(errs, "\n"))
	}
	return all, nil
}
