// Package analysis is a minimal, dependency-free reimplementation of the
// core of golang.org/x/tools/go/analysis: just enough driver, loader and
// test harness to run catnap's custom static checks (see the analyzer
// subpackages and cmd/catnap-lint) from the standard toolchain alone.
//
// The repository builds hermetically — no module downloads — so the real
// x/tools framework cannot be vendored; the API here mirrors its shape
// (Analyzer, Pass, Diagnostic, analysistest-style golden tests) so the
// analyzers port to the upstream framework mechanically if the dependency
// ever becomes available. Type information comes from the gc export data
// that `go list -export` materialises in the build cache, read through
// go/importer's lookup hook; syntax comes from go/parser. Only non-test
// files are analyzed: the contracts checked here (determinism, zero-alloc
// stepping, commit-queue staging, tracer concurrency) bind the simulator
// proper, not its tests.
//
// Suppression: a finding on line N is silenced by a comment
//
//	//lint:ignore <analyzer> <reason>
//
// placed at the end of line N or alone on line N-1. The reason is
// mandatory; catnap-lint reports malformed ignore directives instead of
// honouring them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer describes one static check. It mirrors the x/tools type of the
// same name: Run inspects a single package via the Pass and reports
// findings through pass.Report / pass.Reportf. Analyzers that need a
// whole-package-set view (the call-graph contract propagation) set
// RunModule instead; exactly one of Run and RunModule must be non-nil.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph help text shown by catnap-lint -help.
	Doc string
	// Run performs the check on one package. Nil for module analyzers.
	Run func(*Pass) error
	// RunModule performs the check once over the entire loaded package
	// set. Module analyzers see cross-package structure (the call
	// graph); their diagnostics still go through the same per-file
	// //lint:ignore filtering as per-package findings.
	RunModule func(*ModulePass) error
}

// ModulePass carries a module analyzer's view of the whole package set
// and the Report sink. Valid only for the duration of RunModule.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	// Report delivers one finding. The driver installs it.
	Report func(Diagnostic)

	funcDecls map[*types.Func]*ast.FuncDecl
}

// Reportf reports a finding at pos with a Sprintf-formatted message.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FuncDeclOf resolves a function or method object back to its
// declaration anywhere in the loaded package set, or nil for objects
// declared outside it (or synthesized).
func (p *ModulePass) FuncDeclOf(fn *types.Func) *ast.FuncDecl {
	if p.funcDecls == nil {
		p.funcDecls = make(map[*types.Func]*ast.FuncDecl)
		for _, pkg := range p.Pkgs {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						p.funcDecls[obj] = fd
					}
				}
			}
		}
	}
	return p.funcDecls[fn]
}

// Pass carries one analyzer's view of one package: syntax, type
// information, and the Report sink. A Pass is valid only for the duration
// of the Analyzer.Run call it is passed to.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver installs it.
	Report func(Diagnostic)

	funcDecls map[*types.Func]*ast.FuncDecl
}

// Reportf reports a finding at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. Analyzer is filled
// in by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FuncDeclOf resolves a function or method object back to its declaration
// in this package, or nil for objects declared elsewhere (or synthesized).
// Analyzers use it to read annotations off a callee's doc comment.
func (p *Pass) FuncDeclOf(fn *types.Func) *ast.FuncDecl {
	if p.funcDecls == nil {
		p.funcDecls = make(map[*types.Func]*ast.FuncDecl)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					p.funcDecls[obj] = fd
				}
			}
		}
	}
	return p.funcDecls[fn]
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics (after //lint:ignore filtering) sorted by position. The
// error aggregates malformed ignore directives and directives that
// suppressed nothing (a stale ignore is a lie about the code and must be
// deleted); diagnostics are returned even when it is non-nil.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunTimed(pkgs, analyzers)
	return diags, err
}

// Timing records one analyzer's cumulative wall time across the whole
// run (all packages for per-package analyzers, the single module pass
// for module analyzers).
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// RunTimed is Run plus a per-analyzer wall-time breakdown, in the order
// the analyzers were given (`catnap-lint -time` prints it so slow checks
// are attributable).
//
// Ignore directives are collected across the whole package set before
// any analyzer runs, so module analyzers — which report diagnostics in
// any loaded file — get the same suppression semantics as per-package
// ones, and the stale-ignore sweep runs exactly once at the end.
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	ignores, errs := collectAllIgnores(pkgs)
	var all []Diagnostic
	timings := make([]Timing, len(analyzers))
	for i, a := range analyzers {
		timings[i].Name = a.Name
	}
	report := func(a *Analyzer, fset *token.FileSet) func(Diagnostic) {
		return func(d Diagnostic) {
			d.Analyzer = a.Name
			if ignores.suppresses(fset, d) {
				return
			}
			all = append(all, d)
		}
	}
	for _, pkg := range pkgs {
		for i, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    report(a, pkg.Fset),
			}
			start := time.Now()
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Sprintf("%s: %s: %v", pkg.Path, a.Name, err))
			}
			timings[i].Elapsed += time.Since(start)
		}
	}
	if len(pkgs) > 0 {
		for i, a := range analyzers {
			if a.RunModule == nil {
				continue
			}
			mp := &ModulePass{
				Analyzer: a,
				Pkgs:     pkgs,
				Report:   report(a, pkgs[0].Fset),
			}
			start := time.Now()
			if err := a.RunModule(mp); err != nil {
				errs = append(errs, fmt.Sprintf("%s: %v", a.Name, err))
			}
			timings[i].Elapsed += time.Since(start)
		}
	}
	errs = append(errs, ignores.unused(ran)...)
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos != all[j].Pos {
			return all[i].Pos < all[j].Pos
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	if len(errs) > 0 {
		return all, timings, fmt.Errorf("%s", strings.Join(errs, "\n"))
	}
	return all, timings, nil
}
