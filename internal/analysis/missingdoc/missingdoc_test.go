package missingdoc

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/analysis/analysistest"
)

func TestMissingdoc(t *testing.T) {
	analysistest.Run(t, Analyzer, "catnap", "cmd/croak")
}
