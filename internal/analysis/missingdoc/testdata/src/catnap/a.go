// Package catnap is missingdoc's golden test package; its import path
// matches the analyzer's root-package scope.
package catnap

// Documented has a doc comment.
type Documented struct{}

type Bare struct{} // want `exported type Bare lacks a doc comment`

// Grouped constants share the group doc comment.
const (
	GroupedA = 1
	GroupedB = 2
)

var Loose = 3 // want `exported Loose lacks a doc comment`

// Method has a doc comment.
func (Documented) Method() {}

func (Documented) Bare() {} // want `exported Documented\.Bare lacks a doc comment`

func Exported() {} // want `exported Exported lacks a doc comment`

// hidden is unexported: neither it nor its methods are checked.
type hidden struct{}

func (hidden) Exported() {}

func helper() {}

var _ = helper
var _ = hidden{}
