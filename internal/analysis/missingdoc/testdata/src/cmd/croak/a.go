// Command croak is missingdoc's golden test for cmd/* main packages:
// exported helpers in a main package need doc comments; main itself and
// unexported helpers do not.
package main

func main() {
	Run()
	helper()
	_ = Threshold
	_ = Mode("")
}

// Run is the command's documented entry helper.
func Run() {}

func Fire() {} // want `exported Fire lacks a doc comment`

func helper() {}

type Mode string // want `exported type Mode lacks a doc comment`

var Threshold = 3 // want `exported Threshold lacks a doc comment`
