// Package missingdoc requires a doc comment on every exported symbol of
// the root catnap package — the library's public API surface, where the
// Experiment/Opts/Deprecated-shim story is told entirely through doc
// comments (EXPERIMENTS.md and README link straight into them). New
// exported symbols land documented or not at all.
//
// The cmd/* main packages are held to the same bar: a main package has
// no importers, so an exported identifier there is a deliberate signal
// ("this helper is the command's real surface; main is just flag
// plumbing") and the signal needs a doc comment saying what the helper
// promises.
//
// A const/var/type group's doc comment covers every spec in the group
// that lacks its own. Methods of exported types are checked too;
// unexported receivers exempt their methods. Symbols grandfathered
// before the check existed go in the allowlist below with a reason —
// the list is append-only and shrinks as docs are written; prefer
// writing the doc comment.
package missingdoc

import (
	"go/ast"
	"strings"

	"github.com/catnap-noc/catnap/internal/analysis"
)

// Analyzer is the missingdoc pass.
var Analyzer = &analysis.Analyzer{
	Name: "missingdoc",
	Doc:  "require doc comments on exported symbols of the root catnap package and the cmd/* main packages",
	Run:  run,
}

// allowlist names exported symbols permitted to lack a doc comment, with
// the reason they were grandfathered. Currently empty: the whole public
// surface is documented, and this list existing is what keeps it that
// way (additions need a code-reviewed reason string).
var allowlist = map[string]string{}

func run(pass *analysis.Pass) error {
	if !analysis.PackageInScope(pass.Pkg.Path(), "catnap") && !isCmdPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d)
			case *ast.GenDecl:
				checkGen(pass, d)
			}
		}
	}
	return nil
}

// checkFunc flags undocumented exported functions and methods of
// exported receivers.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Doc != nil {
		return
	}
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv := receiverTypeName(fd.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		name = recv + "." + name
	}
	if _, ok := allowlist[name]; ok {
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported %s lacks a doc comment", name)
}

// checkGen flags undocumented exported names in const/var/type decls. A
// group doc on the GenDecl covers specs without their own doc.
func checkGen(pass *analysis.Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && sp.Doc == nil && gd.Doc == nil {
				if _, ok := allowlist[sp.Name.Name]; !ok {
					pass.Reportf(sp.Name.Pos(), "exported type %s lacks a doc comment", sp.Name.Name)
				}
			}
		case *ast.ValueSpec:
			if sp.Doc != nil || gd.Doc != nil {
				continue
			}
			for _, n := range sp.Names {
				if !n.IsExported() {
					continue
				}
				if _, ok := allowlist[n.Name]; ok {
					continue
				}
				pass.Reportf(n.Pos(), "exported %s lacks a doc comment", n.Name)
			}
		}
	}
}

// isCmdPackage reports whether path names one of the repository's cmd/
// main packages (module-qualified or the short testdata form).
func isCmdPackage(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

// receiverTypeName extracts the receiver's type name from *T, T, or
// generic forms; "" when unrecognisable.
func receiverTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
