// Package noc is resetcoverage's golden test package: constructor shapes
// mirroring the simulator's, exercising the annotation requirement branch
// by branch.
package noc

// Network mirrors the simulator's top-level type name.
type Network struct {
	slabs []int64
	now   int64
}

// New is the shell-over-Reset constructor: it allocates, and the
// annotation records that Reset builds everything.
//
//catnap:reset-covered every per-run structure is built by Reset itself
func New(n int) *Network {
	net := &Network{}
	net.Reset(n)
	return net
}

// Reset rewinds the network; allocating here is the point (it IS the
// reset path, and its name does not match the constructor convention).
func (net *Network) Reset(n int) {
	net.slabs = make([]int64, n)
	net.now = 0
}

// newWheel allocates per-run state without the annotation.
func newWheel(size int) [][]int64 {
	return make([][]int64, size) // want `constructor newWheel allocates per-run state \(make\) without //catnap:reset-covered`
}

// NewScratch allocates via a composite literal without the annotation.
func NewScratch() *Network {
	return &Network{} // want `constructor NewScratch allocates per-run state \(composite literal\) without //catnap:reset-covered`
}

// NewBuffered appends without the annotation.
func (net *Network) NewBuffered(v int64) {
	net.slabs = append(net.slabs, v) // want `method NewBuffered allocates per-run state \(append\) without //catnap:reset-covered`
}

// Now allocates nothing, so the constructor-looking name needs no
// annotation... but it is not New*/new* anyway.
func (net *Network) Now() int64 { return net.now }

// newIndex is a pure computation: no allocation, no annotation needed.
func newIndex(row, col, cols int) int {
	return row*cols + col
}

// newSuppressed shows the ignore path.
func newSuppressed() []int64 {
	//lint:ignore resetcoverage golden test for the suppression path
	return make([]int64, 8)
}
