package resetcoverage

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/analysis/analysistest"
)

func TestResetCoverageAnalyzer(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/noc")
}
