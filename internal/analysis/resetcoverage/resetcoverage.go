// Package resetcoverage guards the zero-rebuild contract of the in-place
// reset path (DESIGN.md §4i): every constructor in internal/noc that
// allocates per-run state must declare, via a //catnap:reset-covered
// annotation, that Network.Reset rewinds (or deliberately retains) what
// it builds. The reflection completeness test proves the claim for
// today's fields; this check makes the claim itself mandatory, so a new
// constructor cannot introduce per-run allocations that the reset path
// silently never sees.
//
// A constructor is any function or method named New* / new*. It is
// flagged when its body allocates — make, new, a composite literal
// (including &T{}), or append — and its doc comment lacks
//
//	//catnap:reset-covered <why the reset path covers this>
//
// Functions that allocate nothing (pure lookups, wrappers) need no
// annotation. The fix is usually to build the state from the reset
// function itself (the shell-over-Reset pattern New and Subnet.reset
// use), and only then to annotate the shell.
package resetcoverage

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/catnap-noc/catnap/internal/analysis"
)

// Analyzer is the resetcoverage pass.
var Analyzer = &analysis.Analyzer{
	Name: "resetcoverage",
	Doc:  "require //catnap:reset-covered on internal/noc constructors that allocate per-run state",
	Run:  run,
}

// annotation is the doc-comment marker a constructor must carry.
const annotation = "reset-covered"

func run(pass *analysis.Pass) error {
	if !analysis.PackageInScope(pass.Pkg.Path(), "internal/noc") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isConstructorName(fd.Name.Name) {
				continue
			}
			if analysis.HasAnnotation(fd, annotation) {
				continue
			}
			if pos, what := firstAllocation(pass, fd.Body); what != "" {
				name := fd.Name.Name
				if fd.Recv != nil {
					name = "method " + name
				} else {
					name = "constructor " + name
				}
				pass.Reportf(pos, "%s allocates per-run state (%s) without //catnap:reset-covered — build it from the reset path or annotate why Reset covers it", name, what)
			}
		}
	}
	return nil
}

// isConstructorName reports whether the function follows the New*/new*
// constructor convention.
func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// firstAllocation finds the first allocating construct in the body:
// make/new/append calls and composite literals. It returns its position
// and a short description, or "" when the body allocates nothing.
func firstAllocation(pass *analysis.Pass, body *ast.BlockStmt) (pos token.Pos, what string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.CompositeLit:
			pos, what = e.Pos(), "composite literal"
			return false
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						pos, what = e.Pos(), b.Name()
						return false
					}
				}
			}
		}
		return true
	})
	return pos, what
}
