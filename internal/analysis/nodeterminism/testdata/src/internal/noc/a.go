// Package noc is nodeterminism's golden test package; its import path
// puts it inside the analyzer's scope, and every construct the analyzer
// bans appears here next to its sanctioned counterpart.
package noc

import (
	"math/rand"
	"time"
)

// Tracer mirrors the simulator's callback-surface naming so the
// map-range tracer rule has a target.
type Tracer interface {
	Event(now int64, node int)
}

type sim struct {
	rng     *rand.Rand
	tracer  Tracer
	pending map[int]int
	total   int
}

func newSim() *sim {
	// Seeded constructors are the sanctioned use of math/rand.
	return &sim{rng: rand.New(rand.NewSource(42)), pending: map[int]int{}}
}

func (s *sim) clock() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	_ = time.Since(time.Unix(0, 0)) // want `time\.Since reads the wall clock`
	return t.UnixNano()
}

func (s *sim) roll() int {
	if s.rng.Intn(2) == 0 { // method on a seeded *rand.Rand: allowed
		return 0
	}
	return rand.Intn(6) // want `global rand\.Intn bypasses the seeded sim\.RNG`
}

func (s *sim) spawn() {
	go s.drain() // want `go statement outside a //catnap:worker-pool function`
}

// spawnPooled is the audited worker pool of this golden package.
//
//catnap:worker-pool
func (s *sim) spawnPooled() {
	go s.drain() // pooled: allowed
}

func (s *sim) drain() {}

func (s *sim) mapMutate() {
	for k, v := range s.pending {
		s.total += v // want `assignment to state outside a range over a map`
		_ = k
	}
}

func (s *sim) mapIncrement() {
	for k := range s.pending {
		_ = k
		s.total++ // want `mutation of state outside a range over a map`
	}
}

func (s *sim) mapTrace(now int64) {
	for k := range s.pending {
		s.tracer.Event(now, k) // want `tracer/policy callback inside a range over a map`
	}
}

func (s *sim) mapPtrCall() {
	for k := range s.pending {
		s.bump(k) // want `pointer-receiver call on state outside a range over a map`
	}
}

func (s *sim) bump(k int) { s.total += k }

func (s *sim) mapReadOnly() bool {
	for k := range s.pending {
		double := k * 2 // loop-local state: allowed
		if double > 10 {
			return true
		}
	}
	return false
}

func (s *sim) suppressed() {
	for k := range s.pending {
		//lint:ignore nodeterminism golden demonstration of the suppression path
		s.total += k
	}
}
