package nodeterminism

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/analysis/analysistest"
)

func TestNodeterminism(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/noc")
}
