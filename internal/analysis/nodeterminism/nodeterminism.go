// Package nodeterminism forbids the constructs that would break the
// simulator's bit-identity guarantees in the deterministic packages
// (internal/noc, internal/congestion, internal/sim):
//
//   - wall-clock reads (time.Now, time.Since, ...): cycle time is the only
//     clock the simulator may observe;
//   - global math/rand functions: all randomness must flow from the
//     seeded sim.RNG so identical configs reproduce identical runs
//     (methods on a locally seeded *rand.Rand are tolerated — the ban is
//     on process-global, seed-uncontrolled streams);
//   - map-range bodies that mutate simulation state or call methods on
//     state reached from outside the loop: Go map iteration order is
//     random, so such loops make cycle results order-dependent (the
//     canonical fix — collect keys, sort, then act — still trips the
//     check and documents itself with a //lint:ignore);
//   - `go` statements outside functions annotated //catnap:worker-pool:
//     every goroutine must belong to the audited worker pools whose
//     barriers the differential suites exercise.
package nodeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/catnap-noc/catnap/internal/analysis"
)

// Analyzer is the nodeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock, global rand, mutating map iteration, and un-pooled goroutines in deterministic simulator packages",
	Run:  run,
}

// scope lists the package-path suffixes the analyzer polices.
var scope = []string{"internal/noc", "internal/congestion", "internal/sim"}

// bannedTime is the set of wall-clock entry points in package time.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand entry points that build an
// explicitly seeded generator rather than touching the process-global
// stream; they are how sanctioned determinism is constructed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageInScope(pass.Pkg.Path(), scope...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pooled := analysis.HasAnnotation(fd, "worker-pool")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkCall(pass, n)
				case *ast.GoStmt:
					if !pooled {
						pass.Reportf(n.Pos(),
							"go statement outside a //catnap:worker-pool function: goroutines in deterministic packages must come from an audited worker pool")
					}
				case *ast.RangeStmt:
					checkMapRange(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// checkCall flags wall-clock and global-rand calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Package-qualified calls only: a method call (Selections entry
	// present) is rand.Rand-style seeded usage, which is allowed.
	if pass.TypesInfo.Selections[sel] != nil {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTime[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock: cycle time is the only clock deterministic code may observe", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if randConstructors[fn.Name()] {
			return // building a locally seeded generator is the sanctioned use
		}
		pass.Reportf(call.Pos(),
			"global %s.%s bypasses the seeded sim.RNG: derive randomness from the experiment seed", fn.Pkg().Name(), fn.Name())
	}
}

// checkMapRange flags range-over-map bodies that touch state declared
// outside the loop: iteration order is random, so any such effect is
// order-dependent.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if declaredOutside(pass, rng, lhs) {
					pass.Reportf(n.Pos(),
						"assignment to state outside a range over a map: iteration order is nondeterministic")
					return true
				}
			}
		case *ast.IncDecStmt:
			if declaredOutside(pass, rng, n.X) {
				pass.Reportf(n.Pos(),
					"mutation of state outside a range over a map: iteration order is nondeterministic")
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
					if isTracerLike(s.Recv()) {
						pass.Reportf(n.Pos(),
							"tracer/policy callback inside a range over a map: event order would be nondeterministic")
					} else if hasPointerReceiver(s.Obj()) && declaredOutside(pass, rng, sel.X) {
						pass.Reportf(n.Pos(),
							"pointer-receiver call on state outside a range over a map: effect order is nondeterministic")
					}
				}
			}
		}
		return true
	})
}

// declaredOutside reports whether expr's root identifier resolves to an
// object declared outside the range statement (or cannot be resolved at
// all, which is treated conservatively as outside).
func declaredOutside(pass *analysis.Pass, rng *ast.RangeStmt, expr ast.Expr) bool {
	id := rootIdent(expr)
	if id == nil {
		return true
	}
	if id.Name == "_" {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// rootIdent peels selectors, indexing, derefs and parens down to the base
// identifier, or nil when the base is not an identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// isTracerLike reports whether t is (a pointer to) an interface whose
// name ends in Tracer or Policy — the simulator's callback surfaces.
func isTracerLike(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, ok := n.Underlying().(*types.Interface); !ok {
		return false
	}
	name := n.Obj().Name()
	return strings.HasSuffix(name, "Tracer") || strings.HasSuffix(name, "Policy")
}

// hasPointerReceiver reports whether obj is a method with a pointer
// receiver.
func hasPointerReceiver(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}
