// Package suite assembles catnap's full analyzer set in one place, so
// cmd/catnap-lint and the repo-wide lint-clean test run exactly the same
// checks.
package suite

import (
	"github.com/catnap-noc/catnap/internal/analysis"
	"github.com/catnap-noc/catnap/internal/analysis/hotpathalloc"
	"github.com/catnap-noc/catnap/internal/analysis/missingdoc"
	"github.com/catnap-noc/catnap/internal/analysis/nodeterminism"
	"github.com/catnap-noc/catnap/internal/analysis/resetcoverage"
	"github.com/catnap-noc/catnap/internal/analysis/stagingdiscipline"
	"github.com/catnap-noc/catnap/internal/analysis/tracercontract"
)

// All returns every analyzer in the suite, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterminism.Analyzer,
		hotpathalloc.Analyzer,
		stagingdiscipline.Analyzer,
		tracercontract.Analyzer,
		resetcoverage.Analyzer,
		missingdoc.Analyzer,
	}
}

// ByName returns the named analyzers out of All, or nil when any name is
// unknown (the caller reports the error with the valid set).
func ByName(names []string) []*analysis.Analyzer {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}
