// Package suite assembles catnap's full analyzer set in one place, so
// cmd/catnap-lint and the repo-wide lint-clean test run exactly the same
// checks.
package suite

import (
	"fmt"
	"sort"
	"strings"

	"github.com/catnap-noc/catnap/internal/analysis"
	"github.com/catnap-noc/catnap/internal/analysis/contractflow"
	"github.com/catnap-noc/catnap/internal/analysis/hotpathalloc"
	"github.com/catnap-noc/catnap/internal/analysis/missingdoc"
	"github.com/catnap-noc/catnap/internal/analysis/nodeterminism"
	"github.com/catnap-noc/catnap/internal/analysis/resetcoverage"
	"github.com/catnap-noc/catnap/internal/analysis/stagingdiscipline"
	"github.com/catnap-noc/catnap/internal/analysis/tracercontract"
)

// All returns every analyzer in the suite, in reporting order. The
// per-function contract checkers come first, contractflow (the
// call-graph propagation layer that feeds them their annotations) after
// them, and the repo-hygiene checks last.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodeterminism.Analyzer,
		hotpathalloc.Analyzer,
		stagingdiscipline.Analyzer,
		tracercontract.Analyzer,
		contractflow.Analyzer,
		resetcoverage.Analyzer,
		missingdoc.Analyzer,
	}
}

// Names returns every analyzer name in stable sorted order (the order
// catnap-lint lists them in error messages).
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// ByName returns the named analyzers out of All. Unknown and duplicate
// names are errors: running the same analyzer twice would double every
// diagnostic, so a repeated -checks entry is rejected rather than
// silently honoured.
func ByName(names []string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	seen := make(map[string]bool, len(names))
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(Names(), ", "))
		}
		if seen[n] {
			return nil, fmt.Errorf("duplicate analyzer %q", n)
		}
		seen[n] = true
		out = append(out, a)
	}
	return out, nil
}
