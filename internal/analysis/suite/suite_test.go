package suite

import (
	"strings"
	"testing"

	"github.com/catnap-noc/catnap/internal/analysis"
)

// TestRepoLintClean runs the full analyzer suite over the entire module
// and requires zero diagnostics — the same invocation as `make lint`.
// The simulator's annotations, fixes, and justified //lint:ignore
// directives must keep the tree clean, and the driver's unused-directive
// error makes any stale ignore fail here too.
func TestRepoLintClean(t *testing.T) {
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(pkgs, All())
	if err != nil {
		t.Errorf("driver: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// TestSuiteComposition pins the analyzer count so adding or dropping a
// check is a conscious edit here, and verifies contractflow is wired in
// as the suite's module analyzer.
func TestSuiteComposition(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("suite has %d analyzers, want 7: %v", len(all), Names())
	}
	var module int
	for _, a := range all {
		if a.RunModule != nil {
			module++
			if a.Name != "contractflow" {
				t.Errorf("unexpected module analyzer %q", a.Name)
			}
		}
	}
	if module != 1 {
		t.Errorf("suite has %d module analyzers, want 1 (contractflow)", module)
	}
}

// TestByName checks suite selection used by catnap-lint -checks.
func TestByName(t *testing.T) {
	got, err := ByName([]string{"missingdoc", "nodeterminism"})
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(got) != 2 || got[0].Name != "missingdoc" || got[1].Name != "nodeterminism" {
		t.Fatalf("ByName returned %v", got)
	}

	if _, err := ByName([]string{"nodeterminism", "nope"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	} else {
		// The error must list every valid name, sorted, so -checks typos
		// are self-correcting from the CLI output alone.
		for _, name := range Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("unknown-name error %q does not list %q", err, name)
			}
		}
	}

	if _, err := ByName([]string{"missingdoc", "missingdoc"}); err == nil {
		t.Fatal("ByName accepted a duplicate analyzer name")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate-name error %q does not say duplicate", err)
	}
}

// TestNamesSorted guards the order ByName's unknown-name error lists
// analyzers in: sorted, so the CLI message is stable and scannable.
func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not strictly sorted: %v", names)
		}
	}
}

// TestAllNamesUnique guards the //lint:ignore namespace: analyzer names
// double as suppression keys and must not collide. Every analyzer must
// define exactly one of Run (per-package) and RunModule (whole-module).
func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %q incompletely defined", a.Name)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %q must define exactly one of Run and RunModule", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
