package suite

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/analysis"
)

// TestRepoLintClean runs the full analyzer suite over the entire module
// and requires zero diagnostics — the same invocation as `make lint`.
// The simulator's annotations, fixes, and justified //lint:ignore
// directives must keep the tree clean, and the driver's unused-directive
// error makes any stale ignore fail here too.
func TestRepoLintClean(t *testing.T) {
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(pkgs, All())
	if err != nil {
		t.Errorf("driver: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// TestByName checks suite selection used by catnap-lint -checks.
func TestByName(t *testing.T) {
	got := ByName([]string{"missingdoc", "nodeterminism"})
	if len(got) != 2 || got[0].Name != "missingdoc" || got[1].Name != "nodeterminism" {
		t.Fatalf("ByName returned %v", got)
	}
	if ByName([]string{"nodeterminism", "nope"}) != nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	}
}

// TestAllNamesUnique guards the //lint:ignore namespace: analyzer names
// double as suppression keys and must not collide.
func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely defined", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
