// Package noc is tracercontract's golden test package: callback
// interfaces with the simulator's Tracer/Policy naming, invoked with and
// without the worker-safe annotation and under straight-line lock
// scopes.
package noc

import "sync"

// PowerTracer mirrors the simulator's tracer callback surface.
type PowerTracer interface {
	RouterSlept(now int64, node int)
}

// GatingPolicy mirrors the simulator's policy callback surface.
type GatingPolicy interface {
	AllowSleep(now int64, node int) bool
}

// Selector has no Tracer/Policy suffix: not a checked callback surface.
type Selector interface {
	Select(now int64) int
}

type core struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	tracer PowerTracer
	pol    GatingPolicy
	sel    Selector
}

func (c *core) unsafe(now int64) {
	c.tracer.RouterSlept(now, 0) // want `not annotated //catnap:worker-safe`
}

// safe is audited for worker-goroutine delivery.
//
//catnap:worker-safe
func (c *core) safe(now int64) {
	if c.tracer != nil {
		c.tracer.RouterSlept(now, 1)
	}
}

//catnap:worker-safe
func (c *core) locked(now int64) {
	c.mu.Lock()
	c.tracer.RouterSlept(now, 2) // want `while holding a lock`
	c.mu.Unlock()
	c.tracer.RouterSlept(now, 3) // lock released: allowed
}

//catnap:worker-safe
func (c *core) deferred(now int64) bool {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.pol.AllowSleep(now, 4) // want `while holding a lock`
}

//catnap:worker-safe
func (c *core) nonCallback(now int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sel.Select(now) // Selector is not a Tracer/Policy: allowed
}

func (c *core) suppressed(now int64) {
	//lint:ignore tracercontract golden demonstration of the suppression path
	c.tracer.RouterSlept(now, 5)
}
