// Package tracercontract checks the parallel-execution callback contract
// (documented on noc.Network.SetExecMode): with parallel or
// sharded stepping enabled, GatingPolicy and PowerTracer callbacks — and
// the congestion detector's Tracer hooks — are dispatched from worker
// goroutines, so the functions that invoke them are part of the audited
// concurrency surface. The analyzer enforces two rules in internal/noc
// and internal/congestion:
//
//   - every function that invokes a method on a *Tracer- or *Policy-
//     suffixed interface must be annotated //catnap:worker-safe, marking
//     it as reviewed against that contract (the annotation's free-form
//     note records on which goroutines the callbacks fire);
//
//   - no such callback may be invoked while a sync lock is held (a
//     Lock/RLock on the path with no intervening Unlock/RUnlock, or a
//     deferred Unlock pending): a callback that re-enters the simulator
//     or blocks on its own synchronisation would deadlock or order
//     events nondeterministically. The simulator proper is lock-free by
//     design; this keeps it that way around the callback surface.
//
// The lock analysis is a straight-line, per-function approximation:
// precise enough for the flat lock scopes Go style encourages, and every
// miss is still caught dynamically by the -race differential suites.
package tracercontract

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/catnap-noc/catnap/internal/analysis"
)

// Analyzer is the tracercontract pass.
var Analyzer = &analysis.Analyzer{
	Name: "tracercontract",
	Doc:  "require tracer/policy callback sites to be worker-safe annotated and lock-free",
	Run:  run,
}

var scope = []string{"internal/noc", "internal/congestion"}

func run(pass *analysis.Pass) error {
	if !analysis.PackageInScope(pass.Pkg.Path(), scope...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, workerSafe: analysis.HasAnnotation(fd, "worker-safe")}
			c.block(fd.Body.List, 0)
		}
	}
	return nil
}

type checker struct {
	pass       *analysis.Pass
	workerSafe bool
}

// block walks a statement list tracking how many locks are held. locks
// counts Lock/RLock calls not yet matched by Unlock/RUnlock in this
// straight-line scope; a deferred Unlock does not release for the rest
// of the function body.
func (c *checker) block(stmts []ast.Stmt, locks int) {
	for _, s := range stmts {
		locks = c.stmt(s, locks)
	}
}

func (c *checker) stmt(s ast.Stmt, locks int) int {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch lockKind(c.pass, call) {
			case lockAcquire:
				return locks + 1
			case lockRelease:
				if locks > 0 {
					return locks - 1
				}
				return 0
			}
		}
		c.checkCalls(s, locks)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at function exit, not here: the lock
		// stays held for the remaining statements.
		if lockKind(c.pass, s.Call) == lockNone {
			c.checkCalls(s, locks)
		}
	case *ast.BlockStmt:
		c.block(s.List, locks)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, locks)
		}
		c.checkCalls(s.Cond, locks)
		c.block(s.Body.List, locks)
		if s.Else != nil {
			c.stmt(s.Else, locks)
		}
	case *ast.ForStmt:
		c.block(s.Body.List, locks)
	case *ast.RangeStmt:
		c.block(s.Body.List, locks)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			c.block(cc.(*ast.CaseClause).Body, locks)
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			c.block(cc.(*ast.CaseClause).Body, locks)
		}
	default:
		c.checkCalls(s, locks)
	}
	return locks
}

// checkCalls flags tracer/policy callback invocations under node n.
func (c *checker) checkCalls(n ast.Node, locks int) {
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := c.pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal || !isCallbackIface(s.Recv()) {
			return true
		}
		if locks > 0 {
			c.pass.Reportf(call.Pos(),
				"%s callback invoked while holding a lock: callbacks must fire lock-free per the SetExecMode contract", ifaceName(s.Recv()))
		}
		if !c.workerSafe {
			c.pass.Reportf(call.Pos(),
				"%s callback invoked from a function not annotated //catnap:worker-safe: document the goroutine contract before dispatching callbacks", ifaceName(s.Recv()))
		}
		return true
	})
}

// lock classification of an expression statement.
type lockOp int

const (
	lockNone lockOp = iota
	lockAcquire
	lockRelease
)

// lockKind recognises mutex acquire/release method calls by name on any
// receiver that has them (sync.Mutex, sync.RWMutex, or embedders).
func lockKind(pass *analysis.Pass, call *ast.CallExpr) lockOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockNone
	}
	if s := pass.TypesInfo.Selections[sel]; s == nil || s.Kind() != types.MethodVal {
		return lockNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return lockAcquire
	case "Unlock", "RUnlock":
		return lockRelease
	}
	return lockNone
}

// isCallbackIface reports whether t is (a pointer to) an interface whose
// name ends in Tracer or Policy — the simulator's worker-dispatched
// callback surfaces.
func isCallbackIface(t types.Type) bool {
	return ifaceName(t) != ""
}

// ifaceName returns the short name of the callback interface, or "".
func ifaceName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if _, ok := n.Underlying().(*types.Interface); !ok {
		return ""
	}
	name := n.Obj().Name()
	if strings.HasSuffix(name, "Tracer") || strings.HasSuffix(name, "Policy") {
		return name
	}
	return ""
}
