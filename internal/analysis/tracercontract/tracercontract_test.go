package tracercontract

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/analysis/analysistest"
)

func TestTracercontract(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/noc")
}
