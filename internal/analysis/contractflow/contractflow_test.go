package contractflow

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/analysis/analysistest"
)

func TestContractflow(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/noc")
}
