// Package noc is contractflow's golden test package: one example per
// propagation mechanism (direct call, method call, interface call,
// function value), the shard-phase sequential-path exemption, the
// quiescent-only reachability check, stale-annotation detection, and
// call-site suppression.
package noc

// --- direct calls -----------------------------------------------------

// Step is a hotpath root; its direct callees must join the closure.
//
//catnap:hotpath
func Step() {
	covered()
	helper() // want `helper is reachable from //catnap:hotpath code \(Step → helper\) but is not annotated`
}

//catnap:hotpath
func covered() {}

func helper() {}

// --- method calls -----------------------------------------------------

type ring struct{ n int }

//catnap:hotpath
func (r *ring) Advance() {
	r.bump() // want `\(\*ring\)\.bump is reachable from //catnap:hotpath code`
}

func (r *ring) bump() { r.n++ }

// --- interface calls (sound over-approximation) -----------------------

type ticker interface{ Tick() }

type clock struct{}

func (clock) Tick() {}

// Drive dispatches through an interface: the closure must cover every
// in-universe implementation with a matching method.
//
//catnap:hotpath
func Drive(t ticker) {
	t.Tick() // want `\(clock\)\.Tick is reachable from //catnap:hotpath code`
}

// --- function values --------------------------------------------------

// Dispatch invokes through a function value: every address-taken
// function with the same signature is a possible callee.
//
//catnap:hotpath
func Dispatch() {
	fn := target
	fn() // want `target is reachable from //catnap:hotpath code \(Dispatch → target\)`
}

func target() {}

// --- suppression prunes the frontier ----------------------------------

//catnap:hotpath
func Grow() {
	//lint:ignore contractflow one-time growth; amortised over the run
	expand()
}

func expand() {}

// --- worker-safe propagation ------------------------------------------

//catnap:worker-safe
func Scan() {
	unsafeHelper() // want `unsafeHelper is reachable from //catnap:worker-safe code`
}

func unsafeHelper() {}

// --- shard-phase: boundary and sequential-path exemption --------------

type commitQueue struct{ n int }

type router struct{ cq *commitQueue }

// Phase stages through the commit queue; calls on the proven-sequential
// cq == nil path carry no shard-phase obligation.
//
//catnap:shard-phase
func (r *router) Phase() {
	if r.cq == nil {
		seqOnly() // sequential path: exempt
		return
	}
	stage()  // ok: staging-safe boundary stops propagation
	staged() // want `staged is reachable from //catnap:shard-phase code`
}

func seqOnly() {}

//catnap:staging-safe audited boundary
func stage() {
	beyondBoundary() // ok: boundaries do not propagate
}

func beyondBoundary() {}

func staged() {}

// --- quiescent-only must not be reachable from shard-phase ------------

//catnap:quiescent-only assumes the clock sits between cycles
func drain() {}

//catnap:shard-phase
func (r *router) BadPhase() {
	if r.cq != nil {
		drain() // want `drain is reachable from //catnap:shard-phase code` `//catnap:quiescent-only drain is reachable from shard-phase root \(\*router\)\.BadPhase`
	}
}

// --- stale annotations ------------------------------------------------

// orphan's annotation asserts membership in the hotpath closure, but no
// hotpath function calls it anymore.
//
//catnap:hotpath
func orphan() {} // want `stale //catnap:hotpath on orphan`

// exported functions are never stale: external callers are invisible.
//
//catnap:hotpath
func Exported() {}
