package contractflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/catnap-noc/catnap/internal/analysis"
)

// Sequential-path recognition: stagingdiscipline licenses direct writes
// in shard-phase functions wherever the commit queue is provably nil —
// the body of `if cq == nil`, the else branch of `if cq != nil`, and
// the statements after an `if cq != nil { ...; return }` early exit.
// The shard-phase *propagation* honours exactly the same regions: a
// call that only executes sequentially imposes no shard-phase
// obligation on its callee. (The quiescent-only reachability check
// deliberately does NOT use this filter — shard-phase functions run
// mid-cycle in either mode.)
//
// sequentialCallPositions walks every //catnap:shard-phase function in
// the loaded packages with the same nil-branch classification
// stagingdiscipline applies and returns the set of call positions that
// sit in commit-queue-nil regions.
func sequentialCallPositions(pkgs []*analysis.Package) map[token.Pos]bool {
	seq := make(map[token.Pos]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !analysis.HasAnnotation(fd, "shard-phase") {
					continue
				}
				w := &seqWalker{info: pkg.Info, seq: seq}
				w.block(fd.Body.List, false)
			}
		}
	}
	return seq
}

// seqWalker tracks the commit-queue-nil state through one function.
type seqWalker struct {
	info *types.Info
	seq  map[token.Pos]bool
}

func (w *seqWalker) block(stmts []ast.Stmt, cqNil bool) {
	for _, s := range stmts {
		cqNil = w.stmt(s, cqNil)
	}
}

// stmt visits one statement and returns the nil-state holding after it.
func (w *seqWalker) stmt(s ast.Stmt, cqNil bool) bool {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, cqNil)
		}
		w.collect(s.Cond, cqNil)
		switch nilTest(w.info, s.Cond) {
		case cqNotNil:
			w.block(s.Body.List, false)
			if s.Else != nil {
				w.elseStmt(s.Else, true)
			}
			if terminates(s.Body) {
				return true
			}
			return cqNil
		case cqIsNil:
			w.block(s.Body.List, true)
			if s.Else != nil {
				w.elseStmt(s.Else, false)
			}
			return cqNil
		default:
			w.block(s.Body.List, cqNil)
			if s.Else != nil {
				w.elseStmt(s.Else, cqNil)
			}
			return cqNil
		}
	case *ast.BlockStmt:
		w.block(s.List, cqNil)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, cqNil)
		}
		if s.Cond != nil {
			w.collect(s.Cond, cqNil)
		}
		if s.Post != nil {
			w.stmt(s.Post, cqNil)
		}
		w.block(s.Body.List, cqNil)
	case *ast.RangeStmt:
		w.collect(s.X, cqNil)
		w.block(s.Body.List, cqNil)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, cqNil)
		}
		if s.Tag != nil {
			w.collect(s.Tag, cqNil)
		}
		for _, cc := range s.Body.List {
			w.block(cc.(*ast.CaseClause).Body, cqNil)
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			w.block(cc.(*ast.CaseClause).Body, cqNil)
		}
	default:
		w.collect(s, cqNil)
	}
	return cqNil
}

func (w *seqWalker) elseStmt(s ast.Stmt, cqNil bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s.List, cqNil)
	default:
		w.stmt(s, cqNil)
	}
}

// collect records every call position under n when the region is
// commit-queue-nil. Literal bodies are skipped: their calls belong to
// the literal's own node, which executes whenever the literal is
// invoked, not where it is defined.
func (w *seqWalker) collect(n ast.Node, cqNil bool) {
	if !cqNil || n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.seq[x.Pos()] = true
		}
		return true
	})
}

// nil-test classification against *commitQueue variables, mirroring
// stagingdiscipline.
type nilKind int

const (
	cqNone nilKind = iota
	cqIsNil
	cqNotNil
)

func nilTest(info *types.Info, cond ast.Expr) nilKind {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return cqNone
	}
	x, y := bin.X, bin.Y
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) || !isCommitQueuePtr(info, x) {
		return cqNone
	}
	if bin.Op == token.EQL {
		return cqIsNil
	}
	return cqNotNil
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
}

func isCommitQueuePtr(info *types.Info, e ast.Expr) bool {
	p, ok := info.TypeOf(e).(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == "commitQueue"
}

// terminates reports whether the block's last statement unconditionally
// leaves the enclosing block.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
