// Package contractflow propagates catnap's annotation contracts along
// the call graph. The per-function analyzers (hotpathalloc,
// stagingdiscipline, tracercontract) check only annotated bodies, so a
// helper extracted from Step silently escaped the 0 B/cycle, staging,
// and worker-safety contracts the bench guards and differential suites
// depend on. contractflow closes that hole: obligations flow along
// calls, the way they flow at runtime.
//
// Over the callgraph package's graph (universe: internal/noc,
// internal/congestion, internal/telemetry, internal/runner — the
// packages on the per-cycle path) it enforces, per contract:
//
//   - hotpath: every function a //catnap:hotpath function calls must
//     itself be //catnap:hotpath (and is then scanned by hotpathalloc),
//     transitively;
//   - shard-phase: every function called during the staged router phase
//     must be //catnap:shard-phase (propagates) or //catnap:staging-safe
//     (an audited boundary; propagation stops). Calls proven to be on
//     the sequential path — inside `if cq == nil` regions, per the same
//     branch analysis stagingdiscipline uses — carry no obligation;
//   - worker-safe: every function reachable from a //catnap:worker-safe
//     function must be //catnap:worker-safe (tracercontract then polices
//     its callback sites and lock discipline);
//   - quiescent-only: no //catnap:quiescent-only function may be
//     reachable from any shard-phase root, on any path, including the
//     sequential one — the idle fast-forward entry points assume the
//     network sits between cycles.
//
// Function literals are pass-through: a literal cannot carry a doc
// comment, so the obligation lands on the declared functions it calls,
// and the literal appears in the reported chain (`(*Network).Step →
// func@shard.go:120 → stepBand`). Diagnostics carry the full call chain
// from an entry root so violations are actionable, and are anchored at
// the frontier call site, where a //lint:ignore contractflow <reason>
// both suppresses the finding and stops propagation through that edge —
// the sanctioned way to mark an intentionally-cold callee (error paths,
// one-time growth).
//
// The pass also flags stale annotations: an unexported, never
// go-spawned function annotated hotpath / shard-phase / worker-safe
// that no same-contract function still calls. Annotations assert
// membership in a checked closure; when a refactor severs the call, the
// annotation is a lie and must go (or the call restored).
package contractflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/catnap-noc/catnap/internal/analysis"
	"github.com/catnap-noc/catnap/internal/analysis/callgraph"
)

// Analyzer is the contractflow pass. It is the suite's only module
// analyzer: the call graph spans packages, so it runs once over the
// whole loaded set.
var Analyzer = &analysis.Analyzer{
	Name:      "contractflow",
	Doc:       "propagate //catnap: contract obligations along the call graph",
	RunModule: runModule,
}

// universe lists the package-path suffixes the call graph covers: the
// packages that execute on the per-cycle path. Everything outside
// (internal/stats, the root package, CLIs) is beyond the propagation
// boundary by design.
var universe = []string{
	"internal/noc",
	"internal/congestion",
	"internal/telemetry",
	"internal/runner",
}

// contract describes one propagated obligation.
type contract struct {
	// name is the annotation that marks membership and propagates.
	name string
	// boundaries are annotations that satisfy the obligation without
	// propagating it (audited stopping points).
	boundaries []string
	// rootedByCallbacks marks contracts whose annotation can be
	// self-justified: tracercontract *requires* //catnap:worker-safe on
	// any function that invokes a Tracer/Policy callback, whether or not
	// a worker-safe caller exists, so such roots are never stale.
	rootedByCallbacks bool
	// fix is appended to the frontier diagnostic.
	fix string
}

var contracts = []contract{
	{
		name: "hotpath",
		fix:  "annotate it //catnap:hotpath (hotpathalloc will then scan it) or mark this call //lint:ignore contractflow <why the callee is cold>",
	},
	{
		name:       "shard-phase",
		boundaries: []string{"staging-safe"},
		fix:        "annotate it //catnap:shard-phase or //catnap:staging-safe, or mark this call //lint:ignore contractflow <why it is safe>",
	},
	{
		name:              "worker-safe",
		rootedByCallbacks: true,
		fix:               "annotate it //catnap:worker-safe (tracercontract then polices its callback sites) or mark this call //lint:ignore contractflow <why it never runs on workers>",
	},
}

func runModule(mp *analysis.ModulePass) error {
	inUniverse := func(path string) bool {
		return analysis.PackageInScope(path, universe...)
	}
	g := callgraph.Build(mp.Pkgs, inUniverse)
	if len(g.Nodes) == 0 {
		return nil
	}
	seq := sequentialCallPositions(mp.Pkgs)
	entries := indirectEntries(g)
	for _, c := range contracts {
		propagate(mp, g, c, seq, entries)
	}
	checkQuiescentOnly(mp, g, seq)
	return nil
}

// indirectEntries computes the nodes invocable without a static
// in-universe caller: targets of func-value and go edges, plus — through
// literal pass-through — the static callees of indirectly-dispatched
// literals (the StepPool invokes the shard/phase/commit closures through
// a func(int) field; the closures' callees run wherever the dispatch
// context runs, which no caller annotation can witness). Staleness
// cannot be decided statically for these, so they are exempt.
func indirectEntries(g *callgraph.Graph) map[*callgraph.Node]bool {
	entry := make(map[*callgraph.Node]bool)
	var queue []*callgraph.Node
	for _, n := range g.Nodes {
		for _, e := range n.In {
			if e.Kind == callgraph.KindFuncValue || e.Kind == callgraph.KindGo {
				entry[n] = true
				queue = append(queue, n)
				break
			}
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if !n.IsLiteral() {
			continue
		}
		for _, e := range n.Out {
			if !entry[e.To] {
				entry[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return entry
}

// annotated reports whether the node is a declared function carrying
// //catnap:<name>.
func annotated(n *callgraph.Node, name string) bool {
	return n.Decl != nil && analysis.HasAnnotation(n.Decl, name)
}

// skipEdge reports whether an edge carries no obligation for contract c:
// shard-phase obligations do not flow through calls proven to be on the
// sequential (cq == nil) path.
func skipEdge(c contract, e *callgraph.Edge, seq map[token.Pos]bool) bool {
	return c.name == "shard-phase" && seq[e.Pos]
}

// propagate walks contract c's closure and reports the frontier: edges
// from covered code into functions that lack the annotation. Literals
// are covered by pass-through; traversal stops at unannotated declared
// functions (annotating them extends the closure on the next run, an
// ignore at the call site prunes it permanently). It then reports stale
// annotations: members no covered caller still reaches.
func propagate(mp *analysis.ModulePass, g *callgraph.Graph, c contract, seq map[token.Pos]bool, entries map[*callgraph.Node]bool) {
	covered := make(map[*callgraph.Node]bool)
	var queue []*callgraph.Node
	for _, n := range g.Nodes {
		if annotated(n, c.name) {
			covered[n] = true
			queue = append(queue, n)
		}
	}
	type frontier struct {
		from, to *callgraph.Node
		pos      token.Pos
	}
	var front []frontier
	seen := make(map[[2]*callgraph.Node]bool)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if skipEdge(c, e, seq) {
				continue
			}
			m := e.To
			if covered[m] {
				continue
			}
			if m.IsLiteral() {
				covered[m] = true
				queue = append(queue, m)
				continue
			}
			if m.Decl == nil {
				continue // synthetic init node: runs once, cold
			}
			if annotated(m, c.name) {
				covered[m] = true
				queue = append(queue, m)
				continue
			}
			if boundary(m, c) {
				continue
			}
			key := [2]*callgraph.Node{n, m}
			if seen[key] {
				continue
			}
			seen[key] = true
			front = append(front, frontier{from: n, to: m, pos: e.Pos})
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].pos < front[j].pos })
	for _, f := range front {
		chain := chainTo(f.from, c.name, covered)
		chain = append(chain, f.to)
		mp.Reportf(f.pos,
			"%s is reachable from //catnap:%s code (%s) but is not annotated: %s",
			f.to.Name(), c.name, callgraph.ChainString(chain), c.fix)
	}
	reportStale(mp, g, c, covered, entries)
}

// boundary reports whether node m satisfies contract c without joining
// its closure.
func boundary(m *callgraph.Node, c contract) bool {
	for _, b := range c.boundaries {
		if annotated(m, b) {
			return true
		}
	}
	return false
}

// chainTo builds the call chain from an entry root down to n through
// covered nodes, walking caller links upward deterministically (the
// first covered in-edge in position order) with a depth bound. n's
// chain always ends at n.
func chainTo(n *callgraph.Node, name string, covered map[*callgraph.Node]bool) []*callgraph.Node {
	chain := []*callgraph.Node{n}
	onChain := map[*callgraph.Node]bool{n: true}
	for len(chain) < 12 {
		cur := chain[0]
		var up *callgraph.Node
		for _, e := range cur.In {
			if covered[e.From] && !onChain[e.From] {
				up = e.From
				break
			}
		}
		if up == nil {
			break
		}
		chain = append([]*callgraph.Node{up}, chain...)
		onChain[up] = true
	}
	return chain
}

// reportStale flags contract members no covered caller reaches:
// unexported functions whose annotation asserts a closure membership
// nothing establishes anymore. Exempt are exported functions (callable
// from outside the universe), go-spawned functions and indirect entry
// points (the dynamic dispatch context, not a caller's annotation,
// decides where they run), and — for callback-rooted contracts —
// functions that invoke a Tracer/Policy callback themselves.
func reportStale(mp *analysis.ModulePass, g *callgraph.Graph, c contract, covered map[*callgraph.Node]bool, entries map[*callgraph.Node]bool) {
	for _, n := range g.Nodes {
		if !annotated(n, c.name) {
			continue
		}
		if n.Decl.Name.IsExported() || n.GoSpawned || entries[n] {
			continue
		}
		if c.rootedByCallbacks && invokesCallback(mp, n) {
			continue
		}
		reached := false
		for _, e := range n.In {
			if e.From != n && covered[e.From] {
				reached = true
				break
			}
		}
		if !reached {
			mp.Reportf(n.Decl.Name.Pos(),
				"stale //catnap:%s on %s: unexported and no %s-annotated function still calls it — delete the annotation or restore the call",
				c.name, n.Name(), c.name)
		}
	}
}

// invokesCallback reports whether the node's body calls a method on a
// *Tracer- or *Policy-suffixed interface — the sites tracercontract
// forces //catnap:worker-safe onto regardless of callers.
func invokesCallback(mp *analysis.ModulePass, n *callgraph.Node) bool {
	var pkg *analysis.Package
	for _, p := range mp.Pkgs {
		if p.Path == n.PkgPath {
			pkg = p
			break
		}
	}
	if pkg == nil || n.Decl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pkg.Info.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal || !types.IsInterface(s.Recv()) {
			return true
		}
		if named, ok := s.Recv().(*types.Named); ok {
			name := named.Obj().Name()
			if strings.HasSuffix(name, "Tracer") || strings.HasSuffix(name, "Policy") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkQuiescentOnly verifies no quiescent-only function is reachable
// from any shard-phase root, traversing every edge (annotated or not,
// sequential-path included: a shard-phase function runs mid-cycle in
// either mode, and quiescent-only functions assume the clock sits
// between cycles).
func checkQuiescentOnly(mp *analysis.ModulePass, g *callgraph.Graph, seq map[token.Pos]bool) {
	type hit struct {
		pos    token.Pos
		root   *callgraph.Node
		target *callgraph.Node
		chain  []*callgraph.Node
	}
	var hits []hit
	reported := make(map[[2]token.Pos]bool)
	for _, root := range g.Nodes {
		if !annotated(root, "shard-phase") {
			continue
		}
		parent := map[*callgraph.Node]*callgraph.Edge{}
		queue := []*callgraph.Node{root}
		visited := map[*callgraph.Node]bool{root: true}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, e := range n.Out {
				if visited[e.To] {
					continue
				}
				visited[e.To] = true
				parent[e.To] = e
				if annotated(e.To, "quiescent-only") {
					// Reconstruct root → ... → target and anchor the
					// diagnostic at the first call on the path (the edge
					// leaving the shard-phase root).
					var chain []*callgraph.Node
					for m := e.To; m != nil; {
						chain = append([]*callgraph.Node{m}, chain...)
						pe := parent[m]
						if pe == nil {
							break
						}
						m = pe.From
					}
					first := parent[chain[1]]
					key := [2]token.Pos{first.Pos, e.To.Pos}
					if !reported[key] {
						reported[key] = true
						hits = append(hits, hit{pos: first.Pos, root: root, target: e.To, chain: chain})
					}
					continue // no need to traverse past the target
				}
				queue = append(queue, e.To)
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].pos != hits[j].pos {
			return hits[i].pos < hits[j].pos
		}
		return hits[i].target.Key < hits[j].target.Key
	})
	for _, h := range hits {
		mp.Reportf(h.pos,
			"//catnap:quiescent-only %s is reachable from shard-phase root %s (%s): quiescent-only functions assume the network sits between cycles",
			h.target.Name(), h.root.Name(), callgraph.ChainString(h.chain))
	}
}
