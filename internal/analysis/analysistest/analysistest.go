// Package analysistest runs an analyzer over golden packages under
// testdata/src and checks its diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// A test package lives at testdata/src/<path>/ relative to the analyzer's
// test file; <path> becomes the package's import path, so a directory
// like testdata/src/internal/noc exercises analyzers that gate on the
// real simulator package paths. Expectations are trailing comments:
//
//	x := time.Now() // want `time\.Now`
//
// Each backquoted or double-quoted string is a regexp that must match
// exactly one diagnostic on that line; unexpected diagnostics and
// unmatched expectations both fail the test. //lint:ignore directives are
// honoured, so golden packages can also assert the suppression path.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/catnap-noc/catnap/internal/analysis"
)

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one // want entry: a position and a message pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each testdata package, applies the analyzer, and reports any
// mismatch between diagnostics and // want expectations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		runOne(t, a, path)
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, path string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(path))
	pkg, err := analysis.LoadDir(path, dir, ".")
	if err != nil {
		t.Fatalf("%s: loading: %v", path, err)
	}
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[idx+len("// want "):], -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					expects = append(expects, &expectation{
						file: pos.Filename, line: pos.Line, pattern: re,
					})
				}
			}
		}
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Errorf("%s: %v", path, err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", path, posString(pos.Filename, pos.Line), d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: no diagnostic at %s matching %q", path, posString(e.file, e.line), e.pattern)
		}
	}
}

// claim marks the first unmatched expectation on (file, line) whose
// pattern matches msg.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.pattern.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

func posString(file string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(file), line)
}
