package analysis

import (
	"go/ast"
	"strings"
)

// Annotation grammar: a function opts into (or out of) a contract with a
// machine-readable line in its doc comment,
//
//	//catnap:<name> [free-form note]
//
// e.g. //catnap:hotpath, //catnap:shard-phase, //catnap:commit-apply,
// //catnap:worker-safe, //catnap:worker-pool, //catnap:quiescent-only.
// The note is ignored by the analyzers but encouraged for humans.
// Annotations compose: one function may carry several, one per line.
const annotationPrefix = "//catnap:"

// HasAnnotation reports whether fd's doc comment carries
// //catnap:<name>.
func HasAnnotation(fd *ast.FuncDecl, name string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	want := annotationPrefix + name
	for _, c := range fd.Doc.List {
		t := c.Text
		if t == want || strings.HasPrefix(t, want+" ") {
			return true
		}
	}
	return false
}

// PackageInScope reports whether a package path falls under one of the
// given path suffixes (e.g. "internal/noc"). Suffix matching lets the
// same gate cover both the real module paths and the short testdata paths
// the analysistest harness loads.
func PackageInScope(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}
