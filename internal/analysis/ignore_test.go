package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// mustParse builds a syntax-only Package from src; ignore collection and
// suppression never touch type information.
func mustParse(t *testing.T, name, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}
}

// lineStart returns the token.Pos of the first column of line in the
// package's single file.
func lineStart(t *testing.T, pkg *Package, line int) token.Pos {
	t.Helper()
	tf := pkg.Fset.File(pkg.Files[0].Pos())
	if tf == nil {
		t.Fatal("no token.File for parsed file")
	}
	return tf.LineStart(line)
}

func TestIgnorePlacement(t *testing.T) {
	src := `package p

func a() {
	eol() //lint:ignore alloc eol-form directive
	//lint:ignore alloc line-above-form directive
	above()

	//lint:ignore alloc two lines above the diagnostic: out of range
	_ = 0
	far()
}
`
	pkg := mustParse(t, "a.go", src)
	set, errs := collectAllIgnores([]*Package{pkg})
	if len(errs) != 0 {
		t.Fatalf("unexpected collect errors: %v", errs)
	}
	diagAt := func(line int) Diagnostic {
		return Diagnostic{Pos: lineStart(t, pkg, line), Analyzer: "alloc"}
	}
	if !set.suppresses(pkg.Fset, diagAt(4)) {
		t.Errorf("EOL directive on line 4 must suppress a line-4 diagnostic")
	}
	if !set.suppresses(pkg.Fset, diagAt(6)) {
		t.Errorf("line-above directive on line 5 must suppress a line-6 diagnostic")
	}
	if set.suppresses(pkg.Fset, diagAt(10)) {
		t.Errorf("directive two lines above must not suppress a line-10 diagnostic")
	}
}

func TestIgnoreMultipleAnalyzers(t *testing.T) {
	src := `package p

func a() {
	//lint:ignore alloc,contractflow shared cold path
	both()
}
`
	pkg := mustParse(t, "a.go", src)
	set, errs := collectAllIgnores([]*Package{pkg})
	if len(errs) != 0 {
		t.Fatalf("unexpected collect errors: %v", errs)
	}
	for _, name := range []string{"alloc", "contractflow"} {
		if !set.suppresses(pkg.Fset, Diagnostic{Pos: lineStart(t, pkg, 5), Analyzer: name}) {
			t.Errorf("comma-list directive must cover analyzer %q", name)
		}
	}
	if set.suppresses(pkg.Fset, Diagnostic{Pos: lineStart(t, pkg, 5), Analyzer: "other"}) {
		t.Errorf("directive must not cover an analyzer it does not name")
	}
}

func TestIgnoreMalformed(t *testing.T) {
	src := `package p

//lint:ignore alloc
func a() {}
`
	pkg := mustParse(t, "a.go", src)
	_, errs := collectAllIgnores([]*Package{pkg})
	if len(errs) != 1 || !strings.Contains(errs[0], "malformed ignore directive") {
		t.Fatalf("want one malformed-directive error, got %v", errs)
	}
}

// TestIgnoreUnused covers the stale-ignore sweep, including the module
// analyzer case: a directive naming contractflow is condemned when
// contractflow ran and suppressed nothing, and left alone when only
// other analyzers ran.
func TestIgnoreUnused(t *testing.T) {
	src := `package p

func a() {
	//lint:ignore contractflow nothing here ever fires
	quiet()
}
`
	pkg := mustParse(t, "a.go", src)
	set, errs := collectAllIgnores([]*Package{pkg})
	if len(errs) != 0 {
		t.Fatalf("unexpected collect errors: %v", errs)
	}
	if errs := set.unused(map[string]bool{"alloc": true}); len(errs) != 0 {
		t.Errorf("directive naming only un-ran analyzers must survive a partial run, got %v", errs)
	}
	got := set.unused(map[string]bool{"contractflow": true})
	if len(got) != 1 || !strings.Contains(got[0], "unused //lint:ignore") {
		t.Fatalf("want one unused-directive error under contractflow, got %v", got)
	}
}

// TestIgnoreSuppressesModuleAnalyzer runs a module analyzer through
// RunTimed and checks the directive both suppresses its diagnostic and
// counts as used (no stale-ignore error).
func TestIgnoreSuppressesModuleAnalyzer(t *testing.T) {
	src := `package p

func a() {
	//lint:ignore contractflow audited cold path
	flagged()
}
`
	pkg := mustParse(t, "a.go", src)
	target := lineStart(t, pkg, 5)
	mod := &Analyzer{
		Name: "contractflow",
		Doc:  "test stand-in",
		RunModule: func(mp *ModulePass) error {
			mp.Reportf(target, "flagged() is reachable")
			return nil
		},
	}
	diags, _, err := RunTimed([]*Package{pkg}, []*Analyzer{mod})
	if err != nil {
		t.Fatalf("RunTimed: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("directive must suppress the module analyzer's diagnostic, got %v", diags)
	}
}
