// Package hotpath is hotpathalloc's golden test package: every
// allocation-causing construct the analyzer flags, each next to the
// zero-alloc idiom that replaces it.
package hotpath

import "fmt"

type ring struct {
	buf   []int
	items []int
}

func consume(x interface{}) { _ = x }

func record(vs ...interface{}) { _ = vs }

//catnap:hotpath
func (r *ring) bad(n int) {
	b := make([]int, n) // want `make in a hot-path function allocates`
	_ = b
	p := new(ring) // want `new in a hot-path function allocates`
	_ = p
	r.items = append(r.buf, n) // want `append outside the amortised`
	fmt.Println(n)      // want `fmt\.Println in a hot-path function allocates`
	lit := []int{n}     // want `slice literal in a hot-path function allocates`
	_ = lit
	m := map[int]int{n: n} // want `map literal in a hot-path function allocates`
	_ = m
	q := &ring{} // want `&T\{\} in a hot-path function allocates when it escapes`
	_ = q
	f := func() {} // want `closure literal in a hot-path function`
	f()
}

//catnap:hotpath
func (r *ring) boxes(v int) {
	consume(v) // want `value of type int boxed into interface parameter`
	record(v)  // want `value of type int boxed into interface parameter`
}

//catnap:hotpath
func describe(a, b string) string {
	return a + b // want `string concatenation in a hot-path function allocates`
}

//catnap:hotpath
func (r *ring) good(n int) {
	r.items = append(r.items, n) // self-append idiom: amortised, allowed
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // panic args are cold: allowed
	}
}

//catnap:hotpath
func (r *ring) grow(n int) {
	if len(r.buf) == 0 {
		//lint:ignore hotpathalloc golden demonstration of a justified one-time growth
		r.buf = make([]int, n)
	}
}

// notHot allocates freely: only annotated functions are checked.
func notHot(n int) []int {
	return make([]int, n)
}
