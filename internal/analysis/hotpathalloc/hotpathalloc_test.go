package hotpathalloc

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/analysis/analysistest"
)

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, Analyzer, "hotpath")
}
