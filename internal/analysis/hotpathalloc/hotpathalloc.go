// Package hotpathalloc statically backs the 0 B/cycle steady-state bench
// guard: functions annotated //catnap:hotpath (Step, the VA/SA/ST
// passes, NI enqueue/inject, commit-queue apply — see DESIGN.md "Hot
// path") are scanned for constructs that allocate, or that commonly
// defeat escape analysis:
//
//   - fmt.* calls (interface boxing plus formatting state);
//   - string concatenation (non-constant `+` on strings);
//   - make/new and slice/map composite literals, including &T{};
//   - growth-pattern append: anything but the self-append idiom
//     `x = append(x, ...)`, whose backing array amortises to zero in a
//     warmed-up simulator;
//   - closure literals (captures escape to the heap when the closure
//     does);
//   - interface boxing at call sites: a concrete non-pointer value
//     passed to an interface-typed parameter allocates.
//
// Arguments of panic(...) are exempt: a panicking cycle is off the
// steady-state path by definition, so the conventional
// panic(fmt.Sprintf(...)) diagnostics do not need suppression comments.
//
// The check is per-function and syntactic over typed ASTs: it cannot
// prove a function allocation-free (escape analysis can move things
// either way), but every construct it flags is a latent allocation on the
// per-cycle path, and the bench guards confirm the dynamic truth. Known
// cold paths inside hot functions (one-time ring growth, the freelist-
// miss new(Packet)) carry //lint:ignore
// with the justification.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/catnap-noc/catnap/internal/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocation-causing constructs inside //catnap:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasAnnotation(fd, "hotpath") {
				continue
			}
			check(pass, fd.Body)
		}
	}
	return nil
}

// check walks one hot function's body, carrying the innermost enclosing
// assignment so append calls can be matched against the self-append
// idiom, and skipping panic(...) arguments entirely.
func check(pass *analysis.Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node, assign *ast.AssignStmt)
	walk = func(n ast.Node, assign *ast.AssignStmt) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.AssignStmt:
			for _, e := range n.Lhs {
				walk(e, nil)
			}
			for _, e := range n.Rhs {
				walk(e, n)
			}
			return
		case *ast.CallExpr:
			if checkCall(pass, n, assign) {
				return // panic(...): arguments are cold, skip them
			}
			walk(n.Fun, nil)
			for _, a := range n.Args {
				walk(a, nil)
			}
			return
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"closure literal in a hot-path function: captured variables escape to the heap when the closure does")
			return // the closure body is not the hot path's own frame
		case *ast.CompositeLit:
			checkComposite(pass, n)
			// keep walking: element expressions may contain calls
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"&T{} in a hot-path function allocates when it escapes")
					return
				}
			}
		case *ast.BinaryExpr:
			checkConcat(pass, n)
		}
		// Generic traversal into children, resetting the assignment
		// context (it only applies to the assignment's direct RHS).
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, nil)
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt, nil)
	}
}

// checkCall flags fmt.* calls, allocation builtins, growth-pattern
// appends, and interface-boxing argument passing. It reports true when
// the call is panic(...), whose arguments the caller must skip.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, assign *ast.AssignStmt) (isPanic bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return true
			case "make":
				pass.Reportf(call.Pos(),
					"make in a hot-path function allocates: hoist the buffer to setup and reuse it")
			case "new":
				pass.Reportf(call.Pos(),
					"new in a hot-path function allocates: hoist the object to setup or pool it")
			case "append":
				if !selfAppendOK(assign, call) {
					pass.Reportf(call.Pos(),
						"append outside the amortised `x = append(x, ...)` idiom: the result escapes its backing array's reuse")
				}
			}
			return false
		}
	case *ast.SelectorExpr:
		if pass.TypesInfo.Selections[fun] == nil { // package-qualified call
			if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				pass.Reportf(call.Pos(),
					"fmt.%s in a hot-path function allocates (interface boxing and formatting state)", fn.Name())
				return false // boxing per-arg would only duplicate the finding
			}
		}
	}
	checkBoxing(pass, call)
	return false
}

// checkBoxing flags concrete non-pointer arguments passed to interface-
// typed parameters: the value is boxed onto the heap at the call site.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	sigTV, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue // interface-to-interface: no new allocation
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Basic:
			if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() != types.UntypedNil {
				pass.Reportf(arg.Pos(),
					"value of type %s boxed into interface parameter: allocates at the call site", at)
			}
		default:
			pass.Reportf(arg.Pos(),
				"value of type %s boxed into interface parameter: allocates at the call site", at)
		}
	}
}

// checkComposite flags slice and map composite literals (struct literals
// are stack values and stay unflagged).
func checkComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal in a hot-path function allocates its backing array")
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal in a hot-path function allocates")
	}
}

// checkConcat flags non-constant string concatenation.
func checkConcat(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.ADD {
		return
	}
	tv, ok := pass.TypesInfo.Types[bin]
	if !ok || tv.Value != nil { // constant-folded: free
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		pass.Reportf(bin.Pos(), "string concatenation in a hot-path function allocates the result")
	}
}

// selfAppendOK reports whether call (a builtin append) appears as the
// sole RHS of a plain assignment whose first LHS textually equals
// append's first argument — the amortised `x = append(x, ...)` idiom.
func selfAppendOK(assign *ast.AssignStmt, call *ast.CallExpr) bool {
	if assign == nil || len(assign.Rhs) != 1 || assign.Rhs[0] != call ||
		len(assign.Lhs) == 0 || len(call.Args) == 0 || assign.Tok != token.ASSIGN {
		return false
	}
	return types.ExprString(assign.Lhs[0]) == types.ExprString(call.Args[0])
}
