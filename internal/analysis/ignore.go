package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // names the directive covers
	line      int             // line the comment itself sits on
	used      bool
}

// ignoreSet indexes a package's ignore directives by file and line.
type ignoreSet struct {
	byFile map[string][]*ignoreDirective
}

const ignorePrefix = "//lint:ignore"

// collectAllIgnores merges every package's ignore directives into one
// set keyed by file, so module-wide analyzers get the same suppression
// semantics as per-package ones. File paths are unique across packages,
// so the merge loses nothing.
func collectAllIgnores(pkgs []*Package) (ignoreSet, []string) {
	set := ignoreSet{byFile: make(map[string][]*ignoreDirective)}
	var errs []string
	for _, pkg := range pkgs {
		ierrs := collectIgnores(pkg, set)
		errs = append(errs, ierrs...)
	}
	return set, errs
}

// collectIgnores scans every comment in the package for ignore
// directives, appending them into set. Malformed directives (missing
// analyzer name or reason) are returned as error strings so the driver
// can fail loudly instead of silently not suppressing.
func collectIgnores(pkg *Package, set ignoreSet) []string {
	var errs []string
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					errs = append(errs, fmt.Sprintf(
						"%s: malformed ignore directive: want \"//lint:ignore <analyzer> <reason>\"", pos))
					continue
				}
				names := make(map[string]bool)
				for _, n := range strings.Split(fields[0], ",") {
					if n != "" {
						names[n] = true
					}
				}
				d := &ignoreDirective{analyzers: names, line: pos.Line}
				set.byFile[pos.Filename] = append(set.byFile[pos.Filename], d)
			}
		}
	}
	return errs
}

// unused returns one error string per directive that names at least one
// analyzer in the executed set yet suppressed nothing — a stale ignore.
// Directives naming only analyzers outside the run are left alone (a
// partial run must not condemn the full suite's suppressions).
func (s ignoreSet) unused(ran map[string]bool) []string {
	var files []string
	for f := range s.byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var errs []string
	for _, f := range files {
		for _, d := range s.byFile[f] {
			if d.used {
				continue
			}
			relevant := false
			for n := range d.analyzers {
				if ran[n] {
					relevant = true
					break
				}
			}
			if relevant {
				errs = append(errs, fmt.Sprintf(
					"%s:%d: unused //lint:ignore directive: no diagnostic suppressed; delete it", f, d.line))
			}
		}
	}
	return errs
}

// suppresses reports whether d is covered by an ignore directive on the
// same line or the line immediately above.
func (s ignoreSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, dir := range s.byFile[pos.Filename] {
		if !dir.analyzers[d.Analyzer] {
			continue
		}
		if dir.line == pos.Line || dir.line == pos.Line-1 {
			dir.used = true
			return true
		}
	}
	return false
}
