package callgraph

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/analysis"
)

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	pkg, err := analysis.LoadDir("internal/noc", "testdata/src/internal/noc", ".")
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	return Build([]*analysis.Package{pkg}, func(p string) bool {
		return analysis.PackageInScope(p, "internal/noc")
	})
}

func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q", name)
	return nil
}

// edgesTo returns n's out-edges of the given kind, by target name.
func edgesTo(n *Node, kind EdgeKind) map[string]bool {
	out := make(map[string]bool)
	for _, e := range n.Out {
		if e.Kind == kind {
			out[e.To.Name()] = true
		}
	}
	return out
}

func TestStaticAndMethodEdges(t *testing.T) {
	g := buildTestGraph(t)
	root := nodeByName(t, g, "Root")
	static := edgesTo(root, KindStatic)
	for _, want := range []string{"sub", "(*mesh).dispatch"} {
		if !static[want] {
			t.Errorf("Root: missing static edge to %s (have %v)", want, static)
		}
	}
}

func TestGoEdgeMarksSpawned(t *testing.T) {
	g := buildTestGraph(t)
	root := nodeByName(t, g, "Root")
	if !edgesTo(root, KindGo)["spin"] {
		t.Fatalf("Root: missing go edge to spin")
	}
	if !nodeByName(t, g, "spin").GoSpawned {
		t.Errorf("spin: GoSpawned not set")
	}
}

// TestFuncValueResolution pins down two resolver invariants at once:
// the dispatch through mesh.fn must reach the stored literal even
// though the literal names its parameter and the field type does not
// (signature normalization), and it must NOT reach onlyCalled, which
// shares the signature but is only ever called, never address-taken.
func TestFuncValueResolution(t *testing.T) {
	g := buildTestGraph(t)
	dispatch := nodeByName(t, g, "(*mesh).dispatch")
	var fvTargets []*Node
	for _, e := range dispatch.Out {
		if e.Kind == KindFuncValue {
			fvTargets = append(fvTargets, e.To)
		}
	}
	if len(fvTargets) != 1 {
		names := make([]string, len(fvTargets))
		for i, n := range fvTargets {
			names[i] = n.Name()
		}
		t.Fatalf("dispatch: want exactly 1 func-value target (the stored literal), got %v", names)
	}
	lit := fvTargets[0]
	if !lit.IsLiteral() {
		t.Fatalf("dispatch: func-value target %s is not a literal", lit.Name())
	}
	// Literal pass-through: the literal's own static callee is leaf.
	if !edgesTo(lit, KindStatic)["leaf"] {
		t.Errorf("literal: missing static edge to leaf")
	}
}

func TestCalledFunctionNotAddressTaken(t *testing.T) {
	g := buildTestGraph(t)
	only := nodeByName(t, g, "onlyCalled")
	for _, e := range only.In {
		if e.Kind != KindStatic {
			t.Errorf("onlyCalled: unexpected %v in-edge from %s — a call must not make its callee address-taken", e.Kind, e.From.Name())
		}
	}
}
