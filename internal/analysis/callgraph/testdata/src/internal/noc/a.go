// Package noc is the callgraph builder's golden test package: one
// construct per edge kind, plus the two resolution subtleties the
// builder must get right — signature matching ignores parameter names,
// and a call never makes its callee address-taken.
package noc

type mesh struct {
	fn func(int)
}

// Root exercises static calls, method calls, go statements, and
// function-value wiring in one reachable body.
func Root() {
	sub()
	m := &mesh{}
	// The literal names its parameter; the field type does not. The
	// dispatch edge must still resolve (signatures are compared with
	// parameter names stripped).
	m.fn = func(i int) { leaf() }
	m.dispatch()
	go spin()
}

func sub() {}

func leaf() {}

func (m *mesh) dispatch() {
	m.fn(0)
}

func spin() {}

// onlyCalled shares the literal's signature but is merely called, never
// referenced as a value: it must NOT become a function-value target.
func onlyCalled(i int) {}

// Caller invokes onlyCalled in call position (both forms: plain ident
// and package-qualified selectors elsewhere resolve the same way).
func Caller() { onlyCalled(1) }
