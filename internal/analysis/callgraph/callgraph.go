// Package callgraph builds a static call graph over a set of loaded,
// type-checked packages (internal/analysis.Package) for the contract
// propagation pass (contractflow). It is deliberately scoped: nodes are
// the functions, methods, and function literals *declared in the given
// package universe*; calls that leave the universe (into the standard
// library, internal/stats, ...) produce no edges. Within the universe
// the graph is a sound over-approximation of the runtime call relation:
//
//   - static calls and concrete method calls produce exact edges;
//   - interface method calls produce edges to every method of every
//     universe type that satisfies the interface (structural matching by
//     fully-qualified signature strings, so satisfaction is recognised
//     across independently type-checked packages, where types.Implements
//     would compare unrelated object instances);
//   - calls through function values (fields, variables, parameters)
//     produce edges to every *address-taken* function or literal in the
//     universe with an identical signature — a function never referenced
//     as a value cannot be called through one;
//   - `go f(...)` and `defer f(...)` are calls; go-spawned callees are
//     additionally marked (they root new goroutines, which matters for
//     entry-point classification).
//
// Because each package is type-checked against gc export data rather
// than in one shared type universe, *types.Func pointer identity does
// not hold across packages: the same noc function is a different object
// seen from telemetry's imports. Nodes are therefore keyed by the
// stable "<pkgpath>.<recv>.<name>" string, which is identical however
// the function is reached.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"github.com/catnap-noc/catnap/internal/analysis"
)

// EdgeKind classifies how a call site reaches its callee.
type EdgeKind int

// Edge kinds, from most to least precise.
const (
	KindStatic    EdgeKind = iota // direct function or concrete-method call
	KindInterface                 // interface method call (over-approximated)
	KindFuncValue                 // call through a function value (over-approximated)
	KindGo                        // go statement (static resolution, new goroutine)
)

func (k EdgeKind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindInterface:
		return "interface"
	case KindFuncValue:
		return "func-value"
	case KindGo:
		return "go"
	}
	return "unknown"
}

// Node is one function, method, or function literal declared in the
// universe.
type Node struct {
	// Key is the stable cross-package identity: "<pkgpath>.<recv>.<name>"
	// for declared functions, "<pkgpath>.<file>:<line>" for literals.
	Key string
	// Decl is the declaration, nil for function literals and the
	// synthetic per-package init node.
	Decl *ast.FuncDecl
	// Lit is the literal, nil for declared functions.
	Lit *ast.FuncLit
	// Parent is the enclosing node for literals (the function whose body
	// lexically contains them), nil otherwise.
	Parent *Node
	// PkgPath is the declaring package's import path.
	PkgPath string
	// Pos is the declaration (or literal) position.
	Pos token.Pos
	// GoSpawned marks functions that appear as the callee of a go
	// statement somewhere in the universe: they root goroutines and are
	// therefore entry points even without in-graph callers.
	GoSpawned bool
	// Out and In are the call edges, sorted by call-site position.
	Out []*Edge
	In  []*Edge

	name string
}

// IsLiteral reports whether the node is a function literal.
func (n *Node) IsLiteral() bool { return n.Lit != nil }

// Name returns a short human-readable name: "(*Router).route" for
// methods, "NewPacket" for functions, "func@router.go:42" for literals.
func (n *Node) Name() string { return n.name }

// Edge is one call site: From's body calls To at Pos.
type Edge struct {
	From, To *Node
	Pos      token.Pos
	Kind     EdgeKind
}

// Graph is the package-universe call graph.
type Graph struct {
	// Nodes in deterministic order (package path, then position).
	Nodes []*Node
	// Fset positions every node and edge.
	Fset *token.FileSet

	byKey map[string]*Node
}

// NodeByKey returns the node with the given stable key, or nil.
func (g *Graph) NodeByKey(key string) *Node { return g.byKey[key] }

// FuncKey returns the stable cross-package key for a declared function
// or method, or "" when it has no package (builtins, error.Error).
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return fn.Pkg().Path() + ".?." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// qualifier prints package paths in full so type strings are comparable
// across independently type-checked packages.
func qualifier(p *types.Package) string { return p.Path() }

// sigString renders a signature with the receiver stripped and every
// parameter and result name erased, fully qualified — the structural
// identity used for interface-satisfaction and function-value matching.
// Name erasure matters: types.TypeString keeps declared names, so the
// field type `func(int)` and the literal `func(i int)` would otherwise
// print differently and never match.
func sigString(sig *types.Signature) string {
	norm := types.NewSignatureType(nil, nil, nil,
		unnamedTuple(sig.Params()), unnamedTuple(sig.Results()), sig.Variadic())
	return types.TypeString(norm, qualifier)
}

// unnamedTuple rebuilds a parameter/result tuple with blank names,
// keeping only the types.
func unnamedTuple(t *types.Tuple) *types.Tuple {
	if t == nil || t.Len() == 0 {
		return nil
	}
	vars := make([]*types.Var, t.Len())
	for i := 0; i < t.Len(); i++ {
		vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
	}
	return types.NewTuple(vars...)
}

// methodID qualifies unexported method names by package so they only
// match within their declaring package, mirroring the spec's method-set
// rules.
func methodID(pkg *types.Package, name string) string {
	if !token.IsExported(name) && pkg != nil {
		return pkg.Path() + "." + name
	}
	return name
}

// ifaceCall records one unresolved interface method call.
type ifaceCall struct {
	from *Node
	pos  token.Pos
	kind EdgeKind
	id   string // methodID of the called method
	sig  string // sigString of the called method
}

// fvCall records one unresolved call through a function value.
type fvCall struct {
	from *Node
	pos  token.Pos
	kind EdgeKind
	sig  string
}

// builder accumulates graph state across packages.
type builder struct {
	fset  *token.FileSet
	graph *Graph
	// concrete named types declared in the universe, for interface
	// resolution: methodSets[typeKey] maps methodID -> (sigString, FuncKey).
	methodSets []methodSet
	// addrTaken maps a declared function's key to true when it is
	// referenced as a value anywhere in the universe.
	addrTaken map[string]bool
	// addrTakenIfaces holds interface method values (`x.M` with x an
	// interface, not called): every satisfying implementation's method
	// becomes address-taken at resolution time.
	addrTakenIfaces []ifaceCall
	ifaceCalls      []ifaceCall
	fvCalls         []fvCall
	// litsBySig groups literal nodes by signature string for
	// function-value resolution.
	litsBySig map[string][]*Node
	// declSigs maps a declared function's key to its receiver-stripped
	// signature string.
	declSigs map[string]string
}

type methodSet struct {
	pkgPath string
	typeKey string
	methods map[string]methodInfo // methodID -> info
}

type methodInfo struct {
	sig     string
	funcKey string
}

// Build constructs the call graph over every package for which inScope
// returns true. Packages outside the scope contribute neither nodes nor
// resolution candidates.
func Build(pkgs []*analysis.Package, inScope func(pkgPath string) bool) *Graph {
	var scoped []*analysis.Package
	for _, p := range pkgs {
		if inScope(p.Path) {
			scoped = append(scoped, p)
		}
	}
	b := &builder{
		graph:     &Graph{byKey: make(map[string]*Node)},
		addrTaken: make(map[string]bool),
		litsBySig: make(map[string][]*Node),
		declSigs:  make(map[string]string),
	}
	if len(scoped) > 0 {
		b.fset = scoped[0].Fset
		b.graph.Fset = scoped[0].Fset
	}
	// Pass 1: declare nodes and collect the concrete-type method sets.
	for _, pkg := range scoped {
		b.declare(pkg)
	}
	// Pass 2: walk bodies, emitting static edges and recording
	// interface / function-value calls for resolution.
	for _, pkg := range scoped {
		b.walkPackage(pkg)
	}
	b.resolve()
	b.finish()
	return b.graph
}

// declare registers a node per function declaration and records the
// method sets of the package's named types.
func (b *builder) declare(pkg *analysis.Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := FuncKey(fn)
			if key == "" || b.graph.byKey[key] != nil {
				continue
			}
			n := &Node{
				Key:     key,
				Decl:    fd,
				PkgPath: pkg.Path,
				Pos:     fd.Name.Pos(),
				name:    declName(fn),
			}
			b.graph.byKey[key] = n
			b.graph.Nodes = append(b.graph.Nodes, n)
			b.declSigs[key] = sigString(fn.Type().(*types.Signature))
		}
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		ms := methodSet{
			pkgPath: pkg.Path,
			typeKey: pkg.Path + "." + tn.Name(),
			methods: make(map[string]methodInfo),
		}
		// The pointer method set includes value-receiver methods, so it
		// is the most permissive satisfaction check; interface values of
		// value type are a subset.
		mset := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < mset.Len(); i++ {
			m, ok := mset.At(i).Obj().(*types.Func)
			if !ok {
				continue
			}
			sig, ok := m.Type().(*types.Signature)
			if !ok {
				continue
			}
			ms.methods[methodID(m.Pkg(), m.Name())] = methodInfo{
				sig:     sigString(sig),
				funcKey: FuncKey(m),
			}
		}
		b.methodSets = append(b.methodSets, ms)
	}
}

// declName renders a declared function's display name.
func declName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + star + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Name()
}

// walkPackage walks every function body and package-level initializer.
func (b *builder) walkPackage(pkg *analysis.Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
				if !ok || d.Body == nil {
					continue
				}
				n := b.graph.byKey[FuncKey(fn)]
				if n == nil {
					continue
				}
				b.walkBody(pkg, n, d.Body)
			case *ast.GenDecl:
				// Package-level initializers can reference functions
				// (address-taken) and contain literals; attribute them to
				// a synthetic per-package init node.
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						b.walkBody(pkg, b.initNode(pkg, v.Pos()), v)
					}
				}
			}
		}
	}
}

// initNode returns (creating on first use) the package's synthetic
// initializer node.
func (b *builder) initNode(pkg *analysis.Package, pos token.Pos) *Node {
	key := pkg.Path + ".<init>"
	if n := b.graph.byKey[key]; n != nil {
		return n
	}
	n := &Node{Key: key, PkgPath: pkg.Path, Pos: pos, name: "<init>"}
	b.graph.byKey[key] = n
	b.graph.Nodes = append(b.graph.Nodes, n)
	return n
}

// walkBody walks one body (or initializer expression), attributing call
// sites to cur, descending into literals with their own nodes.
func (b *builder) walkBody(pkg *analysis.Package, cur *Node, body ast.Node) {
	// funs collects the expressions occupying call position, so the
	// address-taken scan below can tell `f()` from `g(f)`.
	funs := make(map[ast.Expr]bool)
	var walk func(n ast.Node, cur *Node)
	walk = func(n ast.Node, cur *Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				lit := b.litNode(pkg, cur, x)
				walk(x.Body, lit)
				return false
			case *ast.GoStmt:
				b.call(pkg, cur, x.Call, KindGo)
				funs[unparen(x.Call.Fun)] = true
				for _, a := range x.Call.Args {
					walk(a, cur)
				}
				walk(x.Call.Fun, cur) // selector base may contain calls
				return false
			case *ast.CallExpr:
				b.call(pkg, cur, x, KindStatic)
				funs[unparen(x.Fun)] = true
				return true
			case *ast.Ident:
				if !funs[x] {
					b.identRef(pkg, x)
				}
			case *ast.SelectorExpr:
				// Handle selectors manually and never descend into Sel: the
				// method-name ident resolves to a *types.Func via Info.Uses,
				// and letting the generic ident case see it would mark every
				// *called* method address-taken.
				if !funs[x] {
					b.selectorRef(pkg, x)
				}
				walk(x.X, cur)
				return false
			}
			return true
		})
	}
	walk(body, cur)
}

// litNode creates the node for one function literal.
func (b *builder) litNode(pkg *analysis.Package, parent *Node, lit *ast.FuncLit) *Node {
	pos := b.fset.Position(lit.Pos())
	key := fmt.Sprintf("%s.%s:%d:%d", pkg.Path, filepath.Base(pos.Filename), pos.Line, pos.Column)
	n := &Node{
		Key:     key,
		Lit:     lit,
		Parent:  parent,
		PkgPath: pkg.Path,
		Pos:     lit.Pos(),
		name:    fmt.Sprintf("func@%s:%d", filepath.Base(pos.Filename), pos.Line),
	}
	b.graph.byKey[key] = n
	b.graph.Nodes = append(b.graph.Nodes, n)
	if sig, ok := pkg.Info.TypeOf(lit).(*types.Signature); ok {
		s := sigString(sig)
		b.litsBySig[s] = append(b.litsBySig[s], n)
	}
	return n
}

// identRef marks a plain identifier referencing a function in value
// position as address-taken.
func (b *builder) identRef(pkg *analysis.Package, e *ast.Ident) {
	if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
		if key := FuncKey(fn); key != "" {
			b.addrTaken[key] = true
		}
	}
}

// selectorRef marks a selector referencing a function or method in value
// position (method value, method expression, package-qualified function)
// as address-taken. Interface method values make every satisfying
// implementation address-taken at resolution time.
func (b *builder) selectorRef(pkg *analysis.Package, e *ast.SelectorExpr) {
	sel := pkg.Info.Selections[e]
	if sel == nil {
		// Package-qualified reference pkg.F in value position.
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			if key := FuncKey(fn); key != "" {
				b.addrTaken[key] = true
			}
		}
		return
	}
	switch sel.Kind() {
	case types.MethodVal, types.MethodExpr:
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			return
		}
		if recvIsInterface(sel) {
			if sig, ok := fn.Type().(*types.Signature); ok {
				b.addrTakenIfaces = append(b.addrTakenIfaces, ifaceCall{
					id:  methodID(fn.Pkg(), fn.Name()),
					sig: sigString(sig),
				})
			}
			return
		}
		if key := FuncKey(fn); key != "" {
			b.addrTaken[key] = true
		}
	}
}

// call classifies one call expression and records the edge (static) or
// the pending resolution (interface / function value).
func (b *builder) call(pkg *analysis.Package, from *Node, call *ast.CallExpr, kind EdgeKind) {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	fun := unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[f].(type) {
		case *types.Builtin, nil:
			return
		case *types.Func:
			b.staticEdge(from, obj, call.Pos(), kind)
			return
		default:
			// Variable or parameter of function type.
			b.funcValueCall(pkg, from, call, kind)
			return
		}
	case *ast.SelectorExpr:
		sel := pkg.Info.Selections[f]
		if sel == nil {
			// Package-qualified call pkg.F(...) or pkg.Var(...).
			switch obj := pkg.Info.Uses[f.Sel].(type) {
			case *types.Func:
				b.staticEdge(from, obj, call.Pos(), kind)
			default:
				b.funcValueCall(pkg, from, call, kind)
			}
			return
		}
		switch sel.Kind() {
		case types.MethodVal:
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			if recvIsInterface(sel) {
				if sig, ok := fn.Type().(*types.Signature); ok {
					b.ifaceCalls = append(b.ifaceCalls, ifaceCall{
						from: from,
						pos:  call.Pos(),
						kind: ifaceKind(kind),
						id:   methodID(fn.Pkg(), fn.Name()),
						sig:  sigString(sig),
					})
				}
				return
			}
			b.staticEdge(from, fn, call.Pos(), kind)
			return
		case types.FieldVal:
			// Call through a struct field of function type.
			b.funcValueCall(pkg, from, call, kind)
			return
		case types.MethodExpr:
			if fn, ok := sel.Obj().(*types.Func); ok {
				b.staticEdge(from, fn, call.Pos(), kind)
			}
			return
		}
	default:
		// Call of a call result, index expression, etc.: a function
		// value of some shape.
		b.funcValueCall(pkg, from, call, kind)
	}
}

// ifaceKind preserves the go-statement marker through interface calls.
func ifaceKind(k EdgeKind) EdgeKind {
	if k == KindGo {
		return KindGo
	}
	return KindInterface
}

// funcValueCall records a call through a function value for resolution
// against the address-taken set.
func (b *builder) funcValueCall(pkg *analysis.Package, from *Node, call *ast.CallExpr, kind EdgeKind) {
	sig, ok := pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	k := KindFuncValue
	if kind == KindGo {
		k = KindGo
	}
	b.fvCalls = append(b.fvCalls, fvCall{from: from, pos: call.Pos(), kind: k, sig: sigString(sig)})
}

// staticEdge adds a direct edge when the callee is declared in the
// universe; out-of-universe callees are dropped.
func (b *builder) staticEdge(from *Node, fn *types.Func, pos token.Pos, kind EdgeKind) {
	to := b.graph.byKey[FuncKey(fn)]
	if to == nil || from == nil {
		return
	}
	e := &Edge{From: from, To: to, Pos: pos, Kind: kind}
	from.Out = append(from.Out, e)
	to.In = append(to.In, e)
	if kind == KindGo {
		to.GoSpawned = true
	}
}

// recvIsInterface reports whether a method selection dispatches through
// an interface.
func recvIsInterface(sel *types.Selection) bool {
	return types.IsInterface(sel.Recv())
}

// resolve turns the recorded interface and function-value calls into
// over-approximated edges.
func (b *builder) resolve() {
	// Interface method values make implementations address-taken.
	for _, iv := range b.addrTakenIfaces {
		for _, ms := range b.methodSets {
			if mi, ok := ms.methods[iv.id]; ok && mi.sig == iv.sig {
				b.addrTaken[mi.funcKey] = true
			}
		}
	}
	// Interface calls: edge to every universe method with the same
	// (possibly package-qualified) name and identical signature. This is
	// name+signature matching rather than full interface satisfaction:
	// strictly coarser, therefore still sound as an over-approximation,
	// and robust across independently type-checked packages.
	for _, ic := range b.ifaceCalls {
		for _, ms := range b.methodSets {
			mi, ok := ms.methods[ic.id]
			if !ok || mi.sig != ic.sig {
				continue
			}
			if to := b.graph.byKey[mi.funcKey]; to != nil {
				e := &Edge{From: ic.from, To: to, Pos: ic.pos, Kind: ic.kind}
				ic.from.Out = append(ic.from.Out, e)
				to.In = append(to.In, e)
				if ic.kind == KindGo {
					to.GoSpawned = true
				}
			}
		}
	}
	// Function-value calls: edge to every address-taken declared
	// function and every literal with an identical signature.
	for _, fc := range b.fvCalls {
		for key := range b.addrTaken {
			if b.declSigs[key] != fc.sig {
				continue
			}
			if to := b.graph.byKey[key]; to != nil {
				e := &Edge{From: fc.from, To: to, Pos: fc.pos, Kind: fc.kind}
				fc.from.Out = append(fc.from.Out, e)
				to.In = append(to.In, e)
				if fc.kind == KindGo {
					to.GoSpawned = true
				}
			}
		}
		for _, to := range b.litsBySig[fc.sig] {
			e := &Edge{From: fc.from, To: to, Pos: fc.pos, Kind: fc.kind}
			fc.from.Out = append(fc.from.Out, e)
			to.In = append(to.In, e)
			if fc.kind == KindGo {
				to.GoSpawned = true
			}
		}
	}
}

// finish sorts nodes and edges into deterministic order and deduplicates
// parallel edges (same from, to, and position).
func (b *builder) finish() {
	g := b.graph
	sort.Slice(g.Nodes, func(i, j int) bool {
		if g.Nodes[i].PkgPath != g.Nodes[j].PkgPath {
			return g.Nodes[i].PkgPath < g.Nodes[j].PkgPath
		}
		return g.Nodes[i].Pos < g.Nodes[j].Pos
	})
	for _, n := range g.Nodes {
		n.Out = dedupe(n.Out)
		n.In = dedupe(n.In)
	}
}

// dedupe sorts edges by (pos, to-key) and removes duplicates.
func dedupe(edges []*Edge) []*Edge {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Pos != edges[j].Pos {
			return edges[i].Pos < edges[j].Pos
		}
		if edges[i].To.Key != edges[j].To.Key {
			return edges[i].To.Key < edges[j].To.Key
		}
		return edges[i].From.Key < edges[j].From.Key
	})
	var out []*Edge
	for _, e := range edges {
		if len(out) > 0 {
			last := out[len(out)-1]
			if last.Pos == e.Pos && last.To == e.To && last.From == e.From {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ChainString renders a call chain for diagnostics: "Step → routeOne →
// newGrantSet".
func ChainString(chain []*Node) string {
	names := make([]string, len(chain))
	for i, n := range chain {
		names[i] = n.Name()
	}
	return strings.Join(names, " → ")
}
