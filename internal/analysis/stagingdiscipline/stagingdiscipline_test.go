package stagingdiscipline

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/analysis/analysistest"
)

func TestStagingdiscipline(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/noc")
}
