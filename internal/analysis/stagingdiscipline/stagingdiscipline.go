// Package stagingdiscipline encodes the sharded router phase's
// commit-queue rule (DESIGN.md "Sharded router phase") as a checked
// property: during the concurrent router phase, a router may mutate only
// its own state — every cross-router effect must be staged in the
// shard's commit queue and replayed by the designated apply functions
// after the barrier.
//
// Functions that run inside the concurrent phase are annotated
// //catnap:shard-phase. Within one, the analyzer flags
//
//   - writes (assignment, ++/--) whose access path reaches through a
//     *Subnet or *Network value, or through a Router other than the
//     method's own receiver, and
//   - calls to pointer-receiver methods on such values (the stage*/
//     note*/wake mutators),
//
// unless the statement sits where the commit queue is provably nil — the
// else branch of an `if cq != nil` test, the body of `if cq == nil`, or
// after an `if cq != nil { ...; return }` early exit — i.e. on the
// sequential path, where direct writes are the norm. Calls to functions
// themselves annotated //catnap:shard-phase (the phase's own entry
// points) or //catnap:staging-safe (audited read-only helpers) are
// exempt, as are the //catnap:commit-apply functions, which are the
// designated post-barrier appliers and run single-threaded.
//
// Independently of the commit-queue state, a shard-phase function must
// never call a //catnap:quiescent-only function (the idle fast-forward
// entry points: the quiescence oracle, the event lookahead, the skip
// itself). Those read cross-subnet aggregates with no staging and assume
// the network sits between cycles, so they are flagged even on the
// sequential (cq == nil) path.
//
// The analysis is per-function and branch-sensitive only with respect to
// nil tests of *commitQueue-typed variables; it does not chase calls. It
// polices internal/noc, where the sharded phase lives.
package stagingdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/catnap-noc/catnap/internal/analysis"
)

// Analyzer is the stagingdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "stagingdiscipline",
	Doc:  "require sharded-phase code to stage cross-router effects in the commit queue",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageInScope(pass.Pkg.Path(), "internal/noc") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasAnnotation(fd, "shard-phase") {
				continue
			}
			if analysis.HasAnnotation(fd, "commit-apply") {
				continue // designated applier: direct writes are its job
			}
			c := &checker{pass: pass, recv: receiverObj(pass, fd)}
			c.block(fd.Body.List, false)
		}
	}
	return nil
}

// checker walks one shard-phase function.
type checker struct {
	pass *analysis.Pass
	recv types.Object // the method receiver, exempt from the foreign test
}

// block walks a statement list in order. cqNil records whether every
// commit-queue variable is known nil on this path (the sequential mode),
// which licenses direct writes.
func (c *checker) block(stmts []ast.Stmt, cqNil bool) {
	for _, s := range stmts {
		cqNil = c.stmt(s, cqNil)
	}
}

// stmt checks one statement and returns the cqNil state that holds
// after it (an `if cq != nil { ...; return }` proves nil-ness for the
// remainder of the enclosing block).
func (c *checker) stmt(s ast.Stmt, cqNil bool) bool {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, cqNil)
		}
		c.checkExpr(s.Cond, cqNil)
		switch nilTest(c.pass, s.Cond) {
		case cqNotNil:
			c.block(s.Body.List, false)
			if s.Else != nil {
				c.elseStmt(s.Else, true)
			}
			if terminates(s.Body) {
				return true // the staged path exited: nil from here on
			}
			return cqNil
		case cqIsNil:
			c.block(s.Body.List, true)
			if s.Else != nil {
				c.elseStmt(s.Else, false)
			}
			return cqNil
		default:
			c.block(s.Body.List, cqNil)
			if s.Else != nil {
				c.elseStmt(s.Else, cqNil)
			}
			return cqNil
		}
	case *ast.BlockStmt:
		c.block(s.List, cqNil)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, cqNil)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, cqNil)
		}
		if s.Post != nil {
			c.stmt(s.Post, cqNil)
		}
		c.block(s.Body.List, cqNil)
	case *ast.RangeStmt:
		c.checkExpr(s.X, cqNil)
		c.block(s.Body.List, cqNil)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, cqNil)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, cqNil)
		}
		for _, cc := range s.Body.List {
			c.block(cc.(*ast.CaseClause).Body, cqNil)
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			c.block(cc.(*ast.CaseClause).Body, cqNil)
		}
	default:
		c.checkStmtEffects(s, cqNil)
	}
	return cqNil
}

// elseStmt handles an else arm, which is either a block or a chained if.
func (c *checker) elseStmt(s ast.Stmt, cqNil bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.block(s.List, cqNil)
	default:
		c.stmt(s, cqNil)
	}
}

// checkStmtEffects inspects a leaf statement for writes and calls.
func (c *checker) checkStmtEffects(s ast.Stmt, cqNil bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Tok != token.DEFINE {
			for _, lhs := range s.Lhs {
				if !cqNil && c.foreignPath(lhs) {
					c.pass.Reportf(s.Pos(),
						"direct write to %s during the sharded router phase: stage the effect in the commit queue (or guard with `if cq == nil`)", types.ExprString(lhs))
				}
			}
		}
		for _, rhs := range s.Rhs {
			c.checkExpr(rhs, cqNil)
		}
	case *ast.IncDecStmt:
		if !cqNil && c.foreignPath(s.X) {
			c.pass.Reportf(s.Pos(),
				"direct update of %s during the sharded router phase: stage the effect in the commit queue (or guard with `if cq == nil`)", types.ExprString(s.X))
		}
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				c.checkCall(call, cqNil)
			}
			return true
		})
	}
}

// checkExpr inspects an expression subtree for calls.
func (c *checker) checkExpr(e ast.Expr, cqNil bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			c.checkCall(call, cqNil)
		}
		return true
	})
}

// checkCall flags calls to quiescent-only functions (on any path), and
// pointer-receiver method calls on foreign simulator state outside the
// nil-queue (sequential) path.
func (c *checker) checkCall(call *ast.CallExpr, cqNil bool) {
	if fn := calleeFunc(c.pass, call); fn != nil {
		if fd := c.pass.FuncDeclOf(fn); fd != nil && analysis.HasAnnotation(fd, "quiescent-only") {
			c.pass.Reportf(call.Pos(),
				"call to %s during the sharded router phase: quiescent-only functions assume the network sits between cycles", fn.Name())
			return
		}
	}
	if cqNil {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := c.pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return
	}
	if _, ptr := sig.Recv().Type().(*types.Pointer); !ptr {
		return // value receiver: cannot mutate the callee
	}
	if !c.foreignValue(sel.X) {
		return
	}
	if fd := c.pass.FuncDeclOf(fn); fd != nil &&
		(analysis.HasAnnotation(fd, "shard-phase") || analysis.HasAnnotation(fd, "staging-safe")) {
		return
	}
	c.pass.Reportf(call.Pos(),
		"call to %s.%s during the sharded router phase mutates state outside this router: stage the effect in the commit queue", types.ExprString(sel.X), fn.Name())
}

// calleeFunc resolves a call's static callee: a package-level function,
// or a method named through a selector. Interface and function-value
// calls resolve to nil (no declaration to carry an annotation).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s := pass.TypesInfo.Selections[fun]; s != nil {
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// foreignPath reports whether any step of expr's access path lands on
// foreign simulator state (see foreignValue), peeling selectors,
// indexing, derefs and parens.
func (c *checker) foreignPath(expr ast.Expr) bool {
	for {
		if c.foreignValue(expr) {
			return true
		}
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// foreignValue reports whether expr denotes simulator state a sharded
// router phase must not touch directly: a Subnet or Network, or a Router
// other than the method's own receiver.
func (c *checker) foreignValue(expr ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	switch n.Obj().Name() {
	case "Subnet", "Network":
		if id, ok := expr.(*ast.Ident); ok && c.recv != nil && c.pass.TypesInfo.Uses[id] == c.recv {
			return false // the method's own receiver
		}
		return true
	case "Router":
		if id, ok := expr.(*ast.Ident); ok && c.recv != nil && c.pass.TypesInfo.Uses[id] == c.recv {
			return false
		}
		return true
	}
	return false
}

// nil-test classification of an if condition against *commitQueue vars.
type nilKind int

const (
	cqNone nilKind = iota
	cqIsNil
	cqNotNil
)

// nilTest recognises `cq == nil` and `cq != nil` where cq has type
// *commitQueue.
func nilTest(pass *analysis.Pass, cond ast.Expr) nilKind {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return cqNone
	}
	x, y := bin.X, bin.Y
	if isNilIdent(pass, x) {
		x, y = y, x
	}
	if !isNilIdent(pass, y) || !isCommitQueuePtr(pass, x) {
		return cqNone
	}
	if bin.Op == token.EQL {
		return cqIsNil
	}
	return cqNotNil
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("nil")
}

func isCommitQueuePtr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == "commitQueue"
}

// terminates reports whether a block's last statement unconditionally
// leaves the enclosing block (return, break/continue/goto, or panic) —
// the early-exit shape that proves cq == nil for the statements after an
// `if cq != nil { ...; return }`.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// receiverObj returns the types.Object of fd's receiver, or nil.
func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}
