// Package noc is stagingdiscipline's golden test package: minimal
// Network/Subnet/Router/commitQueue shapes mirroring the simulator's,
// exercising the commit-queue guard analysis branch by branch.
package noc

type commitQueue struct {
	credits []int
	wakes   []int
}

// Network mirrors the simulator's top-level type name.
type Network struct {
	cycles int64
}

// Subnet mirrors the simulator's per-subnetwork type name.
type Subnet struct {
	net      *Network
	buffered int
}

func (s *Subnet) stageCredit(c int) { s.buffered += c }

// Router mirrors the simulator's per-node type name.
type Router struct {
	sub  *Subnet
	occ  int
	cq   *commitQueue
	seen int64
}

//catnap:shard-phase
func (r *Router) badDirect(now int64) {
	r.occ++                // own state: allowed
	r.sub.buffered--       // want `direct update of r\.sub\.buffered during the sharded router phase`
	r.sub.net.cycles = now // want `direct write to r\.sub\.net\.cycles during the sharded router phase`
	r.sub.stageCredit(1)   // want `call to r\.sub\.stageCredit during the sharded router phase mutates state`
}

//catnap:shard-phase
func (r *Router) guarded() {
	cq := r.cq
	if cq != nil {
		cq.credits = append(cq.credits, 1) // staging into the queue: allowed
		r.sub.buffered--                   // want `direct update of r\.sub\.buffered`
	} else {
		r.sub.buffered-- // sequential path, queue known nil: allowed
	}
}

//catnap:shard-phase
func (r *Router) earlyReturn() {
	cq := r.cq
	if cq != nil {
		cq.wakes = append(cq.wakes, 1)
		return
	}
	// The staged path exited above, so this is the sequential path.
	r.sub.buffered--
	r.sub.stageCredit(2)
}

//catnap:shard-phase
func (r *Router) foreignRouter(dr *Router, now int64) {
	dr.seen = now // want `direct write to dr\.seen during the sharded router phase`
}

// apply is the designated post-barrier applier: direct writes are its
// job, so the checker skips it entirely.
//
//catnap:shard-phase
//catnap:commit-apply
func (s *Subnet) apply(rs []Router, now int64) {
	rs[0].occ++
	s.net.cycles = now
}

//catnap:shard-phase
func (r *Router) callsAnnotated(dr *Router) {
	dr.phaseStep() // callee is shard-phase: allowed
	dr.readOnly()  // callee is staging-safe: allowed
}

//catnap:shard-phase
func (r *Router) phaseStep() { r.occ++ }

// readOnly is an audited read-only helper.
//
//catnap:staging-safe
func (r *Router) readOnly() {}

func (r *Router) unannotated() {
	r.sub.buffered-- // not a shard-phase function: allowed
}

// TrySkipIdle mirrors the idle fast-forward entry points: callable only
// between cycles, never from inside the concurrent router phase.
//
//catnap:quiescent-only
func (n *Network) TrySkipIdle(target int64) int64 { return 0 }

//catnap:quiescent-only
func nextEventCycle(n *Network) int64 { return 0 }

//catnap:shard-phase
func (r *Router) callsQuiescentOnly(now int64) {
	r.sub.net.TrySkipIdle(now) // want `call to TrySkipIdle during the sharded router phase: quiescent-only`
	cq := r.cq
	if cq == nil {
		// The sequential path licenses direct writes, but not
		// quiescent-only calls: the phase is still mid-cycle.
		_ = nextEventCycle(r.sub.net) // want `call to nextEventCycle during the sharded router phase: quiescent-only`
	}
}

func (r *Router) skipsBetweenCycles(now int64) {
	r.sub.net.TrySkipIdle(now) // not shard-phase: allowed
}
