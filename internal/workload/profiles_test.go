package workload

import (
	"math"
	"testing"
)

// TestTable3Averages pins the mix MPKI averages to the paper's Table 3.
func TestTable3Averages(t *testing.T) {
	for _, m := range Mixes {
		avg, err := m.AverageMPKI()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if math.Abs(avg-m.PaperMPKI) > 0.01 {
			t.Errorf("%s average MPKI = %.2f, want %.1f", m.Name, avg, m.PaperMPKI)
		}
	}
}

// TestMixOrdering: the four mixes must be strictly ordered by demand.
func TestMixOrdering(t *testing.T) {
	prev := -1.0
	for _, m := range Mixes {
		avg, _ := m.AverageMPKI()
		if avg <= prev {
			t.Errorf("mix %s MPKI %.2f not greater than previous %.2f", m.Name, avg, prev)
		}
		prev = avg
	}
}

func TestProfileLibrary(t *testing.T) {
	if len(Profiles) != 35 {
		t.Errorf("profile library has %d applications, want 35 (paper §6.2)", len(Profiles))
	}
	seen := map[string]bool{}
	for i := range Profiles {
		p := &Profiles[i]
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.L1MPKI < 0 || p.L2MPKI < 0 || p.L2MPKI > p.L1MPKI {
			t.Errorf("%s: implausible MPKIs L1=%.2f L2=%.2f (L2 misses are a subset of L1 misses)", p.Name, p.L1MPKI, p.L2MPKI)
		}
		if p.PeakIPC <= 0 || p.PeakIPC > 2 {
			t.Errorf("%s: peak IPC %.2f outside (0, 2] for a 2-wide core", p.Name, p.PeakIPC)
		}
		if p.BurstRatio < 1 {
			t.Errorf("%s: burst ratio %.2f < 1", p.Name, p.BurstRatio)
		}
		if p.BurstFrac < 0 || p.BurstFrac > 1 || p.WriteFrac < 0 || p.WriteFrac > 1 || p.SharedFrac < 0 || p.SharedFrac > 1 {
			t.Errorf("%s: fraction out of range", p.Name)
		}
	}
	// Every benchmark referenced by a mix must exist.
	for _, m := range Mixes {
		if len(m.Benchmarks) != 8 {
			t.Errorf("%s: %d benchmarks, want 8", m.Name, len(m.Benchmarks))
		}
		for _, b := range m.Benchmarks {
			if _, err := ByName(b); err != nil {
				t.Errorf("%s: %v", m.Name, err)
			}
		}
	}
}

func TestCoreAssignment(t *testing.T) {
	m, err := MixByName("Heavy")
	if err != nil {
		t.Fatal(err)
	}
	assign, err := m.CoreAssignment(256)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 256 {
		t.Fatalf("got %d assignments", len(assign))
	}
	// 32 contiguous instances per benchmark.
	counts := map[string]int{}
	for _, p := range assign {
		counts[p.Name]++
	}
	for _, b := range m.Benchmarks {
		if counts[b] != 32 {
			t.Errorf("%s: %d instances, want 32", b, counts[b])
		}
	}
	if _, err := m.CoreAssignment(100); err == nil {
		t.Error("CoreAssignment(100) should fail for 8 benchmarks")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nosuch"); err == nil {
		t.Error("want error for unknown benchmark")
	}
	if _, err := MixByName("nosuch"); err == nil {
		t.Error("want error for unknown mix")
	}
}
