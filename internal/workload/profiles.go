// Package workload defines the 35 application profiles and the four
// multiprogrammed workload mixes of the paper's Table 3.
//
// The paper drives its simulator with Pin-collected instruction traces of
// SPEC CPU2006, SPLASH-2, SpecOMP and four commercial applications. Those
// traces are proprietary, so this reproduction substitutes per-benchmark
// *statistical profiles*: miss rates (the only thing the network ever sees
// from a trace), phase burstiness, and coherence behaviour. Profile MPKI
// values are calibrated so that each Table 3 mix reproduces the paper's
// reported average MPKI exactly (Light 3.9, Medium-Light 7.8, Medium-Heavy
// 11.7, Heavy 39.0, where a benchmark's MPKI is its L1-MPKI + L2-MPKI);
// individual values are plausible for the benchmark but are synthetic —
// see DESIGN.md §2.
package workload

import "fmt"

// Profile is the statistical description of one application's memory
// behaviour, replayed by the closed-loop core model (internal/cpusim).
type Profile struct {
	// Name is the benchmark's conventional name.
	Name string
	// Suite records the benchmark's origin (documentation only).
	Suite string
	// L1MPKI is the L1 misses per kilo-instruction: every one is a
	// network request to the block's L2 home node.
	L1MPKI float64
	// L2MPKI is the L2 misses per kilo-instruction: the subset of L1
	// misses that also miss the distributed L2 and go to memory.
	L2MPKI float64
	// BurstRatio is the high-phase to low-phase MPKI ratio; applications
	// with strong phase behaviour (§1: "bursty network traffic") have
	// large ratios. 1 disables phases.
	BurstRatio float64
	// BurstFrac is the long-run fraction of time spent in the high phase.
	BurstFrac float64
	// WriteFrac is the fraction of misses that are stores (GetM); they
	// produce writeback traffic on eviction.
	WriteFrac float64
	// SharedFrac is the fraction of misses to blocks owned by another
	// core's L1, requiring the 4-hop forward path through the directory.
	SharedFrac float64
	// PeakIPC is the core's instruction throughput when no miss stalls it
	// (≤ the 2-wide issue width).
	PeakIPC float64
}

// MPKI returns the benchmark's total misses per kilo-instruction, the
// quantity Table 3 averages (L1-MPKI + L2-MPKI).
func (p *Profile) MPKI() float64 { return p.L1MPKI + p.L2MPKI }

// profile builds a Profile from a total MPKI (the Table 3 quantity,
// L1-MPKI + L2-MPKI) and an L2-miss ratio (the fraction of L1 misses that
// also miss the L2, so L2MPKI = ratio × L1MPKI and L2 ⊆ L1 always holds).
func profile(name, suite string, totalMPKI, l2Ratio, burstRatio, burstFrac, writeFrac, sharedFrac, peakIPC float64) Profile {
	return Profile{
		Name:       name,
		Suite:      suite,
		L1MPKI:     totalMPKI / (1 + l2Ratio),
		L2MPKI:     totalMPKI * l2Ratio / (1 + l2Ratio),
		BurstRatio: burstRatio,
		BurstFrac:  burstFrac,
		WriteFrac:  writeFrac,
		SharedFrac: sharedFrac,
		PeakIPC:    peakIPC,
	}
}

// Profiles is the library of 35 applications (SPEC CPU2006, SPEC
// CPU2000/OMP, SPLASH-2, and the four commercial workloads). MPKI totals
// for the 18 benchmarks appearing in Table 3's mixes jointly satisfy the
// four mix-average constraints; the rest are set to representative values.
var Profiles = []Profile{
	// SPEC CPU2006 / CPU2000 benchmarks used in the Table 3 mixes.
	profile("applu", "SPEC", 6.0, 0.25, 4, 0.20, 0.35, 0.10, 1.6),
	profile("gromacs", "SPEC", 1.2, 0.20, 2, 0.15, 0.30, 0.05, 1.9),
	profile("deal", "SPEC", 2.0, 0.20, 2, 0.15, 0.30, 0.05, 1.8),
	profile("hmmer", "SPEC", 1.6, 0.15, 2, 0.10, 0.40, 0.05, 1.9),
	profile("calculix", "SPEC", 1.8, 0.20, 2, 0.15, 0.30, 0.05, 1.8),
	profile("gcc", "SPEC", 6.6, 0.25, 4, 0.20, 0.35, 0.08, 1.5),
	profile("sjeng", "SPEC", 1.5, 0.20, 2, 0.10, 0.30, 0.05, 1.8),
	profile("wrf", "SPEC", 10.5, 0.25, 4, 0.25, 0.35, 0.10, 1.4),
	profile("gobmk", "SPEC", 4.4, 0.20, 3, 0.15, 0.30, 0.05, 1.6),
	profile("h264ref", "SPEC", 8.5, 0.22, 3, 0.20, 0.35, 0.08, 1.5),
	profile("sphinx", "SPEC", 28.0, 0.20, 5, 0.25, 0.30, 0.10, 1.1),
	profile("cactus", "SPEC", 38.0, 0.25, 5, 0.30, 0.35, 0.10, 1.0),
	profile("namd", "SPEC", 5.5, 0.20, 3, 0.15, 0.30, 0.05, 1.7),
	profile("astar", "SPEC", 45.4, 0.22, 5, 0.30, 0.35, 0.10, 0.9),
	profile("mcf", "SPEC", 95.0, 0.25, 6, 0.35, 0.30, 0.10, 0.7),
	profile("tonto", "SPEC", 38.0, 0.20, 4, 0.25, 0.30, 0.08, 1.0),
	// Commercial applications (traced natively in the paper).
	profile("sjas", "commercial", 42.0, 0.22, 6, 0.30, 0.40, 0.25, 0.9),
	profile("tpcw", "commercial", 60.0, 0.22, 6, 0.35, 0.40, 0.25, 0.8),
	profile("sap", "commercial", 35.0, 0.22, 6, 0.30, 0.40, 0.25, 0.9),
	profile("sjbb", "commercial", 30.0, 0.22, 6, 0.30, 0.40, 0.25, 1.0),
	// SPLASH-2.
	profile("barnes", "SPLASH-2", 5.0, 0.25, 3, 0.20, 0.30, 0.30, 1.6),
	profile("cholesky", "SPLASH-2", 8.0, 0.28, 3, 0.20, 0.30, 0.25, 1.4),
	profile("fft", "SPLASH-2", 18.0, 0.30, 4, 0.30, 0.35, 0.20, 1.2),
	profile("fmm", "SPLASH-2", 4.0, 0.25, 3, 0.20, 0.30, 0.25, 1.7),
	profile("lu", "SPLASH-2", 7.0, 0.28, 3, 0.20, 0.30, 0.20, 1.5),
	profile("ocean", "SPLASH-2", 25.0, 0.30, 5, 0.30, 0.35, 0.25, 1.0),
	profile("radiosity", "SPLASH-2", 3.0, 0.20, 2, 0.15, 0.30, 0.30, 1.7),
	profile("radix", "SPLASH-2", 30.0, 0.30, 5, 0.30, 0.40, 0.20, 1.0),
	profile("raytrace", "SPLASH-2", 6.0, 0.25, 3, 0.20, 0.30, 0.30, 1.5),
	profile("water", "SPLASH-2", 2.5, 0.20, 2, 0.15, 0.30, 0.25, 1.8),
	// SpecOMP / SPEC CPU2000 FP.
	profile("swim", "SpecOMP", 40.0, 0.30, 5, 0.30, 0.35, 0.15, 0.9),
	profile("mgrid", "SpecOMP", 12.0, 0.28, 4, 0.25, 0.30, 0.12, 1.3),
	profile("art", "SpecOMP", 55.0, 0.25, 6, 0.35, 0.30, 0.12, 0.8),
	profile("equake", "SpecOMP", 20.0, 0.28, 4, 0.25, 0.35, 0.12, 1.2),
	profile("ammp", "SpecOMP", 9.0, 0.28, 3, 0.20, 0.30, 0.10, 1.4),
}

// ByName returns the profile with the given name.
func ByName(name string) (*Profile, error) {
	for i := range Profiles {
		if Profiles[i].Name == name {
			return &Profiles[i], nil
		}
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Mix is one multiprogrammed workload of Table 3: eight benchmarks, each
// replicated 32 times to fill the 256 cores.
type Mix struct {
	// Name is the Table 3 row name.
	Name string
	// Benchmarks lists the eight applications; each runs 32 instances.
	Benchmarks []string
	// PaperMPKI is the average MPKI Table 3 reports for the mix.
	PaperMPKI float64
}

// Mixes reproduces Table 3.
var Mixes = []Mix{
	{
		Name:       "Light",
		Benchmarks: []string{"applu", "gromacs", "deal", "hmmer", "calculix", "gcc", "sjeng", "wrf"},
		PaperMPKI:  3.9,
	},
	{
		Name:       "Medium-Light",
		Benchmarks: []string{"gromacs", "deal", "gobmk", "wrf", "h264ref", "sphinx", "applu", "calculix"},
		PaperMPKI:  7.8,
	},
	{
		Name:       "Medium-Heavy",
		Benchmarks: []string{"cactus", "deal", "calculix", "hmmer", "namd", "sjas", "gromacs", "sjeng"},
		PaperMPKI:  11.7,
	},
	{
		Name:       "Heavy",
		Benchmarks: []string{"sjas", "astar", "mcf", "sphinx", "tonto", "tpcw", "deal", "hmmer"},
		PaperMPKI:  39.0,
	},
}

// MixByName returns the Table 3 mix with the given name.
func MixByName(name string) (*Mix, error) {
	for i := range Mixes {
		if Mixes[i].Name == name {
			return &Mixes[i], nil
		}
	}
	return nil, fmt.Errorf("workload: unknown mix %q", name)
}

// AverageMPKI returns the mix's average MPKI over its benchmarks, which
// must reproduce Table 3's last column.
func (m *Mix) AverageMPKI() (float64, error) {
	sum := 0.0
	for _, b := range m.Benchmarks {
		p, err := ByName(b)
		if err != nil {
			return 0, err
		}
		sum += p.MPKI()
	}
	return sum / float64(len(m.Benchmarks)), nil
}

// CoreAssignment returns, for a system with cores processor cores, the
// profile each core runs: benchmark i's 32 (cores/8) instances occupy the
// contiguous core range [i*cores/8, (i+1)*cores/8). Contiguous placement
// matches multiprogrammed scheduling and creates the spatially non-uniform
// traffic the regional congestion detector exists for.
func (m *Mix) CoreAssignment(cores int) ([]*Profile, error) {
	if cores%len(m.Benchmarks) != 0 {
		return nil, fmt.Errorf("workload: %d cores not divisible by %d benchmarks", cores, len(m.Benchmarks))
	}
	per := cores / len(m.Benchmarks)
	out := make([]*Profile, cores)
	for i, b := range m.Benchmarks {
		p, err := ByName(b)
		if err != nil {
			return nil, err
		}
		for c := i * per; c < (i+1)*per; c++ {
			out[c] = p
		}
	}
	return out, nil
}
