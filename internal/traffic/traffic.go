// Package traffic provides the synthetic workloads of the paper's
// evaluation: uniform random, transpose, and bit-complement destination
// patterns driven by an open-loop Bernoulli injection process, plus the
// piecewise (bursty) offered-load schedule of Figure 12.
//
// Synthetic packets are 512 bits (§4.1), so they serialize to one flit on
// the 512-bit Single-NoC and four flits on a 128-bit subnet.
package traffic

import (
	"fmt"

	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/sim"
)

// SyntheticPacketBits is the synthetic packet size used throughout the
// paper's synthetic experiments.
const SyntheticPacketBits = 512

// Pattern maps a source node to a destination node.
type Pattern interface {
	// Dest returns the destination for a packet from src in a mesh of
	// rows×cols nodes; it must never return src for patterns where the
	// paper's convention discards self-traffic (uniform random).
	Dest(rng *sim.RNG, src, rows, cols int) int
	// Name returns the pattern's conventional name.
	Name() string
}

// UniformRandom sends each packet to a destination chosen uniformly from
// all other nodes.
type UniformRandom struct{}

// Dest implements Pattern.
func (UniformRandom) Dest(rng *sim.RNG, src, rows, cols int) int {
	n := rows * cols
	d := rng.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (UniformRandom) Name() string { return "uniform-random" }

// Transpose sends node (x, y) to node (y, x) — the adversarial pattern
// that concentrates load along the diagonal under X-Y routing and
// saturates the network at far lower injection rates than uniform random.
// Diagonal nodes (x == y) fall back to uniform random so every node
// offers load.
type Transpose struct{}

// Dest implements Pattern.
func (Transpose) Dest(rng *sim.RNG, src, rows, cols int) int {
	x, y := src%cols, src/cols
	if x == y && x < rows && y < cols {
		return UniformRandom{}.Dest(rng, src, rows, cols)
	}
	if y >= cols || x >= rows {
		// Non-square mesh: wrap coordinates into range.
		return UniformRandom{}.Dest(rng, src, rows, cols)
	}
	return x*cols + y
}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// BitComplement sends node i to node (N−1−i): every packet crosses the
// mesh centre, stressing the bisection.
type BitComplement struct{}

// Dest implements Pattern.
func (BitComplement) Dest(rng *sim.RNG, src, rows, cols int) int {
	return rows*cols - 1 - src
}

// Name implements Pattern.
func (BitComplement) Name() string { return "bit-complement" }

// PatternNames lists the canonical pattern names PatternByName accepts.
func PatternNames() []string {
	return []string{"uniform-random", "transpose", "bit-complement"}
}

// PatternByName returns the pattern with the given conventional name.
func PatternByName(name string) (Pattern, error) {
	switch name {
	case "uniform-random", "ur", "uniform":
		return UniformRandom{}, nil
	case "transpose":
		return Transpose{}, nil
	case "bit-complement", "bitcomp":
		return BitComplement{}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q (valid: %v)", name, PatternNames())
	}
}

// Schedule gives the offered load (packets/node/cycle) at a cycle;
// schedules express the constant loads of the sweep experiments and the
// bursts of Figure 12.
type Schedule func(cycle int64) float64

// Constant returns a schedule offering a fixed load.
func Constant(load float64) Schedule {
	return func(int64) float64 { return load }
}

// Phase is one segment of a piecewise-constant schedule.
type Phase struct {
	// Until is the first cycle this phase no longer applies.
	Until int64
	// Load is the offered load during the phase.
	Load float64
}

// Piecewise returns a schedule stepping through phases in order; after the
// last phase's Until, the last phase's load persists.
func Piecewise(phases ...Phase) Schedule {
	return func(cycle int64) float64 {
		for _, p := range phases {
			if cycle < p.Until {
				return p.Load
			}
		}
		if len(phases) == 0 {
			return 0
		}
		return phases[len(phases)-1].Load
	}
}

// Fig12Bursts is the offered-load schedule of Figure 12: a base load of
// 0.01 packets/node/cycle, a burst to 0.30 during cycles [1000, 1500), a
// return to base, a second burst to 0.10 during [2000, 2500), then base
// again.
func Fig12Bursts() Schedule {
	return Piecewise(
		Phase{Until: 1000, Load: 0.01},
		Phase{Until: 1500, Load: 0.30},
		Phase{Until: 2000, Load: 0.01},
		Phase{Until: 2500, Load: 0.10},
		Phase{Until: 1 << 62, Load: 0.01},
	)
}

// Generator drives open-loop synthetic traffic into a network. Call Tick
// once per cycle before Network.Step.
type Generator struct {
	net      *noc.Network
	pattern  Pattern
	schedule Schedule
	rngs     []*sim.RNG
	class    noc.MsgClass
	bits     int

	// Offered counts packets generated (offered load realized); the
	// network's own counters give accepted load.
	Offered int64
}

// NewGenerator builds a generator over net. Each node draws from its own
// RNG split from seed, so traffic is independent of node iteration order.
func NewGenerator(net *noc.Network, pattern Pattern, schedule Schedule, seed uint64) *Generator {
	root := sim.NewRNG(seed)
	nodes := net.Topo().Nodes()
	g := &Generator{
		net:      net,
		pattern:  pattern,
		schedule: schedule,
		rngs:     make([]*sim.RNG, nodes),
		class:    noc.ClassSynthetic,
		bits:     SyntheticPacketBits,
	}
	for i := range g.rngs {
		g.rngs[i] = root.SplitN(i)
	}
	return g
}

// SetPacket overrides the class and size of generated packets.
func (g *Generator) SetPacket(class noc.MsgClass, bits int) {
	g.class, g.bits = class, bits
}

// Tick injects this cycle's new packets: each node flips a Bernoulli coin
// with the schedule's current load.
func (g *Generator) Tick(now int64) {
	load := g.schedule(now)
	if load <= 0 {
		return
	}
	rows, cols := g.net.Topo().Rows(), g.net.Topo().Cols()
	for src := range g.rngs {
		if !g.rngs[src].Bernoulli(load) {
			continue
		}
		dst := g.pattern.Dest(g.rngs[src], src, rows, cols)
		g.net.NewPacket(src, dst, g.class, g.bits)
		g.Offered++
	}
}
