// Package traffic provides the synthetic workloads of the paper's
// evaluation: uniform random, transpose, and bit-complement destination
// patterns driven by an open-loop Bernoulli injection process, plus the
// piecewise (bursty) offered-load schedule of Figure 12.
//
// Synthetic packets are 512 bits (§4.1), so they serialize to one flit on
// the 512-bit Single-NoC and four flits on a 128-bit subnet.
package traffic

import (
	"fmt"

	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/sim"
)

// SyntheticPacketBits is the synthetic packet size used throughout the
// paper's synthetic experiments.
const SyntheticPacketBits = 512

// Pattern maps a source node to a destination node.
type Pattern interface {
	// Dest returns the destination for a packet from src in a mesh of
	// rows×cols nodes; it must never return src for patterns where the
	// paper's convention discards self-traffic (uniform random).
	Dest(rng *sim.RNG, src, rows, cols int) int
	// Name returns the pattern's conventional name.
	Name() string
}

// UniformRandom sends each packet to a destination chosen uniformly from
// all other nodes.
type UniformRandom struct{}

// Dest implements Pattern.
func (UniformRandom) Dest(rng *sim.RNG, src, rows, cols int) int {
	n := rows * cols
	d := rng.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (UniformRandom) Name() string { return "uniform-random" }

// Transpose sends node (x, y) to node (y, x) — the adversarial pattern
// that concentrates load along the diagonal under X-Y routing and
// saturates the network at far lower injection rates than uniform random.
// Diagonal nodes (x == y) fall back to uniform random so every node
// offers load.
type Transpose struct{}

// Dest implements Pattern.
func (Transpose) Dest(rng *sim.RNG, src, rows, cols int) int {
	x, y := src%cols, src/cols
	if x == y && x < rows && y < cols {
		return UniformRandom{}.Dest(rng, src, rows, cols)
	}
	if y >= cols || x >= rows {
		// Non-square mesh: wrap coordinates into range.
		return UniformRandom{}.Dest(rng, src, rows, cols)
	}
	return x*cols + y
}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// BitComplement sends node i to node (N−1−i): every packet crosses the
// mesh centre, stressing the bisection.
type BitComplement struct{}

// Dest implements Pattern.
func (BitComplement) Dest(rng *sim.RNG, src, rows, cols int) int {
	return rows*cols - 1 - src
}

// Name implements Pattern.
func (BitComplement) Name() string { return "bit-complement" }

// PatternNames lists the canonical pattern names PatternByName accepts.
func PatternNames() []string {
	return []string{"uniform-random", "transpose", "bit-complement"}
}

// PatternByName returns the pattern with the given conventional name.
func PatternByName(name string) (Pattern, error) {
	switch name {
	case "uniform-random", "ur", "uniform":
		return UniformRandom{}, nil
	case "transpose":
		return Transpose{}, nil
	case "bit-complement", "bitcomp":
		return BitComplement{}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q (valid: %v)", name, PatternNames())
	}
}

// Schedule gives the offered load (packets/node/cycle) at a cycle;
// schedules express the constant loads of the sweep experiments and the
// bursts of Figure 12. NextArrival is the event-driven lookahead the idle
// fast-forward path uses: it must report the exact first cycle at or after
// now with a positive load, without consuming any randomness, so skipping
// straight to it is bit-identical to ticking through the zero-load span.
type Schedule interface {
	// Load returns the offered load at the given cycle.
	Load(cycle int64) float64
	// NextArrival returns the earliest cycle >= now at which Load is
	// positive, and ok=false if the load is zero at every cycle >= now.
	NextArrival(now int64) (at int64, ok bool)
}

// ScheduleFunc adapts a plain load function to the Schedule interface.
// Its NextArrival is maximally conservative — an arrival every cycle — so
// a functional schedule never enables idle fast-forward but always stays
// correct.
type ScheduleFunc func(cycle int64) float64

// Load implements Schedule.
func (f ScheduleFunc) Load(cycle int64) float64 { return f(cycle) }

// NextArrival implements Schedule conservatively.
func (f ScheduleFunc) NextArrival(now int64) (int64, bool) { return now, true }

// constant is a fixed-load Schedule.
type constant float64

// Constant returns a schedule offering a fixed load.
func Constant(load float64) Schedule { return constant(load) }

// Load implements Schedule.
func (c constant) Load(int64) float64 { return float64(c) }

// NextArrival implements Schedule: every cycle when the load is positive,
// never otherwise.
func (c constant) NextArrival(now int64) (int64, bool) {
	if c <= 0 {
		return 0, false
	}
	return now, true
}

// Phase is one segment of a piecewise-constant schedule.
type Phase struct {
	// Until is the first cycle this phase no longer applies.
	Until int64
	// Load is the offered load during the phase.
	Load float64
}

// piecewise is a phase-stepped Schedule (ascending Until values).
type piecewise struct {
	phases []Phase
}

// Piecewise returns a schedule stepping through phases in order; after the
// last phase's Until, the last phase's load persists.
func Piecewise(phases ...Phase) Schedule { return piecewise{phases: phases} }

// Load implements Schedule.
func (p piecewise) Load(cycle int64) float64 {
	for _, ph := range p.phases {
		if cycle < ph.Until {
			return ph.Load
		}
	}
	if len(p.phases) == 0 {
		return 0
	}
	return p.phases[len(p.phases)-1].Load
}

// NextArrival implements Schedule exactly: inside a zero-load phase the
// next arrival is the phase boundary itself (the previous phase's Until is
// the first cycle of the next), never one cycle off — an error here would
// silently break bit-identity of the fast-forward path.
func (p piecewise) NextArrival(now int64) (int64, bool) {
	for _, ph := range p.phases {
		if now >= ph.Until {
			continue
		}
		if ph.Load > 0 {
			return now, true
		}
		// Zero-load phase: the earliest candidate is the first cycle of
		// the next phase, which is exactly this phase's Until.
		now = ph.Until
	}
	// At or past the last Until: the last phase's load persists forever.
	if len(p.phases) > 0 && p.phases[len(p.phases)-1].Load > 0 {
		return now, true
	}
	return 0, false
}

// Fig12Bursts is the offered-load schedule of Figure 12: a base load of
// 0.01 packets/node/cycle, a burst to 0.30 during cycles [1000, 1500), a
// return to base, a second burst to 0.10 during [2000, 2500), then base
// again.
func Fig12Bursts() Schedule {
	return Piecewise(
		Phase{Until: 1000, Load: 0.01},
		Phase{Until: 1500, Load: 0.30},
		Phase{Until: 2000, Load: 0.01},
		Phase{Until: 2500, Load: 0.10},
		Phase{Until: 1 << 62, Load: 0.01},
	)
}

// Generator drives open-loop synthetic traffic into a network. Call Tick
// once per cycle before Network.Step.
type Generator struct {
	net      *noc.Network
	pattern  Pattern
	schedule Schedule
	rngs     []*sim.RNG
	class    noc.MsgClass
	bits     int

	// Offered counts packets generated (offered load realized); the
	// network's own counters give accepted load.
	Offered int64
}

// NewGenerator builds a generator over net. Each node draws from its own
// RNG split from seed, so traffic is independent of node iteration order.
func NewGenerator(net *noc.Network, pattern Pattern, schedule Schedule, seed uint64) *Generator {
	root := sim.NewRNG(seed)
	nodes := net.Topo().Nodes()
	g := &Generator{
		net:      net,
		pattern:  pattern,
		schedule: schedule,
		rngs:     make([]*sim.RNG, nodes),
		class:    noc.ClassSynthetic,
		bits:     SyntheticPacketBits,
	}
	for i := range g.rngs {
		g.rngs[i] = root.SplitN(i)
	}
	return g
}

// SetPacket overrides the class and size of generated packets.
func (g *Generator) SetPacket(class noc.MsgClass, bits int) {
	g.class, g.bits = class, bits
}

// NextArrival returns the earliest cycle >= now at which the generator
// can inject (the schedule's load turns positive), and ok=false if it
// never will again. Tick draws no randomness at non-positive loads, so a
// caller may jump simulated time straight to the reported cycle without
// ticking the span in between and remain bit-identical.
func (g *Generator) NextArrival(now int64) (int64, bool) {
	return g.schedule.NextArrival(now)
}

// Tick injects this cycle's new packets: each node flips a Bernoulli coin
// with the schedule's current load.
func (g *Generator) Tick(now int64) {
	load := g.schedule.Load(now)
	if load <= 0 {
		return
	}
	rows, cols := g.net.Topo().Rows(), g.net.Topo().Cols()
	for src := range g.rngs {
		if !g.rngs[src].Bernoulli(load) {
			continue
		}
		dst := g.pattern.Dest(g.rngs[src], src, rows, cols)
		g.net.NewPacket(src, dst, g.class, g.bits)
		g.Offered++
	}
}
