package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/sim"
)

// TestPatternsValidDest: property — every pattern returns an in-range
// destination different from the source.
func TestPatternsValidDest(t *testing.T) {
	rng := sim.NewRNG(1)
	patterns := []Pattern{UniformRandom{}, Transpose{}, BitComplement{}}
	f := func(s uint8) bool {
		const rows, cols = 8, 8
		src := int(s) % (rows * cols)
		for _, p := range patterns {
			d := p.Dest(rng, src, rows, cols)
			if d < 0 || d >= rows*cols {
				return false
			}
			if p.Name() != "bit-complement" && d == src {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransposeMapping(t *testing.T) {
	rng := sim.NewRNG(2)
	const rows, cols = 8, 8
	// Off-diagonal: (x,y) -> (y,x), an involution.
	for src := 0; src < rows*cols; src++ {
		x, y := src%cols, src/cols
		if x == y {
			continue
		}
		d := Transpose{}.Dest(rng, src, rows, cols)
		if d != x*cols+y {
			t.Fatalf("transpose(%d) = %d, want %d", src, d, x*cols+y)
		}
		if back := (Transpose{}).Dest(rng, d, rows, cols); back != src {
			t.Fatalf("transpose not involutive: %d -> %d -> %d", src, d, back)
		}
	}
}

func TestBitComplementCrossesCenter(t *testing.T) {
	rng := sim.NewRNG(3)
	const rows, cols = 8, 8
	for src := 0; src < rows*cols; src++ {
		d := BitComplement{}.Dest(rng, src, rows, cols)
		if d != rows*cols-1-src {
			t.Fatalf("bitcomp(%d) = %d", src, d)
		}
	}
}

func TestPatternByName(t *testing.T) {
	for _, name := range []string{"uniform-random", "ur", "transpose", "bit-complement"} {
		if _, err := PatternByName(name); err != nil {
			t.Errorf("PatternByName(%q): %v", name, err)
		}
	}
	if _, err := PatternByName("nope"); err == nil {
		t.Error("want error for unknown pattern")
	}
}

func TestPiecewiseSchedule(t *testing.T) {
	s := Piecewise(Phase{Until: 10, Load: 0.1}, Phase{Until: 20, Load: 0.5})
	cases := map[int64]float64{0: 0.1, 9: 0.1, 10: 0.5, 19: 0.5, 25: 0.5, 1000: 0.5}
	for c, want := range cases {
		if got := s.Load(c); got != want {
			t.Errorf("schedule(%d) = %v, want %v", c, got, want)
		}
	}
	if Piecewise().Load(5) != 0 {
		t.Error("empty schedule should offer 0")
	}
}

func TestFig12Schedule(t *testing.T) {
	s := Fig12Bursts()
	cases := map[int64]float64{0: 0.01, 999: 0.01, 1000: 0.30, 1499: 0.30, 1500: 0.01, 2000: 0.10, 2499: 0.10, 2500: 0.01}
	for c, want := range cases {
		if got := s.Load(c); got != want {
			t.Errorf("Fig12Bursts(%d) = %v, want %v", c, got, want)
		}
	}
}

// TestNextArrivalExact: NextArrival must agree exactly with a brute-force
// scan of Load over every schedule shape — in particular the zero-load
// phase boundary case, where an off-by-one would silently break the
// bit-identity of idle fast-forward (the regression this test pins).
func TestNextArrivalExact(t *testing.T) {
	// Every fixture below either turns positive within scanSpan cycles of
	// any probe point or stays zero forever (all finite phase boundaries
	// sit far below scanSpan), so a bounded scan is an exact oracle.
	const scanSpan = 8000
	scan := func(s Schedule, now int64) (int64, bool) {
		for c := now; c < now+scanSpan; c++ {
			if s.Load(c) > 0 {
				return c, true
			}
		}
		return 0, false
	}
	schedules := map[string]Schedule{
		"constant":      Constant(0.2),
		"constant-zero": Constant(0),
		"fig12":         Fig12Bursts(),
		"empty":         Piecewise(),
		"zero-gap":      Piecewise(Phase{Until: 10, Load: 0.1}, Phase{Until: 30, Load: 0}, Phase{Until: 1 << 62, Load: 0.4}),
		"leading-zero":  Piecewise(Phase{Until: 25, Load: 0}, Phase{Until: 1 << 62, Load: 0.3}),
		"zero-tail":     Piecewise(Phase{Until: 10, Load: 0.1}, Phase{Until: 20, Load: 0}),
		"adjacent-zero": Piecewise(Phase{Until: 5, Load: 0}, Phase{Until: 7, Load: 0}, Phase{Until: 9, Load: 0.5}, Phase{Until: 11, Load: 0}),
	}
	const horizon = 4000
	for name, s := range schedules {
		for now := int64(0); now < horizon; now++ {
			wantAt, wantOK := scan(s, now)
			gotAt, gotOK := s.NextArrival(now)
			if gotOK != wantOK || (gotOK && gotAt != wantAt) {
				t.Fatalf("%s: NextArrival(%d) = (%d, %v), want (%d, %v)", name, now, gotAt, gotOK, wantAt, wantOK)
			}
		}
	}
}

// TestNextArrivalZeroRateBoundary pins the exact phase-boundary contract:
// from inside a zero-load phase, the reported arrival is the phase's Until
// itself (the first cycle of the next phase), not Until±1.
func TestNextArrivalZeroRateBoundary(t *testing.T) {
	s := Piecewise(Phase{Until: 100, Load: 0}, Phase{Until: 200, Load: 0.25})
	for _, now := range []int64{0, 50, 99} {
		if at, ok := s.NextArrival(now); !ok || at != 100 {
			t.Fatalf("NextArrival(%d) = (%d, %v), want (100, true)", now, at, ok)
		}
	}
	if at, ok := s.NextArrival(100); !ok || at != 100 {
		t.Fatalf("NextArrival(100) = (%d, %v), want (100, true)", at, ok)
	}
	// ScheduleFunc stays conservative: an arrival every cycle.
	f := ScheduleFunc(func(int64) float64 { return 0 })
	if at, ok := f.NextArrival(42); !ok || at != 42 {
		t.Fatalf("ScheduleFunc.NextArrival(42) = (%d, %v), want (42, true)", at, ok)
	}
}

// TestGeneratorNextArrivalBitIdentity: ticking a generator through a
// zero-load span draws no randomness, so skipping the span and resuming at
// NextArrival yields the identical injection sequence.
func TestGeneratorNextArrivalBitIdentity(t *testing.T) {
	sched := Piecewise(Phase{Until: 50, Load: 0.3}, Phase{Until: 500, Load: 0}, Phase{Until: 1 << 62, Load: 0.3})
	run := func(skip bool) int64 {
		net := newTestNet(t)
		gen := NewGenerator(net, UniformRandom{}, sched, 7)
		for c := int64(0); c < 1000; {
			if skip {
				if at, ok := gen.NextArrival(c); ok && at > c {
					c = at
					continue
				}
			}
			gen.Tick(c)
			c++
		}
		return gen.Offered
	}
	ticked, skipped := run(false), run(true)
	if ticked == 0 {
		t.Fatal("no packets offered")
	}
	if ticked != skipped {
		t.Fatalf("skip changed the injection sequence: %d vs %d packets", ticked, skipped)
	}
}

func newTestNet(t *testing.T) *noc.Network {
	t.Helper()
	cfg := noc.Config{
		Rows: 4, Cols: 4, TilesPerNode: 4, RegionDim: 2,
		Subnets: 2, LinkWidthBits: 256,
		VCs: 4, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
		TWakeup: 10, WakeupHidden: 3, TIdleDetect: 4, TBreakeven: 12,
	}
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestGeneratorRate: the realized offered load must match the schedule.
func TestGeneratorRate(t *testing.T) {
	net := newTestNet(t)
	const load, cycles = 0.2, 20000
	gen := NewGenerator(net, UniformRandom{}, Constant(load), 5)
	for i := int64(0); i < cycles; i++ {
		gen.Tick(i)
		net.Step()
	}
	rate := float64(gen.Offered) / cycles / float64(net.Topo().Nodes())
	if math.Abs(rate-load) > 0.01 {
		t.Errorf("offered rate = %.4f, want %.2f", rate, load)
	}
}

func TestGeneratorZeroLoad(t *testing.T) {
	net := newTestNet(t)
	gen := NewGenerator(net, UniformRandom{}, Constant(0), 5)
	for i := int64(0); i < 100; i++ {
		gen.Tick(i)
	}
	if gen.Offered != 0 {
		t.Errorf("offered %d packets at zero load", gen.Offered)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() int64 {
		net := newTestNet(t)
		gen := NewGenerator(net, Transpose{}, Constant(0.3), 9)
		for i := int64(0); i < 2000; i++ {
			gen.Tick(i)
			net.Step()
		}
		return gen.Offered
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic generator: %d vs %d", a, b)
	}
}

func TestSetPacket(t *testing.T) {
	net := newTestNet(t)
	gen := NewGenerator(net, UniformRandom{}, Constant(1), 5)
	gen.SetPacket(noc.ClassRequest, 72)
	gen.Tick(0)
	net.Step()
	created, _, _ := net.Counts()
	if created == 0 {
		t.Fatal("no packets at load 1")
	}
}
