package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLatencyMoments(t *testing.T) {
	l := NewLatency(0)
	for i := int64(1); i <= 100; i++ {
		l.Observe(i)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if m := l.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", m)
	}
	if l.Min() != 1 || l.Max() != 100 {
		t.Errorf("min/max = %d/%d", l.Min(), l.Max())
	}
	// Population stddev of 1..100 is sqrt((100^2-1)/12) ≈ 28.866.
	if sd := l.StdDev(); math.Abs(sd-28.866) > 0.01 {
		t.Errorf("stddev = %v, want ~28.866", sd)
	}
	if p := l.Percentile(50); p < 45 || p > 55 {
		t.Errorf("p50 = %d", p)
	}
	if p := l.Percentile(100); p != 100 {
		t.Errorf("p100 = %d", p)
	}
}

func TestLatencyEmpty(t *testing.T) {
	l := NewLatency(0)
	if l.Mean() != 0 || l.Min() != 0 || l.Percentile(99) != 0 || l.StdDev() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

// TestLatencyDecimation: the reservoir must survive observation counts far
// beyond its capacity and keep percentiles roughly correct.
func TestLatencyDecimation(t *testing.T) {
	l := NewLatency(1024)
	const n = 1 << 18
	for i := 0; i < n; i++ {
		l.Observe(int64(i % 1000))
	}
	if p := l.Percentile(50); p < 400 || p > 600 {
		t.Errorf("p50 after decimation = %d, want ~500", p)
	}
	if p := l.Percentile(99); p < 950 {
		t.Errorf("p99 after decimation = %d, want ~990", p)
	}
}

// Property: Mean always lies within [Min, Max].
func TestLatencyMeanBounded(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		l := NewLatency(64)
		for _, v := range vals {
			l.Observe(int64(v))
		}
		return l.Mean() >= float64(l.Min()) && l.Mean() <= float64(l.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeriesWindows(t *testing.T) {
	s := NewSeries(50)
	for c := int64(0); c < 200; c++ {
		s.Add(c, 1)
	}
	pts := s.Finish(199)
	if len(pts) != 4 {
		t.Fatalf("got %d windows, want 4", len(pts))
	}
	for i, p := range pts {
		if p.Value != 50 {
			t.Errorf("window %d value = %v, want 50", i, p.Value)
		}
		if p.Cycle != int64(50*(i+1)) {
			t.Errorf("window %d cycle = %d", i, p.Cycle)
		}
	}
}

func TestSeriesSparse(t *testing.T) {
	s := NewSeries(10)
	s.Add(5, 3)
	s.Add(35, 7) // skips two empty windows
	pts := s.Finish(35)
	if len(pts) != 4 {
		t.Fatalf("got %d windows", len(pts))
	}
	want := []float64{3, 0, 0, 7}
	for i, p := range pts {
		if p.Value != want[i] {
			t.Errorf("window %d = %v, want %v", i, p.Value, want[i])
		}
	}
}

func TestSeriesPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSeries(0) should panic")
		}
	}()
	NewSeries(0)
}

func TestCSCBasics(t *testing.T) {
	c := NewCSC(12)
	c.Sleep(100)
	c.Wake(200) // 100-cycle sleep: 88 compensated
	if c.Compensated() != 88 || c.RawSleep() != 100 || c.Transitions() != 1 {
		t.Fatalf("comp=%d raw=%d trans=%d", c.Compensated(), c.RawSleep(), c.Transitions())
	}
	// A sleep shorter than break-even compensates nothing but still
	// counts as a transition (it *cost* energy).
	c.Sleep(300)
	c.Wake(305)
	if c.Compensated() != 88 || c.Transitions() != 2 {
		t.Fatalf("short sleep mishandled: comp=%d trans=%d", c.Compensated(), c.Transitions())
	}
}

func TestCSCIdempotentCalls(t *testing.T) {
	c := NewCSC(12)
	c.Wake(10) // not asleep: no-op
	if c.Transitions() != 0 {
		t.Error("Wake while awake counted a transition")
	}
	c.Sleep(20)
	c.Sleep(30) // already asleep: no-op, keeps original start
	c.Wake(120)
	if c.Compensated() != 88 {
		t.Errorf("comp = %d, want 88 (sleep start must not move)", c.Compensated())
	}
}

func TestCSCFlush(t *testing.T) {
	c := NewCSC(10)
	c.Sleep(0)
	c.Flush(100)
	if c.Compensated() != 90 {
		t.Errorf("comp after flush = %d, want 90", c.Compensated())
	}
	if !c.Asleep() {
		t.Error("flush must keep the component conceptually asleep")
	}
	// Flushing again immediately adds nothing.
	c.Flush(100)
	if c.Compensated() != 90 {
		t.Errorf("double flush changed compensation: %d", c.Compensated())
	}
	// The continued sleep keeps accruing, with break-even charged only
	// once for the whole period: 150 total − 10 = 140.
	c.Wake(150)
	if c.Compensated() != 140 {
		t.Errorf("comp = %d, want 140", c.Compensated())
	}
	if c.Transitions() != 1 {
		t.Errorf("transitions = %d, want 1 (flush is not a transition)", c.Transitions())
	}
}

// TestPercentileCacheInvalidation checks that the cached sorted reservoir
// stays consistent across interleaved Observe and Percentile calls: the
// cache must be rebuilt after new samples land, including across a
// decimation pass.
func TestPercentileCacheInvalidation(t *testing.T) {
	l := NewLatency(8)
	for i := int64(1); i <= 4; i++ {
		l.Observe(i * 10)
	}
	if got := l.Percentile(100); got != 40 {
		t.Fatalf("p100 = %d, want 40", got)
	}
	// A repeated query must serve from the cache and agree.
	if got := l.Percentile(100); got != 40 {
		t.Fatalf("cached p100 = %d, want 40", got)
	}
	l.Observe(500)
	if got := l.Percentile(100); got != 500 {
		t.Fatalf("p100 after Observe = %d, want 500 (stale cache?)", got)
	}
	// Force decimation (reservoir cap 8) and re-query: the cache must
	// follow the rewritten reservoir.
	for i := int64(0); i < 32; i++ {
		l.Observe(1000 + i)
		if p := l.Percentile(50); p < 0 {
			t.Fatalf("negative percentile")
		}
	}
	if got, want := l.Percentile(0), l.Min(); got > 1000 && want < 1000 {
		t.Fatalf("p0 = %d inconsistent after decimation", got)
	}
	// The cache must never alias the live reservoir: mutate via Observe
	// and check an old high value cannot reappear.
	if got := l.Percentile(100); got < 500 {
		t.Fatalf("p100 = %d, want >= 500", got)
	}
}

// TestPercentileMatchesUncached cross-checks cached percentiles against a
// fresh accumulator fed the same data in one shot.
func TestPercentileMatchesUncached(t *testing.T) {
	a, b := NewLatency(64), NewLatency(64)
	vals := []int64{9, 1, 7, 3, 5, 8, 2, 6, 4}
	for _, v := range vals {
		a.Observe(v)
		a.Percentile(50) // interleave queries to exercise the cache
	}
	for _, v := range vals {
		b.Observe(v)
	}
	for _, p := range []float64{0, 25, 50, 75, 90, 99, 100} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("p%.0f: cached %d != uncached %d", p, a.Percentile(p), b.Percentile(p))
		}
	}
}
