// Package stats provides the measurement machinery the evaluation relies
// on: streaming latency accumulators with percentiles, windowed time-series
// samplers (for the bursty-traffic ramp-up study), and the compensated
// sleep cycle (CSC) tracker defined by Hu et al. and used by the paper to
// quantify profitable power gating independent of the power model.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Latency accumulates a distribution of integer cycle latencies. It keeps
// exact moments plus a capped reservoir for percentiles; for the sample
// sizes the experiments produce (≤ a few million packets) the reservoir is
// effectively exact.
type Latency struct {
	count   int64
	sum     float64
	sumSq   float64
	min     int64
	max     int64
	samples []int32
	every   int64 // record one of every `every` observations
	// sorted caches the sorted reservoir between Observe calls; the sweep
	// progress path queries several percentiles per point, so sorting once
	// per quiescent state instead of once per query matters. Nil means
	// stale; Observe invalidates.
	sorted []int32
}

// NewLatency returns an empty accumulator that reservoir-samples at most
// maxSamples observations for percentile queries. maxSamples <= 0 selects a
// default of 1<<16.
func NewLatency(maxSamples int) *Latency {
	if maxSamples <= 0 {
		maxSamples = 1 << 16
	}
	return &Latency{min: math.MaxInt64, samples: make([]int32, 0, maxSamples), every: 1}
}

// Reset empties the accumulator in place, keeping the reservoir's backing
// array so a reused simulator observes into warm memory.
func (l *Latency) Reset() {
	l.count = 0
	l.sum = 0
	l.sumSq = 0
	l.min = math.MaxInt64
	l.max = 0
	l.samples = l.samples[:0]
	l.every = 1
	l.sorted = nil
}

// Observe records one latency in cycles.
func (l *Latency) Observe(cycles int64) {
	l.count++
	f := float64(cycles)
	l.sum += f
	l.sumSq += f * f
	if cycles < l.min {
		l.min = cycles
	}
	if cycles > l.max {
		l.max = cycles
	}
	if l.count%l.every == 0 {
		l.sorted = nil
		if len(l.samples) == cap(l.samples) {
			// Decimate: keep every other sample and double the stride. This
			// keeps a uniform systematic sample without per-observation RNG.
			keep := l.samples[:0]
			for i := 0; i < len(l.samples); i += 2 {
				keep = append(keep, l.samples[i])
			}
			l.samples = keep
			l.every *= 2
		}
		l.samples = append(l.samples, int32(cycles))
	}
}

// Count returns the number of observations.
func (l *Latency) Count() int64 { return l.count }

// Mean returns the average latency, or 0 with no observations.
func (l *Latency) Mean() float64 {
	if l.count == 0 {
		return 0
	}
	return l.sum / float64(l.count)
}

// StdDev returns the population standard deviation.
func (l *Latency) StdDev() float64 {
	if l.count == 0 {
		return 0
	}
	m := l.Mean()
	v := l.sumSq/float64(l.count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation, or 0 with no observations.
func (l *Latency) Min() int64 {
	if l.count == 0 {
		return 0
	}
	return l.min
}

// Max returns the largest observation.
func (l *Latency) Max() int64 { return l.max }

// Percentile returns the p-th percentile (p in [0,100]) from the sampled
// reservoir, or 0 with no observations.
func (l *Latency) Percentile(p float64) int64 {
	if len(l.samples) == 0 {
		return 0
	}
	if l.sorted == nil {
		// Copy rather than sort in place: samples is a systematic sample
		// whose append order the decimation pass in Observe relies on.
		l.sorted = make([]int32, len(l.samples))
		copy(l.sorted, l.samples)
		sort.Slice(l.sorted, func(i, j int) bool { return l.sorted[i] < l.sorted[j] })
	}
	s := l.sorted
	idx := int(p / 100 * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return int64(s[idx])
}

// String summarises the distribution for logs and CLI output.
func (l *Latency) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d max=%d",
		l.count, l.Mean(), l.Percentile(50), l.Percentile(99), l.max)
}

// Series is a windowed time-series sampler: it accumulates a value over
// fixed-width cycle windows and records one point per window. Figure 12
// samples network throughput every 50 cycles; Series is that instrument.
type Series struct {
	window  int64
	acc     float64
	nextCut int64
	points  []Point
}

// Point is one (window-end cycle, value) sample.
type Point struct {
	Cycle int64
	Value float64
}

// NewSeries returns a sampler with the given window width in cycles.
func NewSeries(window int64) *Series {
	if window <= 0 {
		panic("stats: series window must be positive")
	}
	return &Series{window: window, nextCut: window}
}

// Add accumulates v into the current window, closing windows as the clock
// passes their boundaries. Calls must have non-decreasing now.
func (s *Series) Add(now int64, v float64) {
	s.advance(now)
	s.acc += v
}

// AddSpan accumulates v once per cycle over the half-open span [from, to),
// exactly as `for c := from; c < to; c++ { s.Add(c, v) }` would, but in
// O(windows touched): idle fast-forward summarizes skipped spans with it.
// The per-window bulk addition `acc += n*v` is exact (not merely close)
// for the integer-valued v the idle telemetry samples consist of; spans
// must respect the same non-decreasing clock as Add.
func (s *Series) AddSpan(from, to int64, v float64) {
	for from < to {
		s.advance(from)
		n := s.nextCut - from // cycles of the span inside the current window
		if n > to-from {
			n = to - from
		}
		s.acc += float64(n) * v
		from += n
	}
}

// Finish closes the window containing `now` and returns all points.
func (s *Series) Finish(now int64) []Point {
	s.advance(now + s.window)
	return s.points
}

func (s *Series) advance(now int64) {
	for now >= s.nextCut {
		s.points = append(s.points, Point{Cycle: s.nextCut, Value: s.acc})
		s.acc = 0
		s.nextCut += s.window
	}
}

// Points returns the closed windows so far.
func (s *Series) Points() []Point { return s.points }

// Window returns the configured window width.
func (s *Series) Window() int64 { return s.window }

// CSC tracks compensated sleep cycles for one power-gated component. Per
// the paper (following Hu et al.), each sleep period of length L
// contributes max(0, L − T_breakeven) compensated cycles: the cycles during
// which the component genuinely saved leakage after paying the energy cost
// of switching the sleep transistor. The tracker also counts transitions,
// which the power model charges for.
type CSC struct {
	breakeven  int64
	sleepStart int64
	asleep     bool
	// creditedComp/creditedRaw track what the open period has already
	// contributed to the totals, so Flush can accrue mid-period without
	// double counting or phantom transitions.
	creditedComp int64
	creditedRaw  int64
	compensated  int64
	rawSleep     int64
	transitions  int64
}

// NewCSC returns a tracker with the given break-even threshold in cycles.
func NewCSC(breakeven int64) *CSC {
	return &CSC{breakeven: breakeven}
}

// Reset returns the tracker to its just-constructed state with the given
// break-even threshold, as NewCSC would.
func (c *CSC) Reset(breakeven int64) {
	*c = CSC{breakeven: breakeven}
}

// accrue brings the totals up to date with the open sleep period at now.
func (c *CSC) accrue(now int64) {
	total := now - c.sleepStart
	comp := total - c.breakeven
	if comp < 0 {
		comp = 0
	}
	c.compensated += comp - c.creditedComp
	c.rawSleep += total - c.creditedRaw
	c.creditedComp = comp
	c.creditedRaw = total
}

// Sleep records that the component entered the sleep state at cycle now.
// Calling Sleep while already asleep is a no-op.
func (c *CSC) Sleep(now int64) {
	if c.asleep {
		return
	}
	c.asleep = true
	c.sleepStart = now
	c.creditedComp = 0
	c.creditedRaw = 0
}

// Wake records that the component left the sleep state at cycle now,
// closing the current sleep period.
func (c *CSC) Wake(now int64) {
	if !c.asleep {
		return
	}
	c.accrue(now)
	c.asleep = false
	c.transitions++
}

// Flush accrues any open sleep period into the totals at cycle now
// without ending it: no transition is counted, and a later Wake (or
// another Flush) only adds the remainder. Measurement windows call it at
// their boundaries; it is idempotent at a fixed cycle.
func (c *CSC) Flush(now int64) {
	if c.asleep {
		c.accrue(now)
	}
}

// Compensated returns the total compensated sleep cycles.
func (c *CSC) Compensated() int64 { return c.compensated }

// RawSleep returns the total cycles spent asleep, uncompensated.
func (c *CSC) RawSleep() int64 { return c.rawSleep }

// Transitions returns the number of completed sleep→wake transitions; each
// one costs the power model T_breakeven cycles of leakage-equivalent
// energy.
func (c *CSC) Transitions() int64 { return c.transitions }

// Asleep reports whether the component is currently in a sleep period.
func (c *CSC) Asleep() bool { return c.asleep }
