package cache

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("0 sets accepted")
	}
	if _, err := New(3, 4); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("0 ways accepted")
	}
	c := MustNew(128, 4)
	if c.Sets() != 128 || c.Ways() != 4 {
		t.Fatalf("geometry %d/%d", c.Sets(), c.Ways())
	}
}

func TestHitMissBasics(t *testing.T) {
	c := MustNew(16, 2)
	if c.Lookup(42, false) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(42, false)
	if !c.Lookup(42, false) {
		t.Fatal("miss after insert")
	}
	if !c.Contains(42) {
		t.Fatal("Contains false after insert")
	}
	hits, misses, _, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// A direct test of LRU order within one set: with 1 set and 2 ways,
	// fill A and B, touch A, insert C — B must be the victim.
	c := MustNew(1, 2)
	c.Insert(1, false)
	c.Insert(2, true)
	c.Lookup(1, false) // A most recent
	v, evicted := c.Insert(3, false)
	if !evicted || v.Addr != 2 || !v.Dirty {
		t.Fatalf("victim %+v evicted=%v, want dirty block 2", v, evicted)
	}
	if c.Contains(2) || !c.Contains(1) || !c.Contains(3) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestInsertExistingTouches(t *testing.T) {
	c := MustNew(1, 2)
	c.Insert(1, false)
	c.Insert(2, false)
	// Re-inserting 1 (e.g. a refill race) must not evict, and upgrades
	// dirty.
	if _, evicted := c.Insert(1, true); evicted {
		t.Fatal("re-insert evicted")
	}
	// 2 is now LRU.
	if v, _ := c.Insert(3, false); v.Addr != 2 {
		t.Fatalf("victim %d, want 2", v.Addr)
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(4, 2)
	c.Insert(7, true)
	present, dirty := c.Invalidate(7)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Contains(7) {
		t.Fatal("still resident after invalidate")
	}
	if p, _ := c.Invalidate(7); p {
		t.Fatal("double invalidate reported present")
	}
}

// TestPropertyNoDuplicatesAndCapacity: under arbitrary operation
// sequences the cache never holds duplicates, never exceeds capacity, and
// stays structurally consistent.
func TestPropertyNoDuplicatesAndCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		c := MustNew(8, 2)
		for _, op := range ops {
			addr := uint64(op % 64)
			switch (op / 64) % 3 {
			case 0:
				c.Lookup(addr, op%2 == 0)
			case 1:
				c.Insert(addr, op%2 == 0)
			case 2:
				c.Invalidate(addr)
			}
		}
		if c.Occupancy() > c.Sets()*c.Ways() {
			return false
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWorkingSetFits: a working set far smaller than the cache reaches a
// near-perfect steady-state hit rate. The scrambled set indexing spreads
// blocks pseudo-randomly, so a set can exceed its ways with unlucky
// hashes — the bound below tolerates one thrashing set.
func TestWorkingSetFits(t *testing.T) {
	c := MustNew(128, 4) // 512 lines
	const ws = 64
	for round := 0; round < 4; round++ {
		for a := uint64(0); a < ws; a++ {
			if !c.Lookup(a, false) {
				c.Insert(a, false)
			}
		}
	}
	// Final pass: at most a handful of conflict misses.
	misses := 0
	for a := uint64(0); a < ws; a++ {
		if !c.Lookup(a, false) {
			misses++
			c.Insert(a, false)
		}
	}
	if misses > ws/8 {
		t.Fatalf("%d conflict misses for a %d/512 working set", misses, ws)
	}
}

func TestThrashingEvicts(t *testing.T) {
	c := MustNew(4, 2) // 8 lines
	for a := uint64(0); a < 1000; a++ {
		c.Insert(a, a%3 == 0)
	}
	if c.Occupancy() != 8 {
		t.Fatalf("occupancy %d, want full 8", c.Occupancy())
	}
	_, _, evictions, _ := c.Stats()
	if evictions < 900 {
		t.Fatalf("evictions %d, want ~992", evictions)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
