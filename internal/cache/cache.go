// Package cache implements a set-associative cache tag array with LRU
// replacement. The stateful-coherence mode of the system model
// (internal/cpusim, Config.RealCoherence) gives each core a real L1 tag
// array so that writeback victims come from actual LRU evictions and
// directory invalidations remove real lines — instead of the
// probabilistic approximations the statistical mode uses.
//
// Only tags are modelled (block addresses + dirty bits); the simulator
// never needs data contents.
package cache

import "fmt"

// line is one resident block.
type line struct {
	addr  uint64
	dirty bool
	valid bool
	// lru is a per-set timestamp; larger = more recently used.
	lru uint64
}

// SetAssoc is a set-associative tag array. The zero value is not usable;
// construct with New.
type SetAssoc struct {
	sets [][]line
	ways int
	// shift selects the top log2(sets) bits of the multiplicative hash —
	// the well-distributed end of a Fibonacci hash.
	shift uint
	tick  uint64

	// statistics
	hits, misses, evictions, invalidations uint64
}

// New returns a cache with the given number of sets (a power of two) and
// ways. Addresses are block addresses (already shifted by the block
// size); the set index is the low bits.
func New(sets, ways int) (*SetAssoc, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: sets must be a positive power of two, got %d", sets)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("cache: ways must be positive, got %d", ways)
	}
	shift := uint(64)
	for n := sets; n > 1; n >>= 1 {
		shift--
	}
	c := &SetAssoc{
		sets:  make([][]line, sets),
		ways:  ways,
		shift: shift,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, ways)
	}
	return c, nil
}

// MustNew is New for static configuration; it panics on invalid geometry.
func MustNew(sets, ways int) *SetAssoc {
	c, err := New(sets, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets returns the set count.
func (c *SetAssoc) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// set returns the set for addr. Addresses are scrambled before indexing
// so the synthetic address spaces (which are contiguous per region)
// spread across sets.
func (c *SetAssoc) set(addr uint64) []line {
	z := addr * 0x9e3779b97f4a7c15
	if c.shift == 64 {
		return c.sets[0]
	}
	return c.sets[z>>c.shift]
}

// Lookup reports whether addr is resident and, if so, touches its LRU
// state. markDirty additionally sets the dirty bit (a store hit).
func (c *SetAssoc) Lookup(addr uint64, markDirty bool) bool {
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].addr == addr {
			c.tick++
			set[i].lru = c.tick
			if markDirty {
				set[i].dirty = true
			}
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains reports residency without touching LRU or statistics.
func (c *SetAssoc) Contains(addr uint64) bool {
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].addr == addr {
			return true
		}
	}
	return false
}

// Victim is an evicted block.
type Victim struct {
	Addr  uint64
	Dirty bool
}

// Insert fills addr into the cache (after a miss completes), evicting the
// set's LRU line if the set is full. It returns the victim and whether
// one was evicted. Inserting an already-resident block just touches it.
func (c *SetAssoc) Insert(addr uint64, dirty bool) (Victim, bool) {
	set := c.set(addr)
	c.tick++
	// Pass 1: the block may already be resident in any way (e.g. after an
	// invalidation freed an earlier slot) — never create a duplicate.
	for i := range set {
		if set[i].valid && set[i].addr == addr {
			set[i].lru = c.tick
			if dirty {
				set[i].dirty = true
			}
			return Victim{}, false
		}
	}
	// Pass 2: free slot, else evict the LRU way.
	lruIdx, lruVal := -1, ^uint64(0)
	for i := range set {
		if !set[i].valid {
			set[i] = line{addr: addr, dirty: dirty, valid: true, lru: c.tick}
			return Victim{}, false
		}
		if set[i].lru < lruVal {
			lruVal = set[i].lru
			lruIdx = i
		}
	}
	v := Victim{Addr: set[lruIdx].addr, Dirty: set[lruIdx].dirty}
	set[lruIdx] = line{addr: addr, dirty: dirty, valid: true, lru: c.tick}
	c.evictions++
	return v, true
}

// Invalidate removes addr if resident (a directory invalidation) and
// reports whether it was present (and dirty).
func (c *SetAssoc) Invalidate(addr uint64) (present, dirty bool) {
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].addr == addr {
			dirty = set[i].dirty
			set[i] = line{}
			c.invalidations++
			return true, dirty
		}
	}
	return false, false
}

// Occupancy returns the number of valid lines.
func (c *SetAssoc) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// Stats returns cumulative hit/miss/eviction/invalidation counts
// (Lookup-based hits and misses only).
func (c *SetAssoc) Stats() (hits, misses, evictions, invalidations uint64) {
	return c.hits, c.misses, c.evictions, c.invalidations
}

// CheckInvariants verifies structural consistency: no duplicate blocks,
// every valid line indexed in its home set. It is O(capacity) and used by
// tests.
func (c *SetAssoc) CheckInvariants() error {
	seen := make(map[uint64]bool)
	for si, set := range c.sets {
		for _, l := range set {
			if !l.valid {
				continue
			}
			if seen[l.addr] {
				return fmt.Errorf("cache: block %#x resident twice", l.addr)
			}
			seen[l.addr] = true
			if &c.set(l.addr)[0] != &c.sets[si][0] {
				return fmt.Errorf("cache: block %#x in wrong set %d", l.addr, si)
			}
		}
	}
	return nil
}
