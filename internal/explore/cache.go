package explore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// cacheShards is the number of append-only JSONL files a cache directory
// is split into. Sharding by key prefix keeps individual files small
// enough to tail-inspect and lets a future campaign runner load shards
// concurrently; 16 divides the first hex digit evenly.
const cacheShards = 16

// CacheStats are a cache's cumulative counters since Open.
type CacheStats struct {
	// Hits and Misses count Get outcomes.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts counts records appended this session; Loaded counts records
	// recovered from disk at Open.
	Puts   int64 `json:"puts"`
	Loaded int64 `json:"loaded"`
}

// HitRate is hits/(hits+misses) in percent, 0 when no Gets happened.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return 100 * float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is the content-addressed result store: an in-memory index over
// append-only JSONL shard files. Keys are Spec.Key() content hashes, so
// any two campaigns that evaluate the same specification share results
// regardless of how their sampling reached it. Get/Put are safe for
// concurrent use by sweep workers.
//
// Durability model: every Put appends one JSON line and flushes it to
// the OS before returning, so a killed process loses at most the record
// being written; Open tolerates a truncated trailing line (it is
// skipped, and the point simply re-evaluates on the next run). Records
// are never rewritten — the newest occurrence of a key wins at load,
// which also makes concurrent append-only writers from separate
// campaigns safe on the same directory.
type Cache struct {
	dir string

	mu    sync.Mutex
	idx   map[string]Sample
	files [cacheShards]*os.File
	bufs  [cacheShards]*bufio.Writer
	stats CacheStats
}

// cacheRecord is one JSONL line of a shard file.
type cacheRecord struct {
	Key    string `json:"key"`
	Spec   Spec   `json:"spec"`
	Sample Sample `json:"sample"`
}

// OpenCache opens (creating if needed) the cache rooted at dir and loads
// every shard into the in-memory index. An empty dir returns a purely
// in-memory cache: same semantics, nothing persisted.
func OpenCache(dir string) (*Cache, error) {
	c := &Cache{dir: dir, idx: make(map[string]Sample)}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("explore: cache dir: %w", err)
	}
	for s := 0; s < cacheShards; s++ {
		path := c.shardPath(s)
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("explore: cache shard: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			var rec cacheRecord
			// A torn trailing line (the process died mid-append) fails to
			// parse; skip it rather than failing the whole campaign — the
			// point just re-evaluates.
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Key == "" {
				continue
			}
			c.idx[rec.Key] = rec.Sample
			c.stats.Loaded++
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("explore: cache shard %s: %w", path, err)
		}
	}
	return c, nil
}

func (c *Cache) shardPath(s int) string {
	return filepath.Join(c.dir, fmt.Sprintf("results-%02x.jsonl", s))
}

// shardOf maps a key to its shard by the key's first hex digit.
func shardOf(key string) int {
	if len(key) == 0 {
		return 0
	}
	d := key[0]
	switch {
	case d >= '0' && d <= '9':
		return int(d - '0')
	case d >= 'a' && d <= 'f':
		return int(d-'a') + 10
	}
	return 0
}

// Get returns the cached sample for key and whether it was present,
// counting the lookup as a hit or miss.
func (c *Cache) Get(key string) (Sample, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.idx[key]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return s, ok
}

// Contains reports residency without touching the hit/miss counters.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.idx[key]
	return ok
}

// Len is the number of distinct keys resident in the index.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.idx)
}

// Put indexes the sample under key and, for a persistent cache, appends
// and flushes its JSONL record. The spec rides along in the record so a
// shard file is self-describing (auditable and re-indexable without the
// campaign that wrote it).
func (c *Cache) Put(key string, spec Spec, s Sample) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idx[key] = s
	c.stats.Puts++
	if c.dir == "" {
		return nil
	}
	sh := shardOf(key)
	if c.files[sh] == nil {
		f, err := os.OpenFile(c.shardPath(sh), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("explore: cache append: %w", err)
		}
		c.files[sh] = f
		c.bufs[sh] = bufio.NewWriter(f)
	}
	b, err := json.Marshal(cacheRecord{Key: key, Spec: spec, Sample: s})
	if err != nil {
		return err
	}
	w := c.bufs[sh]
	w.Write(b)
	w.WriteByte('\n')
	return w.Flush()
}

// Stats returns the cumulative counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close flushes and closes every open shard file.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for s := range c.files {
		if c.files[s] == nil {
			continue
		}
		if err := c.bufs[s].Flush(); err != nil && first == nil {
			first = err
		}
		if err := c.files[s].Close(); err != nil && first == nil {
			first = err
		}
		c.files[s], c.bufs[s] = nil, nil
	}
	return first
}
