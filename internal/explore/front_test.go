package explore

import (
	"bytes"
	"testing"

	"github.com/catnap-noc/catnap/internal/sim"
)

// bruteFront computes the Pareto set by pairwise comparison, resolving
// ties first-wins in insertion order — the reference for Front.
func bruteFront(pts []Point) map[int64]bool {
	kept := make([]Point, 0, len(pts))
	for _, p := range pts {
		dominated := false
		for _, q := range kept {
			if q.PowerW <= p.PowerW && q.Latency <= p.Latency {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		next := kept[:0]
		for _, q := range kept {
			if !(p.PowerW <= q.PowerW && p.Latency <= q.Latency) {
				next = append(next, q)
			}
		}
		kept = append(next, p)
	}
	out := make(map[int64]bool, len(kept))
	for _, p := range kept {
		out[p.Index] = true
	}
	return out
}

func TestFrontMatchesBruteForce(t *testing.T) {
	rng := sim.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			// A small value grid provokes plenty of exact ties.
			pts[i] = Point{
				Index:   int64(i),
				PowerW:  float64(1 + rng.Intn(8)),
				Latency: float64(1 + rng.Intn(8)),
			}
		}
		var f Front
		for _, p := range pts {
			f.Insert(p)
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		want := bruteFront(pts)
		if f.Len() != len(want) {
			t.Fatalf("trial %d: front size %d, brute force %d", trial, f.Len(), len(want))
		}
		for _, p := range f.Points() {
			if !want[p.Index] {
				t.Fatalf("trial %d: front member %d not in brute-force set", trial, p.Index)
			}
		}
	}
}

func TestFrontTieFirstWins(t *testing.T) {
	var f Front
	if !f.Insert(Point{Index: 1, PowerW: 2, Latency: 3}) {
		t.Fatal("first insert rejected")
	}
	if f.Insert(Point{Index: 2, PowerW: 2, Latency: 3}) {
		t.Fatal("exact duplicate objectives must lose to the incumbent")
	}
	if f.Points()[0].Index != 1 {
		t.Fatalf("incumbent replaced: got index %d", f.Points()[0].Index)
	}
}

func TestFrontDominated(t *testing.T) {
	var f Front
	f.Insert(Point{Index: 0, PowerW: 1, Latency: 10})
	f.Insert(Point{Index: 1, PowerW: 5, Latency: 5})
	f.Insert(Point{Index: 2, PowerW: 9, Latency: 1})
	cases := []struct {
		p, l float64
		want bool
	}{
		{0.5, 20, false}, // cheaper than everything
		{1, 10, true},    // exact tie
		{2, 12, true},    // dominated by (1,10)
		{2, 9, false},    // cheaper latency than (1,10) at higher power than nothing better
		{9, 1, true},
		{10, 0.5, false},
		{6, 4, false},
		{6, 6, true}, // dominated by (5,5)
	}
	for _, c := range cases {
		if got := f.Dominated(c.p, c.l); got != c.want {
			t.Errorf("Dominated(%g, %g) = %t, want %t", c.p, c.l, got, c.want)
		}
	}
}

func TestFrontInsertEvictsDominatedRun(t *testing.T) {
	var f Front
	f.Insert(Point{Index: 0, PowerW: 1, Latency: 10})
	f.Insert(Point{Index: 1, PowerW: 2, Latency: 8})
	f.Insert(Point{Index: 2, PowerW: 3, Latency: 6})
	f.Insert(Point{Index: 3, PowerW: 4, Latency: 4})
	// Dominates members 1 and 2, not 0 or 3.
	if !f.Insert(Point{Index: 9, PowerW: 1.5, Latency: 5}) {
		t.Fatal("non-dominated insert rejected")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := []int64{}
	for _, p := range f.Points() {
		got = append(got, p.Index)
	}
	want := []int64{0, 9, 3}
	if len(got) != len(want) {
		t.Fatalf("front members %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("front members %v, want %v", got, want)
		}
	}
}

func TestFrontWriteToDeterministic(t *testing.T) {
	sp := Space{
		Subnets: []int{1, 2}, Widths: []int{128}, VCDepths: []int{4},
		TIdles: []int{4}, Metrics: []string{"BFM"}, Thresholds: []float64{0},
	}
	eval := EvalParams{Load: 0.1, Warmup: 100, Measure: 400, Seed: 1}
	var f Front
	f.Insert(Point{Index: 0, PowerW: 1, Latency: 10})
	f.Insert(Point{Index: 1, PowerW: 2, Latency: 5})
	var a, b bytes.Buffer
	if err := f.WriteTo(&a, sp, eval); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteTo(&b, sp, eval); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteTo is not deterministic")
	}
	if f.Hash() == "" || f.Hash() != f.Hash() {
		t.Fatal("Hash is not stable")
	}
}
