package explore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"
)

// Point is one member of the Pareto front: the design-space point (by
// flat index into the campaign's Space) with its measured objectives.
type Point struct {
	// Index is the flat Space index of the configuration.
	Index int64 `json:"index"`
	// PowerW and Latency are the minimized objectives.
	PowerW  float64 `json:"power_w"`
	Latency float64 `json:"latency"`
	// Accepted and CSCPercent carry the rest of the sample for reports.
	Accepted   float64 `json:"accepted"`
	CSCPercent float64 `json:"csc_percent"`
}

// Front incrementally maintains the Pareto-optimal set under
// minimization of (PowerW, Latency). The invariant: points are sorted by
// strictly increasing PowerW and strictly decreasing Latency, so
// dominance of a candidate is decided by one binary search — O(log n)
// per Insert, plus amortized O(1) removals (each point is removed at
// most once over a front's lifetime).
//
// Ties are resolved first-wins: a candidate equal to a member in both
// objectives is dominated. With a deterministic insertion order this
// makes the front's exact membership reproducible, which the
// checkpoint/resume bit-identity guarantee relies on.
type Front struct {
	pts []Point
}

// Len is the number of points currently on the front.
func (f *Front) Len() int { return len(f.pts) }

// Points returns the front sorted by increasing power. The slice is the
// front's own storage; callers must not modify it.
func (f *Front) Points() []Point { return f.pts }

// Dominated reports whether a candidate with the given objectives is
// (weakly) dominated by a current member: some member is no worse in
// both objectives.
func (f *Front) Dominated(powerW, latency float64) bool {
	// i = first member with PowerW >= powerW.
	i := sort.Search(len(f.pts), func(k int) bool { return f.pts[k].PowerW >= powerW })
	if i > 0 && f.pts[i-1].Latency <= latency {
		return true // strictly cheaper member with no worse latency
	}
	if i < len(f.pts) && f.pts[i].PowerW == powerW && f.pts[i].Latency <= latency {
		return true // equal-power member with no worse latency
	}
	return false
}

// Insert offers p to the front. If p is dominated it returns false and
// the front is unchanged; otherwise p joins, every member p dominates is
// evicted, and Insert returns true.
func (f *Front) Insert(p Point) bool {
	if f.Dominated(p.PowerW, p.Latency) {
		return false
	}
	i := sort.Search(len(f.pts), func(k int) bool { return f.pts[k].PowerW >= p.PowerW })
	// Members from i on have PowerW >= p.PowerW; the prefix of them with
	// Latency >= p.Latency is dominated by p. The front is sorted by
	// decreasing latency, so that prefix is contiguous.
	j := i
	for j < len(f.pts) && f.pts[j].Latency >= p.Latency {
		j++
	}
	if i == j {
		f.pts = append(f.pts, Point{})
		copy(f.pts[i+1:], f.pts[i:])
		f.pts[i] = p
		return true
	}
	f.pts[i] = p
	f.pts = append(f.pts[:i+1], f.pts[j:]...)
	return true
}

// CheckInvariants verifies the sorted/strictly-dominating structure; it
// is O(n) and used by tests.
func (f *Front) CheckInvariants() error {
	for i := 1; i < len(f.pts); i++ {
		if f.pts[i].PowerW <= f.pts[i-1].PowerW || f.pts[i].Latency >= f.pts[i-1].Latency {
			return &invariantError{i: i, a: f.pts[i-1], b: f.pts[i]}
		}
	}
	return nil
}

type invariantError struct {
	i    int
	a, b Point
}

func (e *invariantError) Error() string {
	return "explore: front invariant violated at index " + itoa(e.i) +
		": not strictly increasing power / decreasing latency"
}

func itoa(i int) string {
	b, _ := json.Marshal(i)
	return string(b)
}

// frontFile is the deterministic serialization of a front: one record
// per member in power order, each with its materialized spec. Identical
// campaigns produce byte-identical files — the property the resume and
// warm-cache CI checks compare.
type frontFile struct {
	Points []frontRecord `json:"front"`
}

type frontRecord struct {
	Spec Spec `json:"spec"`
	Point
}

// WriteTo writes the front's deterministic JSON serialization, with each
// member's spec materialized from sp and eval.
func (f *Front) WriteTo(w io.Writer, sp Space, eval EvalParams) error {
	out := frontFile{Points: make([]frontRecord, len(f.pts))}
	for i, p := range f.pts {
		out.Points[i] = frontRecord{Spec: sp.SpecAt(p.Index, eval), Point: p}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Hash returns a short hex digest of the front's deterministic
// serialization (indices and objectives only) for cheap equality checks
// in checkpoints and logs.
func (f *Front) Hash() string {
	b, _ := json.Marshal(f.pts)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}
