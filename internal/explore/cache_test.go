package explore

import (
	"os"
	"path/filepath"
	"testing"
)

func specN(n int) Spec {
	return Spec{Subnets: 1 + n%8, WidthBits: 64 << (n % 3), VCDepth: 4, TIdle: 4,
		Metric: "BFM", Load: 0.1, Warmup: 100, Measure: 400, Seed: uint64(n)}
}

func TestCachePutGetReload(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		s := specN(i)
		if err := c.Put(s.Key(), s, Sample{PowerW: float64(i), Latency: float64(100 - i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := c.Get(specN(3).Key()); !ok || got.PowerW != 3 {
		t.Fatalf("Get after Put: %+v, %t", got, ok)
	}
	if _, ok := c.Get("feedfacefeedfacefeedfacefeedface"); ok {
		t.Fatal("Get of unknown key succeeded")
	}
	st := c.Stats()
	if st.Puts != n || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want %d puts / 1 hit / 1 miss", st, n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reload from disk: every record must come back.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != n {
		t.Fatalf("reloaded %d records, want %d", c2.Len(), n)
	}
	if c2.Stats().Loaded != n {
		t.Fatalf("Loaded = %d, want %d", c2.Stats().Loaded, n)
	}
	for i := 0; i < n; i++ {
		s := specN(i)
		if got, ok := c2.Get(s.Key()); !ok || got.PowerW != float64(i) {
			t.Fatalf("record %d lost across reload: %+v, %t", i, got, ok)
		}
	}
}

func TestCacheToleratesTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := specN(0), specN(1)
	if err := c.Put(s0.Key(), s0, Sample{PowerW: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(s1.Key(), s1, Sample{PowerW: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a mid-append kill: truncate every shard halfway through
	// its last line.
	matches, err := filepath.Glob(filepath.Join(dir, "results-*.jsonl"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no shards written (%v)", err)
	}
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(m, b[:len(b)-7], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Each truncated shard loses exactly its torn last record; earlier
	// lines survive. With two records over at most two shards, at least
	// zero and at most one record per shard remains — the load itself
	// must not error, and surviving records must be intact.
	for _, key := range []string{s0.Key(), s1.Key()} {
		if got, ok := c2.Get(key); ok && got.PowerW != 1 && got.PowerW != 2 {
			t.Fatalf("surviving record corrupted: %+v", got)
		}
	}
	if int64(c2.Len()) != c2.Stats().Loaded {
		t.Fatalf("Len %d != Loaded %d", c2.Len(), c2.Stats().Loaded)
	}
}

func TestCacheInMemory(t *testing.T) {
	c, err := OpenCache("")
	if err != nil {
		t.Fatal(err)
	}
	s := specN(0)
	if err := c.Put(s.Key(), s, Sample{PowerW: 5}); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(s.Key()); !ok || got.PowerW != 5 {
		t.Fatalf("in-memory Get: %+v, %t", got, ok)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardOfCoversAllShards(t *testing.T) {
	for _, k := range []string{"0", "9", "a", "f", "5abc"} {
		s := shardOf(k)
		if s < 0 || s >= cacheShards {
			t.Fatalf("shardOf(%q) = %d", k, s)
		}
	}
	if shardOf("") != 0 || shardOf("z") != 0 {
		t.Fatal("invalid key prefixes must map to shard 0")
	}
}
