package explore

import (
	"strings"
	"testing"
)

func testSpace() Space {
	return Space{
		Subnets:    []int{1, 2, 4},
		Widths:     []int{128, 512},
		VCDepths:   []int{2, 4},
		TIdles:     []int{4},
		Metrics:    []string{"BFM", "Delay"},
		Thresholds: []float64{0, 2},
	}
}

func TestSpaceCoordsRoundTrip(t *testing.T) {
	sp := testSpace()
	size := sp.Size()
	if want := int64(3 * 2 * 2 * 1 * 2 * 2); size != want {
		t.Fatalf("Size = %d, want %d", size, want)
	}
	seen := make(map[string]bool, size)
	for idx := int64(0); idx < size; idx++ {
		if got := sp.flat(sp.coords(idx)); got != idx {
			t.Fatalf("flat(coords(%d)) = %d", idx, got)
		}
		spec := sp.SpecAt(idx, EvalParams{Load: 0.1, Warmup: 1, Measure: 2, Seed: 3})
		if seen[spec.Canonical()] {
			t.Fatalf("index %d: duplicate canonical spec %q", idx, spec.Canonical())
		}
		seen[spec.Canonical()] = true
	}
}

func TestSpaceLastAxisFastest(t *testing.T) {
	sp := testSpace()
	eval := EvalParams{Load: 0.1, Warmup: 1, Measure: 2, Seed: 3}
	s0, s1 := sp.SpecAt(0, eval), sp.SpecAt(1, eval)
	if s0.Threshold == s1.Threshold {
		t.Fatalf("adjacent flat indices should differ in the last axis: %+v vs %+v", s0, s1)
	}
	if s0.Subnets != s1.Subnets || s0.Metric != s1.Metric {
		t.Fatalf("adjacent flat indices changed a non-final axis: %+v vs %+v", s0, s1)
	}
}

func TestSpaceNeighbors(t *testing.T) {
	sp := testSpace()
	// Corner point 0 has only +1 neighbors on multi-valued axes.
	nb := sp.neighbors(0, nil)
	for _, n := range nb {
		if n <= 0 || n >= sp.Size() {
			t.Fatalf("neighbor %d out of range", n)
		}
	}
	// 5 multi-valued axes → 5 in-range +1 steps from the origin corner.
	if len(nb) != 5 {
		t.Fatalf("origin corner has %d neighbors, want 5", len(nb))
	}
	// Deterministic order.
	nb2 := sp.neighbors(0, nil)
	for i := range nb {
		if nb[i] != nb2[i] {
			t.Fatal("neighbor order is not deterministic")
		}
	}
	// An interior coordinate gets both directions on its axis.
	mid := sp.flat([NumAxes]int{1, 0, 0, 0, 0, 0})
	nbm := sp.neighbors(mid, nil)
	if len(nbm) != 6 {
		t.Fatalf("interior point has %d neighbors, want 6", len(nbm))
	}
}

func TestSpaceValidateNamesAxis(t *testing.T) {
	cases := []struct {
		mutate func(*Space)
		want   string
	}{
		{func(s *Space) { s.Subnets = nil }, "Space.Subnets"},
		{func(s *Space) { s.Widths = []int{128, 128} }, "Space.Widths"},
		{func(s *Space) { s.VCDepths = []int{0} }, "Space.VCDepths"},
		{func(s *Space) { s.TIdles = []int{-1} }, "Space.TIdles"},
		{func(s *Space) { s.Metrics = nil }, "Space.Metrics"},
		{func(s *Space) { s.Thresholds = []float64{-0.5} }, "Space.Thresholds"},
	}
	for _, c := range cases {
		sp := testSpace()
		c.mutate(&sp)
		err := sp.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate after mutating %s: %v", c.want, err)
		}
	}
	if err := testSpace().Validate(); err != nil {
		t.Errorf("valid space rejected: %v", err)
	}
	if err := DefaultSpace().Validate(); err != nil {
		t.Errorf("default space rejected: %v", err)
	}
}

func TestSpecKeyDistinguishesFields(t *testing.T) {
	base := Spec{Subnets: 4, WidthBits: 128, VCDepth: 4, TIdle: 4, Metric: "BFM", Threshold: 0, Load: 0.1, Warmup: 100, Measure: 400, Seed: 1}
	keys := map[string]string{base.Key(): "base"}
	variants := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"subnets", func(s *Spec) { s.Subnets = 8 }},
		{"width", func(s *Spec) { s.WidthBits = 256 }},
		{"vcdepth", func(s *Spec) { s.VCDepth = 8 }},
		{"tidle", func(s *Spec) { s.TIdle = 2 }},
		{"metric", func(s *Spec) { s.Metric = "Delay" }},
		{"threshold", func(s *Spec) { s.Threshold = 2 }},
		{"load", func(s *Spec) { s.Load = 0.2 }},
		{"warmup", func(s *Spec) { s.Warmup = 200 }},
		{"measure", func(s *Spec) { s.Measure = 800 }},
		{"seed", func(s *Spec) { s.Seed = 2 }},
	}
	for _, v := range variants {
		s := base
		v.mutate(&s)
		k := s.Key()
		if prev, dup := keys[k]; dup {
			t.Errorf("variant %s collides with %s", v.name, prev)
		}
		keys[k] = v.name
	}
	if base.Key() != base.Key() {
		t.Error("Key is not stable")
	}
}
