// Package explore is the design-space exploration engine behind
// cmd/catnap-explore: it searches a discrete Catnap configuration space
// (subnet count, link width, buffer depth, idle-detect window,
// congestion metric, gating threshold) for the power/latency Pareto
// front. Three layers make campaigns cheap to repeat, kill, and scale:
//
//   - a content-addressed result cache (internal to the campaign
//     directory): every evaluated point is persisted under the hash of
//     its canonical spec, so re-runs and overlapping sweeps cost a map
//     lookup instead of a simulation;
//   - atomic checkpoint/resume: the frontier, sampling cursor, and
//     pending-point set snapshot after every batch, so a killed campaign
//     restarts losslessly and — together with the cache — produces a
//     frontier byte-identical to an uninterrupted run;
//   - adaptive sampling: an incrementally maintained Pareto front
//     (O(log n) dominance checks) steers refinement toward the
//     neighborhood of the front instead of a dumb grid, with a grid mode
//     retained as the measurable baseline.
//
// The engine never simulates anything itself: evaluation is injected as
// an Evaluator and fans out through the internal/runner worker pool,
// inheriting its panic isolation, per-point timeouts, and deterministic
// result ordering. Determinism is load-bearing end to end: identical
// (space, eval params, seed, batch size) reproduce the identical point
// sequence, and the frontier insertion order is fixed, so the final
// front is bit-identical at any worker count, with any cache state, and
// across kill/resume cycles.
package explore

import (
	"fmt"
	"sort"
)

// Space is the discrete search space: one value list per configuration
// axis. A point of the space is one choice per axis, addressed either by
// per-axis indices or by a single flat index in mixed-radix order (last
// axis fastest). Axis value lists must be non-empty; duplicates are
// rejected so the flat-index ↔ spec mapping stays bijective.
type Space struct {
	// Subnets are the candidate subnet counts.
	Subnets []int `json:"subnets"`
	// Widths are the candidate per-subnet link widths in bits.
	Widths []int `json:"widths"`
	// VCDepths are the candidate per-VC buffer depths in flits.
	VCDepths []int `json:"vc_depths"`
	// TIdles are the candidate idle-detect windows in cycles
	// (Config.TIdleDetect).
	TIdles []int `json:"t_idles"`
	// Metrics are the candidate local congestion metrics by paper name
	// ("BFM", "BFA", "IR", "IQOcc", "Delay").
	Metrics []string `json:"metrics"`
	// Thresholds are the candidate congestion-metric set-thresholds in
	// the metric's native unit; 0 selects the metric's tuned default.
	Thresholds []float64 `json:"thresholds"`
}

// DefaultSpace is the space cmd/catnap-explore searches when no axis
// flags are given: every paper-adjacent value of each knob. Its ~1.3k
// points keep the default campaign tractable; axis flags scale it up.
func DefaultSpace() Space {
	return Space{
		Subnets:    []int{1, 2, 4, 8},
		Widths:     []int{64, 128, 256, 512},
		VCDepths:   []int{2, 4, 8},
		TIdles:     []int{2, 4, 8},
		Metrics:    []string{"BFM", "Delay", "IQOcc"},
		Thresholds: []float64{0, 0.5, 2},
	}
}

// axes returns the per-axis cardinalities in canonical axis order.
func (sp Space) axes() []int {
	return []int{len(sp.Subnets), len(sp.Widths), len(sp.VCDepths), len(sp.TIdles), len(sp.Metrics), len(sp.Thresholds)}
}

// NumAxes is the number of configuration axes of a Space.
const NumAxes = 6

// Validate checks that every axis is non-empty and duplicate-free,
// naming the offending axis in the error.
func (sp Space) Validate() error {
	check := func(name string, n int, dup bool) error {
		if n == 0 {
			return fmt.Errorf("explore: Space.%s is empty, want at least one value", name)
		}
		if dup {
			return fmt.Errorf("explore: Space.%s has duplicate values", name)
		}
		return nil
	}
	if err := check("Subnets", len(sp.Subnets), dupInts(sp.Subnets)); err != nil {
		return err
	}
	if err := check("Widths", len(sp.Widths), dupInts(sp.Widths)); err != nil {
		return err
	}
	if err := check("VCDepths", len(sp.VCDepths), dupInts(sp.VCDepths)); err != nil {
		return err
	}
	if err := check("TIdles", len(sp.TIdles), dupInts(sp.TIdles)); err != nil {
		return err
	}
	if err := check("Metrics", len(sp.Metrics), dupStrings(sp.Metrics)); err != nil {
		return err
	}
	if err := check("Thresholds", len(sp.Thresholds), dupFloats(sp.Thresholds)); err != nil {
		return err
	}
	for i, s := range sp.Subnets {
		if s < 1 {
			return fmt.Errorf("explore: Space.Subnets[%d] = %d, want >= 1", i, s)
		}
	}
	for i, w := range sp.Widths {
		if w < 1 {
			return fmt.Errorf("explore: Space.Widths[%d] = %d, want >= 1 bit", i, w)
		}
	}
	for i, d := range sp.VCDepths {
		if d < 1 {
			return fmt.Errorf("explore: Space.VCDepths[%d] = %d, want >= 1 flit", i, d)
		}
	}
	for i, ti := range sp.TIdles {
		if ti < 1 {
			return fmt.Errorf("explore: Space.TIdles[%d] = %d, want >= 1 cycle", i, ti)
		}
	}
	for i, th := range sp.Thresholds {
		if th < 0 {
			return fmt.Errorf("explore: Space.Thresholds[%d] = %g, want >= 0 (0 = metric default)", i, th)
		}
	}
	return nil
}

// Size is the total number of points in the space.
func (sp Space) Size() int64 {
	n := int64(1)
	for _, a := range sp.axes() {
		n *= int64(a)
	}
	return n
}

// coords decomposes a flat index into per-axis indices (last axis
// fastest). idx must be in [0, Size).
func (sp Space) coords(idx int64) [NumAxes]int {
	var c [NumAxes]int
	axes := sp.axes()
	for a := NumAxes - 1; a >= 0; a-- {
		n := int64(axes[a])
		c[a] = int(idx % n)
		idx /= n
	}
	return c
}

// flat recomposes per-axis indices into the flat index.
func (sp Space) flat(c [NumAxes]int) int64 {
	axes := sp.axes()
	idx := int64(0)
	for a := 0; a < NumAxes; a++ {
		idx = idx*int64(axes[a]) + int64(c[a])
	}
	return idx
}

// SpecAt materializes the point at flat index idx with the campaign's
// evaluation parameters.
func (sp Space) SpecAt(idx int64, eval EvalParams) Spec {
	c := sp.coords(idx)
	return Spec{
		Subnets:   sp.Subnets[c[0]],
		WidthBits: sp.Widths[c[1]],
		VCDepth:   sp.VCDepths[c[2]],
		TIdle:     sp.TIdles[c[3]],
		Metric:    sp.Metrics[c[4]],
		Threshold: sp.Thresholds[c[5]],
		Load:      eval.Load,
		Warmup:    eval.Warmup,
		Measure:   eval.Measure,
		Seed:      eval.Seed,
	}
}

// neighbors appends to dst the flat indices one step away from idx along
// each axis (both directions, clamped to the axis bounds), in a fixed
// axis-major order. It returns the extended slice; dst may be nil.
func (sp Space) neighbors(idx int64, dst []int64) []int64 {
	c := sp.coords(idx)
	axes := sp.axes()
	for a := 0; a < NumAxes; a++ {
		for _, d := range [2]int{-1, 1} {
			n := c[a] + d
			if n < 0 || n >= axes[a] {
				continue
			}
			cc := c
			cc[a] = n
			dst = append(dst, sp.flat(cc))
		}
	}
	return dst
}

// Canonical returns the space's canonical one-line serialization: every
// axis with its sorted-as-given value list. It feeds the campaign
// identity hash that guards checkpoints against space drift.
func (sp Space) Canonical() string {
	return fmt.Sprintf("subnets=%v widths=%v vcdepths=%v tidles=%v metrics=%v thresholds=%v",
		sp.Subnets, sp.Widths, sp.VCDepths, sp.TIdles, sp.Metrics, sp.Thresholds)
}

func dupInts(v []int) bool {
	s := append([]int(nil), v...)
	sort.Ints(s)
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			return true
		}
	}
	return false
}

func dupFloats(v []float64) bool {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			return true
		}
	}
	return false
}

func dupStrings(v []string) bool {
	s := append([]string(nil), v...)
	sort.Strings(s)
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			return true
		}
	}
	return false
}
