package explore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// EvalParams are the per-campaign evaluation constants shared by every
// point: the objective load and measurement window. They are part of
// every point's cache key — a cache directory can hold results from many
// campaigns at different loads or scales without collisions.
type EvalParams struct {
	// Load is the offered load the objectives are measured at, in
	// packets/node/cycle.
	Load float64 `json:"load"`
	// Warmup and Measure are the per-point cycle counts.
	Warmup  int64 `json:"warmup"`
	Measure int64 `json:"measure"`
	// Seed is the simulation seed every point runs with.
	Seed uint64 `json:"seed"`
}

// Spec is one fully specified evaluation: a design-space point plus the
// campaign's evaluation parameters. Its canonical serialization is the
// cache identity — two Specs with equal Canonical() are the same
// simulation by construction (the simulator is deterministic in exactly
// these inputs).
type Spec struct {
	// Subnets and WidthBits provision the network.
	Subnets   int `json:"subnets"`
	WidthBits int `json:"width_bits"`
	// VCDepth is the per-VC buffer depth in flits.
	VCDepth int `json:"vc_depth"`
	// TIdle is the idle-detect window in cycles (Config.TIdleDetect).
	TIdle int `json:"t_idle"`
	// Metric is the local congestion metric by paper name.
	Metric string `json:"metric"`
	// Threshold is the metric set-threshold; 0 selects the metric's
	// tuned default.
	Threshold float64 `json:"threshold"`
	// Load, Warmup, Measure, Seed echo the campaign's EvalParams.
	Load    float64 `json:"load"`
	Warmup  int64   `json:"warmup"`
	Measure int64   `json:"measure"`
	Seed    uint64  `json:"seed"`
}

// Canonical returns the spec's canonical one-line serialization: fixed
// field order, %v numeric formatting (shortest round-trippable floats).
// The cache key is the hash of exactly this string, so the format is
// part of the on-disk cache contract — extend it only by appending
// fields, and bump the cache schema when changing existing ones.
func (s Spec) Canonical() string {
	return fmt.Sprintf("subnets=%d width=%d vcdepth=%d tidle=%d metric=%s threshold=%v load=%v warmup=%d measure=%d seed=%d",
		s.Subnets, s.WidthBits, s.VCDepth, s.TIdle, s.Metric, s.Threshold, s.Load, s.Warmup, s.Measure, s.Seed)
}

// Key returns the content address of the spec: the first 16 bytes of
// SHA-256 over Canonical(), hex-encoded (32 characters). 128 bits keeps
// accidental collisions out of reach at any campaign size while halving
// the index and on-disk key footprint versus the full digest.
func (s Spec) Key() string {
	sum := sha256.Sum256([]byte(s.Canonical()))
	return hex.EncodeToString(sum[:16])
}

// Sample is one evaluated point's measured objectives — what the cache
// persists and the frontier consumes.
type Sample struct {
	// PowerW and Latency are the two minimized objectives: total network
	// power in watts and average packet latency in cycles.
	PowerW  float64 `json:"power_w"`
	Latency float64 `json:"latency"`
	// Accepted is the delivered throughput in packets/node/cycle; the
	// engine's feasibility filter compares it against the offered load.
	Accepted float64 `json:"accepted"`
	// CSCPercent records compensated sleep cycles for reporting.
	CSCPercent float64 `json:"csc_percent"`
}
