package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/catnap-noc/catnap/internal/runner"
	"github.com/catnap-noc/catnap/internal/sim"
)

// Evaluator measures one fully specified point: it builds the simulator
// for spec, runs it, and returns the objectives. It is called from the
// runner worker pool, so it must be self-contained (no shared mutable
// state) and should observe ctx for cancellation. The root catnap
// package provides the production evaluator; tests inject synthetic
// ones.
type Evaluator func(ctx context.Context, spec Spec) (Sample, error)

// Options configures a campaign.
type Options struct {
	// Space is the search space; it must pass Validate.
	Space Space
	// Eval holds the per-point evaluation constants (load, window, sim
	// seed) shared by the whole campaign.
	Eval EvalParams
	// Budget caps the number of points proposed for evaluation; <= 0 (or
	// anything above the space size) means the whole space.
	Budget int64
	// Batch is the number of points proposed per sampling round — also
	// the checkpoint granularity. <= 0 selects 64.
	Batch int
	// Grid enumerates the space in flat-index order instead of sampling
	// adaptively. It is the measurable baseline for the adaptive mode.
	Grid bool
	// ExploreFrac is the fraction of each adaptive batch drawn uniformly
	// at random (the rest refines frontier neighborhoods). 0 selects the
	// default 0.25; the valid range is [0, 1].
	ExploreFrac float64
	// MinAccepted is the feasibility floor: a point joins the frontier
	// only if its accepted throughput is at least MinAccepted×Eval.Load,
	// keeping saturated configurations (which deliver low power by
	// dropping the offered traffic on the floor) off the front. 0 selects
	// the default 0.9; the valid range is [0, 1].
	MinAccepted float64
	// Seed drives the sampling RNG (not the simulations — that is
	// Eval.Seed). Each round r uses an independent stream derived from
	// (Seed, r), so the point sequence is a pure function of the
	// campaign identity and survives kill/resume.
	Seed uint64
	// CacheDir is the result-cache directory; "" means in-memory only.
	CacheDir string
	// CheckpointPath, when non-empty, enables checkpoint/resume: the
	// campaign state is snapshotted there atomically at every round, and
	// Run resumes from it when it exists.
	CheckpointPath string
	// Jobs, Timeout, and Progress are passed through to the runner pool
	// for each round's evaluations.
	Jobs     int
	Timeout  time.Duration
	Progress runner.Progress
	// WorkerState is passed through to runner.Options.WorkerState for
	// each round, giving evaluators per-worker reusable state (the root
	// package threads a simulator pool here).
	WorkerState func() any
}

// Validate checks every engine knob, naming the offending field.
func (o Options) Validate() error {
	if err := o.Space.Validate(); err != nil {
		return err
	}
	if o.Eval.Load <= 0 {
		return fmt.Errorf("explore: Options.Eval.Load = %v, want > 0", o.Eval.Load)
	}
	if o.Eval.Warmup < 0 {
		return fmt.Errorf("explore: Options.Eval.Warmup = %d, want >= 0", o.Eval.Warmup)
	}
	if o.Eval.Measure <= 0 {
		return fmt.Errorf("explore: Options.Eval.Measure = %d, want > 0", o.Eval.Measure)
	}
	if o.Batch < 0 {
		return fmt.Errorf("explore: Options.Batch = %d, want >= 0 (0 = default)", o.Batch)
	}
	if o.ExploreFrac < 0 || o.ExploreFrac > 1 {
		return fmt.Errorf("explore: Options.ExploreFrac = %v, want in [0, 1]", o.ExploreFrac)
	}
	if o.MinAccepted < 0 || o.MinAccepted > 1 {
		return fmt.Errorf("explore: Options.MinAccepted = %v, want in [0, 1]", o.MinAccepted)
	}
	return nil
}

// Result is a finished (or budget-exhausted) campaign's outcome.
type Result struct {
	// Front is the final Pareto front.
	Front *Front
	// SpaceSize is the total point count of the searched space.
	SpaceSize int64
	// Proposed counts distinct points committed (evaluated, infeasible,
	// or failed); Evaluated counts the subset that simulated
	// successfully, Infeasible the evaluated points kept off the front by
	// the feasibility filter, and Failures the points that errored.
	Proposed   int64
	Evaluated  int64
	Infeasible int64
	Failures   int64
	// Rounds is the number of sampling rounds committed.
	Rounds int
	// Cache is the result cache's counters for this run.
	Cache CacheStats
}

// Run executes a campaign: propose a batch, checkpoint it, evaluate it
// through the runner pool (cache-first), commit outcomes to the frontier
// in deterministic point order, repeat until the budget or the space is
// exhausted. With a CheckpointPath, a previously killed campaign resumes
// from its snapshot and — because commits are idempotent and the point
// sequence is a pure function of the campaign identity — finishes with a
// frontier byte-identical to an uninterrupted run's.
func Run(ctx context.Context, ev Evaluator, opts Options) (*Result, error) {
	if ev == nil {
		return nil, errors.New("explore: nil Evaluator")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	sp := opts.Space
	batch := opts.Batch
	if batch == 0 {
		batch = 64
	}
	exploreFrac := opts.ExploreFrac
	if exploreFrac == 0 {
		exploreFrac = 0.25
	}
	minAccepted := opts.MinAccepted
	if minAccepted == 0 {
		minAccepted = 0.9
	}
	size := sp.Size()
	budget := opts.Budget
	if budget <= 0 || budget > size {
		budget = size
	}
	id := identity(sp, opts.Eval, opts.Seed, opts.Grid, batch)

	cache, err := OpenCache(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	defer cache.Close()

	// Campaign state: restored from the checkpoint when one exists.
	seen := make(map[int64]struct{})
	front := &Front{}
	var pending []int64
	round := 0
	var evaluated, infeasible, failures int64
	if opts.CheckpointPath != "" {
		ck, err := readCheckpoint(opts.CheckpointPath, id)
		if err != nil {
			return nil, err
		}
		if ck != nil {
			if seen, err = decodeIndices(ck.Seen); err != nil {
				return nil, err
			}
			front.pts = append(front.pts, ck.Front...)
			if err := front.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("explore: checkpoint %s: %w", opts.CheckpointPath, err)
			}
			if h := front.Hash(); h != ck.FrontHash {
				return nil, fmt.Errorf("explore: checkpoint %s: front hash %s, recorded %s", opts.CheckpointPath, h, ck.FrontHash)
			}
			round, pending = ck.Round, ck.Pending
			evaluated, infeasible, failures = ck.Evaluated, ck.Infeasible, ck.Failures
		}
	}

	save := func() error {
		if opts.CheckpointPath == "" {
			return nil
		}
		return writeCheckpoint(opts.CheckpointPath, &checkpoint{
			Version: checkpointVersion, Identity: id,
			Round: round, Evaluated: evaluated, Infeasible: infeasible, Failures: failures,
			Seen: encodeIndices(seen), Pending: pending,
			Front: front.Points(), FrontHash: front.Hash(),
		})
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(pending) == 0 {
			pending = propose(sp, front, seen, proposeParams{
				round: round, batch: batch, budget: budget,
				grid: opts.Grid, exploreFrac: exploreFrac, seed: opts.Seed,
			})
			if len(pending) == 0 {
				break
			}
			// Snapshot with the new batch pending: a kill anywhere between
			// here and the commit replays exactly this batch on resume.
			if err := save(); err != nil {
				return nil, err
			}
		}

		points := make([]runner.Point[Sample], len(pending))
		for i, idx := range pending {
			spec := sp.SpecAt(idx, opts.Eval)
			points[i] = runner.Point[Sample]{
				Label:  specLabel(spec),
				Cycles: opts.Eval.Warmup + opts.Eval.Measure,
				Run: func(ctx context.Context) (Sample, error) {
					key := spec.Key()
					if s, ok := cache.Get(key); ok {
						return s, nil
					}
					s, err := ev(ctx, spec)
					if err != nil {
						return Sample{}, err
					}
					if err := cache.Put(key, spec, s); err != nil {
						return Sample{}, err
					}
					return s, nil
				},
			}
		}
		out, err := runner.Run(ctx, points, runner.Options{Jobs: opts.Jobs, Timeout: opts.Timeout, Progress: opts.Progress, WorkerState: opts.WorkerState})
		if err != nil {
			// Cancelled mid-batch: the checkpoint still carries this batch
			// as pending, and every completed point is in the cache, so a
			// resume replays it losslessly.
			return nil, err
		}

		// Commit in point order. Membership in seen makes a replayed
		// commit a no-op, and the fixed order makes frontier membership
		// deterministic at any worker count.
		for i, o := range out {
			idx := pending[i]
			if _, dup := seen[idx]; dup {
				continue
			}
			seen[idx] = struct{}{}
			if o.Err != nil {
				failures++
				continue
			}
			evaluated++
			s := o.Value
			if s.Accepted < minAccepted*opts.Eval.Load {
				infeasible++
				continue
			}
			front.Insert(Point{Index: idx, PowerW: s.PowerW, Latency: s.Latency, Accepted: s.Accepted, CSCPercent: s.CSCPercent})
		}
		pending = nil
		round++
	}

	if err := save(); err != nil {
		return nil, err
	}
	return &Result{
		Front: front, SpaceSize: size,
		Proposed: int64(len(seen)), Evaluated: evaluated, Infeasible: infeasible, Failures: failures,
		Rounds: round, Cache: cache.Stats(),
	}, nil
}

// specLabel is a point's compact progress label.
func specLabel(s Spec) string {
	return fmt.Sprintf("s%d-w%d-vc%d-ti%d-%s-t%v", s.Subnets, s.WidthBits, s.VCDepth, s.TIdle, s.Metric, s.Threshold)
}

type proposeParams struct {
	round       int
	batch       int
	budget      int64
	grid        bool
	exploreFrac float64
	seed        uint64
}

// propose selects the next batch of unseen flat indices. Grid mode scans
// the space in flat-index order; adaptive mode refines ±1-step neighbors
// of current frontier members (fixed axis-major order) and fills the
// remainder — all of round 0 — with uniform random draws from the
// round's derived RNG stream. An empty result means the campaign is
// done: budget spent or no reachable unseen point.
//
// Everything here is a pure function of (space, front, seen, params), so
// a resumed campaign re-proposes exactly what the killed one would have.
func propose(sp Space, front *Front, seen map[int64]struct{}, p proposeParams) []int64 {
	remaining := p.budget - int64(len(seen))
	if remaining <= 0 {
		return nil
	}
	batch := p.batch
	if int64(batch) > remaining {
		batch = int(remaining)
	}

	cands := make([]int64, 0, batch)
	inBatch := make(map[int64]struct{}, batch)
	add := func(idx int64) bool {
		if _, ok := seen[idx]; ok {
			return false
		}
		if _, ok := inBatch[idx]; ok {
			return false
		}
		inBatch[idx] = struct{}{}
		cands = append(cands, idx)
		return true
	}

	if p.grid {
		for idx := int64(0); idx < sp.Size() && len(cands) < batch; idx++ {
			add(idx)
		}
		return cands
	}

	// Refinement: neighbors of the front, in the front's power order and
	// the space's fixed axis order, up to the non-exploration share.
	refineCap := batch - int(math.Round(p.exploreFrac*float64(batch)))
	if p.round > 0 {
		var nbuf []int64
		for _, fp := range front.Points() {
			if len(cands) >= refineCap {
				break
			}
			nbuf = sp.neighbors(fp.Index, nbuf[:0])
			for _, n := range nbuf {
				if len(cands) >= refineCap {
					break
				}
				add(n)
			}
		}
	}

	// Exploration: uniform draws from this round's derived stream, with
	// bounded rejection against already-sampled points.
	rng := sim.NewRNG(p.seed).SplitN(p.round)
	size := sp.Size()
	for attempts := 0; len(cands) < batch && attempts < 128*batch; attempts++ {
		add(int64(rng.Intn(int(size))))
	}

	// Progress guarantee: if sampling found nothing (space nearly
	// exhausted), fall back to a deterministic scan for any unseen point.
	if len(cands) == 0 {
		for idx := int64(0); idx < size && len(cands) < batch; idx++ {
			add(idx)
		}
	}
	return cands
}
