package explore

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// checkpointVersion guards the on-disk checkpoint schema.
const checkpointVersion = 1

// checkpoint is the atomically snapshotted campaign state: everything
// needed to continue a killed campaign bit-identically. The cache holds
// the expensive part (evaluated samples); the checkpoint holds the
// cheap-but-stateful part — the frontier, the sampling cursor (round
// number; each round derives its RNG from the campaign seed and the
// round), the set of already-proposed points, and the pending batch that
// was proposed but possibly not fully committed when the process died.
type checkpoint struct {
	Version int `json:"version"`
	// Identity is the campaign identity hash (space + eval params + seed
	// + mode + batch size). A checkpoint from a different campaign is
	// rejected rather than silently continued.
	Identity string `json:"identity"`
	// Round is the sampling round the pending batch belongs to.
	Round int `json:"round"`
	// Evaluated counts points committed to the frontier so far.
	Evaluated int64 `json:"evaluated"`
	// Infeasible and Failures count committed points that were kept out
	// of the frontier (saturated / errored).
	Infeasible int64 `json:"infeasible"`
	Failures   int64 `json:"failures"`
	// Seen is the delta-varint + base64 encoding of every flat index
	// proposed in committed rounds (sorted). Commit is idempotent via
	// this set, which is what makes kill-at-any-instant lossless.
	Seen string `json:"seen"`
	// Pending is the proposed-but-uncommitted batch, in commit order.
	Pending []int64 `json:"pending"`
	// Front is the frontier after the last committed batch.
	Front []Point `json:"front"`
	// FrontHash double-checks the frontier decoded from Front.
	FrontHash string `json:"front_hash"`
}

// identity hashes everything that fixes a campaign's point sequence.
// Budget is deliberately excluded: resuming with a larger budget extends
// the same campaign.
func identity(sp Space, eval EvalParams, seed uint64, grid bool, batch int) string {
	s := fmt.Sprintf("%s|load=%v warmup=%d measure=%d simseed=%d|seed=%d grid=%t batch=%d|v%d",
		sp.Canonical(), eval.Load, eval.Warmup, eval.Measure, eval.Seed, seed, grid, batch, checkpointVersion)
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:12])
}

// encodeIndices compresses a set of flat indices as sorted deltas in
// unsigned varints, base64-encoded. Densely sampled spaces cost ~1–2
// bytes per point, so even million-point campaigns checkpoint in a few
// megabytes.
func encodeIndices(set map[int64]struct{}) string {
	idx := make([]int64, 0, len(set))
	for i := range set {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	buf := make([]byte, 0, len(idx)*2)
	var tmp [binary.MaxVarintLen64]byte
	prev := int64(0)
	for _, i := range idx {
		n := binary.PutUvarint(tmp[:], uint64(i-prev))
		buf = append(buf, tmp[:n]...)
		prev = i
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeIndices inverts encodeIndices.
func decodeIndices(s string) (map[int64]struct{}, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("explore: checkpoint seen set: %w", err)
	}
	set := make(map[int64]struct{})
	prev := int64(0)
	for len(buf) > 0 {
		d, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("explore: checkpoint seen set: truncated varint")
		}
		buf = buf[n:]
		prev += int64(d)
		set[prev] = struct{}{}
	}
	return set, nil
}

// writeCheckpoint atomically replaces path with the serialized state:
// write to a temp file in the same directory, sync, rename. A kill at
// any instant leaves either the previous checkpoint or the new one,
// never a torn file.
func writeCheckpoint(path string, ck *checkpoint) error {
	b, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("explore: checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("explore: checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(append(b, '\n'))
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("explore: checkpoint: %w", werr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("explore: checkpoint: %w", err)
	}
	return nil
}

// readCheckpoint loads path; a missing file returns (nil, nil) — a fresh
// campaign. A checkpoint whose identity does not match id is an error:
// continuing it would silently mix two different campaigns.
func readCheckpoint(path, id string) (*checkpoint, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("explore: checkpoint: %w", err)
	}
	var ck checkpoint
	if err := json.Unmarshal(b, &ck); err != nil {
		return nil, fmt.Errorf("explore: checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("explore: checkpoint %s: version %d, want %d", path, ck.Version, checkpointVersion)
	}
	if ck.Identity != id {
		return nil, fmt.Errorf("explore: checkpoint %s belongs to campaign %s, not %s (space, eval params, seed, mode, or batch size changed; delete it to start over)",
			path, ck.Identity, id)
	}
	return &ck, nil
}
