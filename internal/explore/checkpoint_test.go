package explore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEncodeDecodeIndicesRoundTrip(t *testing.T) {
	cases := []map[int64]struct{}{
		{},
		{0: {}},
		{0: {}, 1: {}, 2: {}},
		{5: {}, 1000000: {}, 31: {}, 32: {}},
	}
	for i, set := range cases {
		got, err := decodeIndices(encodeIndices(set))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(set) {
			t.Fatalf("case %d: %d indices, want %d", i, len(got), len(set))
		}
		for k := range set {
			if _, ok := got[k]; !ok {
				t.Fatalf("case %d: lost index %d", i, k)
			}
		}
	}
	if _, err := decodeIndices("!!!not-base64!!!"); err == nil {
		t.Fatal("bad base64 accepted")
	}
}

func TestCheckpointWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "ckpt.json")
	sp := testSpace()
	eval := EvalParams{Load: 0.1, Warmup: 100, Measure: 400, Seed: 1}
	id := identity(sp, eval, 7, false, 8)

	if ck, err := readCheckpoint(path, id); err != nil || ck != nil {
		t.Fatalf("missing checkpoint: (%v, %v), want (nil, nil)", ck, err)
	}

	var f Front
	f.Insert(Point{Index: 3, PowerW: 1, Latency: 10})
	in := &checkpoint{
		Version: checkpointVersion, Identity: id,
		Round: 2, Evaluated: 15, Infeasible: 1, Failures: 2,
		Seen:    encodeIndices(map[int64]struct{}{1: {}, 3: {}, 9: {}}),
		Pending: []int64{4, 5},
		Front:   f.Points(), FrontHash: f.Hash(),
	}
	if err := writeCheckpoint(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readCheckpoint(path, id)
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != 2 || out.Evaluated != 15 || out.Infeasible != 1 || out.Failures != 2 {
		t.Fatalf("counters lost: %+v", out)
	}
	if len(out.Pending) != 2 || out.Pending[0] != 4 || out.Pending[1] != 5 {
		t.Fatalf("pending lost: %v", out.Pending)
	}
	if len(out.Front) != 1 || out.Front[0].Index != 3 {
		t.Fatalf("front lost: %+v", out.Front)
	}

	// A different campaign identity must be rejected, not silently mixed.
	otherID := identity(sp, eval, 8, false, 8)
	if _, err := readCheckpoint(path, otherID); err == nil || !strings.Contains(err.Error(), "belongs to campaign") {
		t.Fatalf("identity mismatch not rejected: %v", err)
	}

	// Atomic replace leaves no temp litter.
	in.Round = 3
	if err := writeCheckpoint(path, in); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".ckpt-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestIdentityCoversCampaignKnobs(t *testing.T) {
	sp := testSpace()
	eval := EvalParams{Load: 0.1, Warmup: 100, Measure: 400, Seed: 1}
	base := identity(sp, eval, 1, false, 8)
	altSpace := sp
	altSpace.Subnets = []int{1, 2}
	altEval := eval
	altEval.Load = 0.2
	for name, id := range map[string]string{
		"space": identity(altSpace, eval, 1, false, 8),
		"eval":  identity(sp, altEval, 1, false, 8),
		"seed":  identity(sp, eval, 2, false, 8),
		"grid":  identity(sp, eval, 1, true, 8),
		"batch": identity(sp, eval, 1, false, 16),
	} {
		if id == base {
			t.Errorf("identity ignores %s", name)
		}
	}
	if identity(sp, eval, 1, false, 8) != base {
		t.Error("identity is not stable")
	}
}
