package explore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// synthEval is a deterministic pure-function evaluator: objectives are
// derived from the spec alone, with a mild power/latency trade-off so
// fronts are non-trivial, and saturation above width-dependent loads so
// the feasibility filter has something to do.
func synthEval(ctx context.Context, spec Spec) (Sample, error) {
	if err := ctx.Err(); err != nil {
		return Sample{}, err
	}
	power := float64(spec.Subnets)*2 + float64(spec.WidthBits)/64 + float64(spec.VCDepth)/4 + spec.Threshold/10
	latency := 900/float64(spec.WidthBits) + 16/float64(spec.Subnets) + float64(spec.TIdle)/8
	if spec.Metric == "Delay" {
		latency += 0.5
	}
	accepted := spec.Load
	// Narrow single-subnet configs saturate: deliver half the offered load.
	if spec.Subnets == 1 && spec.WidthBits <= 128 {
		accepted = spec.Load / 2
	}
	return Sample{PowerW: power, Latency: latency, Accepted: accepted, CSCPercent: 10}, nil
}

func testOptions(sp Space) Options {
	return Options{
		Space: sp,
		Eval:  EvalParams{Load: 0.1, Warmup: 100, Measure: 400, Seed: 1},
		Batch: 8,
		Seed:  7,
		Jobs:  4,
	}
}

func frontBytes(t *testing.T, r *Result, sp Space, eval EvalParams) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Front.WriteTo(&buf, sp, eval); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEngineGridCoversSpace(t *testing.T) {
	sp := testSpace()
	opts := testOptions(sp)
	opts.Grid = true
	r, err := Run(context.Background(), synthEval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Proposed != sp.Size() || r.Evaluated != sp.Size() {
		t.Fatalf("grid covered %d/%d points (evaluated %d)", r.Proposed, sp.Size(), r.Evaluated)
	}
	if r.Failures != 0 {
		t.Fatalf("%d failures", r.Failures)
	}
	if r.Front.Len() == 0 {
		t.Fatal("empty front")
	}
	if err := r.Front.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The feasibility filter must keep saturated configs off the front.
	for _, p := range r.Front.Points() {
		s := sp.SpecAt(p.Index, opts.Eval)
		if s.Subnets == 1 && s.WidthBits <= 128 {
			t.Fatalf("saturated config on the front: %+v", s)
		}
	}
}

func TestEngineAdaptiveFullBudgetMatchesGrid(t *testing.T) {
	// With budget = space size, both modes evaluate every point, so the
	// Pareto front must be identical (dominance is order-independent for
	// distinct objective pairs; synthEval never produces exact ties on
	// this space).
	sp := testSpace()
	gopts := testOptions(sp)
	gopts.Grid = true
	grid, err := Run(context.Background(), synthEval, gopts)
	if err != nil {
		t.Fatal(err)
	}
	aopts := testOptions(sp)
	adaptive, err := Run(context.Background(), synthEval, aopts)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Proposed != sp.Size() {
		t.Fatalf("adaptive covered %d/%d", adaptive.Proposed, sp.Size())
	}
	gb := frontBytes(t, grid, sp, gopts.Eval)
	ab := frontBytes(t, adaptive, sp, aopts.Eval)
	if !bytes.Equal(gb, ab) {
		t.Fatalf("full-budget fronts differ:\ngrid: %s\nadaptive: %s", gb, ab)
	}
}

func TestEngineBudgetRespected(t *testing.T) {
	opts := testOptions(testSpace())
	opts.Budget = 10
	opts.Batch = 4
	r, err := Run(context.Background(), synthEval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Proposed != 10 {
		t.Fatalf("proposed %d points, want exactly the budget 10", r.Proposed)
	}
	if r.Rounds != 3 { // 4 + 4 + 2
		t.Fatalf("rounds = %d, want 3", r.Rounds)
	}
}

func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	sp := testSpace()
	var ref []byte
	for _, jobs := range []int{1, 3, 8} {
		opts := testOptions(sp)
		opts.Jobs = jobs
		opts.Budget = 20
		r, err := Run(context.Background(), synthEval, opts)
		if err != nil {
			t.Fatal(err)
		}
		b := frontBytes(t, r, sp, opts.Eval)
		if ref == nil {
			ref = b
		} else if !bytes.Equal(ref, b) {
			t.Fatalf("front differs at jobs=%d", jobs)
		}
	}
}

func TestEngineWarmCacheBitIdentical(t *testing.T) {
	sp := testSpace()
	dir := t.TempDir()
	opts := testOptions(sp)
	opts.Budget = 20
	opts.CacheDir = dir
	cold, err := Run(context.Background(), synthEval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.Hits != 0 || cold.Cache.Misses != cold.Proposed {
		t.Fatalf("cold cache stats %+v", cold.Cache)
	}
	warm, err := Run(context.Background(), synthEval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Misses != 0 || warm.Cache.Hits != warm.Proposed {
		t.Fatalf("warm run not fully cached: %+v", warm.Cache)
	}
	if !bytes.Equal(frontBytes(t, cold, sp, opts.Eval), frontBytes(t, warm, sp, opts.Eval)) {
		t.Fatal("warm front differs from cold front")
	}
}

// TestEngineKillResumeBitIdentical is the resumability acceptance test:
// a campaign killed after every possible number of evaluations, then
// resumed, must finish with a frontier byte-identical to an
// uninterrupted run's.
func TestEngineKillResumeBitIdentical(t *testing.T) {
	sp := testSpace()
	baseOpts := testOptions(sp)
	baseOpts.Budget = 24
	baseOpts.Batch = 8
	baseline, err := Run(context.Background(), synthEval, baseOpts)
	if err != nil {
		t.Fatal(err)
	}
	want := frontBytes(t, baseline, sp, baseOpts.Eval)

	for _, killAfter := range []int64{1, 5, 8, 9, 17, 23} {
		t.Run(fmt.Sprintf("kill-after-%d", killAfter), func(t *testing.T) {
			dir := t.TempDir()
			opts := baseOpts
			opts.CacheDir = filepath.Join(dir, "cache")
			opts.CheckpointPath = filepath.Join(dir, "ckpt.json")
			opts.Jobs = 1 // make the kill point exact

			// First run: the evaluator pulls the plug mid-campaign.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var evals atomic.Int64
			killing := func(ctx context.Context, spec Spec) (Sample, error) {
				if evals.Add(1) >= killAfter {
					cancel()
				}
				return synthEval(ctx, spec)
			}
			if _, err := Run(ctx, killing, opts); !errors.Is(err, context.Canceled) {
				t.Fatalf("killed run returned %v, want context.Canceled", err)
			}

			// Resume: same cache and checkpoint, fresh context.
			resumed, err := Run(context.Background(), synthEval, opts)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Proposed != baseline.Proposed {
				t.Fatalf("resumed campaign proposed %d points, baseline %d", resumed.Proposed, baseline.Proposed)
			}
			got := frontBytes(t, resumed, sp, opts.Eval)
			if !bytes.Equal(got, want) {
				t.Fatalf("resumed front differs from uninterrupted run:\nresumed: %s\nbaseline: %s", got, want)
			}
		})
	}
}

func TestEngineResumeOfFinishedCampaignIsNoop(t *testing.T) {
	sp := testSpace()
	dir := t.TempDir()
	opts := testOptions(sp)
	opts.Budget = 12
	opts.CacheDir = filepath.Join(dir, "cache")
	opts.CheckpointPath = filepath.Join(dir, "ckpt.json")
	first, err := Run(context.Background(), synthEval, opts)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(context.Background(), synthEval, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cache.Misses != 0 {
		t.Fatalf("finished campaign re-simulated %d points", again.Cache.Misses)
	}
	if !bytes.Equal(frontBytes(t, first, sp, opts.Eval), frontBytes(t, again, sp, opts.Eval)) {
		t.Fatal("re-run of finished campaign changed the front")
	}
}

func TestEngineFailedPointsAreCountedNotFatal(t *testing.T) {
	sp := testSpace()
	opts := testOptions(sp)
	opts.Grid = true
	flaky := func(ctx context.Context, spec Spec) (Sample, error) {
		if spec.Subnets == 2 {
			return Sample{}, errors.New("synthetic failure")
		}
		return synthEval(ctx, spec)
	}
	r, err := Run(context.Background(), flaky, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures == 0 {
		t.Fatal("no failures recorded")
	}
	if r.Proposed != sp.Size() {
		t.Fatalf("failures stopped the campaign at %d/%d", r.Proposed, sp.Size())
	}
	for _, p := range r.Front.Points() {
		if sp.SpecAt(p.Index, opts.Eval).Subnets == 2 {
			t.Fatal("failed point landed on the front")
		}
	}
}

func TestEngineOptionsValidate(t *testing.T) {
	valid := testOptions(testSpace())
	cases := []struct {
		name   string
		mutate func(*Options)
		want   string
	}{
		{"empty-space", func(o *Options) { o.Space.Metrics = nil }, "Space.Metrics"},
		{"load", func(o *Options) { o.Eval.Load = 0 }, "Options.Eval.Load"},
		{"warmup", func(o *Options) { o.Eval.Warmup = -1 }, "Options.Eval.Warmup"},
		{"measure", func(o *Options) { o.Eval.Measure = 0 }, "Options.Eval.Measure"},
		{"batch", func(o *Options) { o.Batch = -1 }, "Options.Batch"},
		{"explore-frac", func(o *Options) { o.ExploreFrac = 1.5 }, "Options.ExploreFrac"},
		{"min-accepted", func(o *Options) { o.MinAccepted = -0.1 }, "Options.MinAccepted"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := valid
			c.mutate(&o)
			err := o.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want mention of %s", err, c.want)
			}
			if _, err := Run(context.Background(), synthEval, o); err == nil {
				t.Fatal("Run accepted invalid options")
			}
		})
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	if _, err := Run(context.Background(), nil, valid); err == nil {
		t.Fatal("nil evaluator accepted")
	}
}
