package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync/atomic"

	"github.com/catnap-noc/catnap/internal/stats"
)

// MetricPoint is one exported metrics row: a counter total or one closed
// window of a series. The flat shape (rather than nested per-metric
// arrays) keeps the JSONL and CSV forms line-per-fact and trivially
// greppable.
type MetricPoint struct {
	// Metric names the instrument, e.g. "power.active_router_cycles".
	Metric string `json:"metric"`
	// Label is the collector's label (the sweep point or experiment
	// name); empty for unlabeled single runs.
	Label string `json:"label,omitempty"`
	// Subnet scopes per-subnet metrics; -1 means network-wide.
	Subnet int `json:"subnet"`
	// Cycle is the end of the window a series value covers, or -1 for
	// counters (which are totals over the whole run).
	Cycle int64 `json:"cycle"`
	// Value is the windowed sum or counter total.
	Value float64 `json:"value"`
}

// Counter is a monotonically increasing total. Add is atomic because
// power and congestion callbacks may arrive from per-subnet goroutines
// under noc.ExecMode.Parallel.
type Counter struct {
	name   string
	subnet int
	v      int64
}

// Add increments the counter by d.
//
//catnap:hotpath
//catnap:worker-safe atomic increment; deliverable from shard workers
func (c *Counter) Add(d int64) { atomic.AddInt64(&c.v, d) }

// Value returns the current total.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Name returns the counter's metric name.
func (c *Counter) Name() string { return c.name }

// seriesMetric pairs a stats.Series with its registry identity. Series
// are only ever touched from the collector's AfterCycle (single
// goroutine), so they need no locking.
type seriesMetric struct {
	name   string
	subnet int
	s      *stats.Series
}

// Registry holds a collector's instruments in registration order, so
// exports are deterministic.
type Registry struct {
	label    string
	counters []*Counter
	series   []*seriesMetric
}

// NewRegistry returns an empty registry whose exported points carry
// label.
func NewRegistry(label string) *Registry { return &Registry{label: label} }

// Counter registers and returns a counter. Subnet -1 means
// network-wide.
func (r *Registry) Counter(name string, subnet int) *Counter {
	c := &Counter{name: name, subnet: subnet}
	r.counters = append(r.counters, c)
	return c
}

// Series registers a windowed series. Subnet -1 means network-wide.
func (r *Registry) Series(name string, subnet int, window int64) *stats.Series {
	s := stats.NewSeries(window)
	r.series = append(r.series, &seriesMetric{name: name, subnet: subnet, s: s})
	return s
}

// Points exports every instrument: counters first (Cycle -1), then each
// series' closed windows. Call after finishing the series (the
// Collector's Finish does both).
func (r *Registry) Points() []MetricPoint {
	var out []MetricPoint
	for _, c := range r.counters {
		out = append(out, MetricPoint{
			Metric: c.name, Label: r.label, Subnet: c.subnet,
			Cycle: -1, Value: float64(c.Value()),
		})
	}
	for _, sm := range r.series {
		for _, p := range sm.s.Points() {
			out = append(out, MetricPoint{
				Metric: sm.name, Label: r.label, Subnet: sm.subnet,
				Cycle: p.Cycle, Value: p.Value,
			})
		}
	}
	return out
}

// finish closes every series' trailing window at cycle now.
func (r *Registry) finish(now int64) {
	for _, sm := range r.series {
		sm.s.Finish(now)
	}
}

// WriteMetricsJSONL encodes points as JSONL (one object per line).
func WriteMetricsJSONL(w io.Writer, points []MetricPoint) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMetricsCSV encodes points as CSV with a header row.
func WriteMetricsCSV(w io.Writer, points []MetricPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "label", "subnet", "cycle", "value"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			p.Metric, p.Label,
			strconv.Itoa(p.Subnet),
			strconv.FormatInt(p.Cycle, 10),
			strconv.FormatFloat(p.Value, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMetrics streams a JSONL metrics file, calling fn per point.
func ReadMetrics(r io.Reader, fn func(MetricPoint) error) error {
	dec := json.NewDecoder(r)
	for i := 0; ; i++ {
		var p MetricPoint
		if err := dec.Decode(&p); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("telemetry: metric %d: %w", i, err)
		}
		if err := fn(p); err != nil {
			return err
		}
	}
}

// ReadAllMetrics reads a whole JSONL metrics file into memory.
func ReadAllMetrics(r io.Reader) ([]MetricPoint, error) {
	var out []MetricPoint
	err := ReadMetrics(r, func(p MetricPoint) error {
		out = append(out, p)
		return nil
	})
	return out, err
}
