// Package telemetry is the simulator's cycle-level observability layer:
// a metrics registry of counters and windowed series, plus a structured
// event log for discrete state transitions (router sleep/wake, congestion
// on/off, sweep-point lifecycle).
//
// Telemetry is strictly opt-in and free when off. The collector attaches
// through three existing hooks — noc.CycleObserver, noc.PowerTracer and
// congestion.Tracer — all of which default to nil/empty; a simulation
// that never attaches a Recorder executes exactly the same instructions
// it did before this package existed (the only residue is a nil pointer
// compare at each power transition). TestTelemetryOffIdentical and the
// bench-telemetry guard pin that property.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventType names one kind of structured event. The values are stable
// strings (they appear in JSONL output), not enum ordinals.
type EventType string

// Event types. Congestion on/off pairs are separate types rather than a
// boolean field so a stream can be filtered with a plain string match.
const (
	// EventRouterSleep records a router power-gating off after the
	// idle-detect window elapsed.
	EventRouterSleep EventType = "router.sleep"
	// EventRouterWake records a router beginning its wake-up sequence;
	// Cause distinguishes look-ahead, NI and policy wakeups.
	EventRouterWake EventType = "router.wake"
	// EventCongestionOn / EventCongestionOff record a node's local
	// congestion status (LCS) latching on or off.
	EventCongestionOn  EventType = "congestion.on"
	EventCongestionOff EventType = "congestion.off"
	// EventRCSOn / EventRCSOff record a region's remote congestion
	// status toggling as the OR-network latches each window.
	EventRCSOn  EventType = "rcs.on"
	EventRCSOff EventType = "rcs.off"
	// EventSweepStart / EventSweepDone / EventSweepError record sweep-
	// point lifecycle from the runner; Cycle, Subnet and Node are -1.
	EventSweepStart EventType = "sweep.start"
	EventSweepDone  EventType = "sweep.done"
	EventSweepError EventType = "sweep.error"
)

// Event is one structured telemetry record. Fields that do not apply to
// a given type hold -1 (ints) or are omitted (strings/optionals), so
// every event round-trips through JSON without loss.
type Event struct {
	// Cycle is the simulation cycle the transition happened on, or -1
	// for sweep lifecycle events (which live in wall-clock, not
	// simulated, time).
	Cycle int64 `json:"cycle"`
	// Type discriminates the record.
	Type EventType `json:"type"`
	// Subnet is the subnetwork index, or -1 when not applicable.
	Subnet int `json:"subnet"`
	// Node is the router/NI node for router.* and congestion.* events,
	// the OR-network region index for rcs.* events, and -1 otherwise.
	Node int `json:"node"`
	// Cause explains router.wake ("look-ahead", "ni", "policy") and
	// router.sleep ("idle-detect") events.
	Cause string `json:"cause,omitempty"`
	// Idle is the idle-detect cycle count that preceded a router.sleep.
	Idle int64 `json:"idle,omitempty"`
	// Slept is the length of the sleep period a router.wake ends.
	Slept int64 `json:"slept,omitempty"`
	// Point labels sweep.* events with the sweep point's name.
	Point string `json:"point,omitempty"`
	// Cycles is the simulated-cycle count of a finished sweep point.
	Cycles int64 `json:"cycles,omitempty"`
	// Err carries the error text of a sweep.error event.
	Err string `json:"err,omitempty"`
}

// Log is a bounded in-memory event ring with an optional streaming JSONL
// sink. The ring keeps the most recent Cap events (older ones are
// dropped and counted); the sink, when set, receives every event in
// order regardless of ring capacity. Log is safe for concurrent use —
// power tracer callbacks arrive from per-subnet goroutines when the
// network runs in parallel mode.
type Log struct {
	mu      sync.Mutex
	ring    []Event
	next    int   // ring write position
	full    bool  // ring has wrapped
	total   int64 // events ever appended
	dropped int64 // events evicted from the ring
	counts  map[EventType]int64

	sink    *bufio.Writer
	enc     *json.Encoder
	sinkErr error
}

// NewLog returns a log keeping the last capacity events in memory (a
// non-positive capacity defaults to 4096). If sink is non-nil every
// event is also encoded to it as one JSON object per line; call Flush
// before reading the sink's destination.
func NewLog(capacity int, sink io.Writer) *Log {
	if capacity <= 0 {
		capacity = 4096
	}
	l := &Log{
		ring:   make([]Event, capacity),
		counts: make(map[EventType]int64),
	}
	if sink != nil {
		l.sink = bufio.NewWriter(sink)
		l.enc = json.NewEncoder(l.sink)
	}
	return l
}

// Append records one event.
//
//catnap:hotpath fires only on power/congestion transitions, never per flit
//catnap:worker-safe mutex-guarded ring append; deliverable from shard workers
func (l *Log) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	l.counts[e.Type]++
	if l.full {
		l.dropped++
	}
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	if l.enc != nil && l.sinkErr == nil {
		//lint:ignore hotpathalloc JSON streaming is opt-in via WithSink; runs that care about allocation leave the sink nil
		l.sinkErr = l.enc.Encode(e)
	}
}

// Events returns the retained events in append order (oldest first).
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		out := make([]Event, l.next)
		copy(out, l.ring[:l.next])
		return out
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Total returns how many events were ever appended.
func (l *Log) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped returns how many events fell out of the bounded ring. They
// are still in the sink, if one was configured.
func (l *Log) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Count returns how many events of type t were appended.
func (l *Log) Count(t EventType) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[t]
}

// Flush drains the sink's buffer and reports the first error the sink
// ever returned. A log without a sink always returns nil.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sink == nil {
		return l.sinkErr
	}
	if err := l.sink.Flush(); err != nil && l.sinkErr == nil {
		l.sinkErr = err
	}
	return l.sinkErr
}

// WriteEvents encodes events as JSONL to w (one object per line), in
// order. Use it to dump a ring snapshot when no streaming sink was
// configured.
func WriteEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents streams a JSONL event log, calling fn for each record in
// order. It stops at the first decode error or the first error fn
// returns.
func ReadEvents(r io.Reader, fn func(Event) error) error {
	dec := json.NewDecoder(r)
	for i := 0; ; i++ {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("telemetry: event %d: %w", i, err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}

// ReadAllEvents reads a whole JSONL event log into memory.
func ReadAllEvents(r io.Reader) ([]Event, error) {
	var out []Event
	err := ReadEvents(r, func(e Event) error {
		out = append(out, e)
		return nil
	})
	return out, err
}
