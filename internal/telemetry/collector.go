package telemetry

import (
	"fmt"

	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/stats"
)

// Metric names exported by the Collector. Per-subnet series carry the
// subnet index in MetricPoint.Subnet; *_cycles series are windowed sums
// of a per-cycle quantity (divide by the window for a per-cycle mean).
const (
	// MetricActiveRouterCycles is router-cycles spent PowerActive per
	// window, per subnet — the windowed power-state series behind the
	// Figure 12(a)-style plots.
	MetricActiveRouterCycles = "power.active_router_cycles"
	// MetricWakingRouterCycles is router-cycles spent PowerWaking.
	MetricWakingRouterCycles = "power.waking_router_cycles"
	// MetricAsleepRouterCycles is router-cycles spent PowerAsleep.
	MetricAsleepRouterCycles = "power.asleep_router_cycles"
	// MetricBufferedFlitCycles is flit-cycles held in router buffers per
	// window, per subnet (the occupancy the BFA metric averages).
	MetricBufferedFlitCycles = "noc.buffered_flit_cycles"
	// MetricBFMCycles is the windowed sum of the subnet's per-cycle max
	// BFM (max input-port occupancy — the paper's local congestion
	// metric).
	MetricBFMCycles = "congestion.bfm_cycles"
	// MetricInjectedFlits is flits injected into the subnet per window.
	MetricInjectedFlits = "noc.injected_flits"
	// MetricInjectedPackets / MetricEjectedPackets are network-wide
	// packet counts per window.
	MetricInjectedPackets = "noc.injected_packets"
	MetricEjectedPackets  = "noc.ejected_packets"
	// MetricNIQueueFlitCycles is flit-cycles held in the bounded NI
	// injection queues per window, network-wide (the IQOcc input).
	MetricNIQueueFlitCycles = "ni.queue_flit_cycles"
	// MetricLeakageSavedPJ is the leakage energy (pJ) avoided by sleep
	// per window, per subnet — derived at export from the asleep-router
	// series and the leakage rate set with SetLeakRate, so it costs
	// nothing per cycle. Absent when no rate was set.
	MetricLeakageSavedPJ = "power.leakage_saved_pj"
	// MetricShardBusyRouterCycles is the name prefix of the per-shard
	// busy-router series: routers that ran VA/SA work in one row-band
	// shard per window, per subnet, with the shard index appended to the
	// metric name ("noc.shard_busy_router_cycles.3"). The series exist
	// only when the network steps sharded (noc.ExecMode.Shards > 1) at the
	// time the collector is built — configure sharding before attaching
	// telemetry — and are the load-balance view of the sharded router
	// phase (a shard stuck at 0 while others saturate means the row
	// bands are uneven for this traffic).
	MetricShardBusyRouterCycles = "noc.shard_busy_router_cycles"

	// Counters (whole-run totals, Cycle -1 in exports).
	MetricSleeps        = "power.sleeps"
	MetricWakesLookAhd  = "power.wakes.look_ahead"
	MetricWakesNI       = "power.wakes.ni"
	MetricWakesPolicy   = "power.wakes.policy"
	MetricLCSOn         = "congestion.lcs_on"
	MetricLCSOff        = "congestion.lcs_off"
	MetricRCSToggles    = "congestion.rcs_toggles"
	MetricCyclesSampled = "sim.cycles_sampled"
)

// Collector instruments one network. It implements three hook
// interfaces:
//
//   - noc.CycleObserver: samples settled per-cycle state (power-state
//     counts, buffer occupancy, throughput deltas) into windowed series;
//   - noc.PowerTracer: turns router sleep/wake transitions into events
//     and counters;
//   - congestion.Tracer: turns LCS/RCS transitions into events.
//
// The split makes telemetry independent of observer registration order:
// transitions are pushed by the component that made them (the router's
// power phase, the detector's own AfterCycle), while the collector's
// AfterCycle only reads state that is stable once the cycle's phases
// have run. Registering the collector before or after the congestion
// detector therefore yields identical output (asserted by
// TestObserverOrderIndependence).
type Collector struct {
	net   *noc.Network
	log   *Log
	reg   *Registry
	label string

	last    int64 // last cycle sampled (for Finish)
	sampled bool
	leakPJ  float64 // pJ leaked per router-cycle, 0 = no energy series

	// Per-subnet series, indexed by subnet.
	active   []*stats.Series
	waking   []*stats.Series
	asleep   []*stats.Series
	buffered []*stats.Series
	bfm      []*stats.Series
	injFlits []*stats.Series

	// Per-subnet, per-shard busy-router series; nil unless the network
	// was sharded when the collector was built.
	shardBusy [][]*stats.Series

	// Network-wide series.
	injPkts *stats.Series
	ejPkts  *stats.Series
	niQueue *stats.Series

	// Previous cumulative values for windowed deltas.
	prevFlits []int64
	prevInj   int64
	prevEj    int64

	// Transition counters (atomic; may be bumped from per-subnet
	// goroutines in parallel mode).
	cSleeps     *Counter
	cWakeLookA  *Counter
	cWakeNI     *Counter
	cWakePolicy *Counter
	cLCSOn      *Counter
	cLCSOff     *Counter
	cRCSToggle  *Counter
	cCycles     *Counter
}

// NewCollector builds a collector over net with the given series window
// and shared event log. It does not attach anything; Recorder.Attach
// (or the caller) wires it into the network and detector.
func NewCollector(net *noc.Network, window int64, log *Log, label string) *Collector {
	if window <= 0 {
		window = 50
	}
	subnets := net.Subnets()
	c := &Collector{
		net:   net,
		log:   log,
		reg:   NewRegistry(label),
		label: label,

		active:   make([]*stats.Series, subnets),
		waking:   make([]*stats.Series, subnets),
		asleep:   make([]*stats.Series, subnets),
		buffered: make([]*stats.Series, subnets),
		bfm:      make([]*stats.Series, subnets),
		injFlits: make([]*stats.Series, subnets),

		prevFlits: make([]int64, subnets),
	}
	c.cSleeps = c.reg.Counter(MetricSleeps, -1)
	c.cWakeLookA = c.reg.Counter(MetricWakesLookAhd, -1)
	c.cWakeNI = c.reg.Counter(MetricWakesNI, -1)
	c.cWakePolicy = c.reg.Counter(MetricWakesPolicy, -1)
	c.cLCSOn = c.reg.Counter(MetricLCSOn, -1)
	c.cLCSOff = c.reg.Counter(MetricLCSOff, -1)
	c.cRCSToggle = c.reg.Counter(MetricRCSToggles, -1)
	c.cCycles = c.reg.Counter(MetricCyclesSampled, -1)
	for s := 0; s < subnets; s++ {
		c.active[s] = c.reg.Series(MetricActiveRouterCycles, s, window)
		c.waking[s] = c.reg.Series(MetricWakingRouterCycles, s, window)
		c.asleep[s] = c.reg.Series(MetricAsleepRouterCycles, s, window)
		c.buffered[s] = c.reg.Series(MetricBufferedFlitCycles, s, window)
		c.bfm[s] = c.reg.Series(MetricBFMCycles, s, window)
		c.injFlits[s] = c.reg.Series(MetricInjectedFlits, s, window)
	}
	c.injPkts = c.reg.Series(MetricInjectedPackets, -1, window)
	c.ejPkts = c.reg.Series(MetricEjectedPackets, -1, window)
	c.niQueue = c.reg.Series(MetricNIQueueFlitCycles, -1, window)
	if k := net.Shards(); k > 1 {
		c.shardBusy = make([][]*stats.Series, subnets)
		for s := 0; s < subnets; s++ {
			c.shardBusy[s] = make([]*stats.Series, k)
			for j := 0; j < k; j++ {
				c.shardBusy[s][j] = c.reg.Series(fmt.Sprintf("%s.%d", MetricShardBusyRouterCycles, j), s, window)
			}
		}
	}
	return c
}

// Label returns the collector's label.
func (c *Collector) Label() string { return c.label }

// SetLeakRate supplies the per-router-cycle leakage energy in pJ
// (power.Model.RouterLeakPJ); Points then derives the windowed
// power.leakage_saved_pj series from the asleep-router series.
// Simulator.EnableTelemetry calls this with its model's rate.
func (c *Collector) SetLeakRate(pjPerRouterCycle float64) { c.leakPJ = pjPerRouterCycle }

// AfterCycle implements noc.CycleObserver: it samples the settled end-
// of-cycle state into the windowed series.
//
//catnap:hotpath runs once per simulated cycle when telemetry is attached
func (c *Collector) AfterCycle(now int64) {
	c.last = now
	c.sampled = true
	c.cCycles.Add(1)

	for s := 0; s < len(c.active); s++ {
		sub := c.net.Subnet(s)
		a, w, z := sub.PowerStates()
		c.active[s].Add(now, float64(a))
		c.waking[s].Add(now, float64(w))
		c.asleep[s].Add(now, float64(z))
		c.buffered[s].Add(now, float64(sub.BufferedFlits()))
		c.bfm[s].Add(now, float64(sub.MaxBFM()))
		if c.shardBusy != nil {
			// ShardBusy may be shorter than the series list (sharding
			// turned off or re-counted mid-run); trailing shards read 0.
			busy := sub.ShardBusy()
			for j, ser := range c.shardBusy[s] {
				v := 0.0
				if j < len(busy) {
					v = float64(busy[j])
				}
				ser.Add(now, v)
			}
		}
	}

	// Network-maintained aggregates: no per-NI walk.
	c.niQueue.Add(now, float64(c.net.NIQueueFlits()))
	for s, f := range c.net.FlitsPerSubnet() {
		c.injFlits[s].Add(now, float64(f-c.prevFlits[s]))
		c.prevFlits[s] = f
	}

	_, injected, ejected := c.net.Counts()
	c.injPkts.Add(now, float64(injected-c.prevInj))
	c.prevInj = injected
	c.ejPkts.Add(now, float64(ejected-c.prevEj))
	c.prevEj = ejected
}

// NextIdleEvent implements noc.IdleSkipper: the collector never bounds a
// skip — every quantity it samples is constant over a quiescent span.
func (c *Collector) NextIdleEvent(now int64) (int64, bool) {
	return noc.SkipHorizon, true
}

// SkipIdle implements noc.IdleSkipper: it accounts for the AfterCycle
// samples the skipped span [from, to) would have taken. Over a quiescent
// span the power-state counts are the only nonzero samples (no packet
// exists, so occupancy, queue, and delta samples are all zero), and a
// zero sample is already exact under the series' lazy window close — the
// next Add or Finish closes the crossed windows with the identical
// accumulator — so only the power-state series need explicit AddSpan
// patching, plus the sampled-cycle counter and clock.
func (c *Collector) SkipIdle(from, to int64) {
	c.last = to - 1
	c.sampled = true
	c.cCycles.Add(to - from)
	for s := 0; s < len(c.active); s++ {
		a, w, z := c.net.Subnet(s).PowerStates()
		c.active[s].AddSpan(from, to, float64(a))
		c.waking[s].AddSpan(from, to, float64(w))
		c.asleep[s].AddSpan(from, to, float64(z))
	}
}

// RouterSlept implements noc.PowerTracer.
//
//catnap:hotpath
//catnap:worker-safe PowerTracer delivery may come from shard workers
func (c *Collector) RouterSlept(now int64, subnet, node int, idle int64) {
	c.cSleeps.Add(1)
	c.log.Append(Event{
		Cycle: now, Type: EventRouterSleep, Subnet: subnet, Node: node,
		Cause: "idle-detect", Idle: idle,
	})
}

// RouterWoke implements noc.PowerTracer.
//
//catnap:hotpath
//catnap:worker-safe PowerTracer delivery may come from shard workers
func (c *Collector) RouterWoke(now int64, subnet, node int, cause noc.WakeCause, slept int64) {
	switch cause {
	case noc.WakeLookAhead:
		c.cWakeLookA.Add(1)
	case noc.WakeNI:
		c.cWakeNI.Add(1)
	default:
		c.cWakePolicy.Add(1)
	}
	c.log.Append(Event{
		Cycle: now, Type: EventRouterWake, Subnet: subnet, Node: node,
		Cause: cause.String(), Slept: slept,
	})
}

// LCSChanged implements congestion.Tracer.
//
//catnap:hotpath
//catnap:worker-safe congestion.Tracer delivery may come from shard workers
func (c *Collector) LCSChanged(now int64, subnet, node int, on bool) {
	t := EventCongestionOn
	if on {
		c.cLCSOn.Add(1)
	} else {
		c.cLCSOff.Add(1)
		t = EventCongestionOff
	}
	c.log.Append(Event{Cycle: now, Type: t, Subnet: subnet, Node: node})
}

// RCSChanged implements congestion.Tracer. Node carries the region
// index.
//
//catnap:hotpath
//catnap:worker-safe congestion.Tracer delivery may come from shard workers
func (c *Collector) RCSChanged(now int64, subnet, region int, on bool) {
	c.cRCSToggle.Add(1)
	t := EventRCSOn
	if !on {
		t = EventRCSOff
	}
	c.log.Append(Event{Cycle: now, Type: t, Subnet: subnet, Node: region})
}

// Finish closes every trailing series window. Safe to call more than
// once; Points may be read afterwards.
func (c *Collector) Finish() {
	if c.sampled {
		c.reg.finish(c.last)
	}
}

// Points exports the collector's instruments, plus the derived
// per-subnet leakage-savings series when a leak rate is set. Call
// Finish first (or use Recorder.Metrics, which does).
func (c *Collector) Points() []MetricPoint {
	pts := c.reg.Points()
	if c.leakPJ > 0 {
		for s, ser := range c.asleep {
			for _, p := range ser.Points() {
				pts = append(pts, MetricPoint{
					Metric: MetricLeakageSavedPJ, Label: c.label, Subnet: s,
					Cycle: p.Cycle, Value: p.Value * c.leakPJ,
				})
			}
		}
	}
	return pts
}
