package telemetry

import (
	"io"
	"sync"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/runner"
)

// Options configures a Recorder. The zero value is usable: 50-cycle
// windows (the paper's Figure 12 sampling period), a 4096-event ring,
// no streaming sink.
type Options struct {
	// Window is the metrics series window width in cycles (default 50).
	Window int64
	// RingCap bounds the in-memory event ring (default 4096). The
	// streaming sink, when set, is unaffected by the bound.
	RingCap int
	// Events, when non-nil, receives every event as streaming JSONL.
	// Call Recorder.Flush before reading what it wrote.
	Events io.Writer
}

// Recorder is the top-level telemetry handle an experiment owns: one
// shared event log plus one Collector per instrumented network. Sweep
// runs attach one collector per point (labeled), single runs attach
// one.
type Recorder struct {
	opts Options
	log  *Log

	mu         sync.Mutex
	collectors []*Collector
}

// NewRecorder builds a recorder from opts.
func NewRecorder(opts Options) *Recorder {
	if opts.Window <= 0 {
		opts.Window = 50
	}
	return &Recorder{
		opts: opts,
		log:  NewLog(opts.RingCap, opts.Events),
	}
}

// Log returns the shared event log.
func (r *Recorder) Log() *Log { return r.log }

// Attach instruments net (and det, if non-nil) with a fresh labeled
// collector: it registers the collector as a cycle observer, installs
// it as the network's power tracer and as the detector's congestion
// tracer. Call once per simulation, before stepping.
func (r *Recorder) Attach(net *noc.Network, det *congestion.Detector, label string) *Collector {
	c := NewCollector(net, r.opts.Window, r.log, label)
	net.AddObserver(c)
	net.SetPowerTracer(c)
	if det != nil {
		det.SetTracer(c)
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
	return c
}

// Metrics finishes every collector and returns all metric points, in
// attach order.
func (r *Recorder) Metrics() []MetricPoint {
	r.mu.Lock()
	cs := make([]*Collector, len(r.collectors))
	copy(cs, r.collectors)
	r.mu.Unlock()
	var out []MetricPoint
	for _, c := range cs {
		c.Finish()
		out = append(out, c.Points()...)
	}
	return out
}

// WriteMetricsJSONL exports all metrics as JSONL to w.
func (r *Recorder) WriteMetricsJSONL(w io.Writer) error {
	return WriteMetricsJSONL(w, r.Metrics())
}

// WriteMetricsCSV exports all metrics as CSV to w.
func (r *Recorder) WriteMetricsCSV(w io.Writer) error {
	return WriteMetricsCSV(w, r.Metrics())
}

// WriteEvents dumps the retained event ring as JSONL to w. Prefer the
// Options.Events streaming sink when the full (unbounded) stream
// matters.
func (r *Recorder) WriteEvents(w io.Writer) error {
	return WriteEvents(w, r.log.Events())
}

// Flush drains the streaming event sink, if any.
func (r *Recorder) Flush() error { return r.log.Flush() }

// Progress returns a runner.Progress adapter that records sweep-point
// lifecycle into the event log (types sweep.start/done/error, Cycle and
// Subnet/Node -1). Combine with a console via runner.Tee.
func (r *Recorder) Progress() runner.Progress {
	return runner.ProgressFunc(func(e runner.Event) {
		ev := Event{Cycle: -1, Subnet: -1, Node: -1, Point: e.Label}
		switch e.Kind {
		case runner.PointStart:
			ev.Type = EventSweepStart
		case runner.PointDone:
			ev.Type = EventSweepDone
			ev.Cycles = e.Cycles
		case runner.PointError:
			ev.Type = EventSweepError
			ev.Cycles = e.Cycles
			if e.Err != nil {
				ev.Err = e.Err.Error()
			}
		default:
			return
		}
		r.log.Append(ev)
	})
}
