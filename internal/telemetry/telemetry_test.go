package telemetry_test

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"strings"
	"testing"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/telemetry"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// testConfig is a small 4-subnet Catnap network: low base load so
// routers sleep and wake, with a burst that trips the BFM threshold so
// LCS/RCS events fire too.
func testConfig() noc.Config {
	return noc.Config{
		Rows: 4, Cols: 4, TilesPerNode: 4, RegionDim: 2,
		Subnets: 4, LinkWidthBits: 128,
		VCs: 2, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
		TWakeup: 10, WakeupHidden: 3, TIdleDetect: 4, TBreakeven: 12,
	}
}

func burstSchedule() traffic.Schedule {
	return traffic.Piecewise(
		traffic.Phase{Until: 400, Load: 0.02},
		traffic.Phase{Until: 700, Load: 0.45},
		traffic.Phase{Until: 1 << 62, Load: 0.02},
	)
}

// buildInstrumented wires a full Catnap stack (detector, selector,
// gating) plus a telemetry recorder. collectorFirst controls whether
// the telemetry collector or the congestion detector registers first as
// a cycle observer.
func buildInstrumented(t *testing.T, collectorFirst bool, opts telemetry.Options) (*noc.Network, *traffic.Generator, *telemetry.Recorder) {
	t.Helper()
	cfg := testConfig()
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatalf("noc.New: %v", err)
	}
	det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
	net.SetSelector(core.NewCatnapSelector(det, cfg.Nodes()))
	net.SetGatingPolicy(core.NewCatnapGating(det))
	rec := telemetry.NewRecorder(opts)
	if collectorFirst {
		rec.Attach(net, det, "test")
		net.AddObserver(det)
	} else {
		net.AddObserver(det)
		rec.Attach(net, det, "test")
	}
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, burstSchedule(), 42)
	return net, gen, rec
}

func run(net *noc.Network, gen *traffic.Generator, cycles int64) {
	for i := int64(0); i < cycles; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
}

// TestObserverOrderIndependence: registering the telemetry collector
// before or after the congestion detector must not change the
// simulation or the telemetry output. Transitions reach the collector
// by callback from whoever makes them, and the collector's own
// AfterCycle only reads phase-settled state, so order cannot matter.
func TestObserverOrderIndependence(t *testing.T) {
	var runs [2]struct {
		events  []telemetry.Event
		metrics []telemetry.MetricPoint
		ejected int64
	}
	for i, first := range []bool{true, false} {
		net, gen, rec := buildInstrumented(t, first, telemetry.Options{Window: 50, RingCap: 1 << 16})
		run(net, gen, 1500)
		runs[i].events = rec.Log().Events()
		runs[i].metrics = rec.Metrics()
		_, _, runs[i].ejected = net.Counts()
	}
	if runs[0].ejected == 0 {
		t.Fatal("no packets delivered; test traffic is broken")
	}
	if runs[0].ejected != runs[1].ejected {
		t.Errorf("delivered packets differ by observer order: %d vs %d", runs[0].ejected, runs[1].ejected)
	}
	if !reflect.DeepEqual(runs[0].events, runs[1].events) {
		t.Errorf("event logs differ by observer order (%d vs %d events)", len(runs[0].events), len(runs[1].events))
	}
	if !reflect.DeepEqual(runs[0].metrics, runs[1].metrics) {
		t.Errorf("metrics differ by observer order (%d vs %d points)", len(runs[0].metrics), len(runs[1].metrics))
	}
}

// TestCollectorEventsAndMetrics drives sleep/wake and congestion
// activity and checks the recorded events and series invariants.
func TestCollectorEventsAndMetrics(t *testing.T) {
	const cycles = 1500
	net, gen, rec := buildInstrumented(t, false, telemetry.Options{Window: 50, RingCap: 1 << 16})
	run(net, gen, cycles)

	log := rec.Log()
	if log.Count(telemetry.EventRouterSleep) == 0 {
		t.Error("no router.sleep events at low load with Catnap gating")
	}
	if log.Count(telemetry.EventRouterWake) == 0 {
		t.Error("no router.wake events")
	}
	if log.Count(telemetry.EventCongestionOn) == 0 {
		t.Error("no congestion.on events despite 0.45-load burst")
	}
	causes := map[string]bool{}
	for _, e := range log.Events() {
		switch e.Type {
		case telemetry.EventRouterSleep:
			if e.Cause != "idle-detect" {
				t.Fatalf("router.sleep cause = %q", e.Cause)
			}
			if e.Subnet < 0 || e.Subnet >= net.Subnets() || e.Node < 0 || e.Node >= 16 {
				t.Fatalf("router.sleep out of range: %+v", e)
			}
		case telemetry.EventRouterWake:
			causes[e.Cause] = true
			if e.Slept <= 0 {
				t.Fatalf("router.wake with non-positive sleep period: %+v", e)
			}
		}
	}
	for c := range causes {
		if c != "look-ahead" && c != "ni" && c != "policy" {
			t.Errorf("unknown wake cause %q", c)
		}
	}

	counters := map[string]float64{}
	perWindow := map[int64][]float64{} // subnet-0 power-state sums per window end
	points := rec.Metrics()
	flitTotal := 0.0
	for _, p := range points {
		if p.Label != "test" {
			t.Fatalf("point label = %q, want test", p.Label)
		}
		if p.Cycle == -1 {
			counters[p.Metric] = p.Value
			continue
		}
		switch p.Metric {
		case telemetry.MetricActiveRouterCycles, telemetry.MetricWakingRouterCycles, telemetry.MetricAsleepRouterCycles:
			if p.Subnet == 0 {
				perWindow[p.Cycle] = append(perWindow[p.Cycle], p.Value)
			}
		case telemetry.MetricInjectedFlits:
			flitTotal += p.Value
		}
	}
	if counters[telemetry.MetricCyclesSampled] != cycles {
		t.Errorf("cycles sampled = %v, want %v", counters[telemetry.MetricCyclesSampled], cycles)
	}
	if got, want := int64(counters[telemetry.MetricSleeps]), log.Count(telemetry.EventRouterSleep); got != want {
		t.Errorf("sleep counter %d != sleep events %d", got, want)
	}
	wakes := int64(counters[telemetry.MetricWakesLookAhd] + counters[telemetry.MetricWakesNI] + counters[telemetry.MetricWakesPolicy])
	if want := log.Count(telemetry.EventRouterWake); wakes != want {
		t.Errorf("wake counters %d != wake events %d", wakes, want)
	}
	if len(perWindow) != cycles/50 {
		t.Errorf("subnet-0 power-state windows = %d, want %d", len(perWindow), cycles/50)
	}
	for cut, vals := range perWindow {
		if len(vals) != 3 {
			t.Fatalf("window %d has %d power-state series values", cut, len(vals))
		}
		if sum := vals[0] + vals[1] + vals[2]; sum != 50*16 {
			t.Errorf("window %d power states sum to %v router-cycles, want %v", cut, sum, 50*16)
		}
	}
	flits := int64(0)
	for i := 0; i < 16; i++ {
		for _, f := range net.NI(i).FlitsPerSubnet {
			flits += f
		}
	}
	if int64(flitTotal) != flits {
		t.Errorf("windowed injected flits total %v, want %d", flitTotal, flits)
	}
}

// TestShardBusySeries: a collector attached to a sharded network emits
// one noc.shard_busy_router_cycles.<k> series per (subnet, shard), the
// per-shard busy counts stay within each band's router budget, and at
// least one shard saw work. An unsharded network must emit none — the
// series are off by default and exist only when stepping is sharded at
// attach time.
func TestShardBusySeries(t *testing.T) {
	const cycles, window = 1000, 50
	cfg := testConfig()
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatalf("noc.New: %v", err)
	}
	det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
	net.AddObserver(det)
	net.SetSelector(core.NewCatnapSelector(det, cfg.Nodes()))
	net.SetGatingPolicy(core.NewCatnapGating(det))
	// Shard before Attach: the collector sizes its series then.
	if err := net.SetExecMode(noc.ExecMode{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder(telemetry.Options{Window: window})
	rec.Attach(net, det, "shards")
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, burstSchedule(), 42)
	run(net, gen, cycles)

	prefix := telemetry.MetricShardBusyRouterCycles + "."
	series := map[string]int{} // metric name -> windows seen
	busyTotal := 0.0
	for _, p := range rec.Metrics() {
		if !strings.HasPrefix(p.Metric, prefix) {
			continue
		}
		if p.Subnet < 0 || p.Subnet >= net.Subnets() {
			t.Fatalf("shard-busy point with subnet %d", p.Subnet)
		}
		// 2 shards over 4 rows: 8 routers per band, so a window can hold
		// at most 8 busy routers per cycle.
		if p.Value < 0 || p.Value > window*8 {
			t.Fatalf("shard-busy window value %v out of range: %+v", p.Value, p)
		}
		series[p.Metric]++
		busyTotal += p.Value
	}
	if len(series) != 2 {
		t.Fatalf("shard-busy series names = %v, want exactly shards 0 and 1", series)
	}
	for name, windows := range series {
		// One point per window per subnet.
		if want := (cycles / window) * net.Subnets(); windows != want {
			t.Errorf("%s has %d points, want %d", name, windows, want)
		}
	}
	if busyTotal == 0 {
		t.Error("no shard reported busy routers despite traffic")
	}

	// Unsharded control: no shard-busy series at all.
	net2, gen2, rec2 := buildInstrumented(t, false, telemetry.Options{Window: window})
	run(net2, gen2, cycles)
	for _, p := range rec2.Metrics() {
		if strings.HasPrefix(p.Metric, prefix) {
			t.Fatalf("unsharded network emitted shard-busy point %+v", p)
		}
	}
}

// TestEventStreamRoundTrip checks the streaming JSONL sink reproduces
// the in-memory log exactly through ReadAllEvents.
func TestEventStreamRoundTrip(t *testing.T) {
	var sink bytes.Buffer
	net, gen, rec := buildInstrumented(t, false, telemetry.Options{RingCap: 1 << 16, Events: &sink})
	run(net, gen, 800)
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if rec.Log().Dropped() != 0 {
		t.Fatalf("ring dropped events; raise RingCap for this test")
	}
	got, err := telemetry.ReadAllEvents(&sink)
	if err != nil {
		t.Fatalf("read events: %v", err)
	}
	want := rec.Log().Events()
	if len(want) == 0 {
		t.Fatal("no events recorded")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sink round-trip mismatch: %d vs %d events", len(got), len(want))
	}
}

// TestMetricsRoundTrip checks JSONL metrics survive write+read and the
// CSV export has one row per point.
func TestMetricsRoundTrip(t *testing.T) {
	net, gen, rec := buildInstrumented(t, false, telemetry.Options{Window: 50})
	run(net, gen, 500)
	want := rec.Metrics()
	if len(want) == 0 {
		t.Fatal("no metric points")
	}

	var jsonl bytes.Buffer
	if err := telemetry.WriteMetricsJSONL(&jsonl, want); err != nil {
		t.Fatalf("write jsonl: %v", err)
	}
	got, err := telemetry.ReadAllMetrics(&jsonl)
	if err != nil {
		t.Fatalf("read jsonl: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("jsonl round-trip mismatch: %d vs %d points", len(got), len(want))
	}

	var csvBuf bytes.Buffer
	if err := telemetry.WriteMetricsCSV(&csvBuf, want); err != nil {
		t.Fatalf("write csv: %v", err)
	}
	rows, err := csv.NewReader(strings.NewReader(csvBuf.String())).ReadAll()
	if err != nil {
		t.Fatalf("parse csv: %v", err)
	}
	if len(rows) != len(want)+1 {
		t.Errorf("csv rows = %d, want %d (+header)", len(rows), len(want)+1)
	}
}

// TestLogRingBound checks the bounded ring keeps only the newest events
// and accounts for drops.
func TestLogRingBound(t *testing.T) {
	l := telemetry.NewLog(4, nil)
	for i := 0; i < 10; i++ {
		l.Append(telemetry.Event{Cycle: int64(i), Type: telemetry.EventRouterSleep, Subnet: -1, Node: -1})
	}
	ev := l.Events()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != int64(6+i) {
			t.Errorf("ring[%d].Cycle = %d, want %d", i, e.Cycle, 6+i)
		}
	}
	if l.Total() != 10 || l.Dropped() != 6 {
		t.Errorf("total=%d dropped=%d, want 10/6", l.Total(), l.Dropped())
	}
}

// TestParallelMatchesSequential: telemetry output under parallel subnet
// execution must match sequential execution (events may interleave
// across subnets, so compare as multisets).
func TestParallelMatchesSequential(t *testing.T) {
	var ev [2]map[telemetry.Event]int
	var mp [2][]telemetry.MetricPoint
	for i, par := range []bool{false, true} {
		net, gen, rec := buildInstrumented(t, false, telemetry.Options{Window: 50, RingCap: 1 << 16})
		if err := net.SetExecMode(noc.ExecMode{Parallel: par}); err != nil {
			t.Fatal(err)
		}
		run(net, gen, 1000)
		ev[i] = map[telemetry.Event]int{}
		for _, e := range rec.Log().Events() {
			ev[i][e]++
		}
		mp[i] = rec.Metrics()
	}
	if !reflect.DeepEqual(ev[0], ev[1]) {
		t.Errorf("event multisets differ between sequential and parallel runs")
	}
	if !reflect.DeepEqual(mp[0], mp[1]) {
		t.Errorf("metrics differ between sequential and parallel runs")
	}
}
