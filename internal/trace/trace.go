// Package trace records per-packet delivery records from a simulation as
// JSON Lines, and reads them back for offline analysis. A trace row
// carries everything the evaluation's figures are computed from, so a
// saved trace can regenerate latency distributions and subnet shares
// without re-running the simulator.
//
// Writers take functional options (buffer size, gzip compression);
// readers stream record-by-record via Reader.Each and transparently
// decompress gzip input by sniffing its magic bytes.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"

	"github.com/catnap-noc/catnap/internal/noc"
)

// Record is one delivered packet.
type Record struct {
	ID       uint64       `json:"id"`
	Src      int          `json:"src"`
	Dst      int          `json:"dst"`
	Class    noc.MsgClass `json:"class"`
	SizeBits int          `json:"bits"`
	Flits    int          `json:"flits"`
	Subnet   int          `json:"subnet"`
	Create   int64        `json:"create"`
	Inject   int64        `json:"inject"`
	Arrive   int64        `json:"arrive"`
}

// Latency returns the end-to-end latency in cycles.
func (r *Record) Latency() int64 { return r.Arrive - r.Create }

// NetworkLatency returns the in-network latency in cycles.
func (r *Record) NetworkLatency() int64 { return r.Arrive - r.Inject }

// Option configures a Writer.
type Option func(*writerConfig)

type writerConfig struct {
	bufSize int
	gzip    bool
}

// WithBufferSize sets the internal buffer size in bytes (default 64 KiB).
func WithBufferSize(n int) Option {
	return func(c *writerConfig) {
		if n > 0 {
			c.bufSize = n
		}
	}
}

// WithGzip compresses the stream with gzip. Readers built by NewReader
// detect the compression automatically.
func WithGzip() Option {
	return func(c *writerConfig) { c.gzip = true }
}

// Writer streams records to an io.Writer as JSON Lines, optionally
// gzip-compressed. It buffers internally; call Flush (or Close if the
// underlying writer is a Closer) when done.
type Writer struct {
	bw  *bufio.Writer
	gz  *gzip.Writer
	enc *json.Encoder
	n   int64
	c   io.Closer
}

// NewWriter wraps w. If w is also an io.Closer, Close will close it.
// The encoding pipeline is json → bufio → (gzip) → w, so small records
// batch up before hitting the compressor or the file.
func NewWriter(w io.Writer, opts ...Option) *Writer {
	cfg := writerConfig{bufSize: 1 << 16}
	for _, o := range opts {
		o(&cfg)
	}
	tw := &Writer{}
	if c, ok := w.(io.Closer); ok {
		tw.c = c
	}
	out := w
	if cfg.gzip {
		tw.gz = gzip.NewWriter(w)
		out = tw.gz
	}
	tw.bw = bufio.NewWriterSize(out, cfg.bufSize)
	tw.enc = json.NewEncoder(tw.bw)
	return tw
}

// Sink returns a delivery callback for Network.AddSink that records every
// delivered packet.
func (w *Writer) Sink() func(now int64, p *noc.Packet) {
	return func(now int64, p *noc.Packet) {
		w.Write(p)
	}
}

// Write appends one packet's record.
func (w *Writer) Write(p *noc.Packet) {
	rec := Record{
		ID: p.ID, Src: p.Src, Dst: p.Dst,
		Class: p.Class, SizeBits: p.SizeBits, Flits: p.NumFlits, Subnet: p.Subnet,
		Create: p.CreateTime, Inject: p.InjectTime, Arrive: p.ArriveTime,
	}
	// bufio absorbs errors until Flush; Encode on a bufio.Writer cannot
	// fail for marshalable fixed-shape structs.
	_ = w.enc.Encode(&rec)
	w.n++
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush drains the internal buffer (and, when compressing, emits a gzip
// sync block so everything written so far is decodable).
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.gz != nil {
		return w.gz.Flush()
	}
	return nil
}

// Close flushes, finalizes the compression stream, and, when the
// underlying writer is a Closer, closes it.
func (w *Writer) Close() error {
	err := w.bw.Flush()
	if w.gz != nil {
		if e := w.gz.Close(); err == nil {
			err = e
		}
	}
	if w.c != nil {
		if e := w.c.Close(); err == nil {
			err = e
		}
	}
	return err
}

// Reader streams records from a JSONL trace, plain or gzipped. Build
// one with NewReader; iterate with Each.
type Reader struct {
	gz  *gzip.Reader
	dec *json.Decoder
	n   int64
}

// gzipMagic is the two-byte gzip file signature.
var gzipMagic = []byte{0x1f, 0x8b}

// NewReader wraps r, sniffing the first bytes for the gzip signature
// and transparently decompressing when present.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == gzipMagic[0] && magic[1] == gzipMagic[1] {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: gzip: %w", err)
		}
		return &Reader{gz: gz, dec: json.NewDecoder(gz)}, nil
	}
	// Peek errors (e.g. an empty file) surface as a clean EOF from Each.
	return &Reader{dec: json.NewDecoder(br)}, nil
}

// Next decodes one record. It returns io.EOF at end of stream.
func (r *Reader) Next() (Record, error) {
	var rec Record
	if err := r.dec.Decode(&rec); err == io.EOF {
		return rec, io.EOF
	} else if err != nil {
		return rec, fmt.Errorf("trace: record %d: %w", r.n, err)
	}
	r.n++
	return rec, nil
}

// Each streams the remaining records, calling fn for each in order; it
// stops early if fn returns an error.
func (r *Reader) Each(fn func(Record) error) error {
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Count returns how many records have been decoded so far.
func (r *Reader) Count() int64 { return r.n }

// Close releases the decompressor, when one is in use. It does not
// close the underlying reader.
func (r *Reader) Close() error {
	if r.gz != nil {
		return r.gz.Close()
	}
	return nil
}

// Read parses a JSONL trace, calling fn for every record; it stops early
// if fn returns an error.
//
// Deprecated: use NewReader and Reader.Each, which also handle gzipped
// traces.
func Read(r io.Reader, fn func(Record) error) error {
	tr, err := NewReader(r)
	if err != nil {
		return err
	}
	defer tr.Close()
	return tr.Each(fn)
}

// Summary aggregates a trace the way the figures do.
type Summary struct {
	Packets     int64
	MeanLatency float64
	MaxLatency  int64
	// PerSubnet counts packets per subnet index (index -1, never
	// injected, is dropped).
	PerSubnet map[int]int64
	// PerClass counts packets per message class.
	PerClass map[noc.MsgClass]int64
	// FirstCreate/LastArrive bound the traced interval.
	FirstCreate int64
	LastArrive  int64
}

// observe folds one record into the summary (latSum accumulates for the
// mean; call finish once done).
func (s *Summary) observe(rec Record, latSum *int64) {
	s.Packets++
	lat := rec.Latency()
	*latSum += lat
	if lat > s.MaxLatency {
		s.MaxLatency = lat
	}
	s.PerSubnet[rec.Subnet]++
	s.PerClass[rec.Class]++
	if rec.Create < s.FirstCreate {
		s.FirstCreate = rec.Create
	}
	if rec.Arrive > s.LastArrive {
		s.LastArrive = rec.Arrive
	}
}

func (s *Summary) finish(latSum int64) {
	if s.Packets > 0 {
		s.MeanLatency = float64(latSum) / float64(s.Packets)
	} else {
		s.FirstCreate = 0
	}
}

func newSummary() Summary {
	return Summary{PerSubnet: map[int]int64{}, PerClass: map[noc.MsgClass]int64{}, FirstCreate: 1<<63 - 1}
}

// Summarize scans a trace into a Summary.
func Summarize(r io.Reader) (Summary, error) {
	s := newSummary()
	var latSum int64
	err := Read(r, func(rec Record) error {
		s.observe(rec, &latSum)
		return nil
	})
	if err != nil {
		return Summary{}, err
	}
	s.finish(latSum)
	return s, nil
}
