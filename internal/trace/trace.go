// Package trace records per-packet delivery records from a simulation as
// JSON Lines, and reads them back for offline analysis. A trace row
// carries everything the evaluation's figures are computed from, so a
// saved trace can regenerate latency distributions and subnet shares
// without re-running the simulator.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/catnap-noc/catnap/internal/noc"
)

// Record is one delivered packet.
type Record struct {
	ID       uint64       `json:"id"`
	Src      int          `json:"src"`
	Dst      int          `json:"dst"`
	Class    noc.MsgClass `json:"class"`
	SizeBits int          `json:"bits"`
	Flits    int          `json:"flits"`
	Subnet   int          `json:"subnet"`
	Create   int64        `json:"create"`
	Inject   int64        `json:"inject"`
	Arrive   int64        `json:"arrive"`
}

// Latency returns the end-to-end latency in cycles.
func (r *Record) Latency() int64 { return r.Arrive - r.Create }

// NetworkLatency returns the in-network latency in cycles.
func (r *Record) NetworkLatency() int64 { return r.Arrive - r.Inject }

// Writer streams records to an io.Writer as JSON Lines. It buffers
// internally; call Flush (or Close if the underlying writer is a Closer)
// when done.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int64
	c   io.Closer
}

// NewWriter wraps w. If w is also an io.Closer, Close will close it.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<16)
	tw := &Writer{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		tw.c = c
	}
	return tw
}

// Sink returns a delivery callback for Network.AddSink that records every
// delivered packet.
func (w *Writer) Sink() func(now int64, p *noc.Packet) {
	return func(now int64, p *noc.Packet) {
		w.Write(p)
	}
}

// Write appends one packet's record.
func (w *Writer) Write(p *noc.Packet) {
	rec := Record{
		ID: p.ID, Src: p.Src, Dst: p.Dst,
		Class: p.Class, SizeBits: p.SizeBits, Flits: p.NumFlits, Subnet: p.Subnet,
		Create: p.CreateTime, Inject: p.InjectTime, Arrive: p.ArriveTime,
	}
	// bufio absorbs errors until Flush; Encode on a bufio.Writer cannot
	// fail for marshalable fixed-shape structs.
	_ = w.enc.Encode(&rec)
	w.n++
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush drains the internal buffer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Close flushes and, when the underlying writer is a Closer, closes it.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.c != nil {
		return w.c.Close()
	}
	return nil
}

// Read parses a JSONL trace, calling fn for every record; it stops early
// if fn returns an error.
func Read(r io.Reader, fn func(Record) error) error {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	for i := 0; ; i++ {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("trace: record %d: %w", i, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Summary aggregates a trace the way the figures do.
type Summary struct {
	Packets     int64
	MeanLatency float64
	MaxLatency  int64
	// PerSubnet counts packets per subnet index (index -1, never
	// injected, is dropped).
	PerSubnet map[int]int64
	// PerClass counts packets per message class.
	PerClass map[noc.MsgClass]int64
	// FirstCreate/LastArrive bound the traced interval.
	FirstCreate int64
	LastArrive  int64
}

// Summarize scans a trace into a Summary.
func Summarize(r io.Reader) (Summary, error) {
	s := Summary{PerSubnet: map[int]int64{}, PerClass: map[noc.MsgClass]int64{}, FirstCreate: 1<<63 - 1}
	var latSum int64
	err := Read(r, func(rec Record) error {
		s.Packets++
		lat := rec.Latency()
		latSum += lat
		if lat > s.MaxLatency {
			s.MaxLatency = lat
		}
		s.PerSubnet[rec.Subnet]++
		s.PerClass[rec.Class]++
		if rec.Create < s.FirstCreate {
			s.FirstCreate = rec.Create
		}
		if rec.Arrive > s.LastArrive {
			s.LastArrive = rec.Arrive
		}
		return nil
	})
	if err != nil {
		return Summary{}, err
	}
	if s.Packets > 0 {
		s.MeanLatency = float64(latSum) / float64(s.Packets)
	} else {
		s.FirstCreate = 0
	}
	return s, nil
}
