package trace_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/trace"
	"github.com/catnap-noc/catnap/internal/traffic"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	p := &noc.Packet{
		ID: 7, Src: 1, Dst: 2, Class: noc.ClassResponse, SizeBits: 584,
		NumFlits: 5, Subnet: 3, CreateTime: 10, InjectTime: 12, ArriveTime: 40,
	}
	w.Write(p)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []trace.Record
	if err := trace.Read(&buf, func(r trace.Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records", len(got))
	}
	r := got[0]
	if r.ID != 7 || r.Subnet != 3 || r.Latency() != 30 || r.NetworkLatency() != 28 {
		t.Fatalf("record mismatch: %+v", r)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	err := trace.Read(strings.NewReader("{\"id\":1}\nnot json\n"), func(trace.Record) error { return nil })
	if err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestLiveTraceAndSummary traces a real simulation and checks the
// summary matches the network's own counters.
func TestLiveTraceAndSummary(t *testing.T) {
	cfg := noc.Config{
		Rows: 4, Cols: 4, TilesPerNode: 4, RegionDim: 2,
		Subnets: 2, LinkWidthBits: 256,
		VCs: 4, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
	}
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	net.AddSink(w.Sink())

	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.1), 3)
	for i := 0; i < 2000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	net.Drain(100000)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	_, _, ejected := net.Counts()
	if w.Count() != ejected {
		t.Fatalf("traced %d, network delivered %d", w.Count(), ejected)
	}
	sum, err := trace.Summarize(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Packets != ejected {
		t.Fatalf("summary packets %d != %d", sum.Packets, ejected)
	}
	if sum.MeanLatency <= 0 || sum.MaxLatency < int64(sum.MeanLatency) {
		t.Fatalf("implausible latency summary: %+v", sum)
	}
	if sum.PerSubnet[0]+sum.PerSubnet[1] != ejected {
		t.Fatalf("subnet counts don't add up: %v", sum.PerSubnet)
	}
	if sum.LastArrive <= sum.FirstCreate {
		t.Fatalf("interval inverted: %d..%d", sum.FirstCreate, sum.LastArrive)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	sum, err := trace.Summarize(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Packets != 0 || sum.MeanLatency != 0 || sum.FirstCreate != 0 {
		t.Fatalf("empty summary: %+v", sum)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf, trace.WithGzip(), trace.WithBufferSize(256))
	want := make([]trace.Record, 0, 100)
	for i := 0; i < 100; i++ {
		p := &noc.Packet{
			ID: uint64(i), Src: i % 16, Dst: (i * 7) % 16,
			SizeBits: 512, NumFlits: 4, Subnet: i % 4,
			CreateTime: int64(i), InjectTime: int64(i + 2), ArriveTime: int64(i + 20),
		}
		w.Write(p)
		want = append(want, trace.Record{
			ID: p.ID, Src: p.Src, Dst: p.Dst, Class: p.Class,
			SizeBits: p.SizeBits, Flits: p.NumFlits, Subnet: p.Subnet,
			Create: p.CreateTime, Inject: p.InjectTime, Arrive: p.ArriveTime,
		})
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if buf.Len() < 2 || buf.Bytes()[0] != 0x1f || buf.Bytes()[1] != 0x8b {
		t.Fatal("output is not gzip-framed")
	}

	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace.NewReader: %v", err)
	}
	defer r.Close()
	var got []trace.Record
	if err := r.Each(func(rec trace.Record) error { got = append(got, rec); return nil }); err != nil {
		t.Fatalf("Each: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("gzip round-trip mismatch: got %d records", len(got))
	}
	if r.Count() != 100 {
		t.Errorf("reader count = %d, want 100", r.Count())
	}
}

func TestReaderPlainAutodetect(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	w.Write(&noc.Packet{ID: 1, SizeBits: 128, NumFlits: 1, ArriveTime: 9})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := r.Each(func(trace.Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("read %d records, want 1", n)
	}
}

func TestReaderEmptyInput(t *testing.T) {
	r, err := trace.NewReader(bytes.NewReader(nil))
	if err != nil {
		t.Fatalf("trace.NewReader on empty input: %v", err)
	}
	if err := r.Each(func(trace.Record) error { t.Fatal("unexpected record"); return nil }); err != nil {
		t.Errorf("Each on empty input: %v", err)
	}
}

// TestReaderTruncatedGzip cuts a gzipped trace off mid-stream and checks
// the reader reports the corruption instead of silently returning the
// prefix as a complete trace — a truncated campaign artifact (killed
// run, full disk) must not summarize as a shorter-but-valid one.
func TestReaderTruncatedGzip(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf, trace.WithGzip())
	for i := 0; i < 200; i++ {
		w.Write(&noc.Packet{ID: uint64(i), SizeBits: 512, NumFlits: 4,
			CreateTime: int64(i), ArriveTime: int64(i + 20)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Cut inside the deflate body (and its trailing CRC): NewReader still
	// sees a valid header, so the damage must surface from Each.
	for _, cut := range []int{len(whole) / 2, len(whole) - 1} {
		r, err := trace.NewReader(bytes.NewReader(whole[:cut]))
		if err != nil {
			t.Fatalf("NewReader on body truncated at %d/%d: %v", cut, len(whole), err)
		}
		err = r.Each(func(trace.Record) error { return nil })
		if err == nil {
			t.Errorf("truncation at %d/%d bytes read as a clean EOF", cut, len(whole))
		}
		r.Close()
	}

	// Cut inside the gzip header: the magic bytes survive, so the reader
	// commits to gzip and must fail constructing the decompressor.
	if _, err := trace.NewReader(bytes.NewReader(whole[:4])); err == nil {
		t.Error("truncated gzip header accepted by NewReader")
	}
}

func TestSummarizeGzip(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf, trace.WithGzip())
	for i := 0; i < 10; i++ {
		w.Write(&noc.Packet{ID: uint64(i), Subnet: i % 2, SizeBits: 64, NumFlits: 1,
			CreateTime: int64(i), ArriveTime: int64(i + 10)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := trace.Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Packets != 10 || s.MeanLatency != 10 || s.PerSubnet[0] != 5 {
		t.Errorf("summary = %+v", s)
	}
}
