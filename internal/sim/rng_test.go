package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from different seeds", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	v := r.Uint64()
	for i := 0; i < 100; i++ {
		if r.Uint64() != v {
			return // stream is not constant: good
		}
	}
	t.Fatal("zero seed produced a constant stream")
}

// TestIntnBounds is a property test: Intn(n) always lands in [0, n).
func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r.Reseed(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(3)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Errorf("bucket %d: %d draws, want %d±5%%", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(9)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-p) > 0.01 {
		t.Errorf("Bernoulli(%v) rate = %v", p, rate)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(13)
	const p, draws = 0.1, 50000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / draws
	want := (1 - p) / p // failures before first success
	if math.Abs(mean-want) > 0.5 {
		t.Errorf("Geometric(%v) mean = %.2f, want %.2f", p, mean, want)
	}
	if r.Geometric(1) != 0 {
		t.Error("Geometric(1) should be 0")
	}
	if r.Geometric(0) < 1<<29 {
		t.Error("Geometric(0) should be effectively infinite")
	}
}

// TestPermIsPermutation: property — Perm always yields a permutation.
func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	f := func(seed uint64, size uint8) bool {
		r.Reseed(seed)
		n := int(size%64) + 1
		dst := make([]int, n)
		r.Perm(dst)
		seen := make([]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitNIndependence(t *testing.T) {
	root := NewRNG(23)
	a := root.SplitN(0)
	b := root.SplitN(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from split streams", same)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
