// Package sim provides the deterministic foundations of the cycle-level
// simulator: a seedable pseudo-random number generator and small helpers
// shared by all simulation components.
//
// Every source of randomness in the simulator flows from an RNG seeded from
// the experiment configuration, so that identical configurations reproduce
// identical cycle-by-cycle behaviour. This determinism is load-bearing: the
// test suite asserts exact packet counts and latencies for fixed seeds, and
// the benchmark harness relies on run-to-run stability to compare policies.
package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). It is not safe for concurrent use;
// each simulated component that needs randomness owns its own RNG, derived
// from the experiment seed with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Any seed, including zero, is
// valid: the state is expanded through splitmix64, which never yields the
// all-zero state xoshiro cannot escape.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator to the state derived from seed.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Split derives an independent generator from this one. The child's stream
// is decorrelated from the parent's by reseeding through splitmix64.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// SplitN derives the i-th of a family of independent generators without
// advancing the parent more than once per call. It is used to give each of
// the 256 cores (or 64 nodes) its own stream from one experiment seed.
func (r *RNG) SplitN(i int) *RNG {
	return NewRNG(r.Uint64() + uint64(i)*0x9e3779b97f4a7c15)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := -uint64(n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of failures before the first success. It is the
// discrete analogue of an exponential inter-arrival time and is used for
// compute-burst lengths in the core model. For p <= 0 it returns a large
// sentinel; for p >= 1 it returns 0.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return 1 << 30
	}
	// Inversion method; ln(u)/ln(1-p) truncated.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	n := int(math.Log(u) / math.Log(1-p))
	if n < 0 {
		n = 0
	}
	return n
}

// Perm fills dst with a pseudo-random permutation of [0, len(dst)).
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}
