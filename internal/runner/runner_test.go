package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestResultOrderDeterminism runs many points whose completion order is
// deliberately scrambled (later points finish first) across a wide
// worker pool and asserts outcomes land at their original indices. Run
// under -race this also exercises the engine's synchronization.
func TestResultOrderDeterminism(t *testing.T) {
	const n = 64
	pts := make([]Point[int], n)
	for i := 0; i < n; i++ {
		pts[i] = Point[int]{
			Label:  fmt.Sprintf("p%d", i),
			Cycles: int64(i),
			Run: func(ctx context.Context) (int, error) {
				// Earlier points sleep longer, so completion order inverts
				// submission order.
				time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
				return i * 3, nil
			},
		}
	}
	out, err := Run(context.Background(), pts, Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d outcomes, want %d", len(out), n)
	}
	for i, o := range out {
		if o.Index != i || o.Value != i*3 || o.Err != nil {
			t.Fatalf("outcome %d: index=%d value=%d err=%v", i, o.Index, o.Value, o.Err)
		}
		if o.Label != fmt.Sprintf("p%d", i) {
			t.Fatalf("outcome %d: label %q", i, o.Label)
		}
	}
}

// TestPanicBecomesError: a panicking point is reported as that point's
// error; the rest of the sweep completes normally.
func TestPanicBecomesError(t *testing.T) {
	pts := []Point[string]{
		{Label: "ok-0", Run: func(ctx context.Context) (string, error) { return "a", nil }},
		{Label: "boom", Run: func(ctx context.Context) (string, error) { panic("kaboom") }},
		{Label: "ok-2", Run: func(ctx context.Context) (string, error) { return "c", nil }},
	}
	out, err := Run(context.Background(), pts, Options{Jobs: 2})
	if err != nil {
		t.Fatalf("sweep error: %v", err)
	}
	if out[0].Err != nil || out[0].Value != "a" || out[2].Err != nil || out[2].Value != "c" {
		t.Fatalf("healthy points disturbed: %+v %+v", out[0], out[2])
	}
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", out[1].Err)
	}
	if !strings.Contains(out[1].Err.Error(), `"boom"`) {
		t.Fatalf("panic error does not name the point: %v", out[1].Err)
	}
	if _, err := Values(out, nil); err == nil {
		t.Fatal("Values should surface the panic error")
	}
}

// TestCancellationMidSweep cancels the context partway through a
// single-worker sweep and checks that the sweep stops, the undispatched
// points carry ctx.Err(), and Run reports the cancellation.
func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 8
	var ran int
	pts := make([]Point[int], n)
	for i := 0; i < n; i++ {
		pts[i] = Point[int]{
			Label: fmt.Sprintf("p%d", i),
			Run: func(ctx context.Context) (int, error) {
				ran++
				if i == 2 {
					cancel() // cancel the sweep from inside point 2
				}
				return i, nil
			},
		}
	}
	out, err := Run(ctx, pts, Options{Jobs: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error = %v, want context.Canceled", err)
	}
	if ran > 4 {
		t.Fatalf("%d points ran after cancellation", ran)
	}
	// Points 0..2 completed; the tail must carry the cancellation error.
	for i := 0; i <= 2; i++ {
		if out[i].Err != nil {
			t.Fatalf("point %d: unexpected err %v", i, out[i].Err)
		}
	}
	cancelled := 0
	for _, o := range out[3:] {
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled < n-4 {
		t.Fatalf("only %d trailing points marked cancelled: %+v", cancelled, out)
	}
}

// TestPerPointTimeout: a point that honors ctx blocks until its deadline
// and reports DeadlineExceeded without failing the sweep.
func TestPerPointTimeout(t *testing.T) {
	pts := []Point[int]{
		{Label: "fast", Run: func(ctx context.Context) (int, error) { return 1, nil }},
		{Label: "stuck", Run: func(ctx context.Context) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		}},
	}
	out, err := Run(context.Background(), pts, Options{Jobs: 2, Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("sweep error: %v", err)
	}
	if out[0].Err != nil || out[0].Value != 1 {
		t.Fatalf("fast point: %+v", out[0])
	}
	if !errors.Is(out[1].Err, context.DeadlineExceeded) {
		t.Fatalf("stuck point err = %v, want DeadlineExceeded", out[1].Err)
	}
}

// TestProgressEvents checks the event stream: serialized delivery, one
// start and one finish per point, a monotonically increasing done
// counter, and error events for failing points.
func TestProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	prog := ProgressFunc(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, e)
	})
	pts := []Point[int]{
		{Label: "a", Cycles: 100, Run: func(ctx context.Context) (int, error) { return 1, nil }},
		{Label: "b", Cycles: 200, Run: func(ctx context.Context) (int, error) { return 0, errors.New("nope") }},
		{Label: "c", Cycles: 300, Run: func(ctx context.Context) (int, error) { return 3, nil }},
	}
	if _, err := Run(context.Background(), pts, Options{Jobs: 2, Progress: prog}); err != nil {
		t.Fatal(err)
	}
	starts, dones, errs := 0, 0, 0
	lastDone := 0
	for _, e := range events {
		if e.Total != 3 {
			t.Fatalf("event total = %d", e.Total)
		}
		switch e.Kind {
		case PointStart:
			starts++
		case PointDone:
			dones++
		case PointError:
			errs++
			if e.Err == nil {
				t.Fatal("error event without error")
			}
		}
		if e.Kind != PointStart {
			if e.Done != lastDone+1 {
				t.Fatalf("done counter jumped: %d -> %d", lastDone, e.Done)
			}
			lastDone = e.Done
		}
	}
	if starts != 3 || dones != 2 || errs != 1 {
		t.Fatalf("starts=%d dones=%d errs=%d", starts, dones, errs)
	}
}

// TestSummarize checks the end-of-run aggregation.
func TestSummarize(t *testing.T) {
	out := []Outcome[int]{
		{Cycles: 1000},
		{Cycles: 2000},
		{Cycles: 3000, Err: errors.New("x")},
	}
	s := Summarize(out, 2*time.Second)
	if s.Points != 2 || s.Failures != 1 || s.SimCycles != 3000 {
		t.Fatalf("summary %+v", s)
	}
	if got := s.CyclesPerSec(); got != 1500 {
		t.Fatalf("cycles/sec = %v", got)
	}
	if !strings.Contains(s.String(), "FAILED") {
		t.Fatalf("summary string hides failures: %q", s.String())
	}
}

// TestValuesOrder checks Values unwraps in point order and reports the
// first failure by index, not completion time.
func TestValuesOrder(t *testing.T) {
	out := []Outcome[int]{
		{Index: 0, Value: 10},
		{Index: 1, Label: "bad1", Err: errors.New("first")},
		{Index: 2, Label: "bad2", Err: errors.New("second")},
	}
	_, err := Values(out, nil)
	if err == nil || !strings.Contains(err.Error(), "bad1") {
		t.Fatalf("err = %v, want first failure by index", err)
	}
	vals, err := Values(out[:1], nil)
	if err != nil || len(vals) != 1 || vals[0] != 10 {
		t.Fatalf("vals=%v err=%v", vals, err)
	}
}

// TestNilContextAndEmptySweep: defensive edges.
func TestNilContextAndEmptySweep(t *testing.T) {
	out, err := Run[int](nil, nil, Options{})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
	pts := []Point[int]{{Label: "only", Run: func(ctx context.Context) (int, error) { return 7, nil }}}
	out, err = Run(nil, pts, Options{Jobs: 16}) // jobs clamped to len(points)
	if err != nil || out[0].Value != 7 {
		t.Fatalf("single point: out=%v err=%v", out, err)
	}
}

// TestConsoleProgress smoke-tests both console modes against a buffer.
func TestConsoleProgress(t *testing.T) {
	for _, verbose := range []bool{false, true} {
		var sb strings.Builder
		c := NewConsole(&sb, verbose)
		c.Event(Event{Kind: PointStart, Label: "a", Total: 2})
		c.Event(Event{Kind: PointDone, Label: "a", Wall: time.Millisecond, Cycles: 1000, Done: 1, Total: 2})
		c.Event(Event{Kind: PointError, Label: "b", Err: errors.New("bad\nstack"), Done: 2, Total: 2})
		c.Finish()
		got := sb.String()
		if !strings.Contains(got, "FAILED") || !strings.Contains(got, "1 points") {
			t.Fatalf("verbose=%v output: %q", verbose, got)
		}
		if strings.Contains(got, "stack") {
			t.Fatalf("multi-line error leaked into console: %q", got)
		}
	}
}
