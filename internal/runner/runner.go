// Package runner is the parallel sweep engine behind the experiment
// runners: it executes a list of independent sweep points across a
// worker pool with per-point timeout and panic recovery, cooperative
// context cancellation, and deterministic result ordering by point
// index regardless of completion order.
//
// Determinism: the engine never changes what a point computes, only
// when it runs. Every point owns its simulator and seeded RNG, so a
// sweep's results are bit-identical at any worker count — a property
// the package tests and the root package's golden tests assert.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Point is one independent unit of a sweep: a label for progress
// reporting, the simulated-cycle count it will execute (for throughput
// accounting), and the closure that runs it. Run must be self-contained:
// it builds its own simulator and must not share mutable state with
// other points.
type Point[T any] struct {
	// Label identifies the point in progress output ("4NT-128b @ 0.15").
	Label string
	// Cycles is the simulated-cycle count the point will run
	// (warmup+measure); it feeds the cycles/sec summary.
	Cycles int64
	// Run computes the point. It should observe ctx at least every few
	// thousand simulated cycles (see Simulator.RunCtx) so cancellation
	// and per-point timeouts take effect promptly.
	Run func(ctx context.Context) (T, error)
}

// Outcome is one point's result, reported at the point's original index.
type Outcome[T any] struct {
	Index int
	Label string
	// Value is the point's result; meaningful only when Err is nil.
	Value T
	// Err is the point's failure: an error it returned, a recovered
	// panic, a per-point timeout, or the sweep context's cancellation
	// error for points that never ran.
	Err error
	// Wall is the point's wall-clock execution time (zero for points
	// skipped by cancellation).
	Wall time.Duration
	// Cycles echoes Point.Cycles.
	Cycles int64
}

// Options configures a sweep.
type Options struct {
	// Jobs is the worker count; <= 0 selects runtime.GOMAXPROCS(0).
	Jobs int
	// Timeout bounds each point's execution; 0 means no limit.
	Timeout time.Duration
	// Progress receives serialized per-point start/finish/error events;
	// nil disables reporting.
	Progress Progress
	// WorkerState, when non-nil, is called once per worker goroutine and
	// its result is made available to every point that worker runs via
	// WorkerState(ctx). It is the hook simulator-reuse pools ride on: the
	// state is owned by one worker at a time, so points may mutate it
	// without synchronization, but must not retain it past their return.
	WorkerState func() any
}

// workerStateKey is the context key carrying a worker's WorkerState value.
type workerStateKey struct{}

// WorkerState returns the per-worker state installed by
// Options.WorkerState for the worker running this point, or nil when the
// sweep did not configure any.
func WorkerState(ctx context.Context) any {
	if ctx == nil {
		return nil
	}
	return ctx.Value(workerStateKey{})
}

// Run executes every point across the worker pool and returns one
// Outcome per point, in point order. Point failures (returned errors,
// panics, timeouts) are recorded in their Outcome and do not stop the
// sweep; the returned error is non-nil only when ctx is cancelled, in
// which case undispatched points carry ctx.Err() in their Outcome.
func Run[T any](ctx context.Context, points []Point[T], opts Options) ([]Outcome[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(points) {
		jobs = len(points)
	}
	out := make([]Outcome[T], len(points))
	em := &emitter{p: opts.Progress, total: len(points)}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx := ctx
			if opts.WorkerState != nil {
				// One state value per worker, shared by every point this
				// worker runs — consecutive points can recycle what the
				// previous point warmed up (e.g. a simulator pool).
				wctx = context.WithValue(ctx, workerStateKey{}, opts.WorkerState())
			}
			for i := range idx {
				em.start(i, points[i].Label)
				out[i] = runPoint(wctx, points[i], i, opts.Timeout)
				finishOutcome(em, out[i])
			}
		}()
	}

	var sweepErr error
	// markRest records ctx's error for every point from i on (none of
	// them will be dispatched).
	markRest := func(i int) {
		sweepErr = ctx.Err()
		for j := i; j < len(points); j++ {
			out[j] = Outcome[T]{Index: j, Label: points[j].Label, Cycles: points[j].Cycles, Err: ctx.Err()}
		}
	}
dispatch:
	for i := range points {
		// Check cancellation with priority: a ready send and a done
		// context race in select, so without this a cancelled sweep could
		// keep dispatching points for several iterations.
		if ctx.Err() != nil {
			markRest(i)
			break dispatch
		}
		select {
		case <-ctx.Done():
			markRest(i)
			break dispatch
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
	if sweepErr == nil && ctx.Err() != nil {
		sweepErr = ctx.Err()
	}
	return out, sweepErr
}

// runPoint executes one point with panic recovery and an optional
// per-point deadline.
func runPoint[T any](ctx context.Context, p Point[T], i int, timeout time.Duration) (o Outcome[T]) {
	o.Index, o.Label, o.Cycles = i, p.Label, p.Cycles
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			o.Err = fmt.Errorf("sweep point %q panicked: %v\n%s", p.Label, r, debug.Stack())
		}
		o.Wall = time.Since(start)
	}()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	o.Value, o.Err = p.Run(ctx)
	return o
}

// Values unwraps a sweep's outcomes into the plain result slice,
// returning the first point failure (in point order) if any point
// failed. Use it for all-or-nothing sweeps; inspect the outcomes
// directly to tolerate partial failure.
func Values[T any](out []Outcome[T], sweepErr error) ([]T, error) {
	if sweepErr != nil {
		return nil, sweepErr
	}
	vals := make([]T, len(out))
	for i, o := range out {
		if o.Err != nil {
			return nil, fmt.Errorf("sweep point %d (%s): %w", o.Index, o.Label, o.Err)
		}
		vals[i] = o.Value
	}
	return vals, nil
}

// Summary aggregates a finished sweep for end-of-run reporting.
type Summary struct {
	// Points is the number of points that ran to completion.
	Points int
	// Failures counts points that errored, panicked, timed out, or were
	// cancelled before running.
	Failures int
	// SimCycles sums the simulated cycles of completed points.
	SimCycles int64
	// Wall is the sweep's wall-clock duration as passed by the caller.
	Wall time.Duration
}

// CyclesPerSec is the sweep's aggregate simulation throughput.
func (s Summary) CyclesPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.SimCycles) / s.Wall.Seconds()
}

// String renders the end-of-run summary line.
func (s Summary) String() string {
	msg := fmt.Sprintf("%d points in %v (%d sim-cycles, %.0f cycles/sec)",
		s.Points, s.Wall.Round(time.Millisecond), s.SimCycles, s.CyclesPerSec())
	if s.Failures > 0 {
		msg += fmt.Sprintf(", %d FAILED", s.Failures)
	}
	return msg
}

// Summarize computes the Summary for a sweep that took wall time.
func Summarize[T any](out []Outcome[T], wall time.Duration) Summary {
	s := Summary{Wall: wall}
	for _, o := range out {
		if o.Err != nil {
			s.Failures++
			continue
		}
		s.Points++
		s.SimCycles += o.Cycles
	}
	return s
}
