package runner

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestStepPoolRunsEveryIndexOnce: across widths, affinities, and batch
// sizes, fn(i) runs exactly once per index.
func TestStepPoolRunsEveryIndexOnce(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, affine := range []bool{false, true} {
				for _, batch := range []int{0, 1, 4, 1 << 20} {
					p := NewStepPool(workers, time.Millisecond)
					counts := make([]int32, n)
					for rep := 0; rep < 3; rep++ {
						p.Run(n, affine, batch, func(i int) {
							atomic.AddInt32(&counts[i], 1)
						})
					}
					for i, c := range counts {
						if c != 3 {
							t.Fatalf("workers=%d n=%d affine=%v batch=%d: index %d ran %d times, want 3",
								workers, n, affine, batch, i, c)
						}
					}
				}
			}
		}
	}
}

// TestStepPoolInlineWhenSingle: with one worker the loop runs on the
// calling goroutine — no helper goroutines are ever parked.
func TestStepPoolInlineWhenSingle(t *testing.T) {
	p := NewStepPool(1, time.Minute)
	ran := 0
	p.Run(100, true, 8, func(i int) { ran++ })
	if ran != 100 {
		t.Fatalf("ran %d tasks, want 100", ran)
	}
	p.mu.Lock()
	parked := len(p.parked)
	p.mu.Unlock()
	if parked != 0 {
		t.Fatalf("%d workers parked after inline run, want 0", parked)
	}
}

// TestStepPoolWorkersExpire: parked workers exit after the idle timeout
// and a later burst still works (it respawns).
func TestStepPoolWorkersExpire(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	p := NewStepPool(4, 5*time.Millisecond)
	var ran int32
	p.Run(64, true, 1, func(i int) { atomic.AddInt32(&ran, 1) })
	deadline := time.Now().Add(2 * time.Second)
	for {
		p.mu.Lock()
		parked := len(p.parked)
		p.mu.Unlock()
		if parked == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d workers still parked long after the idle timeout", parked)
		}
		time.Sleep(time.Millisecond)
	}
	p.Run(64, true, 1, func(i int) { atomic.AddInt32(&ran, 1) })
	if got := atomic.LoadInt32(&ran); got != 128 {
		t.Fatalf("ran %d tasks across expiry, want 128", got)
	}
}

// TestStepPoolWorkerReuse: back-to-back bursts find the helpers parked
// again — the parked count right after Run equals the burst's helper
// count, burst after burst.
func TestStepPoolWorkerReuse(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	p := NewStepPool(4, time.Minute)
	for rep := 0; rep < 50; rep++ {
		p.Run(64, true, 2, func(i int) {})
		p.mu.Lock()
		parked := len(p.parked)
		p.mu.Unlock()
		if parked != 3 {
			t.Fatalf("rep %d: %d workers parked after burst, want 3", rep, parked)
		}
	}
}

// TestStepPoolZeroAlloc: a warmed pool dispatches a burst without
// allocating — the property the simulator's 0 B/cycle guard depends on.
func TestStepPoolZeroAlloc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	p := NewStepPool(4, time.Minute)
	var sink int64
	fn := func(i int) { atomic.AddInt64(&sink, int64(i)) }
	p.Run(64, true, 2, fn) // warm: spawn workers once
	if allocs := testing.AllocsPerRun(100, func() {
		p.Run(64, true, 2, fn)
	}); allocs != 0 {
		t.Fatalf("warm Run allocates %.1f times per burst, want 0", allocs)
	}
}

// TestStepPoolConcurrentTasks: tasks genuinely overlap when width > 1
// (two tasks each wait for the other to start).
func TestStepPoolConcurrentTasks(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	p := NewStepPool(2, time.Minute)
	var entered int32
	done := make(chan struct{})
	go func() {
		p.Run(2, false, 1, func(i int) {
			atomic.AddInt32(&entered, 1)
			for atomic.LoadInt32(&entered) < 2 {
				runtime.Gosched()
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("tasks never overlapped: pool is not running them concurrently")
	}
}
