package runner

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// EventKind discriminates progress events.
type EventKind int

// The three event kinds, in a point's lifecycle order.
const (
	// PointStart fires when a worker picks the point up.
	PointStart EventKind = iota
	// PointDone fires when the point completes successfully.
	PointDone
	// PointError fires when the point returns an error, panics, or
	// times out.
	PointError
)

// Event is one progress notification. Events are serialized: the engine
// never delivers two concurrently, so implementations need no locking
// of their own.
type Event struct {
	Kind  EventKind
	Index int
	Label string
	// Wall is the point's execution time (finish events only).
	Wall time.Duration
	// Cycles is the point's simulated-cycle count.
	Cycles int64
	// Err is set on PointError events.
	Err error
	// Done counts completed points (success or failure) after this
	// event; Total is the sweep size.
	Done, Total int
}

// Progress receives sweep progress events.
type Progress interface {
	Event(Event)
}

// ProgressFunc adapts a function to the Progress interface.
type ProgressFunc func(Event)

// Event implements Progress.
func (f ProgressFunc) Event(e Event) { f(e) }

// emitter serializes progress delivery and maintains the done counter.
type emitter struct {
	mu    sync.Mutex
	p     Progress
	total int
	done  int
}

func (em *emitter) start(index int, label string) {
	if em.p == nil {
		return
	}
	em.mu.Lock()
	defer em.mu.Unlock()
	em.p.Event(Event{Kind: PointStart, Index: index, Label: label, Done: em.done, Total: em.total})
}

// finishOutcome reports a completed outcome. It is a free function
// because methods cannot be generic.
func finishOutcome[T any](em *emitter, o Outcome[T]) {
	if em.p == nil {
		em.mu.Lock()
		em.done++
		em.mu.Unlock()
		return
	}
	em.mu.Lock()
	defer em.mu.Unlock()
	em.done++
	kind := PointDone
	if o.Err != nil {
		kind = PointError
	}
	em.p.Event(Event{
		Kind: kind, Index: o.Index, Label: o.Label,
		Wall: o.Wall, Cycles: o.Cycles, Err: o.Err,
		Done: em.done, Total: em.total,
	})
}

// Console is a Progress implementation for terminals: a single live
// status line by default, or one log line per point in verbose mode,
// plus a Finish summary. Write it to stderr so result tables on stdout
// stay machine-readable.
type Console struct {
	mu      sync.Mutex
	w       io.Writer
	verbose bool
	started time.Time
	lineLen int
	failed  int
	cycles  int64
	done    int
	total   int
}

// NewConsole returns a Console writing to w. In verbose mode every
// point logs a line on completion; otherwise a single \r-rewritten
// status line tracks the sweep.
func NewConsole(w io.Writer, verbose bool) *Console {
	return &Console{w: w, verbose: verbose, started: time.Now()}
}

// Event implements Progress.
func (c *Console) Event(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total = e.Total
	switch e.Kind {
	case PointStart:
		if !c.verbose {
			c.status(fmt.Sprintf("[%d/%d] %s", e.Done, e.Total, e.Label))
		}
	case PointDone:
		c.done = e.Done
		c.cycles += e.Cycles
		if c.verbose {
			rate := 0.0
			if e.Wall > 0 {
				rate = float64(e.Cycles) / e.Wall.Seconds()
			}
			fmt.Fprintf(c.w, "[%d/%d] %-32s %8d cyc  %10v  %12.0f cyc/s\n",
				e.Done, e.Total, e.Label, e.Cycles, e.Wall.Round(time.Microsecond), rate)
		} else {
			c.status(fmt.Sprintf("[%d/%d] %s (%v)", e.Done, e.Total, e.Label, e.Wall.Round(time.Millisecond)))
		}
	case PointError:
		c.done = e.Done
		c.failed++
		c.clear()
		fmt.Fprintf(c.w, "[%d/%d] %s FAILED: %v\n", e.Done, e.Total, e.Label, firstLine(e.Err))
	}
}

// Finish clears the live line and prints the end-of-run summary. It is
// a no-op when no sweep point ever reported (e.g. the experiment failed
// before its sweep started).
func (c *Console) Finish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.total == 0 {
		return
	}
	c.clear()
	s := Summary{
		Points:    c.done - c.failed,
		Failures:  c.failed,
		SimCycles: c.cycles,
		Wall:      time.Since(c.started),
	}
	fmt.Fprintln(c.w, s.String())
}

// status rewrites the live progress line in place.
func (c *Console) status(line string) {
	pad := ""
	if n := c.lineLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(c.w, "\r%s%s", line, pad)
	c.lineLen = len(line)
}

// clear erases the live progress line.
func (c *Console) clear() {
	if c.lineLen == 0 {
		return
	}
	fmt.Fprintf(c.w, "\r%s\r", strings.Repeat(" ", c.lineLen))
	c.lineLen = 0
}

// firstLine truncates multi-line errors (panic stacks) for the live log.
func firstLine(err error) string {
	if err == nil {
		return ""
	}
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i] + " ..."
	}
	return msg
}

// Tee fans one progress stream out to several receivers in order. Nil
// receivers are skipped; Tee of zero or one live receiver collapses to
// that receiver (nil when none), so callers can compose unconditionally.
func Tee(ps ...Progress) Progress {
	live := make([]Progress, 0, len(ps))
	for _, p := range ps {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeProgress(live)
}

// teeProgress broadcasts each event to every receiver.
type teeProgress []Progress

// Event implements Progress.
func (t teeProgress) Event(e Event) {
	for _, p := range t {
		p.Event(e)
	}
}
