package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// StepPool runs bursts of small indexed tasks — fn(0..n-1) — on a set of
// reusable worker goroutines. It exists for per-cycle fan-out in tight
// simulation loops, where the two costs that dominate are goroutine
// spawn/teardown and cross-core cache traffic:
//
//   - Workers are parked between bursts on a buffered wake channel and
//     expire after an idle timeout, so a burst in steady state performs no
//     goroutine creation, and an idle pool holds no goroutines at all.
//   - Run allocates nothing: the task function must be a long-lived
//     closure (re-binding per-burst state through fields it captures),
//     and all per-burst bookkeeping lives in slices sized once at
//     construction.
//   - Affine bursts partition [0, n) into one contiguous index range per
//     worker. Each worker drains its own range at granularity 1, then
//     steals the tail of other workers' ranges in batches. With a stable
//     task list across bursts, each index lands on the same worker every
//     burst and the cache lines it touched stay on that core; batched
//     stealing keeps the imbalance cleanup from ping-ponging lines one
//     task at a time.
//
// A StepPool is for a single dispatching goroutine: concurrent Run calls
// on one pool are not allowed. Task functions run concurrently with each
// other and must be safe for that; the pool guarantees every fn(i) for
// i < n happens before Run returns.
type StepPool struct {
	// maxWorkers caps the burst width, counting the caller (which always
	// participates as worker 0). The effective width of a burst is
	// min(maxWorkers, GOMAXPROCS, n).
	maxWorkers int
	// idleTimeout is how long a parked worker survives without a
	// dispatch before its goroutine exits.
	idleTimeout time.Duration

	// ranges holds the per-worker claim cursors and bounds for the
	// current burst; entry k is only meaningful for k < nranges.
	ranges []stepRange
	// fn / batch / nranges are the current burst's parameters, written by
	// Run before any worker is woken (the wake-channel send orders the
	// writes) and read-only during the burst.
	fn      func(int)
	batch   int32
	nranges int

	// wg counts helper workers still inside the current burst.
	wg sync.WaitGroup

	// mu guards parked. The lost-wakeup protocol between dispatch and
	// idle expiry: Run pops a worker and sends its wake token while
	// holding mu; a worker whose idle timer fired takes mu and checks its
	// wake channel — a buffered token means a dispatch raced the timer
	// and the worker must stay alive, an empty channel while still on the
	// parked list means no dispatch can be in flight, so removing itself
	// and exiting is safe.
	mu     sync.Mutex
	parked []*stepWorker
}

// stepRange is one worker's contiguous claim range for a burst. The
// cursor is padded onto its own cache line: cursors are the only words
// hammered by cross-worker atomics, and false sharing between them would
// recreate exactly the ping-pong the affine layout avoids.
type stepRange struct {
	next int32 // atomic claim cursor in [lo, hi); overshoot past hi is harmless
	hi   int32
	_    [56]byte // pad to a cache line
}

// stepWorker is one parked worker goroutine. The wake channel carries the
// worker's slot (its range index) for the next burst; capacity 1 makes
// the dispatch send non-blocking and leaves the token observable to the
// idle-expiry check.
type stepWorker struct {
	pool *StepPool
	wake chan int
}

// NewStepPool builds a pool of up to maxWorkers concurrent workers
// (including the calling goroutine). maxWorkers <= 0 means GOMAXPROCS at
// construction time; idleTimeout <= 0 selects a default generous enough
// to keep workers warm between back-to-back simulation cycles.
func NewStepPool(maxWorkers int, idleTimeout time.Duration) *StepPool {
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	if idleTimeout <= 0 {
		idleTimeout = 10 * time.Millisecond
	}
	return &StepPool{
		maxWorkers:  maxWorkers,
		idleTimeout: idleTimeout,
		ranges:      make([]stepRange, maxWorkers),
		parked:      make([]*stepWorker, 0, maxWorkers),
	}
}

// Run executes fn(i) for every i in [0, n), returning when all calls have
// completed. With affine true the index space is split into one
// contiguous range per worker (stable across bursts of the same n and
// width); with affine false all workers share a single range. batch is
// the claim granularity used when taking work from a shared or foreign
// range; own-range claims in affine mode always use granularity 1.
// batch < 1 is treated as 1. When the effective width is 1 — small n,
// GOMAXPROCS=1, or maxWorkers 1 — the loop runs inline with no atomics
// and no goroutine wakeups.
//
//catnap:hotpath dispatched once per simulated cycle; steady state must not allocate
func (p *StepPool) Run(n int, affine bool, batch int, fn func(int)) {
	if n <= 0 {
		return
	}
	w := p.maxWorkers
	if g := runtime.GOMAXPROCS(0); g < w {
		w = g
	}
	if n < w {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if batch < 1 {
		batch = 1
	}
	p.fn = fn
	p.batch = int32(batch)
	nr := 1
	if affine {
		nr = w
	}
	p.nranges = nr
	for k := 0; k < nr; k++ {
		p.ranges[k].next = int32(k * n / nr)
		p.ranges[k].hi = int32((k + 1) * n / nr)
	}
	p.wg.Add(w - 1)
	p.mu.Lock()
	for slot := 1; slot < w; slot++ {
		if k := len(p.parked) - 1; k >= 0 {
			wk := p.parked[k]
			p.parked[k] = nil
			p.parked = p.parked[:k]
			wk.wake <- slot
		} else {
			//lint:ignore hotpathalloc cold spawn path: runs only when no parked worker survives (first burst, or after idle expiry)
			wk := &stepWorker{pool: p, wake: make(chan int, 1)}
			wk.wake <- slot
			go wk.run()
		}
	}
	p.mu.Unlock()
	p.work(0)
	p.wg.Wait()
	p.fn = nil
}

// work is one worker's share of the current burst: drain the own range
// (granularity 1 when affine), then sweep the other ranges in batches.
// One sweep suffices — no work is added mid-burst and each visited range
// is drained completely, so after the sweep every range this worker could
// help with is empty.
//
//catnap:hotpath
func (p *StepPool) work(slot int) {
	nr := p.nranges
	if nr == 1 {
		p.drain(&p.ranges[0])
		return
	}
	own := &p.ranges[slot]
	for {
		i := atomic.AddInt32(&own.next, 1) - 1
		if i >= own.hi {
			break
		}
		p.fn(int(i))
	}
	for k := 1; k < nr; k++ {
		p.drain(&p.ranges[(slot+k)%nr])
	}
}

// drain claims and runs batches from r until it is exhausted. Claim
// overshoot (the cursor advancing past hi on a failed claim) is fine: the
// cursor is never read as a count, only compared against hi.
//
//catnap:hotpath
func (p *StepPool) drain(r *stepRange) {
	batch := p.batch
	for {
		i := atomic.AddInt32(&r.next, batch) - batch
		if i >= r.hi {
			return
		}
		hi := i + batch
		if hi > r.hi {
			hi = r.hi
		}
		for j := i; j < hi; j++ {
			p.fn(int(j))
		}
	}
}

// run is the worker goroutine loop: alternate between bursts and parked
// waiting, exiting after idleTimeout without a dispatch. Reparking
// happens before wg.Done so that when Run returns, every surviving
// helper is already back on the parked list — the next burst finds them
// instead of spawning replacements.
//
//catnap:hotpath the worker goroutine loop; steady-state bursts must not allocate
func (w *stepWorker) run() {
	p := w.pool
	idle := time.NewTimer(p.idleTimeout)
	defer idle.Stop()
	for {
		select {
		case slot := <-w.wake:
			p.work(slot)
			p.mu.Lock()
			p.parked = append(p.parked, w)
			p.mu.Unlock()
			p.wg.Done()
			if !idle.Stop() {
				<-idle.C
			}
			idle.Reset(p.idleTimeout)
		case <-idle.C:
			p.mu.Lock()
			if len(w.wake) > 0 {
				// A dispatch raced the timer: the token is already in the
				// channel, so the worker must run that burst.
				p.mu.Unlock()
				idle.Reset(p.idleTimeout)
				continue
			}
			for i := range p.parked {
				if p.parked[i] == w {
					last := len(p.parked) - 1
					p.parked[i] = p.parked[last]
					p.parked[last] = nil
					p.parked = p.parked[:last]
					break
				}
			}
			p.mu.Unlock()
			return
		}
	}
}
