package runner

import "testing"

func TestTee(t *testing.T) {
	var a, b []EventKind
	pa := ProgressFunc(func(e Event) { a = append(a, e.Kind) })
	pb := ProgressFunc(func(e Event) { b = append(b, e.Kind) })

	if Tee() != nil {
		t.Error("Tee() should collapse to nil")
	}
	if Tee(nil, nil) != nil {
		t.Error("Tee(nil, nil) should collapse to nil")
	}
	// A single live receiver comes back unwrapped.
	if got := Tee(nil, pa); got == nil {
		t.Fatal("Tee(nil, p) returned nil")
	}

	tee := Tee(pa, nil, pb)
	tee.Event(Event{Kind: PointStart})
	tee.Event(Event{Kind: PointDone})
	want := []EventKind{PointStart, PointDone}
	if len(a) != 2 || len(b) != 2 || a[0] != want[0] || a[1] != want[1] || b[0] != want[0] || b[1] != want[1] {
		t.Errorf("tee fan-out mismatch: a=%v b=%v", a, b)
	}
}
