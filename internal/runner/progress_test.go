package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestTee(t *testing.T) {
	var a, b []EventKind
	pa := ProgressFunc(func(e Event) { a = append(a, e.Kind) })
	pb := ProgressFunc(func(e Event) { b = append(b, e.Kind) })

	if Tee() != nil {
		t.Error("Tee() should collapse to nil")
	}
	if Tee(nil, nil) != nil {
		t.Error("Tee(nil, nil) should collapse to nil")
	}
	// A single live receiver comes back unwrapped.
	if got := Tee(nil, pa); got == nil {
		t.Fatal("Tee(nil, p) returned nil")
	}

	tee := Tee(pa, nil, pb)
	tee.Event(Event{Kind: PointStart})
	tee.Event(Event{Kind: PointDone})
	want := []EventKind{PointStart, PointDone}
	if len(a) != 2 || len(b) != 2 || a[0] != want[0] || a[1] != want[1] || b[0] != want[0] || b[1] != want[1] {
		t.Errorf("tee fan-out mismatch: a=%v b=%v", a, b)
	}
}

// recorder collects a progress stream. Event delivery is serialized by
// the engine's emitter, so append without locking is exactly the
// contract under test: a race here (caught by `make race`) would mean
// the serialization guarantee broke.
type recorder struct {
	events []Event
}

func (r *recorder) Event(e Event) { r.events = append(r.events, e) }

// TestTeeUnderMidSweepCancellation drives a real sweep through a Tee of
// two receivers and pulls the plug partway: both receivers must see the
// same serialized stream, with a monotonically consistent done counter
// and no finish events for points the cancellation skipped.
func TestTeeUnderMidSweepCancellation(t *testing.T) {
	const total = 40
	const killAfter = 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var finished atomic.Int64
	points := make([]Point[int], total)
	for i := range points {
		i := i
		points[i] = Point[int]{
			Label:  "pt",
			Cycles: 1,
			Run: func(ctx context.Context) (int, error) {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
				if finished.Add(1) == killAfter {
					cancel()
				}
				return i, nil
			},
		}
	}

	var a, b recorder
	out, err := Run(ctx, points, Options{Jobs: 4, Progress: Tee(&a, &b)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error %v, want context.Canceled", err)
	}
	if len(out) != total {
		t.Fatalf("%d outcomes, want %d", len(out), total)
	}

	if len(a.events) == 0 {
		t.Fatal("no events delivered before cancellation")
	}
	if len(a.events) != len(b.events) {
		t.Fatalf("receivers saw different stream lengths: %d vs %d", len(a.events), len(b.events))
	}
	for i := range a.events {
		ea, eb := a.events[i], b.events[i]
		if ea.Kind != eb.Kind || ea.Index != eb.Index || ea.Done != eb.Done || !errors.Is(eb.Err, ea.Err) {
			t.Fatalf("event %d diverges between receivers: %+v vs %+v", i, ea, eb)
		}
	}

	// The stream itself must be self-consistent: every finish matches a
	// prior start for the same index, Done increments by exactly one per
	// finish, and Total is stable.
	started := make(map[int]bool)
	finishes := 0
	for i, e := range a.events {
		if e.Total != total {
			t.Fatalf("event %d has Total=%d, want %d", i, e.Total, total)
		}
		switch e.Kind {
		case PointStart:
			if started[e.Index] {
				t.Fatalf("point %d started twice", e.Index)
			}
			started[e.Index] = true
		case PointDone, PointError:
			if !started[e.Index] {
				t.Fatalf("point %d finished without starting", e.Index)
			}
			finishes++
			if e.Done != finishes {
				t.Fatalf("finish %d carries Done=%d", finishes, e.Done)
			}
		}
	}
	if finishes == total {
		t.Fatal("cancellation skipped nothing; the test lost its subject")
	}

	// Skipped points carry ctx.Err() in their Outcome but never reached
	// a worker, so they must not appear in the stream at all.
	for _, o := range out {
		if errors.Is(o.Err, context.Canceled) && o.Wall == 0 && started[o.Index] {
			t.Fatalf("skipped point %d has progress events", o.Index)
		}
	}
}

// TestTeeSkippedPointsSilent pins the boundary case: a sweep cancelled
// before dispatch delivers no events through the Tee, and the sweep
// error still reports the cancellation.
func TestTeeSkippedPointsSilent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var a, b recorder
	points := []Point[int]{{Label: "never", Run: func(context.Context) (int, error) { return 0, nil }}}
	_, err := Run(ctx, points, Options{Jobs: 1, Progress: Tee(&a, &b)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error %v, want context.Canceled", err)
	}
	if len(a.events) != 0 || len(b.events) != 0 {
		t.Fatalf("pre-cancelled sweep delivered events: a=%d b=%d", len(a.events), len(b.events))
	}
}
