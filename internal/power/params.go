// Package power implements the paper's network power methodology: an
// Orion-2-style analytical component model (buffer, crossbar, control,
// clock, link, NI) producing dynamic energy per switching event and static
// leakage per cycle, voltage/frequency scaling from an alpha-power-law
// critical-path model of the matrix crossbar (Table 2), and the
// power-gating cost model from the paper's SPICE analysis (wake-up delay,
// break-even energy, OR-network switching energy).
//
// Calibration. The paper reports absolute watts from Orion 2 at 32 nm; we
// do not have Orion, so the per-event and per-cycle constants below are
// calibrated so the model lands on the paper's anchor points:
//
//   - network static power ≈ 25 W for both 1NT-512b @0.750 V and
//     4NT-128b @0.625 V (Fig 8, §6.2);
//   - 1NT-512b total power ≈ 70 W at per-port load factor 0.5 (Fig 7);
//   - Table 2's four frequency/voltage pairs reproduced exactly.
//
// What the model preserves from Orion is the *scaling structure* the
// paper's argument rests on: buffer energy linear in total bits (register
// FIFOs), matrix crossbar energy quadratic in datapath width, link energy
// linear in width and length (+12% layout overhead for Multi-NoC), control
// a small per-router constant, dynamic energy ∝ V², and frequency set by
// the crossbar critical path for widths ≥ 256 bits.
package power

import "math"

// Params holds the calibrated model constants. Energies are in picojoules
// at the reference operating point (Vref, FreqHz); widths scale them as
// documented per field. Use DefaultParams and override only for
// sensitivity studies.
type Params struct {
	// Vref is the reference supply voltage all energy constants are
	// quoted at (0.750 V).
	Vref float64
	// FreqHz is the router clock (2 GHz for every evaluated design).
	FreqHz float64

	// RefWidth is the datapath width (bits) the constants are quoted at.
	RefWidth float64

	// Dynamic energy per event, pJ at (Vref, RefWidth). Scaling with the
	// actual width W: linear for buffer/link/NI, quadratic for the matrix
	// crossbar (wire length and input loading both grow with W).
	EBufWrite float64 // per flit buffer write, ∝ W
	EBufRead  float64 // per flit buffer read, ∝ W
	EXbar     float64 // per flit crossbar traversal, ∝ W²
	ELink     float64 // per flit link traversal, ∝ W (× link length factor)
	ENI       float64 // per flit NI transfer, ∝ W
	EArb      float64 // per switch-allocation grant, width-independent

	// EClkFixed + EClkPerWidth×(W/RefWidth) is the clock-tree dynamic
	// energy per *active router cycle* — spent whether or not flits move,
	// which is exactly why gating idle routers saves more than leakage.
	EClkFixed    float64
	EClkPerWidth float64

	// Static leakage, pJ per cycle per router at (Vref, RefWidth):
	// LBufPerBit × bufferBits + LXbar×(W/RefWidth)² + LCtrl +
	// LClkFixed + LClkPerWidth×(W/RefWidth) + LLink×(W/RefWidth)×linkFactor.
	LBufPerBit   float64
	LXbar        float64
	LCtrl        float64
	LClkFixed    float64
	LClkPerWidth float64
	LLink        float64
	// LNI is NI leakage per node, ∝ aggregate width.
	LNI float64

	// LeakVExp is the exponent of leakage voltage scaling
	// (leak ∝ (V/Vref)^LeakVExp). Subthreshold leakage at fixed Vth is a
	// weak function of Vdd in this range; 0.3 keeps the two evaluated
	// operating points within the paper's "about the same 25 W".
	LeakVExp float64

	// MultiNoCLinkFactor is the link length/energy overhead of routing
	// multiple subnets' links through a node (§5.2 reports ≈12% from
	// layout analysis). Applied when a network has >1 subnet.
	MultiNoCLinkFactor float64

	// ORNetSwitchPJ is the 1-bit OR (H-tree) network switching energy per
	// output toggle, from SPICE (8.7 pJ).
	ORNetSwitchPJ float64

	// Alpha-power-law critical path model (Table 2): gate speed
	// ∝ (V−Vth)^Alpha / V, crossbar delay = DFixedNs + DXbarNs×(W/RefWidth).
	Vth      float64
	Alpha    float64
	DFixedNs float64
	DXbarNs  float64
}

// DefaultParams returns the calibrated constants (see package comment for
// the anchors they reproduce).
func DefaultParams() Params {
	return Params{
		Vref:     0.750,
		FreqHz:   2e9,
		RefWidth: 512,

		EBufWrite: 30,
		EBufRead:  20,
		EXbar:     45,
		ELink:     30,
		ENI:       15,
		EArb:      2,

		EClkFixed:    3,
		EClkPerWidth: 15,

		// 40960 buffer bits at 512b × 0.0026 ≈ 107 pJ/cycle of buffer
		// leakage per router; totals per router ≈ 195 pJ/cycle → 25 W for
		// 64 routers at 2 GHz.
		LBufPerBit:   0.0026,
		LXbar:        29,
		LCtrl:        5,
		LClkFixed:    4,
		LClkPerWidth: 6,
		LLink:        39,
		LNI:          5,

		LeakVExp:           0.3,
		MultiNoCLinkFactor: 1.12,
		ORNetSwitchPJ:      8.7,

		Vth:      0.38,
		Alpha:    1.3,
		DFixedNs: 0.2933,
		DXbarNs:  0.2066,
	}
}

// dynScale returns the dynamic-energy voltage scaling factor (V/Vref)².
func (p *Params) dynScale(v float64) float64 {
	r := v / p.Vref
	return r * r
}

// leakScale returns the leakage voltage scaling factor.
func (p *Params) leakScale(v float64) float64 {
	return math.Pow(v/p.Vref, p.LeakVExp)
}
