package power

import "math"

// This file models the router critical path (Table 2): for datapaths of
// 256 bits and wider the matrix crossbar dominates the critical path, so
// delay grows with width, and the supply voltage needed to reach a target
// frequency grows with it. This is the §5.2 argument for Multi-NoC's
// dynamic-power advantage: four 128-bit routers reach 2 GHz at 0.625 V
// while one 512-bit router needs 0.750 V, and dynamic power scales with V².

// gateSpeed returns the alpha-power-law drive factor (V−Vth)^α / V,
// normalized by the caller.
func (p *Params) gateSpeed(v float64) float64 {
	if v <= p.Vth {
		return 0
	}
	return math.Pow(v-p.Vth, p.Alpha) / v
}

// CriticalPathNs returns the router critical-path delay in nanoseconds for
// a datapath of widthBits at supply voltage v.
func (p *Params) CriticalPathNs(widthBits int, v float64) float64 {
	base := p.DFixedNs + p.DXbarNs*float64(widthBits)/p.RefWidth
	s := p.gateSpeed(v)
	if s == 0 {
		return math.Inf(1)
	}
	return base * p.gateSpeed(p.Vref) / s
}

// FrequencyGHz returns the maximum router frequency for widthBits at v.
func (p *Params) FrequencyGHz(widthBits int, v float64) float64 {
	d := p.CriticalPathNs(widthBits, v)
	if math.IsInf(d, 1) {
		return 0
	}
	return 1 / d
}

// MinVoltageFor returns the lowest voltage on a 5 mV grid at which a
// router of widthBits reaches targetGHz, searching [Vth+50mV, 1.2 V]. The
// boolean is false when even 1.2 V is insufficient.
func (p *Params) MinVoltageFor(widthBits int, targetGHz float64) (float64, bool) {
	for mv := int((p.Vth+0.05)*1000 + 0.5); mv <= 1200; mv += 5 {
		v := float64(mv) / 1000
		if p.FrequencyGHz(widthBits, v) >= targetGHz {
			return v, true
		}
	}
	return 0, false
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Design    string
	WidthBits int
	FreqGHz   float64
	VoltV     float64
}

// Table2 reproduces the paper's Table 2: the frequencies achievable by
// 512-bit and 128-bit routers at 0.750 V and 0.625 V.
func (p *Params) Table2() []Table2Row {
	rows := []Table2Row{
		{"Single-NoC", 512, 0, 0.750},
		{"Single-NoC", 512, 0, 0.625},
		{"Multi-NoC", 128, 0, 0.750},
		{"Multi-NoC", 128, 0, 0.625},
	}
	for i := range rows {
		rows[i].FreqGHz = p.FrequencyGHz(rows[i].WidthBits, rows[i].VoltV)
	}
	return rows
}
