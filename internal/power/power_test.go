package power

import (
	"math"
	"testing"

	"github.com/catnap-noc/catnap/internal/noc"
)

func paperConfig(subnets int) *noc.Config {
	return &noc.Config{
		Rows: 8, Cols: 8, TilesPerNode: 4, RegionDim: 4,
		Subnets: subnets, LinkWidthBits: 512 / subnets,
		VCs: 4, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
		TWakeup: 10, WakeupHidden: 3, TIdleDetect: 4, TBreakeven: 12,
	}
}

// TestStaticPowerAnchors pins the calibration to the paper's reported
// ~25 W network static power for both evaluated designs (§6.2).
func TestStaticPowerAnchors(t *testing.T) {
	p := DefaultParams()
	single := NewModel(p, paperConfig(1), 0.750)
	multi := NewModel(p, paperConfig(4), 0.625)

	if s := single.StaticPower(); s < 23.5 || s > 26.5 {
		t.Errorf("Single-NoC static power = %.2f W, want ~25 W", s)
	}
	if s := multi.StaticPower(); s < 22.0 || s > 27.0 {
		t.Errorf("Multi-NoC static power = %.2f W, want ~25 W", s)
	}
}

// TestFig7Shape checks the Figure 7 relationships: at the near-saturation
// operating point, Multi-NoC at equal voltage is no more power-hungry than
// Single-NoC, and voltage scaling gives Multi-NoC a clear dynamic win.
func TestFig7Shape(t *testing.T) {
	p := DefaultParams()
	single := NewModel(p, paperConfig(1), 0.750).AnalyticLoadPoint(0.5, 0.15)
	multiHi := NewModel(p, paperConfig(4), 0.750).AnalyticLoadPoint(0.5, 0.15)
	multiLo := NewModel(p, paperConfig(4), 0.625).AnalyticLoadPoint(0.5, 0.15)

	if single.Total < 55 || single.Total > 80 {
		t.Errorf("Single-NoC @0.5 load = %.1f W, want ~70 W (Fig 7)", single.Total)
	}
	if multiHi.Total > single.Total*1.05 {
		t.Errorf("Multi-NoC @0.750V (%.1f W) should not exceed Single-NoC (%.1f W)", multiHi.Total, single.Total)
	}
	if multiLo.Total > multiHi.Total*0.90 {
		t.Errorf("voltage scaling should cut Multi-NoC power: %.1f W vs %.1f W", multiLo.Total, multiHi.Total)
	}
	// The crossbar component must shrink superlinearly with width.
	if multiHi.Crossbar > single.Crossbar/2 {
		t.Errorf("narrow crossbars should be far cheaper: multi=%.1f single=%.1f", multiHi.Crossbar, single.Crossbar)
	}
	// Aggregate buffer energy is width-independent at equal voltage.
	if r := multiHi.Buffer / single.Buffer; r < 0.95 || r > 1.05 {
		t.Errorf("buffer power ratio = %.2f, want ~1 (aggregate bits constant)", r)
	}
	// Multi-NoC pays the 12%% link layout overhead at equal voltage.
	if r := multiHi.Link / single.Link; r < 1.05 || r > 1.20 {
		t.Errorf("link power ratio = %.2f, want ~1.12", r)
	}
}

// TestTable2Reproduced checks the four frequency/voltage pairs.
func TestTable2Reproduced(t *testing.T) {
	p := DefaultParams()
	want := map[[2]int]float64{ // {width, mV} -> GHz
		{512, 750}: 2.0,
		{512, 625}: 1.4,
		{128, 750}: 2.9,
		{128, 625}: 2.0,
	}
	for k, ghz := range want {
		got := p.FrequencyGHz(k[0], float64(k[1])/1000)
		if math.Abs(got-ghz) > 0.07 {
			t.Errorf("FrequencyGHz(%db, %dmV) = %.3f, want %.1f", k[0], k[1], got, ghz)
		}
	}
	// The §5.2 conclusion: a 128-bit router reaches 2 GHz at a lower
	// voltage than a 512-bit router.
	v128, ok1 := p.MinVoltageFor(128, 2.0)
	v512, ok2 := p.MinVoltageFor(512, 2.0)
	if !ok1 || !ok2 || v128 >= v512 {
		t.Errorf("MinVoltageFor: 128b=%v(%.3f) 512b=%v(%.3f), want 128b lower", ok1, v128, ok2, v512)
	}
}

// TestMeasureGatingAccounting verifies the measured static power drops
// with sleep cycles and that gating transitions are charged.
func TestMeasureGatingAccounting(t *testing.T) {
	p := DefaultParams()
	m := NewModel(p, paperConfig(4), 0.625)
	cycles := int64(10000)
	routers := int64(64 * 4)

	allActive := noc.PowerEvents{ActiveRouterCycles: cycles * routers}
	halfAsleep := noc.PowerEvents{
		ActiveRouterCycles: cycles * routers / 2,
		SleepRouterCycles:  cycles * routers / 2,
		GatingTransitions:  100,
	}
	a := m.Measure(allActive, cycles, 12, 0)
	h := m.Measure(halfAsleep, cycles, 12, 0)
	if h.Static >= a.Static {
		t.Errorf("sleeping half the router-cycles should cut static power: %.2f vs %.2f", h.Static, a.Static)
	}
	if h.Gating <= 0 {
		t.Error("gating transitions should carry an energy cost")
	}
	// NI leakage floor: static never reaches zero even fully gated.
	zero := m.Measure(noc.PowerEvents{SleepRouterCycles: cycles * routers}, cycles, 12, 0)
	if zero.Static <= 0 {
		t.Error("NI leakage should persist when routers sleep")
	}
	if zero.Static >= a.Static/4 {
		t.Errorf("fully gated static (%.2f) should be far below active (%.2f)", zero.Static, a.Static)
	}
}

// TestBreakevenCost: a sleep period shorter than T-breakeven must cost
// more energy than staying awake — the trade CSC captures.
func TestBreakevenCost(t *testing.T) {
	p := DefaultParams()
	m := NewModel(p, paperConfig(4), 0.625)
	leak := m.RouterLeakPJ()
	// A 5-cycle sleep (below break-even 12) with one transition: leakage
	// saved is 5 cycles' worth, the transition costs 12 cycles' worth.
	saved := 5 * leak
	paid := 12 * leak
	if paid <= saved {
		t.Fatalf("5-cycle sleep should not break even: paid %.1f pJ vs saved %.1f pJ", paid, saved)
	}
	// And the model's Measure must charge exactly that transition cost.
	short := noc.PowerEvents{SleepRouterCycles: 5, GatingTransitions: 1}
	b := m.Measure(short, 5, 12, 0)
	wantGatingW := paid * 1e-12 * p.FreqHz / 5
	if math.Abs(b.Gating-wantGatingW) > wantGatingW*1e-9 {
		t.Errorf("gating power = %v W, want %v W", b.Gating, wantGatingW)
	}
}

func TestSleepSavedPJ(t *testing.T) {
	m := NewModel(DefaultParams(), paperConfig(4), 0.625)
	if got := m.SleepSavedPJ(0); got != 0 {
		t.Fatalf("SleepSavedPJ(0) = %g, want 0", got)
	}
	if got, want := m.SleepSavedPJ(1000), 1000*m.RouterLeakPJ(); got != want {
		t.Fatalf("SleepSavedPJ(1000) = %g, want %g", got, want)
	}
	if m.SleepSavedPJ(1) <= 0 {
		t.Fatal("per-router-cycle savings must be positive")
	}
}
