package power

import (
	"testing"
	"testing/quick"

	"github.com/catnap-noc/catnap/internal/noc"
)

func cfgFor(subnets, width int) *noc.Config {
	return &noc.Config{
		Rows: 8, Cols: 8, TilesPerNode: 4, RegionDim: 4,
		Subnets: subnets, LinkWidthBits: width,
		VCs: 4, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
	}
}

// TestPropertyVoltageMonotonic: power never decreases with supply voltage
// (dynamic ∝ V², leakage ∝ V^exp, exp ≥ 0).
func TestPropertyVoltageMonotonic(t *testing.T) {
	p := DefaultParams()
	f := func(widthSel uint8, v1Sel, v2Sel uint8) bool {
		widths := []int{64, 128, 256, 512}
		w := widths[int(widthSel)%4]
		v1 := 0.5 + float64(v1Sel%50)/100 // 0.50..0.99
		v2 := v1 + 0.01 + float64(v2Sel%20)/100
		lo := NewModel(p, cfgFor(1, w), v1)
		hi := NewModel(p, cfgFor(1, w), v2)
		if hi.StaticPower() < lo.StaticPower() {
			return false
		}
		a := lo.AnalyticLoadPoint(0.3, 0.15)
		b := hi.AnalyticLoadPoint(0.3, 0.15)
		return b.Total >= a.Total && b.Dynamic >= a.Dynamic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLoadMonotonic: dynamic power never decreases with load.
func TestPropertyLoadMonotonic(t *testing.T) {
	p := DefaultParams()
	m := NewModel(p, cfgFor(4, 128), 0.625)
	prev := -1.0
	for load := 0.0; load <= 1.0; load += 0.05 {
		b := m.AnalyticLoadPoint(load, 0.15)
		if b.Dynamic < prev {
			t.Fatalf("dynamic power decreased at load %.2f", load)
		}
		prev = b.Dynamic
	}
}

// TestPropertyBreakdownNonNegative: every component of every measured
// breakdown is non-negative for arbitrary (consistent) event counts.
func TestPropertyBreakdownNonNegative(t *testing.T) {
	p := DefaultParams()
	m := NewModel(p, cfgFor(4, 128), 0.625)
	f := func(w, r, x, l, ni, arb uint16, active, sleep uint16, trans uint8) bool {
		ev := noc.PowerEvents{
			BufferWrites: int64(w), BufferReads: int64(r),
			XbarTraversals: int64(x), LinkTraversals: int64(l),
			NIFlits: int64(ni), ArbiterOps: int64(arb),
			ActiveRouterCycles: int64(active), SleepRouterCycles: int64(sleep),
			GatingTransitions: int64(trans),
		}
		b := m.Measure(ev, 1000, 12, int64(trans))
		for _, v := range []float64{b.Buffer, b.Crossbar, b.Control, b.Clock, b.Link, b.NI, b.Static, b.Gating, b.Dynamic, b.Total} {
			if v < 0 {
				return false
			}
		}
		return b.Total >= b.Dynamic && b.Total >= b.Static
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAggregateBufferInvariance: bandwidth-equivalent designs hold
// aggregate buffer leakage constant — the §2.3 constant-resource rule.
func TestAggregateBufferInvariance(t *testing.T) {
	p := DefaultParams()
	ref := NewModel(p, cfgFor(1, 512), p.Vref)
	refBuf := ref.RouterLeakPJ() // includes non-buffer terms; compare via buffer bits instead
	_ = refBuf
	bitsAt := func(subnets, width int) float64 {
		m := NewModel(p, cfgFor(subnets, width), p.Vref)
		return m.bufferBitsPerRouter() * float64(subnets)
	}
	base := bitsAt(1, 512)
	for _, c := range [][2]int{{2, 256}, {4, 128}, {8, 64}} {
		if got := bitsAt(c[0], c[1]); got != base {
			t.Errorf("%dNT-%db aggregate buffer bits %v != %v", c[0], c[1], got, base)
		}
	}
}

// TestCriticalPathMonotonic: wider crossbars and lower voltages are never
// faster.
func TestCriticalPathMonotonic(t *testing.T) {
	p := DefaultParams()
	f := func(w1Sel, w2Sel, vSel uint8) bool {
		widths := []int{64, 128, 256, 512}
		w1 := widths[int(w1Sel)%4]
		w2 := widths[int(w2Sel)%4]
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		v := 0.5 + float64(vSel%40)/100
		return p.FrequencyGHz(w1, v) >= p.FrequencyGHz(w2, v) &&
			p.FrequencyGHz(w1, v+0.05) >= p.FrequencyGHz(w1, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMinVoltageBelowVthImpossible: frequencies are zero at or below the
// threshold voltage, and MinVoltageFor fails for absurd targets.
func TestMinVoltageBelowVthImpossible(t *testing.T) {
	p := DefaultParams()
	if f := p.FrequencyGHz(512, p.Vth); f != 0 {
		t.Errorf("frequency at Vth = %v", f)
	}
	if _, ok := p.MinVoltageFor(512, 100); ok {
		t.Error("100 GHz should be unreachable")
	}
}
