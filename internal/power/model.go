package power

import (
	"fmt"

	"github.com/catnap-noc/catnap/internal/noc"
)

// Model evaluates network power for one network configuration. Build one
// per network with NewModel; it is immutable and safe to share.
type Model struct {
	p Params

	subnets int
	width   float64 // per-subnet datapath width, bits
	nodes   int
	vcs     int
	vcDepth int
	volt    float64
	linkFac float64
}

// NewModel builds a power model for the given network configuration at
// supply voltage volt. The Multi-NoC link layout factor applies
// automatically when cfg has more than one subnet.
func NewModel(p Params, cfg *noc.Config, volt float64) *Model {
	m := &Model{
		p:       p,
		subnets: cfg.Subnets,
		width:   float64(cfg.LinkWidthBits),
		nodes:   cfg.Nodes(),
		vcs:     cfg.VCs,
		vcDepth: cfg.VCDepth,
		volt:    volt,
		linkFac: 1,
	}
	if cfg.Subnets > 1 {
		m.linkFac = p.MultiNoCLinkFactor
	}
	return m
}

// Voltage returns the supply voltage the model evaluates at.
func (m *Model) Voltage() float64 { return m.volt }

// w returns the width scaling factor W/RefWidth.
func (m *Model) w() float64 { return m.width / m.p.RefWidth }

// bufferBitsPerRouter returns the register-FIFO bit count of one router:
// 5 ports × VCs × depth × flit width. Aggregate buffer bits are constant
// across the paper's configurations by construction (flits shrink as
// subnets multiply).
func (m *Model) bufferBitsPerRouter() float64 {
	return 5 * float64(m.vcs) * float64(m.vcDepth) * m.width
}

// RouterLeakPJ returns one router's leakage energy per cycle in pJ,
// including its share of link and clock leakage, at the model's voltage.
// This is also the unit the gating transition cost is quoted in
// (T-breakeven cycles of it per transition).
func (m *Model) RouterLeakPJ() float64 {
	p := &m.p
	w := m.w()
	leak := p.LBufPerBit*m.bufferBitsPerRouter() +
		p.LXbar*w*w +
		p.LCtrl +
		p.LClkFixed + p.LClkPerWidth*w +
		p.LLink*w*m.linkFac
	return leak * p.leakScale(m.volt)
}

// NILeakPJ returns one node's NI leakage per cycle in pJ. The NI is shared
// by the node's tiles and sized to the aggregate width, so it is identical
// across bandwidth-equivalent configurations.
func (m *Model) NILeakPJ() float64 {
	agg := m.width * float64(m.subnets) / m.p.RefWidth
	return m.p.LNI * agg * m.p.leakScale(m.volt)
}

// SleepSavedPJ returns the leakage energy (pJ) avoided by the given
// number of asleep router-cycles — the quantity Catnap's power gating
// exists to harvest, before transition overheads. Telemetry uses it to
// turn windowed asleep-router series into energy-proportionality
// series.
func (m *Model) SleepSavedPJ(asleepRouterCycles float64) float64 {
	return asleepRouterCycles * m.RouterLeakPJ()
}

// StaticPower returns the network's leakage power in watts with every
// router active (no power gating).
func (m *Model) StaticPower() float64 {
	perCyclePJ := m.RouterLeakPJ()*float64(m.nodes*m.subnets) + m.NILeakPJ()*float64(m.nodes)
	return perCyclePJ * 1e-12 * m.p.FreqHz
}

// Breakdown is a network power report in watts, split the way Figure 7
// stacks it, plus the static/dynamic split Figure 8 uses.
type Breakdown struct {
	Buffer, Crossbar, Control, Clock, Link, NI float64

	// Static is leakage actually paid (reduced by sleep cycles); Gating is
	// the energy overhead of sleep-transistor switching and the OR
	// network, folded into Total.
	Static float64
	Gating float64
	// Dynamic is the sum of the six component dynamic powers.
	Dynamic float64
	// Total = Static + Dynamic + Gating.
	Total float64
}

// String formats the breakdown like the paper's figures discuss it.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.1fW (dyn=%.1f static=%.1f gating=%.2f | buf=%.1f xbar=%.1f ctrl=%.1f clk=%.1f link=%.1f ni=%.1f)",
		b.Total, b.Dynamic, b.Static, b.Gating, b.Buffer, b.Crossbar, b.Control, b.Clock, b.Link, b.NI)
}

// Measure converts a simulation's switching activity into average power
// over the measured interval. events must aggregate every subnet (use
// Network.Events), cycles is the interval length, and orToggles is the
// congestion OR-network's toggle count (0 when detection is off).
//
// Static power is charged per router-cycle of the active and waking
// states; sleeping router-cycles pay nothing, but each completed gating
// transition pays T-breakeven cycles of router leakage — so a sleep period
// shorter than break-even *costs* energy, exactly the trade the paper's
// CSC metric captures.
func (m *Model) Measure(events noc.PowerEvents, cycles int64, tBreakeven int, orToggles int64) Breakdown {
	if cycles <= 0 {
		return Breakdown{}
	}
	p := &m.p
	w := m.w()
	dyn := p.dynScale(m.volt)
	toW := 1e-12 * p.FreqHz / float64(cycles) // pJ-per-interval → watts

	var b Breakdown
	b.Buffer = float64(events.BufferWrites)*p.EBufWrite*w*dyn*toW +
		float64(events.BufferReads)*p.EBufRead*w*dyn*toW
	b.Crossbar = float64(events.XbarTraversals) * p.EXbar * w * w * dyn * toW
	b.Control = float64(events.ArbiterOps) * p.EArb * dyn * toW
	b.Clock = float64(events.ActiveRouterCycles) * (p.EClkFixed + p.EClkPerWidth*w) * dyn * toW
	b.Link = float64(events.LinkTraversals) * p.ELink * w * m.linkFac * dyn * toW
	b.NI = float64(events.NIFlits) * p.ENI * w * dyn * toW
	b.Dynamic = b.Buffer + b.Crossbar + b.Control + b.Clock + b.Link + b.NI

	routerLeak := m.RouterLeakPJ()
	b.Static = float64(events.ActiveRouterCycles)*routerLeak*toW +
		m.NILeakPJ()*float64(m.nodes)*float64(cycles)*toW

	b.Gating = float64(events.GatingTransitions)*float64(tBreakeven)*routerLeak*toW +
		float64(orToggles)*p.ORNetSwitchPJ*toW

	b.Total = b.Dynamic + b.Static + b.Gating
	return b
}

// AnalyticLoadPoint computes the Figure 7 operating point without a
// simulation: every router port carries loadFactor flits per cycle, every
// router is active, and each flit-hop performs one buffer write+read, one
// crossbar and one link (or NI) traversal. switching is the bit switching
// factor (0.15 in §4.2) applied to datapath components.
func (m *Model) AnalyticLoadPoint(loadFactor, switching float64) Breakdown {
	p := &m.p
	w := m.w()
	dyn := p.dynScale(m.volt) * (switching / 0.15) // constants calibrated at 0.15
	routers := float64(m.nodes * m.subnets)
	flitHopsPerCycle := loadFactor * 5 * routers // 5 ports each way
	meshShare := 4.0 / 5.0                       // 4 of 5 ports are links, 1 is NI
	toW := 1e-12 * p.FreqHz

	var b Breakdown
	b.Buffer = flitHopsPerCycle * (p.EBufWrite + p.EBufRead) * w * dyn * toW
	b.Crossbar = flitHopsPerCycle * p.EXbar * w * w * dyn * toW
	b.Control = flitHopsPerCycle * p.EArb * dyn * toW
	b.Clock = routers * (p.EClkFixed + p.EClkPerWidth*w) * p.dynScale(m.volt) * toW
	b.Link = flitHopsPerCycle * meshShare * p.ELink * w * m.linkFac * dyn * toW
	b.NI = flitHopsPerCycle * (1 - meshShare) * 2 * p.ENI * w * dyn * toW
	b.Dynamic = b.Buffer + b.Crossbar + b.Control + b.Clock + b.Link + b.NI
	b.Static = m.StaticPower()
	b.Total = b.Dynamic + b.Static
	return b
}
