package topology

import "testing"

// TestLinkSymmetryAllTopologies: for every topology, following Link and
// then the peer's reverse port returns to the origin — the property the
// NoC's credit-return feeder tables are built on. The local port never
// has a link.
func TestLinkSymmetryAllTopologies(t *testing.T) {
	topos := []Topology{
		New(8, 8, 4, 4),
		New(4, 2, 4, 2),
		NewTorus(8, 8, 4, 4),
		NewTorus(4, 4, 4, 2),
		NewFBfly(8, 8, 4, 4),
		NewFBfly(2, 4, 4, 2),
	}
	for _, topo := range topos {
		for node := 0; node < topo.Nodes(); node++ {
			links := 0
			for p := 0; p < topo.Radix(); p++ {
				peer, peerPort, ok := topo.Link(node, p)
				if p == topo.Radix()-1 {
					if ok {
						t.Fatalf("%s: local port of node %d has a link", topo.Name(), node)
					}
					continue
				}
				if !ok {
					continue // mesh edge
				}
				links++
				back, backPort, ok2 := topo.Link(peer, peerPort)
				if !ok2 || back != node || backPort != p {
					t.Fatalf("%s: asymmetric link %d:%d -> %d:%d -> %d:%d",
						topo.Name(), node, p, peer, peerPort, back, backPort)
				}
			}
			if topo.Name() == "torus" && links != 4 {
				t.Fatalf("torus node %d has %d links, want 4 (wraparound)", node, links)
			}
		}
	}
}

// TestRouteStaysOnLinks: every topology's route function only ever emits
// ports that have links (or the local port at the destination).
func TestRouteStaysOnLinks(t *testing.T) {
	topos := []Topology{New(8, 8, 4, 4), NewTorus(8, 8, 4, 4), NewFBfly(8, 8, 4, 4)}
	for _, topo := range topos {
		local := topo.Radix() - 1
		for src := 0; src < topo.Nodes(); src++ {
			for dst := 0; dst < topo.Nodes(); dst++ {
				at := src
				for steps := 0; steps < topo.Nodes(); steps++ {
					p := topo.RoutePort(at, dst)
					if at == dst {
						if p != local {
							t.Fatalf("%s: at destination %d but routed to port %d", topo.Name(), dst, p)
						}
						break
					}
					peer, _, ok := topo.Link(at, p)
					if !ok {
						t.Fatalf("%s: route %d->%d emits dead port %d at %d", topo.Name(), src, dst, p, at)
					}
					at = peer
				}
				if at != dst {
					t.Fatalf("%s: route %d->%d did not converge", topo.Name(), src, dst)
				}
			}
		}
	}
}
