package topology

import (
	"testing"
	"testing/quick"
)

func paper() *Mesh { return New(8, 8, 4, 4) }

func TestBasics(t *testing.T) {
	m := paper()
	if m.Nodes() != 64 || m.Tiles() != 256 || m.Regions() != 4 {
		t.Fatalf("nodes=%d tiles=%d regions=%d", m.Nodes(), m.Tiles(), m.Regions())
	}
	if m.NodeOfTile(0) != 0 || m.NodeOfTile(3) != 0 || m.NodeOfTile(4) != 1 || m.NodeOfTile(255) != 63 {
		t.Error("tile concentration mapping wrong")
	}
}

func TestXYRoundTrip(t *testing.T) {
	m := paper()
	for id := 0; id < m.Nodes(); id++ {
		x, y := m.XY(id)
		if m.ID(x, y) != id {
			t.Fatalf("XY/ID mismatch at %d", id)
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	m := paper()
	for id := 0; id < m.Nodes(); id++ {
		for p := North; p <= West; p++ {
			n := m.Neighbor(id, p)
			if n < 0 {
				continue
			}
			if back := m.Neighbor(n, p.Opposite()); back != id {
				t.Fatalf("neighbor symmetry broken: %d -%v-> %d -%v-> %d", id, p, n, p.Opposite(), back)
			}
		}
	}
}

func TestOppositePanicsForLocal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Local.Opposite() should panic")
		}
	}()
	Local.Opposite()
}

// TestRouteProgress is the key routing property: from any node, following
// Route toward any destination strictly decreases the Manhattan distance
// and terminates with a Local ejection at the destination — so X-Y routing
// is livelock-free and minimal.
func TestRouteProgress(t *testing.T) {
	m := paper()
	f := func(a, b uint8) bool {
		src := int(a) % m.Nodes()
		dst := int(b) % m.Nodes()
		at := src
		for steps := 0; steps <= m.Hops(src, dst); steps++ {
			p := m.Route(at, dst)
			if at == dst {
				return p == Local
			}
			next := m.Neighbor(at, p)
			if next < 0 || m.Hops(next, dst) != m.Hops(at, dst)-1 {
				return false
			}
			at = next
		}
		return at == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestXYDimensionOrder: X-Y routing never turns from Y back to X.
func TestXYDimensionOrder(t *testing.T) {
	m := paper()
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			at := src
			movedY := false
			for at != dst {
				p := m.Route(at, dst)
				switch p {
				case North, South:
					movedY = true
				case East, West:
					if movedY {
						t.Fatalf("Y->X turn routing %d->%d at %d", src, dst, at)
					}
				}
				at = m.Neighbor(at, p)
			}
		}
	}
}

// TestLookAheadConsistency: the look-ahead route carried to the next hop
// must equal the route that node would compute itself.
func TestLookAheadConsistency(t *testing.T) {
	m := paper()
	f := func(a, b uint8) bool {
		at := int(a) % m.Nodes()
		dst := int(b) % m.Nodes()
		if at == dst {
			return true
		}
		next := m.NextHop(at, dst)
		return m.LookAheadRoute(next, dst) == m.Route(next, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionsPartition(t *testing.T) {
	m := paper()
	seen := make([]int, m.Nodes())
	for r := 0; r < m.Regions(); r++ {
		nodes := m.RegionNodes(r)
		if len(nodes) != 16 {
			t.Fatalf("region %d has %d nodes", r, len(nodes))
		}
		for _, n := range nodes {
			seen[n]++
			if m.Region(n) != r {
				t.Fatalf("node %d: Region()=%d but listed in %d", n, m.Region(n), r)
			}
		}
	}
	for n, c := range seen {
		if c != 1 {
			t.Fatalf("node %d in %d regions", n, c)
		}
	}
}

func TestRegion64Core(t *testing.T) {
	m := New(4, 4, 4, 2)
	if m.Regions() != 4 {
		t.Fatalf("4x4/2 mesh regions = %d, want 4", m.Regions())
	}
}

func TestNewPanicsOnBadRegion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with non-tiling region should panic")
		}
	}()
	New(8, 8, 4, 3)
}

func TestHops(t *testing.T) {
	m := paper()
	if h := m.Hops(0, 63); h != 14 {
		t.Errorf("corner-to-corner hops = %d, want 14", h)
	}
	if h := m.Hops(5, 5); h != 0 {
		t.Errorf("self hops = %d", h)
	}
}

func TestPortString(t *testing.T) {
	names := map[Port]string{North: "N", East: "E", South: "S", West: "W", Local: "L"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}
