package topology

import "fmt"

// FBfly is a two-dimensional flattened butterfly (Kim, Balfour, Dally,
// MICRO'07): routers sit on a rows×cols grid, and every router has a
// direct link to every other router in its row and in its column. With
// minimal dimension-ordered routing any packet needs at most two hops
// (one row hop, one column hop), at the cost of high radix:
// (cols−1)+(rows−1)+1 ports.
//
// The paper (§2.2) names the flattened butterfly as the high-radix
// alternative for scaling bandwidth and conjectures (§8) that multiple
// physical networks would benefit it too; this implementation lets the
// Catnap policies be evaluated on it.
//
// Port layout for a router at (x, y):
//
//	ports [0, cols−2]            row links, to columns ≠ x in ascending order
//	ports [cols−1, cols+rows−3]  column links, to rows ≠ y in ascending order
//	port  cols+rows−2            the local (NI) port
type FBfly struct {
	rows, cols   int
	tilesPerNode int
	regionRows   int
	regionCols   int
}

// NewFBfly returns a rows×cols flattened butterfly with the given
// concentration and congestion-region size. It panics on invalid
// dimensions (static experiment configuration).
func NewFBfly(rows, cols, tilesPerNode, regionDim int) *FBfly {
	if rows < 2 || cols < 2 {
		panic(fmt.Sprintf("topology: flattened butterfly needs >=2x2 routers, got %dx%d", rows, cols))
	}
	if tilesPerNode <= 0 {
		panic(fmt.Sprintf("topology: invalid concentration %d", tilesPerNode))
	}
	if regionDim <= 0 || rows%regionDim != 0 || cols%regionDim != 0 {
		panic(fmt.Sprintf("topology: region dim %d does not tile %dx%d", regionDim, rows, cols))
	}
	return &FBfly{rows: rows, cols: cols, tilesPerNode: tilesPerNode, regionRows: regionDim, regionCols: regionDim}
}

// Name implements Topology.
func (f *FBfly) Name() string { return "fbfly" }

// Nodes implements Topology.
func (f *FBfly) Nodes() int { return f.rows * f.cols }

// Rows implements Topology.
func (f *FBfly) Rows() int { return f.rows }

// Cols implements Topology.
func (f *FBfly) Cols() int { return f.cols }

// XY implements Topology.
func (f *FBfly) XY(id int) (x, y int) { return id % f.cols, id / f.cols }

// IDAt implements Topology.
func (f *FBfly) IDAt(x, y int) int { return y*f.cols + x }

// TilesPerNode implements Topology.
func (f *FBfly) TilesPerNode() int { return f.tilesPerNode }

// Tiles implements Topology.
func (f *FBfly) Tiles() int { return f.Nodes() * f.tilesPerNode }

// NodeOfTile implements Topology.
func (f *FBfly) NodeOfTile(tile int) int { return tile / f.tilesPerNode }

// Radix implements Topology: all row peers, all column peers, local.
func (f *FBfly) Radix() int { return (f.cols - 1) + (f.rows - 1) + 1 }

// LocalPort returns the local port index.
func (f *FBfly) LocalPort() int { return f.Radix() - 1 }

// rowPortTo returns the output port at a router in column x that reaches
// column tx (tx != x).
func (f *FBfly) rowPortTo(x, tx int) int {
	if tx < x {
		return tx
	}
	return tx - 1
}

// colPortTo returns the output port at a router in row y that reaches
// row ty (ty != y).
func (f *FBfly) colPortTo(y, ty int) int {
	base := f.cols - 1
	if ty < y {
		return base + ty
	}
	return base + ty - 1
}

// Link implements Topology.
func (f *FBfly) Link(node, port int) (peer, peerPort int, ok bool) {
	x, y := f.XY(node)
	switch {
	case port < f.cols-1: // row link
		tx := port
		if tx >= x {
			tx++
		}
		peer = f.IDAt(tx, y)
		peerPort = f.rowPortTo(tx, x)
		return peer, peerPort, true
	case port < f.Radix()-1: // column link
		ty := port - (f.cols - 1)
		if ty >= y {
			ty++
		}
		peer = f.IDAt(x, ty)
		peerPort = f.colPortTo(ty, y)
		return peer, peerPort, true
	default: // local port
		return 0, 0, false
	}
}

// RoutePort implements Topology: dimension-ordered minimal routing, row
// (X) first, then column (Y). Row links only ever depend on column links
// ahead of them, so the channel dependency graph is acyclic and no
// dateline classes are needed.
func (f *FBfly) RoutePort(at, dst int) int {
	ax, ay := f.XY(at)
	dx, dy := f.XY(dst)
	switch {
	case dx != ax:
		return f.rowPortTo(ax, dx)
	case dy != ay:
		return f.colPortTo(ay, dy)
	default:
		return f.LocalPort()
	}
}

// LookAheadPort implements Topology.
func (f *FBfly) LookAheadPort(next, dst int) int { return f.RoutePort(next, dst) }

// Hops implements Topology: at most one row and one column hop.
func (f *FBfly) Hops(a, b int) int {
	ax, ay := f.XY(a)
	bx, by := f.XY(b)
	h := 0
	if ax != bx {
		h++
	}
	if ay != by {
		h++
	}
	return h
}

// WrapsPort implements Topology: no datelines in a flattened butterfly.
func (f *FBfly) WrapsPort(node, port int) bool { return false }

// Region implements Topology.
func (f *FBfly) Region(id int) int {
	x, y := f.XY(id)
	regionsPerRow := f.cols / f.regionCols
	return (y/f.regionRows)*regionsPerRow + x/f.regionCols
}

// Regions implements Topology.
func (f *FBfly) Regions() int {
	return (f.rows / f.regionRows) * (f.cols / f.regionCols)
}

// RegionNodes implements Topology.
func (f *FBfly) RegionNodes(r int) []int {
	regionsPerRow := f.cols / f.regionCols
	ry := r / regionsPerRow
	rx := r % regionsPerRow
	nodes := make([]int, 0, f.regionRows*f.regionCols)
	for y := ry * f.regionRows; y < (ry+1)*f.regionRows; y++ {
		for x := rx * f.regionCols; x < (rx+1)*f.regionCols; x++ {
			nodes = append(nodes, f.IDAt(x, y))
		}
	}
	return nodes
}

var _ Topology = (*FBfly)(nil)
