package topology

// Topology abstracts the network graph so the router substrate works at
// any radix: the concentrated mesh and torus (radix 5) and the flattened
// butterfly (radix 2·(k−1)+1 for a k×k array). Ports are integers; by
// convention the local (NI) port is always the last one, Radix()−1.
//
// All implementations here are grid-arranged (routers at (x, y)
// coordinates), so XY/Rows/Cols are part of the interface — the traffic
// patterns, memory-controller placement, and split-chip experiments rely
// on them.
type Topology interface {
	// Name identifies the topology ("cmesh", "torus", "fbfly").
	Name() string

	// Nodes returns the router count; Rows/Cols its grid arrangement; XY
	// and IDAt convert between node ids and grid coordinates.
	Nodes() int
	Rows() int
	Cols() int
	XY(id int) (x, y int)
	IDAt(x, y int) int

	// TilesPerNode, Tiles and NodeOfTile describe the concentration.
	TilesPerNode() int
	Tiles() int
	NodeOfTile(tile int) int

	// Radix is the router port count, including the local port
	// (Radix()−1).
	Radix() int

	// Link resolves output port p of node to the peer router and the
	// peer's input port; ok is false when the port has no link (the
	// local port, or a mesh edge).
	Link(node, port int) (peer, peerPort int, ok bool)

	// RoutePort returns the output port a packet at `at` destined to
	// `dst` must take; LookAheadPort is the same computation used for
	// look-ahead routing at the upstream router. Both return the local
	// port at the destination.
	RoutePort(at, dst int) int
	LookAheadPort(next, dst int) int

	// Hops is the minimal router-to-router hop count.
	Hops(a, b int) int

	// WrapsPort reports whether the link leaving node via port crosses a
	// ring dateline (torus only; false elsewhere). Packets crossing it
	// move to the upper dateline VC class.
	WrapsPort(node, port int) bool

	// Region partitions the routers for the congestion OR networks.
	Region(node int) int
	Regions() int
	RegionNodes(r int) []int
}

// --- Mesh adapter -----------------------------------------------------------

// Name implements Topology.
func (m *Mesh) Name() string {
	if m.torus {
		return "torus"
	}
	return "cmesh"
}

// IDAt implements Topology (ID under its interface name).
func (m *Mesh) IDAt(x, y int) int { return m.ID(x, y) }

// Radix implements Topology: four mesh directions plus the local port.
func (m *Mesh) Radix() int { return int(NumPorts) }

// Link implements Topology.
func (m *Mesh) Link(node, port int) (peer, peerPort int, ok bool) {
	p := Port(port)
	if p == Local {
		return 0, 0, false
	}
	n := m.Neighbor(node, p)
	if n < 0 {
		return 0, 0, false
	}
	return n, int(p.Opposite()), true
}

// RoutePort implements Topology.
func (m *Mesh) RoutePort(at, dst int) int { return int(m.Route(at, dst)) }

// LookAheadPort implements Topology.
func (m *Mesh) LookAheadPort(next, dst int) int { return int(m.LookAheadRoute(next, dst)) }

// WrapsPort implements Topology.
func (m *Mesh) WrapsPort(node, port int) bool { return m.Wraps(node, Port(port)) }

var _ Topology = (*Mesh)(nil)
