// Package topology models the concentrated 2-D mesh used throughout the
// paper: a Rows×Cols grid of routers, each concentrating TilesPerNode
// processor tiles behind a shared network interface, with deterministic
// dimension-ordered (X-Y) routing and 4×4 congestion-detection regions.
//
// Node identifiers are router indices in row-major order:
//
//	id = y*Cols + x,  x in [0,Cols), y in [0,Rows)
//
// Tile (core) identifiers map onto nodes by simple concentration:
// tile t lives at node t/TilesPerNode.
package topology

import "fmt"

// Port numbers a router's five ports. The first four connect to mesh
// neighbours; Local connects to the node's network interface.
type Port int

// Router port indices. NumPorts is the radix of every router in the mesh
// (four mesh directions plus the local NI port).
const (
	North Port = iota
	East
	South
	West
	Local
	NumPorts
)

// String returns the conventional single-letter compass name.
func (p Port) String() string {
	switch p {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	default:
		return fmt.Sprintf("Port(%d)", int(p))
	}
}

// Opposite returns the port on the neighbouring router that a link from p
// arrives at: a flit leaving North arrives on its neighbour's South port.
// Opposite panics for Local, which has no peer router.
func (p Port) Opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	panic("topology: Local port has no opposite")
}

// Mesh is an immutable description of a concentrated mesh or torus.
// Construct one with New or NewTorus; the zero value is not usable.
type Mesh struct {
	rows, cols   int
	tilesPerNode int
	regionRows   int // region height in routers
	regionCols   int // region width in routers
	torus        bool
}

// New returns a concentrated mesh with the given dimensions. regionDim is
// the side length of the square congestion-detection regions (the paper
// partitions the 8×8 mesh into four 4×4 regions); it must divide both rows
// and cols. New panics on invalid dimensions, as a topology is static
// experiment configuration, not runtime input.
func New(rows, cols, tilesPerNode, regionDim int) *Mesh {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("topology: invalid mesh %dx%d", rows, cols))
	}
	if tilesPerNode <= 0 {
		panic(fmt.Sprintf("topology: invalid concentration %d", tilesPerNode))
	}
	if regionDim <= 0 || rows%regionDim != 0 || cols%regionDim != 0 {
		panic(fmt.Sprintf("topology: region dim %d does not tile %dx%d mesh", regionDim, rows, cols))
	}
	return &Mesh{rows: rows, cols: cols, tilesPerNode: tilesPerNode, regionRows: regionDim, regionCols: regionDim}
}

// NewTorus returns a concentrated 2-D torus: the same grid as New but
// with wraparound links in both dimensions and shortest-direction
// dimension-ordered routing. The wrap links close rings, so wormhole
// routing needs dateline virtual-channel classes for deadlock freedom —
// the network layer enforces that (Config.Validate requires ≥2 VCs and no
// custom class masks in torus mode).
func NewTorus(rows, cols, tilesPerNode, regionDim int) *Mesh {
	m := New(rows, cols, tilesPerNode, regionDim)
	m.torus = true
	return m
}

// Torus reports whether the topology has wraparound links.
func (m *Mesh) Torus() bool { return m.torus }

// Rows returns the number of router rows.
func (m *Mesh) Rows() int { return m.rows }

// Cols returns the number of router columns.
func (m *Mesh) Cols() int { return m.cols }

// Nodes returns the number of routers (equivalently, network nodes).
func (m *Mesh) Nodes() int { return m.rows * m.cols }

// TilesPerNode returns the concentration factor.
func (m *Mesh) TilesPerNode() int { return m.tilesPerNode }

// Tiles returns the total number of processor tiles (cores).
func (m *Mesh) Tiles() int { return m.Nodes() * m.tilesPerNode }

// NodeOfTile returns the node a tile's traffic enters the network at.
func (m *Mesh) NodeOfTile(tile int) int { return tile / m.tilesPerNode }

// XY returns the grid coordinates of node id.
func (m *Mesh) XY(id int) (x, y int) { return id % m.cols, id / m.cols }

// ID returns the node at grid coordinates (x, y).
func (m *Mesh) ID(x, y int) int { return y*m.cols + x }

// Neighbor returns the node adjacent to id in direction p, or -1 if the
// link would leave the mesh edge. p must be a mesh direction, not Local.
func (m *Mesh) Neighbor(id int, p Port) int {
	x, y := m.XY(id)
	switch p {
	case North:
		y--
	case South:
		y++
	case East:
		x++
	case West:
		x--
	default:
		panic("topology: Neighbor of Local port")
	}
	if m.torus {
		x = (x + m.cols) % m.cols
		y = (y + m.rows) % m.rows
		return m.ID(x, y)
	}
	if x < 0 || x >= m.cols || y < 0 || y >= m.rows {
		return -1
	}
	return m.ID(x, y)
}

// Wraps reports whether the link leaving id in direction p is a torus
// wraparound link — the dateline of its ring. Packets crossing it move to
// the higher dateline VC class.
func (m *Mesh) Wraps(id int, p Port) bool {
	if !m.torus {
		return false
	}
	x, y := m.XY(id)
	switch p {
	case East:
		return x == m.cols-1
	case West:
		return x == 0
	case North:
		return y == 0
	case South:
		return y == m.rows-1
	default:
		return false
	}
}

// Route returns the output port a flit at node `at` destined for node `dst`
// must take under deterministic X-Y routing: fully traverse the X dimension
// first, then Y, then eject. X-Y routing on a mesh is deadlock-free, which
// is why the paper (and this reproduction) needs virtual channels only for
// protocol-level deadlock avoidance, not routing deadlock.
func (m *Mesh) Route(at, dst int) Port {
	ax, ay := m.XY(at)
	dx, dy := m.XY(dst)
	if m.torus {
		if dx != ax {
			// Shortest direction around the X ring; ties go East.
			if fwd := (dx - ax + m.cols) % m.cols; fwd <= m.cols/2 {
				return East
			}
			return West
		}
		if dy != ay {
			if fwd := (dy - ay + m.rows) % m.rows; fwd <= m.rows/2 {
				return South
			}
			return North
		}
		return Local
	}
	switch {
	case dx > ax:
		return East
	case dx < ax:
		return West
	case dy > ay:
		return South
	case dy < ay:
		return North
	default:
		return Local
	}
}

// NextHop returns the node reached by following Route(at, dst), or `at`
// itself when the flit ejects locally.
func (m *Mesh) NextHop(at, dst int) int {
	p := m.Route(at, dst)
	if p == Local {
		return at
	}
	return m.Neighbor(at, p)
}

// LookAheadRoute implements look-ahead routing (Galles' SGI Spider scheme,
// used by the paper's two-stage router): given that a flit is about to be
// sent to node `next` en route to `dst`, it returns the output port the
// flit must request at `next`. Carrying this pre-computed port in the head
// flit removes route computation from the critical path and — crucially for
// Catnap — tells the current router which downstream router to wake up.
func (m *Mesh) LookAheadRoute(next, dst int) Port {
	return m.Route(next, dst)
}

// Hops returns the minimal hop count between two nodes (Manhattan
// distance, ring distance on a torus); used by zero-load latency checks
// in tests.
func (m *Mesh) Hops(a, b int) int {
	ax, ay := m.XY(a)
	bx, by := m.XY(b)
	dx, dy := abs(ax-bx), abs(ay-by)
	if m.torus {
		if alt := m.cols - dx; alt < dx {
			dx = alt
		}
		if alt := m.rows - dy; alt < dy {
			dy = alt
		}
	}
	return dx + dy
}

// Region returns the congestion-detection region index of node id. Regions
// tile the mesh in row-major order; the paper's 8×8 mesh with regionDim 4
// has four regions of 16 routers each.
func (m *Mesh) Region(id int) int {
	x, y := m.XY(id)
	regionsPerRow := m.cols / m.regionCols
	return (y/m.regionRows)*regionsPerRow + x/m.regionCols
}

// Regions returns the number of congestion-detection regions.
func (m *Mesh) Regions() int {
	return (m.rows / m.regionRows) * (m.cols / m.regionCols)
}

// RegionNodes returns the node ids belonging to region r, in ascending
// order. The result is freshly allocated.
func (m *Mesh) RegionNodes(r int) []int {
	regionsPerRow := m.cols / m.regionCols
	ry := r / regionsPerRow
	rx := r % regionsPerRow
	nodes := make([]int, 0, m.regionRows*m.regionCols)
	for y := ry * m.regionRows; y < (ry+1)*m.regionRows; y++ {
		for x := rx * m.regionCols; x < (rx+1)*m.regionCols; x++ {
			nodes = append(nodes, m.ID(x, y))
		}
	}
	return nodes
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
