package topology

import (
	"testing"
	"testing/quick"
)

func TestFBflyBasics(t *testing.T) {
	f := NewFBfly(8, 8, 4, 4)
	if f.Radix() != 15 {
		t.Fatalf("radix = %d, want 15 (7 row + 7 col + local)", f.Radix())
	}
	if f.Nodes() != 64 || f.Tiles() != 256 || f.Regions() != 4 {
		t.Fatalf("nodes/tiles/regions = %d/%d/%d", f.Nodes(), f.Tiles(), f.Regions())
	}
	if f.Name() != "fbfly" {
		t.Fatal("name")
	}
}

// TestFBflyLinkSymmetry: following a link and then the peer's reverse
// port must return to the origin — the property the credit-return tables
// depend on.
func TestFBflyLinkSymmetry(t *testing.T) {
	f := NewFBfly(8, 8, 4, 4)
	for node := 0; node < f.Nodes(); node++ {
		for p := 0; p < f.Radix()-1; p++ {
			peer, peerPort, ok := f.Link(node, p)
			if !ok {
				t.Fatalf("node %d port %d: no link", node, p)
			}
			back, backPort, ok := f.Link(peer, peerPort)
			if !ok || back != node || backPort != p {
				t.Fatalf("asymmetric link: %d:%d -> %d:%d -> %d:%d", node, p, peer, peerPort, back, backPort)
			}
		}
		if _, _, ok := f.Link(node, f.LocalPort()); ok {
			t.Fatalf("local port of node %d has a link", node)
		}
	}
}

// TestFBflyLinksDistinct: each router's links reach every row and column
// peer exactly once.
func TestFBflyLinksDistinct(t *testing.T) {
	f := NewFBfly(4, 6, 4, 2)
	for node := 0; node < f.Nodes(); node++ {
		seen := map[int]bool{}
		for p := 0; p < f.Radix()-1; p++ {
			peer, _, ok := f.Link(node, p)
			if !ok || peer == node || seen[peer] {
				t.Fatalf("node %d port %d: peer %d (ok=%v, dup=%v)", node, p, peer, ok, seen[peer])
			}
			seen[peer] = true
			nx, ny := f.XY(node)
			px, py := f.XY(peer)
			if nx != px && ny != py {
				t.Fatalf("node %d links to %d outside its row/column", node, peer)
			}
		}
		if len(seen) != f.Radix()-1 {
			t.Fatalf("node %d reaches %d peers, want %d", node, len(seen), f.Radix()-1)
		}
	}
}

// TestFBflyRouting: every pair is reached in Hops() steps (≤2) with
// dimension order (row first).
func TestFBflyRouting(t *testing.T) {
	f := NewFBfly(8, 8, 4, 4)
	check := func(a, b uint8) bool {
		src := int(a) % f.Nodes()
		dst := int(b) % f.Nodes()
		at := src
		hops := 0
		for at != dst {
			p := f.RoutePort(at, dst)
			if p == f.LocalPort() {
				return false // stuck
			}
			peer, _, ok := f.Link(at, p)
			if !ok {
				return false
			}
			// Dimension order: once we take a column hop, the column must
			// already match... row hop first means after hop 1 either
			// column matches or we're done.
			at = peer
			hops++
			if hops > 2 {
				return false
			}
		}
		return hops == f.Hops(src, dst) && f.RoutePort(at, dst) == f.LocalPort()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFBflyHops(t *testing.T) {
	f := NewFBfly(8, 8, 4, 4)
	if h := f.Hops(0, 63); h != 2 {
		t.Errorf("corner hops = %d, want 2", h)
	}
	if h := f.Hops(0, 7); h != 1 {
		t.Errorf("same-row hops = %d, want 1", h)
	}
	if h := f.Hops(0, 56); h != 1 {
		t.Errorf("same-column hops = %d, want 1", h)
	}
	if h := f.Hops(5, 5); h != 0 {
		t.Errorf("self hops = %d", h)
	}
}

func TestFBflyPanicsOnTinyArray(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1x4 flattened butterfly should panic")
		}
	}()
	NewFBfly(1, 4, 4, 1)
}
