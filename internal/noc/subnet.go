package noc

import (
	"math/bits"

	"github.com/catnap-noc/catnap/internal/topology"
)

// arrival is a flit staged on a link, due to be written into a router's
// input buffer at a specific cycle.
type arrival struct {
	node int
	port int
	vc   int
	f    flit
}

// credit is a staged credit return to a router's output port.
type credit struct {
	node int
	port int
	vc   int
}

// feederLink identifies the upstream router output that feeds one of a
// router's input ports (credit returns flow back along it).
type feederLink struct {
	node int
	port int
}

// niCredit is a staged credit return to a node's NI for one of the local
// input port's VCs.
type niCredit struct {
	node int
	vc   int
}

// ejection is a flit staged for delivery into the destination NI.
type ejection struct {
	node int
	f    flit
}

// Subnet is one physical subnetwork: a full mesh of routers plus the
// staged-event wheels that model link, credit, and ejection latencies.
type Subnet struct {
	net    *Network
	index  int
	events *PowerEvents

	routers []Router

	// feeder[node][inPort] is the upstream (router, output port) feeding
	// that input port; input ports with no feeder (local, edges) hold
	// node == -1. Points into the shared immutable precompute for the
	// network's topology shape (precompute.go): identical for every
	// subnet and every same-shape network, read-only after construction.
	feeder [][]feederLink

	// Staged-event wheels, indexed by cycle % wheelSize. All delays are
	// small constants, so a fixed ring suffices.
	wheelSize int
	arrivals  [][]arrival
	credits   [][]credit
	niCredits [][]niCredit
	ejections [][]ejection

	// O(active) work-list state (see DESIGN.md "Hot path"). Everything
	// below is written only from this subnet's deliver/router/power
	// phases, preserving the no-shared-state parallel invariant.
	//
	// refScan selects the retained O(nodes)-scan reference phases; the
	// aggregates are maintained in both modes so observers read the same
	// values either way.
	refScan bool
	// Bitmaps over node ids (bit n of word n/64).
	occBits     []uint64 // routers with buffered flits
	wakingBits  []uint64 // routers in PowerWaking
	asleepBits  []uint64 // routers in PowerAsleep
	blockedBits []uint64 // idle-eligible routers the policy denied sleep
	pollBits    []uint64 // newly-slept routers owed one WantWake poll
	dueBits     []uint64 // scratch: checks firing this cycle
	workBits    []uint64 // scratch: merged power-phase work set
	// stateCount[s] is the router count in PowerState s.
	stateCount [3]int
	// bufferedFlits is the subnet-wide buffered flit total (BFA metric,
	// telemetry occupancy series).
	bufferedFlits int
	// bfmHist[v] counts routers whose max port occupancy is exactly v;
	// bfmMax is a lazily-tightened upper bound on the subnet MaxBFM.
	bfmHist []int32
	bfmMax  int
	// checkWheel[c % len] holds nodes whose sleep-eligibility check is
	// scheduled for cycle c; stale entries (router rescheduled or slept)
	// are skipped via Router.checkAt. Sized TIdleDetect+2: no check is
	// ever scheduled more than TIdleDetect+1 cycles ahead.
	checkWheel [][]int32
	// lastEpoch is the gating-policy epoch observed at the previous power
	// phase; a change triggers re-evaluation of asleep/blocked routers.
	lastEpoch uint64

	// Sharded router phase state (see shard.go). shardQueues[k] is band
	// k's commit queue, shardBusy[k] its processed-router count for the
	// cycle (telemetry's imbalance series), and staging flips true only
	// for the duration of the concurrent router phase — while it is set,
	// switch allocation routes all cross-router effects through the
	// router's commit queue instead of writing subnet state directly.
	shardQueues []commitQueue
	shardBusy   []int32
	staging     bool

	// Struct-of-arrays hot state (see DESIGN.md "Sharded router phase"):
	// the per-router fields the VA/SA/ST and power passes touch every
	// cycle live in flat per-subnet slices indexed by node id, so phase
	// loops scan adjacent cache lines instead of pointer-chasing through
	// ~500-byte Router structs, and a shard's rows stay resident on the
	// worker that warmed them. Routers hold views into these arrays
	// (Router.occ, outputPort.credits), which also keeps shard-phase
	// writes receiver-rooted for the staging-discipline linter.
	radix int
	// pstate[n] is router n's power state (zero value == PowerActive).
	pstate []PowerState
	// occSlots[n] is router n's non-empty (port,VC) slot bitmask.
	occSlots []uint64
	// lastBusy[n] is the lazy last-busy cycle (incremental idle
	// accounting); pinnedUntil[n] the latest in-flight arrival cycle.
	lastBusy    []int64
	pinnedUntil []int64
	// outCredits is the flattened downstream-credit array, entry
	// (n*radix+p)*VCs+v; linked output ports subslice it and the deliver
	// phase drains credit returns into it without loading any router.
	outCredits []int32
	// Contiguous backing pools for every router's port, VC, flit-ring,
	// VC-busy, and grant-scratch storage: one allocation per kind per
	// subnet instead of O(nodes*radix) little ones.
	inPool    []inputPort
	outPool   []outputPort
	vcPool    []vcState
	flitPool  []flit
	busyPool  []bool
	grantPool []bool

	// wired is the shape the pools and router views above were last built
	// for. Subnet.reset rebuilds the wiring (pool sizes, slice views,
	// link-derived port constants) only when this changes; a same-shape
	// reset sweeps just the run-state values through the existing views.
	// The topo field compares by identity, which the shared precompute
	// cache makes canonical per shape.
	wired wireShape
}

// wireShape keys the shape-pure wiring of a subnet: everything Router.wire
// derives is a pure function of these inputs.
type wireShape struct {
	nodes, radix, vcs, vcdepth int
	topo                       topology.Topology
}

// Subnets are built (and rebuilt) exclusively by Subnet.reset in
// reset.go, which Network.Reset drives for fresh shells and reused
// instances alike; there is deliberately no separate constructor whose
// initialization could drift from the reset path.

// Router returns the router at node n (read-mostly access for congestion
// metrics, policies, and tests).
//
//catnap:hotpath
func (s *Subnet) Router(n int) *Router { return &s.routers[n] }

// Events returns the subnet's switching-activity counters.
func (s *Subnet) Events() *PowerEvents { return s.events }

//catnap:hotpath
func (s *Subnet) slot(cycle int64) int { return int(cycle % int64(s.wheelSize)) }

//catnap:hotpath wheel append, amortised zero-alloc once warmed
func (s *Subnet) stageArrival(at int64, node, port, vc int, f flit) {
	i := s.slot(at)
	s.arrivals[i] = append(s.arrivals[i], arrival{node: node, port: port, vc: vc, f: f})
}

//catnap:hotpath
func (s *Subnet) stageCredit(at int64, node, port, vc int) {
	i := s.slot(at)
	s.credits[i] = append(s.credits[i], credit{node: node, port: port, vc: vc})
}

//catnap:hotpath
func (s *Subnet) stageNICredit(at int64, node, vc int) {
	i := s.slot(at)
	s.niCredits[i] = append(s.niCredits[i], niCredit{node: node, vc: vc})
}

//catnap:hotpath
func (s *Subnet) stageEject(at int64, node int, f flit) {
	i := s.slot(at)
	s.ejections[i] = append(s.ejections[i], ejection{node: node, f: f})
}

// deliverPhase drains every event staged for cycle now: credits first (so
// freed slots are usable this cycle), then flit arrivals, then ejections
// into the NIs.
//
//catnap:hotpath
func (s *Subnet) deliverPhase(now int64) {
	i := s.slot(now)

	// Credit returns drain straight into the flat credit array: no Router
	// struct, port slice, or subslice header is touched.
	vcs := s.net.cfg.VCs
	for _, c := range s.credits[i] {
		s.outCredits[(c.node*s.radix+c.port)*vcs+c.vc]++
	}
	s.credits[i] = s.credits[i][:0]

	for _, c := range s.niCredits[i] {
		s.net.nis[c.node].creditReturn(s.index, c.vc)
	}
	s.niCredits[i] = s.niCredits[i][:0]

	for _, a := range s.arrivals[i] {
		s.routers[a.node].deliver(now, a.port, a.vc, a.f)
	}
	s.arrivals[i] = s.arrivals[i][:0]

	for _, e := range s.ejections[i] {
		s.net.eject(now, e.node, e.f)
	}
	s.ejections[i] = s.ejections[i][:0]
}

// routerPhase runs allocation and traversal on every active router.
//
//catnap:hotpath
func (s *Subnet) routerPhase(now int64) {
	if s.refScan {
		s.routerPhaseScan(now)
		return
	}
	// Iterate the occupied-router work list in ascending node order (the
	// same order the scan visits). Word snapshots are safe: traversal can
	// only clear a router's own bit, never set one, so no occupied router
	// is skipped and none is visited twice.
	for i, w := range s.occBits {
		for w != 0 {
			n := i<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if s.pstate[n] != PowerActive {
				continue
			}
			r := &s.routers[n]
			r.vcAllocate()
			r.switchAllocate(now)
		}
	}
}

// routerPhaseShard is routerPhase restricted to shard band `shard`,
// with all cross-router effects staged in the band's commit queue
// (s.staging is set, so switchAllocate/traverse route through r.cq).
// Visit order within the band is ascending node id, identical to the
// sequential phase's order over those nodes. It also records how many
// routers the band processed, the telemetry imbalance counter.
//
//catnap:hotpath
//catnap:shard-phase runs concurrently with sibling bands; cross-router effects must stage via r.cq
func (s *Subnet) routerPhaseShard(now int64, shard int) {
	mask := s.net.plan.masks[shard]
	busy := int32(0)
	for i, w := range s.occBits {
		w &= mask[i]
		for w != 0 {
			n := i<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if s.pstate[n] != PowerActive {
				continue
			}
			r := &s.routers[n]
			busy++
			r.vcAllocate()
			r.switchAllocate(now)
		}
	}
	s.shardBusy[shard] = busy
}

// applyCommits drains every shard's commit queue in ascending shard
// order. Bands are contiguous ascending node ranges and each queue holds
// its effects in staging order, so the replay performs the exact write
// sequence — wheel appends, pin updates, wakeups, busy-streak ends,
// aggregate moves — the sequential router phase would have performed,
// which is what makes sharded stepping bit-identical.
//
// The queue entry types are the wheel entry types, and every entry of a
// kind lands in the same wheel slot (the delays are phase constants), so
// each kind is applied as one bulk slice append instead of entry-at-a-
// time re-staging; per-kind FIFO order — the only order the wheels can
// observe — is preserved exactly. Only the order-sensitive effects
// (pins, wake re-checks, idle transitions, histogram moves) remain
// per-entry loops. Runs after the barrier, single-threaded per subnet,
// before the power phase.
//
//catnap:hotpath
//catnap:commit-apply the designated drain point for staged shard effects
func (s *Subnet) applyCommits(now int64) {
	cfg := s.net.cfg
	arriveAt := now + int64(cfg.LinkDelay)
	creditAt := now + int64(cfg.CreditDelay)
	ai := s.slot(arriveAt)
	ci := s.slot(creditAt)
	for k := range s.shardQueues {
		cq := &s.shardQueues[k]
		if len(cq.credits) > 0 {
			s.credits[ci] = append(s.credits[ci], cq.credits...)
		}
		if len(cq.niCredits) > 0 {
			s.niCredits[ci] = append(s.niCredits[ci], cq.niCredits...)
		}
		if len(cq.arrivals) > 0 {
			for _, a := range cq.arrivals {
				if arriveAt > s.pinnedUntil[a.node] {
					s.pinnedUntil[a.node] = arriveAt
				}
			}
			s.arrivals[ai] = append(s.arrivals[ai], cq.arrivals...)
		}
		if len(cq.ejections) > 0 {
			s.ejections[ai] = append(s.ejections[ai], cq.ejections...)
		}
		for _, nid := range cq.wakes {
			// First-encounter semantics: the sequential path wakes a
			// sleeping downstream once and later blockers see it Waking.
			// Staged requests recorded it Asleep phase-wide; the ordered
			// re-check here fires only the first one.
			if s.pstate[nid] == PowerAsleep {
				s.routers[nid].wake(now, cfg.TWakeup-cfg.WakeupHidden, WakeLookAhead)
				s.events.WakeupSignals++
			}
		}
		for _, nid := range cq.idled {
			s.clearOccupied(int(nid))
			s.routers[nid].noteBusyEnd(now, now-1)
		}
		for _, m := range cq.bfm {
			s.noteBFM(int(m.from), int(m.to))
		}
		s.events.Add(&cq.events)
		s.bufferedFlits += cq.buffered
		cq.reset()
	}
}

// ShardBusy returns the per-shard processed-router counts of the most
// recent sharded router phase (nil when sharding is off). Telemetry
// samples it per cycle; callers must not modify it.
//
//catnap:hotpath
func (s *Subnet) ShardBusy() []int32 { return s.shardBusy }

// routerPhaseScan is the retained reference implementation: visit every
// router, skipping gated and empty ones by rescanning their ports.
//
//catnap:hotpath
func (s *Subnet) routerPhaseScan(now int64) {
	for n := range s.routers {
		if s.pstate[n] != PowerActive {
			continue
		}
		r := &s.routers[n]
		if r.TotalOccupancyScan() == 0 {
			continue
		}
		r.vcAllocate()
		r.switchAllocate(now)
	}
}

// powerPhase advances power states. The incremental path touches only
// routers with due work — waking routers, scheduled sleep checks, and
// (when the gating policy's decision epoch moved) asleep or sleep-blocked
// routers — while accruing state residency from the per-state counts in
// O(1). Event order matches the reference scan: ascending node id.
//
//catnap:hotpath
//catnap:worker-safe runs on worker goroutines under ExecMode.Parallel/Shards; WantWake calls land there
func (s *Subnet) powerPhase(now int64) {
	if s.refScan {
		s.powerPhaseScan(now)
		return
	}
	ev := s.events
	ev.ActiveRouterCycles += int64(s.stateCount[PowerActive] + s.stateCount[PowerWaking])
	ev.SleepRouterCycles += int64(s.stateCount[PowerAsleep])

	pol := s.net.gating
	evalAll := false
	if pol != nil {
		if fn := s.net.epochFn; fn != nil {
			ep := fn()
			evalAll = ep != s.lastEpoch
			s.lastEpoch = ep
		} else {
			// Non-epoched policies are polled every cycle, as the
			// reference path does.
			evalAll = true
		}
	}

	// Drain this cycle's check slot. Checks are scheduled at most
	// TIdleDetect+1 cycles ahead (< len(checkWheel)), so entries staged
	// during this phase always land in a different slot.
	due := s.dueBits
	for i := range due {
		due[i] = 0
	}
	slot := s.slotCheck(now)
	for _, n := range s.checkWheel[slot] {
		if r := &s.routers[n]; r.checkAt == now {
			r.checkAt = -1
			due[n>>6] |= 1 << (uint(n) & 63)
		}
	}
	s.checkWheel[slot] = s.checkWheel[slot][:0]

	work := s.workBits
	for i := range work {
		w := s.wakingBits[i] | due[i]
		if evalAll {
			w |= s.asleepBits[i] | s.blockedBits[i]
		} else {
			w |= s.pollBits[i]
		}
		work[i] = w
	}
	for i, w := range work {
		for w != 0 {
			n := i<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			switch s.pstate[n] {
			case PowerWaking:
				if r := &s.routers[n]; now >= r.wakeAt {
					r.completeWake(now)
				}
			case PowerAsleep:
				s.pollBits[n>>6] &^= 1 << (uint(n) & 63)
				if pol != nil && pol.WantWake(now, s.index, n) {
					s.routers[n].wake(now, s.net.cfg.TWakeup, WakePolicy)
				}
			default: // PowerActive: a due check and/or a blocked re-eval
				blocked := s.blockedBits[n>>6]&(1<<(uint(n)&63)) != 0
				if due[n>>6]&(1<<(uint(n)&63)) != 0 || (evalAll && blocked) {
					s.routers[n].powerCheck(now, blocked)
				}
			}
		}
	}
}

// powerPhaseScan is the retained reference implementation: every router,
// every cycle.
//
//catnap:hotpath
//catnap:worker-safe runs inside the worker-dispatched power phase
func (s *Subnet) powerPhaseScan(now int64) {
	for n := range s.routers {
		s.routers[n].powerUpdate(now)
	}
}

// flushCSC closes any open sleep periods at end of simulation.
func (s *Subnet) flushCSC(now int64) {
	for n := range s.routers {
		s.routers[n].csc.Flush(now)
	}
}

// ActiveRouters returns how many routers are currently in the active or
// waking state. O(1): read from the per-state counts.
func (s *Subnet) ActiveRouters() int {
	return len(s.routers) - s.stateCount[PowerAsleep]
}

// PowerStates returns the router counts in each power state; telemetry
// samples it per cycle for the Figure 12-style power-state series. O(1).
//
//catnap:hotpath
func (s *Subnet) PowerStates() (active, waking, asleep int) {
	return s.stateCount[PowerActive], s.stateCount[PowerWaking], s.stateCount[PowerAsleep]
}

// BufferedFlits returns the total flits buffered across every router in
// the subnet (the occupancy the BFA metric averages). O(1).
//
//catnap:hotpath
func (s *Subnet) BufferedFlits() int { return s.bufferedFlits }

// MaxBFM returns the maximum per-router BFM (max input-port occupancy)
// over the subnet — the subnet-wide view of the paper's chosen local
// congestion metric. Amortized O(1): bfmMax only rises to the exact new
// value on delivery and is lazily walked down over the router histogram
// on reads after drains.
//
//catnap:hotpath
func (s *Subnet) MaxBFM() int {
	for s.bfmMax > 0 && s.bfmHist[s.bfmMax] == 0 {
		s.bfmMax--
	}
	return s.bfmMax
}

// OccupiedBits exposes the occupied-router bitmap (bit n of word n/64 set
// iff router n buffers at least one flit). Congestion detection iterates
// it instead of scanning the mesh; callers must not modify it.
//
//catnap:hotpath
func (s *Subnet) OccupiedBits() []uint64 { return s.occBits }

// PowerStatesScan recomputes PowerStates by scanning every router — the
// reference for consistency checks and differential tests.
func (s *Subnet) PowerStatesScan() (active, waking, asleep int) {
	for n := range s.routers {
		switch s.pstate[n] {
		case PowerActive:
			active++
		case PowerWaking:
			waking++
		default:
			asleep++
		}
	}
	return
}

// BufferedFlitsScan recomputes BufferedFlits by scanning every router.
func (s *Subnet) BufferedFlitsScan() int {
	t := 0
	for n := range s.routers {
		t += s.routers[n].TotalOccupancyScan()
	}
	return t
}

// MaxBFMScan recomputes MaxBFM by scanning every router.
func (s *Subnet) MaxBFMScan() int {
	m := 0
	for n := range s.routers {
		if b := s.routers[n].MaxPortOccupancyScan(); b > m {
			m = b
		}
	}
	return m
}

// --- incremental aggregate maintenance -------------------------------

// noteBFM moves one router between max-port-occupancy histogram buckets.
//
//catnap:hotpath
func (s *Subnet) noteBFM(from, to int) {
	s.bfmHist[from]--
	s.bfmHist[to]++
	if to > s.bfmMax {
		s.bfmMax = to
	}
}

// setOccupied marks router n as holding buffered flits. Gaining a flit
// also cancels any sleep-blocked status: the router is busy again.
//
//catnap:hotpath
func (s *Subnet) setOccupied(n int) {
	s.occBits[n>>6] |= 1 << (uint(n) & 63)
	s.blockedBits[n>>6] &^= 1 << (uint(n) & 63)
}

// clearOccupied marks router n as empty.
//
//catnap:hotpath
func (s *Subnet) clearOccupied(n int) {
	s.occBits[n>>6] &^= 1 << (uint(n) & 63)
}

// setBlocked / clearBlocked maintain the sleep-blocked set (idle long
// enough to sleep, but the policy said no; re-evaluated on policy-epoch
// changes instead of every cycle).
//
//catnap:hotpath
//catnap:worker-safe own-subnet bitmap write in the power phase
func (s *Subnet) setBlocked(n int) { s.blockedBits[n>>6] |= 1 << (uint(n) & 63) }

//catnap:hotpath
//catnap:worker-safe own-subnet bitmap write in the power phase
func (s *Subnet) clearBlocked(n int) { s.blockedBits[n>>6] &^= 1 << (uint(n) & 63) }

// onSleep records an Active→Asleep transition. The fresh sleeper is owed
// one WantWake poll on the next power phase even if the policy epoch does
// not move (a generic epoched policy may want it straight back up).
//
//catnap:hotpath
//catnap:worker-safe runs inside the worker-dispatched power phase
func (s *Subnet) onSleep(n int) {
	s.stateCount[PowerActive]--
	s.stateCount[PowerAsleep]++
	s.asleepBits[n>>6] |= 1 << (uint(n) & 63)
	s.pollBits[n>>6] |= 1 << (uint(n) & 63)
	s.blockedBits[n>>6] &^= 1 << (uint(n) & 63)
}

// onWakeStart records an Asleep→Waking transition.
//
//catnap:hotpath
//catnap:worker-safe runs inside the worker-dispatched power phase
func (s *Subnet) onWakeStart(n int) {
	s.stateCount[PowerAsleep]--
	s.stateCount[PowerWaking]++
	s.asleepBits[n>>6] &^= 1 << (uint(n) & 63)
	s.pollBits[n>>6] &^= 1 << (uint(n) & 63)
	s.wakingBits[n>>6] |= 1 << (uint(n) & 63)
}

// onWakeDone records a Waking→Active transition.
//
//catnap:hotpath
//catnap:worker-safe own-subnet state-count update during the worker-dispatched power phase
func (s *Subnet) onWakeDone(n int) {
	s.stateCount[PowerWaking]--
	s.stateCount[PowerActive]++
	s.wakingBits[n>>6] &^= 1 << (uint(n) & 63)
}

//catnap:hotpath
//catnap:worker-safe pure index arithmetic
func (s *Subnet) slotCheck(cycle int64) int { return int(cycle % int64(len(s.checkWheel))) }

// scheduleCheck (re)schedules router r's next sleep-eligibility check at
// max(lastBusy+TIdleDetect, now) — the first cycle its idle streak can
// reach the detection threshold, clamped so a long-idle router (e.g. at
// re-arm) is checked immediately. A single checkAt overwrite invalidates
// any previously staged entry. No-op on the reference path or without a
// gating policy; SetGatingPolicy re-arms every router when one appears.
//
//catnap:hotpath
//catnap:worker-safe stages into the owning shard's check wheel during the power phase
func (s *Subnet) scheduleCheck(r *Router, now int64) {
	if s.refScan || s.net.gating == nil {
		return
	}
	at := s.lastBusy[r.node] + int64(s.net.cfg.TIdleDetect)
	if at < now {
		at = now
	}
	if r.checkAt == at {
		return
	}
	r.checkAt = at
	i := s.slotCheck(at)
	s.checkWheel[i] = append(s.checkWheel[i], int32(r.node))
}

// rearmChecks schedules a sleep check for every active router and forces
// a full policy re-evaluation at the next power phase. Called when a
// gating policy is installed or the stepping mode changes.
func (s *Subnet) rearmChecks(now int64) {
	s.lastEpoch = ^uint64(0)
	for i := range s.blockedBits {
		s.blockedBits[i] = 0
	}
	for n := range s.routers {
		if s.pstate[n] == PowerActive {
			s.scheduleCheck(&s.routers[n], now)
		}
	}
}

// checkAggregates cross-checks every incremental aggregate against its
// scan-based reference; tests and invariant checks call it.
func (s *Subnet) checkAggregates() string {
	if a, w, z := s.PowerStates(); true {
		as, ws, zs := s.PowerStatesScan()
		if a != as || w != ws || z != zs {
			return "power-state counts drifted from scan"
		}
	}
	if s.bufferedFlits != s.BufferedFlitsScan() {
		return "bufferedFlits drifted from scan"
	}
	if s.MaxBFM() != s.MaxBFMScan() {
		return "MaxBFM drifted from scan"
	}
	for n := range s.routers {
		r := &s.routers[n]
		if r.totalOcc != r.TotalOccupancyScan() {
			return "router totalOcc drifted from scan"
		}
		if r.maxPortOcc != r.MaxPortOccupancyScan() {
			return "router maxPortOcc drifted from scan"
		}
		bit := s.occBits[n>>6]&(1<<(uint(n)&63)) != 0
		if bit != (r.totalOcc > 0) {
			return "occBits inconsistent with occupancy"
		}
		inState := func(b []uint64) bool { return b[n>>6]&(1<<(uint(n)&63)) != 0 }
		if inState(s.asleepBits) != (s.pstate[n] == PowerAsleep) {
			return "asleepBits inconsistent with state"
		}
		if inState(s.wakingBits) != (s.pstate[n] == PowerWaking) {
			return "wakingBits inconsistent with state"
		}
	}
	return ""
}
