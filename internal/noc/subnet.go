package noc

// arrival is a flit staged on a link, due to be written into a router's
// input buffer at a specific cycle.
type arrival struct {
	node int
	port int
	vc   int
	f    flit
}

// credit is a staged credit return to a router's output port.
type credit struct {
	node int
	port int
	vc   int
}

// feederLink identifies the upstream router output that feeds one of a
// router's input ports (credit returns flow back along it).
type feederLink struct {
	node int
	port int
}

// niCredit is a staged credit return to a node's NI for one of the local
// input port's VCs.
type niCredit struct {
	node int
	vc   int
}

// ejection is a flit staged for delivery into the destination NI.
type ejection struct {
	node int
	f    flit
}

// Subnet is one physical subnetwork: a full mesh of routers plus the
// staged-event wheels that model link, credit, and ejection latencies.
type Subnet struct {
	net    *Network
	index  int
	events *PowerEvents

	routers []Router

	// feeder[node][inPort] is the upstream (router, output port) feeding
	// that input port; input ports with no feeder (local, edges) hold
	// node == -1.
	feeder [][]feederLink

	// Staged-event wheels, indexed by cycle % wheelSize. All delays are
	// small constants, so a fixed ring suffices.
	wheelSize int
	arrivals  [][]arrival
	credits   [][]credit
	niCredits [][]niCredit
	ejections [][]ejection
}

func newSubnet(net *Network, index int) *Subnet {
	s := &Subnet{net: net, index: index, events: &PowerEvents{}}
	cfg := net.cfg
	s.wheelSize = cfg.RouterDelay + cfg.LinkDelay + cfg.CreditDelay + 4
	s.arrivals = make([][]arrival, s.wheelSize)
	s.credits = make([][]credit, s.wheelSize)
	s.niCredits = make([][]niCredit, s.wheelSize)
	s.ejections = make([][]ejection, s.wheelSize)
	s.routers = make([]Router, cfg.Nodes())
	for n := range s.routers {
		s.routers[n].init(s, n)
	}
	// Build the reverse link table for credit returns.
	radix := net.topo.Radix()
	s.feeder = make([][]feederLink, cfg.Nodes())
	for n := range s.feeder {
		s.feeder[n] = make([]feederLink, radix)
		for p := range s.feeder[n] {
			s.feeder[n][p] = feederLink{node: -1}
		}
	}
	for n := 0; n < cfg.Nodes(); n++ {
		for p := 0; p < radix-1; p++ {
			if peer, peerPort, ok := net.topo.Link(n, p); ok {
				s.feeder[peer][peerPort] = feederLink{node: n, port: p}
			}
		}
	}
	return s
}

// Router returns the router at node n (read-mostly access for congestion
// metrics, policies, and tests).
func (s *Subnet) Router(n int) *Router { return &s.routers[n] }

// Events returns the subnet's switching-activity counters.
func (s *Subnet) Events() *PowerEvents { return s.events }

func (s *Subnet) slot(cycle int64) int { return int(cycle % int64(s.wheelSize)) }

func (s *Subnet) stageArrival(at int64, node, port, vc int, f flit) {
	i := s.slot(at)
	s.arrivals[i] = append(s.arrivals[i], arrival{node: node, port: port, vc: vc, f: f})
}

func (s *Subnet) stageCredit(at int64, node, port, vc int) {
	i := s.slot(at)
	s.credits[i] = append(s.credits[i], credit{node: node, port: port, vc: vc})
}

func (s *Subnet) stageNICredit(at int64, node, vc int) {
	i := s.slot(at)
	s.niCredits[i] = append(s.niCredits[i], niCredit{node: node, vc: vc})
}

func (s *Subnet) stageEject(at int64, node int, f flit) {
	i := s.slot(at)
	s.ejections[i] = append(s.ejections[i], ejection{node: node, f: f})
}

// deliverPhase drains every event staged for cycle now: credits first (so
// freed slots are usable this cycle), then flit arrivals, then ejections
// into the NIs.
func (s *Subnet) deliverPhase(now int64) {
	i := s.slot(now)

	for _, c := range s.credits[i] {
		s.routers[c.node].out[c.port].credits[c.vc]++
	}
	s.credits[i] = s.credits[i][:0]

	for _, c := range s.niCredits[i] {
		s.net.nis[c.node].creditReturn(s.index, c.vc)
	}
	s.niCredits[i] = s.niCredits[i][:0]

	for _, a := range s.arrivals[i] {
		s.routers[a.node].deliver(now, a.port, a.vc, a.f)
	}
	s.arrivals[i] = s.arrivals[i][:0]

	for _, e := range s.ejections[i] {
		s.net.eject(now, e.node, e.f)
	}
	s.ejections[i] = s.ejections[i][:0]
}

// routerPhase runs allocation and traversal on every active router.
func (s *Subnet) routerPhase(now int64) {
	for n := range s.routers {
		r := &s.routers[n]
		if r.state != PowerActive {
			continue
		}
		if r.TotalOccupancy() == 0 {
			continue
		}
		r.vcAllocate()
		r.switchAllocate(now)
	}
}

// powerPhase advances power states on every router.
func (s *Subnet) powerPhase(now int64) {
	for n := range s.routers {
		s.routers[n].powerUpdate(now)
	}
}

// flushCSC closes any open sleep periods at end of simulation.
func (s *Subnet) flushCSC(now int64) {
	for n := range s.routers {
		s.routers[n].csc.Flush(now)
	}
}

// ActiveRouters returns how many routers are currently in the active or
// waking state.
func (s *Subnet) ActiveRouters() int {
	c := 0
	for n := range s.routers {
		if s.routers[n].state != PowerAsleep {
			c++
		}
	}
	return c
}

// PowerStates returns the router counts in each power state; telemetry
// samples it per cycle for the Figure 12-style power-state series.
func (s *Subnet) PowerStates() (active, waking, asleep int) {
	for n := range s.routers {
		switch s.routers[n].state {
		case PowerActive:
			active++
		case PowerWaking:
			waking++
		default:
			asleep++
		}
	}
	return
}

// BufferedFlits returns the total flits buffered across every router in
// the subnet (the occupancy the BFA metric averages).
func (s *Subnet) BufferedFlits() int {
	t := 0
	for n := range s.routers {
		t += s.routers[n].TotalOccupancy()
	}
	return t
}

// MaxBFM returns the maximum per-router BFM (max input-port occupancy)
// over the subnet — the subnet-wide view of the paper's chosen local
// congestion metric.
func (s *Subnet) MaxBFM() int {
	m := 0
	for n := range s.routers {
		if b := s.routers[n].MaxPortOccupancy(); b > m {
			m = b
		}
	}
	return m
}
