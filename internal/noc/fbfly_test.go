package noc_test

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/traffic"
)

func fbflyConfig(rows, cols, subnets, width int) noc.Config {
	cfg := testConfig(rows, cols, subnets, width)
	cfg.FBfly = true
	return cfg
}

func TestFBflyZeroLoad(t *testing.T) {
	cfg := fbflyConfig(8, 8, 1, 512)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	p := net.NewPacket(0, 63, noc.ClassSynthetic, 512)
	net.Run(50)
	if p.ArriveTime == 0 {
		t.Fatal("not delivered")
	}
	// Two hops, same pipeline arithmetic as the mesh: 4 + 3*2 = 10.
	if want := int64(4 + 3*2); p.Latency() != want {
		t.Fatalf("fbfly corner latency = %d, want %d", p.Latency(), want)
	}
}

func TestFBflyAllPairs(t *testing.T) {
	cfg := fbflyConfig(4, 4, 2, 256)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for s := 0; s < cfg.Nodes(); s++ {
		for d := 0; d < cfg.Nodes(); d++ {
			if s != d {
				net.NewPacket(s, d, noc.ClassSynthetic, 512)
				want++
			}
		}
	}
	if !net.Drain(100000) {
		t.Fatalf("did not drain: %d in flight", net.InFlight())
	}
	if _, _, ejected := net.Counts(); int(ejected) != want {
		t.Fatalf("delivered %d of %d", ejected, want)
	}
	if err := net.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestFBflyDeadlockFreedom: saturate the high-radix network on every
// pattern and drain — dimension-ordered routing on the flattened
// butterfly is acyclic, so no datelines are needed.
func TestFBflyDeadlockFreedom(t *testing.T) {
	for _, patName := range []string{"uniform-random", "transpose", "bit-complement"} {
		pat, err := traffic.PatternByName(patName)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fbflyConfig(8, 8, 1, 512)
		net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
		if err != nil {
			t.Fatal(err)
		}
		gen := traffic.NewGenerator(net, pat, traffic.Constant(0.9), 3)
		for i := 0; i < 2500; i++ {
			gen.Tick(net.Now())
			net.Step()
		}
		if !net.Drain(300000) {
			t.Fatalf("%s: deadlock with %d in flight", patName, net.InFlight())
		}
		if err := net.CheckQuiescent(); err != nil {
			t.Fatalf("%s: %v", patName, err)
		}
	}
}

// TestFBflyCatnap: the full Catnap stack on the flattened butterfly —
// §8's conjecture that Multi-NoC power gating helps high-radix
// topologies too.
func TestFBflyCatnap(t *testing.T) {
	cfg := fbflyConfig(8, 8, 4, 128)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
	net.AddObserver(det)
	net.SetSelector(core.NewCatnapSelector(det, cfg.Nodes()))
	net.SetGatingPolicy(core.NewCatnapGating(det))

	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.03), 9)
	for i := 0; i < 5000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	share := net.SubnetFlitShare()
	if share[0] < 0.95 {
		t.Errorf("subnet 0 share %.2f at low load on fbfly", share[0])
	}
	for s := 1; s < 4; s++ {
		if a := net.Subnet(s).ActiveRouters(); a > 6 {
			t.Errorf("fbfly subnet %d: %d routers awake at low load", s, a)
		}
	}
	net.FlushCSC()
	csc, total := net.CompensatedSleepCycles()
	if pct := 100 * float64(csc) / float64(total); pct < 50 {
		t.Errorf("fbfly CSC %.1f%%, want >50%% at 0.03 load", pct)
	}
	if !net.Drain(100000) {
		t.Fatalf("did not drain: %d in flight", net.InFlight())
	}
	created, _, ejected := net.Counts()
	if created != ejected {
		t.Fatalf("conservation: %d != %d", created, ejected)
	}
}

// TestFBflyBeatsTorusLatency: 2-hop routing should give the lowest
// zero-load latency of the three topologies.
func TestFBflyBeatsTorusLatency(t *testing.T) {
	lat := func(mut func(*noc.Config)) float64 {
		cfg := testConfig(8, 8, 1, 512)
		mut(&cfg)
		net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
		if err != nil {
			t.Fatal(err)
		}
		gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.05), 7)
		for i := 0; i < 4000; i++ {
			gen.Tick(net.Now())
			net.Step()
		}
		return net.Latency().Mean()
	}
	mesh := lat(func(c *noc.Config) {})
	torus := lat(func(c *noc.Config) { c.Torus = true })
	fbfly := lat(func(c *noc.Config) { c.FBfly = true })
	if !(fbfly < torus && torus < mesh) {
		t.Errorf("latency ordering: fbfly %.1f, torus %.1f, mesh %.1f (want ascending)", fbfly, torus, mesh)
	}
}
