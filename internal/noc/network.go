package noc

import (
	"fmt"
	"math/bits"

	"github.com/catnap-noc/catnap/internal/runner"
	"github.com/catnap-noc/catnap/internal/stats"
	"github.com/catnap-noc/catnap/internal/topology"
)

// Network is one complete on-chip network: Subnets parallel subnetworks
// over a shared concentrated mesh, one NI per node, a subnet-selection
// policy and an optional power-gating policy.
//
// The per-cycle execution order (Step) is:
//
//  1. deliver  — staged link flits, credits, and ejections land
//  2. inject   — NIs admit, select subnets for, and stream packets
//  3. route    — every active router runs VC and switch allocation
//  4. power    — routers advance gating state machines
//  5. observe  — congestion sampling, RCS latching, system models
//
// Phases 1–3 only *stage* future events (wheels), so no router observes
// another router's same-cycle decisions: the simulation is deterministic
// and order-independent within a phase.
type Network struct {
	cfg *Config
	// pre is the shared immutable precompute for cfg's topology shape
	// (topology object, feeder table); see precompute.go. Swapped by
	// Reset when the shape changes, never mutated.
	pre       *precomp
	topo      topology.Topology
	localPort int
	subnets   []*Subnet
	nis       []*NI
	selector  SubnetSelector
	gating    GatingPolicy
	obs       []CycleObserver
	tracer    PowerTracer

	now        int64
	nextPktID  uint64
	sinks      []func(now int64, p *Packet)
	inFlight   int64
	latency    *stats.Latency
	netLatency *stats.Latency

	parallel bool
	// shardCount/plan/shardTasks implement the sharded router phase (see
	// shard.go): a non-nil plan splits every subnet's router phase into
	// row-band tasks run concurrently with commit-queue staging.
	// shardTasks is the reused per-cycle task-list scratch.
	shardCount int
	plan       *shardPlan
	shardTasks []shardTask
	// pool runs the per-cycle fan-out (shard tasks, per-subnet phases) on
	// reusable parked workers. affinity/stealBatch are the applied
	// ExecMode.ShardAffinity/StealBatch tuning knobs for shard dispatch.
	pool       *runner.StepPool
	affinity   bool
	stealBatch int
	// phaseNow and the pre-bound task closures below exist so that a
	// steady-state Step performs zero allocations: the closures are built
	// once in New and read the current cycle from phaseNow instead of
	// capturing it per cycle. phaseNow is written by the dispatching
	// goroutine before pool.Run and is read-only during a burst.
	phaseNow int64
	shardFn  func(int)
	phaseFn  func(int)
	commitFn func(int)
	// recycle enables the per-NI packet freelist: delivered packets are
	// reused by later NewPacket calls at the same source node.
	recycle bool
	// refScan selects the retained O(nodes) scan-based router/power/
	// sampling phases instead of the incremental O(active) ones; results
	// are bit-identical either way (the differential tests assert it).
	refScan bool
	// idleSkip arms event-driven idle fast-forward (see skip.go): when
	// the network is fully quiescent, TrySkipIdle jumps n.now directly to
	// the next staged event instead of stepping empty cycles.
	idleSkip bool
	// epochFn caches the gating policy's EpochedPolicy method, if it
	// implements one, so the power phase re-evaluates asleep and
	// sleep-blocked routers only when the policy's answers can change.
	epochFn func() uint64

	// Network-wide NI aggregates, mutated only in the sequential inject
	// phase: total bounded-queue occupancy with a nonempty-queue bitmap
	// (IQOcc congestion sampling, telemetry), and per-subnet injected
	// flit totals (subnet shares without walking the NIs).
	niQueueFlits   int
	niQBits        []uint64
	flitsPerSubnet []int64
	// niWorkBits marks NIs with any packet not yet fully streamed into
	// the network (source queue, bounded queue, or an active channel).
	// The inject phase visits only marked NIs on the incremental path: an
	// unmarked NI's injectPhase is a complete no-op. Set on enqueue,
	// cleared by injectPhase itself when the NI goes fully idle.
	niWorkBits []uint64

	injectedPkts int64
	ejectedPkts  int64
	ejectedFlits int64
	createdPkts  int64
}

// New builds a network from cfg with the given subnet selector. cfg is
// copied; the selector must be non-nil. Power gating is disabled until
// SetGatingPolicy is called.
//
// New is a thin shell over Reset: it allocates the network, the reusable
// step-worker pool, and the pre-bound phase closures (which index
// n.subnets at call time, so they survive in-place resets), then lets
// Reset build every per-run structure. A reset network and a fresh one
// therefore run identical construction code.
//
//catnap:reset-covered every per-run structure is built by Reset itself
func New(cfg Config, selector SubnetSelector) (*Network, error) {
	n := &Network{}
	n.pool = runner.NewStepPool(0, 0)
	n.shardFn = func(i int) {
		t := n.shardTasks[i]
		n.subnets[t.sub].routerPhaseShard(n.phaseNow, int(t.shard))
	}
	n.phaseFn = func(i int) {
		s := n.subnets[i]
		s.routerPhase(n.phaseNow)
		s.powerPhase(n.phaseNow)
	}
	n.commitFn = func(i int) {
		s := n.subnets[i]
		s.applyCommits(n.phaseNow)
		s.powerPhase(n.phaseNow)
	}
	if err := n.Reset(cfg, selector); err != nil {
		return nil, err
	}
	return n, nil
}

// SetGatingPolicy installs (or, with nil, removes) the power-gating
// policy. Call before stepping. If the policy implements EpochedPolicy,
// steady-state sleep/wake decisions are re-evaluated only when its epoch
// moves; otherwise it is polled every cycle like the reference path.
func (n *Network) SetGatingPolicy(p GatingPolicy) {
	n.gating = p
	n.epochFn = nil
	if ep, ok := p.(EpochedPolicy); ok {
		n.epochFn = ep.PolicyEpoch
	}
	if p != nil && !n.refScan {
		for _, s := range n.subnets {
			s.rearmChecks(n.now)
		}
	}
}

// applyReferenceScan is SetExecMode's reference-scan transition: a no-op
// when the mode already matches, otherwise it converts the idle-streak
// representation and re-arms sleep checks.
func (n *Network) applyReferenceScan(on bool) {
	if n.refScan == on {
		return
	}
	n.refScan = on
	for _, s := range n.subnets {
		s.refScan = on
		for i := range s.routers {
			if s.pstate[i] != PowerActive {
				continue
			}
			r := &s.routers[i]
			if on {
				r.emptySince = s.lastBusy[i] + 1
			} else {
				s.lastBusy[i] = r.emptySince - 1
			}
		}
		if !on && n.gating != nil {
			s.rearmChecks(n.now)
		}
	}
	if !on {
		// Entering fast mode: the work bitmap was not maintained while
		// scanning, so rebuild it from the ground truth.
		for i := range n.niWorkBits {
			n.niWorkBits[i] = 0
		}
		for node, ni := range n.nis {
			if ni.Backlogged() {
				n.niWorkBits[node>>6] |= 1 << (uint(node) & 63)
			}
		}
	}
}

// ReferenceScan reports whether the scan-based reference path is active.
func (n *Network) ReferenceScan() bool { return n.refScan }

// SetSelector replaces the subnet-selection policy. Policies that read
// congestion state need the network to exist before they can be built, so
// the usual construction order is: New with a placeholder selector, build
// the detector over the network, then SetSelector with the real policy.
func (n *Network) SetSelector(s SubnetSelector) {
	if s == nil {
		panic("noc: nil subnet selector")
	}
	n.selector = s
}

// AddObserver registers an end-of-cycle observer. Observers run in
// registration order.
func (n *Network) AddObserver(o CycleObserver) { n.obs = append(n.obs, o) }

// Observers returns the number of registered end-of-cycle observers
// (telemetry's free-when-off guard asserts on it).
func (n *Network) Observers() int { return len(n.obs) }

// SetPowerTracer installs (or, with nil, removes) the power-transition
// tracer. The default is nil: no tracing, no per-transition overhead
// beyond a pointer compare.
func (n *Network) SetPowerTracer(t PowerTracer) { n.tracer = t }

// PowerTracer returns the installed power-transition tracer, or nil.
func (n *Network) PowerTracer() PowerTracer { return n.tracer }

// AddSink registers a delivery callback invoked for every packet when its
// tail flit ejects; closed-loop system models use one to unblock cores,
// measurement windows use another. Sinks run in registration order.
func (n *Network) AddSink(f func(now int64, p *Packet)) { n.sinks = append(n.sinks, f) }

// Config returns the network's configuration (read-only by convention).
func (n *Network) Config() *Config { return n.cfg }

// Topo returns the network topology.
func (n *Network) Topo() topology.Topology { return n.topo }

// Subnet returns subnetwork s.
//
//catnap:hotpath
func (n *Network) Subnet(s int) *Subnet { return n.subnets[s] }

// Subnets returns the number of subnetworks.
func (n *Network) Subnets() int { return len(n.subnets) }

// NI returns the network interface of node i.
//
//catnap:hotpath
func (n *Network) NI(i int) *NI { return n.nis[i] }

// Now returns the current cycle (the cycle the next Step will execute).
func (n *Network) Now() int64 { return n.now }

// NewPacket creates a packet from src to dst with a unique ID and the
// current cycle as its creation time, and enqueues it at src's NI source
// queue. It returns the packet for callers that track completion; see
// ExecMode.PacketRecycling for the lifetime caveat.
//
//catnap:hotpath called once per injected packet
//catnap:reset-covered packets live in queues/wheels Reset clears; the freelist is retained and every recycled packet is fully overwritten here
func (n *Network) NewPacket(src, dst int, class MsgClass, sizeBits int) *Packet {
	ni := n.nis[src]
	var p *Packet
	if k := len(ni.free) - 1; n.recycle && k >= 0 {
		p = ni.free[k]
		ni.free[k] = nil
		ni.free = ni.free[:k]
	} else {
		//lint:ignore hotpathalloc freelist miss: one allocation per live packet, amortised away once recycling warms the freelist
		p = new(Packet)
	}
	*p = Packet{
		ID:         n.nextPktID,
		Src:        src,
		Dst:        dst,
		Class:      class,
		SizeBits:   sizeBits,
		CreateTime: n.now,
		Subnet:     -1,
	}
	n.nextPktID++
	n.createdPkts++
	n.inFlight++
	ni.enqueue(p)
	n.niWorkBits[src>>6] |= 1 << (uint(src) & 63)
	return p
}

// Step advances the network by one cycle.
//
//catnap:hotpath the per-cycle entry point; the bench-core guard asserts 0 B/cycle through here
func (n *Network) Step() {
	t := n.now
	for _, s := range n.subnets {
		s.deliverPhase(t)
	}
	if n.refScan {
		for _, ni := range n.nis {
			ni.injectPhase(t)
		}
	} else {
		// Only NIs with pending work: injectPhase clears its own bit when
		// the NI drains, and word snapshots make that safe mid-iteration.
		for i, w := range n.niWorkBits {
			for w != 0 {
				node := i<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				n.nis[node].injectPhase(t)
			}
		}
	}
	if n.plan != nil && !n.refScan {
		n.stepSharded(t)
	} else if n.parallel {
		n.phaseNow = t
		n.pool.Run(len(n.subnets), false, 1, n.phaseFn)
	} else {
		for _, s := range n.subnets {
			s.routerPhase(t)
		}
		for _, s := range n.subnets {
			s.powerPhase(t)
		}
	}
	for _, o := range n.obs {
		o.AfterCycle(t)
	}
	n.now = t + 1
}

// Run advances the network by cycles steps.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// Drain steps the network until no packet is in flight or maxCycles
// elapse; it returns true if the network fully drained. Useful at the end
// of finite workloads.
func (n *Network) Drain(maxCycles int64) bool {
	deadline := n.now + maxCycles
	for n.inFlight > 0 && n.now < deadline {
		n.Step()
	}
	return n.inFlight == 0
}

// eject completes a flit's journey at its destination NI; the tail flit
// completes the packet.
//
//catnap:hotpath called once per delivered flit
func (n *Network) eject(now int64, node int, f flit) {
	p := f.pkt
	if p.Dst != node {
		panic(fmt.Sprintf("noc: packet %d ejected at node %d, wanted %d", p.ID, node, p.Dst))
	}
	n.ejectedFlits++
	if !f.tail() {
		return
	}
	p.ArriveTime = now
	n.ejectedPkts++
	n.inFlight--
	n.latency.Observe(p.Latency())
	n.netLatency.Observe(p.NetworkLatency())
	for _, sink := range n.sinks {
		sink(now, p)
	}
	if n.recycle {
		// All sinks have run; the struct may now be reused by the next
		// NewPacket at the source node (see ExecMode.PacketRecycling).
		n.nis[p.Src].free = append(n.nis[p.Src].free, p)
	}
}

// niStreaming reports whether node's NI is mid-packet into subnet s.
//
//catnap:hotpath
//catnap:worker-safe reads one NI's streaming bit inside the worker-dispatched power phase
func (n *Network) niStreaming(s, node int) bool { return n.nis[node].streaming(s) }

// FlushCSC closes all open sleep periods; call once before reading CSC.
func (n *Network) FlushCSC() {
	for _, s := range n.subnets {
		s.flushCSC(n.now)
	}
}

// Latency returns the end-to-end packet latency distribution (source
// queue entry to tail ejection).
func (n *Network) Latency() *stats.Latency { return n.latency }

// NetworkLatency returns the in-network latency distribution (head
// injection to tail ejection).
func (n *Network) NetworkLatency() *stats.Latency { return n.netLatency }

// Counts returns cumulative packet counters: created (entered a source
// queue), injected (head flit entered a subnet), ejected (tail flit
// delivered).
//
//catnap:hotpath
func (n *Network) Counts() (created, injected, ejected int64) {
	return n.createdPkts, n.injectedPkts, n.ejectedPkts
}

// EjectedFlits returns the cumulative ejected flit count.
func (n *Network) EjectedFlits() int64 { return n.ejectedFlits }

// InFlight returns the number of packets created but not yet delivered.
func (n *Network) InFlight() int64 { return n.inFlight }

// Events returns a fresh aggregate of all subnets' power events.
func (n *Network) Events() PowerEvents {
	var e PowerEvents
	for _, s := range n.subnets {
		e.Add(s.events)
	}
	return e
}

// CompensatedSleepCycles returns the total compensated sleep cycles summed
// over every router in every subnet, and the corresponding router-cycle
// total (elapsed × routers), so callers can report the paper's CSC
// percentage. Call FlushCSC first.
func (n *Network) CompensatedSleepCycles() (csc, routerCycles int64) {
	for _, s := range n.subnets {
		for i := range s.routers {
			csc += s.routers[i].csc.Compensated()
		}
	}
	routerCycles = n.now * int64(n.cfg.Nodes()) * int64(n.cfg.Subnets)
	return csc, routerCycles
}

// SubnetFlitShare returns, for each subnet, the fraction of all injected
// flits that entered it (Figure 12(b)'s utilization series reads this
// windowed; this is the cumulative version used by tests).
func (n *Network) SubnetFlitShare() []float64 {
	total := int64(0)
	for _, c := range n.flitsPerSubnet {
		total += c
	}
	share := make([]float64, n.cfg.Subnets)
	if total == 0 {
		return share
	}
	for s := range share {
		share[s] = float64(n.flitsPerSubnet[s]) / float64(total)
	}
	return share
}

// FlitsPerSubnet returns the network-wide injected flit count per subnet
// (the sum of every NI's FlitsPerSubnet). Callers must not modify it.
//
//catnap:hotpath
func (n *Network) FlitsPerSubnet() []int64 { return n.flitsPerSubnet }

// NIQueueFlits returns the total bounded injection-queue occupancy over
// all NIs, in flits.
//
//catnap:hotpath
func (n *Network) NIQueueFlits() int { return n.niQueueFlits }

// NIQueuedBits exposes a bitmap over node ids with bit n set iff node n's
// bounded injection queue is nonempty; the IQOcc congestion metric
// iterates it instead of polling every NI. Callers must not modify it.
//
//catnap:hotpath
func (n *Network) NIQueuedBits() []uint64 { return n.niQBits }

// setNIQueued maintains the nonempty-injection-queue bitmap; each NI
// calls it at the end of its inject phase.
//
//catnap:hotpath
func (n *Network) setNIQueued(node int, queued bool) {
	if queued {
		n.niQBits[node>>6] |= 1 << (uint(node) & 63)
	} else {
		n.niQBits[node>>6] &^= 1 << (uint(node) & 63)
	}
}
