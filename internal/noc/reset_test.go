package noc_test

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// The reset differential suite pins the zero-rebuild property: a network
// that has already simulated traffic — possibly under a different shape —
// and is then rewound with Network.Reset must reproduce a fresh New
// network bit for bit: same per-cycle state hashes, same deliveries and
// latency distribution, same power events, same transition order. The
// fingerprint machinery is shared with the reference-scan differentials
// (differential_test.go).

// dirtyReset builds a network, runs it under warmCfg traffic long enough
// to populate every wheel, queue, freelist, and detector window, then
// Resets it to cfg and returns it — exactly the reuse path SimPool.Get
// exercises.
func dirtyReset(t *testing.T, warmCfg, cfg noc.Config, warmCycles int) *noc.Network {
	t.Helper()
	net, err := noc.New(warmCfg, core.NewRRSelector(warmCfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	net.SetGatingPolicy(core.BaselineGating{})
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.2), 5)
	for i := 0; i < warmCycles; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	if err := net.Reset(cfg, core.NewRRSelector(cfg.Nodes())); err != nil {
		t.Fatal(err)
	}
	return net
}

// TestResetMatchesFreshNetwork is the core reset differential: for every
// gating flavor, a dirtied-then-Reset network must retrace a fresh
// network's run exactly, including the order of sleep/wake/LCS/RCS
// transitions.
func TestResetMatchesFreshNetwork(t *testing.T) {
	const cycles = 2000
	cfg := testConfig(8, 8, 4, 128)
	for _, gating := range []string{"catnap", "opaque", "baseline", "none"} {
		fresh := diffRunWith(t, diffOpts{gating: gating, sched: traffic.Fig12Bursts(), cycles: cycles})
		reused := diffRunWith(t, diffOpts{
			net:    dirtyReset(t, cfg, cfg, 700),
			gating: gating, sched: traffic.Fig12Bursts(), cycles: cycles,
		})
		compareFingerprints(t, gating+"/reset", fresh, reused, true)
	}
}

// TestResetMatchesFreshExecModes repeats the reset differential across
// the execution modes New defaults do not cover: parallel subnets,
// sharded routers with affinity, and idle fast-forward. Reset must also
// rewind a network whose previous run used a different exec mode (the
// dirty run leaves sharding enabled; Reset returns the network to the
// sequential default before the scenario re-applies its own mode).
func TestResetMatchesFreshExecModes(t *testing.T) {
	const cycles = 2000
	cfg := testConfig(8, 8, 4, 128)
	modes := []struct {
		name string
		o    diffOpts
	}{
		{"parallel", diffOpts{parallel: true}},
		{"sharded", diffOpts{shards: 4, affinity: true}},
		{"skip", diffOpts{skip: true}},
	}
	for _, m := range modes {
		o := m.o
		o.gating, o.sched, o.cycles = "catnap", traffic.Fig12Bursts(), cycles
		fresh := diffRunWith(t, o)

		net := dirtyReset(t, cfg, cfg, 700)
		ro := o
		ro.net = net
		reused := diffRunWith(t, ro)
		// Parallel subnets interleave tracing nondeterministically, so that
		// mode compares the transition log canonically sorted.
		compareFingerprints(t, "reset/"+m.name, fresh, reused, !o.parallel)
	}
}

// dirtyShardedReset dirties the network with sharded parallel execution
// before the Reset, so the reset path has live shard plans, commit
// queues, and a warmed step pool to rewind.
func dirtyShardedReset(t *testing.T, warmCfg, cfg noc.Config, warmCycles int) *noc.Network {
	t.Helper()
	net, err := noc.New(warmCfg, core.NewRRSelector(warmCfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetExecMode(noc.ExecMode{Parallel: true, Shards: 4, ShardAffinity: true}); err != nil {
		t.Fatal(err)
	}
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.25), 11)
	for i := 0; i < warmCycles; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	if err := net.Reset(cfg, core.NewRRSelector(cfg.Nodes())); err != nil {
		t.Fatal(err)
	}
	return net
}

// TestResetHeterogeneousShapes drives one network through back-to-back
// heterogeneous configurations — different mesh shape, subnet count, and
// link width, the way a design sweep's worker pool does — and checks each
// leg against a fresh network of that shape. The slab reuse must survive
// both growth (4x4 -> 8x8) and shrinkage (8x8 -> 4x4).
func TestResetHeterogeneousShapes(t *testing.T) {
	const cycles = 1500
	small := testConfig(4, 4, 2, 64)
	big := testConfig(8, 8, 4, 128)

	// Grow: dirty at 4x4/2 subnets, reset to 8x8/4.
	freshBig := diffRunWith(t, diffOpts{gating: "catnap", sched: traffic.Constant(0.15), cycles: cycles})
	grown := diffRunWith(t, diffOpts{
		net:    dirtyReset(t, small, big, 600),
		gating: "catnap", sched: traffic.Constant(0.15), cycles: cycles,
	})
	compareFingerprints(t, "reset/grow", freshBig, grown, true)

	// Shrink: dirty at 8x8/4 under sharded execution, reset to 4x4/2.
	shrunkNet := dirtyShardedReset(t, big, small, 600)
	shrunk := runSmall(t, shrunkNet, cycles)
	freshNet, err := noc.New(small, core.NewRRSelector(small.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	freshSmall := runSmall(t, freshNet, cycles)
	compareFingerprints(t, "reset/shrink", freshSmall, shrunk, true)
}

// runSmall fingerprints a catnap-gated constant-load run on net using the
// shared differential scenario machinery.
func runSmall(t *testing.T, net *noc.Network, cycles int) diffFingerprint {
	t.Helper()
	return diffRunWith(t, diffOpts{net: net, gating: "catnap", sched: traffic.Constant(0.2), cycles: cycles})
}

// TestResetRepeatedReuse resets one network many times in a row — the
// steady state of a sweep worker — asserting the Nth reuse is still
// identical to the first. Catching drift that accumulates across resets
// (rather than appearing on the first one) is the point.
func TestResetRepeatedReuse(t *testing.T) {
	const cycles = 1200
	cfg := testConfig(8, 8, 4, 128)
	fresh := diffRunWith(t, diffOpts{gating: "catnap", sched: traffic.Constant(0.12), cycles: cycles})
	net := dirtyReset(t, cfg, cfg, 400)
	for rep := 0; rep < 4; rep++ {
		if rep > 0 {
			if err := net.Reset(cfg, core.NewRRSelector(cfg.Nodes())); err != nil {
				t.Fatal(err)
			}
		}
		got := diffRunWith(t, diffOpts{net: net, gating: "catnap", sched: traffic.Constant(0.12), cycles: cycles})
		compareFingerprints(t, "reset/repeat", fresh, got, true)
	}
}

// TestResetRejectsInvalidConfig checks Reset validates before mutating:
// an invalid config must error out.
func TestResetRejectsInvalidConfig(t *testing.T) {
	cfg := testConfig(4, 4, 2, 64)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Subnets = 0
	if err := net.Reset(bad, core.NewRRSelector(bad.Nodes())); err == nil {
		t.Fatal("Reset accepted an invalid config")
	}
	if err := net.Reset(cfg, nil); err == nil {
		t.Fatal("Reset accepted a nil selector")
	}
}
