package noc

import (
	"sync"

	"github.com/catnap-noc/catnap/internal/topology"
)

// Shared immutable precompute (see DESIGN.md §4i): the build products that
// depend only on the topology shape — the topology object itself (routing
// tables, adjacency) and the reverse-link feeder table credit returns walk
// — are identical for every subnet of every network with the same shape.
// Sweeps and explore campaigns instantiate hundreds of near-identical
// networks, so these are built once per (kind, rows, cols, concentration,
// region) shape in a process-lifetime cache and shared read-only across
// all networks and worker goroutines. Everything in the cache is written
// only during construction under LoadOrStore and never mutated afterwards;
// the race-enabled reset differential suite exercises concurrent readers.

// precompKey identifies one topology shape. The handful of shapes a
// campaign touches bounds the cache size; entries are a few KB each.
type precompKey struct {
	torus, fbfly               bool
	rows, cols, tiles, regions int
}

// precomp holds one shape's shared immutable build products.
type precomp struct {
	topo topology.Topology
	// feeder[node][inPort] is the upstream (router, output port) feeding
	// that input port; ports with no feeder hold node == -1. One backing
	// slab, read-only after construction.
	feeder [][]feederLink
}

var precompCache sync.Map // precompKey -> *precomp

// sharedPrecomp returns the cached precompute for cfg's topology shape,
// building and publishing it on first use. Callers must treat every part
// of the result as immutable.
func sharedPrecomp(cfg *Config) *precomp {
	k := precompKey{
		torus:   cfg.Torus,
		fbfly:   cfg.FBfly,
		rows:    cfg.Rows,
		cols:    cfg.Cols,
		tiles:   cfg.TilesPerNode,
		regions: cfg.RegionDim,
	}
	if v, ok := precompCache.Load(k); ok {
		return v.(*precomp)
	}
	topo := cfg.topology()
	p := &precomp{topo: topo, feeder: buildFeeder(topo, cfg.Nodes())}
	v, _ := precompCache.LoadOrStore(k, p)
	return v.(*precomp)
}

// buildFeeder builds the reverse link table: for every router input port,
// the upstream (router, output port) that feeds it.
func buildFeeder(topo topology.Topology, nodes int) [][]feederLink {
	radix := topo.Radix()
	flat := make([]feederLink, nodes*radix)
	for i := range flat {
		flat[i] = feederLink{node: -1}
	}
	feeder := make([][]feederLink, nodes)
	for n := range feeder {
		feeder[n] = flat[n*radix : (n+1)*radix : (n+1)*radix]
	}
	for n := 0; n < nodes; n++ {
		for p := 0; p < radix-1; p++ {
			if peer, peerPort, ok := topo.Link(n, p); ok {
				feeder[peer][peerPort] = feederLink{node: n, port: p}
			}
		}
	}
	return feeder
}

// resetSlice returns s resized to n elements with every element zeroed,
// reusing the backing array when it is large enough. The reset paths use
// it for every per-run slab: a shape-compatible reset reuses all of them.
func resetSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s) // bulk typed memclr: one barrier sweep, not one per element
	return s
}

// reviveSlice returns s resized to n elements with existing contents
// preserved (so reusable sub-structures — warmed rings, routers carrying
// their CSC trackers — survive), growing only when the capacity is short.
// Elements revived from the capacity tail keep whatever a previous, larger
// shape left there; callers reset every element afterwards.
func reviveSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	grown := make([]T, n)
	copy(grown, s)
	return grown
}

// resetWheel returns a staged-event wheel resized to size slots with every
// slot emptied. Slot contents are zeroed before truncation so stale
// entries (which hold *Packet references) do not pin the previous run's
// packets, and warmed slot capacity is kept.
func resetWheel[T any](w [][]T, size int) [][]T {
	w = reviveSlice(w, size)
	for i := range w {
		clear(w[i][:cap(w[i])])
		w[i] = w[i][:0]
	}
	return w
}
