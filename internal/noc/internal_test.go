package noc

// White-box tests for the router's internal machinery: the VC ring
// buffer, the staging wheels, wormhole state transitions, and the power
// state machine's timing.

import (
	"testing"
	"testing/quick"

	"github.com/catnap-noc/catnap/internal/topology"
)

func internalConfig() Config {
	return Config{
		Rows: 2, Cols: 2, TilesPerNode: 4, RegionDim: 2,
		Subnets: 1, LinkWidthBits: 512,
		VCs: 2, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
		TWakeup: 10, WakeupHidden: 3, TIdleDetect: 4, TBreakeven: 12,
	}
}

type firstReady struct{}

func (firstReady) Select(now int64, node int, pkt *Packet, ready []bool) int {
	for s, ok := range ready {
		if ok {
			return s
		}
	}
	return -1
}

func TestVCRingBuffer(t *testing.T) {
	vc := vcState{q: make([]flit, 4), outVC: -1}
	if !vc.empty() {
		t.Fatal("fresh VC not empty")
	}
	p := &Packet{NumFlits: 8}
	for i := 0; i < 4; i++ {
		vc.push(flit{pkt: p, seq: int32(i)})
	}
	if vc.empty() || vc.count != 4 {
		t.Fatalf("count = %d", vc.count)
	}
	// FIFO order across wraparound.
	for i := 0; i < 2; i++ {
		if f := vc.pop(); f.seq != int32(i) {
			t.Fatalf("pop %d: seq %d", i, f.seq)
		}
	}
	vc.push(flit{pkt: p, seq: 4})
	vc.push(flit{pkt: p, seq: 5})
	for i := 2; i < 6; i++ {
		if f := vc.pop(); f.seq != int32(i) {
			t.Fatalf("pop: want seq %d got %d", i, f.seq)
		}
	}
	if !vc.empty() {
		t.Fatal("VC should be empty")
	}
}

func TestVCOverflowPanics(t *testing.T) {
	vc := vcState{q: make([]flit, 2)}
	p := &Packet{NumFlits: 4}
	vc.push(flit{pkt: p})
	vc.push(flit{pkt: p, seq: 1})
	defer func() {
		if recover() == nil {
			t.Error("overflow should panic (credit accounting bug)")
		}
	}()
	vc.push(flit{pkt: p, seq: 2})
}

// TestVCPopClearsPacketRef: popped slots must not retain the packet (GC
// hygiene for long simulations).
func TestVCPopClearsPacketRef(t *testing.T) {
	vc := vcState{q: make([]flit, 2)}
	p := &Packet{NumFlits: 1}
	vc.push(flit{pkt: p})
	vc.pop()
	if vc.q[0].pkt != nil {
		t.Error("pop retained the packet reference")
	}
}

// TestWheelWrap: events staged across the wheel's wrap point must arrive
// at the right cycles.
func TestWheelWrap(t *testing.T) {
	net, err := New(internalConfig(), firstReady{})
	if err != nil {
		t.Fatal(err)
	}
	s := net.subnets[0]
	// Run the clock close to a wheel multiple, then stage and check.
	net.Run(int64(s.wheelSize*3 - 2))
	base := net.Now()
	p := &Packet{ID: 1, Dst: 0, NumFlits: 1}
	s.stageArrival(base+2, 0, int(topology.North), 0, flit{pkt: p, nextPort: uint8(topology.Local)})
	net.Step() // base: nothing arrives
	if got := s.routers[0].TotalOccupancy(); got != 0 {
		t.Fatalf("early arrival: occupancy %d", got)
	}
	net.Step() // base+1: still nothing
	if got := s.routers[0].TotalOccupancy(); got != 0 {
		t.Fatalf("early arrival: occupancy %d", got)
	}
	net.Step() // base+2: the flit lands
	if got := s.routers[0].TotalOccupancy(); got != 1 {
		t.Fatalf("arrival missed: occupancy %d", got)
	}
}

// TestWormholeStatePersistsAcrossEmptyBuffer: the per-packet route/VC
// allocation must survive the FIFO momentarily draining between head and
// body flits.
func TestWormholeStatePersistsAcrossEmptyBuffer(t *testing.T) {
	net, err := New(internalConfig(), firstReady{})
	if err != nil {
		t.Fatal(err)
	}
	// A 2-flit packet from node 0 to node 3 (one X hop, one Y hop on the
	// 2x2 mesh): the NI streams one flit per cycle, so at the first
	// router the head can depart before the body arrives.
	pkt := net.NewPacket(0, 3, ClassSynthetic, 1024)
	net.Run(60)
	if pkt.ArriveTime == 0 {
		t.Fatal("packet not delivered")
	}
	if err := net.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestPowerStateTimings: wake() must honour the delay and keep the
// earliest completion when signals race.
func TestPowerStateTimings(t *testing.T) {
	net, err := New(internalConfig(), firstReady{})
	if err != nil {
		t.Fatal(err)
	}
	sub := net.subnets[0]
	r := &sub.routers[0]
	r.sleep(100, 4)
	if sub.pstate[0] != PowerAsleep {
		t.Fatal("sleep failed")
	}
	r.wake(100, 10, WakeNI)
	if sub.pstate[0] != PowerWaking || r.wakeAt != 110 {
		t.Fatalf("state=%v wakeAt=%d", sub.pstate[0], r.wakeAt)
	}
	// A faster signal (look-ahead) accelerates the wake.
	r.wake(101, 7, WakeLookAhead)
	if r.wakeAt != 108 {
		t.Fatalf("wakeAt=%d, want 108 (earliest wins)", r.wakeAt)
	}
	// A slower one does not delay it.
	r.wake(102, 10, WakeNI)
	if r.wakeAt != 108 {
		t.Fatalf("wakeAt=%d after slower signal", r.wakeAt)
	}
	// Waking a running router is a no-op.
	sub.pstate[0] = PowerActive
	r.wake(200, 10, WakeNI)
	if sub.pstate[0] != PowerActive {
		t.Fatal("wake disturbed an active router")
	}
}

// TestFlitsForWidthProperty: serialization length is ceil(size/width),
// at least 1, and total bits carried never shrink.
func TestFlitsForWidthProperty(t *testing.T) {
	f := func(size uint16, widthSel uint8) bool {
		widths := []int{64, 128, 256, 512}
		w := widths[int(widthSel)%len(widths)]
		n := FlitsForWidth(int(size), w)
		if n < 1 {
			return false
		}
		if int(size) > 0 && (n-1)*w >= int(size) {
			return false // too many flits
		}
		return n*w >= int(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlitHeadTail(t *testing.T) {
	p := &Packet{NumFlits: 3}
	cases := []struct {
		seq        int32
		head, tail bool
	}{{0, true, false}, {1, false, false}, {2, false, true}}
	for _, c := range cases {
		f := flit{pkt: p, seq: c.seq}
		if f.head() != c.head || f.tail() != c.tail {
			t.Errorf("seq %d: head=%v tail=%v", c.seq, f.head(), f.tail())
		}
	}
	single := flit{pkt: &Packet{NumFlits: 1}}
	if !single.head() || !single.tail() {
		t.Error("single-flit packet must be head and tail")
	}
}

func TestConfigValidate(t *testing.T) {
	good := internalConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Rows = 0 },
		func(c *Config) { c.TilesPerNode = 0 },
		func(c *Config) { c.RegionDim = 3 },
		func(c *Config) { c.Subnets = 0 },
		func(c *Config) { c.LinkWidthBits = 0 },
		func(c *Config) { c.VCs = 33 },
		func(c *Config) { c.VCDepth = 0 },
		func(c *Config) { c.InjQueueFlits = 0 },
		func(c *Config) { c.RouterDelay = 0 },
		func(c *Config) { c.LinkDelay = 0 },
		func(c *Config) { c.CreditDelay = -1 },
		func(c *Config) { c.WakeupHidden = c.TWakeup + 1 },
		func(c *Config) { c.TBreakeven = -1 },
	}
	for i, m := range mutations {
		c := internalConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestClassVCMaskResolution(t *testing.T) {
	c := internalConfig()
	c.VCs = 4
	if m := c.vcMask(ClassSynthetic); m != 0xF {
		t.Errorf("zero mask should mean all VCs, got %#x", m)
	}
	c.ClassVCMask[ClassRequest] = 1 << 0
	if m := c.vcMask(ClassRequest); m != 1 {
		t.Errorf("explicit mask mangled: %#x", m)
	}
	// Masks are clipped to the configured VC count.
	c.ClassVCMask[ClassAck] = 0xFF00 | 1<<1
	if m := c.vcMask(ClassAck); m != 1<<1 {
		t.Errorf("mask not clipped: %#x", m)
	}
}

func TestPowerStateString(t *testing.T) {
	if PowerActive.String() != "active" || PowerAsleep.String() != "asleep" || PowerWaking.String() != "waking" {
		t.Error("state names changed")
	}
}

// TestWheelDelayCrossesWheelSize pins the staging wheel's wrap behavior
// at its capacity boundary: staged between cycles, the longest
// representable delay is wheelSize-1 (delay wheelSize would alias the
// slot the next deliver phase drains). Such an event's slot index wraps
// below the current cycle's slot, and it must survive every intermediate
// drain and fire exactly at its scheduled cycle — not a revolution early.
func TestWheelDelayCrossesWheelSize(t *testing.T) {
	net, err := New(internalConfig(), firstReady{})
	if err != nil {
		t.Fatal(err)
	}
	s := net.subnets[0]
	// Land mid-wheel so slot(at) < slot(base): the index computation has
	// to wrap across a wheelSize multiple.
	net.Run(int64(s.wheelSize*5 - 3))
	base := net.Now()
	at := base + int64(s.wheelSize) - 1
	if s.slot(at) >= s.slot(base) {
		t.Fatalf("fixture lost its wrap: slot(at)=%d slot(base)=%d", s.slot(at), s.slot(base))
	}
	p := &Packet{ID: 7, Dst: 0, NumFlits: 1}
	s.stageArrival(at, 0, int(topology.North), 0, flit{pkt: p, nextPort: uint8(topology.Local)})
	for now := base; now < at; now++ {
		net.Step()
		if got := s.routers[0].TotalOccupancy(); got != 0 {
			t.Fatalf("cycle %d: flit arrived %d cycles early (occupancy %d)", now, at-now-1, got)
		}
	}
	net.Step() // cycle == at: the slot comes around again and drains
	if got := s.routers[0].TotalOccupancy(); got != 1 {
		t.Fatalf("flit lost across wheel wrap: occupancy %d", got)
	}
}

// TestDrainDeadline: Drain must report failure when the deadline expires
// with packets still in flight, stop stepping at the deadline, and
// succeed once given enough cycles.
func TestDrainDeadline(t *testing.T) {
	net, err := New(internalConfig(), firstReady{})
	if err != nil {
		t.Fatal(err)
	}
	pkt := net.NewPacket(0, 3, ClassSynthetic, 1024)
	start := net.Now()
	// Serialization + two hops cannot complete in 2 cycles.
	if net.Drain(2) {
		t.Fatal("Drain reported success with a packet in flight")
	}
	if net.Now() != start+2 {
		t.Fatalf("Drain overran its deadline: stepped %d cycles, budget 2", net.Now()-start)
	}
	if net.InFlight() != 1 {
		t.Fatalf("in flight = %d, want 1", net.InFlight())
	}
	if !net.Drain(1000) {
		t.Fatal("Drain failed with ample budget")
	}
	if pkt.ArriveTime == 0 {
		t.Fatal("packet never delivered")
	}
	if err := net.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}
