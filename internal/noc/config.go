package noc

import (
	"fmt"

	"github.com/catnap-noc/catnap/internal/topology"
)

// Config describes one network instance (Single-NoC or Multi-NoC). The
// zero value is not usable; start from a preset in the root catnap package
// or fill every field and call Validate.
type Config struct {
	// Rows, Cols are the mesh dimensions in routers.
	Rows, Cols int
	// TilesPerNode is the concentration factor (tiles sharing one NI).
	TilesPerNode int
	// RegionDim is the side of the square congestion-detection regions.
	RegionDim int
	// Torus adds wraparound links in both dimensions (a 2-D torus). Torus
	// mode reserves the VC space for dateline deadlock avoidance: it
	// requires at least 2 VCs and forbids custom per-class VC masks.
	Torus bool
	// FBfly builds a flattened butterfly instead of a mesh: every router
	// links directly to all routers in its row and column (radix
	// rows+cols−1 including the local port), so any packet needs at most
	// two hops. Dimension-ordered routing is deadlock-free without
	// datelines. Mutually exclusive with Torus.
	FBfly bool

	// Subnets is the number of parallel subnetworks (1 = Single-NoC).
	Subnets int
	// LinkWidthBits is the datapath width of each subnet. The aggregate
	// width is Subnets*LinkWidthBits; paper configurations hold the
	// aggregate at 512 bits.
	LinkWidthBits int

	// VCs is the number of virtual channels per input port per subnet.
	VCs int
	// VCDepth is the buffer depth of each virtual channel in flits. The
	// paper keeps flit-depth constant across configurations (so aggregate
	// buffer *bits* are constant, since flits shrink with subnet width).
	VCDepth int
	// InjQueueFlits is the capacity of the NI injection queue in flits
	// (16 in the paper; the IQOcc congestion metric reads its occupancy).
	InjQueueFlits int

	// RouterDelay is the router pipeline depth in cycles between a flit's
	// arrival (buffer write) and its earliest switch traversal; 2 models
	// the paper's two-stage speculative router (the arrival cycle performs
	// BW+look-ahead RC, the next VA/SA, then ST).
	RouterDelay int
	// LinkDelay is the link traversal latency in cycles.
	LinkDelay int
	// CreditDelay is the credit return latency in cycles.
	CreditDelay int

	// ClassVCMask maps each message class to the set of virtual channels
	// it may allocate (bit i = VC i). A zero mask means "all VCs".
	ClassVCMask [NumClasses]uint32

	// Power gating timing constants (from the paper's SPICE analysis).
	// They live here because the router mechanics (not just the policy)
	// depend on them; the policy decides *when*, the router decides *how
	// long it takes*.

	// TWakeup is the full router wake-up delay in cycles (10).
	TWakeup int
	// WakeupHidden is how many of TWakeup cycles a look-ahead wakeup
	// signal hides (3, per Matsutani's scheme on a two-stage router).
	WakeupHidden int
	// TIdleDetect is how many consecutive empty-buffer cycles arm the
	// buffer-empty condition (4).
	TIdleDetect int
	// TBreakeven is the sleep-period break-even point in cycles (12),
	// used by CSC accounting and the gating energy overhead.
	TBreakeven int
}

// Validate checks internal consistency and returns a descriptive error for
// the first violated constraint.
func (c *Config) Validate() error {
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("noc: invalid mesh %dx%d", c.Rows, c.Cols)
	case c.TilesPerNode <= 0:
		return fmt.Errorf("noc: invalid concentration %d", c.TilesPerNode)
	case c.RegionDim <= 0 || c.Rows%c.RegionDim != 0 || c.Cols%c.RegionDim != 0:
		return fmt.Errorf("noc: region dim %d does not tile %dx%d", c.RegionDim, c.Rows, c.Cols)
	case c.Subnets <= 0:
		return fmt.Errorf("noc: need at least one subnet, got %d", c.Subnets)
	case c.LinkWidthBits <= 0:
		return fmt.Errorf("noc: invalid link width %d", c.LinkWidthBits)
	case c.VCs <= 0 || c.VCs > 32:
		return fmt.Errorf("noc: VCs must be in [1,32], got %d", c.VCs)
	case c.VCDepth <= 0:
		return fmt.Errorf("noc: invalid VC depth %d", c.VCDepth)
	case c.InjQueueFlits <= 0:
		return fmt.Errorf("noc: invalid injection queue capacity %d", c.InjQueueFlits)
	case c.RouterDelay < 1:
		return fmt.Errorf("noc: router delay must be >= 1, got %d", c.RouterDelay)
	case c.LinkDelay < 1:
		return fmt.Errorf("noc: link delay must be >= 1, got %d", c.LinkDelay)
	case c.CreditDelay < 0:
		return fmt.Errorf("noc: negative credit delay %d", c.CreditDelay)
	case c.TWakeup < 0 || c.WakeupHidden < 0 || c.WakeupHidden > c.TWakeup:
		return fmt.Errorf("noc: inconsistent wakeup timing (TWakeup=%d hidden=%d)", c.TWakeup, c.WakeupHidden)
	case c.TIdleDetect < 0 || c.TBreakeven < 0:
		return fmt.Errorf("noc: negative gating constants")
	}
	if c.Torus && c.FBfly {
		return fmt.Errorf("noc: Torus and FBfly are mutually exclusive")
	}
	if c.FBfly && (c.Rows < 2 || c.Cols < 2) {
		return fmt.Errorf("noc: flattened butterfly needs >=2x2 routers")
	}
	if c.Torus {
		if c.VCs < 2 {
			return fmt.Errorf("noc: torus needs >= 2 VCs for dateline classes, got %d", c.VCs)
		}
		for class, m := range c.ClassVCMask {
			if m != 0 {
				return fmt.Errorf("noc: torus mode reserves VC classes for datelines; class %d has a custom mask", class)
			}
		}
	}
	return nil
}

// Nodes returns the number of network nodes (routers per subnet).
func (c *Config) Nodes() int { return c.Rows * c.Cols }

// AggregateWidthBits returns the total datapath width across subnets.
func (c *Config) AggregateWidthBits() int { return c.Subnets * c.LinkWidthBits }

// vcMask returns the VC eligibility mask for a class, resolving the
// zero-means-all convention against the configured VC count.
//
//catnap:hotpath
//catnap:shard-phase read-only table lookup
func (c *Config) vcMask(class MsgClass) uint32 {
	all := uint32(1)<<uint(c.VCs) - 1
	m := c.ClassVCMask[class]
	if m == 0 {
		return all
	}
	return m & all
}

// topology builds the topology object for this configuration.
func (c *Config) topology() topology.Topology {
	switch {
	case c.FBfly:
		return topology.NewFBfly(c.Rows, c.Cols, c.TilesPerNode, c.RegionDim)
	case c.Torus:
		return topology.NewTorus(c.Rows, c.Cols, c.TilesPerNode, c.RegionDim)
	default:
		return topology.New(c.Rows, c.Cols, c.TilesPerNode, c.RegionDim)
	}
}

// datelineMask returns the VC set for a torus dateline class: the lower
// half of the VCs before the dateline, the upper half after.
//
//catnap:hotpath
//catnap:shard-phase read-only table lookup
func (c *Config) datelineMask(crossed bool) uint32 {
	half := c.VCs / 2
	lower := uint32(1)<<uint(half) - 1
	if crossed {
		return (uint32(1)<<uint(c.VCs) - 1) &^ lower
	}
	return lower
}
