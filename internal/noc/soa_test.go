package noc_test

import (
	"runtime"
	"testing"

	"github.com/catnap-noc/catnap/internal/traffic"
)

// Multicore differentials for the struct-of-arrays hot-state layout and
// the batched commit-queue apply: every combination of shard count,
// dispatch tuning (ShardAffinity, StealBatch), and gating flavor must
// reproduce the sequential incremental run bit for bit — including the
// exact tracer event order, because the per-kind bulk appends in
// applyCommits preserve each commit queue's FIFO order and queues are
// applied in ascending shard order. The tests raise GOMAXPROCS so the
// StepPool genuinely fans out even on constrained CI machines, and their
// names match the check-race filter (Sharded|Flip) so the same matrix
// runs under the race detector.

// multicoreShardCounts is the issue's multicore matrix: a single band,
// a non-dividing 3 (on 8 rows), 8 (= rows), and GOMAXPROCS, deduplicated.
func multicoreShardCounts() []int {
	counts := []int{1, 3, 8, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	out := counts[:0]
	for _, k := range counts {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// TestShardedMulticoreTuningMatrix: shard counts × {affine, non-affine}
// × steal granularities at GOMAXPROCS=8, against the sequential run.
func TestShardedMulticoreTuningMatrix(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const cycles = 2000
	seq := diffRunWith(t, diffOpts{gating: "catnap", sched: traffic.Fig12Bursts(), cycles: cycles})
	for _, k := range multicoreShardCounts() {
		for _, tc := range []struct {
			affinity   bool
			stealBatch int
		}{
			{affinity: false, stealBatch: 0},
			{affinity: true, stealBatch: 0},
			{affinity: true, stealBatch: 2},
			{affinity: false, stealBatch: 64},
		} {
			sharded := diffRunWith(t, diffOpts{gating: "catnap", shards: k,
				affinity: tc.affinity, stealBatch: tc.stealBatch,
				sched: traffic.Fig12Bursts(), cycles: cycles})
			compareFingerprints(t, "multicore/tuning", seq, sharded, true)
		}
	}
}

// TestShardedMulticoreFlavors repeats the multicore differential across
// the remaining gating flavors with affine batched dispatch.
func TestShardedMulticoreFlavors(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const cycles = 2000
	for _, gating := range []string{"baseline", "none"} {
		seq := diffRunWith(t, diffOpts{gating: gating, sched: traffic.Fig12Bursts(), cycles: cycles})
		sharded := diffRunWith(t, diffOpts{gating: gating, shards: 3,
			affinity: true, stealBatch: 4,
			sched: traffic.Fig12Bursts(), cycles: cycles})
		compareFingerprints(t, "multicore/"+gating, seq, sharded, true)
	}
}

// TestShardedMulticoreLoads covers the load extremes under affine
// dispatch: low load exercises the mostly-empty task list (idle workers
// spinning down), saturation exercises dense cross-shard traffic through
// the batched commit apply.
func TestShardedMulticoreLoads(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const cycles = 2000
	for _, load := range []float64{0.02, 0.45} {
		seq := diffRunWith(t, diffOpts{gating: "catnap", sched: traffic.Constant(load), cycles: cycles})
		sharded := diffRunWith(t, diffOpts{gating: "catnap", shards: 8,
			affinity: true, stealBatch: 2,
			sched: traffic.Constant(load), cycles: cycles})
		compareFingerprints(t, "multicore/load", seq, sharded, true)
	}
}

// TestShardedMulticoreTuningFlipMidRun rotates ShardAffinity and
// StealBatch through SetExecMode mid-run, alone and while also toggling
// the shard count: the tuning knobs must be pure dispatch policy with no
// trace on simulated state.
func TestShardedMulticoreTuningFlipMidRun(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const cycles = 2400
	base := diffRunWith(t, diffOpts{gating: "catnap", shards: 3,
		sched: traffic.Fig12Bursts(), cycles: cycles})

	tuned := diffRunWith(t, diffOpts{gating: "catnap", shards: 3,
		sched: traffic.Fig12Bursts(), cycles: cycles, flipTuning: []int{500, 1100, 1700}})
	compareFingerprints(t, "flip/tuning", base, tuned, true)

	combined := diffRunWith(t, diffOpts{gating: "catnap", shards: 3, affinity: true,
		sched: traffic.Fig12Bursts(), cycles: cycles,
		flipTuning: []int{600, 1400}, flipShards: []int{900, 1800}})
	compareFingerprints(t, "flip/tuning+shards", base, combined, true)
}

// TestShardedMulticoreParallelCombined runs shards × affinity ×
// ParallelSubnets at GOMAXPROCS=8 — the widest concurrent configuration;
// under -race this is the SoA layout's data-race assertion (cross-subnet
// transition order is nondeterministic, so compare sorted).
func TestShardedMulticoreParallelCombined(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	const cycles = 2000
	seq := diffRunWith(t, diffOpts{gating: "catnap", sched: traffic.Fig12Bursts(), cycles: cycles})
	wide := diffRunWith(t, diffOpts{gating: "catnap", shards: 8, parallel: true,
		affinity: true, stealBatch: 2,
		sched: traffic.Fig12Bursts(), cycles: cycles})
	compareFingerprints(t, "multicore/parallel+sharded", seq, wide, false)
}
