package noc

// pktQueue is a growable FIFO ring of packets. The previous slice-based
// queues (pop via q = q[1:], push via append) leaked capacity on every
// pop and re-allocated continuously under steady load; the ring reaches
// its high-water capacity once and then never allocates again.
type pktQueue struct {
	buf  []*Packet
	head int
	n    int
}

//catnap:hotpath
func (q *pktQueue) len() int { return q.n }

//catnap:hotpath
func (q *pktQueue) front() *Packet { return q.buf[q.head] }

//catnap:hotpath
func (q *pktQueue) push(p *Packet) {
	if q.n == len(q.buf) {
		//lint:ignore hotpathalloc one-time ring growth to the high-water capacity; steady state never re-enters this branch
		grown := make([]*Packet, 2*len(q.buf)+4)
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

//catnap:hotpath
func (q *pktQueue) pop() *Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil // do not retain packets past their dequeue
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

// pktStream is one packet mid-serialization into a subnet.
type pktStream struct {
	pkt     *Packet
	nextSeq int
	vc      int
}

// subnetChannel is the NI's injection channel into one subnet: the link to
// the subnet's local router input port. The channel carries one flit per
// cycle but may interleave up to VCs packets, one per local-port virtual
// channel — exactly the concurrency VCs exist to provide. The NI is the
// upstream of that input port, so it owns the credit and VC-allocation
// bookkeeping a router output port would own.
type subnetChannel struct {
	streams []pktStream
	credits []int
	busy    []bool
	rr      int
	active  int
}

// freeSlot returns an idle stream index, or -1.
//
//catnap:hotpath
func (ch *subnetChannel) freeSlot() int {
	for i := range ch.streams {
		if ch.streams[i].pkt == nil {
			return i
		}
	}
	return -1
}

// freeVC returns a free local-port VC within mask, or -1.
//
//catnap:hotpath
func (ch *subnetChannel) freeVC(mask uint32) int {
	for v := range ch.busy {
		if mask&(1<<uint(v)) == 0 || ch.busy[v] {
			continue
		}
		return v
	}
	return -1
}

// NI is the network interface shared by a node's tiles (four per node in
// the paper's concentrated mesh). It owns the bounded injection queue the
// IQOcc congestion metric reads, an unbounded source queue that absorbs
// open-loop oversubscription, one injection channel per subnet, and the
// ejection path.
type NI struct {
	net  *Network
	node int

	// sourceQ holds packets that have been created but do not yet fit in
	// the bounded injection queue. Open-loop traffic measures offered vs
	// accepted throughput through this queue; closed-loop models keep it
	// near-empty by construction (cores block on MSHRs).
	sourceQ pktQueue
	// injQ is the bounded NI buffer (capacity Config.InjQueueFlits in
	// flits). Packets at its head are assigned a subnet by the selector.
	injQ      pktQueue
	injQFlits int

	// free is the packet freelist (ExecMode.PacketRecycling): delivered packets
	// whose source is this node, awaiting reuse by NewPacket.
	free []*Packet

	channels []subnetChannel

	// Cumulative injection counters for the IR congestion metric and the
	// Figure 12(b) subnet-utilization plot.
	FlitsInjected   int64
	PacketsInjected int64
	// FlitsPerSubnet counts flits injected into each subnet at this node.
	FlitsPerSubnet []int64

	readyScratch []bool
	// activeScratch snapshots, at the top of each inject phase, which
	// channels were mid-stream; a channel that was streaming then and is
	// idle afterwards just ended its router's NI-busy condition, which
	// the incremental power path must account for lazily.
	activeScratch []bool
}

// NIs are built (and rebuilt) exclusively by NI.reset in reset.go, which
// Network.Reset drives for fresh shells and reused instances alike; there
// is deliberately no separate constructor whose initialization could
// drift from the reset path.

// enqueue admits a freshly created packet into the source queue.
//
//catnap:hotpath
func (ni *NI) enqueue(p *Packet) {
	ni.sourceQ.push(p)
}

// QueueOccupancyFlits returns the bounded injection queue's occupancy in
// flits — the IQOcc congestion metric.
//
//catnap:hotpath
func (ni *NI) QueueOccupancyFlits() int { return ni.injQFlits }

// SourceQueueLen returns the unbounded source queue length in packets
// (diagnostic; large values mean the offered load exceeds acceptance).
func (ni *NI) SourceQueueLen() int { return ni.sourceQ.len() }

// Backlogged reports whether this NI holds any packet that has not yet
// fully entered the network.
//
//catnap:hotpath
func (ni *NI) Backlogged() bool {
	if ni.sourceQ.len() > 0 || ni.injQ.len() > 0 {
		return true
	}
	for s := range ni.channels {
		if ni.channels[s].active > 0 {
			return true
		}
	}
	return false
}

// streaming reports whether the NI is mid-packet into subnet s (the
// subnet's local router must then stay awake).
//
//catnap:hotpath
//catnap:worker-safe reads one NI channel's active counter inside the worker-dispatched power phase
func (ni *NI) streaming(s int) bool { return ni.channels[s].active > 0 }

// creditReturn gives back one buffer slot of the local router's input VC.
//
//catnap:hotpath
func (ni *NI) creditReturn(subnet, vc int) {
	ni.channels[subnet].credits[vc]++
}

// injectPhase runs once per cycle: admit packets into the bounded queue,
// assign the head-of-line packet to a subnet via the selector, and stream
// one flit per subnet channel.
//
//catnap:hotpath
func (ni *NI) injectPhase(now int64) {
	cfg := ni.net.cfg

	fast := !ni.net.refScan
	if fast {
		for s := range ni.channels {
			ni.activeScratch[s] = ni.channels[s].active > 0
		}
	}

	// Admit from the source queue while flit capacity remains. Packet
	// flit counts are measured at subnet width (all subnets share one
	// width by construction). A single packet larger than the whole queue
	// is admitted alone.
	for ni.sourceQ.len() > 0 {
		p := ni.sourceQ.front()
		nf := FlitsForWidth(p.SizeBits, cfg.LinkWidthBits)
		if ni.injQFlits+nf > cfg.InjQueueFlits && ni.injQFlits > 0 {
			break
		}
		p.NumFlits = nf
		ni.injQ.push(ni.sourceQ.pop())
		ni.injQFlits += nf
		ni.net.niQueueFlits += nf
	}

	// Head-of-line subnet selection: the head packet is assigned to a
	// subnet whose channel has a free stream slot and a free local VC for
	// the packet's class.
	if ni.injQ.len() > 0 {
		head := ni.injQ.front()
		mask := cfg.vcMask(head.Class)
		ready := ni.readyScratch
		for s := range ready {
			ch := &ni.channels[s]
			ready[s] = ch.freeSlot() >= 0 && ch.freeVC(mask) >= 0
		}
		if s := ni.net.selector.Select(now, ni.node, head, ready); s >= 0 {
			if s >= cfg.Subnets || !ready[s] {
				panic("noc: selector chose an unavailable subnet")
			}
			ch := &ni.channels[s]
			slot := ch.freeSlot()
			vc := ch.freeVC(mask)
			ch.streams[slot] = pktStream{pkt: head, vc: vc}
			ch.busy[vc] = true
			ch.active++
			head.Subnet = s
			ni.injQ.pop()
		}
	}

	// Stream one flit per channel, round-robin over its active streams
	// that hold credits, provided the subnet's local router is awake.
	for s := range ni.channels {
		ch := &ni.channels[s]
		if ch.active == 0 {
			continue
		}
		sub := ni.net.subnets[s]
		if st := sub.pstate[ni.node]; st != PowerActive {
			if st == PowerAsleep {
				// NI wake-up: nothing hides the latency here; the packet
				// waits out the full T-wakeup.
				sub.routers[ni.node].wake(now, cfg.TWakeup, WakeNI)
				sub.events.WakeupSignals++
			}
			continue
		}
		n := len(ch.streams)
		for k := 0; k < n; k++ {
			i := (ch.rr + k) % n
			st := &ch.streams[i]
			if st.pkt == nil || ch.credits[st.vc] <= 0 {
				continue
			}
			ni.streamFlit(now, s, ch, st)
			ch.rr = (i + 1) % n
			break
		}
	}

	ni.net.setNIQueued(ni.node, ni.injQFlits > 0)
	if fast {
		// A channel that was streaming at the previous power phase and
		// finished this cycle ends its router's busy streak: the router
		// was busy at cycle now-1 (a packet was mid-stream then). A
		// packet selected and fully streamed within this same phase never
		// spanned a power phase and must not extend the streak — exactly
		// matching the reference path, which samples streaming state only
		// at power phases.
		for s := range ni.channels {
			if ni.activeScratch[s] && ni.channels[s].active == 0 {
				ni.net.subnets[s].routers[ni.node].noteBusyEnd(now, now-1)
			}
		}
		// A fully drained NI drops out of the inject-phase work list; the
		// next NewPacket at this node re-marks it.
		if !ni.Backlogged() {
			ni.net.niWorkBits[ni.node>>6] &^= 1 << (uint(ni.node) & 63)
		}
	}
}

// streamFlit sends the next flit of one stream into the subnet.
//
//catnap:hotpath
func (ni *NI) streamFlit(now int64, s int, ch *subnetChannel, st *pktStream) {
	cfg := ni.net.cfg
	p := st.pkt
	f := flit{pkt: p, seq: int32(st.nextSeq)}
	if f.head() {
		f.nextPort = uint8(ni.net.topo.RoutePort(ni.node, p.Dst))
		p.InjectTime = now
		ni.PacketsInjected++
		ni.net.injectedPkts++
	}
	ch.credits[st.vc]--
	sub := ni.net.subnets[s]
	sub.stageArrival(now+int64(cfg.LinkDelay), ni.node, ni.net.localPort, st.vc, f)
	sub.events.NIFlits++
	ni.FlitsInjected++
	ni.FlitsPerSubnet[s]++
	ni.net.flitsPerSubnet[s]++
	ni.injQFlits--
	ni.net.niQueueFlits--
	st.nextSeq++
	if st.nextSeq == p.NumFlits {
		ch.busy[st.vc] = false
		ch.active--
		*st = pktStream{}
	}
}
