package noc

import "fmt"

// ExecMode is the network's complete execution-mode configuration: every
// knob that changes *how* a simulation executes without changing *what* it
// computes. All combinations produce bit-identical results (the
// differential suites assert it); the knobs trade constant factors,
// parallelism, and allocation behavior.
//
// The zero value is the conservative reference-friendly default:
// sequential, unsharded, incremental stepping, no packet recycling, no
// idle fast-forward.
type ExecMode struct {
	// Parallel fans the router and power phases out across subnets on
	// the network's worker pool. Subnets share no mutable state during
	// those phases — wheels, events, and wake signals are all
	// per-subnet, and policies only read the (phase-stable) detector
	// state — so results are bit-identical to sequential execution (see
	// SetExecMode for the callback concurrency contract this imposes).
	Parallel bool
	// Shards > 0 splits every subnet's router phase into that many
	// row-band tasks with commit-queue staging (see applyShards for the
	// determinism argument); 0 keeps the phase single-threaded.
	Shards int
	// ShardAffinity dispatches shard tasks on stable per-worker index
	// ranges, so a shard's routers stay on the worker (and its cache)
	// that stepped them last cycle. Purely a locality knob: the commit
	// queues make results identical regardless of which worker runs
	// which shard. Meaningful only when Shards > 0.
	ShardAffinity bool
	// StealBatch is the claim granularity an idle worker uses when taking
	// shard tasks from a shared queue or a lagging worker's range: larger
	// batches amortize the atomic claim and keep stolen rows contiguous,
	// smaller ones balance load finer. 0 means auto (currently 1); must
	// not be negative. Meaningful only when Shards > 0.
	StealBatch int
	// ReferenceScan selects the retained O(nodes) scan-based stepping
	// path instead of the incremental O(active) one. It also disables
	// idle fast-forward: the reference path is the baseline the skipping
	// path is differenced against.
	ReferenceScan bool
	// PacketRecycling enables per-NI packet freelists: once a packet's
	// tail flit ejects and every delivery sink has run, the Packet
	// struct is returned to its source NI's freelist and reused by a
	// later NewPacket there, taking the per-injection heap allocation
	// out of the steady-state loop. Off by default because it changes
	// NewPacket's contract: with recycling on, callers and sinks must
	// not retain (or read) a *Packet after its delivery callbacks
	// return — every field, including Payload, is reused. The Simulator
	// enables it; its traffic generators and system models never retain
	// packets.
	PacketRecycling bool
	// IdleSkip arms event-driven idle fast-forward: when the network is
	// fully quiescent, TrySkipIdle jumps simulated time directly to the
	// next staged event instead of stepping empty cycles one by one.
	IdleSkip bool
}

// Validate reports whether the mode is internally consistent.
func (m ExecMode) Validate() error {
	if m.Shards < 0 {
		return fmt.Errorf("noc: ExecMode.Shards must be >= 0, got %d", m.Shards)
	}
	if m.StealBatch < 0 {
		return fmt.Errorf("noc: ExecMode.StealBatch must be >= 0 (0 = auto), got %d", m.StealBatch)
	}
	return nil
}

// SetExecMode applies a validated execution mode atomically; it is the
// single execution-configuration surface. Mid-run flips are supported:
// idle-streak representations are converted and sleep checks re-armed as
// part of the transition.
//
// Concurrency contract: with Parallel or Shards > 0, GatingPolicy and
// PowerTracer callbacks are invoked from worker goroutines, concurrently
// across subnets — every AllowSleep/WantWake call and every sleep/wake
// trace event can arrive on a different goroutine than the one calling
// Step. The built-in policies and the telemetry tracer are race-free
// under this contract (asserted by the -race suite, see
// TestShardedBuiltinPoliciesRace); custom implementations must be too.
func (n *Network) SetExecMode(m ExecMode) error {
	if err := m.Validate(); err != nil {
		return err
	}
	n.parallel = m.Parallel && len(n.subnets) > 1
	n.recycle = m.PacketRecycling
	n.idleSkip = m.IdleSkip
	n.affinity = m.ShardAffinity
	n.stealBatch = m.StealBatch
	n.applyShards(m.Shards)
	n.applyReferenceScan(m.ReferenceScan)
	return nil
}

// ExecMode returns the currently applied execution mode.
func (n *Network) ExecMode() ExecMode {
	return ExecMode{
		Parallel:        n.parallel,
		Shards:          n.shardCount,
		ShardAffinity:   n.affinity,
		StealBatch:      n.stealBatch,
		ReferenceScan:   n.refScan,
		PacketRecycling: n.recycle,
		IdleSkip:        n.idleSkip,
	}
}
