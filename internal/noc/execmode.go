package noc

import "fmt"

// ExecMode is the network's complete execution-mode configuration: every
// knob that changes *how* a simulation executes without changing *what* it
// computes. All combinations produce bit-identical results (the
// differential suites assert it); the knobs trade constant factors,
// parallelism, and allocation behavior.
//
// The zero value is the conservative reference-friendly default:
// sequential, unsharded, incremental stepping, no packet recycling, no
// idle fast-forward.
type ExecMode struct {
	// Parallel runs the router and power phases with one goroutine per
	// subnet (see SetParallel for the concurrency contract).
	Parallel bool
	// Shards > 0 splits every subnet's router phase into that many
	// row-band tasks with commit-queue staging (see SetShards); 0 keeps
	// the phase single-threaded.
	Shards int
	// ReferenceScan selects the retained O(nodes) scan-based stepping
	// path instead of the incremental O(active) one. It also disables
	// idle fast-forward: the reference path is the baseline the skipping
	// path is differenced against.
	ReferenceScan bool
	// PacketRecycling enables per-NI packet freelists; see
	// SetPacketRecycling for the packet-lifetime caveat it imposes.
	PacketRecycling bool
	// IdleSkip arms event-driven idle fast-forward: when the network is
	// fully quiescent, TrySkipIdle jumps simulated time directly to the
	// next staged event instead of stepping empty cycles one by one.
	IdleSkip bool
}

// Validate reports whether the mode is internally consistent.
func (m ExecMode) Validate() error {
	if m.Shards < 0 {
		return fmt.Errorf("noc: ExecMode.Shards must be >= 0, got %d", m.Shards)
	}
	return nil
}

// SetExecMode applies a validated execution mode atomically. It is the
// single entry point the deprecated per-knob setters (SetParallel,
// SetShards, SetReferenceScan, SetPacketRecycling) now delegate to.
// Mid-run flips are supported: idle-streak representations are converted
// and sleep checks re-armed exactly as the individual setters did.
func (n *Network) SetExecMode(m ExecMode) error {
	if err := m.Validate(); err != nil {
		return err
	}
	n.parallel = m.Parallel && len(n.subnets) > 1
	n.recycle = m.PacketRecycling
	n.idleSkip = m.IdleSkip
	n.applyShards(m.Shards)
	n.applyReferenceScan(m.ReferenceScan)
	return nil
}

// ExecMode returns the currently applied execution mode.
func (n *Network) ExecMode() ExecMode {
	return ExecMode{
		Parallel:        n.parallel,
		Shards:          n.shardCount,
		ReferenceScan:   n.refScan,
		PacketRecycling: n.recycle,
		IdleSkip:        n.idleSkip,
	}
}
