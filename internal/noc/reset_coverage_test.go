package noc

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/catnap-noc/catnap/internal/topology"
)

// Reset-completeness test: a dirtied network rewound by Reset is walked
// field by field against a freshly constructed one, through every nested
// Subnet, Router, and NI. Any field that differs must appear in the
// explicit allowlist below with the reason it is exempt; a new struct
// field that Reset forgets therefore fails here with its exact path,
// before it ever corrupts a reused simulator.

// resetAllowlist maps "Type.field" to the reason the field is allowed to
// differ between a fresh network and a reset one. Everything else must
// compare equal.
var resetAllowlist = map[string]string{
	"Network.pool":     "step-worker pool retained deliberately; holds goroutine handles, no per-run state",
	"Network.shardFn":  "pre-bound dispatch closure; reads all state through the receiver at call time",
	"Network.phaseFn":  "pre-bound dispatch closure; reads all state through the receiver at call time",
	"Network.commitFn": "pre-bound dispatch closure; reads all state through the receiver at call time",
	"Subnet.net":       "back-pointer to the owning network",
	"Router.sub":       "back-pointer to the owning subnet",
	"NI.net":           "back-pointer to the owning network",
	"NI.free":          "packet freelist retained deliberately; NewPacket overwrites every field of a recycled packet",
}

// coverageConfig is a small mesh that still exercises multiple subnets,
// regions, and VCs.
func coverageConfig() Config {
	return Config{
		Rows: 4, Cols: 4, TilesPerNode: 4, RegionDim: 2,
		Subnets: 2, LinkWidthBits: 128,
		VCs: 2, VCDepth: 4, InjQueueFlits: 16,
		RouterDelay: 2, LinkDelay: 1, CreditDelay: 1,
		TWakeup: 10, WakeupHidden: 3, TIdleDetect: 4, TBreakeven: 12,
	}
}

// covSelector is a minimal deterministic selector (internal tests cannot
// import internal/core — it depends on this package).
type covSelector struct{ next int }

func (s *covSelector) Select(now int64, node int, pkt *Packet, ready []bool) int {
	for i := range ready {
		k := (s.next + i) % len(ready)
		if ready[k] {
			s.next = (k + 1) % len(ready)
			return k
		}
	}
	return -1
}

// covGating lets every router sleep immediately and never wakes one
// proactively, so the dirty run accumulates power-gating state.
type covGating struct{}

func (covGating) AllowSleep(now int64, subnet, node int, idle int64) bool { return true }
func (covGating) WantWake(now int64, subnet, node int) bool               { return false }

// covObserver and covTracer dirty the hook slots.
type covObserver struct{}

func (covObserver) AfterCycle(now int64) {}

type covTracer struct{}

func (covTracer) RouterSlept(now int64, subnet, node int, idle int64)           {}
func (covTracer) RouterWoke(now int64, subnet, node int, c WakeCause, sl int64) {}

// dirtyNetwork builds a network and drives it hard across the mutable
// surface: packets in flight, sharded parallel stepping with recycling,
// gating transitions, observers, sinks, and a tracer installed.
func dirtyNetwork(t *testing.T) *Network {
	t.Helper()
	cfg := coverageConfig()
	net, err := New(cfg, &covSelector{})
	if err != nil {
		t.Fatal(err)
	}
	net.SetGatingPolicy(covGating{})
	net.AddObserver(covObserver{})
	net.SetPowerTracer(covTracer{})
	net.AddSink(func(now int64, p *Packet) {})
	if err := net.SetExecMode(ExecMode{Parallel: true, Shards: 2, ShardAffinity: true, PacketRecycling: true}); err != nil {
		t.Fatal(err)
	}
	nodes := cfg.Nodes()
	for c := 0; c < 400; c++ {
		if c < 300 && c%2 == 0 {
			src := (c * 5) % nodes
			net.NewPacket(src, (src+7)%nodes, 0, 256)
		}
		net.Step()
	}
	return net
}

// TestResetCoverage compares a dirtied-then-Reset network against a
// fresh one field by field and enforces the allowlist.
func TestResetCoverage(t *testing.T) {
	cfg := coverageConfig()
	fresh, err := New(cfg, &covSelector{})
	if err != nil {
		t.Fatal(err)
	}
	reused := dirtyNetwork(t)
	if err := reused.Reset(cfg, &covSelector{}); err != nil {
		t.Fatal(err)
	}

	w := &resetWalker{t: t, seen: map[[2]uintptr]bool{}, hit: map[string]bool{}}
	w.walkStruct("Network", reflect.ValueOf(fresh).Elem(), reflect.ValueOf(reused).Elem())

	// Every allowlist entry must still name a real field, so renames and
	// removals cannot leave stale exemptions behind.
	types := map[string]reflect.Type{
		"Network": reflect.TypeOf(Network{}),
		"Subnet":  reflect.TypeOf(Subnet{}),
		"Router":  reflect.TypeOf(Router{}),
		"NI":      reflect.TypeOf(NI{}),
	}
	for key, why := range resetAllowlist {
		tn, fn, ok := strings.Cut(key, ".")
		if !ok {
			t.Fatalf("malformed allowlist key %q", key)
		}
		st, ok := types[tn]
		if !ok {
			t.Errorf("allowlist key %q names unknown type %q (%s)", key, tn, why)
			continue
		}
		if _, ok := st.FieldByName(fn); !ok {
			t.Errorf("allowlist key %q names a field that no longer exists (%s)", key, why)
		}
	}
}

// resetWalker compares two object graphs, reporting the path of every
// divergence not covered by the allowlist.
type resetWalker struct {
	t    *testing.T
	seen map[[2]uintptr]bool
	hit  map[string]bool // allowlist entries actually consulted
}

// walkStruct compares the fields of the named struct type, applying the
// allowlist keyed on the type's short name.
func (w *resetWalker) walkStruct(path string, a, b reflect.Value) {
	typeName := a.Type().Name()
	for i := 0; i < a.NumField(); i++ {
		f := a.Type().Field(i)
		key := typeName + "." + f.Name
		fieldPath := path + "." + f.Name
		if _, ok := resetAllowlist[key]; ok {
			w.hit[key] = true
			continue
		}
		w.compare(fieldPath, a.Field(i), b.Field(i))
	}
}

// compare recursively compares two values of the same type, descending
// into the four reset-covered struct types via walkStruct (so their
// allowlists apply at any depth) and into everything else structurally.
func (w *resetWalker) compare(path string, a, b reflect.Value) {
	switch a.Kind() {
	case reflect.Ptr:
		if a.IsNil() != b.IsNil() {
			w.t.Errorf("%s: nil-ness differs (fresh nil=%t, reset nil=%t)", path, a.IsNil(), b.IsNil())
			return
		}
		if a.IsNil() {
			return
		}
		pair := [2]uintptr{a.Pointer(), b.Pointer()}
		if w.seen[pair] {
			return
		}
		w.seen[pair] = true
		w.compare(path, a.Elem(), b.Elem())
	case reflect.Interface:
		if a.IsNil() != b.IsNil() {
			w.t.Errorf("%s: interface nil-ness differs", path)
			return
		}
		if a.IsNil() {
			return
		}
		if a.Elem().Type() != b.Elem().Type() {
			w.t.Errorf("%s: interface dynamic types differ: %v vs %v", path, a.Elem().Type(), b.Elem().Type())
			return
		}
		w.compare(path, a.Elem(), b.Elem())
	case reflect.Struct:
		switch a.Type() {
		case reflect.TypeOf(Network{}), reflect.TypeOf(Subnet{}), reflect.TypeOf(Router{}), reflect.TypeOf(NI{}):
			w.walkStruct(path, a, b)
			return
		}
		for i := 0; i < a.NumField(); i++ {
			w.compare(path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i))
		}
	case reflect.Slice, reflect.Array:
		if a.Len() != b.Len() {
			// Capacity-retaining resets may leave a longer all-zero slice
			// where a fresh network has none (e.g. a drained queue ring);
			// that is state-equivalent.
			if allZero(a) && allZero(b) {
				return
			}
			w.t.Errorf("%s: lengths differ (fresh %d, reset %d)", path, a.Len(), b.Len())
			return
		}
		for i := 0; i < a.Len(); i++ {
			w.compare(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
	case reflect.Map:
		if a.Len() != b.Len() {
			w.t.Errorf("%s: map lengths differ", path)
			return
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			if !bv.IsValid() {
				w.t.Errorf("%s: key %v missing on reset side", path, iter.Key())
				continue
			}
			w.compare(fmt.Sprintf("%s[%v]", path, iter.Key()), iter.Value(), bv)
		}
	case reflect.Func, reflect.Chan:
		if a.IsNil() != b.IsNil() {
			w.t.Errorf("%s: %v nil-ness differs — add it to the allowlist if retention is intended", path, a.Kind())
		} else if !a.IsNil() {
			w.t.Errorf("%s: non-nil %v is not comparable — reset must clear it or the field needs an allowlist entry", path, a.Kind())
		}
	case reflect.Bool:
		if a.Bool() != b.Bool() {
			w.t.Errorf("%s: fresh %t, reset %t", path, a.Bool(), b.Bool())
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if a.Int() != b.Int() {
			w.t.Errorf("%s: fresh %d, reset %d", path, a.Int(), b.Int())
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		if a.Uint() != b.Uint() {
			w.t.Errorf("%s: fresh %d, reset %d", path, a.Uint(), b.Uint())
		}
	case reflect.Float32, reflect.Float64:
		if math.Float64bits(a.Float()) != math.Float64bits(b.Float()) {
			w.t.Errorf("%s: fresh %v, reset %v", path, a.Float(), b.Float())
		}
	case reflect.String:
		if a.String() != b.String() {
			w.t.Errorf("%s: fresh %q, reset %q", path, a.String(), b.String())
		}
	default:
		w.t.Errorf("%s: unhandled kind %v in reset coverage walk", path, a.Kind())
	}
}

// allZero reports whether every element of the slice/array is its type's
// zero value.
func allZero(v reflect.Value) bool {
	for i := 0; i < v.Len(); i++ {
		if !v.Index(i).IsZero() {
			return false
		}
	}
	return true
}

// TestResetSharesPrecompute pins the shared immutable precompute: two
// networks of the same shape must point at the same cached topology and
// feeder table, and a reset to a different shape must swap, not mutate.
func TestResetSharesPrecompute(t *testing.T) {
	cfg := coverageConfig()
	a, err := New(cfg, &covSelector{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, &covSelector{})
	if err != nil {
		t.Fatal(err)
	}
	if a.pre != b.pre {
		t.Error("same-shape networks do not share one precompute instance")
	}
	for s := 0; s < a.Subnets(); s++ {
		if &a.Subnet(s).feeder[0] != &b.pre.feeder[0] {
			t.Errorf("subnet %d feeder does not alias the shared precompute", s)
		}
	}

	big := coverageConfig()
	big.Rows, big.Cols, big.RegionDim = 8, 8, 4
	old := a.pre
	if err := a.Reset(big, &covSelector{}); err != nil {
		t.Fatal(err)
	}
	if a.pre == old {
		t.Error("reset to a different shape kept the old precompute")
	}
	if err := a.Reset(cfg, &covSelector{}); err != nil {
		t.Fatal(err)
	}
	if a.pre != old {
		t.Error("reset back to the original shape did not rehit the precompute cache")
	}
	var _ topology.Topology = a.topo
}
