package noc_test

import (
	"strings"
	"testing"

	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
)

func TestPowerStateGrid(t *testing.T) {
	cfg := testConfig(4, 4, 2, 256)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	g := net.PowerStateGrid(0)
	lines := strings.Split(g, "\n")
	if len(lines) != 4 {
		t.Fatalf("grid has %d rows, want 4:\n%s", len(lines), g)
	}
	for _, l := range lines {
		if l != "####" {
			t.Fatalf("fresh network should be all active:\n%s", g)
		}
	}
	// Gate everything, re-render.
	net.SetGatingPolicy(core.BaselineGating{})
	net.Run(50)
	g = net.PowerStateGrid(0)
	if strings.ContainsAny(g, "#~") {
		t.Fatalf("idle gated network should be all asleep:\n%s", g)
	}
	combined := net.PowerStateGrids()
	if !strings.Contains(combined, "s0") || !strings.Contains(combined, "s1") {
		t.Fatalf("combined header missing:\n%s", combined)
	}
	if lines := strings.Split(strings.TrimRight(combined, "\n"), "\n"); len(lines) != 5 {
		t.Fatalf("combined grid has %d lines, want 5:\n%s", len(lines), combined)
	}
}
