package noc_test

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// The idle fast-forward differentials pin the tentpole property of the
// event-driven skipping path: jumping a fully-quiescent network straight
// to its next event must be bit-identical to stepping every idle cycle —
// same per-cycle state stream (the probe replays its hash over skipped
// spans), same transition order, same power totals and CSC — under every
// gating flavor, execution mode, and mid-run mode flip.

// gappedBursts is a bursty schedule whose zero-load gaps are long enough
// (hundreds of cycles, versus TIdleDetect=4 and a checkWheel of 6 slots)
// for every router to sleep and the network to fall fully quiescent, so
// skipped spans cross both staging-wheel and check-wheel wraparounds many
// times. offset shifts every phase boundary, sliding where skips begin
// and end relative to the wheels' slot alignment.
func gappedBursts(offset int64) traffic.Schedule {
	return traffic.Piecewise(
		traffic.Phase{Until: 300 + offset, Load: 0.20},
		traffic.Phase{Until: 1100 + offset, Load: 0},
		traffic.Phase{Until: 1400 + offset, Load: 0.30},
		traffic.Phase{Until: 2600 + offset, Load: 0},
		traffic.Phase{Until: 2900 + offset, Load: 0.05},
		traffic.Phase{Until: 1 << 62, Load: 0},
	)
}

const skipCycles = 3600

// TestIdleSkipMatchesReferenceScan is the core skip differential: with
// idle fast-forward armed, runs over gapped traffic must reproduce the
// reference scan bit for bit for every gating flavor that admits
// skipping — and must actually skip (the trailing zero-load phase alone
// is ~700 cycles of full quiescence).
func TestIdleSkipMatchesReferenceScan(t *testing.T) {
	for _, gating := range []string{"catnap", "baseline", "none"} {
		ref := diffRunWith(t, diffOpts{gating: gating, ref: true, sched: gappedBursts(0), cycles: skipCycles})
		fast := diffRunWith(t, diffOpts{gating: gating, skip: true, sched: gappedBursts(0), cycles: skipCycles})
		compareFingerprints(t, gating+"/skip", ref, fast, true)
		if fast.skipped < 500 {
			t.Errorf("%s: skipped only %d cycles; fast-forward never engaged on ~2000 idle cycles", gating, fast.skipped)
		}
	}
}

// TestIdleSkipNonEpochedPolicyVetoes pins the safety default: a gating
// policy that does not expose PolicyEpoch is re-polled every cycle, so
// the network must never report quiescence — zero skipped cycles — while
// still matching the reference exactly.
func TestIdleSkipNonEpochedPolicyVetoes(t *testing.T) {
	ref := diffRunWith(t, diffOpts{gating: "opaque", ref: true, sched: gappedBursts(0), cycles: skipCycles})
	fast := diffRunWith(t, diffOpts{gating: "opaque", skip: true, sched: gappedBursts(0), cycles: skipCycles})
	compareFingerprints(t, "opaque/skip", ref, fast, true)
	if fast.skipped != 0 {
		t.Errorf("opaque (non-epoched) gating: skipped %d cycles, want 0 — the every-cycle polling fallback was bypassed", fast.skipped)
	}
}

// TestIdleSkipWheelWraparound slides the burst boundaries by co-prime
// offsets so skips enter and leave at varying alignments of the staging
// wheel and check wheel, including spans that wrap both wheels many
// times. Any stranded wheel entry (a pending event jumped past, to be
// misapplied a revolution later) diverges the per-cycle hash stream.
func TestIdleSkipWheelWraparound(t *testing.T) {
	for _, offset := range []int64{1, 3, 7, 11} {
		ref := diffRunWith(t, diffOpts{gating: "catnap", ref: true, sched: gappedBursts(offset), cycles: skipCycles})
		fast := diffRunWith(t, diffOpts{gating: "catnap", skip: true, sched: gappedBursts(offset), cycles: skipCycles})
		compareFingerprints(t, "wrap/skip", ref, fast, true)
		if fast.skipped == 0 {
			t.Errorf("offset %d: no cycles skipped", offset)
		}
	}
}

// TestIdleSkipDrainDeadline interleaves Network.Drain calls with gapped
// traffic on both arms: one drain lands mid-flight just after a burst
// (its deadline falls inside the following idle gap, which the skipping
// arm then fast-forwards over), and one lands on an already-quiescent
// network mid-gap. Drain itself always steps cycle by cycle; the skip
// machinery must stay aligned around it.
func TestIdleSkipDrainDeadline(t *testing.T) {
	opts := func(ref, skip bool) diffOpts {
		return diffOpts{
			gating: "catnap", ref: ref, skip: skip,
			sched: gappedBursts(0), cycles: skipCycles,
			drainAt: []int{310, 1800}, drainBudget: 600,
		}
	}
	ref := diffRunWith(t, opts(true, false))
	fast := diffRunWith(t, opts(false, true))
	compareFingerprints(t, "drain/skip", ref, fast, true)
	if fast.skipped == 0 {
		t.Error("no cycles skipped around the drain calls")
	}
}

// TestIdleSkipFlipMidRun toggles execution modes through SetExecMode
// while running: idle fast-forward off and back on, the reference scan on
// and back off (which force-disables skipping in between), and the
// sharded router phase — each flip landing in a different traffic phase.
// The flipped run must land exactly on the pure-reference trajectory.
func TestIdleSkipFlipMidRun(t *testing.T) {
	ref := diffRunWith(t, diffOpts{gating: "catnap", ref: true, sched: gappedBursts(0), cycles: skipCycles})
	fast := diffRunWith(t, diffOpts{
		gating: "catnap", skip: true, shards: 2,
		sched: gappedBursts(0), cycles: skipCycles,
		flipSkip:   []int{500, 1700},  // off mid-gap, back on mid-burst's tail
		flipRef:    []int{1200, 2700}, // reference scan through burst 2, back off mid-tail
		flipShards: []int{800, 2000},  // unshard mid-gap, reshard mid-gap
	})
	compareFingerprints(t, "flip/skip", ref, fast, true)
	if fast.skipped == 0 {
		t.Error("no cycles skipped across the mode flips")
	}
}

// TestIdleSkipParallelSharded repeats the skip differential under the
// parallel and sharded execution modes (and both together). Transition
// order across subnets is nondeterministic under parallel execution, so
// those logs are compared canonically sorted.
func TestIdleSkipParallelSharded(t *testing.T) {
	cases := []struct {
		name     string
		parallel bool
		shards   int
	}{
		{"parallel", true, 0},
		{"sharded", false, 2},
		{"parallel-sharded", true, 2},
	}
	for _, c := range cases {
		ref := diffRunWith(t, diffOpts{
			gating: "catnap", ref: true, parallel: c.parallel, shards: c.shards,
			sched: gappedBursts(0), cycles: skipCycles,
		})
		fast := diffRunWith(t, diffOpts{
			gating: "catnap", skip: true, parallel: c.parallel, shards: c.shards,
			sched: gappedBursts(0), cycles: skipCycles,
		})
		compareFingerprints(t, c.name+"/skip", ref, fast, !c.parallel)
		if fast.skipped == 0 {
			t.Errorf("%s: no cycles skipped", c.name)
		}
	}
}

// plainObserver implements only CycleObserver — no IdleSkipper — and so
// must veto fast-forward entirely.
type plainObserver struct{ cycles int64 }

func (p *plainObserver) AfterCycle(now int64) { p.cycles++ }

// TestIdleSkipObserverVeto pins the correctness-by-default contract: an
// observer without SkipIdle support blocks every skip, and disarmed or
// reference-scan networks never skip regardless of observers.
func TestIdleSkipObserverVeto(t *testing.T) {
	cfg := testConfig(4, 4, 2, 128)

	net := newNet(t, cfg)
	if err := net.SetExecMode(noc.ExecMode{IdleSkip: true}); err != nil {
		t.Fatal(err)
	}
	if k := net.TrySkipIdle(1000); k == 0 {
		t.Error("empty quiescent network with no observers refused to skip")
	}

	vetoed := newNet(t, cfg)
	if err := vetoed.SetExecMode(noc.ExecMode{IdleSkip: true}); err != nil {
		t.Fatal(err)
	}
	vetoed.AddObserver(&plainObserver{})
	if k := vetoed.TrySkipIdle(1000); k != 0 {
		t.Errorf("per-cycle observer did not veto: skipped %d cycles", k)
	}

	disarmed := newNet(t, cfg)
	if k := disarmed.TrySkipIdle(1000); k != 0 {
		t.Errorf("disarmed network skipped %d cycles", k)
	}

	refScan := newNet(t, cfg)
	if err := refScan.SetExecMode(noc.ExecMode{IdleSkip: true, ReferenceScan: true}); err != nil {
		t.Fatal(err)
	}
	if k := refScan.TrySkipIdle(1000); k != 0 {
		t.Errorf("reference-scan network skipped %d cycles", k)
	}
}

// TestExecModeRoundTrip covers the consolidated execution-mode surface:
// SetExecMode validates, applies, and reads back every field, including
// the shard-dispatch tuning knobs.
func TestExecModeRoundTrip(t *testing.T) {
	cfg := testConfig(4, 4, 2, 128)
	net := newNet(t, cfg)

	if err := net.SetExecMode(noc.ExecMode{Shards: -1}); err == nil {
		t.Error("SetExecMode accepted negative Shards")
	}
	if err := net.SetExecMode(noc.ExecMode{StealBatch: -1}); err == nil {
		t.Error("SetExecMode accepted negative StealBatch")
	}
	if err := (noc.ExecMode{Shards: -3, StealBatch: 2}).Validate(); err == nil {
		t.Error("Validate accepted negative Shards")
	}
	if err := (noc.ExecMode{StealBatch: 0}).Validate(); err != nil {
		t.Errorf("Validate rejected StealBatch=0 (auto): %v", err)
	}
	if err := (noc.ExecMode{Shards: 8, ShardAffinity: true, StealBatch: 4}).Validate(); err != nil {
		t.Errorf("Validate rejected a valid tuned mode: %v", err)
	}

	for _, want := range []noc.ExecMode{
		{Parallel: true, Shards: 2, PacketRecycling: true, IdleSkip: true},
		{Shards: 3, ShardAffinity: true, StealBatch: 2},
		{Shards: 1, StealBatch: 7, IdleSkip: true},
		{ReferenceScan: true, IdleSkip: true},
		{},
	} {
		if err := net.SetExecMode(want); err != nil {
			t.Fatalf("SetExecMode(%+v): %v", want, err)
		}
		if got := net.ExecMode(); got != want {
			t.Errorf("ExecMode round trip: got %+v, want %+v", got, want)
		}
	}

	// A failed SetExecMode must not partially apply.
	good := noc.ExecMode{Shards: 2, ShardAffinity: true}
	if err := net.SetExecMode(good); err != nil {
		t.Fatal(err)
	}
	if err := net.SetExecMode(noc.ExecMode{Shards: 4, StealBatch: -9}); err == nil {
		t.Fatal("invalid mode accepted")
	}
	if got := net.ExecMode(); got != good {
		t.Errorf("rejected mode leaked through: got %+v, want %+v", got, good)
	}
}
