package noc

// SubnetSelector chooses the subnetwork a packet at the head of a node's
// injection queue is transmitted on. Implementations include the Catnap
// strict-priority policy, round-robin, random, and the threshold-based
// alternatives of paper §3.4; they live in internal/core so the substrate
// stays policy-free.
//
// ready[s] reports whether subnet s's injection channel at this node can
// accept a new packet this cycle (it is not mid-way through streaming
// another packet). The selector returns the chosen subnet, or -1 to hold
// the packet this cycle (e.g. the only acceptable subnet is busy).
type SubnetSelector interface {
	Select(now int64, node int, pkt *Packet, ready []bool) int
}

// GatingPolicy decides when routers may sleep and when sleeping routers
// should proactively wake. The router mechanics (wake-up latency, pinned
// in-flight flits, idle counting) live in the substrate; the policy only
// answers the two questions of the paper's Figure 5 state machine.
//
// A nil GatingPolicy on the Network disables power gating entirely: all
// routers stay active forever (the non-PG baselines).
type GatingPolicy interface {
	// AllowSleep reports whether the router (subnet, node), whose buffers
	// have been continuously empty for idleCycles cycles, may switch off
	// at cycle now. The substrate has already established that no flit is
	// in flight toward the router.
	AllowSleep(now int64, subnet, node int, idleCycles int64) bool

	// WantWake reports whether the sleeping router (subnet, node) should
	// be proactively woken at cycle now (Catnap wakes subnet h when the
	// regional congestion status of subnet h−1 turns on). Baseline
	// policies return false and rely on look-ahead/NI wakeup signals.
	WantWake(now int64, subnet, node int) bool
}

// EpochedPolicy is an optional interface a GatingPolicy may implement to
// let the power phase skip steady-state routers. PolicyEpoch returns a
// counter that must change whenever any AllowSleep or WantWake answer may
// have changed; between equal epochs both answers must be pure functions
// of (subnet, node) — independent of now and idleCycles. The substrate
// then re-evaluates sleeping and sleep-blocked routers only when the
// epoch moves (plus one poll right after each sleep), instead of polling
// every router every cycle; the observable decision sequence is identical
// because the skipped calls could only have repeated the previous answer.
// Policies whose answers vary with time must not implement this; they are
// polled every cycle as before. With ParallelSubnets, PolicyEpoch is read
// concurrently from the subnet goroutines and must be safe for that
// (Catnap's detector mutates only in the sequential observer phase).
type EpochedPolicy interface {
	PolicyEpoch() uint64
}

// CycleObserver is invoked once per simulated cycle after all network
// state has settled (phase 2 of the two-phase cycle). The congestion
// detection machinery registers as an observer to sample buffer occupancy
// and latch the OR-network; the system model uses one to advance cores.
type CycleObserver interface {
	AfterCycle(now int64)
}

// WakeCause identifies what triggered a sleeping router's wake-up, for
// telemetry. The substrate has three wake mechanisms (paper §3.3): the
// look-ahead signal carried by an approaching head flit, the NI signal a
// node raises when it holds traffic for a gated local router, and the
// proactive policy wake-up (Catnap wakes subnet h when subnet h−1's
// regional congestion status turns on).
type WakeCause uint8

// Wake-up causes, in the order the substrate checks them.
const (
	// WakeLookAhead is the look-ahead wake-up: a head flit routed toward
	// the sleeping router (including the re-assert for a flit already
	// blocked behind it).
	WakeLookAhead WakeCause = iota
	// WakeNI is the network-interface wake-up: the local NI holds a
	// packet for the gated router and nothing hides the latency.
	WakeNI
	// WakePolicy is the proactive policy wake-up (GatingPolicy.WantWake).
	WakePolicy
)

// String returns the cause name used in telemetry events.
//
//catnap:hotpath
//catnap:worker-safe returns static name strings
func (c WakeCause) String() string {
	switch c {
	case WakeLookAhead:
		return "look-ahead"
	case WakeNI:
		return "ni"
	case WakePolicy:
		return "policy"
	default:
		return "invalid"
	}
}

// PowerTracer observes router power-state transitions as they happen.
// The hooks fire only on actual transitions (Active→Asleep and
// Asleep→Waking), never per cycle, and the network guards every call
// behind a nil check — an unset tracer costs one pointer compare per
// transition. With ParallelSubnets enabled the callbacks may arrive
// concurrently from different subnets' goroutines; implementations must
// be safe for that.
type PowerTracer interface {
	// RouterSlept fires when (subnet, node) gates off at cycle now after
	// idle continuously-empty cycles (the T-idle-detect trigger).
	RouterSlept(now int64, subnet, node int, idle int64)
	// RouterWoke fires when the sleeping (subnet, node) starts its wake-up
	// at cycle now, with the cause and the length of the sleep period it
	// ends.
	RouterWoke(now int64, subnet, node int, cause WakeCause, slept int64)
}

// PowerEvents accumulates the switching-activity counts the power model
// converts to dynamic energy, and the state-residency counts it converts
// to leakage. One PowerEvents is kept per subnet so the model can apply
// per-subnet width/voltage scaling.
type PowerEvents struct {
	// BufferWrites and BufferReads count flit buffer accesses.
	BufferWrites, BufferReads int64
	// XbarTraversals counts flits crossing a router crossbar.
	XbarTraversals int64
	// LinkTraversals counts flits crossing an inter-router link.
	LinkTraversals int64
	// NIFlits counts flits crossing the network interface (inject+eject).
	NIFlits int64
	// ArbiterOps counts switch-allocation grant operations.
	ArbiterOps int64
	// ActiveRouterCycles counts router-cycles spent in the active or
	// wake-up state (leakage and clock power accrue).
	ActiveRouterCycles int64
	// SleepRouterCycles counts router-cycles spent power-gated.
	SleepRouterCycles int64
	// GatingTransitions counts completed sleep periods; each costs the
	// energy equivalent of TBreakeven cycles of router leakage.
	GatingTransitions int64
	// WakeupSignals counts wake-up signal transmissions.
	WakeupSignals int64
}

// Sub subtracts other from e, turning two cumulative snapshots into a
// measurement-window delta.
func (e *PowerEvents) Sub(other *PowerEvents) {
	e.BufferWrites -= other.BufferWrites
	e.BufferReads -= other.BufferReads
	e.XbarTraversals -= other.XbarTraversals
	e.LinkTraversals -= other.LinkTraversals
	e.NIFlits -= other.NIFlits
	e.ArbiterOps -= other.ArbiterOps
	e.ActiveRouterCycles -= other.ActiveRouterCycles
	e.SleepRouterCycles -= other.SleepRouterCycles
	e.GatingTransitions -= other.GatingTransitions
	e.WakeupSignals -= other.WakeupSignals
}

// Add accumulates other into e.
//
//catnap:hotpath
func (e *PowerEvents) Add(other *PowerEvents) {
	e.BufferWrites += other.BufferWrites
	e.BufferReads += other.BufferReads
	e.XbarTraversals += other.XbarTraversals
	e.LinkTraversals += other.LinkTraversals
	e.NIFlits += other.NIFlits
	e.ArbiterOps += other.ArbiterOps
	e.ActiveRouterCycles += other.ActiveRouterCycles
	e.SleepRouterCycles += other.SleepRouterCycles
	e.GatingTransitions += other.GatingTransitions
	e.WakeupSignals += other.WakeupSignals
}
