package noc

import "fmt"

// CheckQuiescent verifies that a drained network is in its pristine
// state: every buffer empty, every credit returned, every virtual channel
// released, every staging wheel empty, and no packet unaccounted for. A
// non-nil error indicates a flow-control bug (lost flit, leaked credit,
// or stuck wormhole allocation). The test suite calls it after every
// drain; it is exported because it is equally useful to users embedding
// the simulator.
func (n *Network) CheckQuiescent() error {
	if n.inFlight != 0 {
		return fmt.Errorf("noc: %d packets still in flight", n.inFlight)
	}
	if c, i, e := n.createdPkts, n.injectedPkts, n.ejectedPkts; c != i || c != e {
		return fmt.Errorf("noc: packet conservation violated: created=%d injected=%d ejected=%d", c, i, e)
	}
	for si, s := range n.subnets {
		for w := 0; w < s.wheelSize; w++ {
			if len(s.arrivals[w]) != 0 || len(s.credits[w]) != 0 || len(s.niCredits[w]) != 0 || len(s.ejections[w]) != 0 {
				return fmt.Errorf("noc: subnet %d wheel slot %d not empty", si, w)
			}
		}
		for ni := range s.routers {
			if s.occSlots[ni] != 0 {
				return fmt.Errorf("noc: subnet %d router %d occupancy bitmask %#x not drained", si, ni, s.occSlots[ni])
			}
			r := &s.routers[ni]
			for p := range r.in {
				ip := &r.in[p]
				if ip.occupancy != 0 {
					return fmt.Errorf("noc: subnet %d router %d port %d holds %d flits", si, ni, p, ip.occupancy)
				}
				for v := range ip.vcs {
					vc := &ip.vcs[v]
					if !vc.empty() {
						return fmt.Errorf("noc: subnet %d router %d port %d vc %d not empty", si, ni, p, v)
					}
					if vc.routeSet || vc.outVC >= 0 || vc.curPkt != nil {
						return fmt.Errorf("noc: subnet %d router %d port %d vc %d wormhole state leaked", si, ni, p, v)
					}
				}
				op := &r.out[p]
				if op.credits != nil {
					for v, c := range op.credits {
						if c != int32(n.cfg.VCDepth) {
							return fmt.Errorf("noc: subnet %d router %d out %d vc %d credits=%d want %d", si, ni, p, v, c, n.cfg.VCDepth)
						}
					}
				}
				for v, b := range op.busy {
					if b {
						return fmt.Errorf("noc: subnet %d router %d out %d vc %d still allocated", si, ni, p, v)
					}
				}
			}
		}
	}
	for si, s := range n.subnets {
		for k := range s.shardQueues {
			cq := &s.shardQueues[k]
			if len(cq.arrivals)+len(cq.credits)+len(cq.niCredits)+len(cq.ejections)+
				len(cq.wakes)+len(cq.idled)+len(cq.bfm) != 0 || cq.events != (PowerEvents{}) || cq.buffered != 0 {
				return fmt.Errorf("noc: subnet %d shard %d commit queue not drained", si, k)
			}
		}
	}
	for si, s := range n.subnets {
		if msg := s.checkAggregates(); msg != "" {
			return fmt.Errorf("noc: subnet %d incremental aggregates: %s", si, msg)
		}
		if s.bufferedFlits != 0 {
			return fmt.Errorf("noc: subnet %d reports %d buffered flits while drained", si, s.bufferedFlits)
		}
		for _, w := range s.occBits {
			if w != 0 {
				return fmt.Errorf("noc: subnet %d occupied-router bitmap not empty while drained", si)
			}
		}
	}
	if n.niQueueFlits != 0 {
		return fmt.Errorf("noc: NI queue aggregate reports %d flits while drained", n.niQueueFlits)
	}
	for _, w := range n.niQBits {
		if w != 0 {
			return fmt.Errorf("noc: NI queued bitmap not empty while drained")
		}
	}
	if !n.refScan {
		for _, w := range n.niWorkBits {
			if w != 0 {
				return fmt.Errorf("noc: NI work bitmap not empty while drained")
			}
		}
	}
	for node, ni := range n.nis {
		if ni.Backlogged() {
			return fmt.Errorf("noc: NI %d still backlogged", node)
		}
		if ni.injQFlits != 0 {
			return fmt.Errorf("noc: NI %d injection queue accounting: %d flits", node, ni.injQFlits)
		}
		for s := range ni.channels {
			ch := &ni.channels[s]
			if ch.active != 0 {
				return fmt.Errorf("noc: NI %d channel %d has %d active streams", node, s, ch.active)
			}
			for v, c := range ch.credits {
				if c != n.cfg.VCDepth {
					return fmt.Errorf("noc: NI %d channel %d vc %d credits=%d want %d", node, s, v, c, n.cfg.VCDepth)
				}
				if ch.busy[v] {
					return fmt.Errorf("noc: NI %d channel %d vc %d still allocated", node, s, v)
				}
			}
		}
	}
	return nil
}
