package noc

import (
	"github.com/catnap-noc/catnap/internal/stats"
	"github.com/catnap-noc/catnap/internal/topology"
)

// PowerState is the power-gating state of a router and its associated
// links (paper Figure 5).
type PowerState uint8

// Router power states. A router transitions Active→Asleep in one cycle
// when the gating policy permits, and Asleep→Waking→Active over the
// wake-up delay while the local voltage rail recharges.
const (
	PowerActive PowerState = iota
	PowerAsleep
	PowerWaking
)

// String returns the state name.
func (s PowerState) String() string {
	switch s {
	case PowerActive:
		return "active"
	case PowerAsleep:
		return "asleep"
	case PowerWaking:
		return "waking"
	default:
		return "invalid"
	}
}

// vcState is one virtual-channel FIFO on an input port, together with the
// wormhole allocation state of the packet currently draining through it.
// The FIFO may hold flits of more than one packet back to back (a new
// packet's head can be buffered behind the previous packet's tail), but
// route/VC allocation always describes the packet at the front.
type vcState struct {
	q     []flit // ring buffer, len == VCDepth
	head  int
	count int

	// Wormhole state for the front packet. Persists from the head flit's
	// allocation until the tail flit traverses the switch, even across
	// cycles where the FIFO is momentarily empty (body flits in flight).
	curPkt   *Packet
	outPort  int
	outVC    int8
	routeSet bool
	// crossed snapshots the head flit's dateline bits when the route is
	// latched (torus mode only).
	crossed uint8
}

func (v *vcState) empty() bool { return v.count == 0 }

func (v *vcState) front() *flit { return &v.q[v.head] }

func (v *vcState) push(f flit) {
	if v.count == len(v.q) {
		panic("noc: VC buffer overflow (credit accounting bug)")
	}
	v.q[(v.head+v.count)%len(v.q)] = f
	v.count++
}

func (v *vcState) pop() flit {
	f := v.q[v.head]
	v.q[v.head].pkt = nil // do not retain the packet past its dequeue
	v.head = (v.head + 1) % len(v.q)
	v.count--
	return f
}

// inputPort is one of a router's five input ports.
type inputPort struct {
	vcs []vcState
	// occupancy is the total buffered flits across the port's VCs; the BFM
	// and BFA congestion metrics read it every cycle, so it is maintained
	// incrementally.
	occupancy int
}

// outputPort tracks downstream buffer credits and downstream virtual
// channel ownership for one of a router's output ports.
type outputPort struct {
	// downstream is the node id of the next router, or -1 for the local
	// (ejection) port and for mesh-edge ports with no link.
	downstream int
	// downInPort is the input port index at the downstream router this
	// link feeds.
	downInPort int
	// credits[v] is the free-slot count of downstream VC v. Nil for the
	// Local port, whose ejection sink is not credit-limited (ejection
	// bandwidth is limited structurally to one crossbar grant per cycle).
	credits []int
	// busy[v] marks downstream VC v as allocated to an in-flight packet
	// (wormhole: held from head allocation to tail traversal).
	busy []bool
	// rr is the round-robin pointer for switch allocation fairness.
	rr int
}

// Router is one input-buffered virtual-channel router in one subnet,
// implementing a two-stage speculative pipeline with look-ahead routing.
type Router struct {
	sub  *Subnet
	node int

	in  []inputPort
	out []outputPort

	// Power gating state.
	state  PowerState
	wakeAt int64
	// sleptAt is the cycle the current/last sleep period began (telemetry
	// reports the period length on wake).
	sleptAt int64
	// pinnedUntil is the latest cycle at which an in-flight flit is
	// scheduled to arrive; the router may not sleep before then, which
	// guarantees no flit is ever sent to (or stranded in) a gated router.
	pinnedUntil int64
	// emptySince is the first cycle of the current continuous
	// all-buffers-empty streak (meaningless while occupied).
	emptySince int64
	csc        *stats.CSC

	// Congestion-metric instrumentation (cumulative; readers take deltas).
	blockedFlitCycles int64 // eligible-but-ungranted flit cycles
	grantedFlits      int64 // flits that won switch allocation

	// Per-cycle scratch: which input ports already granted a flit this
	// cycle (one buffer read port per input port).
	grantedInput []bool
	vaRR         int
}

// init wires the router into its subnet at the given node.
func (r *Router) init(sub *Subnet, node int) {
	cfg := sub.net.cfg
	topo := sub.net.topo
	radix := topo.Radix()
	r.sub = sub
	r.node = node
	r.csc = stats.NewCSC(int64(cfg.TBreakeven))
	r.in = make([]inputPort, radix)
	r.out = make([]outputPort, radix)
	r.grantedInput = make([]bool, radix)
	local := radix - 1
	for p := 0; p < radix; p++ {
		ip := &r.in[p]
		ip.vcs = make([]vcState, cfg.VCs)
		for v := range ip.vcs {
			ip.vcs[v].q = make([]flit, cfg.VCDepth)
			ip.vcs[v].outVC = -1
		}
		op := &r.out[p]
		op.downstream = -1
		if p != local {
			if peer, peerPort, ok := topo.Link(node, p); ok {
				op.downstream = peer
				op.downInPort = peerPort
				op.credits = make([]int, cfg.VCs)
				for v := range op.credits {
					op.credits[v] = cfg.VCDepth
				}
				op.busy = make([]bool, cfg.VCs)
			}
		} else {
			op.busy = make([]bool, cfg.VCs)
		}
	}
	r.state = PowerActive
	r.emptySince = 0
}

// State returns the router's power state.
func (r *Router) State() PowerState { return r.state }

// CSC returns the router's compensated-sleep-cycle tracker.
func (r *Router) CSC() *stats.CSC { return r.csc }

// PortOccupancy returns the buffered flit count of input port p; the
// congestion metrics sample it every cycle.
func (r *Router) PortOccupancy(p int) int { return r.in[p].occupancy }

// MaxPortOccupancy returns the maximum buffered flit count over all input
// ports — the paper's BFM local congestion metric.
func (r *Router) MaxPortOccupancy() int {
	m := 0
	for p := range r.in {
		if r.in[p].occupancy > m {
			m = r.in[p].occupancy
		}
	}
	return m
}

// TotalOccupancy returns the total buffered flits across all ports.
func (r *Router) TotalOccupancy() int {
	t := 0
	for p := range r.in {
		t += r.in[p].occupancy
	}
	return t
}

// BlockingCounters returns the cumulative eligible-but-blocked flit cycles
// and granted flits, for the Delay congestion metric.
func (r *Router) BlockingCounters() (blockedCycles, granted int64) {
	return r.blockedFlitCycles, r.grantedFlits
}

// wake initiates (or accelerates) a wake-up completing after delay cycles.
// It is a no-op on an active router; on a waking router it keeps the
// earlier completion time. cause is reported to the network's power
// tracer, if one is installed, on the actual Asleep→Waking transition.
func (r *Router) wake(now int64, delay int, cause WakeCause) {
	switch r.state {
	case PowerActive:
		return
	case PowerAsleep:
		r.csc.Wake(now)
		r.sub.events.GatingTransitions++
		r.state = PowerWaking
		r.wakeAt = now + int64(delay)
		if t := r.sub.net.tracer; t != nil {
			t.RouterWoke(now, r.sub.index, r.node, cause, now-r.sleptAt)
		}
	case PowerWaking:
		if t := now + int64(delay); t < r.wakeAt {
			r.wakeAt = t
		}
	}
}

// sleep gates the router at cycle now after idle continuously-empty
// cycles. The caller has verified the sleep preconditions (empty buffers,
// no pinned arrivals, policy approval).
func (r *Router) sleep(now, idle int64) {
	r.state = PowerAsleep
	r.sleptAt = now
	r.csc.Sleep(now)
	if t := r.sub.net.tracer; t != nil {
		t.RouterSlept(now, r.sub.index, r.node, idle)
	}
}

// deliver writes an arriving flit into input port p, VC v. It runs in the
// arrival phase, models the buffer-write pipeline stage, and performs the
// look-ahead wake-up: a head flit's pre-computed route identifies the
// downstream router, and if that router is gated a wake-up signal is sent
// immediately, hiding WakeupHidden cycles of the wake-up delay.
func (r *Router) deliver(now int64, p, v int, f flit) {
	cfg := r.sub.net.cfg
	f.eligibleAt = now + int64(cfg.RouterDelay)
	r.in[p].vcs[v].push(f)
	r.in[p].occupancy++
	r.sub.events.BufferWrites++

	if f.head() && int(f.nextPort) != r.sub.net.localPort {
		down := r.out[f.nextPort].downstream
		if down >= 0 {
			dr := &r.sub.routers[down]
			if dr.state != PowerActive {
				dr.wake(now, cfg.TWakeup-cfg.WakeupHidden, WakeLookAhead)
				r.sub.events.WakeupSignals++
			}
		}
	}
}

// vcAllocate performs virtual-channel allocation: every input VC whose
// front packet has a route but no downstream VC tries to acquire a free
// downstream VC from the class's eligible set. It also latches the
// look-ahead route of packets newly at the front of a FIFO.
func (r *Router) vcAllocate() {
	nports := len(r.in)
	for pi := 0; pi < nports; pi++ {
		p := (pi + r.vaRR) % nports
		ip := &r.in[p]
		for v := range ip.vcs {
			vc := &ip.vcs[v]
			if vc.empty() {
				continue
			}
			f := vc.front()
			if f.head() && !vc.routeSet {
				vc.curPkt = f.pkt
				vc.outPort = int(f.nextPort)
				vc.outVC = -1
				vc.routeSet = true
				vc.crossed = f.crossed
			}
			if !vc.routeSet || vc.outVC >= 0 {
				continue
			}
			r.allocateOutVC(vc)
		}
	}
	r.vaRR++
}

// allocateOutVC tries to grant vc's front packet a downstream virtual
// channel on its output port.
func (r *Router) allocateOutVC(vc *vcState) {
	op := &r.out[vc.outPort]
	mask := r.sub.net.cfg.vcMask(vc.curPkt.Class)
	if vc.outPort == r.sub.net.localPort {
		// Ejection: the sink is not credit-limited, but the downstream-VC
		// ownership still serializes packets per ejection channel so that
		// wormhole ordering holds at the NI.
		for v := range op.busy {
			if mask&(1<<uint(v)) == 0 || op.busy[v] {
				continue
			}
			op.busy[v] = true
			vc.outVC = int8(v)
			return
		}
		return
	}
	if op.downstream < 0 {
		panic("noc: route points off the mesh edge (routing bug)")
	}
	cfg := r.sub.net.cfg
	if cfg.Torus {
		// Dateline VC classes: the downstream buffer belongs to the ring
		// of this link; a packet that has crossed (or is about to cross,
		// if this link is the dateline) uses the upper class.
		crossed := vc.crossed&dimBit(vc.outPort) != 0 || r.sub.net.topo.WrapsPort(r.node, vc.outPort)
		mask &= cfg.datelineMask(crossed)
	}
	for v := range op.busy {
		if mask&(1<<uint(v)) == 0 || op.busy[v] {
			continue
		}
		op.busy[v] = true
		vc.outVC = int8(v)
		return
	}
}

// dimBit returns the dateline bit of a mesh direction's ring (X rings
// use bit 0, Y rings bit 1). Only torus configurations consult it, and
// the torus is always the radix-5 mesh port layout.
func dimBit(p int) uint8 {
	if p == int(topology.East) || p == int(topology.West) {
		return 1 << 0
	}
	return 1 << 1
}

// switchAllocate arbitrates the crossbar and traverses winning flits: per
// output port, one flit is granted per cycle (round-robin over input VCs),
// subject to one read per input port, downstream credit availability, and
// the downstream router being awake. It returns the number of flits moved.
func (r *Router) switchAllocate(now int64) int {
	moved := 0
	for p := range r.grantedInput {
		r.grantedInput[p] = false
	}
	nports := len(r.in)
	local := r.sub.net.localPort
	vcs := r.sub.net.cfg.VCs
	slots := nports * vcs

	for o := 0; o < nports; o++ {
		op := &r.out[o]
		if o != local && op.downstream < 0 {
			continue
		}
		granted := false
		// Round-robin scan over all (input port, VC) slots.
		for k := 0; k < slots; k++ {
			idx := (op.rr + k) % slots
			p := idx / vcs
			v := idx % vcs
			vc := &r.in[p].vcs[v]
			if vc.empty() || !vc.routeSet || vc.outPort != o || vc.outVC < 0 {
				continue
			}
			f := vc.front()
			if f.eligibleAt > now {
				continue
			}
			if granted || r.grantedInput[p] {
				// Eligible but lost arbitration this cycle: counts toward
				// the Delay congestion metric's blocking time.
				r.blockedFlitCycles++
				continue
			}
			if o != local {
				if op.credits[vc.outVC] <= 0 {
					r.blockedFlitCycles++
					continue
				}
				if dr := &r.sub.routers[op.downstream]; dr.state != PowerActive {
					// The downstream router went to sleep after this
					// flit's delivery-time wakeup (or was never signalled
					// because it was awake then). A blocked flit keeps the
					// wakeup line asserted — without this, a flit parked
					// behind a router that sleeps later is stranded
					// forever in a quiet network.
					if dr.state == PowerAsleep {
						cfg := r.sub.net.cfg
						dr.wake(now, cfg.TWakeup-cfg.WakeupHidden, WakeLookAhead)
						r.sub.events.WakeupSignals++
					}
					r.blockedFlitCycles++
					continue
				}
			}
			r.traverse(now, p, v, vc, o, op)
			op.rr = (idx + 1) % slots
			granted = true
			moved++
		}
	}
	return moved
}

// traverse moves the front flit of input (p, v) through the crossbar onto
// output port o, updating credits, wormhole state, look-ahead routing and
// the staged arrival/credit wheels.
func (r *Router) traverse(now int64, p, v int, vc *vcState, o int, op *outputPort) {
	cfg := r.sub.net.cfg
	f := vc.pop()
	r.in[p].occupancy--
	r.grantedInput[p] = true
	r.grantedFlits++
	ev := r.sub.events
	ev.BufferReads++
	ev.XbarTraversals++
	ev.ArbiterOps++

	outVC := int(vc.outVC)
	if f.tail() {
		// Release the downstream VC and reset per-packet state for the
		// next packet in this FIFO.
		op.busy[outVC] = false
		vc.routeSet = false
		vc.outVC = -1
		vc.curPkt = nil
	}

	// Return a credit to whoever feeds this input port (upstream router or
	// the local NI).
	if p == r.sub.net.localPort {
		r.sub.stageNICredit(now+int64(cfg.CreditDelay), r.node, v)
	} else {
		up := r.sub.feeder[r.node][p]
		r.sub.stageCredit(now+int64(cfg.CreditDelay), up.node, up.port, v)
	}

	if o == r.sub.net.localPort {
		ev.NIFlits++
		r.sub.stageEject(now+int64(cfg.LinkDelay), r.node, f)
		return
	}

	op.credits[outVC]--
	ev.LinkTraversals++
	if f.head() {
		// Look-ahead routing: compute the output port the flit must
		// request at the downstream router and carry it in the head flit.
		f.nextPort = uint8(r.sub.net.topo.LookAheadPort(op.downstream, f.pkt.Dst))
		if cfg.Torus && r.sub.net.topo.WrapsPort(r.node, o) {
			f.crossed |= dimBit(o)
		}
	}
	arriveAt := now + int64(cfg.LinkDelay)
	dr := &r.sub.routers[op.downstream]
	if arriveAt > dr.pinnedUntil {
		dr.pinnedUntil = arriveAt
	}
	r.sub.stageArrival(arriveAt, op.downstream, op.downInPort, outVC, f)
}

// powerUpdate runs at the end of each cycle: it advances wake-ups, resets
// or extends the idle streak, and consults the gating policy for sleep and
// proactive-wake decisions. It also accrues state-residency counts for the
// power model.
func (r *Router) powerUpdate(now int64) {
	cfg := r.sub.net.cfg
	pol := r.sub.net.gating
	ev := r.sub.events

	switch r.state {
	case PowerWaking:
		ev.ActiveRouterCycles++ // rail charging draws power
		if now >= r.wakeAt {
			r.state = PowerActive
			r.emptySince = now + 1
		}
		return
	case PowerAsleep:
		ev.SleepRouterCycles++
		if pol != nil && pol.WantWake(now, r.sub.index, r.node) {
			r.wake(now, cfg.TWakeup, WakePolicy)
		}
		return
	}

	ev.ActiveRouterCycles++
	if r.TotalOccupancy() > 0 || r.pinnedUntil > now || r.sub.net.niStreaming(r.sub.index, r.node) {
		r.emptySince = now + 1
		return
	}
	if pol == nil {
		return
	}
	idle := now - r.emptySince + 1
	if idle >= int64(cfg.TIdleDetect) && pol.AllowSleep(now, r.sub.index, r.node, idle) {
		r.sleep(now, idle)
	}
}
