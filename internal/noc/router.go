package noc

import (
	"math/bits"

	"github.com/catnap-noc/catnap/internal/stats"
	"github.com/catnap-noc/catnap/internal/topology"
)

// PowerState is the power-gating state of a router and its associated
// links (paper Figure 5).
type PowerState uint8

// Router power states. A router transitions Active→Asleep in one cycle
// when the gating policy permits, and Asleep→Waking→Active over the
// wake-up delay while the local voltage rail recharges.
const (
	PowerActive PowerState = iota
	PowerAsleep
	PowerWaking
)

// String returns the state name.
func (s PowerState) String() string {
	switch s {
	case PowerActive:
		return "active"
	case PowerAsleep:
		return "asleep"
	case PowerWaking:
		return "waking"
	default:
		return "invalid"
	}
}

// vcState is one virtual-channel FIFO on an input port, together with the
// wormhole allocation state of the packet currently draining through it.
// The FIFO may hold flits of more than one packet back to back (a new
// packet's head can be buffered behind the previous packet's tail), but
// route/VC allocation always describes the packet at the front.
type vcState struct {
	q     []flit // ring buffer, len == VCDepth
	head  int
	count int

	// Wormhole state for the front packet. Persists from the head flit's
	// allocation until the tail flit traverses the switch, even across
	// cycles where the FIFO is momentarily empty (body flits in flight).
	curPkt   *Packet
	outPort  int
	outVC    int8
	routeSet bool
	// crossed snapshots the head flit's dateline bits when the route is
	// latched (torus mode only).
	crossed uint8
}

//catnap:hotpath
//catnap:shard-phase reads own VC state
func (v *vcState) empty() bool { return v.count == 0 }

//catnap:hotpath
//catnap:shard-phase reads own VC state
func (v *vcState) front() *flit { return &v.q[v.head] }

//catnap:hotpath
func (v *vcState) push(f flit) {
	if v.count == len(v.q) {
		panic("noc: VC buffer overflow (credit accounting bug)")
	}
	v.q[(v.head+v.count)%len(v.q)] = f
	v.count++
}

//catnap:hotpath
//catnap:shard-phase mutates only the owning router's VC ring
func (v *vcState) pop() flit {
	f := v.q[v.head]
	// Zero the whole slot, not just the packet pointer: dequeued packets
	// must not be retained, and keeping drained slots pristine lets a
	// same-shape reset sweep only the live ring spans instead of
	// bulk-clearing the subnet's entire flit pool.
	v.q[v.head] = flit{}
	v.head = (v.head + 1) % len(v.q)
	v.count--
	return f
}

// inputPort is one of a router's five input ports.
type inputPort struct {
	vcs []vcState
	// occupancy is the total buffered flits across the port's VCs; the BFM
	// and BFA congestion metrics read it every cycle, so it is maintained
	// incrementally.
	occupancy int
}

// outputPort tracks downstream buffer credits and downstream virtual
// channel ownership for one of a router's output ports.
type outputPort struct {
	// downstream is the node id of the next router, or -1 for the local
	// (ejection) port and for mesh-edge ports with no link.
	downstream int
	// downInPort is the input port index at the downstream router this
	// link feeds.
	downInPort int
	// credits[v] is the free-slot count of downstream VC v — a subslice
	// of the subnet's flat outCredits array, so the deliver phase can
	// drain credit returns without loading any Router struct. Nil for the
	// Local port, whose ejection sink is not credit-limited (ejection
	// bandwidth is limited structurally to one crossbar grant per cycle).
	credits []int32
	// busy[v] marks downstream VC v as allocated to an in-flight packet
	// (wormhole: held from head allocation to tail traversal).
	busy []bool
	// rr is the round-robin pointer for switch allocation fairness.
	rr int
}

// Router is one input-buffered virtual-channel router in one subnet,
// implementing a two-stage speculative pipeline with look-ahead routing.
type Router struct {
	sub  *Subnet
	node int

	// in/out/grantedInput are subslices of the subnet's contiguous
	// backing pools (inPool/outPool/grantPool): one allocation per
	// subnet per kind, and a shard's routers sit on adjacent cache
	// lines. See the struct-of-arrays layout notes on Subnet.
	in  []inputPort
	out []outputPort

	// Power gating state. The state itself lives in Subnet.pstate (flat,
	// indexed by node) so phase loops and downstream-awake checks never
	// load a Router struct for it; read it via State() or sub.pstate.
	wakeAt int64
	// sleptAt is the cycle the current/last sleep period began (telemetry
	// reports the period length on wake).
	sleptAt int64
	// The latest in-flight arrival cycle (may not sleep before it) lives
	// in Subnet.pinnedUntil[node]; the lazy last-busy cycle in
	// Subnet.lastBusy[node].
	//
	// emptySince is the first cycle of the current continuous
	// all-buffers-empty streak (meaningless while occupied). Only the
	// reference scan path maintains it per cycle; the incremental path
	// derives the same idle count from Subnet.lastBusy.
	emptySince int64
	// checkAt is the cycle of the currently scheduled sleep-eligibility
	// check (-1 none). Stale check-wheel entries are skipped by
	// comparing against it, so rescheduling is a single overwrite.
	checkAt int64
	csc     *stats.CSC

	// Incrementally maintained occupancy aggregates: totalOcc mirrors
	// the sum of in[p].occupancy and maxPortOcc its maximum, updated at
	// deliver/traverse so the per-cycle hot paths never rescan ports.
	totalOcc   int
	maxPortOcc int
	// occ points at this router's word in Subnet.occSlots: the non-empty
	// (input port, VC) slot bitmask, bit p*VCs+v. Maintained at deliver
	// (push) and traverse (pop); the allocation stages consult it on the
	// incremental path so empty slots cost one shift instead of a
	// VC-state load. Usable only when every slot fits in the word
	// (slotMask); larger radices fall back to the full scan. Writing
	// through the router's own pointer keeps the sharded router phase's
	// staging discipline visible to the linter.
	occ      *uint64
	slotMask bool

	// Congestion-metric instrumentation (cumulative; readers take deltas).
	blockedFlitCycles int64 // eligible-but-ungranted flit cycles
	grantedFlits      int64 // flits that won switch allocation

	// Per-cycle scratch: which input ports already granted a flit this
	// cycle (one buffer read port per input port).
	grantedInput []bool
	vaRR         int

	// cq is this router's shard commit queue when sharding is configured
	// (nil otherwise). Switch allocation stages cross-router effects into
	// it while the subnet is in its concurrent router phase (sub.staging).
	cq *commitQueue
}

// wire builds the router's shape-pure state: the slice views carved out
// of the subnet's contiguous pools (allocated once per shape in
// Subnet.reset) and the link-derived port constants. Everything wire
// writes is a pure function of the subnet's wireShape, so Subnet.reset
// re-runs it only when the shape changes; rearm handles the run-state
// values on every reset. wire serves fresh construction and shape-changing
// reset alike: the caller hands it a zeroed Router (optionally carrying a
// retained CSC tracker) over freshly zeroed pools.
//
//catnap:reset-covered Subnet.reset zeroes the router and re-runs wire+rearm; same-shape resets re-run rearm over the retained views
func (r *Router) wire(sub *Subnet, node int) {
	cfg := sub.net.cfg
	topo := sub.net.topo
	radix := sub.radix
	r.sub = sub
	r.node = node
	pb := node * radix
	r.in = sub.inPool[pb : pb+radix : pb+radix]
	r.out = sub.outPool[pb : pb+radix : pb+radix]
	r.grantedInput = sub.grantPool[pb : pb+radix : pb+radix]
	r.occ = &sub.occSlots[node]
	r.slotMask = radix*cfg.VCs <= 64
	local := radix - 1
	for p := 0; p < radix; p++ {
		ip := &r.in[p]
		vb := (pb + p) * cfg.VCs
		ip.vcs = sub.vcPool[vb : vb+cfg.VCs : vb+cfg.VCs]
		for v := range ip.vcs {
			qb := (vb + v) * cfg.VCDepth
			ip.vcs[v].q = sub.flitPool[qb : qb+cfg.VCDepth : qb+cfg.VCDepth]
		}
		op := &r.out[p]
		op.downstream = -1
		if p != local {
			if peer, peerPort, ok := topo.Link(node, p); ok {
				op.downstream = peer
				op.downInPort = peerPort
				op.credits = sub.outCredits[vb : vb+cfg.VCs : vb+cfg.VCs]
				op.busy = sub.busyPool[vb : vb+cfg.VCs : vb+cfg.VCs]
			}
		} else {
			op.busy = sub.busyPool[vb : vb+cfg.VCs : vb+cfg.VCs]
		}
	}
}

// rearm rewinds the router's run state to cycle 0 through the existing
// views: per-port occupancy and round-robin cursors, downstream credit
// values, the incremental counters, and the retained CSC tracker. It runs
// on every reset — after wire on a shape change, alone when the shape is
// unchanged — and is the single place cycle-0 router values are defined.
// The flit rings, VC states, busy flags, and grant scratch it does not
// touch are swept by Subnet.reset directly through the backing pools.
func (r *Router) rearm(cfg *Config) {
	if r.csc == nil {
		r.csc = stats.NewCSC(int64(cfg.TBreakeven))
	} else {
		r.csc.Reset(int64(cfg.TBreakeven))
	}
	for p := range r.in {
		r.in[p].occupancy = 0
	}
	for p := range r.out {
		op := &r.out[p]
		op.rr = 0
		for v := range op.credits {
			op.credits[v] = int32(cfg.VCDepth)
		}
	}
	r.wakeAt = 0
	r.sleptAt = 0
	r.totalOcc = 0
	r.maxPortOcc = 0
	r.blockedFlitCycles = 0
	r.grantedFlits = 0
	r.vaRR = 0
	r.cq = nil
	r.emptySince = 0
	r.checkAt = -1
}

// State returns the router's power state.
func (r *Router) State() PowerState { return r.sub.pstate[r.node] }

// CSC returns the router's compensated-sleep-cycle tracker.
func (r *Router) CSC() *stats.CSC { return r.csc }

// PortOccupancy returns the buffered flit count of input port p; the
// congestion metrics sample it every cycle.
func (r *Router) PortOccupancy(p int) int { return r.in[p].occupancy }

// MaxPortOccupancy returns the maximum buffered flit count over all input
// ports — the paper's BFM local congestion metric. O(1): the counter is
// maintained at deliver/traverse.
//
//catnap:hotpath
func (r *Router) MaxPortOccupancy() int { return r.maxPortOcc }

// TotalOccupancy returns the total buffered flits across all ports. O(1):
// the counter is maintained at deliver/traverse.
//
//catnap:hotpath
func (r *Router) TotalOccupancy() int { return r.totalOcc }

// MaxPortOccupancyScan recomputes MaxPortOccupancy by scanning the ports.
// It exists for the retained reference path and for consistency checks;
// the hot paths use the incremental counter.
//
//catnap:hotpath
//catnap:shard-phase reads own ports only
func (r *Router) MaxPortOccupancyScan() int {
	m := 0
	for p := range r.in {
		if r.in[p].occupancy > m {
			m = r.in[p].occupancy
		}
	}
	return m
}

// TotalOccupancyScan recomputes TotalOccupancy by scanning the ports (see
// MaxPortOccupancyScan).
//
//catnap:hotpath
//catnap:worker-safe reads own router state inside the worker-dispatched power phase
func (r *Router) TotalOccupancyScan() int {
	t := 0
	for p := range r.in {
		t += r.in[p].occupancy
	}
	return t
}

// BlockingCounters returns the cumulative eligible-but-blocked flit cycles
// and granted flits, for the Delay congestion metric.
//
//catnap:hotpath
func (r *Router) BlockingCounters() (blockedCycles, granted int64) {
	return r.blockedFlitCycles, r.grantedFlits
}

// wake initiates (or accelerates) a wake-up completing after delay cycles.
// It is a no-op on an active router; on a waking router it keeps the
// earlier completion time. cause is reported to the network's power
// tracer, if one is installed, on the actual Asleep→Waking transition.
//
//catnap:hotpath
//catnap:worker-safe reached from the parallel power/deliver phases; the tracer must accept worker-goroutine calls
func (r *Router) wake(now int64, delay int, cause WakeCause) {
	switch r.sub.pstate[r.node] {
	case PowerActive:
		return
	case PowerAsleep:
		r.csc.Wake(now)
		r.sub.events.GatingTransitions++
		r.sub.pstate[r.node] = PowerWaking
		r.sub.onWakeStart(r.node)
		r.wakeAt = now + int64(delay)
		if t := r.sub.net.tracer; t != nil {
			t.RouterWoke(now, r.sub.index, r.node, cause, now-r.sleptAt)
		}
	case PowerWaking:
		if t := now + int64(delay); t < r.wakeAt {
			r.wakeAt = t
		}
	}
}

// sleep gates the router at cycle now after idle continuously-empty
// cycles. The caller has verified the sleep preconditions (empty buffers,
// no pinned arrivals, policy approval).
//
//catnap:hotpath
//catnap:worker-safe reached from the parallel power phase; the tracer must accept worker-goroutine calls
func (r *Router) sleep(now, idle int64) {
	r.sub.pstate[r.node] = PowerAsleep
	r.sub.onSleep(r.node)
	r.checkAt = -1 // any pending check-wheel entry is now stale
	r.sleptAt = now
	r.csc.Sleep(now)
	if t := r.sub.net.tracer; t != nil {
		t.RouterSlept(now, r.sub.index, r.node, idle)
	}
}

// completeWake finishes a Waking→Active transition at cycle now. Both idle
// representations are reset (emptySince for the reference scan path,
// lastBusy for the incremental path) so a mode switch stays consistent,
// and the next sleep-eligibility check is scheduled.
//
//catnap:hotpath
//catnap:worker-safe runs inside the worker-dispatched power phase
func (r *Router) completeWake(now int64) {
	r.sub.pstate[r.node] = PowerActive
	r.sub.onWakeDone(r.node)
	r.emptySince = now + 1
	r.sub.lastBusy[r.node] = now
	r.sub.scheduleCheck(r, now)
}

// noteBusyEnd records that the router was busy at cycle busyCycle (the
// lazy lastBusy update) and schedules the sleep-eligibility check that
// this busy period's end makes due.
//
//catnap:hotpath
func (r *Router) noteBusyEnd(now, busyCycle int64) {
	if busyCycle > r.sub.lastBusy[r.node] {
		r.sub.lastBusy[r.node] = busyCycle
	}
	r.sub.scheduleCheck(r, now)
}

// deliver writes an arriving flit into input port p, VC v. It runs in the
// arrival phase, models the buffer-write pipeline stage, and performs the
// look-ahead wake-up: a head flit's pre-computed route identifies the
// downstream router, and if that router is gated a wake-up signal is sent
// immediately, hiding WakeupHidden cycles of the wake-up delay.
//
//catnap:hotpath
func (r *Router) deliver(now int64, p, v int, f flit) {
	cfg := r.sub.net.cfg
	f.eligibleAt = now + int64(cfg.RouterDelay)
	r.in[p].vcs[v].push(f)
	*r.occ |= 1 << uint(p*cfg.VCs+v) // no-op beyond 64 slots (slotMask off)
	occ := r.in[p].occupancy + 1
	r.in[p].occupancy = occ
	r.totalOcc++
	r.sub.bufferedFlits++
	if occ > r.maxPortOcc {
		r.sub.noteBFM(r.maxPortOcc, occ)
		r.maxPortOcc = occ
	}
	if r.totalOcc == 1 {
		r.sub.setOccupied(r.node)
	}
	r.sub.events.BufferWrites++

	if f.head() && int(f.nextPort) != r.sub.net.localPort {
		down := r.out[f.nextPort].downstream
		// The flat power-state read keeps the common all-active case from
		// loading the downstream Router struct at all.
		if down >= 0 && r.sub.pstate[down] != PowerActive {
			r.sub.routers[down].wake(now, cfg.TWakeup-cfg.WakeupHidden, WakeLookAhead)
			r.sub.events.WakeupSignals++
		}
	}
}

// vcAllocate performs virtual-channel allocation: every input VC whose
// front packet has a route but no downstream VC tries to acquire a free
// downstream VC from the class's eligible set. It also latches the
// look-ahead route of packets newly at the front of a FIFO.
//
//catnap:hotpath
//catnap:shard-phase touches only this router's input VCs and output-VC ownership
func (r *Router) vcAllocate() {
	nports := len(r.in)
	if r.slotMask && !r.sub.refScan {
		// Incremental path: iterate only the non-empty VCs, in the same
		// rotated-port, ascending-VC order as the scan below. vcAllocate
		// never changes slot occupancy, so the snapshot is exact.
		vcs := r.sub.net.cfg.VCs
		occ := *r.occ
		for pi := 0; pi < nports; pi++ {
			p := (pi + r.vaRR) % nports
			ip := &r.in[p]
			pm := occ >> uint(p*vcs) & (1<<uint(vcs) - 1)
			for pm != 0 {
				v := bits.TrailingZeros64(pm)
				pm &= pm - 1
				vc := &ip.vcs[v]
				f := vc.front()
				if f.head() && !vc.routeSet {
					vc.curPkt = f.pkt
					vc.outPort = int(f.nextPort)
					vc.outVC = -1
					vc.routeSet = true
					vc.crossed = f.crossed
				}
				if !vc.routeSet || vc.outVC >= 0 {
					continue
				}
				r.allocateOutVC(vc)
			}
		}
		r.vaRR++
		return
	}
	for pi := 0; pi < nports; pi++ {
		p := (pi + r.vaRR) % nports
		ip := &r.in[p]
		for v := range ip.vcs {
			vc := &ip.vcs[v]
			if vc.empty() {
				continue
			}
			f := vc.front()
			if f.head() && !vc.routeSet {
				vc.curPkt = f.pkt
				vc.outPort = int(f.nextPort)
				vc.outVC = -1
				vc.routeSet = true
				vc.crossed = f.crossed
			}
			if !vc.routeSet || vc.outVC >= 0 {
				continue
			}
			r.allocateOutVC(vc)
		}
	}
	r.vaRR++
}

// allocateOutVC tries to grant vc's front packet a downstream virtual
// channel on its output port.
//
//catnap:hotpath
//catnap:shard-phase
func (r *Router) allocateOutVC(vc *vcState) {
	op := &r.out[vc.outPort]
	mask := r.sub.net.cfg.vcMask(vc.curPkt.Class)
	if vc.outPort == r.sub.net.localPort {
		// Ejection: the sink is not credit-limited, but the downstream-VC
		// ownership still serializes packets per ejection channel so that
		// wormhole ordering holds at the NI.
		for v := range op.busy {
			if mask&(1<<uint(v)) == 0 || op.busy[v] {
				continue
			}
			op.busy[v] = true
			vc.outVC = int8(v)
			return
		}
		return
	}
	if op.downstream < 0 {
		panic("noc: route points off the mesh edge (routing bug)")
	}
	cfg := r.sub.net.cfg
	if cfg.Torus {
		// Dateline VC classes: the downstream buffer belongs to the ring
		// of this link; a packet that has crossed (or is about to cross,
		// if this link is the dateline) uses the upper class.
		crossed := vc.crossed&dimBit(vc.outPort) != 0 || r.sub.net.topo.WrapsPort(r.node, vc.outPort)
		mask &= cfg.datelineMask(crossed)
	}
	for v := range op.busy {
		if mask&(1<<uint(v)) == 0 || op.busy[v] {
			continue
		}
		op.busy[v] = true
		vc.outVC = int8(v)
		return
	}
}

// dimBit returns the dateline bit of a mesh direction's ring (X rings
// use bit 0, Y rings bit 1). Only torus configurations consult it, and
// the torus is always the radix-5 mesh port layout.
//
//catnap:hotpath
//catnap:shard-phase pure arithmetic
func dimBit(p int) uint8 {
	if p == int(topology.East) || p == int(topology.West) {
		return 1 << 0
	}
	return 1 << 1
}

// switchAllocate arbitrates the crossbar and traverses winning flits: per
// output port, one flit is granted per cycle (round-robin over input VCs),
// subject to one read per input port, downstream credit availability, and
// the downstream router being awake. It returns the number of flits moved.
//
//catnap:hotpath
//catnap:shard-phase cross-router effects route through r.cq while the subnet stages
func (r *Router) switchAllocate(now int64) int {
	moved := 0
	for p := range r.grantedInput {
		r.grantedInput[p] = false
	}
	if r.slotMask && !r.sub.refScan {
		return r.switchAllocateFast(now)
	}
	var cq *commitQueue
	if r.sub.staging {
		cq = r.cq
	}
	nports := len(r.in)
	local := r.sub.net.localPort
	vcs := r.sub.net.cfg.VCs
	slots := nports * vcs

	for o := 0; o < nports; o++ {
		op := &r.out[o]
		if o != local && op.downstream < 0 {
			continue
		}
		granted := false
		// Round-robin scan over all (input port, VC) slots.
		for k := 0; k < slots; k++ {
			idx := (op.rr + k) % slots
			p := idx / vcs
			v := idx % vcs
			vc := &r.in[p].vcs[v]
			if vc.empty() || !vc.routeSet || vc.outPort != o || vc.outVC < 0 {
				continue
			}
			f := vc.front()
			if f.eligibleAt > now {
				continue
			}
			if granted || r.grantedInput[p] {
				// Eligible but lost arbitration this cycle: counts toward
				// the Delay congestion metric's blocking time.
				r.blockedFlitCycles++
				continue
			}
			if o != local {
				if op.credits[vc.outVC] <= 0 {
					r.blockedFlitCycles++
					continue
				}
				if st := r.sub.pstate[op.downstream]; st != PowerActive {
					// The downstream router went to sleep after this
					// flit's delivery-time wakeup (or was never signalled
					// because it was awake then). A blocked flit keeps the
					// wakeup line asserted — without this, a flit parked
					// behind a router that sleeps later is stranded
					// forever in a quiet network.
					if st == PowerAsleep {
						if cq != nil {
							cq.wakes = append(cq.wakes, int32(op.downstream))
						} else {
							cfg := r.sub.net.cfg
							r.sub.routers[op.downstream].wake(now, cfg.TWakeup-cfg.WakeupHidden, WakeLookAhead)
							r.sub.events.WakeupSignals++
						}
					}
					r.blockedFlitCycles++
					continue
				}
			}
			r.traverse(now, p, v, vc, o, op, cq)
			op.rr = (idx + 1) % slots
			granted = true
			moved++
		}
	}
	return moved
}

// switchAllocateFast is the incremental-path switch allocation: identical
// decisions and counters to the scan in switchAllocate — same circular
// visit order over non-empty slots, same round-robin pointer updates,
// including the reference loop's re-read of op.rr after a grant shifts
// every later slot index — but empty slots are skipped through the
// occupancy bitmask in word-sized jumps instead of being loaded and
// tested one by one. Slots that empty mid-allocation (the granted slot,
// or a slot drained by an earlier output port's grant) keep a stale set
// bit in the snapshot and are filtered by the same live vc.empty() check
// the scan performs; bits are never set during allocation, so no
// non-empty slot can be missed. grantedInput was reset by the caller.
//
//catnap:hotpath
//catnap:shard-phase
func (r *Router) switchAllocateFast(now int64) int {
	moved := 0
	var cq *commitQueue
	if r.sub.staging {
		cq = r.cq
	}
	nports := len(r.in)
	local := r.sub.net.localPort
	cfg := r.sub.net.cfg
	vcs := cfg.VCs
	slots := nports * vcs

	for o := 0; o < nports; o++ {
		op := &r.out[o]
		if o != local && op.downstream < 0 {
			continue
		}
		occ := *r.occ
		granted := false
		base := op.rr
		for k := 0; k < slots; {
			cur := base + k
			if cur >= slots {
				cur -= slots
			}
			// Window of contiguous slot indices: up to the wrap boundary
			// and the remaining k budget.
			span := slots - k
			if l := slots - cur; l < span {
				span = l
			}
			w := occ >> uint(cur)
			if span < 64 {
				w &= 1<<uint(span) - 1
			}
			if w == 0 {
				k += span
				continue
			}
			tz := bits.TrailingZeros64(w)
			k += tz + 1
			idx := cur + tz
			p := idx / vcs
			v := idx % vcs
			vc := &r.in[p].vcs[v]
			if vc.empty() || !vc.routeSet || vc.outPort != o || vc.outVC < 0 {
				continue
			}
			f := vc.front()
			if f.eligibleAt > now {
				continue
			}
			if granted || r.grantedInput[p] {
				r.blockedFlitCycles++
				continue
			}
			if o != local {
				if op.credits[vc.outVC] <= 0 {
					r.blockedFlitCycles++
					continue
				}
				if st := r.sub.pstate[op.downstream]; st != PowerActive {
					if st == PowerAsleep {
						if cq != nil {
							cq.wakes = append(cq.wakes, int32(op.downstream))
						} else {
							r.sub.routers[op.downstream].wake(now, cfg.TWakeup-cfg.WakeupHidden, WakeLookAhead)
							r.sub.events.WakeupSignals++
						}
					}
					r.blockedFlitCycles++
					continue
				}
			}
			r.traverse(now, p, v, vc, o, op, cq)
			op.rr = (idx + 1) % slots
			granted = true
			moved++
			base = op.rr // mirrors the scan's (op.rr + k) re-read
		}
	}
	return moved
}

// traverse moves the front flit of input (p, v) through the crossbar onto
// output port o, updating credits, wormhole state, look-ahead routing and
// the staged arrival/credit wheels. During the sharded router phase cq is
// non-nil and every write that leaves the router — wheel staging, the
// downstream pin, subnet aggregates, activity counters — is buffered in
// it instead, to be replayed in order by applyCommits; all router-local
// state (buffers, credits, wormhole allocation) is still updated inline.
//
//catnap:hotpath
//catnap:shard-phase the `if cq != nil` guards below are exactly the staging discipline the linter enforces
func (r *Router) traverse(now int64, p, v int, vc *vcState, o int, op *outputPort, cq *commitQueue) {
	cfg := r.sub.net.cfg
	f := vc.pop()
	if vc.empty() {
		*r.occ &^= 1 << uint(p*cfg.VCs+v)
	}
	occ := r.in[p].occupancy - 1
	r.in[p].occupancy = occ
	r.totalOcc--
	if cq != nil {
		cq.buffered--
	} else {
		r.sub.bufferedFlits--
	}
	if occ+1 == r.maxPortOcc {
		// The decremented port may have been the sole argmax; recompute.
		if m := r.MaxPortOccupancyScan(); m != r.maxPortOcc {
			if cq != nil {
				cq.bfm = append(cq.bfm, bfmOp{from: int32(r.maxPortOcc), to: int32(m)})
			} else {
				r.sub.noteBFM(r.maxPortOcc, m)
			}
			r.maxPortOcc = m
		}
	}
	if r.totalOcc == 0 {
		// The router was occupied at powerPhase(now-1): RouterDelay >= 1
		// means this flit was delivered no later than cycle now-1, so the
		// buffers were non-empty when the previous power phase ran.
		if cq != nil {
			cq.idled = append(cq.idled, int32(r.node))
		} else {
			r.sub.clearOccupied(r.node)
			r.noteBusyEnd(now, now-1)
		}
	}
	r.grantedInput[p] = true
	r.grantedFlits++
	ev := r.sub.events
	if cq != nil {
		ev = &cq.events
	}
	ev.BufferReads++
	ev.XbarTraversals++
	ev.ArbiterOps++

	outVC := int(vc.outVC)
	if f.tail() {
		// Release the downstream VC and reset per-packet state for the
		// next packet in this FIFO.
		op.busy[outVC] = false
		vc.routeSet = false
		vc.outVC = -1
		vc.curPkt = nil
	}

	// Return a credit to whoever feeds this input port (upstream router or
	// the local NI).
	if p == r.sub.net.localPort {
		if cq != nil {
			cq.niCredits = append(cq.niCredits, niCredit{node: r.node, vc: v})
		} else {
			r.sub.stageNICredit(now+int64(cfg.CreditDelay), r.node, v)
		}
	} else {
		up := r.sub.feeder[r.node][p]
		if cq != nil {
			cq.credits = append(cq.credits, credit{node: up.node, port: up.port, vc: v})
		} else {
			r.sub.stageCredit(now+int64(cfg.CreditDelay), up.node, up.port, v)
		}
	}

	if o == r.sub.net.localPort {
		ev.NIFlits++
		if cq != nil {
			cq.ejections = append(cq.ejections, ejection{node: r.node, f: f})
		} else {
			r.sub.stageEject(now+int64(cfg.LinkDelay), r.node, f)
		}
		return
	}

	op.credits[outVC]--
	ev.LinkTraversals++
	if f.head() {
		// Look-ahead routing: compute the output port the flit must
		// request at the downstream router and carry it in the head flit.
		f.nextPort = uint8(r.sub.net.topo.LookAheadPort(op.downstream, f.pkt.Dst))
		if cfg.Torus && r.sub.net.topo.WrapsPort(r.node, o) {
			f.crossed |= dimBit(o)
		}
	}
	if cq != nil {
		// The downstream pin travels with the arrival and is applied at
		// commit time (the pinned router may live in another shard).
		cq.arrivals = append(cq.arrivals, arrival{node: op.downstream, port: op.downInPort, vc: outVC, f: f})
		return
	}
	arriveAt := now + int64(cfg.LinkDelay)
	if arriveAt > r.sub.pinnedUntil[op.downstream] {
		r.sub.pinnedUntil[op.downstream] = arriveAt
	}
	r.sub.stageArrival(arriveAt, op.downstream, op.downInPort, outVC, f)
}

// powerUpdate runs at the end of each cycle on the reference scan path:
// it advances wake-ups, resets or extends the idle streak, and consults
// the gating policy for sleep and proactive-wake decisions. It also
// accrues state-residency counts for the power model. The incremental
// path (Subnet.powerPhase) reproduces these decisions bit-identically
// without visiting steady-state routers.
//
//catnap:hotpath
//catnap:worker-safe the power phase runs on worker goroutines under ExecMode.Parallel; policy calls land there
func (r *Router) powerUpdate(now int64) {
	cfg := r.sub.net.cfg
	pol := r.sub.net.gating
	ev := r.sub.events

	switch r.sub.pstate[r.node] {
	case PowerWaking:
		ev.ActiveRouterCycles++ // rail charging draws power
		if now >= r.wakeAt {
			r.completeWake(now)
		}
		return
	case PowerAsleep:
		ev.SleepRouterCycles++
		if pol != nil && pol.WantWake(now, r.sub.index, r.node) {
			r.wake(now, cfg.TWakeup, WakePolicy)
		}
		return
	}

	ev.ActiveRouterCycles++
	if r.TotalOccupancyScan() > 0 || r.sub.pinnedUntil[r.node] > now || r.sub.net.niStreaming(r.sub.index, r.node) {
		r.emptySince = now + 1
		return
	}
	if pol == nil {
		return
	}
	idle := now - r.emptySince + 1
	if idle >= int64(cfg.TIdleDetect) && pol.AllowSleep(now, r.sub.index, r.node, idle) {
		r.sleep(now, idle)
	}
}

// powerCheck is the incremental path's equivalent of powerUpdate's
// active-state branch, run only when a scheduled check fires or a blocked
// router is re-evaluated after a policy-epoch change. blocked reports
// whether the router currently sits in the subnet's blocked set (idle long
// enough, but the policy denied sleep).
//
// Busy routers simply return: the event that ends the busy condition
// (occupancy reaching zero, the NI stream finishing, a pinned arrival
// being delivered) updates lastBusy and schedules a fresh check, so no
// decision is ever missed. idle below TIdleDetect at a live check can only
// happen after defensive rescheduling; it, too, leaves the next check in
// place.
//
//catnap:hotpath
//catnap:worker-safe see powerUpdate: AllowSleep can be called from worker goroutines
func (r *Router) powerCheck(now int64, blocked bool) {
	if r.totalOcc > 0 || r.sub.pinnedUntil[r.node] > now || r.sub.net.niStreaming(r.sub.index, r.node) {
		if blocked {
			r.sub.clearBlocked(r.node)
		}
		return
	}
	pol := r.sub.net.gating
	if pol == nil {
		return // SetGatingPolicy re-arms checks when a policy appears
	}
	idle := now - r.sub.lastBusy[r.node]
	if idle < int64(r.sub.net.cfg.TIdleDetect) {
		if blocked {
			r.sub.clearBlocked(r.node)
		}
		r.sub.scheduleCheck(r, now)
		return
	}
	if pol.AllowSleep(now, r.sub.index, r.node, idle) {
		r.sleep(now, idle)
		return
	}
	if !blocked {
		r.sub.setBlocked(r.node)
	}
}
