package noc_test

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// runGated runs the full Catnap stack for `cycles` and returns the
// observable outcome fingerprint.
func runGated(t *testing.T, parallel bool, cycles int) (int64, float64, noc.PowerEvents) {
	t.Helper()
	cfg := testConfig(8, 8, 4, 128)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
	net.AddObserver(det)
	net.SetSelector(core.NewCatnapSelector(det, cfg.Nodes()))
	net.SetGatingPolicy(core.NewCatnapGating(det))
	if err := net.SetExecMode(noc.ExecMode{Parallel: parallel}); err != nil {
		t.Fatal(err)
	}
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Fig12Bursts(), 99)
	for i := 0; i < cycles; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	_, _, ejected := net.Counts()
	return ejected, net.Latency().Mean(), net.Events()
}

// TestParallelEquivalence: parallel per-subnet execution must be
// bit-identical to sequential execution — same deliveries, latencies, and
// switching-activity counters — across a bursty run that exercises
// gating transitions.
func TestParallelEquivalence(t *testing.T) {
	e1, l1, ev1 := runGated(t, false, 3500)
	e2, l2, ev2 := runGated(t, true, 3500)
	if e1 != e2 {
		t.Errorf("ejected: sequential %d vs parallel %d", e1, e2)
	}
	if l1 != l2 {
		t.Errorf("mean latency: sequential %v vs parallel %v", l1, l2)
	}
	if ev1 != ev2 {
		t.Errorf("power events diverge:\nseq: %+v\npar: %+v", ev1, ev2)
	}
	if e1 == 0 {
		t.Fatal("no traffic delivered")
	}
}

// TestParallelRace runs the parallel path under the race detector's eye
// (meaningful with -race) with all policies active.
func TestParallelRace(t *testing.T) {
	if _, _, ev := runGated(t, true, 1500); ev.BufferWrites == 0 {
		t.Fatal("no activity")
	}
}
