package noc_test

import (
	"runtime"
	"testing"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// The sharded-stepping differentials pin this PR's tentpole property:
// the row-band sharded router phase (ExecMode.Shards) must be bit-identical to
// sequential incremental stepping — same per-cycle state hashes, same
// power-event totals and transition sequences, same latency distribution,
// CSC, and flit shares — for any shard count, including counts that do
// not divide the mesh rows (3 on 8 rows) and counts above the row count,
// across gating flavors, load regimes, and mid-run mode flips.

// shardCounts returns the shard counts the differentials cover: 1 (the
// staged machinery with a single band), 2, a non-dividing 3, 8 (= rows),
// 11 (> rows: trailing bands empty), and GOMAXPROCS (the default the
// config plumbing picks), deduplicated.
func shardCounts() []int {
	counts := []int{1, 2, 3, 8, 11, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	out := counts[:0]
	for _, k := range counts {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// TestShardedMatchesSequential is the tentpole differential: under the
// bursty schedule with full Catnap gating, every shard count must
// reproduce the sequential incremental run bit for bit — including the
// exact transition order, since the commit queues are applied in the
// sequential phase's own (shard, router, port) order.
func TestShardedMatchesSequential(t *testing.T) {
	const cycles = 3000
	seq := diffRunWith(t, diffOpts{gating: "catnap", sched: traffic.Fig12Bursts(), cycles: cycles})
	for _, k := range shardCounts() {
		sharded := diffRunWith(t, diffOpts{gating: "catnap", shards: k, sched: traffic.Fig12Bursts(), cycles: cycles})
		compareFingerprints(t, "sharded/catnap", seq, sharded, true)
	}
}

// TestShardedMatchesSequentialFlavors repeats the differential across
// the remaining gating flavors (ungated included) at a non-dividing
// shard count.
func TestShardedMatchesSequentialFlavors(t *testing.T) {
	const cycles = 2500
	for _, gating := range []string{"opaque", "baseline", "none"} {
		seq := diffRunWith(t, diffOpts{gating: gating, sched: traffic.Fig12Bursts(), cycles: cycles})
		sharded := diffRunWith(t, diffOpts{gating: gating, shards: 3, sched: traffic.Fig12Bursts(), cycles: cycles})
		compareFingerprints(t, "sharded/"+gating, seq, sharded, true)
	}
}

// TestShardedMatchesSequentialLoads covers the load extremes: the
// sleep-dominated low-load region and saturation (dense occupancy, heavy
// cross-shard traffic at every band boundary).
func TestShardedMatchesSequentialLoads(t *testing.T) {
	const cycles = 2500
	for _, load := range []float64{0.02, 0.45} {
		seq := diffRunWith(t, diffOpts{gating: "catnap", sched: traffic.Constant(load), cycles: cycles})
		for _, k := range []int{2, 3} {
			sharded := diffRunWith(t, diffOpts{gating: "catnap", shards: k, sched: traffic.Constant(load), cycles: cycles})
			compareFingerprints(t, "sharded/load", seq, sharded, true)
		}
	}
}

// TestShardedFlipMidRun toggles sharding on and off mid-run, alone and
// combined with reference-scan and Parallel flips. Any staged-state
// conversion bug (commit queues, work bitmaps, check wheels) shows up as
// a divergence right after the flip cycle.
func TestShardedFlipMidRun(t *testing.T) {
	const cycles = 2400
	base := diffRunWith(t, diffOpts{gating: "catnap", sched: traffic.Fig12Bursts(), cycles: cycles})

	flipped := diffRunWith(t, diffOpts{gating: "catnap", shards: 3,
		sched: traffic.Fig12Bursts(), cycles: cycles, flipShards: []int{700, 1500}})
	compareFingerprints(t, "flip/shards", base, flipped, true)

	// Start sharded; hand over to the reference scan mid-run (which takes
	// precedence over the still-configured sharding) and back.
	combined := diffRunWith(t, diffOpts{gating: "catnap", shards: 2,
		sched: traffic.Fig12Bursts(), cycles: cycles, flipRef: []int{600, 1400}})
	shardedAll := diffRunWith(t, diffOpts{gating: "catnap", shards: 2,
		sched: traffic.Fig12Bursts(), cycles: cycles})
	compareFingerprints(t, "flip/shards+ref", shardedAll, combined, true)

	// Parallel flips while sharded: cross-subnet transition order is
	// nondeterministic during the parallel stretch, so compare sorted.
	parFlip := diffRunWith(t, diffOpts{gating: "catnap", shards: 2,
		sched: traffic.Fig12Bursts(), cycles: cycles, flipParallel: []int{800, 1600}})
	compareFingerprints(t, "flip/shards+parallel", shardedAll, parFlip, false)
}

// TestShardedParallelCombined runs sharding and ParallelSubnets at once:
// the commit/power stage then also fans out across subnets, so built-in
// policies and tracers see calls from multiple worker goroutines (the
// -race run of this test asserts they tolerate it).
func TestShardedParallelCombined(t *testing.T) {
	const cycles = 3000
	seq := diffRunWith(t, diffOpts{gating: "catnap", sched: traffic.Fig12Bursts(), cycles: cycles})
	both := diffRunWith(t, diffOpts{gating: "catnap", shards: 3, parallel: true,
		sched: traffic.Fig12Bursts(), cycles: cycles})
	compareFingerprints(t, "sharded+parallel", seq, both, false)
}

// TestShardedBuiltinPoliciesRace exercises every built-in gating flavor
// with sharding and subnet-parallelism enabled simultaneously; under
// `go test -race` (make check-race) it is the assertion that the
// built-in policies, selector, detector, and telemetry tracer honor the
// concurrency contract documented on SetExecMode.
func TestShardedBuiltinPoliciesRace(t *testing.T) {
	const cycles = 1200
	for _, gating := range []string{"catnap", "baseline", "none"} {
		diffRunWith(t, diffOpts{gating: gating, shards: 4, parallel: true,
			sched: traffic.Constant(0.30), cycles: cycles})
	}
}

// drainResult captures everything the drain differential compares.
type drainResult struct {
	drained  bool
	inFlight int64
	now      int64
	ejected  int64
	latMean  float64
	latP99   int64
}

// shardedDrainRun loads a gated network, optionally shards it, then
// drains with the given deadline and snapshots the observable state.
func shardedDrainRun(t *testing.T, shards int, deadline int64) drainResult {
	t.Helper()
	cfg := testConfig(8, 8, 4, 128)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
	net.AddObserver(det)
	net.SetSelector(core.NewCatnapSelector(det, cfg.Nodes()))
	net.SetGatingPolicy(core.NewCatnapGating(det))
	if err := net.SetExecMode(noc.ExecMode{Shards: shards}); err != nil {
		t.Fatal(err)
	}
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.40), 7)
	for i := 0; i < 1500; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	res := drainResult{drained: net.Drain(deadline)}
	res.inFlight = net.InFlight()
	res.now = net.Now()
	_, _, res.ejected = net.Counts()
	res.latMean = net.Latency().Mean()
	res.latP99 = net.Latency().Percentile(99)
	if res.drained {
		if err := net.CheckQuiescent(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
	return res
}

// TestShardedDrain asserts Drain behaves identically under sharded
// stepping for every shard count: the deadline path (cut off mid-drain)
// leaves the same in-flight count and latency stats as sequential, and
// the full-drain path reaches quiescence at the same cycle with the same
// distribution. Includes the non-dividing count (3 on 8 rows) and a
// count above the row count (11).
func TestShardedDrain(t *testing.T) {
	for _, deadline := range []int64{40, 20000} {
		seq := shardedDrainRun(t, 0, deadline)
		if deadline == 40 && seq.drained {
			t.Fatal("deadline drain unexpectedly completed (deadline too generous to test the cutoff path)")
		}
		if deadline == 20000 && !seq.drained {
			t.Fatal("sequential full drain failed")
		}
		for _, k := range shardCounts() {
			got := shardedDrainRun(t, k, deadline)
			if got != seq {
				t.Fatalf("drain(deadline=%d) shards=%d diverged:\nseq:     %+v\nsharded: %+v", deadline, k, seq, got)
			}
		}
	}
}
