package noc_test

import (
	"math"
	"sort"
	"sync"
	"testing"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// The differential tests pin the tentpole property of the O(active)
// stepping path: the incremental work-list implementation must be
// bit-identical to the retained reference scan — same deliveries, same
// latency distribution, same power events and transition traces, same
// congestion decisions — under every gating flavor, sequentially and
// with ParallelSubnets.

// diffEvent is one power or congestion transition, as seen by tracers.
type diffEvent struct {
	cycle        int64
	kind         int8 // 0 slept, 1 woke, 2 lcs, 3 rcs
	subnet, node int
	aux          int64 // idle (slept), slept (woke), on/off (lcs, rcs)
	cause        noc.WakeCause
}

// diffTracer records transitions; a mutex guards it because parallel
// subnets may trace concurrently.
type diffTracer struct {
	mu     sync.Mutex
	events []diffEvent
}

func (t *diffTracer) RouterSlept(now int64, subnet, node int, idle int64) {
	t.mu.Lock()
	t.events = append(t.events, diffEvent{cycle: now, kind: 0, subnet: subnet, node: node, aux: idle})
	t.mu.Unlock()
}

func (t *diffTracer) RouterWoke(now int64, subnet, node int, cause noc.WakeCause, slept int64) {
	t.mu.Lock()
	t.events = append(t.events, diffEvent{cycle: now, kind: 1, subnet: subnet, node: node, aux: slept, cause: cause})
	t.mu.Unlock()
}

func (t *diffTracer) LCSChanged(now int64, subnet, node int, on bool) {
	t.mu.Lock()
	t.events = append(t.events, diffEvent{cycle: now, kind: 2, subnet: subnet, node: node, aux: b2i(on)})
	t.mu.Unlock()
}

func (t *diffTracer) RCSChanged(now int64, subnet, region int, on bool) {
	t.mu.Lock()
	t.events = append(t.events, diffEvent{cycle: now, kind: 3, subnet: subnet, node: region, aux: b2i(on)})
	t.mu.Unlock()
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// sortEvents orders a transition log canonically. Within one cycle the
// parallel subnets trace in nondeterministic interleaving (each subnet's
// own stream stays ordered), so cross-mode comparisons use the sorted
// log; sequential-vs-sequential comparisons check the raw order too.
func sortEvents(ev []diffEvent) {
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.cycle != b.cycle {
			return a.cycle < b.cycle
		}
		if a.subnet != b.subnet {
			return a.subnet < b.subnet
		}
		if a.node != b.node {
			return a.node < b.node
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.aux < b.aux
	})
}

// opaqueGating hides a policy's EpochedPolicy implementation, forcing the
// incremental power phase onto its every-cycle polling fallback.
type opaqueGating struct{ p noc.GatingPolicy }

func (o opaqueGating) AllowSleep(now int64, subnet, node int, idle int64) bool {
	return o.p.AllowSleep(now, subnet, node, idle)
}
func (o opaqueGating) WantWake(now int64, subnet, node int) bool {
	return o.p.WantWake(now, subnet, node)
}

// diffFingerprint is everything one run exposes to comparison.
type diffFingerprint struct {
	cycleHash []uint64 // rolling per-cycle hash of sampled aggregates
	events    []diffEvent
	ejected   int64
	latMean   float64
	latP50    int64
	latP99    int64
	powEvents noc.PowerEvents
	csc       int64
	share     []float64
	skipped   int64 // cycles fast-forwarded; not compared, asserted per-test
}

// diffProbe samples settled per-cycle state into a rolling hash, and (on
// the incremental arm) cross-checks every aggregate against its scan.
type diffProbe struct {
	t     *testing.T
	net   *noc.Network
	hash  uint64
	out   *[]uint64
	check bool
}

func (p *diffProbe) AfterCycle(now int64) {
	h := p.hash
	mix := func(v uint64) { h = (h ^ v) * 1099511628211 }
	for s := 0; s < p.net.Subnets(); s++ {
		sub := p.net.Subnet(s)
		a, w, z := sub.PowerStates()
		mix(uint64(a)<<32 | uint64(w)<<16 | uint64(z))
		mix(uint64(sub.BufferedFlits()))
		mix(uint64(sub.MaxBFM()))
	}
	mix(uint64(p.net.NIQueueFlits()))
	mix(uint64(p.net.InFlight()))
	p.hash = h
	*p.out = append(*p.out, h)

	if p.check && now%97 == 0 {
		p.scanCheck(now)
	}
}

// NextIdleEvent implements noc.IdleSkipper: the probe never bounds a
// skip, because SkipIdle replays its per-cycle sampling exactly.
func (p *diffProbe) NextIdleEvent(now int64) (int64, bool) { return noc.SkipHorizon, true }

// SkipIdle replays AfterCycle for every skipped cycle. The sampled
// aggregates are constant across a quiescent span, so the replay emits
// the exact hash stream the stepped reference produces — which is what
// lets the skip differentials compare per-cycle state, not just totals.
func (p *diffProbe) SkipIdle(from, to int64) {
	for c := from; c < to; c++ {
		p.AfterCycle(c)
	}
}

// scanCheck cross-checks every incremental aggregate against its O(nodes)
// scan counterpart.
func (p *diffProbe) scanCheck(now int64) {
	for s := 0; s < p.net.Subnets(); s++ {
		sub := p.net.Subnet(s)
		a, w, z := sub.PowerStates()
		as, ws, zs := sub.PowerStatesScan()
		if a != as || w != ws || z != zs {
			p.t.Fatalf("cycle %d subnet %d: PowerStates (%d,%d,%d) != scan (%d,%d,%d)", now, s, a, w, z, as, ws, zs)
		}
		if got, want := sub.BufferedFlits(), sub.BufferedFlitsScan(); got != want {
			p.t.Fatalf("cycle %d subnet %d: BufferedFlits %d != scan %d", now, s, got, want)
		}
		if got, want := sub.MaxBFM(), sub.MaxBFMScan(); got != want {
			p.t.Fatalf("cycle %d subnet %d: MaxBFM %d != scan %d", now, s, got, want)
		}
		for n := 0; n < p.net.Config().Nodes(); n++ {
			r := sub.Router(n)
			if r.TotalOccupancy() != r.TotalOccupancyScan() || r.MaxPortOccupancy() != r.MaxPortOccupancyScan() {
				p.t.Fatalf("cycle %d subnet %d router %d: occupancy counters drifted from scan", now, s, n)
			}
		}
	}
}

// diffOpts parameterizes one differential run. The flip lists toggle the
// corresponding mode at those cycles mid-run (each toggle re-applies the
// whole mode through SetExecMode): flipRef toggles the reference scan,
// flipShards toggles sharding between `shards` and off, flipParallel
// toggles ParallelSubnets, flipSkip toggles idle fast-forward. drainAt
// lists cycles at which the run calls Network.Drain with drainBudget as
// its deadline — on a quiescent network the deadline then lands inside
// what the skipping arm would fast-forward over.
type diffOpts struct {
	// net, when non-nil, runs the scenario on this network instead of
	// building a fresh one — the reset differential suite passes a
	// previously used, Reset network here to prove reuse is bit-identical.
	net          *noc.Network
	gating       string
	parallel     bool
	ref          bool
	skip         bool // arm idle fast-forward and attempt it every cycle
	shards       int  // router-phase shard count (0 = unsharded)
	affinity     bool // shard-affine dispatch (ExecMode.ShardAffinity)
	stealBatch   int  // steal granularity (ExecMode.StealBatch, 0 = auto)
	sched        traffic.Schedule
	cycles       int
	flipRef      []int
	flipShards   []int
	flipParallel []int
	flipTuning   []int // toggle ShardAffinity and rotate StealBatch mid-run
	flipSkip     []int
	drainAt      []int
	drainBudget  int64
}

// diffRun executes the full stack for cycles and fingerprints it.
// flipAt, when non-empty, toggles the stepping mode at those cycles
// (mid-run switch support).
func diffRun(t *testing.T, gating string, parallel, ref bool, sched traffic.Schedule, cycles int, flipAt ...int) diffFingerprint {
	t.Helper()
	return diffRunWith(t, diffOpts{
		gating: gating, parallel: parallel, ref: ref,
		sched: sched, cycles: cycles, flipRef: flipAt,
	})
}

func diffRunWith(t *testing.T, o diffOpts) diffFingerprint {
	t.Helper()
	net := o.net
	if net == nil {
		cfg := testConfig(8, 8, 4, 128)
		var err error
		net, err = noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := net.Config()
	tr := &diffTracer{}
	net.SetPowerTracer(tr)

	var det *congestion.Detector
	switch o.gating {
	case "catnap", "opaque":
		det = congestion.NewDetector(net, congestion.Default(congestion.BFM))
		det.SetTracer(tr)
		net.AddObserver(det)
		net.SetSelector(core.NewCatnapSelector(det, cfg.Nodes()))
		if o.gating == "catnap" {
			net.SetGatingPolicy(core.NewCatnapGating(det))
		} else {
			net.SetGatingPolicy(opaqueGating{p: core.NewCatnapGating(det)})
		}
	case "baseline":
		net.SetGatingPolicy(core.BaselineGating{})
	case "none":
	default:
		t.Fatalf("unknown gating flavor %q", o.gating)
	}

	fp := diffFingerprint{}
	noFlips := len(o.flipRef) == 0 && len(o.flipShards) == 0 &&
		len(o.flipParallel) == 0 && len(o.flipTuning) == 0 && len(o.flipSkip) == 0
	probe := &diffProbe{t: t, net: net, out: &fp.cycleHash, check: !o.ref && !o.skip && noFlips}
	net.AddObserver(probe)

	mode := noc.ExecMode{Parallel: o.parallel, Shards: o.shards,
		ShardAffinity: o.affinity, StealBatch: o.stealBatch,
		ReferenceScan: o.ref, IdleSkip: o.skip}
	apply := func() {
		if err := net.SetExecMode(mode); err != nil {
			t.Fatal(err)
		}
		if det != nil {
			det.SetReferenceScan(mode.ReferenceScan)
		}
	}
	apply()

	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, o.sched, 99)
	flipRef := append([]int(nil), o.flipRef...)
	flipShards := append([]int(nil), o.flipShards...)
	flipParallel := append([]int(nil), o.flipParallel...)
	flipTuning := append([]int(nil), o.flipTuning...)
	flipSkip := append([]int(nil), o.flipSkip...)
	drainAt := append([]int(nil), o.drainAt...)
	end := int64(o.cycles)
	for net.Now() < end {
		now := net.Now()
		if len(flipRef) > 0 && int64(flipRef[0]) <= now {
			flipRef = flipRef[1:]
			mode.ReferenceScan = !mode.ReferenceScan
			apply()
		}
		if len(flipShards) > 0 && int64(flipShards[0]) <= now {
			flipShards = flipShards[1:]
			if mode.Shards != 0 {
				mode.Shards = 0
			} else {
				mode.Shards = o.shards
			}
			apply()
		}
		if len(flipParallel) > 0 && int64(flipParallel[0]) <= now {
			flipParallel = flipParallel[1:]
			mode.Parallel = !mode.Parallel
			apply()
		}
		if len(flipTuning) > 0 && int64(flipTuning[0]) <= now {
			flipTuning = flipTuning[1:]
			mode.ShardAffinity = !mode.ShardAffinity
			mode.StealBatch = (mode.StealBatch + 3) % 7
			apply()
		}
		if len(flipSkip) > 0 && int64(flipSkip[0]) <= now {
			flipSkip = flipSkip[1:]
			mode.IdleSkip = !mode.IdleSkip
			apply()
		}
		if len(drainAt) > 0 && int64(drainAt[0]) <= now {
			drainAt = drainAt[1:]
			net.Drain(o.drainBudget)
			continue // re-read the clock: Drain steps the network itself
		}
		if mode.IdleSkip {
			// Mirror Simulator.trySkip: bound the jump by the run deadline,
			// the next pending mode flip or drain call, and the generator's
			// next injection cycle, then let the network and its observers
			// bound it further.
			target := end
			for _, f := range [][]int{flipRef, flipShards, flipParallel, flipTuning, flipSkip, drainAt} {
				if len(f) > 0 && int64(f[0]) < target {
					target = int64(f[0])
				}
			}
			if at, ok := gen.NextArrival(now); ok && at < target {
				target = at
			}
			if k := net.TrySkipIdle(target); k > 0 {
				fp.skipped += k
				continue
			}
		}
		gen.Tick(net.Now())
		net.Step()
	}

	_, _, fp.ejected = net.Counts()
	fp.latMean = net.Latency().Mean()
	fp.latP50 = net.Latency().Percentile(50)
	fp.latP99 = net.Latency().Percentile(99)
	fp.powEvents = net.Events()
	net.FlushCSC()
	fp.csc, _ = net.CompensatedSleepCycles()
	fp.share = net.SubnetFlitShare()
	fp.events = tr.events
	return fp
}

// compareFingerprints fails the test on the first divergence between a
// reference-scan run and an incremental run.
func compareFingerprints(t *testing.T, name string, ref, fast diffFingerprint, exactOrder bool) {
	t.Helper()
	if len(ref.cycleHash) != len(fast.cycleHash) {
		t.Fatalf("%s: cycle hash lengths differ", name)
	}
	for i := range ref.cycleHash {
		if ref.cycleHash[i] != fast.cycleHash[i] {
			t.Fatalf("%s: per-cycle state diverges first at cycle %d", name, i)
		}
	}
	if ref.ejected != fast.ejected || ref.ejected == 0 {
		t.Errorf("%s: ejected ref %d vs fast %d", name, ref.ejected, fast.ejected)
	}
	if ref.latMean != fast.latMean || ref.latP50 != fast.latP50 || ref.latP99 != fast.latP99 {
		t.Errorf("%s: latency distribution diverged (mean %v vs %v, p50 %d vs %d, p99 %d vs %d)",
			name, ref.latMean, fast.latMean, ref.latP50, fast.latP50, ref.latP99, fast.latP99)
	}
	if ref.powEvents != fast.powEvents {
		t.Errorf("%s: power events diverge\nref:  %+v\nfast: %+v", name, ref.powEvents, fast.powEvents)
	}
	if ref.csc != fast.csc {
		t.Errorf("%s: CSC ref %d vs fast %d", name, ref.csc, fast.csc)
	}
	for s := range ref.share {
		if math.Abs(ref.share[s]-fast.share[s]) != 0 {
			t.Errorf("%s: subnet %d flit share ref %v vs fast %v", name, s, ref.share[s], fast.share[s])
		}
	}
	if !exactOrder {
		sortEvents(ref.events)
		sortEvents(fast.events)
	}
	if len(ref.events) != len(fast.events) {
		t.Fatalf("%s: transition counts differ: ref %d vs fast %d", name, len(ref.events), len(fast.events))
	}
	for i := range ref.events {
		if ref.events[i] != fast.events[i] {
			t.Fatalf("%s: transition %d diverges: ref %+v vs fast %+v", name, i, ref.events[i], fast.events[i])
		}
	}
}

// TestIncrementalMatchesReferenceScan is the tentpole differential: for
// every gating flavor (Catnap epoched, Catnap with the epoch interface
// hidden, baseline, and no gating), the incremental O(active) path must
// reproduce the reference scan bit for bit, including the exact order of
// sleep/wake/LCS/RCS transitions.
func TestIncrementalMatchesReferenceScan(t *testing.T) {
	const cycles = 3000
	for _, gating := range []string{"catnap", "opaque", "baseline", "none"} {
		ref := diffRun(t, gating, false, true, traffic.Fig12Bursts(), cycles)
		fast := diffRun(t, gating, false, false, traffic.Fig12Bursts(), cycles)
		compareFingerprints(t, gating+"/bursty", ref, fast, true)
	}
}

// TestIncrementalMatchesReferenceScanLoads covers the load extremes: the
// sleep-dominated low-load region (long idle streaks, epoch-skipped
// polls) and a saturated run (dense occupancy, congestion churn).
func TestIncrementalMatchesReferenceScanLoads(t *testing.T) {
	const cycles = 2500
	for _, load := range []float64{0.02, 0.35} {
		ref := diffRun(t, "catnap", false, true, traffic.Constant(load), cycles)
		fast := diffRun(t, "catnap", false, false, traffic.Constant(load), cycles)
		compareFingerprints(t, "catnap/load", ref, fast, true)
	}
}

// TestIncrementalMatchesReferenceScanParallel repeats the differential
// with ParallelSubnets: the per-subnet aggregates must stay subnet-local
// (the race detector sees this test) and the results bit-identical.
// Transition order across subnets is nondeterministic under parallel
// execution, so logs are compared canonically sorted.
func TestIncrementalMatchesReferenceScanParallel(t *testing.T) {
	const cycles = 3000
	for _, gating := range []string{"catnap", "baseline"} {
		ref := diffRun(t, gating, true, true, traffic.Fig12Bursts(), cycles)
		fast := diffRun(t, gating, true, false, traffic.Fig12Bursts(), cycles)
		compareFingerprints(t, gating+"/parallel", ref, fast, false)
	}
}

// TestReferenceScanFlipMidRun switches between the two stepping modes
// mid-run: the idle-streak conversion and check re-arming must land the
// flipped run exactly on the always-incremental trajectory.
func TestReferenceScanFlipMidRun(t *testing.T) {
	const cycles = 2400
	base := diffRun(t, "catnap", false, false, traffic.Fig12Bursts(), cycles)
	flipped := diffRun(t, "catnap", false, false, traffic.Fig12Bursts(), cycles, 700, 1500)
	compareFingerprints(t, "flip", base, flipped, true)
}

// TestDrainedQuiescenceIncremental drains a gated run on the incremental
// path and checks the full quiescence invariant, which now includes the
// incremental aggregates matching their scans.
func TestDrainedQuiescenceIncremental(t *testing.T) {
	cfg := testConfig(8, 8, 4, 128)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
	net.AddObserver(det)
	net.SetSelector(core.NewCatnapSelector(det, cfg.Nodes()))
	net.SetGatingPolicy(core.NewCatnapGating(det))
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.15), 7)
	for i := 0; i < 2000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	if !net.Drain(20000) {
		t.Fatal("network failed to drain")
	}
	if err := net.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}
