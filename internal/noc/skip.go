package noc

import "math/bits"

// SkipHorizon is the "no constraint" answer for IdleSkipper.NextIdleEvent:
// far beyond any reachable cycle, but small enough that adding offsets to
// it cannot overflow int64.
const SkipHorizon = int64(1) << 62

// IdleSkipper is the optional interface a CycleObserver implements to
// participate in idle fast-forward. During a skipped span the observer's
// AfterCycle is never called; SkipIdle must patch the observer's state so
// the outcome is bit-identical to having observed every skipped cycle.
//
// An observer that does NOT implement IdleSkipper vetoes skipping
// entirely — correctness by default for per-cycle observers (system
// models, test probes) that cannot summarize a span.
type IdleSkipper interface {
	// NextIdleEvent returns the earliest cycle >= now at which the
	// observer must run normally again (its per-cycle work stops being a
	// no-op), bounding how far the network may fast-forward. Return
	// (SkipHorizon, true) for "no constraint" and ok=false to veto
	// skipping outright this cycle.
	NextIdleEvent(now int64) (next int64, ok bool)
	// SkipIdle accounts for the skipped span [from, to): the observer
	// patches whatever state its AfterCycle would have accumulated over
	// those cycles. Only called after its own NextIdleEvent (and every
	// other participant) approved the full span.
	SkipIdle(from, to int64)
}

// Quiescent reports whether the network holds no work that requires
// stepping cycles one at a time: no packet anywhere (in flight, queued,
// or buffered), no router owed a wake-up poll, and — when a gating policy
// is installed — an epoched policy whose last-observed epoch is current,
// so the power phase provably repeats its previous answers. Waking
// routers and scheduled sleep checks do not break quiescence; they bound
// the skip distance through NextEventCycle instead.
//
// The reference scan path is never quiescent: it is the baseline the
// skipping path is differenced against, and it touches every router every
// cycle by design.
//
//catnap:quiescent-only reads cross-subnet state; callable only between cycles
//catnap:hotpath attempted every cycle of Simulator.Run while skipping is armed
func (n *Network) Quiescent() bool {
	if n.refScan || n.inFlight != 0 {
		return false
	}
	if n.gating != nil {
		// A non-epoched policy is polled every cycle; a stale epoch means
		// the next power phase re-evaluates asleep/blocked routers with
		// possibly new answers. Either way, step normally.
		if n.epochFn == nil {
			return false
		}
		ep := n.epochFn()
		for _, s := range n.subnets {
			if s.lastEpoch != ep {
				return false
			}
		}
	}
	for _, s := range n.subnets {
		for _, w := range s.pollBits {
			if w != 0 {
				return false
			}
		}
	}
	return true
}

// NextEventCycle returns the earliest future cycle at which the network
// itself has scheduled work — a staged wheel event (flit arrival, credit
// return, ejection), a wake-up completion, or a live sleep-eligibility
// check — and ok=false if no such event exists. Callers must only skip a
// quiescent network up to (not past) this cycle: wheel slots carry no
// timestamps, so jumping past a pending entry would strand it for
// misapplication one wheel revolution later.
//
//catnap:quiescent-only wheel slot arithmetic assumes the clock sits between cycles
func (n *Network) NextEventCycle() (at int64, ok bool) {
	at = SkipHorizon
	for _, s := range n.subnets {
		if e := s.nextEventCycle(n.now); e < at {
			at = e
		}
	}
	return at, at < SkipHorizon
}

// nextEventCycle is NextEventCycle for one subnet.
//
//catnap:quiescent-only
func (s *Subnet) nextEventCycle(now int64) int64 {
	min := SkipHorizon
	// Staged wheels: slot i relative to slot(now) gives the due cycle.
	ws := s.wheelSize
	base := s.slot(now)
	for i := 0; i < ws; i++ {
		if len(s.arrivals[i]) == 0 && len(s.credits[i]) == 0 &&
			len(s.niCredits[i]) == 0 && len(s.ejections[i]) == 0 {
			continue
		}
		due := now + int64((i-base+ws)%ws)
		if due < min {
			min = due
		}
	}
	// Waking routers complete at wakeAt.
	for i, w := range s.wakingBits {
		for w != 0 {
			node := i<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if at := s.routers[node].wakeAt; at < min {
				if at < now {
					at = now
				}
				min = at
			}
		}
	}
	// Live sleep-eligibility checks: an entry in slot j is live iff the
	// router's checkAt still equals the slot's due cycle (stale entries
	// were superseded by a reschedule or a sleep).
	cl := len(s.checkWheel)
	cbase := s.slotCheck(now)
	for j := 0; j < cl; j++ {
		if len(s.checkWheel[j]) == 0 {
			continue
		}
		due := now + int64((j-cbase+cl)%cl)
		if due >= min {
			continue
		}
		for _, node := range s.checkWheel[j] {
			if s.routers[node].checkAt == due {
				min = due
				break
			}
		}
	}
	return min
}

// TrySkipIdle attempts to fast-forward the network from Now to target
// without executing the intervening cycles, and returns how many cycles
// it skipped (0 when skipping is off, the network is not quiescent, an
// observer vetoed, or the next event is due immediately). The skipped
// span is [Now, to) with to = min(target, NextEventCycle, every
// observer's NextIdleEvent): the cycle at `to` is then executed normally
// by the next Step. Power-state residency is bulk-accrued per subnet
// (state counts are constant across a quiescent span) and every observer
// patches its own state via SkipIdle, so the result is bit-identical to
// having stepped the span cycle by cycle.
//
//catnap:quiescent-only advances the network clock; never call mid-phase
//catnap:hotpath attempted every cycle of Simulator.Run while skipping is armed
func (n *Network) TrySkipIdle(target int64) int64 {
	if !n.idleSkip || target <= n.now || !n.Quiescent() {
		return 0
	}
	to := target
	//lint:ignore contractflow the skip machinery runs once per quiescent span, not per cycle; its cost amortises over the skipped cycles
	if ev, ok := n.NextEventCycle(); ok && ev < to {
		to = ev
	}
	for _, o := range n.obs {
		sk, ok := o.(IdleSkipper)
		if !ok {
			return 0 // per-cycle observer: correctness by veto
		}
		//lint:ignore contractflow once per quiescent span; see NextEventCycle above
		next, ok := sk.NextIdleEvent(n.now)
		if !ok {
			return 0
		}
		if next < to {
			to = next
		}
	}
	if to <= n.now {
		return 0
	}
	k := to - n.now
	for _, s := range n.subnets {
		s.events.ActiveRouterCycles += k * int64(s.stateCount[PowerActive]+s.stateCount[PowerWaking])
		s.events.SleepRouterCycles += k * int64(s.stateCount[PowerAsleep])
	}
	for _, o := range n.obs {
		//lint:ignore contractflow once per quiescent span; see NextEventCycle above
		o.(IdleSkipper).SkipIdle(n.now, to)
	}
	n.now = to
	return k
}

// IdleSkip reports whether idle fast-forward is armed (ExecMode.IdleSkip).
func (n *Network) IdleSkip() bool { return n.idleSkip }
