package noc

// Sharded router phase: the subnet-level parallelism of ExecMode.Parallel is
// structurally load-imbalanced under Catnap's strict-priority selection
// (subnet 0 carries almost all traffic), so ExecMode.Shards additionally
// partitions each subnet's router phase spatially into contiguous
// row-bands stepped concurrently. Routers only read remote state that is
// stable for the whole phase (downstream power states, credits of their
// own output ports), and every cross-router effect — link traversals
// into another router's input wheel, credit returns, look-ahead wakeup
// signals, subnet-aggregate updates — is staged in the shard's commit
// queue and applied after the barrier in ascending (shard, router, port)
// order. That order is exactly the order the sequential phase performs
// the same writes, so the staged wheels, counters, and tracer events are
// bit-identical to sequential stepping at any shard count (the
// differential suite asserts it per cycle).

// bfmOp is a staged max-port-occupancy histogram move.
type bfmOp struct {
	from, to int32
}

// commitQueue buffers one shard's cross-router side effects during the
// sharded router phase. Each queue is written by exactly one shard task
// and drained single-threaded by Subnet.applyCommits; the backing arrays
// are truncated and reused, so a warmed-up queue never allocates.
type commitQueue struct {
	// arrivals land on the staged-link wheel at now+LinkDelay and pin the
	// destination router awake until then.
	arrivals []arrival
	// credits / niCredits return at now+CreditDelay; ejections land at
	// now+LinkDelay. The delays are phase constants, so entries carry no
	// timestamp.
	credits   []credit
	niCredits []niCredit
	ejections []ejection
	// wakes are look-ahead wakeup requests for downstream routers a
	// blocked flit saw asleep. The sequential path wakes on the first
	// encounter only; applyCommits reproduces that by re-checking the
	// state per request in order.
	wakes []int32
	// idled lists routers whose last buffered flit traversed out this
	// phase (occupied-bit clear + lazy busy-streak end).
	idled []int32
	// bfm holds max-port-occupancy histogram moves in traversal order.
	bfm []bfmOp
	// events accumulates this shard's switching-activity deltas; buffered
	// is the (negative) subnet buffered-flit delta.
	events   PowerEvents
	buffered int
}

// reset truncates every staged list for reuse.
//
//catnap:hotpath once per (subnet, shard) per sharded cycle
func (cq *commitQueue) reset() {
	cq.arrivals = cq.arrivals[:0]
	cq.credits = cq.credits[:0]
	cq.niCredits = cq.niCredits[:0]
	cq.ejections = cq.ejections[:0]
	cq.wakes = cq.wakes[:0]
	cq.idled = cq.idled[:0]
	cq.bfm = cq.bfm[:0]
	cq.events = PowerEvents{}
	cq.buffered = 0
}

// shardPlan is a static partition of the mesh into contiguous row-bands.
// Band k covers rows [k*rows/count, (k+1)*rows/count); counts above the
// row count leave trailing bands empty, and counts that do not divide
// the rows evenly get bands differing by one row — both are fine, just
// imbalanced. Contiguity matters for determinism: ascending shard index
// equals ascending node id, so per-shard commit queues applied in shard
// order replay effects in exactly the sequential phase's node order.
type shardPlan struct {
	count int
	// shardOf[node] is the band owning that node.
	shardOf []int16
	// masks[k] selects band k's nodes out of a node-id bitmap word array
	// (same layout as Subnet.occBits).
	masks [][]uint64
}

//catnap:reset-covered Network.Reset tears sharding down via applyShards(0) before rebuilding, so plans never outlive the run that configured them
func newShardPlan(rows, cols, count int) *shardPlan {
	nodes := rows * cols
	words := (nodes + 63) / 64
	p := &shardPlan{
		count:   count,
		shardOf: make([]int16, nodes),
		masks:   make([][]uint64, count),
	}
	for k := range p.masks {
		p.masks[k] = make([]uint64, words)
	}
	for k := 0; k < count; k++ {
		lo := k * rows / count * cols
		hi := (k + 1) * rows / count * cols
		for n := lo; n < hi; n++ {
			p.shardOf[n] = int16(k)
			p.masks[k][n>>6] |= 1 << (uint(n) & 63)
		}
	}
	return p
}

// hasWork reports whether any of band k's routers is in the occupied
// bitmap occ.
//
//catnap:hotpath
func (p *shardPlan) hasWork(occ []uint64, k int) bool {
	for i, m := range p.masks[k] {
		if occ[i]&m != 0 {
			return true
		}
	}
	return false
}

// shardTask names one (subnet, shard) unit of router-phase work.
type shardTask struct {
	sub   int32
	shard int32
}

// applyShards is SetExecMode's sharding transition: it (re)builds or
// tears down the shard plan and per-subnet commit queues when the count
// changes. ExecMode.Shards partitions every subnet's router phase into k
// contiguous row-band shards executed concurrently on the network's
// worker pool, with all cross-router effects staged in per-shard commit
// queues and applied in a fixed order after the barrier. Results are
// bit-identical to sequential stepping at any k (the differential tests
// assert per-cycle state-hash equality), so k is purely a throughput
// knob: use it when load concentrates on few subnets and
// ExecMode.Parallel alone cannot spread the router phase across cores.
// k == 0 disables sharding; k == 1 keeps the staged machinery with a
// single band (useful for testing, pointless for speed); k above the
// mesh row count leaves trailing shards empty.
//
// Sharding composes with ExecMode.Parallel (per-subnet commit/power work
// then also fans out) and may be flipped mid-run between Steps. The
// reference scan path (ExecMode.ReferenceScan) takes precedence: while
// it is active the network steps unsharded.
//
// With sharding on, GatingPolicy, PowerTracer, and sink callbacks can be
// invoked from worker goroutines rather than the caller's goroutine (see
// SetExecMode's concurrency contract); the built-in policies are safe,
// custom implementations must be race-free.
func (n *Network) applyShards(k int) {
	if k == n.shardCount {
		return
	}
	n.shardCount = k
	if k == 0 {
		n.plan = nil
		for _, s := range n.subnets {
			s.shardQueues = nil
			s.shardBusy = nil
			for i := range s.routers {
				s.routers[i].cq = nil
			}
		}
		return
	}
	n.plan = newShardPlan(n.cfg.Rows, n.cfg.Cols, k)
	for _, s := range n.subnets {
		s.shardQueues = make([]commitQueue, k)
		s.shardBusy = make([]int32, k)
		for i := range s.routers {
			s.routers[i].cq = &s.shardQueues[n.plan.shardOf[i]]
		}
	}
}

// Shards returns the configured shard count (0 when sharding is off).
func (n *Network) Shards() int { return n.shardCount }

// stepSharded is Step's router+power stage when sharding is enabled:
// collect the non-empty (subnet, shard) tasks, run their router phases
// concurrently with staging on, then apply every commit queue in shard
// order and run the power phases. Commits must be applied before the
// power phase — a traversal that empties a router can make its sleep
// check due this very cycle when TIdleDetect is small.
//
// Dispatch goes through the network's reusable StepPool with the
// pre-bound shardFn/commitFn closures (zero allocations per cycle).
// Because the task list is built in ascending (subnet, shard) order and
// the busy set is stable under steady load, affine dispatch
// (ExecMode.ShardAffinity) keeps each shard's rows on the worker that
// touched them last cycle; ExecMode.StealBatch tunes how greedily idle
// workers take over a lagging worker's tail.
//
//catnap:hotpath the sharded per-cycle router+power stage
func (n *Network) stepSharded(now int64) {
	plan := n.plan
	tasks := n.shardTasks[:0]
	for si, s := range n.subnets {
		s.staging = true
		for k := 0; k < plan.count; k++ {
			s.shardBusy[k] = 0
			if plan.hasWork(s.occBits, k) {
				tasks = append(tasks, shardTask{sub: int32(si), shard: int32(k)})
			}
		}
	}
	n.shardTasks = tasks
	n.phaseNow = now
	n.pool.Run(len(tasks), n.affinity, n.stealBatch, n.shardFn)
	for _, s := range n.subnets {
		s.staging = false
	}
	if n.parallel {
		n.pool.Run(len(n.subnets), false, 1, n.commitFn)
		return
	}
	for _, s := range n.subnets {
		s.applyCommits(now)
	}
	for _, s := range n.subnets {
		s.powerPhase(now)
	}
}
