package noc_test

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/sim"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// testConfig returns a paper-like configuration scaled by arguments.
func testConfig(rows, cols, subnets, width int) noc.Config {
	return noc.Config{
		Rows: rows, Cols: cols,
		TilesPerNode:  4,
		RegionDim:     gcdDim(rows, cols),
		Subnets:       subnets,
		LinkWidthBits: width,
		VCs:           4,
		VCDepth:       4,
		InjQueueFlits: 16,
		RouterDelay:   2,
		LinkDelay:     1,
		CreditDelay:   1,
		TWakeup:       10,
		WakeupHidden:  3,
		TIdleDetect:   4,
		TBreakeven:    12,
	}
}

func gcdDim(rows, cols int) int {
	// Largest square region dim that tiles both dimensions; for the test
	// meshes (4x4, 8x8) this is rows/2 or rows.
	d := rows
	if cols < d {
		d = cols
	}
	for d > 1 {
		if rows%d == 0 && cols%d == 0 {
			return d
		}
		d--
	}
	return 1
}

func newNet(t *testing.T, cfg noc.Config) *noc.Network {
	t.Helper()
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatalf("noc.New: %v", err)
	}
	return net
}

func TestZeroLoadLatencySingleFlit(t *testing.T) {
	cfg := testConfig(8, 8, 1, 512)
	net := newNet(t, cfg)

	// Corner to corner: 14 hops on an 8x8 mesh under X-Y routing.
	p := net.NewPacket(0, 63, noc.ClassSynthetic, 512)
	net.Run(100)
	if p.ArriveTime == 0 {
		t.Fatalf("packet not delivered after 100 cycles (in flight: %d)", net.InFlight())
	}

	// Zero-load timing arithmetic for this microarchitecture: the flit is
	// streamed by the NI at cycle 0, arrives at the source router at cycle
	// 1 (link), becomes switch-eligible 2 cycles later (two-stage router),
	// and each subsequent hop costs 3 cycles (2 pipeline + 1 link). At the
	// destination router it traverses to the ejection port and lands in
	// the NI one link-cycle later: latency = 4 + 3*hops.
	hops := int64(net.Topo().Hops(0, 63))
	want := 4 + 3*hops
	if p.Latency() != want {
		t.Fatalf("zero-load latency = %d, want %d (hops=%d)", p.Latency(), want, hops)
	}
	if p.NetworkLatency() != want {
		t.Fatalf("network latency = %d, want %d (no queueing at zero load)", p.NetworkLatency(), want)
	}
}

func TestZeroLoadLatencyMultiFlit(t *testing.T) {
	cfg := testConfig(8, 8, 4, 128)
	net := newNet(t, cfg)

	// A 512-bit packet on a 128-bit subnet is 4 flits; the tail trails the
	// head by 3 cycles of serialization at every zero-load pipeline stage,
	// so total latency = head latency + (flits-1).
	p := net.NewPacket(0, 63, noc.ClassSynthetic, 512)
	net.Run(200)
	if p.ArriveTime == 0 {
		t.Fatal("packet not delivered")
	}
	if p.NumFlits != 4 {
		t.Fatalf("NumFlits = %d, want 4", p.NumFlits)
	}
	hops := int64(net.Topo().Hops(0, 63))
	want := 4 + 3*hops + int64(p.NumFlits-1)
	if p.Latency() != want {
		t.Fatalf("zero-load latency = %d, want %d", p.Latency(), want)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	cfg := testConfig(4, 4, 2, 128)
	net := newNet(t, cfg)
	want := 0
	for s := 0; s < cfg.Nodes(); s++ {
		for d := 0; d < cfg.Nodes(); d++ {
			if s == d {
				continue
			}
			net.NewPacket(s, d, noc.ClassSynthetic, 512)
			want++
		}
	}
	if !net.Drain(100000) {
		t.Fatalf("network did not drain: %d packets in flight", net.InFlight())
	}
	_, _, ejected := net.Counts()
	if int(ejected) != want {
		t.Fatalf("ejected %d packets, want %d", ejected, want)
	}
}

func TestUniformRandomConservation(t *testing.T) {
	for _, subnets := range []int{1, 2, 4} {
		cfg := testConfig(8, 8, subnets, 512/subnets)
		net := newNet(t, cfg)
		gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.05), 42)
		for i := 0; i < 5000; i++ {
			gen.Tick(net.Now())
			net.Step()
		}
		if !net.Drain(100000) {
			t.Fatalf("subnets=%d: did not drain (%d in flight)", subnets, net.InFlight())
		}
		created, injected, ejected := net.Counts()
		if created != ejected || created != injected {
			t.Fatalf("subnets=%d: created=%d injected=%d ejected=%d", subnets, created, injected, ejected)
		}
		if created == 0 {
			t.Fatalf("subnets=%d: no traffic generated", subnets)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		cfg := testConfig(8, 8, 4, 128)
		net := newNet(t, cfg)
		gen := traffic.NewGenerator(net, traffic.Transpose{}, traffic.Constant(0.1), 7)
		for i := 0; i < 3000; i++ {
			gen.Tick(net.Now())
			net.Step()
		}
		_, _, ejected := net.Counts()
		return ejected, net.Latency().Mean()
	}
	e1, l1 := run()
	e2, l2 := run()
	if e1 != e2 || l1 != l2 {
		t.Fatalf("non-deterministic: (%d, %v) vs (%d, %v)", e1, l1, e2, l2)
	}
	if e1 == 0 {
		t.Fatal("no packets delivered")
	}
}

func TestBaselineGatingSleepsIdleNetwork(t *testing.T) {
	cfg := testConfig(4, 4, 1, 512)
	net := newNet(t, cfg)
	net.SetGatingPolicy(core.BaselineGating{})
	net.Run(100)
	for n := 0; n < cfg.Nodes(); n++ {
		if st := net.Subnet(0).Router(n).State(); st != noc.PowerAsleep {
			t.Fatalf("router %d state = %v after 100 idle cycles, want asleep", n, st)
		}
	}
	net.FlushCSC()
	csc, total := net.CompensatedSleepCycles()
	if csc == 0 || csc > total {
		t.Fatalf("csc = %d of %d router-cycles, want (0, total]", csc, total)
	}
}

func TestGatedPacketStillDelivered(t *testing.T) {
	cfg := testConfig(4, 4, 1, 512)
	net := newNet(t, cfg)
	net.SetGatingPolicy(core.BaselineGating{})
	net.Run(50) // everything sleeps
	p := net.NewPacket(0, 15, noc.ClassSynthetic, 512)
	net.Run(300)
	if p.ArriveTime == 0 {
		t.Fatal("packet lost in a gated network")
	}
	// Wake-up penalties must make it slower than the zero-load latency.
	hops := int64(net.Topo().Hops(0, 15))
	zeroLoad := 4 + 3*hops
	if p.NetworkLatency() <= zeroLoad {
		t.Fatalf("network latency %d through gated routers should exceed zero-load %d", p.NetworkLatency(), zeroLoad)
	}
}

func TestCatnapConcentratesLowLoadInSubnetZero(t *testing.T) {
	cfg := testConfig(8, 8, 4, 128)
	net := newNet(t, cfg)
	det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
	net.AddObserver(det)
	net.SetSelector(core.NewCatnapSelector(det, cfg.Nodes()))
	net.SetGatingPolicy(core.NewCatnapGating(det))

	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.02), 11)
	for i := 0; i < 5000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	share := net.SubnetFlitShare()
	if share[0] < 0.99 {
		t.Fatalf("subnet 0 share = %v, want ~1.0 at low load (shares %v)", share[0], share)
	}
	// Higher-order subnets should be overwhelmingly asleep.
	for s := 1; s < 4; s++ {
		if a := net.Subnet(s).ActiveRouters(); a > 4 {
			t.Errorf("subnet %d has %d active routers at low load, want <= 4", s, a)
		}
	}
	// And it all still works.
	if !net.Drain(100000) {
		t.Fatalf("did not drain: %d in flight", net.InFlight())
	}
	created, _, ejected := net.Counts()
	if created != ejected {
		t.Fatalf("created %d != ejected %d", created, ejected)
	}
}

func TestRandomSelectorSpreads(t *testing.T) {
	cfg := testConfig(4, 4, 4, 128)
	sel := core.NewRandomSelector(sim.NewRNG(3))
	net, err := noc.New(cfg, sel)
	if err != nil {
		t.Fatal(err)
	}
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.05), 5)
	for i := 0; i < 4000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	share := net.SubnetFlitShare()
	for s, f := range share {
		if f < 0.1 || f > 0.5 {
			t.Fatalf("random selector subnet %d share %v, want roughly uniform (%v)", s, f, share)
		}
	}
}
