// Package noc implements the cycle-level packet-switched network-on-chip
// substrate the paper evaluates: input-buffered virtual-channel routers
// with credit-based wormhole flow control, a two-stage speculative pipeline
// with look-ahead X-Y routing, concentrated mesh links, shared network
// interfaces, and the ability to instantiate one network as several
// parallel subnetworks (Multi-NoC) at constant aggregate datapath width.
//
// The package is policy-free: subnet selection and power gating are
// injected through the SubnetSelector and GatingPolicy interfaces, which
// the Catnap policies (internal/core) and the baselines implement. This
// mirrors the paper's structure: §2 describes the substrate, §3 the
// policies layered on it.
package noc

import "fmt"

// MsgClass identifies a protocol message class. Dependent message classes
// are mapped to disjoint virtual-channel sets to guarantee protocol-level
// deadlock freedom (paper §2.3); the mapping lives in Config.ClassVCMask.
type MsgClass uint8

// Message classes of the 4-hop MESI directory protocol plus a catch-all
// class for synthetic traffic.
const (
	// ClassRequest carries L1→directory requests (GetS/GetM), one flit.
	ClassRequest MsgClass = iota
	// ClassForward carries directory→owner forwards and invalidations;
	// these are the point-to-point-ordered control messages the paper maps
	// to a fixed lower-order subnet.
	ClassForward
	// ClassResponse carries data responses (cache block + header).
	ClassResponse
	// ClassAck carries short completion acknowledgements and writeback
	// control.
	ClassAck
	// ClassSynthetic is used by the synthetic traffic patterns, which are
	// free to use every virtual channel.
	ClassSynthetic
	// NumClasses is the number of distinct message classes.
	NumClasses
)

// String returns a short mnemonic for the class.
func (c MsgClass) String() string {
	switch c {
	case ClassRequest:
		return "req"
	case ClassForward:
		return "fwd"
	case ClassResponse:
		return "resp"
	case ClassAck:
		return "ack"
	case ClassSynthetic:
		return "syn"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Packet is one network message. A packet is created by a traffic source
// or the coherence protocol, enqueued at its source node's network
// interface, serialized into flits sized to the chosen subnet's datapath
// width, and reassembled (conceptually) at the destination NI.
type Packet struct {
	// ID is unique per network instance, assigned at creation.
	ID uint64
	// Src and Dst are node (router) indices.
	Src, Dst int
	// Class selects the virtual-channel set and, for app traffic, lets the
	// system model route the response.
	Class MsgClass
	// SizeBits is the message payload+header size; the number of flits is
	// derived per subnet width at injection time.
	SizeBits int

	// CreateTime is the cycle the packet entered the source queue.
	CreateTime int64
	// InjectTime is the cycle the head flit entered a subnet router.
	InjectTime int64
	// ArriveTime is the cycle the tail flit was ejected at Dst.
	ArriveTime int64

	// Subnet is the subnetwork the packet was injected into (-1 before
	// selection). All flits of a packet travel in the same subnet.
	Subnet int
	// NumFlits is the serialization length in the selected subnet.
	NumFlits int

	// Payload carries an opaque reference for closed-loop models (e.g. the
	// outstanding-miss record a response should complete). The network
	// never inspects it.
	Payload any
}

// Latency returns the packet's total latency in cycles, from source-queue
// entry to tail ejection.
//
//catnap:hotpath
func (p *Packet) Latency() int64 { return p.ArriveTime - p.CreateTime }

// NetworkLatency returns the in-network latency (head injection to tail
// ejection), excluding source queueing.
//
//catnap:hotpath
func (p *Packet) NetworkLatency() int64 { return p.ArriveTime - p.InjectTime }

// FlitsForWidth returns the serialization length of a packet of sizeBits
// on a datapath of widthBits: a flit cannot exceed the subnet width, and
// every packet is at least one flit (paper §2.3).
//
//catnap:hotpath
func FlitsForWidth(sizeBits, widthBits int) int {
	if sizeBits <= 0 {
		return 1
	}
	n := (sizeBits + widthBits - 1) / widthBits
	if n < 1 {
		n = 1
	}
	return n
}

// flit is one flow-control unit in flight. Flits exist only inside the
// simulator; the public surface deals in Packets. The head flit carries
// the look-ahead route (the output port to request at the *current*
// router, pre-computed by the upstream router per Galles' scheme).
type flit struct {
	pkt *Packet
	// seq is the flit index within the packet, 0-based.
	seq int32
	// nextPort is the look-ahead-computed output port at the router this
	// flit currently occupies (meaningful on the head flit; body/tail flits
	// follow the wormhole path allocated by the head).
	nextPort uint8
	// eligibleAt is the first cycle this flit may win switch allocation at
	// its current router, modelling the router pipeline depth.
	eligibleAt int64
	// crossed records torus dateline crossings (bit 0 = X ring, bit 1 =
	// Y ring). A packet that has crossed a ring's dateline must use the
	// upper dateline VC class in that ring, breaking the ring's cyclic
	// buffer dependency.
	crossed uint8
}

//catnap:hotpath
//catnap:shard-phase reads the flit only
func (f *flit) head() bool { return f.seq == 0 }

//catnap:hotpath
//catnap:shard-phase reads the flit only
func (f *flit) tail() bool { return int(f.seq) == f.pkt.NumFlits-1 }
