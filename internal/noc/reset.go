package noc

import (
	"fmt"

	"github.com/catnap-noc/catnap/internal/stats"
)

// In-place reset (see DESIGN.md §4i). Reset rewinds an existing Network to
// the exact state New(cfg, selector) would produce, reusing every
// allocation whose shape still fits and reallocating only the slabs that
// changed. New itself is a thin shell over Reset — a fresh network and a
// reset one run the same construction code, which is what makes the
// bit-identity the reset differential suite asserts structural rather
// than coincidental.
//
// Reset invariants:
//
//   - Everything mutable is rewound: wheels and commit queues are emptied
//     with their stale *Packet references dropped, SoA slabs and bitmaps
//     are zeroed, routers are rebuilt over the pooled storage, NI queues
//     and channels are cleared, counters and latency accumulators reset.
//   - Installed hooks are removed: observers, sinks, the power tracer, and
//     the gating policy are cleared, and the execution mode returns to the
//     New default (sequential, recycling off, idle-skip off). Callers
//     re-install what they need, exactly as they would after New.
//   - Deliberately retained across resets: the step-worker pool, the NI
//     packet freelists (NewPacket overwrites every field of a recycled
//     packet), warmed slice capacity, and each router's CSC tracker
//     struct (its counters are reset via stats.CSC.Reset).
//   - Shared immutable precompute (topology, feeder table) is swapped by
//     key, never mutated.
//
// The reflection completeness test (reset_coverage_test.go) walks the
// Network/Subnet/Router/NI structs and fails on any field that is neither
// reset here nor listed in its explicit immutable-allowlist, so new fields
// cannot silently leak state across reuses.

// Reset rewinds the network in place to the cycle-0 state New(cfg,
// selector) would produce (see the invariants above). On error the
// network is unchanged and still usable with its previous configuration.
func (n *Network) Reset(cfg Config, selector SubnetSelector) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if selector == nil {
		return fmt.Errorf("noc: nil subnet selector")
	}

	// Tear down sharding over the *old* subnet set before any resizing.
	n.applyShards(0)

	pc := sharedPrecomp(&cfg)
	n.cfg = &cfg
	n.pre = pc
	n.topo = pc.topo
	n.localPort = pc.topo.Radix() - 1
	n.selector = selector
	n.gating = nil
	n.epochFn = nil
	for i := range n.obs {
		n.obs[i] = nil
	}
	n.obs = n.obs[:0]
	n.tracer = nil

	n.now = 0
	n.nextPktID = 0
	for i := range n.sinks {
		n.sinks[i] = nil
	}
	n.sinks = n.sinks[:0]
	n.inFlight = 0
	if n.latency == nil {
		n.latency = stats.NewLatency(0)
		n.netLatency = stats.NewLatency(0)
	} else {
		n.latency.Reset()
		n.netLatency.Reset()
	}

	// Execution mode back to the New default; Simulator/callers re-apply
	// their SetExecMode after Reset exactly as they do after New. refScan
	// is forced off directly (not via applyReferenceScan): the pristine
	// state rebuilt below is already consistent with the incremental path.
	n.parallel = false
	n.shardTasks = n.shardTasks[:0]
	n.affinity = false
	n.stealBatch = 0
	n.phaseNow = 0
	n.recycle = false
	n.refScan = false
	n.idleSkip = false

	// Surplus subnets and NIs beyond the new shape are retained in the
	// backing arrays (reviveSlice shortens len, not cap) rather than
	// dropped: sweep grids oscillate subnet counts, and a retained subnet
	// revives with its wired shape and warmed pools intact, so regrowing
	// 1-subnet -> 4-subnet costs three cheap resets instead of three
	// fresh builds. The memory held is bounded by the high-water shape of
	// the sweep, which is exactly what a reuse pool signs up for.
	n.subnets = reviveSlice(n.subnets, cfg.Subnets)
	for s := range n.subnets {
		if n.subnets[s] == nil {
			n.subnets[s] = &Subnet{net: n, index: s, events: &PowerEvents{}}
		}
		n.subnets[s].reset()
	}
	n.nis = reviveSlice(n.nis, cfg.Nodes())
	for i := range n.nis {
		if n.nis[i] == nil {
			n.nis[i] = &NI{net: n, node: i}
		}
		n.nis[i].reset()
	}

	words := (cfg.Nodes() + 63) / 64
	n.niQueueFlits = 0
	n.niQBits = resetSlice(n.niQBits, words)
	n.niWorkBits = resetSlice(n.niWorkBits, words)
	n.flitsPerSubnet = resetSlice(n.flitsPerSubnet, cfg.Subnets)

	n.injectedPkts = 0
	n.ejectedPkts = 0
	n.ejectedFlits = 0
	n.createdPkts = 0
	return nil
}

// reset rewinds the subnet to its cycle-0 state under the network's
// (possibly new) configuration, reusing shape-compatible slabs. Routers
// keep their CSC tracker structs (counters reset) so a reused simulator
// does not reallocate one per router per point.
func (s *Subnet) reset() {
	net := s.net
	cfg := net.cfg
	nodes := cfg.Nodes()
	radix := net.topo.Radix()

	*s.events = PowerEvents{}
	s.feeder = net.pre.feeder

	s.wheelSize = cfg.RouterDelay + cfg.LinkDelay + cfg.CreditDelay + 4
	s.arrivals = resetWheel(s.arrivals, s.wheelSize)
	s.credits = resetWheel(s.credits, s.wheelSize)
	s.niCredits = resetWheel(s.niCredits, s.wheelSize)
	s.ejections = resetWheel(s.ejections, s.wheelSize)

	s.refScan = false
	words := (nodes + 63) / 64
	s.occBits = resetSlice(s.occBits, words)
	s.wakingBits = resetSlice(s.wakingBits, words)
	s.asleepBits = resetSlice(s.asleepBits, words)
	s.blockedBits = resetSlice(s.blockedBits, words)
	s.pollBits = resetSlice(s.pollBits, words)
	s.dueBits = resetSlice(s.dueBits, words)
	s.workBits = resetSlice(s.workBits, words)
	s.stateCount = [3]int{}
	s.stateCount[PowerActive] = nodes
	s.bufferedFlits = 0
	s.bfmHist = resetSlice(s.bfmHist, cfg.VCs*cfg.VCDepth+1)
	s.bfmHist[0] = int32(nodes)
	s.bfmMax = 0
	s.checkWheel = resetWheel(s.checkWheel, cfg.TIdleDetect+2)
	s.lastEpoch = ^uint64(0)

	// Sharding state was torn down by Network.Reset via applyShards(0).
	s.staging = false

	s.radix = radix
	s.pstate = resetSlice(s.pstate, nodes)
	s.occSlots = resetSlice(s.occSlots, nodes)
	s.lastBusy = resetSlice(s.lastBusy, nodes)
	for n := range s.lastBusy {
		s.lastBusy[n] = -1 // never busy yet: idle(now) == now+1 == now-emptySince+1
	}
	s.pinnedUntil = resetSlice(s.pinnedUntil, nodes)

	// Wiring: pool sizes, router slice views, and link-derived port
	// constants are pure functions of the shape, so they are rebuilt only
	// when the shape changed. A same-shape reset — the hot case in sweeps —
	// keeps every view and sweeps only the run-state values below.
	shape := wireShape{nodes: nodes, radix: radix, vcs: cfg.VCs, vcdepth: cfg.VCDepth, topo: net.topo}
	if shape != s.wired {
		s.wired = shape
		s.inPool = resetSlice(s.inPool, nodes*radix)
		s.outPool = resetSlice(s.outPool, nodes*radix)
		s.vcPool = resetSlice(s.vcPool, nodes*radix*cfg.VCs)
		s.flitPool = resetSlice(s.flitPool, nodes*radix*cfg.VCs*cfg.VCDepth)
		s.outCredits = resetSlice(s.outCredits, nodes*radix*cfg.VCs)
		s.busyPool = resetSlice(s.busyPool, nodes*radix*cfg.VCs)
		s.grantPool = resetSlice(s.grantPool, nodes*radix)
		s.routers = reviveSlice(s.routers, nodes)
		for n := range s.routers {
			// Zero every router field except the retained CSC tracker, then
			// re-wire the router over the freshly zeroed pools.
			s.routers[n] = Router{csc: s.routers[n].csc}
			s.routers[n].wire(s, n)
		}
		for i := range s.vcPool {
			s.vcPool[i].outVC = -1 // cycle-0 value on the freshly zeroed pool
		}
	} else {
		// Run-state sweep over the retained pools. The bool scratch pools
		// clear in bulk; vcState keeps its ring view and has its per-run
		// fields rewound element-wise (outVC's cycle-0 value is -1, so a
		// bulk clear would be wrong anyway). Flit rings clear only their
		// live span: vcState.pop zeroes each slot it drains, so slots
		// outside [head, head+count) are already pristine and the sweep is
		// O(buffered flits), not O(pool). outCredits is NOT bulk-filled:
		// only linked ports carry credits, and rearm refills exactly those
		// through each router's credit views, leaving unlinked slots at the
		// zero a fresh build gives them.
		clear(s.busyPool)
		clear(s.grantPool)
		for i := range s.vcPool {
			vc := &s.vcPool[i]
			for k := 0; k < vc.count; k++ {
				vc.q[(vc.head+k)%len(vc.q)] = flit{}
			}
			vc.head = 0
			vc.count = 0
			vc.curPkt = nil
			vc.outPort = 0
			vc.outVC = -1
			vc.routeSet = false
			vc.crossed = 0
		}
	}
	// Run-state values, every reset, through the (possibly retained) views.
	for n := range s.routers {
		s.routers[n].rearm(cfg)
	}
}

// clear empties the queue in place, nilling every slot so dequeued
// packets are not retained, and keeps the ring's capacity.
func (q *pktQueue) clear() {
	for i := range q.buf {
		q.buf[i] = nil
	}
	q.head = 0
	q.n = 0
}

// reset rewinds the NI to its cycle-0 state under the network's (possibly
// new) configuration. The packet freelist is deliberately retained:
// NewPacket overwrites every field of a recycled packet, so stale
// contents cannot leak, and dropping the freelist would forfeit the
// recycling warm-up across points.
func (ni *NI) reset() {
	cfg := ni.net.cfg
	ni.sourceQ.clear()
	ni.injQ.clear()
	ni.injQFlits = 0
	ni.channels = reviveSlice(ni.channels, cfg.Subnets)
	for s := range ni.channels {
		ch := &ni.channels[s]
		ch.streams = resetSlice(ch.streams, cfg.VCs)
		ch.credits = resetSlice(ch.credits, cfg.VCs)
		for v := range ch.credits {
			ch.credits[v] = cfg.VCDepth
		}
		ch.busy = resetSlice(ch.busy, cfg.VCs)
		ch.rr = 0
		ch.active = 0
	}
	ni.FlitsInjected = 0
	ni.PacketsInjected = 0
	ni.FlitsPerSubnet = resetSlice(ni.FlitsPerSubnet, cfg.Subnets)
	ni.readyScratch = resetSlice(ni.readyScratch, cfg.Subnets)
	ni.activeScratch = resetSlice(ni.activeScratch, cfg.Subnets)
}
