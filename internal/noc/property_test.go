package noc_test

import (
	"testing"
	"testing/quick"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// propConfig derives a small but varied network configuration from fuzz
// inputs.
func propConfig(meshSel, subnetSel, vcSel, depthSel uint8) noc.Config {
	dims := [][2]int{{2, 2}, {4, 4}, {4, 2}, {8, 8}, {2, 8}}
	d := dims[int(meshSel)%len(dims)]
	subnets := []int{1, 2, 4}[int(subnetSel)%3]
	cfg := noc.Config{
		Rows: d[0], Cols: d[1],
		TilesPerNode: 4,
		RegionDim:    gcdDim(d[0], d[1]),
		Subnets:      subnets, LinkWidthBits: 512 / subnets,
		VCs: int(vcSel)%4 + 1, VCDepth: int(depthSel)%6 + 2,
		InjQueueFlits: 16,
		RouterDelay:   2, LinkDelay: 1, CreditDelay: 1,
		TWakeup: 10, WakeupHidden: 3, TIdleDetect: 4, TBreakeven: 12,
	}
	return cfg
}

// TestPropertyConservationAndQuiescence: for arbitrary small
// configurations, seeds, and loads, every created packet is delivered
// exactly once and the drained network returns to its pristine state
// (all credits home, no leaked VC allocations, empty wheels).
func TestPropertyConservationAndQuiescence(t *testing.T) {
	f := func(meshSel, subnetSel, vcSel, depthSel uint8, seed uint64, loadSel uint8) bool {
		cfg := propConfig(meshSel, subnetSel, vcSel, depthSel)
		net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		load := []float64{0.02, 0.1, 0.3, 0.8}[int(loadSel)%4]
		gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(load), seed)
		for i := 0; i < 1500; i++ {
			gen.Tick(net.Now())
			net.Step()
		}
		if !net.Drain(200000) {
			t.Logf("deadlock: cfg=%+v load=%v seed=%d inflight=%d", cfg, load, seed, net.InFlight())
			return false
		}
		if err := net.CheckQuiescent(); err != nil {
			t.Logf("%v (cfg=%+v load=%v seed=%d)", err, cfg, load, seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGatedConservation: the same conservation property must
// survive power gating with both gating policies — gating must never
// strand or lose a flit.
func TestPropertyGatedConservation(t *testing.T) {
	f := func(meshSel, vcSel uint8, seed uint64, catnapGate bool) bool {
		cfg := propConfig(meshSel, 2 /* 4 subnets */, vcSel, 2)
		net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
		if err != nil {
			return false
		}
		if catnapGate {
			det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
			net.AddObserver(det)
			net.SetSelector(core.NewCatnapSelector(det, cfg.Nodes()))
			net.SetGatingPolicy(core.NewCatnapGating(det))
		} else {
			net.SetGatingPolicy(core.BaselineGating{})
		}
		// Bursty on/off traffic maximizes gating transitions.
		sched := traffic.Piecewise(
			traffic.Phase{Until: 200, Load: 0},
			traffic.Phase{Until: 400, Load: 0.3},
			traffic.Phase{Until: 700, Load: 0},
			traffic.Phase{Until: 900, Load: 0.1},
			traffic.Phase{Until: 1 << 62, Load: 0},
		)
		gen := traffic.NewGenerator(net, traffic.UniformRandom{}, sched, seed)
		for i := 0; i < 1200; i++ {
			gen.Tick(net.Now())
			net.Step()
		}
		if !net.Drain(200000) {
			t.Logf("gated deadlock: cfg=%+v seed=%d catnap=%v inflight=%d", cfg, seed, catnapGate, net.InFlight())
			return false
		}
		if err := net.CheckQuiescent(); err != nil {
			t.Logf("%v (cfg=%+v seed=%d catnap=%v)", err, cfg, seed, catnapGate)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLatencyLowerBound: no packet can beat the zero-load
// pipeline: latency >= 4 + 3*hops + (flits-1).
func TestPropertyLatencyLowerBound(t *testing.T) {
	cfg := testConfig(8, 8, 4, 128)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	net.AddSink(func(now int64, p *noc.Packet) {
		min := int64(4+3*net.Topo().Hops(p.Src, p.Dst)) + int64(p.NumFlits-1)
		if p.Latency() < min {
			violations++
			t.Errorf("packet %d: latency %d below physical bound %d", p.ID, p.Latency(), min)
		}
	})
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.2), 21)
	for i := 0; i < 4000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	if violations > 0 {
		t.Fatalf("%d physical-bound violations", violations)
	}
}

// TestPropertyClassIsolation: with per-class VC masks, packets of each
// class are still all delivered (no class can starve another into
// deadlock).
func TestPropertyClassIsolation(t *testing.T) {
	cfg := testConfig(4, 4, 2, 256)
	cfg.ClassVCMask[noc.ClassRequest] = 1 << 0
	cfg.ClassVCMask[noc.ClassForward] = 1 << 1
	cfg.ClassVCMask[noc.ClassResponse] = 1<<2 | 1<<3
	cfg.ClassVCMask[noc.ClassAck] = 1 << 3
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	classes := []noc.MsgClass{noc.ClassRequest, noc.ClassForward, noc.ClassResponse, noc.ClassAck}
	want := 0
	for i := 0; i < 400; i++ {
		src := i % cfg.Nodes()
		dst := (i*7 + 3) % cfg.Nodes()
		if src == dst {
			continue
		}
		bits := 72
		if classes[i%4] == noc.ClassResponse {
			bits = 584
		}
		net.NewPacket(src, dst, classes[i%4], bits)
		want++
	}
	if !net.Drain(100000) {
		t.Fatalf("class-isolated network did not drain: %d in flight", net.InFlight())
	}
	if _, _, ejected := net.Counts(); int(ejected) != want {
		t.Fatalf("delivered %d of %d", ejected, want)
	}
	if err := net.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}
