package noc

import "strings"

// PowerStateGrid renders subnet s's router power states as an ASCII grid
// (one character per router: '#' active, '~' waking, '.' asleep), row by
// row. It is a debugging and demonstration aid — the examples print it to
// show subnets going dark.
func (n *Network) PowerStateGrid(s int) string {
	var b strings.Builder
	cols := n.topo.Cols()
	for node := 0; node < n.topo.Nodes(); node++ {
		switch n.subnets[s].pstate[node] {
		case PowerActive:
			b.WriteByte('#')
		case PowerWaking:
			b.WriteByte('~')
		case PowerAsleep:
			b.WriteByte('.')
		}
		if (node+1)%cols == 0 && node != n.topo.Nodes()-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// PowerStateGrids renders every subnet side by side, separated by two
// spaces, with a one-line header of subnet indices.
func (n *Network) PowerStateGrids() string {
	grids := make([][]string, len(n.subnets))
	for s := range n.subnets {
		grids[s] = strings.Split(n.PowerStateGrid(s), "\n")
	}
	var b strings.Builder
	for s := range grids {
		if s > 0 {
			b.WriteString("  ")
		}
		label := "subnet " + string(byte('0'+s))
		if len(label) > n.topo.Cols() {
			label = "s" + string(byte('0'+s))
		}
		b.WriteString(label)
		for i := len(label); i < n.topo.Cols(); i++ {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')
	for row := 0; row < n.topo.Rows(); row++ {
		for s := range grids {
			if s > 0 {
				b.WriteString("  ")
			}
			b.WriteString(grids[s][row])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
