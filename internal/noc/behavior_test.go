package noc_test

// Behavioural tests of the flow-control machinery: injection-queue
// bounds, backpressure, ejection, and power-gating timing edges.

import (
	"testing"

	"github.com/catnap-noc/catnap/internal/congestion"
	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// newDetector attaches a default BFM detector to net.
func newDetector(t *testing.T, net *noc.Network) *congestion.Detector {
	t.Helper()
	det := congestion.NewDetector(net, congestion.Default(congestion.BFM))
	net.AddObserver(det)
	return det
}

// TestInjectionQueueBound: the NI's bounded queue never exceeds its
// configured flit capacity, however hard the source queue pushes.
func TestInjectionQueueBound(t *testing.T) {
	cfg := testConfig(4, 4, 1, 512)
	cfg.InjQueueFlits = 16
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	gen := traffic.NewGenerator(net, traffic.BitComplement{}, traffic.Constant(1.0), 3)
	for i := 0; i < 2000; i++ {
		gen.Tick(net.Now())
		net.Step()
		for n := 0; n < cfg.Nodes(); n++ {
			if occ := net.NI(n).QueueOccupancyFlits(); occ > cfg.InjQueueFlits {
				t.Fatalf("cycle %d node %d: injection queue %d > cap %d", i, n, occ, cfg.InjQueueFlits)
			}
		}
	}
}

// TestOversizePacketAdmitted: a packet larger than the whole injection
// queue must still be deliverable (admitted alone, streamed gradually).
func TestOversizePacketAdmitted(t *testing.T) {
	cfg := testConfig(4, 4, 1, 64) // 64-bit flits
	cfg.InjQueueFlits = 8
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	p := net.NewPacket(0, 15, noc.ClassSynthetic, 1024) // 16 flits > 8 cap
	net.Run(500)
	if p.ArriveTime == 0 {
		t.Fatal("oversize packet stuck")
	}
	if p.NumFlits != 16 {
		t.Fatalf("flits = %d", p.NumFlits)
	}
	if err := net.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestBackpressurePropagates: when a destination's paths are saturated,
// source queues must grow (no flits disappear under pressure).
func TestBackpressurePropagates(t *testing.T) {
	cfg := testConfig(4, 4, 1, 512)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	// Everyone hammers node 0: its ejection port is the bottleneck
	// (1 flit/cycle), aggregate demand is ~7.5 packets/cycle.
	for i := 0; i < 3000; i++ {
		for src := 1; src < cfg.Nodes(); src++ {
			if i%2 == 0 {
				net.NewPacket(src, 0, noc.ClassSynthetic, 512)
			}
		}
		net.Step()
	}
	backlogged := 0
	for n := 1; n < cfg.Nodes(); n++ {
		if net.NI(n).Backlogged() {
			backlogged++
		}
	}
	if backlogged < cfg.Nodes()/2 {
		t.Errorf("only %d NIs backlogged under hotspot", backlogged)
	}
	// Conservation still holds after drain.
	if !net.Drain(600000) {
		t.Fatalf("hotspot did not drain: %d in flight", net.InFlight())
	}
	created, _, ejected := net.Counts()
	if created != ejected {
		t.Fatalf("conservation: created %d ejected %d", created, ejected)
	}
}

// TestSelectorContractEnforced: a selector returning an unavailable
// subnet is a programming error the substrate refuses to mask.
func TestSelectorContractEnforced(t *testing.T) {
	cfg := testConfig(4, 4, 2, 256)
	bad := selectorFunc(func(now int64, node int, pkt *noc.Packet, ready []bool) int {
		return 1 // chosen blindly, even when busy
	})
	net, err := noc.New(cfg, bad)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate so subnet 1's channel is eventually busy when selected.
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.9), 5)
	defer func() {
		if recover() == nil {
			t.Error("substrate accepted a selector contract violation")
		}
	}()
	for i := 0; i < 5000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
}

type selectorFunc func(now int64, node int, pkt *noc.Packet, ready []bool) int

func (f selectorFunc) Select(now int64, node int, pkt *noc.Packet, ready []bool) int {
	return f(now, node, pkt, ready)
}

// TestWakeupHiddenTiming: a look-ahead wakeup costs TWakeup−WakeupHidden
// cycles; an NI wakeup costs the full TWakeup. Verify via single-packet
// latency through a fully gated network vs an active one.
func TestWakeupHiddenTiming(t *testing.T) {
	lat := func(gated bool) int64 {
		cfg := testConfig(4, 4, 1, 512)
		net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
		if err != nil {
			t.Fatal(err)
		}
		if gated {
			net.SetGatingPolicy(core.BaselineGating{})
			net.Run(50)
		}
		p := net.NewPacket(0, 3, noc.ClassSynthetic, 512) // 3 hops along the top row
		net.Run(300)
		if p.ArriveTime == 0 {
			t.Fatal("packet stuck")
		}
		return p.Latency()
	}
	active := lat(false)
	gated := lat(true)
	extra := gated - active
	// Lower bound: at least the NI wake (10, unhidden). Upper bound: NI
	// wake + per-hop partially hidden wakes; with 3 hops the pessimal sum
	// is 10 + 3*(10-3) = 31, plus scheduling slack.
	if extra < 10 || extra > 40 {
		t.Errorf("gated wake-up overhead = %d cycles (active %d, gated %d), want within [10, 40]", extra, active, gated)
	}
}

// TestSubnetZeroNeverSleepsUnderCatnap: even after long idle, Catnap
// keeps subnet 0 fully active for connectivity.
func TestSubnetZeroNeverSleepsUnderCatnap(t *testing.T) {
	cfg := testConfig(8, 8, 4, 128)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	det := newDetector(t, net)
	net.SetSelector(core.NewCatnapSelector(det, cfg.Nodes()))
	net.SetGatingPolicy(core.NewCatnapGating(det))
	net.Run(2000)
	if a := net.Subnet(0).ActiveRouters(); a != cfg.Nodes() {
		t.Fatalf("subnet 0 has only %d/%d active routers after idling", a, cfg.Nodes())
	}
	for s := 1; s < 4; s++ {
		if a := net.Subnet(s).ActiveRouters(); a != 0 {
			t.Fatalf("idle subnet %d still has %d active routers", s, a)
		}
	}
}
