package noc_test

import (
	"testing"
	"testing/quick"

	"github.com/catnap-noc/catnap/internal/core"
	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/topology"
	"github.com/catnap-noc/catnap/internal/traffic"
)

func torusConfig(rows, cols, subnets, width int) noc.Config {
	cfg := testConfig(rows, cols, subnets, width)
	cfg.Torus = true
	return cfg
}

func TestTorusValidation(t *testing.T) {
	cfg := torusConfig(4, 4, 1, 512)
	cfg.VCs = 1
	if err := cfg.Validate(); err == nil {
		t.Error("torus with 1 VC must be rejected (no dateline classes)")
	}
	cfg = torusConfig(4, 4, 1, 512)
	cfg.ClassVCMask[noc.ClassRequest] = 1
	if err := cfg.Validate(); err == nil {
		t.Error("torus with custom class masks must be rejected")
	}
}

func TestTorusTopology(t *testing.T) {
	m := topology.NewTorus(4, 4, 4, 2)
	// Wraparound neighbours.
	if n := m.Neighbor(3, topology.East); n != 0 {
		t.Errorf("east wrap from node 3 -> %d, want 0", n)
	}
	if n := m.Neighbor(0, topology.West); n != 3 {
		t.Errorf("west wrap from node 0 -> %d, want 3", n)
	}
	if n := m.Neighbor(0, topology.North); n != 12 {
		t.Errorf("north wrap from node 0 -> %d, want 12", n)
	}
	// Wrap detection marks exactly the dateline links.
	if !m.Wraps(3, topology.East) || m.Wraps(2, topology.East) {
		t.Error("X dateline misplaced")
	}
	if !m.Wraps(0, topology.North) || m.Wraps(4, topology.North) {
		t.Error("Y dateline misplaced")
	}
	// Ring distances: corner to corner is 1+1 on a 4x4 torus.
	if h := m.Hops(0, 15); h != 2 {
		t.Errorf("torus corner hops = %d, want 2", h)
	}
}

// TestTorusRouteProgress: shortest-direction dimension-ordered routing
// reaches every destination in exactly Hops steps.
func TestTorusRouteProgress(t *testing.T) {
	m := topology.NewTorus(8, 8, 4, 4)
	f := func(a, b uint8) bool {
		src := int(a) % m.Nodes()
		dst := int(b) % m.Nodes()
		at := src
		for steps := 0; steps < m.Hops(src, dst); steps++ {
			p := m.Route(at, dst)
			if p == topology.Local {
				return false // arrived early: Hops wrong
			}
			at = m.Neighbor(at, p)
		}
		return at == dst && m.Route(at, dst) == topology.Local
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestTorusZeroLoad: latency benefits from wraparound (max 8 hops on an
// 8x8 torus vs 14 on the mesh).
func TestTorusZeroLoad(t *testing.T) {
	cfg := torusConfig(8, 8, 1, 512)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	p := net.NewPacket(0, 63, noc.ClassSynthetic, 512)
	net.Run(100)
	if p.ArriveTime == 0 {
		t.Fatal("not delivered")
	}
	hops := int64(net.Topo().Hops(0, 63))
	if hops != 2 {
		t.Fatalf("8x8 torus corner hops = %d, want 2", hops)
	}
	if want := 4 + 3*hops; p.Latency() != want {
		t.Fatalf("latency %d, want %d", p.Latency(), want)
	}
}

// TestTorusDeadlockFreedom is the key property: sustained saturation on
// every adversarial pattern must drain completely — the dateline VC
// classes break the ring cycles that wormhole switching would otherwise
// deadlock on. (Disable the dateline logic and this test hangs.)
func TestTorusDeadlockFreedom(t *testing.T) {
	patterns := []traffic.Pattern{traffic.UniformRandom{}, traffic.Transpose{}, traffic.BitComplement{}}
	for _, pat := range patterns {
		for _, vcs := range []int{2, 4} {
			cfg := torusConfig(8, 8, 1, 512)
			cfg.VCs = vcs
			net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
			if err != nil {
				t.Fatal(err)
			}
			gen := traffic.NewGenerator(net, pat, traffic.Constant(0.9), 7)
			for i := 0; i < 3000; i++ {
				gen.Tick(net.Now())
				net.Step()
			}
			if !net.Drain(300000) {
				t.Fatalf("%s/%dVC: torus deadlocked with %d packets in flight", pat.Name(), vcs, net.InFlight())
			}
			if err := net.CheckQuiescent(); err != nil {
				t.Fatalf("%s/%dVC: %v", pat.Name(), vcs, err)
			}
		}
	}
}

// TestTorusGatedConservation: power gating composes with the torus.
func TestTorusGatedConservation(t *testing.T) {
	cfg := torusConfig(4, 4, 4, 128)
	net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	net.SetGatingPolicy(core.BaselineGating{})
	sched := traffic.Piecewise(
		traffic.Phase{Until: 300, Load: 0},
		traffic.Phase{Until: 600, Load: 0.3},
		traffic.Phase{Until: 1 << 62, Load: 0},
	)
	gen := traffic.NewGenerator(net, traffic.UniformRandom{}, sched, 13)
	for i := 0; i < 1000; i++ {
		gen.Tick(net.Now())
		net.Step()
	}
	if !net.Drain(200000) {
		t.Fatalf("gated torus deadlocked: %d in flight", net.InFlight())
	}
	if err := net.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestTorusThroughputBeatsMesh: the torus's doubled bisection should
// saturate at a higher uniform-random load than the mesh.
func TestTorusThroughputBeatsMesh(t *testing.T) {
	run := func(torus bool) float64 {
		cfg := testConfig(8, 8, 1, 512)
		cfg.Torus = torus
		net, err := noc.New(cfg, core.NewRRSelector(cfg.Nodes()))
		if err != nil {
			t.Fatal(err)
		}
		gen := traffic.NewGenerator(net, traffic.UniformRandom{}, traffic.Constant(0.9), 5)
		for i := 0; i < 6000; i++ {
			gen.Tick(net.Now())
			net.Step()
		}
		_, _, ejected := net.Counts()
		return float64(ejected) / 6000 / 64
	}
	mesh := run(false)
	torus := run(true)
	if torus <= mesh {
		t.Errorf("torus saturation %.3f should beat mesh %.3f", torus, mesh)
	}
}
