// Package prof wires the runtime/pprof CPU and heap profilers into the
// command-line tools, so hot-path work (see DESIGN.md's "Hot path"
// section) can be profiled on any experiment or sweep without a test
// harness:
//
//	catnap -cpuprofile cpu.prof fig12
//	go tool pprof cpu.prof
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile (when non-empty) and arranges
// for a heap profile to be written to memFile (when non-empty) by the
// returned stop function. Either file name may be empty; with both
// empty, Start is free and stop a no-op.
//
// Callers must run stop on every exit path. os.Exit skips deferred
// calls, so commands that exit with a code must stop the profiles
// first — an unstopped CPU profile is a truncated, unreadable file.
//
// stop is idempotent: commands routinely pair an explicit stop on the
// os.Exit path with a defer on the normal return path, and the second
// call must not clobber the already-written profiles. Only the first
// call does work (and reports its error); later calls return nil.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpuOut *os.File
	if cpuFile != "" {
		cpuOut, err = os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return err
			}
			// Settle the live heap so the snapshot shows retained
			// memory, not transient garbage.
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			return werr
		}
		return nil
	}, nil
}
