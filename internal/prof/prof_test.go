package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start with no files: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("no-op stop: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second no-op stop: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile %s not written: %v", f, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
}

// TestStopIdempotent covers the explicit-stop-plus-defer pattern the
// commands use around os.Exit: the second stop must succeed and must
// not rewrite or truncate the profiles written by the first.
func TestStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("first stop: %v", err)
	}
	memBefore, err := os.ReadFile(mem)
	if err != nil {
		t.Fatalf("reading heap profile: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	memAfter, err := os.ReadFile(mem)
	if err != nil {
		t.Fatalf("re-reading heap profile: %v", err)
	}
	if string(memBefore) != string(memAfter) {
		t.Error("second stop rewrote the heap profile")
	}
}

func TestStartBadCPUPath(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start(filepath.Join(dir, "missing", "cpu.prof"), "")
	if err == nil {
		stop()
		t.Fatal("Start succeeded with an uncreatable CPU profile path")
	}
	if stop != nil {
		t.Error("Start returned a non-nil stop alongside an error")
	}
}

// TestStopBadMemPath checks the deferred half of the contract: the heap
// profile path is only touched at stop time, so a bad path surfaces
// there, and the CPU profile must still be stopped and closed cleanly.
func TestStopBadMemPath(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	stop, err := Start(cpu, filepath.Join(dir, "missing", "mem.prof"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err == nil {
		t.Fatal("stop succeeded with an uncreatable heap profile path")
	}
	st, err := os.Stat(cpu)
	if err != nil {
		t.Fatalf("CPU profile not written: %v", err)
	}
	if st.Size() == 0 {
		t.Error("CPU profile is empty after stop")
	}
	// Idempotency holds on the error path too: the failure was
	// reported once; a paired deferred stop stays quiet.
	if err := stop(); err != nil {
		t.Errorf("second stop after error: %v", err)
	}
}
