module github.com/catnap-noc/catnap

go 1.22
