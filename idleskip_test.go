package catnap

import (
	"reflect"
	"testing"

	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/telemetry"
	"github.com/catnap-noc/catnap/internal/traffic"
)

// These tests pin idle fast-forward at the public Simulator surface: with
// the default execution mode (IdleSkip on), full runs — results, windowed
// telemetry series, and the event log — must be bit-identical to the
// reference scan stepping every cycle, including when measurement and
// telemetry window boundaries land inside skipped spans.

// skipGapSched offers two bursts separated by long zero-load gaps, then
// goes permanently idle, so a run spends most of its cycles in spans the
// fast-forward path can jump over.
func skipGapSched() traffic.Schedule {
	return traffic.Piecewise(
		traffic.Phase{Until: 250, Load: 0.15},
		traffic.Phase{Until: 900, Load: 0},
		traffic.Phase{Until: 1150, Load: 0.25},
		traffic.Phase{Until: 1 << 62, Load: 0},
	)
}

// skipSample runs one fixed synthetic measurement on the power-gated
// Catnap design. reference selects the scan-based no-skip arm; rec, when
// non-nil, attaches full telemetry. Warmup and measure are chosen so the
// StartMeasure boundary (cycle 300) and the run end (cycle 2100) both
// fall inside zero-load gaps — deadlines the skipping arm must land on
// exactly, not jump past.
func skipSample(t *testing.T, reference bool, rec *telemetry.Recorder) Results {
	t.Helper()
	cfg := mustDesign("4NT-128b-PG")
	cfg.NoIdleSkip = reference
	sim := mustSim(cfg)
	if reference {
		m := sim.ExecMode()
		m.ReferenceScan = true
		if err := sim.SetExecMode(m); err != nil {
			t.Fatal(err)
		}
	}
	if rec != nil {
		sim.EnableTelemetry(rec, "skip-sample")
	}
	return sim.RunSynthetic(traffic.UniformRandom{}, skipGapSched(), 300, 1800)
}

// TestIdleSkipResultsBitIdentical compares every Results field between
// the default (skipping) mode and the reference scan with skipping off.
func TestIdleSkipResultsBitIdentical(t *testing.T) {
	ref := skipSample(t, true, nil)
	fast := skipSample(t, false, nil)
	if !reflect.DeepEqual(ref, fast) {
		t.Fatalf("idle fast-forward changed results\nref:  %+v\nfast: %+v", ref, fast)
	}
}

// TestIdleSkipTelemetryAcrossWindows uses a telemetry window width (37)
// co-prime with every phase boundary of the schedule, so skipped spans
// start and end mid-window and cross many boundaries. Metric points and
// the event log must match the per-cycle reference exactly.
func TestIdleSkipTelemetryAcrossWindows(t *testing.T) {
	refRec := telemetry.NewRecorder(telemetry.Options{Window: 37})
	fastRec := telemetry.NewRecorder(telemetry.Options{Window: 37})
	ref := skipSample(t, true, refRec)
	fast := skipSample(t, false, fastRec)
	if !reflect.DeepEqual(ref, fast) {
		t.Fatalf("results diverged with telemetry attached\nref:  %+v\nfast: %+v", ref, fast)
	}
	refM, fastM := refRec.Metrics(), fastRec.Metrics()
	if len(refM) != len(fastM) {
		t.Fatalf("metric point counts differ: ref %d vs fast %d", len(refM), len(fastM))
	}
	for i := range refM {
		if refM[i] != fastM[i] {
			t.Fatalf("metric point %d diverges:\nref:  %+v\nfast: %+v", i, refM[i], fastM[i])
		}
	}
	if len(refM) == 0 {
		t.Fatal("reference run exported no metric points")
	}
	refE, fastE := refRec.Log().Events(), fastRec.Log().Events()
	if !reflect.DeepEqual(refE, fastE) {
		t.Fatalf("event logs diverge: ref %d events, fast %d events", len(refE), len(fastE))
	}
	if len(refE) == 0 {
		t.Fatal("reference run logged no events")
	}
}

// TestIdleSkipExecModeFlipsMidRun drives the Simulator through segmented
// runs with SetExecMode changes at the segment boundaries — skipping
// disarmed mid-gap, reference scan through the second burst, skipping
// re-armed for the idle tail — and checks the final results against an
// uninterrupted reference run of the same total length.
func TestIdleSkipExecModeFlipsMidRun(t *testing.T) {
	ref := skipSample(t, true, nil)

	cfg := mustDesign("4NT-128b-PG")
	sim := mustSim(cfg)
	sim.UseSynthetic(traffic.UniformRandom{}, skipGapSched(), 0)
	segment := func(n int64, m noc.ExecMode) {
		if err := sim.SetExecMode(m); err != nil {
			t.Fatal(err)
		}
		sim.Run(n)
	}
	base := sim.ExecMode() // default: incremental, recycling, IdleSkip on
	sim.Run(300)
	sim.StartMeasure()
	segment(300, noc.ExecMode{PacketRecycling: base.PacketRecycling}) // skip off, mid-gap
	segment(600, noc.ExecMode{ReferenceScan: true})                   // reference scan through burst 2
	segment(900, base)                                                // back to the default for the idle tail
	fast := sim.StopMeasure()
	if !reflect.DeepEqual(ref, fast) {
		t.Fatalf("mid-run SetExecMode flips changed results\nref:  %+v\nfast: %+v", ref, fast)
	}
}

// TestIdleSkipActuallySkips guards against the suite going vacuous: the
// fast arm of the samples above must fast-forward a substantial share of
// its 2100 cycles. It watches TrySkipIdle through an attached span
// recorder that participates in (never bounds) skipping.
func TestIdleSkipActuallySkips(t *testing.T) {
	cfg := mustDesign("4NT-128b-PG")
	sim := mustSim(cfg)
	rec := &skipSpanRecorder{}
	sim.Net.AddObserver(rec)
	sim.RunSynthetic(traffic.UniformRandom{}, skipGapSched(), 300, 1800)
	if rec.cycles < 500 {
		t.Fatalf("skipped only %d of 2100 cycles; fast-forward never engaged on ~1600 idle cycles", rec.cycles)
	}
}

// skipSpanRecorder counts skipped cycles without constraining the skips.
type skipSpanRecorder struct{ cycles int64 }

func (r *skipSpanRecorder) AfterCycle(now int64)                  {}
func (r *skipSpanRecorder) NextIdleEvent(now int64) (int64, bool) { return noc.SkipHorizon, true }
func (r *skipSpanRecorder) SkipIdle(from, to int64)               { r.cycles += to - from }
