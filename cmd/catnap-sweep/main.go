// Command catnap-sweep runs an offered-load sweep of any registered
// design over any synthetic traffic pattern and prints one row per load:
// throughput, latency, power, CSC, and per-subnet flit shares. It is the
// free-form exploration companion to cmd/catnap's canned experiments.
//
// The loads run in parallel on the sweep engine (-jobs workers, default
// GOMAXPROCS); rows are printed in load order once the sweep completes,
// so the result table is byte-identical at any worker count. Progress
// and the end-of-run summary go to stderr (-v logs every point).
//
// -sim-workers shards each simulator's router phase across cores
// instead (0 = off, -1 = GOMAXPROCS shards); use it when the sweep has
// fewer points than cores. Sharding is deterministic, so rows are also
// byte-identical at any -sim-workers value.
//
// Cycle-level telemetry is off by default; -metrics/-events attach one
// labeled collector per load (see internal/telemetry for the schema)
// and also record sweep-point lifecycle events.
//
// -cpuprofile and -memprofile write pprof profiles of the whole sweep
// (all workers), for digging into simulator hot paths at realistic
// loads.
//
// Example:
//
//	catnap-sweep -design 4NT-128b-PG -pattern transpose -loads 0.02,0.05,0.1,0.2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	catnap "github.com/catnap-noc/catnap"
	"github.com/catnap-noc/catnap/internal/prof"
	"github.com/catnap-noc/catnap/internal/runner"
	"github.com/catnap-noc/catnap/internal/telemetry"
	"github.com/catnap-noc/catnap/internal/trace"
	"github.com/catnap-noc/catnap/internal/traffic"
)

var (
	design      = flag.String("design", "4NT-128b-PG", "network design (see 'catnap designs')")
	pattern     = flag.String("pattern", "uniform-random", "traffic pattern: uniform-random|transpose|bit-complement")
	loadsStr    = flag.String("loads", "0.02,0.05,0.10,0.20,0.30,0.40,0.50", "comma-separated offered loads (packets/node/cycle)")
	warmup      = flag.Int64("warmup", 3000, "warmup cycles per point")
	measure     = flag.Int64("measure", 12000, "measurement cycles per point")
	seed        = flag.Uint64("seed", 1, "experiment seed")
	metricTh    = flag.Float64("threshold", 0, "override the congestion metric threshold (0 = default)")
	traceFile   = flag.String("trace", "", "write a JSONL per-packet trace to this file, gzipped if it ends in .gz (single-load runs)")
	metricsFile = flag.String("metrics", "", "write telemetry metrics to this file (JSONL; CSV if it ends in .csv), one labeled collector per load")
	eventsFile  = flag.String("events", "", "stream telemetry events (sleep/wake, congestion, point lifecycle) to this JSONL file")
	jobs        = flag.Int("jobs", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	simWorkers  = flag.Int("sim-workers", 0, "router-phase shards inside each simulator (0 = off, -1 = GOMAXPROCS); results are bit-identical at any value")
	noSkip      = flag.Bool("no-skip", false, "disable event-driven idle fast-forward (bit-identical, only slower on idle stretches)")
	reuse       = flag.Bool("reuse", true, "recycle one simulator per worker across sweep points instead of rebuilding (bit-identical; disable to benchmark fresh construction)")
	verbose     = flag.Bool("v", false, "log every sweep point as it completes")
	cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memprofile  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
)

func main() {
	flag.Parse()
	// Route every exit through sweep's return so the deferred profile
	// stop runs (os.Exit would skip it and truncate the CPU profile).
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catnap-sweep:", err)
		os.Exit(1)
	}
	err = sweep()
	if perr := stopProf(); err == nil && perr != nil {
		err = fmt.Errorf("profile: %w", perr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "catnap-sweep:", err)
		os.Exit(1)
	}
}

func sweep() error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	pat, err := traffic.PatternByName(*pattern)
	if err != nil {
		return err
	}
	loads, err := parseLoads(*loadsStr)
	if err != nil {
		return err
	}
	if _, err := catnap.Design(*design); err != nil {
		return err
	}
	if *traceFile != "" && len(loads) > 1 {
		return fmt.Errorf("-trace records one run's packets; use a single -loads value")
	}

	var rec *telemetry.Recorder
	var eventsOut *os.File
	if *metricsFile != "" || *eventsFile != "" {
		topts := telemetry.Options{}
		if *eventsFile != "" {
			f, err := os.Create(*eventsFile)
			if err != nil {
				return err
			}
			eventsOut = f
			topts.Events = f
		}
		rec = telemetry.NewRecorder(topts)
	}

	pts := make([]runner.Point[catnap.Results], len(loads))
	for i, load := range loads {
		label := fmt.Sprintf("%s @ %.3f", *design, load)
		pts[i] = runner.Point[catnap.Results]{
			Label:  label,
			Cycles: *warmup + *measure,
			Run: func(ctx context.Context) (catnap.Results, error) {
				cfg, err := catnap.Design(*design)
				if err != nil {
					return catnap.Results{}, err
				}
				cfg.Seed = *seed
				if *metricTh > 0 {
					cfg.MetricThreshold = *metricTh
				}
				if *simWorkers != 0 {
					cfg.ShardedRouters = true
					if *simWorkers > 0 {
						cfg.ShardCount = *simWorkers
					}
				}
				cfg.NoIdleSkip = *noSkip
				// With -reuse, the worker's pool resets one simulator in
				// place; a nil pool (reuse off) degrades to catnap.New.
				pool, _ := runner.WorkerState(ctx).(*catnap.SimPool)
				sim, err := pool.Get(cfg)
				if err != nil {
					return catnap.Results{}, err
				}
				if rec != nil {
					sim.EnableTelemetry(rec, label)
				}
				var flushTrace func() error
				if *traceFile != "" {
					f, err := os.Create(*traceFile)
					if err != nil {
						return catnap.Results{}, err
					}
					var topts []trace.Option
					if strings.HasSuffix(*traceFile, ".gz") {
						topts = append(topts, trace.WithGzip())
					}
					tw := sim.EnableTrace(f, topts...)
					flushTrace = tw.Close
				}
				res, err := sim.RunSyntheticCtx(ctx, pat, traffic.Constant(load), *warmup, *measure)
				if err != nil {
					return catnap.Results{}, err
				}
				if flushTrace != nil {
					if err := flushTrace(); err != nil {
						return catnap.Results{}, err
					}
				}
				return res, nil
			},
		}
	}

	prog := runner.NewConsole(os.Stderr, *verbose)
	var sweepProg runner.Progress = prog
	if rec != nil {
		sweepProg = runner.Tee(prog, rec.Progress())
	}
	ropts := runner.Options{Jobs: *jobs, Progress: sweepProg}
	if *reuse {
		ropts.WorkerState = func() any { return catnap.NewSimPool() }
	}
	results, err := runner.Values(runner.Run(ctx, pts, ropts))
	prog.Finish()
	if err != nil {
		return err
	}
	if rec != nil {
		if err := exportTelemetry(rec, eventsOut); err != nil {
			return err
		}
	}

	fmt.Printf("# design=%s pattern=%s warmup=%d measure=%d seed=%d\n",
		*design, *pattern, *warmup, *measure, *seed)
	fmt.Printf("%8s %9s %9s %9s %9s %7s %7s  %s\n",
		"offered", "accepted", "lat", "p99", "power(W)", "CSC%", "active", "subnet shares")
	for i, res := range results {
		shares := make([]string, len(res.SubnetShare))
		for j, s := range res.SubnetShare {
			shares[j] = fmt.Sprintf("%.2f", s)
		}
		fmt.Printf("%8.3f %9.4f %9.1f %9.0f %9.1f %7.1f %7.2f  %s\n",
			loads[i], res.AcceptedThroughput, res.AvgLatency, res.P99Latency,
			res.Power.Total, res.CSCPercent, res.ActiveRouterFraction,
			strings.Join(shares, ","))
	}
	return nil
}

func parseLoads(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 || v > 1 {
			return nil, fmt.Errorf("bad load %q (want a fraction in (0,1])", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no loads given")
	}
	return out, nil
}

// exportTelemetry flushes the streaming event sink and writes the
// -metrics file once the sweep has completed.
func exportTelemetry(rec *telemetry.Recorder, eventsOut *os.File) error {
	if err := rec.Flush(); err != nil {
		return err
	}
	if eventsOut != nil {
		if err := eventsOut.Close(); err != nil {
			return err
		}
	}
	if *metricsFile == "" {
		return nil
	}
	f, err := os.Create(*metricsFile)
	if err != nil {
		return err
	}
	if strings.HasSuffix(*metricsFile, ".csv") {
		err = rec.WriteMetricsCSV(f)
	} else {
		err = rec.WriteMetricsJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
