package main

import "testing"

func TestParseLoads(t *testing.T) {
	got, err := parseLoads("0.02, 0.5,0.10")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.02, 0.5, 0.10}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "0", "1.5", "abc", "-0.1", ",,"} {
		if _, err := parseLoads(bad); err == nil {
			t.Errorf("parseLoads(%q) accepted", bad)
		}
	}
}
