// catnap-lint is the multichecker for catnap's custom static analyses:
// the determinism, zero-alloc, commit-queue staging, tracer-contract,
// and API-doc rules documented in DESIGN.md "Static analysis". It is
// dependency-free — the driver under internal/analysis mirrors the
// golang.org/x/tools/go/analysis shape on the standard toolchain alone —
// and runs from make lint (part of make check).
//
// Usage:
//
//	catnap-lint [-checks name,name] [-list] [-time] [packages]
//
// With no packages, ./... is analyzed. -time prints a per-analyzer
// wall-time breakdown after the run (make lint passes it, so slow
// checks are attributable in the log). Exit status 1 means findings (or
// malformed/stale //lint:ignore directives); suppress a finding with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/catnap-noc/catnap/internal/analysis"
	"github.com/catnap-noc/catnap/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("catnap-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
	timings := fs.Bool("time", false, "print per-analyzer wall time after the run")
	dir := fs.String("C", ".", "module directory to analyze from")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		var err error
		analyzers, err = suite.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintf(stderr, "catnap-lint: -checks: %v\n", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "catnap-lint: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "catnap-lint: no packages matched %v\n", patterns)
		return 2
	}

	diags, times, runErr := analysis.RunTimed(pkgs, analyzers)
	fset := pkgs[0].Fset // Load type-checks every package on one FileSet
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if *timings {
		for _, tm := range times {
			fmt.Fprintf(stdout, "analyzer %-18s %v\n", tm.Name, tm.Elapsed.Round(time.Millisecond))
		}
	}
	if runErr != nil {
		fmt.Fprintf(stderr, "catnap-lint: %v\n", runErr)
	}
	if len(diags) > 0 || runErr != nil {
		return 1
	}
	return 0
}
