// Command catnap-explore searches the Catnap design space — subnet
// count, link width, buffer depth, idle-detect window, congestion
// metric, gating threshold — for the power/latency Pareto front.
//
// Three layers make campaigns cheap to repeat, kill, and scale:
//
//   - -cache DIR persists every evaluated point content-addressed by its
//     canonical spec hash (append-only JSONL shards); re-running a
//     campaign, or a different campaign overlapping the same points,
//     costs map lookups instead of simulations. The end-of-run summary
//     reports hits/misses.
//   - -checkpoint FILE snapshots the frontier, sampling cursor, and
//     pending batch atomically after every round. A killed campaign
//     (Ctrl-C, OOM, machine loss) restarts from the snapshot and
//     finishes with a frontier byte-identical to an uninterrupted run.
//   - Adaptive sampling (the default) steers each batch toward ±1-step
//     neighbors of current frontier members, spending -budget where the
//     front actually is; -grid enumerates the space in order instead,
//     as the exhaustive baseline.
//
// Axis flags (-subnets, -widths, -vcdepths, -tidles, -metrics,
// -thresholds) take comma-separated value lists and default to the
// built-in ~1.3k-point space. Points evaluate in parallel (-jobs) with
// event-driven idle fast-forward on; the frontier table goes to stdout
// and -front-out writes its deterministic JSON form.
//
// Example — a 200-point adaptive campaign, resumable and cached:
//
//	catnap-explore -budget 200 -cache .explore/cache -checkpoint .explore/ckpt.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	catnap "github.com/catnap-noc/catnap"
	"github.com/catnap-noc/catnap/internal/prof"
	"github.com/catnap-noc/catnap/internal/runner"
)

var (
	subnetsStr    = flag.String("subnets", "", "comma-separated subnet counts (default 1,2,4,8)")
	widthsStr     = flag.String("widths", "", "comma-separated link widths in bits (default 64,128,256,512)")
	vcdepthsStr   = flag.String("vcdepths", "", "comma-separated per-VC buffer depths in flits (default 2,4,8)")
	tidlesStr     = flag.String("tidles", "", "comma-separated idle-detect windows in cycles (default 2,4,8)")
	metricsStr    = flag.String("metrics", "", "comma-separated congestion metrics (default BFM,Delay,IQOcc)")
	thresholdsStr = flag.String("thresholds", "", "comma-separated metric thresholds, 0 = metric default (default 0,0.5,2)")
	load          = flag.Float64("load", 0.10, "offered load every point is evaluated at (packets/node/cycle)")
	budget        = flag.Int64("budget", 0, "max points to evaluate (0 = the whole space)")
	batch         = flag.Int("batch", 0, "points per sampling round and checkpoint cadence (0 = 64)")
	grid          = flag.Bool("grid", false, "enumerate the space in order instead of sampling adaptively")
	exploreFrac   = flag.Float64("explore-frac", 0, "random-exploration fraction of each adaptive batch (0 = 0.25)")
	minAccepted   = flag.Float64("min-accepted", 0, "feasibility floor as a fraction of offered load (0 = 0.9)")
	sampleSeed    = flag.Uint64("sample-seed", 1, "sampling RNG seed (simulations use -seed)")
	seed          = flag.Uint64("seed", 1, "simulation seed every point runs with")
	warmup        = flag.Int64("warmup", 1000, "warmup cycles per point")
	measure       = flag.Int64("measure", 4000, "measurement cycles per point")
	cacheDir      = flag.String("cache", "", "result-cache directory (empty = in-memory only)")
	checkpoint    = flag.String("checkpoint", "", "checkpoint file for kill/resume (empty = off)")
	frontOut      = flag.String("front-out", "", "write the frontier's deterministic JSON to this file")
	jobs          = flag.Int("jobs", 0, "parallel evaluation workers (0 = GOMAXPROCS)")
	simWorkers    = flag.Int("sim-workers", 0, "router-phase shards inside each simulator (0 = off, -1 = GOMAXPROCS)")
	noSkip        = flag.Bool("no-skip", false, "disable event-driven idle fast-forward (bit-identical, only slower)")
	reuse         = flag.Bool("reuse", true, "recycle one simulator per worker across evaluations instead of rebuilding (bit-identical; disable to benchmark fresh construction)")
	verbose       = flag.Bool("v", false, "log every evaluated point as it completes")
	cpuprofile    = flag.String("cpuprofile", "", "write a pprof CPU profile of the campaign to this file")
	memprofile    = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
)

func main() {
	flag.Parse()
	// Route every exit through explore's return so the deferred profile
	// stop runs (os.Exit would skip it and truncate the CPU profile).
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catnap-explore:", err)
		os.Exit(1)
	}
	err = explore()
	if perr := stopProf(); err == nil && perr != nil {
		err = fmt.Errorf("profile: %w", perr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "catnap-explore:", err)
		os.Exit(1)
	}
}

func explore() error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts, err := buildOpts()
	if err != nil {
		return err
	}
	prog := runner.NewConsole(os.Stderr, *verbose)
	opts.Sweep.Progress = prog

	r, err := catnap.RunExplore(ctx, opts)
	prog.Finish()
	if err != nil {
		if ctx.Err() != nil && *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "catnap-explore: interrupted; rerun with the same flags to resume from %s\n", *checkpoint)
		}
		return err
	}

	// Greppable campaign summary (the CI smoke job asserts the warm-run
	// hit rate from this line).
	fmt.Fprintf(os.Stderr, "explore: %d points (hits %d, misses %d, hit rate %.0f%%), front %d, rounds %d\n",
		r.Proposed, r.Cache.Hits, r.Cache.Misses, r.Cache.HitRate(), r.Front.Len(), r.Rounds)

	fmt.Printf("# space=%d budget=%d load=%g warmup=%d measure=%d seed=%d sample-seed=%d grid=%t\n",
		r.SpaceSize, *budget, *load, *warmup, *measure, *seed, *sampleSeed, *grid)
	fmt.Printf("%7s %6s %7s %6s %7s %10s %10s %9s %9s %7s\n",
		"subnets", "width", "vcdepth", "tidle", "metric", "threshold", "power(W)", "lat(cyc)", "accepted", "CSC%")
	for _, p := range r.Front.Points() {
		s := r.FrontSpec(p)
		fmt.Printf("%7d %6d %7d %6d %7s %10g %10.2f %9.1f %9.3f %7.1f\n",
			s.Subnets, s.WidthBits, s.VCDepth, s.TIdle, s.Metric, s.Threshold,
			p.PowerW, p.Latency, p.Accepted, p.CSCPercent)
	}

	if *frontOut != "" {
		f, err := os.Create(*frontOut)
		if err != nil {
			return err
		}
		err = r.WriteFront(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// buildOpts assembles and validates the experiment options from flags.
func buildOpts() (catnap.ExperimentOpts, error) {
	var opts catnap.ExperimentOpts
	var err error
	e := &opts.Explore
	if e.Space.Subnets, err = parseInts("subnets", *subnetsStr); err != nil {
		return opts, err
	}
	if e.Space.Widths, err = parseInts("widths", *widthsStr); err != nil {
		return opts, err
	}
	if e.Space.VCDepths, err = parseInts("vcdepths", *vcdepthsStr); err != nil {
		return opts, err
	}
	if e.Space.TIdles, err = parseInts("tidles", *tidlesStr); err != nil {
		return opts, err
	}
	e.Space.Metrics = parseStrings(*metricsStr)
	if e.Space.Thresholds, err = parseFloats("thresholds", *thresholdsStr); err != nil {
		return opts, err
	}
	e.Load = *load
	e.Budget = *budget
	e.Batch = *batch
	e.Grid = *grid
	e.ExploreFrac = *exploreFrac
	e.MinAccepted = *minAccepted
	e.SampleSeed = *sampleSeed
	e.SimSeed = *seed
	e.CacheDir = *cacheDir
	e.CheckpointPath = *checkpoint
	opts.Scale = catnap.Scale{Warmup: *warmup, Measure: *measure}
	opts.Sweep.Jobs = *jobs
	opts.SimWorkers = *simWorkers
	opts.NoIdleSkip = *noSkip
	opts.NoReuse = !*reuse
	if err := opts.Validate(); err != nil {
		return opts, err
	}
	return opts, nil
}

func parseInts(name, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("-%s: bad value %q", name, part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(name, s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: bad value %q", name, part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseStrings(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
