// Command catnap-trace analyzes a JSONL packet trace produced by
// catnap-sweep -trace (or Simulator.EnableTrace): it prints the aggregate
// summary, a latency histogram, per-subnet and per-class breakdowns, and
// optionally a windowed throughput series. Gzipped traces (.gz) are
// detected and decompressed automatically.
//
// It also summarizes telemetry files written by the other tools'
// -metrics/-events flags (see internal/telemetry for the schema):
// -metrics prints per-metric totals, -events an event-type census.
//
// Usage:
//
//	catnap-trace [-series 50] trace.jsonl
//	catnap-trace -metrics m.jsonl
//	catnap-trace -events e.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/catnap-noc/catnap/internal/noc"
	"github.com/catnap-noc/catnap/internal/telemetry"
	"github.com/catnap-noc/catnap/internal/trace"
)

var (
	seriesWindow = flag.Int64("series", 0, "also print a throughput series with this window (cycles); 0 disables")
	metricsFile  = flag.String("metrics", "", "summarize a telemetry metrics file (JSONL) instead of a packet trace")
	eventsFile   = flag.String("events", "", "summarize a telemetry events file (JSONL) instead of a packet trace")
)

func main() {
	flag.Parse()
	telemetryMode := *metricsFile != "" || *eventsFile != ""
	if (flag.NArg() != 1 && !telemetryMode) || (flag.NArg() != 0 && telemetryMode) {
		fmt.Fprintln(os.Stderr, "usage: catnap-trace [-series N] trace.jsonl")
		fmt.Fprintln(os.Stderr, "       catnap-trace -metrics m.jsonl | -events e.jsonl")
		os.Exit(2)
	}
	var err error
	switch {
	case telemetryMode:
		if *metricsFile != "" {
			err = reportMetrics(*metricsFile)
		}
		if err == nil && *eventsFile != "" {
			err = reportEvents(*eventsFile)
		}
	default:
		err = run(flag.Arg(0), *seriesWindow)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "catnap-trace:", err)
		os.Exit(1)
	}
}

// reportMetrics streams a telemetry metrics JSONL file and prints one
// line per (metric, label, subnet): counters verbatim, windowed series
// as window count + sum.
func reportMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	type key struct {
		metric string
		label  string
		subnet int
	}
	type agg struct {
		windows int64
		sum     float64
		counter bool
	}
	sums := map[key]*agg{}
	var order []key
	err = telemetry.ReadMetrics(f, func(p telemetry.MetricPoint) error {
		k := key{p.Metric, p.Label, p.Subnet}
		a := sums[k]
		if a == nil {
			a = &agg{}
			sums[k] = a
			order = append(order, k)
		}
		if p.Cycle < 0 {
			a.counter = true
			a.sum += p.Value
		} else {
			a.windows++
			a.sum += p.Value
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(order) == 0 {
		fmt.Println("empty metrics file")
		return nil
	}
	fmt.Printf("%-34s %-22s %7s %8s %14s\n", "metric", "label", "subnet", "windows", "total")
	for _, k := range order {
		a := sums[k]
		sub := fmt.Sprint(k.subnet)
		if k.subnet < 0 {
			sub = "-"
		}
		windows := fmt.Sprint(a.windows)
		if a.counter {
			windows = "-"
		}
		fmt.Printf("%-34s %-22s %7s %8s %14.0f\n", k.metric, k.label, sub, windows, a.sum)
	}
	return nil
}

// reportEvents streams a telemetry events JSONL file and prints an
// event-type census plus the covered cycle span.
func reportEvents(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	counts := map[telemetry.EventType]int64{}
	var order []telemetry.EventType
	var total, first, last int64
	first = 1<<63 - 1
	err = telemetry.ReadEvents(f, func(e telemetry.Event) error {
		if counts[e.Type] == 0 {
			order = append(order, e.Type)
		}
		counts[e.Type]++
		total++
		if e.Cycle >= 0 {
			if e.Cycle < first {
				first = e.Cycle
			}
			if e.Cycle > last {
				last = e.Cycle
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if total == 0 {
		fmt.Println("empty events file")
		return nil
	}
	if first <= last {
		fmt.Printf("%d events over cycles %d-%d\n", total, first, last)
	} else {
		fmt.Printf("%d events\n", total)
	}
	for _, t := range order {
		c := counts[t]
		fmt.Printf("  %-18s %8d (%5.1f%%) %s\n", t, c, 100*float64(c)/float64(total), bar(float64(c)/float64(total)))
	}
	return nil
}

// analysis folds every aggregate the report needs in one streaming pass,
// so the trace is read exactly once and never materialized (gzip inputs
// could not Seek for a second pass anyway).
type analysis struct {
	packets   int64
	latSum    int64
	maxLat    int64
	first     int64
	last      int64
	perSubnet map[int]int64
	perClass  map[noc.MsgClass]int64
	bounds    []int64
	counts    []int64
	window    int64
	series    map[int64]int64
}

func newAnalysis(window int64) *analysis {
	return &analysis{
		first:     1<<63 - 1,
		perSubnet: map[int]int64{},
		perClass:  map[noc.MsgClass]int64{},
		bounds:    []int64{10, 20, 40, 80, 160, 320, 640, 1280, 1 << 62},
		counts:    make([]int64, 9),
		window:    window,
		series:    map[int64]int64{},
	}
}

func (a *analysis) observe(r trace.Record) error {
	a.packets++
	lat := r.Latency()
	a.latSum += lat
	if lat > a.maxLat {
		a.maxLat = lat
	}
	a.perSubnet[r.Subnet]++
	a.perClass[r.Class]++
	if r.Create < a.first {
		a.first = r.Create
	}
	if r.Arrive > a.last {
		a.last = r.Arrive
	}
	for i, b := range a.bounds {
		if lat <= b {
			a.counts[i]++
			break
		}
	}
	if a.window > 0 {
		a.series[r.Arrive/a.window]++
	}
	return nil
}

func run(path string, window int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	tr, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	defer tr.Close()

	a := newAnalysis(window)
	if err := tr.Each(a.observe); err != nil {
		return err
	}
	if a.packets == 0 {
		fmt.Println("empty trace")
		return nil
	}
	a.report()
	return nil
}

func (a *analysis) report() {
	span := a.last - a.first
	fmt.Printf("packets: %d over %d cycles (%.4f packets/cycle)\n",
		a.packets, span, float64(a.packets)/float64(span))
	fmt.Printf("latency: mean %.1f, max %d cycles\n",
		float64(a.latSum)/float64(a.packets), a.maxLat)

	fmt.Println("\nper subnet:")
	subnets := make([]int, 0, len(a.perSubnet))
	for s := range a.perSubnet {
		subnets = append(subnets, s)
	}
	sort.Ints(subnets)
	for _, s := range subnets {
		c := a.perSubnet[s]
		fmt.Printf("  subnet %d: %8d (%5.1f%%) %s\n", s, c,
			100*float64(c)/float64(a.packets), bar(float64(c)/float64(a.packets)))
	}

	fmt.Println("\nper message class:")
	for class, c := range a.perClass {
		fmt.Printf("  %-5v %8d (%5.1f%%)\n", class, c, 100*float64(c)/float64(a.packets))
	}

	fmt.Println("\nlatency histogram (cycles):")
	prev := int64(0)
	for i, b := range a.bounds {
		label := fmt.Sprintf("%d-%d", prev+1, b)
		if i == len(a.bounds)-1 {
			label = fmt.Sprintf(">%d", prev)
		}
		frac := float64(a.counts[i]) / float64(a.packets)
		fmt.Printf("  %-10s %8d (%5.1f%%) %s\n", label, a.counts[i], 100*frac, bar(frac))
		prev = b
	}

	if a.window > 0 {
		fmt.Printf("\ndeliveries per %d-cycle window:\n", a.window)
		keys := make([]int64, 0, len(a.series))
		for k := range a.series {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			fmt.Printf("  %8d %6d %s\n", k*a.window, a.series[k], bar(float64(a.series[k])/float64(maxVal(a.series))))
		}
	}
}

func bar(frac float64) string {
	n := int(frac*40 + 0.5)
	return strings.Repeat("#", n)
}

func maxVal(m map[int64]int64) int64 {
	var mx int64 = 1
	for _, v := range m {
		if v > mx {
			mx = v
		}
	}
	return mx
}
