// Command catnap-trace analyzes a JSONL packet trace produced by
// catnap-sweep -trace (or Simulator.EnableTrace): it prints the aggregate
// summary, a latency histogram, per-subnet and per-class breakdowns, and
// optionally a windowed throughput series.
//
// Usage:
//
//	catnap-trace [-series 50] trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/catnap-noc/catnap/internal/trace"
)

var seriesWindow = flag.Int64("series", 0, "also print a throughput series with this window (cycles); 0 disables")

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: catnap-trace [-series N] trace.jsonl")
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "catnap-trace:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	sum, err := trace.Summarize(f)
	if err != nil {
		return err
	}
	if sum.Packets == 0 {
		fmt.Println("empty trace")
		return nil
	}
	span := sum.LastArrive - sum.FirstCreate
	fmt.Printf("packets: %d over %d cycles (%.4f packets/cycle)\n",
		sum.Packets, span, float64(sum.Packets)/float64(span))
	fmt.Printf("latency: mean %.1f, max %d cycles\n", sum.MeanLatency, sum.MaxLatency)

	fmt.Println("\nper subnet:")
	subnets := make([]int, 0, len(sum.PerSubnet))
	for s := range sum.PerSubnet {
		subnets = append(subnets, s)
	}
	sort.Ints(subnets)
	for _, s := range subnets {
		c := sum.PerSubnet[s]
		fmt.Printf("  subnet %d: %8d (%5.1f%%) %s\n", s, c,
			100*float64(c)/float64(sum.Packets), bar(float64(c)/float64(sum.Packets)))
	}

	fmt.Println("\nper message class:")
	for class, c := range sum.PerClass {
		fmt.Printf("  %-5v %8d (%5.1f%%)\n", class, c, 100*float64(c)/float64(sum.Packets))
	}

	// Second pass for the histogram (and optional series).
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	return histogram(f, *seriesWindow)
}

// histogram prints a log-ish latency histogram and an optional windowed
// delivery series.
func histogram(f *os.File, window int64) error {
	bounds := []int64{10, 20, 40, 80, 160, 320, 640, 1280, 1 << 62}
	counts := make([]int64, len(bounds))
	var total int64
	series := map[int64]int64{}
	err := trace.Read(f, func(r trace.Record) error {
		lat := r.Latency()
		for i, b := range bounds {
			if lat <= b {
				counts[i]++
				break
			}
		}
		total++
		if window > 0 {
			series[r.Arrive/window]++
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Println("\nlatency histogram (cycles):")
	prev := int64(0)
	for i, b := range bounds {
		label := fmt.Sprintf("%d-%d", prev+1, b)
		if i == len(bounds)-1 {
			label = fmt.Sprintf(">%d", prev)
		}
		frac := float64(counts[i]) / float64(total)
		fmt.Printf("  %-10s %8d (%5.1f%%) %s\n", label, counts[i], 100*frac, bar(frac))
		prev = b
	}
	if window > 0 {
		fmt.Printf("\ndeliveries per %d-cycle window:\n", window)
		keys := make([]int64, 0, len(series))
		for k := range series {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			fmt.Printf("  %8d %6d %s\n", k*window, series[k], bar(float64(series[k])/float64(maxVal(series))))
		}
	}
	return nil
}

func bar(frac float64) string {
	n := int(frac*40 + 0.5)
	return strings.Repeat("#", n)
}

func maxVal(m map[int64]int64) int64 {
	var mx int64 = 1
	for _, v := range m {
		if v > mx {
			mx = v
		}
	}
	return mx
}
