package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(scenarios map[string]benchRow) benchReport {
	return benchReport{Cycles: 4500, Reps: 5, GOMAXPROCS: 8, NumCPU: 8, Scenarios: scenarios}
}

func baselineReport() benchReport {
	return report(map[string]benchRow{
		"lowload-gated": {FastNsPerCycle: 100, RefNsPerCycle: 500, Speedup: 5},
		"sharded": {
			FastNsPerCycle: 50, RefNsPerCycle: 200, Speedup: 4, Shards: 8,
			GOMAXPROCSPoints: []gmpPoint{
				{GOMAXPROCS: 1, FastNsPerCycle: 180, Speedup: 1.1},
				{GOMAXPROCS: 4, FastNsPerCycle: 70, Speedup: 2.9},
				{GOMAXPROCS: 8, FastNsPerCycle: 50, Speedup: 4},
			},
		},
	})
}

func TestDiffNoRegression(t *testing.T) {
	var buf bytes.Buffer
	if diff(&buf, baselineReport(), baselineReport(), 10) {
		t.Fatalf("identical reports flagged as regression:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"lowload-gated", "GOMAXPROCS=1", "GOMAXPROCS=4", "GOMAXPROCS=8"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffCatchesScenarioSlowdown(t *testing.T) {
	newR := baselineReport()
	row := newR.Scenarios["lowload-gated"]
	row.FastNsPerCycle = 150 // +50%
	newR.Scenarios["lowload-gated"] = row

	var buf bytes.Buffer
	if !diff(&buf, baselineReport(), newR, 10) {
		t.Fatal("50% scenario slowdown not flagged at -fail-over 10")
	}
	if diff(&buf, baselineReport(), newR, 60) {
		t.Fatal("50% slowdown flagged at -fail-over 60")
	}
	if diff(&buf, baselineReport(), newR, 0) {
		t.Fatal("report-only mode (fail-over 0) flagged a regression")
	}
}

func TestDiffCatchesGMPPointSlowdown(t *testing.T) {
	// The scenario headline improves while one GOMAXPROCS point craters:
	// exactly the multicore regression the per-point diff exists to catch.
	newR := baselineReport()
	row := newR.Scenarios["sharded"]
	row.FastNsPerCycle = 45
	row.GOMAXPROCSPoints = []gmpPoint{
		{GOMAXPROCS: 1, FastNsPerCycle: 170, Speedup: 1.2},
		{GOMAXPROCS: 4, FastNsPerCycle: 160, Speedup: 1.3}, // was 70
		{GOMAXPROCS: 8, FastNsPerCycle: 45, Speedup: 4.4},
	}
	newR.Scenarios["sharded"] = row

	var buf bytes.Buffer
	if !diff(&buf, baselineReport(), newR, 35) {
		t.Fatalf("GOMAXPROCS=4 slowdown hidden by improved headline:\n%s", buf.String())
	}
}

func TestDiffCatchesDroppedGMPPoint(t *testing.T) {
	newR := baselineReport()
	row := newR.Scenarios["sharded"]
	row.GOMAXPROCSPoints = row.GOMAXPROCSPoints[:2] // GOMAXPROCS=8 gone
	newR.Scenarios["sharded"] = row

	var buf bytes.Buffer
	if !diff(&buf, baselineReport(), newR, 35) {
		t.Fatal("dropped GOMAXPROCS point not flagged")
	}
	if !strings.Contains(buf.String(), "dropped from new report") {
		t.Errorf("output does not name the dropped point:\n%s", buf.String())
	}
	// Report-only mode still prints the drop but does not fail.
	buf.Reset()
	if diff(&buf, baselineReport(), newR, 0) {
		t.Fatal("report-only mode failed on dropped point")
	}
	if !strings.Contains(buf.String(), "dropped from new report") {
		t.Error("report-only mode hid the dropped point")
	}
}

// TestDiffThroughputScenario covers the points/sec rows (sweep-reuse):
// a DROP in sweep throughput is the regression, a rise never is, and
// dropping the scenario outright still trips the coverage gate.
func TestDiffThroughputScenario(t *testing.T) {
	base := baselineReport()
	base.Scenarios["sweep-reuse"] = benchRow{
		FastNsPerCycle: 4400, RefNsPerCycle: 10700, Speedup: 2.4,
		FastPointsPerSec: 5600, RefPointsPerSec: 2300, RefMode: "fresh-construction",
	}

	slower := baselineReport()
	slower.Scenarios["sweep-reuse"] = benchRow{
		FastNsPerCycle: 8800, RefNsPerCycle: 10700, Speedup: 1.2,
		FastPointsPerSec: 2800, RefPointsPerSec: 2300, RefMode: "fresh-construction",
	}
	var buf bytes.Buffer
	if !diff(&buf, base, slower, 35) {
		t.Fatalf("50%% points/sec drop not flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "pts/s") {
		t.Errorf("throughput row not reported in points/sec:\n%s", buf.String())
	}

	// The same pair reversed is a throughput improvement, and the matching
	// ns/cycle RISE (more provisioning amortized per point is slower per
	// cycle by construction) must not trip the ns/cycle gate.
	buf.Reset()
	if diff(&buf, slower, base, 35) {
		t.Fatalf("points/sec improvement flagged as regression:\n%s", buf.String())
	}

	// Baselines predating the points/sec columns compare as (new).
	buf.Reset()
	if diff(&buf, baselineReport(), base, 35) {
		t.Fatalf("throughput row vs pre-schema baseline flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "pts/s (new)") {
		t.Errorf("fresh throughput row not marked (new):\n%s", buf.String())
	}

	// Dropping the scenario is lost coverage exactly like any other row.
	buf.Reset()
	if !diff(&buf, base, baselineReport(), 35) {
		t.Fatal("dropped sweep-reuse scenario not flagged")
	}
	if !strings.Contains(buf.String(), "sweep-reuse") {
		t.Errorf("output does not name the dropped scenario:\n%s", buf.String())
	}
}

func TestDiffCatchesDroppedScenario(t *testing.T) {
	newR := baselineReport()
	delete(newR.Scenarios, "sharded")
	var buf bytes.Buffer
	if !diff(&buf, baselineReport(), newR, 35) {
		t.Fatal("dropped scenario not flagged")
	}
	if !strings.Contains(buf.String(), "sharded") {
		t.Errorf("output does not name the dropped scenario:\n%s", buf.String())
	}
}

func TestDiffNewScenarioAndPointNeverRegress(t *testing.T) {
	// Old baselines predate both the explore-cached scenario and the
	// GOMAXPROCS matrix; fresh coverage must never trip the gate.
	oldR := report(map[string]benchRow{
		"lowload-gated": {FastNsPerCycle: 100, RefNsPerCycle: 500, Speedup: 5},
	})
	var buf bytes.Buffer
	if diff(&buf, oldR, baselineReport(), 10) {
		t.Fatalf("new coverage flagged as regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "(new)") {
		t.Errorf("new rows not marked:\n%s", buf.String())
	}
}

func TestLoadRejectsNonReports(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"cycles": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(bad); err == nil || !strings.Contains(err.Error(), "no scenarios") {
		t.Fatalf("scenario-less file accepted: %v", err)
	}
	if _, err := load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}

	good := filepath.Join(dir, "good.json")
	b, err := json.Marshal(baselineReport())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := load(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 2 || r.Scenarios["sharded"].GOMAXPROCSPoints[2].GOMAXPROCS != 8 {
		t.Fatalf("round-trip lost data: %+v", r)
	}
}
