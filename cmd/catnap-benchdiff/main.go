// Command catnap-benchdiff compares two BENCH_core.json reports (as
// written by `make bench-core`) and prints per-scenario deltas: ns/cycle,
// bytes/cycle, and speedup for the fast arm, plus every per-GOMAXPROCS
// point of the sharded scenarios' scaling matrix. Throughput-style
// scenarios (sweep-reuse) are reported in points/sec instead — their
// ns/cycle column spreads per-point provisioning cost over simulated
// cycles and is meaningless as a stepping cost — and regress when the
// sweep throughput DROPS by more than the threshold. It tolerates older
// reports that predate the matrix (missing gomaxprocs_points / num_cpu
// fields) or the points/sec columns, so a baseline captured before the
// schema change still diffs.
//
// Usage:
//
//	catnap-benchdiff [-fail-over PCT] old.json new.json
//
// With -fail-over set, the exit status is 1 if any scenario's fast arm
// (or any GOMAXPROCS point) slowed down by more than PCT percent, or if
// a scenario or GOMAXPROCS point present in the baseline is missing
// from the new report — a silently narrowed matrix is a regression in
// coverage even when every surviving number improved. Without
// -fail-over the tool is report-only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// gmpPoint mirrors one entry of a scenario's gomaxprocs_points matrix.
type gmpPoint struct {
	GOMAXPROCS        int     `json:"gomaxprocs"`
	FastNsPerCycle    float64 `json:"fast_ns_per_cycle"`
	FastBytesPerCycle float64 `json:"fast_bytes_per_cycle"`
	Speedup           float64 `json:"speedup"`
}

// benchRow mirrors one scenario entry of BENCH_core.json. The points/sec
// columns are set only by throughput-style scenarios (sweep-reuse), where
// ns/cycle spreads per-point provisioning cost over simulated cycles and
// is not a stepping cost; those rows are reported in points/sec instead.
type benchRow struct {
	FastNsPerCycle    float64    `json:"fast_ns_per_cycle"`
	RefNsPerCycle     float64    `json:"ref_ns_per_cycle"`
	Speedup           float64    `json:"speedup"`
	FastBytesPerCycle float64    `json:"fast_bytes_per_cycle"`
	RefBytesPerCycle  float64    `json:"ref_bytes_per_cycle"`
	Shards            int        `json:"shards"`
	RefMode           string     `json:"ref_mode"`
	FastPointsPerSec  float64    `json:"fast_points_per_sec"`
	RefPointsPerSec   float64    `json:"ref_points_per_sec"`
	GOMAXPROCSPoints  []gmpPoint `json:"gomaxprocs_points"`
}

// benchReport mirrors the top level of BENCH_core.json.
type benchReport struct {
	Cycles     int64               `json:"measure_cycles_per_run"`
	Reps       int                 `json:"reps_min_of"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"num_cpu"`
	Scenarios  map[string]benchRow `json:"scenarios"`
}

func load(path string) (benchReport, error) {
	var r benchReport
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	if r.Scenarios == nil {
		return r, fmt.Errorf("%s: no scenarios section (not a BENCH_core.json report?)", path)
	}
	return r, nil
}

// pct returns the relative change new-vs-old in percent; +Inf-ish cases
// (old == 0) report 0 so a fresh metric never trips the regression gate.
func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// diff writes the full comparison to w and reports whether the new
// report regressed: a fast arm (scenario or GOMAXPROCS point) slower by
// more than failOver percent, or baseline coverage (a scenario or a
// GOMAXPROCS point) dropped from the new report. failOver <= 0 means
// report-only — nothing regresses.
func diff(w io.Writer, oldR, newR benchReport, failOver float64) bool {
	if oldR.Cycles != newR.Cycles || oldR.Reps != newR.Reps {
		fmt.Fprintf(w, "note: window mismatch (old %d cycles x%d reps, new %d cycles x%d reps); deltas compare different workloads\n",
			oldR.Cycles, oldR.Reps, newR.Cycles, newR.Reps)
	}
	fmt.Fprintf(w, "old: GOMAXPROCS=%d NumCPU=%d   new: GOMAXPROCS=%d NumCPU=%d\n",
		oldR.GOMAXPROCS, oldR.NumCPU, newR.GOMAXPROCS, newR.NumCPU)
	fmt.Fprintf(w, "%-26s %22s %18s %18s\n", "scenario", "fast ns/cycle", "fast B/cycle", "speedup")

	names := make([]string, 0, len(newR.Scenarios))
	for name := range newR.Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := false
	row := func(label string, oldOK bool, oldNs, newNs, oldBy, newBy, oldSp, newSp float64) {
		if !oldOK {
			fmt.Fprintf(w, "%-26s %12.1f (new)    %10.1f (new)  %8.2fx (new)\n", label, newNs, newBy, newSp)
			return
		}
		d := pct(oldNs, newNs)
		if failOver > 0 && d > failOver {
			regressed = true
		}
		fmt.Fprintf(w, "%-26s %8.1f -> %8.1f (%+6.1f%%) %6.1f -> %6.1f  %5.2fx -> %5.2fx\n",
			label, oldNs, newNs, d, oldBy, newBy, oldSp, newSp)
	}

	for _, name := range names {
		n := newR.Scenarios[name]
		o, ok := oldR.Scenarios[name]
		// Throughput-style scenarios (sweep-reuse) report points/sec:
		// their ns/cycle is provisioning cost spread over simulated
		// cycles, so the sweep throughput is the comparable number and a
		// DROP in it (not a rise) is the regression.
		if n.FastPointsPerSec > 0 {
			if !ok || o.FastPointsPerSec == 0 {
				fmt.Fprintf(w, "%-26s %12.0f pts/s (new)   %8.2fx (new)\n", name, n.FastPointsPerSec, n.Speedup)
			} else {
				d := pct(o.FastPointsPerSec, n.FastPointsPerSec)
				if failOver > 0 && d < -failOver {
					regressed = true
				}
				fmt.Fprintf(w, "%-26s %8.0f -> %8.0f pts/s (%+6.1f%%)   %5.2fx -> %5.2fx\n",
					name, o.FastPointsPerSec, n.FastPointsPerSec, d, o.Speedup, n.Speedup)
			}
			continue
		}
		row(name, ok, o.FastNsPerCycle, n.FastNsPerCycle,
			o.FastBytesPerCycle, n.FastBytesPerCycle, o.Speedup, n.Speedup)
		covered := make(map[int]bool, len(n.GOMAXPROCSPoints))
		for _, np := range n.GOMAXPROCSPoints {
			covered[np.GOMAXPROCS] = true
			var op gmpPoint
			opOK := false
			if ok {
				for _, p := range o.GOMAXPROCSPoints {
					if p.GOMAXPROCS == np.GOMAXPROCS {
						op, opOK = p, true
						break
					}
				}
			}
			row(fmt.Sprintf("  GOMAXPROCS=%d", np.GOMAXPROCS), opOK,
				op.FastNsPerCycle, np.FastNsPerCycle,
				op.FastBytesPerCycle, np.FastBytesPerCycle, op.Speedup, np.Speedup)
		}
		// A GOMAXPROCS point the baseline measured but the new report
		// doesn't is lost multicore coverage, not an improvement.
		for _, op := range o.GOMAXPROCSPoints {
			if !covered[op.GOMAXPROCS] {
				fmt.Fprintf(w, "  GOMAXPROCS=%-13d dropped from new report (was %.1f ns/cycle)\n",
					op.GOMAXPROCS, op.FastNsPerCycle)
				if failOver > 0 {
					regressed = true
				}
			}
		}
	}
	dropped := make([]string, 0)
	for name := range oldR.Scenarios {
		if _, ok := newR.Scenarios[name]; !ok {
			dropped = append(dropped, name)
		}
	}
	sort.Strings(dropped)
	for _, name := range dropped {
		fmt.Fprintf(w, "%-26s dropped from new report\n", name)
		if failOver > 0 {
			regressed = true
		}
	}

	if regressed {
		fmt.Fprintf(w, "catnap-benchdiff: regression — a fast arm slowed down by more than %.1f%% or baseline coverage was dropped\n", failOver)
	}
	return regressed
}

func main() {
	failOver := flag.Float64("fail-over", 0, "exit 1 if any fast arm slows down by more than this percent or baseline coverage is dropped (0 = report only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: catnap-benchdiff [-fail-over PCT] old.json new.json")
		os.Exit(2)
	}
	oldR, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "catnap-benchdiff:", err)
		os.Exit(2)
	}
	newR, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "catnap-benchdiff:", err)
		os.Exit(2)
	}
	if diff(os.Stdout, oldR, newR, *failOver) {
		os.Exit(1)
	}
}
