// Command catnap runs the paper's experiments by ID and prints the
// corresponding table or figure data as text (or CSV with -csv).
//
// Usage:
//
//	catnap [flags] <experiment>
//
// Experiments: fig2 table2 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 headline designs — plus, beyond the paper: profiles hetero
// topology, and "ablation <study>".
//
// Flags:
//
//	-quick     reduced cycle counts (fast smoke run)
//	-csv       emit CSV instead of aligned text
//	-pattern   traffic pattern for fig11 (uniform-random|transpose|bit-complement)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	catnap "github.com/catnap-noc/catnap"
)

var (
	quick   = flag.Bool("quick", false, "reduced cycle counts for a fast smoke run")
	csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
	pattern = flag.String("pattern", "uniform-random", "traffic pattern for fig11")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	var err error
	switch flag.NArg() {
	case 1:
		err = run(flag.Arg(0))
	case 2:
		if flag.Arg(0) != "ablation" {
			usage()
			os.Exit(2)
		}
		err = runAblation(flag.Arg(1))
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "catnap:", err)
		os.Exit(1)
	}
}

// runAblation renders one design-choice study around the Catnap
// operating point.
func runAblation(study string) error {
	pts, err := catnap.RunAblation(study, scale(false))
	if err != nil {
		return err
	}
	var out [][]string
	for _, p := range pts {
		out = append(out, []string{
			p.Variant, f(p.Offered, 2),
			f(p.Results.Power.Total, 1), f(p.Results.CSCPercent, 1),
			f(p.Results.AvgLatency, 1), f(p.Results.AcceptedThroughput, 3),
		})
	}
	table([]string{"variant", "offered", "power (W)", "CSC (%)", "latency (cyc)", "accepted"}, out)
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: catnap [flags] <experiment>

Experiments (each regenerates one table/figure of the ISCA'13 paper):
  fig2      performance of 128b vs 512b Single-NoC on Light/Heavy workloads
  table2    router width -> frequency/voltage pairs
  fig6      throughput & latency of 1/2/4/8-subnet designs (uniform random)
  fig7      analytic network power breakdown at near saturation
  fig8      network power and normalized performance, app workloads
  fig9      compensated sleep cycles, app workloads
  fig10     power/CSC/throughput/latency vs offered load, with/without PG
  fig11     congestion-metric policy comparison (use -pattern)
  fig12     bursty-traffic ramp-up and subnet utilization over time
  fig13     injection-rate threshold sweep (uniform random + transpose)
  fig14     64-core study: CSC and latency
  headline  the paper's headline: 44%% power saving at ~5%% performance cost
  designs   list registered network configurations

Beyond the paper:
  profiles           per-benchmark characterization of all 35 application profiles
  hetero             Heavy-west/Light-east split chip: regional vs local detection
  topology           Catnap on mesh vs torus vs flattened butterfly (§8 future work)
  ablation <study>   studies: rcs threshold idle-detect wakeup region subnets

Flags:
`)
	flag.PrintDefaults()
}

// scale returns the simulation scale for the current -quick setting.
func scale(app bool) catnap.Scale {
	if *quick {
		return catnap.Scale{Warmup: 1000, Measure: 4000}
	}
	if app {
		return catnap.DefaultAppScale
	}
	return catnap.DefaultSyntheticScale
}

// loads returns the offered-load sweep for the current -quick setting.
func loads() []float64 {
	if *quick {
		return []float64{0.05, 0.15, 0.30, 0.45}
	}
	return catnap.DefaultLoads
}

// table renders rows with a header through a tabwriter or as CSV.
func table(header []string, rows [][]string) {
	if *csv {
		fmt.Println(strings.Join(header, ","))
		for _, r := range rows {
			fmt.Println(strings.Join(r, ","))
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
}

func f(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

func run(name string) error {
	switch name {
	case "designs":
		for _, d := range catnap.Designs() {
			cfg, _ := catnap.Design(d)
			fmt.Printf("%-18s %dx%d mesh, %d subnet(s) x %db @ %.3fV\n",
				d, cfg.Rows, cfg.Cols, cfg.Subnets, cfg.LinkWidthBits, cfg.VoltageV)
		}
		return nil

	case "fig2":
		rows, err := catnap.RunFig2(scale(true))
		if err != nil {
			return err
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{r.Workload, r.Design, f(r.SystemIPC, 1), f(r.Normalized, 3)})
		}
		table([]string{"workload", "design", "system IPC", "normalized"}, out)
		fmt.Println("\npaper: Heavy loses ~41% on the under-provisioned 128-bit Single-NoC; Light barely changes")
		return nil

	case "table2":
		var out [][]string
		for _, r := range catnap.RunTable2() {
			out = append(out, []string{r.Design, fmt.Sprint(r.WidthBits), f(r.FreqGHz, 1), f(r.VoltV, 3)})
		}
		table([]string{"design", "router width (bits)", "frequency (GHz)", "voltage (V)"}, out)
		fmt.Println("\npaper Table 2: 512b{2.0GHz@0.750V, 1.4GHz@0.625V}  128b{2.9GHz@0.750V, 2.0GHz@0.625V}")
		return nil

	case "fig6":
		pts := catnap.RunFig6(scale(false), loads())
		var out [][]string
		for _, p := range pts {
			out = append(out, []string{p.Design, f(p.Offered, 2), f(p.Accepted, 3), f(p.Latency, 1)})
		}
		table([]string{"design", "offered", "accepted (pkts/node/cyc)", "avg latency (cyc)"}, out)
		fmt.Println("\npaper: >4 subnets loses throughput; latency grows a few cycles per halving of width")
		return nil

	case "fig7":
		var out [][]string
		for _, r := range catnap.RunFig7() {
			b := r.Breakdown
			out = append(out, []string{
				r.Label, f(b.NI, 1), f(b.Link, 1), f(b.Clock, 1), f(b.Control, 1), f(b.Crossbar, 1), f(b.Buffer, 1), f(b.Static, 1), f(b.Total, 1),
			})
		}
		table([]string{"config", "NI", "link", "clock", "control", "crossbar", "buffer", "static", "total (W)"}, out)
		fmt.Println("\npaper Fig 7: Single-NoC ~70W; voltage-scaled Multi-NoC substantially lower")
		return nil

	case "fig8", "fig9":
		rows, err := catnap.RunAppWorkloads(scale(true), nil, nil)
		if err != nil {
			return err
		}
		var out [][]string
		for _, r := range rows {
			if name == "fig8" {
				out = append(out, []string{
					r.Workload, r.Design,
					f(r.Results.Power.Dynamic, 1), f(r.Results.Power.Static, 1), f(r.Results.Power.Total, 1),
					f(r.NormalizedPerf, 3),
				})
			} else {
				out = append(out, []string{r.Workload, r.Design, f(r.Results.CSCPercent, 1)})
			}
		}
		if name == "fig8" {
			table([]string{"workload", "design", "dynamic (W)", "static (W)", "total (W)", "norm. perf"}, out)
			fmt.Println("\npaper Fig 8: Multi-NoC-PG ~20W avg vs Single-NoC ~36W; ~5% avg performance cost")
		} else {
			table([]string{"workload", "design", "CSC (%)"}, out)
			fmt.Println("\npaper Fig 9: ~70% CSC for Multi-NoC-PG on Light; negligible for Single-NoC-PG")
		}
		return nil

	case "fig10":
		pts := catnap.RunFig10(scale(false), loads())
		var out [][]string
		for _, p := range pts {
			out = append(out, []string{p.Design, f(p.Offered, 2), f(p.PowerW, 1), f(p.CSCPercent, 1), f(p.Accepted, 3), f(p.Latency, 1)})
		}
		table([]string{"design", "offered", "power (W)", "CSC (%)", "accepted", "latency (cyc)"}, out)
		fmt.Println("\npaper Fig 10: at 0.03 load Multi-NoC-PG 7.8W/74% CSC vs Single-NoC-PG 24.1W/10% CSC")
		return nil

	case "fig11":
		pts, err := catnap.RunFig11(scale(false), *pattern, loads())
		if err != nil {
			return err
		}
		var out [][]string
		for _, p := range pts {
			out = append(out, []string{p.Policy, f(p.Offered, 2), f(p.Accepted, 3), f(p.Latency, 1), f(p.CSCPercent, 1)})
		}
		table([]string{"policy", "offered", "accepted", "latency (cyc)", "CSC (%)"}, out)
		fmt.Println("\npaper Fig 11: BFM and Delay win; RR has much higher latency; BFA/IQOcc lose throughput")
		return nil

	case "fig12":
		total, window := int64(3000), int64(50)
		pts := catnap.RunFig12(total, window)
		var out [][]string
		for _, p := range pts {
			row := []string{fmt.Sprint(p.Cycle), f(p.Offered, 3), f(p.Accepted, 3)}
			for _, s := range p.SubnetShare {
				row = append(row, f(s, 2))
			}
			out = append(out, row)
		}
		table([]string{"cycle", "offered", "accepted", "subnet0", "subnet1", "subnet2", "subnet3"}, out)
		fmt.Println("\npaper Fig 12: accepted catches offered within ~200 cycles; burst1 opens all subnets, burst2 only two")
		return nil

	case "fig13":
		pts, err := catnap.RunFig13(scale(false), loads())
		if err != nil {
			return err
		}
		var out [][]string
		for _, p := range pts {
			out = append(out, []string{p.Pattern, f(p.Threshold, 2), f(p.Offered, 2), f(p.Accepted, 3), f(p.Latency, 1)})
		}
		table([]string{"pattern", "IR threshold", "offered", "accepted", "latency (cyc)"}, out)
		fmt.Println("\npaper Fig 13: UR tolerates thresholds up to 0.20; transpose needs <=0.08 — no single threshold works")
		return nil

	case "fig14":
		pts := catnap.RunFig14(scale(false), loads())
		var out [][]string
		for _, p := range pts {
			out = append(out, []string{p.Design, f(p.Offered, 2), f(p.CSCPercent, 1), f(p.Latency, 1), f(p.Accepted, 3)})
		}
		table([]string{"design", "offered", "CSC (%)", "latency (cyc)", "accepted"}, out)
		fmt.Println("\npaper Fig 14: 64-core Multi-NoC reaches ~50% CSC at low load vs ~17% for Single-NoC")
		return nil

	case "profiles":
		rows, err := catnap.RunProfiles(scale(true))
		if err != nil {
			return err
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{r.Benchmark, r.Suite, f(r.MPKI, 1), f(r.IPC, 2), f(r.PacketsPerNodeCycle, 3), f(r.AvgLatency, 1)})
		}
		table([]string{"benchmark", "suite", "MPKI", "IPC/core", "pkts/node/cyc", "latency"}, out)
		return nil

	case "topology":
		pts := catnap.RunTopology(scale(false), loads())
		var out [][]string
		for _, p := range pts {
			out = append(out, []string{p.Design, f(p.Offered, 2), f(p.Accepted, 3), f(p.Latency, 1), f(p.PowerW, 1), f(p.CSCPercent, 1)})
		}
		table([]string{"design", "offered", "accepted", "latency (cyc)", "power (W)", "CSC (%)"}, out)
		fmt.Println("\n§8 future work: the Catnap benefits carry over to the torus and flattened butterfly")
		return nil

	case "hetero":
		rows, err := catnap.RunHetero(scale(true))
		if err != nil {
			return err
		}
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{
				r.Variant, f(r.Results.AvgLatency, 1), f(r.Results.P99Latency, 0),
				f(r.Results.SystemIPC, 1), f(r.Results.Power.Total, 1), f(r.Results.CSCPercent, 1),
			})
		}
		table([]string{"detection", "avg latency", "p99", "system IPC", "power (W)", "CSC (%)"}, out)
		fmt.Println("\n§3.2.1's motivation: with non-uniform placement, regional detection reacts before local back-pressure does")
		return nil

	case "headline":
		h, err := catnap.RunHeadline(scale(true))
		if err != nil {
			return err
		}
		fmt.Printf("Single-NoC (1NT-512b) average network power:   %6.1f W   (paper ~36 W)\n", h.SingleAvgPowerW)
		fmt.Printf("Catnap Multi-NoC (4NT-128b-PG) average power:  %6.1f W   (paper ~20 W)\n", h.MultiPGAvgPowerW)
		fmt.Printf("Network power reduction:                       %6.1f %%  (paper ~44 %%)\n", h.PowerReduction*100)
		fmt.Printf("Average performance cost:                      %6.1f %%  (paper ~5 %%)\n", h.AvgPerfCost*100)
		fmt.Printf("Compensated sleep cycles on Light:             %6.1f %%  (paper ~70 %%)\n", h.LightCSCPercent)
		return nil

	default:
		return fmt.Errorf("unknown experiment %q (run with no args for the list)", name)
	}
}
